// Command windgen emits the synthetic evaluation datasets as CSV: the
// TPC-DS-like web_sales fact table (Section 6.1 of the paper) and its
// sorted/grouped variants, or the emptab relation of Example 1.
//
// Usage:
//
//	windgen -table web_sales -rows 100000 > web_sales.csv
//	windgen -table web_sales_s -rows 100000 -seed 7 > sorted.csv
//	windgen -table emptab > emptab.csv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/csvio"
	"repro/internal/datagen"
	"repro/internal/storage"
)

func main() {
	var (
		table = flag.String("table", "web_sales", "table: web_sales|web_sales_s|web_sales_g|emptab")
		rows  = flag.Int("rows", 100_000, "row count for generated tables")
		seed  = flag.Int64("seed", 1, "generator seed")
		pad   = flag.Int("pad", 96, "filler column bytes (tunes tuple width)")
	)
	flag.Parse()

	gen := datagen.WebSalesConfig{Rows: *rows, Seed: *seed, PadBytes: *pad}
	var t *storage.Table
	switch *table {
	case "web_sales":
		t = datagen.WebSales(gen)
	case "web_sales_s":
		t = datagen.WebSalesSorted(gen)
	case "web_sales_g":
		t = datagen.WebSalesGrouped(gen)
	case "emptab":
		t = datagen.Emptab()
	default:
		fmt.Fprintf(os.Stderr, "windgen: unknown table %q\n", *table)
		os.Exit(2)
	}

	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	if err := csvio.Write(out, t); err != nil {
		fmt.Fprintf(os.Stderr, "windgen: %v\n", err)
		os.Exit(1)
	}
}
