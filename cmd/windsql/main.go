// Command windsql runs window-function SQL against generated datasets or
// CSV files, printing the result table, the window-function chain the
// optimizer produced, and execution metrics.
//
// Usage:
//
//	windsql -q "SELECT empnum, rank() OVER (ORDER BY salary DESC) FROM emptab"
//	windsql -scheme PSQL -rows 50000 -q "SELECT ... FROM web_sales"
//	windsql -csv data.csv -table t -q "SELECT ... FROM t"
//
// Registered tables: emptab (Example 1 of the paper), web_sales,
// web_sales_s, web_sales_g (generated; -rows controls size), plus any
// -csv/-table pair.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro"
	"repro/internal/csvio"
	"repro/internal/datagen"
	"repro/internal/sql"
	"repro/internal/storage"
)

func main() {
	var (
		query    = flag.String("q", "", "SQL to execute (required)")
		scheme   = flag.String("scheme", "CSO", "optimization scheme: CSO|BFO|ORCL|PSQL")
		rows     = flag.Int("rows", 20_000, "generated web_sales rows")
		mem      = flag.Int("mem", 8<<20, "unit reorder memory in bytes")
		csvPath  = flag.String("csv", "", "optional CSV file to load")
		csvTable = flag.String("table", "csv", "table name for the CSV file")
		maxRows  = flag.Int("n", 40, "max rows to print (0 = all)")
		showPlan = flag.Bool("plan", true, "print the window-function chain")
	)
	flag.Parse()
	if *query == "" {
		fmt.Fprintln(os.Stderr, "windsql: -q is required")
		flag.Usage()
		os.Exit(2)
	}

	eng := windowdb.New(windowdb.Config{
		Scheme:       sql.Scheme(*scheme),
		SortMemBytes: *mem,
	})
	eng.Register("emptab", datagen.Emptab())
	gen := datagen.WebSalesConfig{Rows: *rows, Seed: 1}
	eng.Register("web_sales", datagen.WebSales(gen))
	eng.Register("web_sales_s", datagen.WebSalesSorted(gen))
	eng.Register("web_sales_g", datagen.WebSalesGrouped(gen))
	if *csvPath != "" {
		t, err := loadCSV(*csvPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "windsql: %v\n", err)
			os.Exit(1)
		}
		eng.Register(*csvTable, t)
	}

	start := time.Now()
	res, err := eng.Query(*query)
	if err != nil {
		fmt.Fprintf(os.Stderr, "windsql: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(sql.FormatTable(res.Table, *maxRows))
	fmt.Printf("\n(%d rows in %v)\n", res.Table.Len(), time.Since(start).Round(time.Millisecond))
	if *showPlan && res.Plan != nil {
		fmt.Printf("chain [%s]: %s\n", res.Plan.Scheme, res.Plan.PaperString())
		if res.Metrics != nil {
			fmt.Printf("spill I/O: %d blocks read, %d written; %d key comparisons\n",
				res.Metrics.BlocksRead, res.Metrics.BlocksWritten, res.Metrics.Comparisons)
		}
	}
}

// loadCSV reads a CSV with a header row, inferring column types.
func loadCSV(path string) (*storage.Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return csvio.Read(f)
}
