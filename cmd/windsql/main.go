// Command windsql runs window-function SQL against generated datasets or
// CSV files, printing the result table, the window-function chain the
// optimizer produced, and per-statement execution metrics (wall time and
// block I/O via the query service's metrics plumbing), so the shell
// doubles as a manual latency probe.
//
// Usage:
//
//	windsql -q "SELECT empnum, rank() OVER (ORDER BY salary DESC) FROM emptab"
//	windsql -scheme PSQL -rows 50000 -q "SELECT ... FROM web_sales"
//	windsql -csv data.csv -table t -q "SELECT ... FROM t"
//	windsql -server localhost:8080 -q "SELECT ... FROM web_sales"
//	windsql                            # shell: statements from stdin
//
// With -server, statements go to a running windserve — single engine or
// cluster coordinator, the /query JSON surface is the same — instead of an
// embedded engine; the latency line then reports the served elapsed time,
// cache disposition and (against a coordinator) the scatter/gather route.
//
// Embedded tables: emptab (Example 1 of the paper), web_sales,
// web_sales_s, web_sales_g (generated; -rows controls size), plus any
// -csv/-table pair. Without -q, statements are read line by line from
// stdin (a trailing ';' is accepted); repeating a statement shows the
// prepared-plan cache at work — the second run skips parse+bind+plan.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"repro"
	"repro/internal/cli"
	"repro/internal/service"
	"repro/internal/sql"
	"repro/internal/storage"
)

func main() {
	var (
		query    = flag.String("q", "", "SQL to execute (default: read statements from stdin)")
		scheme   = flag.String("scheme", "CSO", "optimization scheme: CSO|BFO|ORCL|PSQL")
		rows     = flag.Int("rows", 20_000, "generated web_sales rows")
		mem      = flag.Int("mem", 8<<20, "unit reorder memory in bytes")
		csvPath  = flag.String("csv", "", "optional CSV file to load")
		csvTable = flag.String("table", "csv", "table name for the CSV file")
		maxRows  = flag.Int("n", 40, "max rows to print (0 = all)")
		showPlan = flag.Bool("plan", true, "print the window-function chain")
		server   = flag.String("server", "", "send statements to a running windserve at this address instead of embedding an engine")
	)
	flag.Parse()

	var run func(stmt string) bool
	var tables []string
	if *server != "" {
		client := newRemote(*server)
		run = func(stmt string) bool { return client.run(stmt, *maxRows, *showPlan) }
		tables = []string{"(remote: " + client.base + ")"}
	} else {
		eng := windowdb.New(windowdb.Config{
			Scheme:       sql.Scheme(*scheme),
			SortMemBytes: *mem,
		})
		cli.RegisterStandardTables(eng, *rows)
		if err := cli.RegisterCSV(eng, *csvPath, *csvTable); err != nil {
			fmt.Fprintf(os.Stderr, "windsql: %v\n", err)
			os.Exit(1)
		}
		// One slot: an interactive shell runs one statement at a time, but
		// the service supplies the plan cache and the metrics plumbing.
		svc := service.New(eng, service.Config{Slots: 1})
		run = func(stmt string) bool { return runStatement(svc, stmt, *maxRows, *showPlan) }
		tables = eng.Tables()
	}

	if *query != "" {
		if !run(*query) {
			os.Exit(1)
		}
		return
	}

	// Shell mode: one statement per line from stdin.
	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	interactive := isTerminal(os.Stdin)
	if interactive {
		fmt.Printf("windsql shell — tables %v; one statement per line, \\q quits\n", tables)
	}
	failed := false
	for {
		if interactive {
			fmt.Print("windsql> ")
		}
		if !in.Scan() {
			break
		}
		stmt := strings.TrimSpace(strings.TrimRight(strings.TrimSpace(in.Text()), ";"))
		if stmt == "" {
			continue
		}
		if stmt == `\q` || strings.EqualFold(stmt, "exit") || strings.EqualFold(stmt, "quit") {
			break
		}
		if !run(stmt) {
			failed = true
		}
	}
	if err := in.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "windsql: %v\n", err)
		os.Exit(1)
	}
	// Piped scripts check $?: any failed statement fails the run. An
	// interactive session stays exit 0, like other SQL shells.
	if failed && !interactive {
		os.Exit(1)
	}
}

// runStatement executes one statement through the service and prints the
// result plus its latency line. It reports success.
func runStatement(svc *service.Service, stmt string, maxRows int, showPlan bool) bool {
	res, err := svc.Query(context.Background(), stmt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "windsql: %v\n", err)
		return false
	}
	fmt.Print(sql.FormatTable(res.Table, maxRows))

	// The manual latency probe: per-query wall time and block I/O from the
	// service's metrics, plus the plan-cache disposition.
	var blocks, read, written int64
	if res.Metrics != nil {
		read, written = res.Metrics.BlocksRead, res.Metrics.BlocksWritten
		blocks = read + written
	}
	disposition := "plan cache miss"
	if res.CacheHit {
		disposition = "plan cache hit"
	}
	fmt.Printf("\n(%d rows in %v; %d I/O blocks: %d read, %d written; %s)\n",
		res.Table.Len(), res.Elapsed.Round(time.Microsecond), blocks, read, written, disposition)
	if showPlan && res.Plan != nil {
		fmt.Printf("chain [%s]: %s\n", res.Plan.Scheme, res.Plan.PaperString())
		if res.Metrics != nil {
			fmt.Printf("%d key comparisons; final sort: %s\n", res.Metrics.Comparisons, res.FinalSort)
		}
	}
	return true
}

func isTerminal(f *os.File) bool {
	info, err := f.Stat()
	if err != nil {
		return false
	}
	return info.Mode()&os.ModeCharDevice != 0
}

// remote is the -server client: statements ride the windserve /query
// JSON surface (identical on a single engine and a cluster coordinator).
type remote struct {
	base   string
	client *http.Client
}

func newRemote(addr string) *remote {
	base := strings.TrimRight(addr, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return &remote{base: base, client: &http.Client{}}
}

// remoteResponse is the subset of the /query response the shell renders;
// it tolerates both the engine's and the coordinator's shapes.
type remoteResponse struct {
	Columns   []string `json:"columns"`
	Rows      [][]any  `json:"rows"`
	RowCount  int      `json:"row_count"`
	Truncated bool     `json:"truncated"`

	ElapsedMillis float64 `json:"elapsed_ms"`
	CacheHit      bool    `json:"cache_hit"`
	Route         string  `json:"route"`
	ShardsUsed    int     `json:"shards_used"`

	Chain         string `json:"chain"`
	FinalSort     string `json:"final_sort"`
	BlocksRead    int64  `json:"blocks_read"`
	BlocksWritten int64  `json:"blocks_written"`

	Error string `json:"error"`
	Kind  string `json:"kind"`
}

// run executes one statement remotely and prints the result in the same
// shape as the embedded path.
func (r *remote) run(stmt string, maxRows int, showPlan bool) bool {
	body, _ := json.Marshal(map[string]any{"sql": stmt, "max_rows": maxRows})
	resp, err := r.client.Post(r.base+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		fmt.Fprintf(os.Stderr, "windsql: %v\n", err)
		return false
	}
	defer resp.Body.Close()
	dec := json.NewDecoder(resp.Body)
	dec.UseNumber() // keep the server's number formatting verbatim
	var qr remoteResponse
	if err := dec.Decode(&qr); err != nil {
		fmt.Fprintf(os.Stderr, "windsql: %s: bad response: %v\n", resp.Status, err)
		return false
	}
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(os.Stderr, "windsql: %s (%s): %s\n", resp.Status, qr.Kind, qr.Error)
		return false
	}

	// Rebuild a display table so remote results render exactly like
	// embedded ones (FormatTable handles padding; NULL prints as "-").
	cols := make([]storage.Column, len(qr.Columns))
	for i, name := range qr.Columns {
		cols[i] = storage.Column{Name: name, Type: storage.TypeString}
	}
	t := storage.NewTable(storage.NewSchema(cols...))
	for _, row := range qr.Rows {
		tuple := make(storage.Tuple, len(row))
		for i, v := range row {
			switch x := v.(type) {
			case nil:
				tuple[i] = storage.Null
			case json.Number:
				tuple[i] = storage.StringVal(x.String())
			case string:
				tuple[i] = storage.StringVal(x)
			default:
				tuple[i] = storage.StringVal(fmt.Sprint(x))
			}
		}
		t.Rows = append(t.Rows, tuple)
	}
	fmt.Print(sql.FormatTable(t, 0))
	if qr.Truncated {
		fmt.Printf("... (%d more rows on the server)\n", qr.RowCount-len(qr.Rows))
	}

	blocks := qr.BlocksRead + qr.BlocksWritten
	disposition := "plan cache miss"
	if qr.CacheHit {
		disposition = "plan cache hit"
	}
	elapsed := time.Duration(qr.ElapsedMillis * float64(time.Millisecond))
	fmt.Printf("\n(%d rows in %v served; %d I/O blocks: %d read, %d written; %s)\n",
		qr.RowCount, elapsed.Round(time.Microsecond), blocks, qr.BlocksRead, qr.BlocksWritten, disposition)
	if qr.Route != "" {
		fmt.Printf("route: %s over %d shard(s)\n", qr.Route, qr.ShardsUsed)
	}
	if showPlan && qr.Chain != "" {
		fmt.Printf("chain: %s\n", qr.Chain)
		if qr.FinalSort != "" {
			fmt.Printf("final sort: %s\n", qr.FinalSort)
		}
	}
	return true
}
