// Command windsql runs window-function SQL against generated datasets or
// CSV files, printing rows incrementally as the result cursor yields them,
// plus the window-function chain the optimizer produced and per-statement
// execution metrics (wall time and block I/O), so the shell doubles as a
// manual latency probe.
//
// Usage:
//
//	windsql -q "SELECT empnum, rank() OVER (ORDER BY salary DESC) FROM emptab"
//	windsql -scheme PSQL -rows 50000 -q "SELECT ... FROM web_sales"
//	windsql -csv data.csv -table t -q "SELECT ... FROM t"
//	windsql -format csv -q "SELECT ... FROM web_sales" > out.csv
//	windsql -server localhost:8080 -q "SELECT ... FROM web_sales"
//	windsql                            # shell: statements from stdin
//
// Local and remote modes speak the same windowdb.Queryer surface: local
// statements go through a one-slot query service over an embedded engine,
// remote ones through service.Client's streaming NDJSON /query connection
// to a running windserve — single engine or cluster coordinator — so rows
// print as the server emits them, long before the result is complete. The
// latency line reports the served elapsed time, cache disposition and
// (against a coordinator) the scatter/shuffle/gather route.
//
// -format selects the output shape: "table" (padded columns; the first
// rows are buffered to size the columns, the rest stream), "csv"
// (streaming, header row first) or "json" (streaming, one object per
// line, column order preserved).
//
// Embedded tables: emptab (Example 1 of the paper), web_sales,
// web_sales_s, web_sales_g (generated; -rows controls size), plus any
// -csv/-table pair. Without -q, statements are read line by line from
// stdin (a trailing ';' is accepted); repeating a statement shows the
// prepared-plan cache at work — the second run skips parse+bind+plan.
//
// Ingestion and live results ride the same statement path: an
// `INSERT INTO t VALUES (...), (...)` statement appends rows (against a
// coordinator, routed to the owning shards) and prints the one-row
// summary [table, rows_appended, watermark]; `\subscribe <stmt>` opens a
// live maintained cursor that prints the initial result and then delta
// rows as appends land, one flushed CSV record (or -format json object)
// per row, until Ctrl-C returns to the shell.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/csv"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"strings"
	"time"

	windowdb "repro"
	"repro/internal/cli"
	"repro/internal/service"
	"repro/internal/sql"
	"repro/internal/storage"
	"repro/internal/trace"
)

func main() {
	var (
		query    = flag.String("q", "", "SQL to execute (default: read statements from stdin)")
		scheme   = flag.String("scheme", "CSO", "optimization scheme: CSO|BFO|ORCL|PSQL")
		rows     = flag.Int("rows", 20_000, "generated web_sales rows")
		mem      = flag.Int("mem", 8<<20, "unit reorder memory in bytes")
		csvPath  = flag.String("csv", "", "optional CSV file to load")
		csvTable = flag.String("table", "csv", "table name for the CSV file")
		maxRows  = flag.Int("n", 40, "max rows to print (0 = all)")
		showPlan = flag.Bool("plan", true, "print the window-function chain")
		showTr   = flag.Bool("trace", false, "print the per-stage trace tree after each statement (\\trace toggles in the shell)")
		format   = flag.String("format", "table", "output format: table|csv|json")
		server   = flag.String("server", "", "send statements to a running windserve at this address instead of embedding an engine")
	)
	flag.Parse()

	switch *format {
	case "table", "csv", "json":
	default:
		fmt.Fprintf(os.Stderr, "windsql: unknown -format %q (want table, csv or json)\n", *format)
		os.Exit(2)
	}

	var q windowdb.Queryer
	var tables []string
	if *server != "" {
		client := service.NewClient(*server, nil)
		q = client
		tables = []string{"(remote: " + client.Addr() + ")"}
	} else {
		eng := windowdb.New(windowdb.Config{
			Scheme:       sql.Scheme(*scheme),
			SortMemBytes: *mem,
		})
		cli.RegisterStandardTables(eng, *rows)
		if err := cli.RegisterCSV(eng, *csvPath, *csvTable); err != nil {
			fmt.Fprintf(os.Stderr, "windsql: %v\n", err)
			os.Exit(1)
		}
		// One slot: an interactive shell runs one statement at a time, but
		// the service supplies the plan cache and the metrics plumbing.
		q = service.New(eng, service.Config{Slots: 1})
		tables = eng.Tables()
	}

	tracing := *showTr
	run := func(stmt string) bool { return runStatement(q, stmt, *maxRows, *showPlan, tracing, *format) }

	if *query != "" {
		if !run(*query) {
			os.Exit(1)
		}
		return
	}

	// Shell mode: one statement per line from stdin.
	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	interactive := isTerminal(os.Stdin)
	if interactive {
		fmt.Printf("windsql shell — tables %v; one statement per line, \\trace toggles traces, \\ps lists in-flight queries, \\kill <id> cancels one, \\subscribe <stmt> follows a live result, \\q quits\n", tables)
	}
	failed := false
	for {
		if interactive {
			fmt.Print("windsql> ")
		}
		if !in.Scan() {
			break
		}
		stmt := strings.TrimSpace(strings.TrimRight(strings.TrimSpace(in.Text()), ";"))
		if stmt == "" {
			continue
		}
		if stmt == `\q` || strings.EqualFold(stmt, "exit") || strings.EqualFold(stmt, "quit") {
			break
		}
		if stmt == `\trace` {
			tracing = !tracing
			fmt.Printf("trace output %s\n", map[bool]string{true: "on", false: "off"}[tracing])
			continue
		}
		if stmt == `\ps` {
			listQueries(q)
			continue
		}
		if id, ok := strings.CutPrefix(stmt, `\kill `); ok {
			killQuery(q, strings.TrimSpace(id))
			continue
		}
		if inner, ok := strings.CutPrefix(stmt, `\subscribe `); ok {
			if !runSubscribe(q, strings.TrimSpace(inner), *format) {
				failed = true
			}
			continue
		}
		if !run(stmt) {
			failed = true
		}
	}
	if err := in.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "windsql: %v\n", err)
		os.Exit(1)
	}
	// Piped scripts check $?: any failed statement fails the run. An
	// interactive session stays exit 0, like other SQL shells.
	if failed && !interactive {
		os.Exit(1)
	}
}

// liveQueries fetches the in-flight query registry behind the shell's
// Queryer: directly for an embedded service, over GET /debug/queries for a
// remote windserve (single engine or coordinator — both mount the route).
func liveQueries(q windowdb.Queryer) ([]trace.QueryInfo, error) {
	switch v := q.(type) {
	case *service.Service:
		return v.Registry().Snapshot(), nil
	case *service.Client:
		resp, err := http.Get(v.Addr() + "/debug/queries")
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("server answered %s", resp.Status)
		}
		var infos []trace.QueryInfo
		if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
			return nil, err
		}
		return infos, nil
	default:
		return nil, fmt.Errorf("backend exposes no query registry")
	}
}

// listQueries prints the in-flight query registry, newest first.
func listQueries(q windowdb.Queryer) {
	infos, err := liveQueries(q)
	if err != nil {
		fmt.Fprintf(os.Stderr, "windsql: \\ps: %v\n", err)
		return
	}
	if len(infos) == 0 {
		fmt.Println("(no queries in flight)")
		return
	}
	for _, info := range infos {
		sql := info.SQL
		if len(sql) > 60 {
			sql = sql[:57] + "..."
		}
		fmt.Printf("%s  %-10s %-22s %7.0fms  %d rows out  %s\n",
			info.ID, info.Backend, info.Phase, info.ElapsedMillis, info.RowsEmitted, sql)
		for _, node := range info.Nodes {
			fmt.Printf("  └ %-12s %-22s %d rows out\n", node.Backend, node.Phase, node.RowsEmitted)
		}
	}
}

// killQuery cancels one in-flight query by registry ID.
func killQuery(q windowdb.Queryer, id string) {
	if id == "" {
		fmt.Fprintln(os.Stderr, "windsql: usage: \\kill <id> (ids from \\ps)")
		return
	}
	switch v := q.(type) {
	case *service.Service:
		if v.Registry().Kill(id) {
			fmt.Printf("killed %s\n", id)
		} else {
			fmt.Fprintf(os.Stderr, "windsql: no in-flight query %s\n", id)
		}
	case *service.Client:
		req, err := http.NewRequest(http.MethodDelete, v.Addr()+"/debug/queries/"+url.PathEscape(id), nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "windsql: \\kill: %v\n", err)
			return
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			fmt.Fprintf(os.Stderr, "windsql: \\kill: %v\n", err)
			return
		}
		defer resp.Body.Close()
		_, _ = io.Copy(io.Discard, resp.Body)
		if resp.StatusCode == http.StatusOK {
			fmt.Printf("killed %s\n", id)
		} else {
			fmt.Fprintf(os.Stderr, "windsql: \\kill: server answered %s\n", resp.Status)
		}
	default:
		fmt.Fprintln(os.Stderr, "windsql: backend exposes no query registry")
	}
}

// runSubscribe serves the shell's \subscribe mode: a live maintained
// cursor over stmt (the SUBSCRIBE prefix is optional) whose rows print
// the moment they arrive — the initial result tagged "init" in the _op
// column, then delta rows as appends land. Ctrl-C ends the subscription
// and returns to the shell; output is one CSV record (or, with -format
// json, one JSON object) per row, flushed per row, because a live stream
// has no natural batch boundary to buffer against.
func runSubscribe(q windowdb.Queryer, stmt, format string) bool {
	if _, ok := windowdb.StripSubscribe(stmt); !ok {
		stmt = "SUBSCRIBE " + stmt
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	start := time.Now()
	rows, err := q.QueryContext(ctx, stmt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "windsql: %v\n", err)
		return false
	}
	defer rows.Close()
	fmt.Println("subscribed — delta rows stream as appends land; Ctrl-C returns to the shell")

	n, err := streamLive(os.Stdout, rows, format)
	interrupted := ctx.Err() != nil
	_ = rows.Close()
	if err == nil && !interrupted {
		err = rows.Err()
	}
	if err != nil && !interrupted && !errors.Is(err, context.Canceled) {
		fmt.Fprintf(os.Stderr, "windsql: %v\n", err)
		return false
	}
	summary := fmt.Sprintf("\n(subscription closed after %d rows in %v", n, time.Since(start).Round(time.Millisecond))
	if m := rows.Metrics(); m != nil && m.Watermark > 0 {
		summary += fmt.Sprintf("; watermark %d", m.Watermark)
	}
	fmt.Println(summary + ")")
	return true
}

// streamLive prints a live cursor's rows with a flush after every row.
func streamLive(w io.Writer, rows *windowdb.Rows, format string) (int, error) {
	n := 0
	if format == "json" {
		cols := rows.Columns()
		names := make([][]byte, len(cols))
		for i, c := range cols {
			names[i], _ = json.Marshal(c)
		}
		var buf bytes.Buffer
		for rows.Next() {
			buf.Reset()
			buf.WriteByte('{')
			for i, v := range rows.Row() {
				if i > 0 {
					buf.WriteByte(',')
				}
				buf.Write(names[i])
				buf.WriteByte(':')
				jv, err := json.Marshal(service.JSONValue(v))
				if err != nil {
					return n, err
				}
				buf.Write(jv)
			}
			buf.WriteString("}\n")
			if _, err := w.Write(buf.Bytes()); err != nil {
				return n, err
			}
			n++
		}
		return n, nil
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(rows.Columns()); err != nil {
		return 0, err
	}
	cw.Flush()
	record := make([]string, len(rows.Columns()))
	for rows.Next() {
		for i, v := range rows.Row() {
			if v.IsNull() {
				record[i] = ""
			} else {
				record[i] = v.String()
			}
		}
		if err := cw.Write(record); err != nil {
			return n, err
		}
		cw.Flush()
		n++
	}
	return n, cw.Error()
}

// runStatement executes one statement through the Queryer, prints rows
// incrementally in the selected format, then the latency line. It reports
// success.
func runStatement(q windowdb.Queryer, stmt string, maxRows int, showPlan, showTrace bool, format string) bool {
	start := time.Now()
	rows, err := q.QueryContext(context.Background(), stmt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "windsql: %v\n", err)
		return false
	}
	defer rows.Close()

	n, truncated, err := printRows(os.Stdout, rows, maxRows, format)
	if err != nil {
		fmt.Fprintf(os.Stderr, "windsql: %v\n", err)
		return false
	}
	// Ending the cursor (drain or truncation Close) finalizes the metrics.
	_ = rows.Close()
	elapsed := time.Since(start)

	if truncated {
		fmt.Printf("... (first %d rows; -n 0 prints all)\n", n)
	}
	m := rows.Metrics()
	if m == nil {
		// A remote stream closed before its trailer has no confirmed
		// metadata; report what the client observed.
		fmt.Printf("\n(%d rows in %v)\n", n, elapsed.Round(time.Microsecond))
		return true
	}
	blocks := m.BlocksRead + m.BlocksWritten
	disposition := "plan cache miss"
	if m.CacheHit {
		disposition = "plan cache hit"
	}
	fmt.Printf("\n(%d rows in %v; %d I/O blocks: %d read, %d written; %s)\n",
		n, elapsed.Round(time.Microsecond), blocks, m.BlocksRead, m.BlocksWritten, disposition)
	if m.Route != "" {
		fmt.Printf("route: %s over %d shard(s)\n", m.Route, m.ShardsUsed)
	}
	if showPlan && m.Chain != "" {
		fmt.Printf("chain: %s\n", m.Chain)
		fmt.Printf("%d key comparisons; final sort: %s\n", m.Comparisons, m.FinalSort)
	}
	if showTrace {
		if m.Trace == nil {
			fmt.Println("trace: (none recorded)")
		} else {
			if m.TraceID != "" {
				fmt.Printf("trace %s:\n", m.TraceID)
			}
			for _, line := range trace.Render(m.Trace) {
				fmt.Printf("  %s\n", line)
			}
		}
	}
	return true
}

// printRows renders the cursor incrementally. It returns the number of
// rows printed and whether output stopped at maxRows with the stream
// still flowing.
func printRows(w io.Writer, rows *windowdb.Rows, maxRows int, format string) (int, bool, error) {
	var n int
	var truncated bool
	var err error
	switch format {
	case "csv":
		n, truncated, err = printCSV(w, rows, maxRows)
	case "json":
		n, truncated, err = printJSON(w, rows, maxRows)
	default:
		n, truncated, err = printTable(w, rows, maxRows)
	}
	if err != nil {
		return n, truncated, err
	}
	return n, truncated, rows.Err()
}

// printCSV streams rows through encoding/csv, header first.
func printCSV(w io.Writer, rows *windowdb.Rows, maxRows int) (int, bool, error) {
	cw := csv.NewWriter(w)
	if err := cw.Write(rows.Columns()); err != nil {
		return 0, false, err
	}
	n := 0
	record := make([]string, len(rows.Columns()))
	for rows.Next() {
		for i, v := range rows.Row() {
			if v.IsNull() {
				record[i] = ""
			} else {
				record[i] = v.String()
			}
		}
		if err := cw.Write(record); err != nil {
			return n, false, err
		}
		n++
		if n%64 == 0 {
			cw.Flush()
		}
		if maxRows > 0 && n >= maxRows {
			cw.Flush()
			// Probe one more row: an exact-boundary result is complete,
			// not truncated (and a remote cursor gets to read its trailer).
			return n, rows.Next(), cw.Error()
		}
	}
	cw.Flush()
	return n, false, cw.Error()
}

// printJSON streams one JSON object per line, preserving column order.
func printJSON(w io.Writer, rows *windowdb.Rows, maxRows int) (int, bool, error) {
	bw := bufio.NewWriter(w)
	cols := rows.Columns()
	names := make([][]byte, len(cols))
	for i, c := range cols {
		names[i], _ = json.Marshal(c)
	}
	n := 0
	var buf bytes.Buffer
	for rows.Next() {
		buf.Reset()
		buf.WriteByte('{')
		for i, v := range rows.Row() {
			if i > 0 {
				buf.WriteByte(',')
			}
			buf.Write(names[i])
			buf.WriteByte(':')
			jv, err := json.Marshal(service.JSONValue(v))
			if err != nil {
				return n, false, err
			}
			buf.Write(jv)
		}
		buf.WriteString("}\n")
		if _, err := bw.Write(buf.Bytes()); err != nil {
			return n, false, err
		}
		n++
		if n%64 == 0 {
			if err := bw.Flush(); err != nil {
				return n, false, err
			}
		}
		if maxRows > 0 && n >= maxRows {
			if err := bw.Flush(); err != nil {
				return n, false, err
			}
			return n, rows.Next(), nil
		}
	}
	return n, false, bw.Flush()
}

// tableProbeRows is how many rows the table format buffers to size its
// columns before streaming the rest with fixed widths.
const tableProbeRows = 64

// printTable renders padded columns. Column widths come from the header
// and the first tableProbeRows rows; later, wider values overflow their
// cell rather than re-layout — the price of streaming output.
func printTable(w io.Writer, rows *windowdb.Rows, maxRows int) (int, bool, error) {
	bw := bufio.NewWriter(w)
	cols := rows.Columns()
	widths := make([]int, len(cols))
	for i, c := range cols {
		widths[i] = len(c)
	}

	probe := tableProbeRows
	if maxRows > 0 && maxRows < probe {
		probe = maxRows
	}
	var buffered []storage.Tuple
	doneEarly := false
	for len(buffered) < probe {
		if !rows.Next() {
			doneEarly = true
			break
		}
		row := rows.Row()
		buffered = append(buffered, row)
		for i, v := range row {
			if l := len(v.String()); l > widths[i] {
				widths[i] = l
			}
		}
	}

	writeRow := func(cells []string) error {
		for i, s := range cells {
			if i > 0 {
				bw.WriteString("  ")
			}
			fmt.Fprintf(bw, "%-*s", widths[i], s)
		}
		return bw.WriteByte('\n')
	}
	header := make([]string, len(cols))
	for i, c := range cols {
		header[i] = strings.ToUpper(c)
	}
	if err := writeRow(header); err != nil {
		return 0, false, err
	}
	cells := make([]string, len(cols))
	render := func(row storage.Tuple) error {
		for i, v := range row {
			cells[i] = v.String()
		}
		return writeRow(cells)
	}
	n := 0
	for _, row := range buffered {
		if err := render(row); err != nil {
			return n, false, err
		}
		n++
	}
	if maxRows > 0 && n >= maxRows && !doneEarly {
		// More rows may be flowing; report truncation only if one more
		// actually arrives.
		more := rows.Next()
		return n, more, bw.Flush()
	}
	if !doneEarly {
		for rows.Next() {
			if err := render(rows.Row()); err != nil {
				return n, false, err
			}
			n++
			if n%64 == 0 {
				if err := bw.Flush(); err != nil {
					return n, false, err
				}
			}
			if maxRows > 0 && n >= maxRows {
				more := rows.Next()
				return n, more, bw.Flush()
			}
		}
	}
	return n, false, bw.Flush()
}

func isTerminal(f *os.File) bool {
	info, err := f.Stat()
	if err != nil {
		return false
	}
	return info.Mode()&os.ModeCharDevice != 0
}
