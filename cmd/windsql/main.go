// Command windsql runs window-function SQL against generated datasets or
// CSV files, printing the result table, the window-function chain the
// optimizer produced, and per-statement execution metrics (wall time and
// block I/O via the query service's metrics plumbing), so the shell
// doubles as a manual latency probe.
//
// Usage:
//
//	windsql -q "SELECT empnum, rank() OVER (ORDER BY salary DESC) FROM emptab"
//	windsql -scheme PSQL -rows 50000 -q "SELECT ... FROM web_sales"
//	windsql -csv data.csv -table t -q "SELECT ... FROM t"
//	windsql                            # shell: statements from stdin
//
// Registered tables: emptab (Example 1 of the paper), web_sales,
// web_sales_s, web_sales_g (generated; -rows controls size), plus any
// -csv/-table pair. Without -q, statements are read line by line from
// stdin (a trailing ';' is accepted); repeating a statement shows the
// prepared-plan cache at work — the second run skips parse+bind+plan.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro"
	"repro/internal/cli"
	"repro/internal/service"
	"repro/internal/sql"
)

func main() {
	var (
		query    = flag.String("q", "", "SQL to execute (default: read statements from stdin)")
		scheme   = flag.String("scheme", "CSO", "optimization scheme: CSO|BFO|ORCL|PSQL")
		rows     = flag.Int("rows", 20_000, "generated web_sales rows")
		mem      = flag.Int("mem", 8<<20, "unit reorder memory in bytes")
		csvPath  = flag.String("csv", "", "optional CSV file to load")
		csvTable = flag.String("table", "csv", "table name for the CSV file")
		maxRows  = flag.Int("n", 40, "max rows to print (0 = all)")
		showPlan = flag.Bool("plan", true, "print the window-function chain")
	)
	flag.Parse()

	eng := windowdb.New(windowdb.Config{
		Scheme:       sql.Scheme(*scheme),
		SortMemBytes: *mem,
	})
	cli.RegisterStandardTables(eng, *rows)
	if err := cli.RegisterCSV(eng, *csvPath, *csvTable); err != nil {
		fmt.Fprintf(os.Stderr, "windsql: %v\n", err)
		os.Exit(1)
	}

	// One slot: an interactive shell runs one statement at a time, but the
	// service supplies the plan cache and the metrics plumbing.
	svc := service.New(eng, service.Config{Slots: 1})

	if *query != "" {
		if !runStatement(svc, *query, *maxRows, *showPlan) {
			os.Exit(1)
		}
		return
	}

	// Shell mode: one statement per line from stdin.
	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	interactive := isTerminal(os.Stdin)
	if interactive {
		fmt.Printf("windsql shell — tables %v; one statement per line, \\q quits\n", eng.Tables())
	}
	failed := false
	for {
		if interactive {
			fmt.Print("windsql> ")
		}
		if !in.Scan() {
			break
		}
		stmt := strings.TrimSpace(strings.TrimRight(strings.TrimSpace(in.Text()), ";"))
		if stmt == "" {
			continue
		}
		if stmt == `\q` || strings.EqualFold(stmt, "exit") || strings.EqualFold(stmt, "quit") {
			break
		}
		if !runStatement(svc, stmt, *maxRows, *showPlan) {
			failed = true
		}
	}
	if err := in.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "windsql: %v\n", err)
		os.Exit(1)
	}
	// Piped scripts check $?: any failed statement fails the run. An
	// interactive session stays exit 0, like other SQL shells.
	if failed && !interactive {
		os.Exit(1)
	}
}

// runStatement executes one statement through the service and prints the
// result plus its latency line. It reports success.
func runStatement(svc *service.Service, stmt string, maxRows int, showPlan bool) bool {
	res, err := svc.Query(context.Background(), stmt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "windsql: %v\n", err)
		return false
	}
	fmt.Print(sql.FormatTable(res.Table, maxRows))

	// The manual latency probe: per-query wall time and block I/O from the
	// service's metrics, plus the plan-cache disposition.
	var blocks, read, written int64
	if res.Metrics != nil {
		read, written = res.Metrics.BlocksRead, res.Metrics.BlocksWritten
		blocks = read + written
	}
	disposition := "plan cache miss"
	if res.CacheHit {
		disposition = "plan cache hit"
	}
	fmt.Printf("\n(%d rows in %v; %d I/O blocks: %d read, %d written; %s)\n",
		res.Table.Len(), res.Elapsed.Round(time.Microsecond), blocks, read, written, disposition)
	if showPlan && res.Plan != nil {
		fmt.Printf("chain [%s]: %s\n", res.Plan.Scheme, res.Plan.PaperString())
		if res.Metrics != nil {
			fmt.Printf("%d key comparisons; final sort: %s\n", res.Metrics.Comparisons, res.FinalSort)
		}
	}
	return true
}

func isTerminal(f *os.File) bool {
	info, err := f.Stat()
	if err != nil {
		return false
	}
	return info.Mode()&os.ModeCharDevice != 0
}
