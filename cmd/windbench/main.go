// Command windbench regenerates the paper's evaluation (Section 6) on this
// repository's substrate: Figures 3–8, the plan Tables 4/6/8/10, the
// optimizer-overhead Table 11, and the design-choice ablations.
//
// Usage:
//
//	windbench -exp all                 # everything (default)
//	windbench -exp fig3 -rows 300000   # FS vs HS micro-benchmark, bigger table
//	windbench -exp fig5                # Q6 scheme comparison
//	windbench -exp plans               # Tables 4, 6, 8, 10
//	windbench -exp table11 -queries 5  # optimizer overheads
//	windbench -exp ablation
//	windbench -exp parallel            # parallel multi-window speedup sweep
//	windbench -exp sharded             # scatter-gather cluster scaleout sweep
//	windbench -exp shuffle             # key-divergent per-segment shuffle sweep
//	windbench -exp service -servdur 2s # query-service closed-loop load
//	windbench -exp service -arrival 25 -slo 2s  # + open-loop fixed-rate point with SLO attainment
//	windbench -exp share               # correlated-dashboard sharing A/B (subplan cache on vs off)
//	windbench -exp append              # append ingestion + incremental maintenance vs full recompute
//
// With -json PATH, the parallel, sharded, shuffle and service results
// (whichever of them ran) are additionally written as a bench.Trajectory
// artifact — the perf baseline CI records per change so later work has a
// recorded trajectory to diff against:
//
//	windbench -exp parallel,sharded,shuffle,service -json BENCH_pr5.json
//
// With -compare PATH, the run's results are additionally matched against
// the baseline artifact at PATH: every baseline point must have run and be
// no slower than the allowed -tolerance (default +25%), or windbench exits
// non-zero — the CI bench-regression gate:
//
//	windbench -exp shuffle -compare BENCH_baseline.json -tolerance 0.25
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment: fig3|fig4|fig5|fig6|fig7|fig8|plans|table11|ablation|parallel|sharded|shuffle|service|share|append|all")
		rows      = flag.Int("rows", 120_000, "web_sales rows (paper: 72M at scale factor 100)")
		seed      = flag.Int64("seed", 0, "generator seed (0 = default)")
		blockSize = flag.Int("blocksize", 8192, "simulated page size in bytes")
		queries   = flag.Int("queries", 5, "random queries per point for table11")
		servDur   = flag.Duration("servdur", 2*time.Second, "service load duration per concurrency degree (also the open-loop arrival window)")
		servRows  = flag.Int("servrows", 10_000, "web_sales rows for the service load harness")
		arrival   = flag.Float64("arrival", 0, "open-loop arrival rate in qps: adds a fixed-rate point to -exp service (0 = closed-loop only)")
		slo       = flag.Duration("slo", 0, "latency SLO for the -arrival point: fails unless 95% of arrivals complete within it")
		jsonPath  = flag.String("json", "", "write the parallel/sharded/service results as a JSON trajectory artifact to this path")
		compare   = flag.String("compare", "", "compare this run's results against the baseline trajectory at this path; exits 1 on regression")
		tolerance = flag.Float64("tolerance", 0.25, "allowed fractional slowdown vs the -compare baseline (0.25 = +25%)")
		codec     = flag.String("codec", "", "wire codec for the HTTP bench points: binary (default) or json — the NDJSON-vs-frame A/B knob")
	)
	flag.Parse()

	cfg := bench.Config{Rows: *rows, Seed: *seed, BlockSize: *blockSize, WireCodec: *codec}
	out := os.Stdout

	wants := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		wants[strings.TrimSpace(strings.ToLower(e))] = true
	}
	all := wants["all"]
	want := func(name string) bool { return all || wants[name] }

	needData := all || wants["fig3"] || wants["fig4"] || wants["fig5"] ||
		wants["fig6"] || wants["fig7"] || wants["fig8"] || wants["plans"] ||
		wants["ablation"] || wants["parallel"] || wants["sharded"] || wants["shuffle"]
	var d *bench.Dataset
	if needData {
		start := time.Now()
		fmt.Fprintf(out, "generating web_sales (%d rows) and its sorted/grouped variants...\n", *rows)
		d = bench.Build(cfg)
		fmt.Fprintf(out, "done in %v; B(web_sales) = %d blocks of %d bytes\n\n",
			time.Since(start).Round(time.Millisecond), d.Blocks, *blockSize)
	}

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "windbench: %v\n", err)
		os.Exit(1)
	}

	if want("plans") {
		if err := d.PrintPlans(out); err != nil {
			fail(err)
		}
	}
	if want("fig3") {
		if _, err := d.RunFig3(out); err != nil {
			fail(err)
		}
		fmt.Fprintln(out)
	}
	if want("fig4") {
		if _, err := d.RunFig4(out); err != nil {
			fail(err)
		}
		fmt.Fprintln(out)
	}
	for q, e := range map[string]string{"Q6": "fig5", "Q7": "fig6", "Q8": "fig7", "Q9": "fig8"} {
		if want(e) {
			if _, err := d.RunSchemes(q, out); err != nil {
				fail(err)
			}
			fmt.Fprintln(out)
		}
	}
	if want("table11") {
		if _, err := bench.RunTable11(*queries, out); err != nil {
			fail(err)
		}
		fmt.Fprintln(out)
	}
	if want("ablation") {
		if _, err := d.RunAblations(out); err != nil {
			fail(err)
		}
		fmt.Fprintln(out)
	}
	traj := bench.NewTrajectory(cfg)
	if want("parallel") {
		res, err := d.RunParallel(out)
		if err != nil {
			fail(err)
		}
		traj.Parallel = res
		fmt.Fprintln(out)
	}
	if want("sharded") {
		res, err := d.RunSharded(out)
		if err != nil {
			fail(err)
		}
		traj.Sharded = res
		fmt.Fprintln(out)
	}
	if want("shuffle") {
		res, err := d.RunShuffle(out)
		if err != nil {
			fail(err)
		}
		traj.Shuffle = res
		fmt.Fprintln(out)
	}
	if want("service") {
		scfg := bench.ServiceConfig{Rows: *servRows, Seed: *seed, Duration: *servDur}
		res, err := bench.RunService(scfg, out)
		if err != nil {
			fail(err)
		}
		traj.Service = res
		fmt.Fprintln(out)
		if *arrival > 0 {
			olres, err := bench.RunOpenLoop(bench.OpenLoopConfig{
				Rows: *servRows, Seed: *seed, Rate: *arrival, Duration: *servDur, SLO: *slo,
			}, out)
			if err != nil {
				fail(err)
			}
			traj.OpenLoop = []bench.OpenLoopResult{olres}
			fmt.Fprintln(out)
		}
	}
	if want("share") {
		res, err := bench.RunShare(bench.ShareConfig{Seed: *seed}, out)
		if err != nil {
			fail(err)
		}
		traj.Share = res
		fmt.Fprintln(out)
	}
	if want("append") {
		res, err := bench.RunAppend(bench.AppendConfig{Rows: *rows, Seed: *seed}, out)
		if err != nil {
			fail(err)
		}
		traj.Append = res
	}
	if *jsonPath != "" {
		if err := traj.Write(*jsonPath); err != nil {
			fail(err)
		}
		fmt.Fprintf(out, "trajectory artifact written to %s\n", *jsonPath)
	}
	if *compare != "" {
		base, err := bench.LoadTrajectory(*compare)
		if err != nil {
			fail(err)
		}
		pts, missing, err := bench.Compare(base, traj, *tolerance)
		if err != nil {
			fail(err)
		}
		fmt.Fprintln(out)
		if n := bench.ReportComparison(out, pts, missing, *tolerance); n > 0 {
			fmt.Fprintf(os.Stderr, "windbench: %d point(s) regressed beyond +%.0f%% of %s\n", n, *tolerance*100, *compare)
			os.Exit(1)
		}
		fmt.Fprintf(out, "all %d baseline point(s) within tolerance\n", len(pts))
	}
}
