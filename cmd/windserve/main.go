// Command windserve is the HTTP/JSON front end of the query service: a
// windowdb.Engine wrapped in internal/service's prepared-plan cache,
// admission control and metrics, listening on three endpoints:
//
//	POST /query   {"sql": "SELECT ...", "max_rows": 100, "timeout_ms": 5000}
//	GET  /query?q=SELECT+...
//	GET  /stats   service counters (QPS, p50/p95/p99, cache, admission)
//	GET  /healthz liveness probe
//
// It registers the same tables as windsql: emptab (Example 1 of the
// paper), web_sales and its sorted/grouped variants (-rows controls size),
// plus any -csv/-table pair. Example round trip:
//
//	windserve -addr :8080 -rows 20000 &
//	curl -s localhost:8080/query -d '{"sql":"SELECT ws_item_sk, rank() OVER (PARTITION BY ws_item_sk ORDER BY ws_sold_time_sk) AS r FROM web_sales", "max_rows": 3}'
//	curl -s localhost:8080/stats
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro"
	"repro/internal/cli"
	"repro/internal/service"
	"repro/internal/sql"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		scheme  = flag.String("scheme", "CSO", "optimization scheme: CSO|BFO|ORCL|PSQL")
		rows    = flag.Int("rows", 20_000, "generated web_sales rows")
		mem     = flag.Int("mem", 8<<20, "unit reorder memory M in bytes")
		budget  = flag.Int("budget", 0, "global reorder-memory budget in bytes (0 = 4 chains' worth)")
		slots   = flag.Int("slots", 0, "execution slots (0 = budget / per-chain memory)")
		queue   = flag.Int("queue", 64, "admission queue bound (-1 = no queue)")
		cache   = flag.Int("cachesize", 256, "plan cache entries")
		timeout = flag.Duration("timeout", 30*time.Second, "default per-query timeout (0 = none)")
		// Serving concurrency comes from the clients; per-query parallel
		// workers multiply each admitted chain's memory claim (the governor
		// accounts M × degree per slot), so they are opt-in here.
		parallelism = flag.Int("parallelism", 1, "per-query parallel worker degree (0 = GOMAXPROCS)")
		csvPath     = flag.String("csv", "", "optional CSV file to load")
		csvTable    = flag.String("table", "csv", "table name for the CSV file")
	)
	flag.Parse()

	eng := windowdb.New(windowdb.Config{
		Scheme:       sql.Scheme(*scheme),
		SortMemBytes: *mem,
		Parallelism:  *parallelism,
	})
	cli.RegisterStandardTables(eng, *rows)
	if err := cli.RegisterCSV(eng, *csvPath, *csvTable); err != nil {
		log.Fatalf("windserve: %v", err)
	}

	svc := service.New(eng, service.Config{
		MemoryBudgetBytes: *budget,
		Slots:             *slots,
		MaxQueue:          *queue,
		CacheEntries:      *cache,
		DefaultTimeout:    *timeout,
	})

	srv := &http.Server{Addr: *addr, Handler: svc.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
	}()

	fmt.Printf("windserve: listening on %s (%d slots, queue %d, cache %d, tables %v)\n",
		*addr, svc.Slots(), *queue, *cache, eng.Tables())
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("windserve: %v", err)
	}
}
