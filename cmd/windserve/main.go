// Command windserve is the HTTP/JSON front end of the query service: a
// windowdb.Engine wrapped in internal/service's prepared-plan cache,
// admission control and metrics, listening on three endpoints:
//
//	POST /query   {"sql": "SELECT ...", "max_rows": 100, "timeout_ms": 5000}
//	GET  /query?q=SELECT+...
//	GET  /stats   service counters (QPS, p50/p95/p99, cache, admission)
//	GET  /healthz liveness probe
//
// plus the /shard/* routes (query/register/table/distinct) that let a
// cluster coordinator use this process as a shard node.
//
// /query answers buffered JSON by default; "stream":true, ?stream=1 or
// `Accept: application/x-ndjson` switches to the chunked NDJSON row
// stream (service.Client and windsql -server consume it), whose
// admission slot is released the moment the client disconnects.
//
// Three roles, selected by flags:
//
//	windserve                          # single engine (the default)
//	windserve -shardnode               # shard node: starts with an empty
//	                                   # catalog, a coordinator pushes
//	                                   # partitions via /shard/register
//	windserve -shards host1,host2,...  # coordinator: shards the standard
//	                                   # tables across the named nodes and
//	                                   # serves scatter-gather /query,
//	                                   # aggregated /stats, fan-out /healthz
//
// A single-engine instance registers the same tables as windsql: emptab
// (Example 1 of the paper), web_sales and its sorted/grouped variants
// (-rows controls size), plus any -csv/-table pair. Example cluster:
//
//	windserve -shardnode -addr :8081 &
//	windserve -shardnode -addr :8082 &
//	windserve -shards 127.0.0.1:8081,127.0.0.1:8082 -addr :8080 &
//	curl -s localhost:8080/query -d '{"sql":"SELECT ws_item_sk, rank() OVER (PARTITION BY ws_item_sk ORDER BY ws_sold_time_sk) AS r FROM web_sales", "max_rows": 3}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro"
	"repro/internal/cli"
	"repro/internal/service"
	"repro/internal/shard"
	"repro/internal/sql"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		scheme   = flag.String("scheme", "CSO", "optimization scheme: CSO|BFO|ORCL|PSQL")
		rows     = flag.Int("rows", 20_000, "generated web_sales rows")
		mem      = flag.Int("mem", 8<<20, "unit reorder memory M in bytes")
		budget   = flag.Int("budget", 0, "global reorder-memory budget in bytes (0 = 4 chains' worth)")
		slots    = flag.Int("slots", 0, "execution slots (0 = budget / per-chain memory); in -shards mode: coordinator gather slots (0 = 4)")
		queue    = flag.Int("queue", 64, "admission queue bound (-1 = no queue)")
		cache    = flag.Int("cachesize", 256, "plan cache entries")
		share    = flag.Bool("share", true, "cross-query shared-subplan cache: concurrent queries over one (table, WHERE, partition key) share one scan+reorder execution")
		subplans = flag.Int("subplans", 32, "shared-subplan cache entries (each pins one materialized segment)")
		timeout  = flag.Duration("timeout", 30*time.Second, "default per-query timeout (0 = none)")
		// Serving concurrency comes from the clients; per-query parallel
		// workers multiply each admitted chain's memory claim (the governor
		// accounts M × degree per slot), so they are opt-in here.
		parallelism = flag.Int("parallelism", 1, "per-query parallel worker degree (0 = GOMAXPROCS)")
		csvPath     = flag.String("csv", "", "optional CSV file to load")
		csvTable    = flag.String("table", "csv", "table name for the CSV file")
		shards      = flag.String("shards", "", "comma-separated shard node addresses: run as cluster coordinator")
		shardNode   = flag.Bool("shardnode", false, "run as a shard node: empty catalog, tables arrive via /shard/register")
		codec       = flag.String("codec", "binary", "wire codec for row streams: binary (columnar frames) or json (NDJSON; also disables binary responses, as an old node would)")
		slowlog     = flag.Duration("slowlog", 0, "slow-query log threshold: queries at or over it emit one JSON line (trace tree included) to stderr (0 = off)")
		slowlograte = flag.Int("slowlograte", 0, "slow-query log cap in lines per second; suppressed lines are counted onto the next emitted line (0 = default 10, negative = uncapped)")
		traceRing   = flag.Int("tracering", 128, "recent query traces kept for /debug/trace/{id} (negative = off)")
		pprofAddr   = flag.String("pprof", "", "optional private listen address for net/http/pprof (e.g. 127.0.0.1:6060); never mounted on the public mux")
	)
	flag.Parse()
	if *codec != string(service.CodecBinary) && *codec != string(service.CodecJSON) {
		log.Fatalf("windserve: -codec must be %q or %q, got %q", service.CodecBinary, service.CodecJSON, *codec)
	}

	engCfg := windowdb.Config{
		Scheme:       sql.Scheme(*scheme),
		SortMemBytes: *mem,
		Parallelism:  *parallelism,
	}

	startPprof(*pprofAddr)

	if *shards != "" {
		// Coordinator role. -slots bounds coordinator-side gather chains;
		// -budget and -queue govern the shard nodes' own admission and are
		// set where those processes start.
		serveCoordinator(coordinatorConfig{
			shardList: *shards, addr: *addr, eng: engCfg,
			rows: *rows, cacheEntries: *cache,
			gatherSlots: *slots, timeout: *timeout,
			csvPath: *csvPath, csvTable: *csvTable,
			codec:   service.WireCodec(*codec),
			slowlog: *slowlog, slowlogRate: *slowlograte, traceRing: *traceRing,
		})
		return
	}

	eng := windowdb.New(engCfg)
	if !*shardNode {
		cli.RegisterStandardTables(eng, *rows)
		if err := cli.RegisterCSV(eng, *csvPath, *csvTable); err != nil {
			log.Fatalf("windserve: %v", err)
		}
	}

	svc := service.New(eng, service.Config{
		MemoryBudgetBytes: *budget,
		Slots:             *slots,
		MaxQueue:          *queue,
		CacheEntries:      *cache,
		SubplanEntries:    *subplans,
		DisableSharing:    !*share,
		DefaultTimeout:    *timeout,
		// Only shard nodes expose the /shard/* surface: register/table
		// would let any client overwrite or dump tables on a public
		// single-engine server.
		ShardRoutes:      *shardNode,
		DisableBinary:    *codec == string(service.CodecJSON),
		TraceRing:        *traceRing,
		SlowLogThreshold: *slowlog,
		SlowLogRate:      *slowlograte,
	})

	role := "engine"
	if *shardNode {
		role = "shard node"
	}
	fmt.Printf("windserve: %s listening on %s (%d slots, queue %d, cache %d, tables %v)\n",
		role, *addr, svc.Slots(), *queue, *cache, eng.Tables())
	serve(*addr, svc.Handler())
}

// coordinatorConfig carries the coordinator role's flag values.
type coordinatorConfig struct {
	shardList, addr    string
	eng                windowdb.Config
	rows, cacheEntries int
	gatherSlots        int
	timeout            time.Duration
	csvPath, csvTable  string
	codec              service.WireCodec
	slowlog            time.Duration
	slowlogRate        int
	traceRing          int
}

// serveCoordinator forms a cluster over the named shard nodes, distributes
// the standard tables, and serves the coordinator front end.
func serveCoordinator(cfg coordinatorConfig) {
	var transports []shard.Transport
	var addrs []string
	for _, a := range strings.Split(cfg.shardList, ",") {
		a = strings.TrimSpace(a)
		if a == "" {
			continue
		}
		addrs = append(addrs, a)
		transports = append(transports, shard.NewHTTPCodec(a, nil, cfg.codec))
	}
	cluster, err := shard.New(shard.Config{
		Engine:           cfg.eng,
		CacheEntries:     cfg.cacheEntries,
		GatherSlots:      cfg.gatherSlots,
		DefaultTimeout:   cfg.timeout,
		TraceRing:        cfg.traceRing,
		SlowLogThreshold: cfg.slowlog,
		SlowLogRate:      cfg.slowlogRate,
	}, transports)
	if err != nil {
		log.Fatalf("windserve: %v", err)
	}

	// Wait for every node before pushing partitions: cluster boots race
	// their shards' listeners.
	waitCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for {
		if err = cluster.Health(waitCtx); err == nil {
			break
		}
		select {
		case <-waitCtx.Done():
			log.Fatalf("windserve: shards never became healthy: %v", err)
		case <-time.After(100 * time.Millisecond):
		}
	}

	ctx := context.Background()
	if err := cli.RegisterStandardTablesSharded(ctx, cluster, cfg.rows); err != nil {
		log.Fatalf("windserve: sharding tables: %v", err)
	}
	if err := cli.RegisterCSVReplicated(ctx, cluster, cfg.csvPath, cfg.csvTable); err != nil {
		log.Fatalf("windserve: %v", err)
	}

	fmt.Printf("windserve: coordinator listening on %s (%d shards: %s)\n",
		cfg.addr, cluster.Shards(), strings.Join(addrs, ", "))
	serve(cfg.addr, cluster.Handler())
}

// startPprof exposes net/http/pprof on its own private listener when
// -pprof names an address. Deliberately a separate mux and server: the
// profiling surface never mounts on the public (or cluster-internal)
// handler, so exposing the query port exposes no heap dumps.
func startPprof(addr string) {
	if addr == "" {
		return
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	go func() {
		if err := http.ListenAndServe(addr, mux); err != nil {
			log.Printf("windserve: pprof listener: %v", err)
		}
	}()
	fmt.Printf("windserve: pprof on http://%s/debug/pprof/\n", addr)
}

// serve runs the HTTP server with graceful shutdown on SIGINT/SIGTERM.
func serve(addr string, h http.Handler) {
	srv := &http.Server{Addr: addr, Handler: h}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
	}()
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("windserve: %v", err)
	}
}
