package windowdb_test

import (
	"fmt"

	windowdb "repro"
	"repro/internal/datagen"
)

// Example reproduces the paper's Example 1: each employee's salary rank
// within their department and across the whole company.
func Example() {
	eng := windowdb.New(windowdb.Config{})
	eng.Register("emptab", datagen.Emptab())

	res, err := eng.Query(`
		SELECT empnum,
		       rank() OVER (PARTITION BY dept ORDER BY salary DESC NULLS LAST) AS rank_in_dept,
		       rank() OVER (ORDER BY salary DESC NULLS LAST) AS globalrank
		FROM emptab
		WHERE dept = 3
		ORDER BY rank_in_dept`)
	if err != nil {
		panic(err)
	}
	for _, row := range res.Table.Rows {
		fmt.Printf("emp %s: dept rank %s, global rank %s\n", row[0], row[1], row[2])
	}
	// Output:
	// emp 6: dept rank 1, global rank 1
	// emp 10: dept rank 2, global rank 2
	// emp 8: dept rank 3, global rank 3
}
