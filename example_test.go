package windowdb_test

import (
	"context"
	"database/sql"
	"fmt"

	windowdb "repro"
	"repro/internal/datagen"
	_ "repro/sqldriver"
)

// Example reproduces the paper's Example 1 on the streaming cursor
// surface: each employee's salary rank within their department and across
// the whole company, scanned row by row.
func Example() {
	eng := windowdb.New(windowdb.Config{})
	eng.Register("emptab", datagen.Emptab())

	rows, err := eng.QueryContext(context.Background(), `
		SELECT empnum,
		       rank() OVER (PARTITION BY dept ORDER BY salary DESC NULLS LAST) AS rank_in_dept,
		       rank() OVER (ORDER BY salary DESC NULLS LAST) AS globalrank
		FROM emptab
		WHERE dept = 3
		ORDER BY rank_in_dept`)
	if err != nil {
		panic(err)
	}
	defer rows.Close()
	for rows.Next() {
		var emp, deptRank, globalRank int64
		if err := rows.Scan(&emp, &deptRank, &globalRank); err != nil {
			panic(err)
		}
		fmt.Printf("emp %d: dept rank %d, global rank %d\n", emp, deptRank, globalRank)
	}
	if err := rows.Err(); err != nil {
		panic(err)
	}
	// Output:
	// emp 6: dept rank 1, global rank 1
	// emp 10: dept rank 2, global rank 2
	// emp 8: dept rank 3, global rank 3
}

// Example_databaseSQL plugs the engine into the standard database/sql
// ecosystem through the sqldriver package: register the engine under a
// DSN name, open it with the "windowdb" driver, and use plain *sql.DB
// scanning. A "http://host:port" DSN reaches a remote windserve the same
// way.
func Example_databaseSQL() {
	eng := windowdb.New(windowdb.Config{})
	eng.Register("emptab", datagen.Emptab())
	windowdb.RegisterDSN("example", eng)

	db, err := sql.Open("windowdb", "example")
	if err != nil {
		panic(err)
	}
	defer db.Close()

	rows, err := db.Query(`
		SELECT empnum, rank() OVER (ORDER BY salary DESC NULLS LAST) AS r
		FROM emptab ORDER BY r, empnum LIMIT 3`)
	if err != nil {
		panic(err)
	}
	defer rows.Close()
	for rows.Next() {
		var emp, rank int64
		if err := rows.Scan(&emp, &rank); err != nil {
			panic(err)
		}
		fmt.Printf("emp %d: rank %d\n", emp, rank)
	}
	if err := rows.Err(); err != nil {
		panic(err)
	}
	// Output:
	// emp 2: rank 1
	// emp 6: rank 2
	// emp 4: rank 3
}
