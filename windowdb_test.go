package windowdb

import (
	"context"
	"errors"
	"sync"
	"testing"

	"repro/internal/attrs"
	"repro/internal/datagen"
	"repro/internal/paper"
	"repro/internal/sql"
	"repro/internal/storage"
	"repro/internal/window"
)

func testEngine(scheme sql.Scheme) *Engine {
	eng := New(Config{Scheme: scheme, SortMemBytes: 1 << 20, BlockSize: 4096})
	eng.Register("emptab", datagen.Emptab())
	eng.Register("web_sales", datagen.WebSales(datagen.WebSalesConfig{Rows: 2000, Seed: 3, PadBytes: 16}))
	return eng
}

func TestEngineQuery(t *testing.T) {
	eng := testEngine(SchemeCSO)
	res, err := eng.Query(`SELECT empnum, rank() OVER (ORDER BY salary DESC NULLS LAST) AS r FROM emptab ORDER BY r, empnum`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.Len() != 10 {
		t.Fatalf("rows = %d", res.Table.Len())
	}
	if res.Table.Rows[0][0].Int64() != 2 {
		t.Errorf("top earner should be empnum 2, got %s", res.Table.Rows[0][0])
	}
}

func TestEngineEvaluateWindows(t *testing.T) {
	eng := testEngine(SchemeCSO)
	specs := paper.Q6()
	out, metrics, err := eng.EvaluateWindows("web_sales", specs)
	if err != nil {
		t.Fatal(err)
	}
	if out.Schema.Len() != datagen.WebSalesSchema().Len()+2 {
		t.Errorf("expected two derived columns")
	}
	if metrics == nil || len(metrics.Steps) != 2 {
		t.Errorf("metrics missing")
	}
}

func TestEnginePlanSchemes(t *testing.T) {
	specs := paper.Q6()
	for _, scheme := range []sql.Scheme{SchemeCSO, SchemeBFO, SchemeORCL, SchemePSQL} {
		eng := testEngine(scheme)
		plan, err := eng.Plan("web_sales", specs)
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		if plan.Scheme != string(scheme) {
			t.Errorf("plan scheme %q != %q", plan.Scheme, scheme)
		}
	}
	// Ablation variants through the facade.
	eng := New(Config{DisableSS: true, SortMemBytes: 1 << 20})
	eng.Register("web_sales", datagen.WebSales(datagen.WebSalesConfig{Rows: 500, Seed: 1, PadBytes: 8}))
	plan, err := eng.Plan("web_sales", specs)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ss := plan.ReorderCounts(); ss != 0 {
		t.Errorf("DisableSS plan still uses SS: %s", plan)
	}
}

func TestEngineParallel(t *testing.T) {
	eng := testEngine(SchemeCSO)
	spec := window.Spec{
		Kind: window.Rank, Arg: -1,
		PK: attrs.MakeSet(attrs.ID(datagen.ColItem)),
		OK: attrs.AscSeq(attrs.ID(datagen.ColSoldTime)),
	}
	out, err := eng.EvaluateParallel("web_sales", spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2000 {
		t.Errorf("rows = %d", out.Len())
	}
}

// TestEngineParallelism — Config.Parallelism routes EvaluateWindows and
// Query through the parallel chain executor with results identical to the
// sequential engine's.
func TestEngineParallelism(t *testing.T) {
	seq := testEngine(SchemeCSO)
	par := New(Config{Scheme: SchemeCSO, SortMemBytes: 1 << 20, BlockSize: 4096, Parallelism: 4})
	par.Register("web_sales", datagen.WebSales(datagen.WebSalesConfig{Rows: 2000, Seed: 3, PadBytes: 16}))

	specs := paper.Q6()
	seqOut, _, err := seq.EvaluateWindows("web_sales", specs)
	if err != nil {
		t.Fatal(err)
	}
	parOut, metrics, err := par.EvaluateWindows("web_sales", specs)
	if err != nil {
		t.Fatal(err)
	}
	if metrics == nil || len(metrics.Steps) != len(specs) {
		t.Fatalf("parallel metrics missing per-step entries")
	}
	if parOut.Len() != seqOut.Len() {
		t.Fatalf("parallel rows = %d, sequential %d", parOut.Len(), seqOut.Len())
	}
	byTag := func(tb *storage.Table) map[int64]string {
		m := make(map[int64]string, tb.Len())
		for _, r := range tb.Rows {
			m[r[datagen.ColOrderNumber].Int64()] = string(storage.AppendTuple(nil, r))
		}
		return m
	}
	want, got := byTag(seqOut), byTag(parOut)
	for tag, row := range want {
		if got[tag] != row {
			t.Fatalf("row %d differs between sequential and parallel engines", tag)
		}
	}

	// The SQL path routes too, and ORDER BY keeps results deterministic.
	const q = `SELECT ws_order_number, rank() OVER (PARTITION BY ws_item_sk ORDER BY ws_sold_date_sk) AS r
		FROM web_sales ORDER BY ws_order_number`
	seqRes, err := seq.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	parRes, err := par.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if parRes.Parallelism != 4 {
		t.Errorf("Result.Parallelism = %d, want 4", parRes.Parallelism)
	}
	for i := range seqRes.Table.Rows {
		a := string(storage.AppendTuple(nil, seqRes.Table.Rows[i]))
		b := string(storage.AppendTuple(nil, parRes.Table.Rows[i]))
		if a != b {
			t.Fatalf("query row %d differs between engines", i)
		}
	}
}

func TestEngineMFVBypass(t *testing.T) {
	eng := New(Config{MFVBypass: true, SortMemBytes: 32 << 10, BlockSize: 4096})
	eng.Register("web_sales", datagen.WebSales(datagen.WebSalesConfig{Rows: 4000, Seed: 2, PadBytes: 16}))
	spec := window.Spec{
		Kind: window.Rank, Arg: -1,
		PK: attrs.MakeSet(attrs.ID(datagen.ColWarehouse)),
		OK: attrs.AscSeq(attrs.ID(datagen.ColSoldTime)),
	}
	out, _, err := eng.EvaluateWindows("web_sales", []window.Spec{spec})
	if err != nil {
		t.Fatal(err)
	}
	// Cross-check one derived column against the reference evaluator.
	entry, _ := eng.Stats("web_sales")
	want, err := window.Reference(entry.Table().Rows, spec)
	if err != nil {
		t.Fatal(err)
	}
	wantByTag := map[int64]storage.Value{}
	for i, v := range want {
		wantByTag[entry.Table().Rows[i][datagen.ColOrderNumber].Int64()] = v
	}
	last := out.Schema.Len() - 1
	for _, row := range out.Rows {
		if !storage.Equal(row[last], wantByTag[row[datagen.ColOrderNumber].Int64()]) {
			t.Fatalf("MFV bypass changed results")
		}
	}
}

func TestEngineErrors(t *testing.T) {
	eng := testEngine(SchemeCSO)
	if _, err := eng.Query("SELECT * FROM missing"); err == nil {
		t.Errorf("missing table should fail")
	}
	if _, err := eng.Table("missing"); err == nil {
		t.Errorf("missing table lookup should fail")
	}
	if _, err := eng.Plan("missing", paper.Q6()); err == nil {
		t.Errorf("plan over missing table should fail")
	}
	bad := New(Config{Scheme: "NOPE"})
	bad.Register("web_sales", datagen.WebSales(datagen.WebSalesConfig{Rows: 10, Seed: 1, PadBytes: 8}))
	if _, err := bad.Plan("web_sales", paper.Q6()); err == nil {
		t.Errorf("unknown scheme should fail")
	}
}

func TestTablesListing(t *testing.T) {
	eng := testEngine(SchemeCSO)
	names := eng.Tables()
	if len(names) != 2 || names[0] != "emptab" || names[1] != "web_sales" {
		t.Errorf("Tables() = %v", names)
	}
}

// TestEngineConcurrentRegisterQuery exercises the documented concurrency
// contract: unrestricted Query/QueryContext/Prepare/EvaluateWindows from
// many goroutines concurrent with Register on the same engine. Under
// -race this is the engine's thread-safety proof.
func TestEngineConcurrentRegisterQuery(t *testing.T) {
	eng := testEngine(SchemeCSO)
	const q = `SELECT ws_item_sk, rank() OVER (PARTITION BY ws_item_sk ORDER BY ws_sold_time_sk) AS r FROM web_sales`
	ctx := context.Background()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				if _, err := eng.QueryContext(ctx, q); err != nil {
					t.Errorf("query: %v", err)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 8; i++ {
			// Replace web_sales (same schema, fresh entry) while queries run,
			// and keep the statistics caches busy on the side.
			eng.Register("web_sales", datagen.WebSales(datagen.WebSalesConfig{Rows: 1000 + 100*i, Seed: int64(i), PadBytes: 16}))
			if _, _, err := eng.EvaluateWindows("web_sales", []window.Spec{{
				Name: "r", Kind: window.Rank, Arg: -1,
				PK: attrs.MakeSet(paper.Item), PKOrder: attrs.AscSeq(paper.Item),
				OK: attrs.AscSeq(paper.Time),
			}}); err != nil {
				t.Errorf("evaluate: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	if gen := eng.Generation(); gen < 10 {
		t.Fatalf("generation %d, want >= 10 (2 initial + 8 replacements)", gen)
	}
}

// TestEngineQueryContextCancel: a cancelled context stops the chain at the
// next step boundary.
func TestEngineQueryContextCancel(t *testing.T) {
	eng := testEngine(SchemeCSO)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := eng.QueryContext(ctx, `SELECT ws_item_sk, rank() OVER (PARTITION BY ws_item_sk ORDER BY ws_sold_time_sk) AS r FROM web_sales`)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestEnginePrepareReuse: one prepared statement executes repeatedly (and
// concurrently) with identical results, skipping re-planning.
func TestEnginePrepareReuse(t *testing.T) {
	eng := testEngine(SchemeCSO)
	p, err := eng.Prepare(`SELECT empnum, rank() OVER (ORDER BY salary DESC NULLS LAST) AS r FROM emptab ORDER BY r, empnum`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Generation() != eng.Generation() {
		t.Fatalf("prepared under generation %d, engine at %d", p.Generation(), eng.Generation())
	}
	want, err := p.Execute()
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				res, err := p.ExecuteContext(context.Background())
				if err != nil {
					t.Errorf("execute: %v", err)
					return
				}
				if res.Table.Len() != want.Table.Len() {
					t.Errorf("rows = %d, want %d", res.Table.Len(), want.Table.Len())
					return
				}
				for ri, row := range res.Table.Rows {
					for ci := range row {
						if storage.Compare(row[ci], want.Table.Rows[ri][ci]) != 0 {
							t.Errorf("row %d col %d differs across executions", ri, ci)
							return
						}
					}
				}
			}
		}()
	}
	wg.Wait()
}
