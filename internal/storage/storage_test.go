package storage

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/attrs"
)

func TestValueCompareTotalOrder(t *testing.T) {
	vals := []Value{
		Null, Int(-5), Int(0), Int(3), Float(2.5), Float(3.0),
		StringVal(""), StringVal("a"), StringVal("b"),
	}
	// Antisymmetry and transitivity over all triples.
	for _, a := range vals {
		for _, b := range vals {
			if Compare(a, b) != -Compare(b, a) {
				t.Errorf("Compare(%s,%s) not antisymmetric", a, b)
			}
			for _, c := range vals {
				if Compare(a, b) <= 0 && Compare(b, c) <= 0 && Compare(a, c) > 0 {
					t.Errorf("Compare not transitive on %s,%s,%s", a, b, c)
				}
			}
		}
	}
	if Compare(Int(3), Float(3.0)) != 0 {
		t.Errorf("cross-kind numeric equality broken")
	}
	if Compare(Int(2), Float(2.5)) != -1 {
		t.Errorf("cross-kind numeric order broken")
	}
}

func TestNullOrdering(t *testing.T) {
	a := Tuple{Null}
	b := Tuple{Int(1)}
	asc := attrs.Elem{Attr: 0}
	if CompareAt(a, b, asc) != 1 {
		t.Errorf("nulls-last ascending: NULL should sort after values")
	}
	nf := attrs.Elem{Attr: 0, NullsFirst: true}
	if CompareAt(a, b, nf) != -1 {
		t.Errorf("nulls-first: NULL should sort before values")
	}
	desc := attrs.Elem{Attr: 0, Desc: true}
	if CompareAt(b, Tuple{Int(2)}, desc) != 1 {
		t.Errorf("descending order broken")
	}
	// NULL placement is direction-independent.
	if CompareAt(a, b, desc) != 1 {
		t.Errorf("nulls-last descending: NULL should still sort last")
	}
}

func randValue(rng *rand.Rand) Value {
	switch rng.Intn(4) {
	case 0:
		return Null
	case 1:
		return Int(rng.Int63n(1<<40) - 1<<39)
	case 2:
		return Float(rng.NormFloat64() * 1e6)
	default:
		n := rng.Intn(20)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(rng.Intn(256))
		}
		return StringVal(string(b))
	}
}

func TestCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		n := rng.Intn(8)
		tup := make(Tuple, n)
		for j := range tup {
			tup[j] = randValue(rng)
		}
		enc := AppendTuple(nil, tup)
		if len(enc) != EncodedSize(tup) {
			t.Fatalf("EncodedSize %d != actual %d for %s", EncodedSize(tup), len(enc), tup)
		}
		dec, consumed, err := DecodeTuple(enc)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if consumed != len(enc) {
			t.Fatalf("consumed %d of %d", consumed, len(enc))
		}
		if len(dec) != len(tup) {
			t.Fatalf("arity %d != %d", len(dec), len(tup))
		}
		for j := range tup {
			if tup[j].Kind() == KindFloat && math.IsNaN(tup[j].Float64()) {
				continue
			}
			if !Equal(dec[j], tup[j]) {
				t.Fatalf("value %d: %s != %s", j, dec[j], tup[j])
			}
		}
	}
}

func TestCodecBackToBack(t *testing.T) {
	tuples := []Tuple{
		{Int(1), StringVal("x")},
		{Null, Float(2.5)},
		{Int(-7)},
	}
	var buf []byte
	for _, tu := range tuples {
		buf = AppendTuple(buf, tu)
	}
	pos := 0
	for i, want := range tuples {
		got, n, err := DecodeTuple(buf[pos:])
		if err != nil {
			t.Fatalf("tuple %d: %v", i, err)
		}
		pos += n
		for j := range want {
			if !Equal(got[j], want[j]) {
				t.Fatalf("tuple %d col %d: %s != %s", i, j, got[j], want[j])
			}
		}
	}
	if pos != len(buf) {
		t.Fatalf("trailing bytes: %d of %d consumed", pos, len(buf))
	}
}

func TestDecodeCorrupt(t *testing.T) {
	if _, _, err := DecodeTuple([]byte{}); err == nil {
		t.Errorf("empty buffer should fail")
	}
	// Truncated string payload.
	enc := AppendTuple(nil, Tuple{StringVal("hello")})
	if _, _, err := DecodeTuple(enc[:len(enc)-2]); err == nil {
		t.Errorf("truncated buffer should fail")
	}
	if _, _, err := DecodeTuple([]byte{1, 99}); err == nil {
		t.Errorf("unknown kind should fail")
	}
}

func TestCompareSeqQuick(t *testing.T) {
	// Sorting by CompareSeq then checking SortedOn is self-consistent.
	err := quick.Check(func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := make([]Tuple, int(n%50)+2)
		for i := range rows {
			rows[i] = Tuple{Int(rng.Int63n(5)), Int(rng.Int63n(5))}
		}
		key := attrs.AscSeq(0, 1)
		tbl := &Table{Schema: NewSchema(Column{Name: "a"}, Column{Name: "b"}), Rows: rows}
		tbl.SortBy(key)
		return SortedOn(tbl.Rows, key)
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}

func TestEqualOn(t *testing.T) {
	a := Tuple{Int(1), Int(2), Null}
	b := Tuple{Int(1), Int(3), Null}
	if !EqualOn(a, b, attrs.MakeSet(0, 2)) {
		t.Errorf("EqualOn should treat NULL = NULL")
	}
	if EqualOn(a, b, attrs.MakeSet(1)) {
		t.Errorf("EqualOn wrong on differing column")
	}
	if !EqualOn(a, b, attrs.MakeSet()) {
		t.Errorf("EqualOn over empty set is vacuously true")
	}
}

func TestTableHelpers(t *testing.T) {
	tbl := NewTable(NewSchema(Column{Name: "a", Type: TypeInt}, Column{Name: "b", Type: TypeInt}))
	for i := 0; i < 10; i++ {
		tbl.MustAppend(Tuple{Int(int64(i % 3)), Int(int64(i))})
	}
	if tbl.Len() != 10 {
		t.Fatalf("Len = %d", tbl.Len())
	}
	if got := tbl.DistinctCount(attrs.MakeSet(0)); got != 3 {
		t.Errorf("DistinctCount(a) = %d, want 3", got)
	}
	if got := tbl.DistinctCount(attrs.MakeSet(0, 1)); got != 10 {
		t.Errorf("DistinctCount(a,b) = %d, want 10", got)
	}
	if err := tbl.Append(Tuple{Int(1)}); err == nil {
		t.Errorf("arity mismatch not rejected")
	}
	if tbl.Schema.ColIndex("B") != 1 {
		t.Errorf("ColIndex should be case-insensitive")
	}
	if tbl.Schema.ColIndex("missing") != -1 {
		t.Errorf("missing column should return -1")
	}
	clone := tbl.Clone()
	clone.Rows[0] = Tuple{Int(99), Int(99)}
	if tbl.Rows[0][0].Int64() == 99 {
		t.Errorf("Clone aliases rows slice")
	}
}
