package storage

import (
	"fmt"
	"sort"

	"repro/internal/attrs"
)

// Table is a fully materialized relation: a schema plus row storage. It is
// the unit the catalog registers and the executor scans.
type Table struct {
	Schema *Schema
	Rows   []Tuple
}

// NewTable builds an empty table over schema.
func NewTable(schema *Schema) *Table { return &Table{Schema: schema} }

// Append adds a row, validating arity.
func (t *Table) Append(row Tuple) error {
	if len(row) != t.Schema.Len() {
		return fmt.Errorf("storage: row arity %d != schema arity %d", len(row), t.Schema.Len())
	}
	t.Rows = append(t.Rows, row)
	return nil
}

// MustAppend adds a row and panics on arity mismatch; for generators/tests.
func (t *Table) MustAppend(row Tuple) {
	if err := t.Append(row); err != nil {
		panic(err)
	}
}

// Len returns the row count.
func (t *Table) Len() int { return len(t.Rows) }

// ByteSize returns the total serialized size of the table, the B(R) of the
// paper's cost models (in bytes; divide by the block size for blocks).
func (t *Table) ByteSize() int {
	n := 0
	for _, r := range t.Rows {
		n += EncodedSize(r)
	}
	return n
}

// Clone deep-copies the table's row slice (tuples are immutable).
func (t *Table) Clone() *Table {
	rows := make([]Tuple, len(t.Rows))
	copy(rows, t.Rows)
	return &Table{Schema: t.Schema, Rows: rows}
}

// SortBy stably sorts the table in place by the ordering sequence. It is a
// utility for dataset preparation (e.g. the paper's web_sales_s variant) and
// for reference results in tests; the engine's own sorting goes through the
// external-sort operators.
func (t *Table) SortBy(seq attrs.Seq) {
	sort.SliceStable(t.Rows, func(i, j int) bool {
		return CompareSeq(t.Rows[i], t.Rows[j], seq) < 0
	})
}

// DistinctCount returns the number of distinct values of the attribute set
// over the table (NULLs count as one value), i.e. the D(·) statistic of the
// cost models.
func (t *Table) DistinctCount(set attrs.Set) int {
	ids := set.IDs()
	seen := make(map[string]struct{}, 1024)
	var key []byte
	for _, r := range t.Rows {
		key = key[:0]
		for _, id := range ids {
			key = AppendTuple(key, Tuple{r[id]})
		}
		seen[string(key)] = struct{}{}
	}
	return len(seen)
}
