package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// The binary tuple codec used by the spill paths. Layout per tuple:
//
//	uvarint column count
//	per column: 1 byte kind, then payload
//	  KindNull:   nothing
//	  KindInt:    varint
//	  KindFloat:  8 bytes little-endian IEEE 754
//	  KindString: uvarint length + bytes
//
// The codec is self-describing per tuple so that heterogenous spill files
// (e.g. buckets of different window chains) need no schema side-channel.

// ErrCorrupt reports a malformed encoded tuple.
var ErrCorrupt = errors.New("storage: corrupt tuple encoding")

// AppendTuple appends the encoding of t to dst and returns the result.
func AppendTuple(dst []byte, t Tuple) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(t)))
	for _, v := range t {
		dst = append(dst, byte(v.kind))
		switch v.kind {
		case KindNull:
		case KindInt:
			dst = binary.AppendVarint(dst, v.i)
		case KindFloat:
			var buf [8]byte
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v.f))
			dst = append(dst, buf[:]...)
		case KindString:
			dst = binary.AppendUvarint(dst, uint64(len(v.s)))
			dst = append(dst, v.s...)
		}
	}
	return dst
}

// EncodedSize returns the exact number of bytes AppendTuple will add for t.
func EncodedSize(t Tuple) int {
	n := uvarintLen(uint64(len(t)))
	for _, v := range t {
		n++ // kind byte
		switch v.kind {
		case KindInt:
			n += varintLen(v.i)
		case KindFloat:
			n += 8
		case KindString:
			n += uvarintLen(uint64(len(v.s))) + len(v.s)
		}
	}
	return n
}

// DecodeTuple decodes one tuple from buf, returning the tuple and the number
// of bytes consumed.
func DecodeTuple(buf []byte) (Tuple, int, error) {
	ncols, n := binary.Uvarint(buf)
	if n <= 0 {
		return nil, 0, ErrCorrupt
	}
	if ncols > uint64(len(buf)) { // cheap sanity bound: ≥1 byte per column
		return nil, 0, fmt.Errorf("%w: column count %d", ErrCorrupt, ncols)
	}
	pos := n
	t := make(Tuple, ncols)
	for i := range t {
		if pos >= len(buf) {
			return nil, 0, ErrCorrupt
		}
		kind := Kind(buf[pos])
		pos++
		switch kind {
		case KindNull:
			t[i] = Null
		case KindInt:
			v, n := binary.Varint(buf[pos:])
			if n <= 0 {
				return nil, 0, ErrCorrupt
			}
			pos += n
			t[i] = Int(v)
		case KindFloat:
			if pos+8 > len(buf) {
				return nil, 0, ErrCorrupt
			}
			t[i] = Float(math.Float64frombits(binary.LittleEndian.Uint64(buf[pos:])))
			pos += 8
		case KindString:
			l, n := binary.Uvarint(buf[pos:])
			if n <= 0 {
				return nil, 0, ErrCorrupt
			}
			pos += n
			if uint64(pos)+l > uint64(len(buf)) {
				return nil, 0, ErrCorrupt
			}
			t[i] = StringVal(string(buf[pos : pos+int(l)]))
			pos += int(l)
		default:
			return nil, 0, fmt.Errorf("%w: kind %d", ErrCorrupt, kind)
		}
	}
	return t, pos, nil
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

func varintLen(v int64) int {
	uv := uint64(v) << 1
	if v < 0 {
		uv = ^uv
	}
	return uvarintLen(uv)
}
