package storage

import (
	"strings"
	"testing"
)

// fnvBuf is the reference definition the streaming hash must match:
// FNV-1a over the materialized AppendTuple encoding of the single-value
// tuple — the partitioning hash as the buffer-building implementation
// computed it. Row placement across shards depends on exact equality.
func fnvBuf(vals []Value) uint64 {
	var buf []byte
	for _, v := range vals {
		buf = AppendTuple(buf, Tuple{v})
	}
	h := HashSeedFNV
	for _, c := range buf {
		h = (h ^ uint64(c)) * fnvPrime64
	}
	return h
}

func TestHashValueFNVMatchesEncodedHash(t *testing.T) {
	cases := [][]Value{
		{Int(0)},
		{Int(1)},
		{Int(-1)},
		{Int(63)},  // single-byte zigzag boundary
		{Int(64)},  // two-byte zigzag
		{Int(-64)}, // single-byte negative boundary
		{Int(1<<62 + 12345)},
		{Int(-1 << 62)},
		{Float(0)},
		{Float(-3.75)},
		{Float(1e308)},
		{StringVal("")},
		{StringVal("a")},
		{StringVal("shard-key")},
		{StringVal(strings.Repeat("x", 200))}, // multi-byte length uvarint
		{Null},
		{Int(7), StringVal("mix"), Float(2.5), Null},
		{Null, Null, Int(-9)},
	}
	for _, vals := range cases {
		h := HashSeedFNV
		for _, v := range vals {
			h = HashValueFNV(h, v)
		}
		if want := fnvBuf(vals); h != want {
			t.Errorf("HashValueFNV(%v) = %#x, want %#x (encoded-buffer hash)", vals, h, want)
		}
	}
}

// TestExtendInPlace pins the arena contract: a tuple with spare capacity
// grows in place (same backing array), one without copies.
func TestExtendInPlace(t *testing.T) {
	arena := make([]Value, 3)
	row := Tuple(arena[0:2:3])
	row[0], row[1] = Int(1), Int(2)
	ext := row.Extend(Int(3))
	if &ext[0] != &row[0] {
		t.Fatalf("Extend with spare capacity reallocated")
	}
	if arena[2] != Int(3) {
		t.Fatalf("Extend did not land in the arena slot: %v", arena[2])
	}

	exact := Tuple{Int(1), Int(2)}
	ext2 := exact.Extend(Int(3))
	if len(exact) != 2 || cap(exact) < 2 {
		t.Fatalf("receiver mutated: %v", exact)
	}
	if len(ext2) != 3 || ext2[2] != Int(3) {
		t.Fatalf("Extend without capacity = %v", ext2)
	}
}
