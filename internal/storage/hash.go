package storage

import (
	"encoding/binary"
	"math"
)

// Streaming FNV-1a over the AppendTuple byte sequence, without building
// the buffer. The partitioning hash of the parallel and sharded executors
// is defined as FNV-1a over the concatenated single-value tuple encodings
// of the key attributes; HashValueFNV folds one value into the running
// hash byte-identically to hashing AppendTuple(dst, Tuple{v}), so rows
// partition exactly as they did when the hash materialized the encoding —
// a mixed-version cluster must never disagree on row placement.

// HashSeedFNV is the FNV-64a offset basis: the initial running hash.
const HashSeedFNV uint64 = 14695981039346656037

const fnvPrime64 uint64 = 1099511628211

func fnvByte(h uint64, b byte) uint64 { return (h ^ uint64(b)) * fnvPrime64 }

func fnvUvarint(h uint64, v uint64) uint64 {
	for v >= 0x80 {
		h = fnvByte(h, byte(v)|0x80)
		v >>= 7
	}
	return fnvByte(h, byte(v))
}

// HashValueFNV advances h by the encoding of the single-value tuple {v}:
// uvarint column count (always 1), the kind byte, then the value payload
// in the spill codec's layout.
func HashValueFNV(h uint64, v Value) uint64 {
	h = fnvByte(h, 1)
	h = fnvByte(h, byte(v.kind))
	switch v.kind {
	case KindInt:
		uv := uint64(v.i) << 1
		if v.i < 0 {
			uv = ^uv
		}
		h = fnvUvarint(h, uv)
	case KindFloat:
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v.f))
		for _, b := range buf {
			h = fnvByte(h, b)
		}
	case KindString:
		h = fnvUvarint(h, uint64(len(v.s)))
		for i := 0; i < len(v.s); i++ {
			h = fnvByte(h, v.s[i])
		}
	}
	return h
}
