package storage

import (
	"strings"
	"testing"

	"repro/internal/attrs"
)

func TestValueDisplay(t *testing.T) {
	cases := map[string]Value{
		"-":     Null,
		"42":    Int(42),
		"-7":    Int(-7),
		"2.5":   Float(2.5),
		"hello": StringVal("hello"),
	}
	for want, v := range cases {
		if got := v.String(); got != want {
			t.Errorf("%v.String() = %q, want %q", v.Kind(), got, want)
		}
	}
}

func TestKindAndTypeNames(t *testing.T) {
	if KindNull.String() != "NULL" || KindInt.String() != "INT" ||
		KindFloat.String() != "FLOAT" || KindString.String() != "STRING" {
		t.Errorf("kind names wrong")
	}
	if Kind(99).String() == "" {
		t.Errorf("unknown kind should still render")
	}
	if TypeInt.String() != "INT" || TypeFloat.String() != "FLOAT" || TypeString.String() != "STRING" {
		t.Errorf("column type names wrong")
	}
	if ColumnType(99).String() == "" {
		t.Errorf("unknown column type should still render")
	}
}

func TestValueAccessorPanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s should panic", name)
			}
		}()
		f()
	}
	expectPanic("Int64 on string", func() { StringVal("x").Int64() })
	expectPanic("Str on int", func() { Int(1).Str() })
	expectPanic("Float64 on string", func() { StringVal("x").Float64() })
}

func TestValueSizeMonotone(t *testing.T) {
	if StringVal("aaaaaaaaaa").Size() <= StringVal("a").Size() {
		t.Errorf("string size not monotone in length")
	}
	if Int(1).Size() <= 0 || Null.Size() <= 0 {
		t.Errorf("sizes must be positive")
	}
}

func TestTupleDisplayAndSize(t *testing.T) {
	tu := Tuple{Int(1), Null, StringVal("x")}
	s := tu.String()
	if !strings.Contains(s, "1") || !strings.Contains(s, "-") || !strings.Contains(s, "x") {
		t.Errorf("tuple display %q", s)
	}
	if tu.Size() <= 0 {
		t.Errorf("tuple size must be positive")
	}
	c := tu.Clone()
	c[0] = Int(9)
	if tu[0].Int64() != 1 {
		t.Errorf("Clone aliases")
	}
	ext := tu.Append(Float(1.5))
	if len(ext) != 4 || len(tu) != 3 {
		t.Errorf("Append must not mutate the receiver")
	}
}

func TestMixedKindTotalOrder(t *testing.T) {
	// Numeric sorts before string in the raw total order (needed by sort
	// operators on heterogenous columns).
	if Compare(Int(5), StringVal("a")) != -1 || Compare(StringVal("a"), Int(5)) != 1 {
		t.Errorf("numeric/string order broken")
	}
}

func TestSchemaHelpers(t *testing.T) {
	s := NewSchema(Column{Name: "a", Type: TypeInt}, Column{Name: "b", Type: TypeString})
	if s.MustCol("B") != 1 {
		t.Errorf("MustCol case-insensitivity")
	}
	defer func() {
		if recover() == nil {
			t.Errorf("MustCol on missing column should panic")
		}
	}()
	s.MustCol("zzz")
}

func TestWithColumnImmutability(t *testing.T) {
	s := NewSchema(Column{Name: "a", Type: TypeInt})
	s2 := s.WithColumn(Column{Name: "b", Type: TypeFloat})
	if s.Len() != 1 || s2.Len() != 2 {
		t.Errorf("WithColumn mutated the receiver")
	}
	if got := s2.Names(); got[1] != "b" {
		t.Errorf("Names = %v", got)
	}
}

func TestSortedOnEdge(t *testing.T) {
	if !SortedOn(nil, attrs.AscSeq(0)) {
		t.Errorf("empty slice is sorted")
	}
	rows := []Tuple{{Int(2)}, {Int(1)}}
	if SortedOn(rows, attrs.AscSeq(0)) {
		t.Errorf("descending rows misreported as sorted")
	}
	if !SortedOn(rows, attrs.Seq{{Attr: 0, Desc: true}}) {
		t.Errorf("descending key not honored")
	}
}
