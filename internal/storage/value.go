// Package storage provides the tuple-level substrate: typed values, tuples,
// schemas, comparators and a compact binary serialization used by the
// spill-to-disk paths of the sort and hash operators.
package storage

import (
	"fmt"
	"strconv"
)

// Kind enumerates the supported value types.
type Kind uint8

const (
	// KindNull is the SQL NULL marker; it carries no payload.
	KindNull Kind = iota
	// KindInt is a 64-bit signed integer.
	KindInt
	// KindFloat is a 64-bit IEEE float.
	KindFloat
	// KindString is an immutable byte string.
	KindString
)

// String names the kind for diagnostics.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INT"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "STRING"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a single column value. The zero Value is SQL NULL.
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
}

// Null is the SQL NULL value.
var Null = Value{}

// Int wraps an int64.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// Float wraps a float64.
func Float(v float64) Value { return Value{kind: KindFloat, f: v} }

// String wraps a string.
func StringVal(v string) Value { return Value{kind: KindString, s: v} }

// Kind returns the value's kind.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is SQL NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Int64 returns the integer payload; it panics on non-integers.
func (v Value) Int64() int64 {
	if v.kind != KindInt {
		panic("storage: Int64 on " + v.kind.String())
	}
	return v.i
}

// Float64 returns the float payload, widening integers.
func (v Value) Float64() float64 {
	switch v.kind {
	case KindFloat:
		return v.f
	case KindInt:
		return float64(v.i)
	}
	panic("storage: Float64 on " + v.kind.String())
}

// Str returns the string payload; it panics on non-strings.
func (v Value) Str() string {
	if v.kind != KindString {
		panic("storage: Str on " + v.kind.String())
	}
	return v.s
}

// String renders the value for display. NULL renders as "-" matching the
// paper's sample output in Example 1.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "-"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return v.s
	default:
		return "?"
	}
}

// numericRank orders kinds for cross-kind comparison: NULL handled by the
// caller, numerics compare by value, strings after numerics.
func numericKind(k Kind) bool { return k == KindInt || k == KindFloat }

// Compare orders two non-NULL values: -1 if v < w, 0 if equal, +1 if v > w.
// Integers and floats compare numerically with each other. Comparing a
// numeric against a string orders the numeric first (a total order is
// required by the sort operators; mixed-kind columns do not occur in
// well-typed relations but the order must still be total).
//
// NULL handling (nulls first/last, per ordering element) is the
// responsibility of CompareAt and the comparators built on it.
func Compare(v, w Value) int {
	if v.kind == KindNull || w.kind == KindNull {
		// NULLs compare equal to each other and precede non-NULLs in this
		// raw ordering; ordering elements override placement.
		switch {
		case v.kind == KindNull && w.kind == KindNull:
			return 0
		case v.kind == KindNull:
			return -1
		default:
			return 1
		}
	}
	if numericKind(v.kind) && numericKind(w.kind) {
		if v.kind == KindInt && w.kind == KindInt {
			switch {
			case v.i < w.i:
				return -1
			case v.i > w.i:
				return 1
			default:
				return 0
			}
		}
		a, b := v.Float64(), w.Float64()
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		default:
			return 0
		}
	}
	if numericKind(v.kind) != numericKind(w.kind) {
		if numericKind(v.kind) {
			return -1
		}
		return 1
	}
	// Both strings.
	switch {
	case v.s < w.s:
		return -1
	case v.s > w.s:
		return 1
	default:
		return 0
	}
}

// Equal reports deep value equality (NULL equals NULL).
func Equal(v, w Value) bool { return Compare(v, w) == 0 }

// Size returns the approximate in-memory footprint of the value in bytes,
// used by memory-budgeted operators.
func (v Value) Size() int {
	const header = 8 // kind + padding amortized
	switch v.kind {
	case KindString:
		return header + 16 + len(v.s)
	default:
		return header + 8
	}
}
