package storage

import (
	"fmt"
	"strings"

	"repro/internal/attrs"
)

// Tuple is a row: one Value per schema column.
type Tuple []Value

// Clone returns a deep-enough copy (values are immutable).
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// Append returns a tuple extended with v. The receiver is never mutated;
// use it when the receiver's backing array may be shared.
func (t Tuple) Append(v Value) Tuple {
	out := make(Tuple, len(t)+1)
	copy(out, t)
	out[len(t)] = v
	return out
}

// Extend appends v, reusing the receiver's spare capacity when it has any
// — the in-place twin of Append. The caller must own the backing array
// past len(t): the executor's arena-allocated rows reserve one slot per
// chain step for exactly this, so a k-step chain extends every row k
// times with zero per-row allocations. Tuples with no spare capacity
// (decoded from a spill or the wire, or engine-table rows) degrade to an
// Append-style copy via the append builtin.
func (t Tuple) Extend(v Value) Tuple {
	return append(t, v)
}

// Size approximates the in-memory footprint in bytes.
func (t Tuple) Size() int {
	n := 24 // slice header + allocation overhead
	for _, v := range t {
		n += v.Size()
	}
	return n
}

// String renders the tuple for diagnostics.
func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = v.String()
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// ColumnType describes a schema column's declared type.
type ColumnType uint8

const (
	// TypeInt declares a 64-bit integer column.
	TypeInt ColumnType = iota
	// TypeFloat declares a float64 column.
	TypeFloat
	// TypeString declares a string column.
	TypeString
)

// String names the column type.
func (c ColumnType) String() string {
	switch c {
	case TypeInt:
		return "INT"
	case TypeFloat:
		return "FLOAT"
	case TypeString:
		return "STRING"
	default:
		return fmt.Sprintf("ColumnType(%d)", uint8(c))
	}
}

// Column is one schema column.
type Column struct {
	Name string
	Type ColumnType
}

// Schema describes a relation's columns.
type Schema struct {
	Columns []Column
}

// NewSchema builds a schema from columns.
func NewSchema(cols ...Column) *Schema { return &Schema{Columns: cols} }

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.Columns) }

// ColIndex returns the index of the named column, or -1.
func (s *Schema) ColIndex(name string) int {
	for i, c := range s.Columns {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// MustCol returns the attribute ID of the named column; it panics when the
// column does not exist. Intended for tests and examples with known schemas.
func (s *Schema) MustCol(name string) attrs.ID {
	i := s.ColIndex(name)
	if i < 0 {
		panic(fmt.Sprintf("storage: no column %q", name))
	}
	return attrs.ID(i)
}

// WithColumn returns a new schema extended by one column; the receiver is
// unchanged. Window-function evaluation extends schemas this way.
func (s *Schema) WithColumn(c Column) *Schema {
	cols := make([]Column, len(s.Columns)+1)
	copy(cols, s.Columns)
	cols[len(s.Columns)] = c
	return &Schema{Columns: cols}
}

// Names returns all column names in order.
func (s *Schema) Names() []string {
	out := make([]string, len(s.Columns))
	for i, c := range s.Columns {
		out[i] = c.Name
	}
	return out
}

// CompareAt orders tuples a and b by the ordering element e: direction and
// null placement are honored. Returns -1/0/+1.
func CompareAt(a, b Tuple, e attrs.Elem) int {
	va, vb := a[e.Attr], b[e.Attr]
	an, bn := va.IsNull(), vb.IsNull()
	if an || bn {
		switch {
		case an && bn:
			return 0
		case an:
			if e.NullsFirst {
				return -1
			}
			return 1
		default:
			if e.NullsFirst {
				return 1
			}
			return -1
		}
	}
	c := Compare(va, vb)
	if e.Desc {
		return -c
	}
	return c
}

// CompareSeq orders tuples by an ordering sequence.
func CompareSeq(a, b Tuple, seq attrs.Seq) int {
	for _, e := range seq {
		if c := CompareAt(a, b, e); c != 0 {
			return c
		}
	}
	return 0
}

// EqualOn reports whether a and b agree on every attribute in set (NULLs
// compare equal, as in SQL grouping semantics).
func EqualOn(a, b Tuple, set attrs.Set) bool {
	for _, id := range set.IDs() {
		if !Equal(a[id], b[id]) {
			return false
		}
	}
	return true
}

// EqualOnSeq reports whether a and b agree on every attribute of the
// sequence (directions are irrelevant for equality).
func EqualOnSeq(a, b Tuple, seq attrs.Seq) bool {
	for _, e := range seq {
		if !Equal(a[e.Attr], b[e.Attr]) {
			return false
		}
	}
	return true
}

// SortedOn reports whether rows are non-decreasing under seq. Used by tests
// and by the stream property validators.
func SortedOn(rows []Tuple, seq attrs.Seq) bool {
	for i := 1; i < len(rows); i++ {
		if CompareSeq(rows[i-1], rows[i], seq) > 0 {
			return false
		}
	}
	return true
}
