package reorder

import (
	"fmt"

	"repro/internal/attrs"
	"repro/internal/storage"
	"repro/internal/stream"
)

// SSOptions configures one Segmented Sort.
type SSOptions struct {
	// Alpha is the prefix of the input's per-segment ordering shared with
	// the target key: consecutive tuples with equal Alpha values form one
	// sort unit. Empty Alpha (legal only when the stream is segmented, i.e.
	// X ≠ ∅) makes the whole segment one unit.
	Alpha attrs.Seq
	// Beta is the ordering each unit is sorted on (the target key minus the
	// α prefix, with grouped-constant attributes dropped).
	Beta attrs.Seq
	// SegmentBy optionally detects segment boundaries by value change on
	// these attributes, in addition to explicit stream boundary flags. This
	// realizes the grouped relation R^g_{X,Y}, whose segment structure is
	// implicit in the X values (e.g. the paper's web_sales_g input, grouped
	// on ws_quantity with no physical markers).
	SegmentBy []attrs.ID
}

// SSStats reports a SegmentedSort execution.
type SSStats struct {
	Segments      int
	Units         int
	ExternalUnits int // units whose sort spilled
	InputTuples   int
	MaxUnitTuples int
}

// SegmentedSort reorders a segmented stream per Section 3.3: each α-group
// within each segment is sorted independently on β. Segment boundaries are
// preserved, so the output keeps the input's X property with the new
// per-segment ordering.
//
// The operator streams: it buffers exactly one α-group at a time (spilling
// through the configured sorter if a single group exceeds the budget), so
// its memory footprint is one unit, not the relation — the source of SS's
// dominance in Fig. 4.
func SegmentedSort(in stream.Stream, opt SSOptions, cfg Config) (stream.Stream, *SSStats, error) {
	if cfg.Store == nil && cfg.MemoryBytes > 0 {
		return nil, nil, fmt.Errorf("reorder: SegmentedSort with a memory budget requires a spill store")
	}
	st := &SSStats{}
	return &ssStream{
		in:     in,
		opt:    opt,
		cfg:    cfg,
		segSet: attrs.MakeSet(opt.SegmentBy...),
		stats:  st,
	}, st, nil
}

type ssStream struct {
	in     stream.Stream
	opt    SSOptions
	cfg    Config
	segSet attrs.Set
	stats  *SSStats

	current  []storage.Tuple // sorted unit being emitted
	pos      int
	boundary bool // the unit being emitted starts a new segment

	pending    storage.Tuple // first tuple of the next unit
	pendingSeg bool
	prev       storage.Tuple // last input tuple consumed
	primed     bool
	done       bool
	err        error
}

// newSegment reports whether row r begins a new segment relative to prev.
func (s *ssStream) newSegment(prev storage.Tuple, r stream.Row) bool {
	if r.Boundary {
		return true
	}
	if prev == nil || s.segSet.Empty() {
		return false
	}
	return !storage.EqualOn(prev, r.Tuple, s.segSet)
}

func (s *ssStream) Next() (stream.Row, bool) {
	for {
		if s.pos < len(s.current) {
			r := stream.Row{Tuple: s.current[s.pos], Boundary: s.pos == 0 && s.boundary}
			s.pos++
			return r, true
		}
		if s.done {
			return stream.Row{}, false
		}
		if err := s.fillUnit(); err != nil {
			s.err = err
			return stream.Row{}, false
		}
		if len(s.current) == 0 {
			s.done = true
			return stream.Row{}, false
		}
	}
}

// fillUnit buffers the next α-group and sorts it on β.
func (s *ssStream) fillUnit() error {
	if !s.primed {
		r, ok := s.in.Next()
		if !ok {
			s.done = true
			s.current = nil
			return s.in.Close()
		}
		s.pending = r.Tuple
		s.pendingSeg = true // first row of the stream starts a segment
		s.prev = r.Tuple
		s.primed = true
		s.stats.InputTuples++
	}
	if s.pending == nil {
		s.done = true
		s.current = nil
		return nil
	}
	head := s.pending
	headSeg := s.pendingSeg
	unit := []storage.Tuple{head}
	s.pending = nil
	for {
		r, ok := s.in.Next()
		if !ok {
			if err := s.in.Close(); err != nil {
				return err
			}
			break
		}
		s.stats.InputTuples++
		segBreak := s.newSegment(s.prev, r)
		s.prev = r.Tuple
		if segBreak || !storage.EqualOnSeq(head, r.Tuple, s.opt.Alpha) {
			s.pending = r.Tuple
			s.pendingSeg = segBreak
			break
		}
		unit = append(unit, r.Tuple)
	}
	sorted, sstats, err := s.cfg.sorter(s.opt.Beta).SortTuples(unit)
	if err != nil {
		return err
	}
	if !sstats.InMemory {
		s.stats.ExternalUnits++
	}
	s.stats.Units++
	if len(unit) > s.stats.MaxUnitTuples {
		s.stats.MaxUnitTuples = len(unit)
	}
	if headSeg {
		s.stats.Segments++
	}
	s.current = sorted
	s.pos = 0
	s.boundary = headSeg
	return nil
}

func (s *ssStream) Close() error {
	if s.err != nil {
		return s.err
	}
	return nil
}
