package reorder

import (
	"math/rand"
	"testing"

	"repro/internal/attrs"
	"repro/internal/core"
	"repro/internal/pagestore"
	"repro/internal/storage"
	"repro/internal/stream"
)

func testConfig(memBytes int) (Config, *pagestore.Stats) {
	stats := &pagestore.Stats{}
	return Config{
		MemoryBytes: memBytes,
		Store:       pagestore.NewMem(512, stats),
	}, stats
}

func randTable(rng *rand.Rand, n int, domains ...int) []storage.Tuple {
	rows := make([]storage.Tuple, n)
	for i := range rows {
		row := make(storage.Tuple, len(domains)+1)
		for c, d := range domains {
			row[c] = storage.Int(rng.Int63n(int64(d)))
		}
		row[len(domains)] = storage.Int(int64(i)) // unique tag
		rows[i] = row
	}
	return rows
}

func tagMultisetEqual(t *testing.T, got, want []storage.Tuple, tagCol int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("row count %d != %d", len(got), len(want))
	}
	seen := map[int64]int{}
	for _, r := range want {
		seen[r[tagCol].Int64()]++
	}
	for _, r := range got {
		seen[r[tagCol].Int64()]--
	}
	for tag, c := range seen {
		if c != 0 {
			t.Fatalf("tag %d count mismatch %d", tag, c)
		}
	}
}

// verifyMatches checks the physical Definition 1/2 properties of a segmented
// stream against a window function: segments pairwise disjoint on X, each
// segment sorted on →WPK ∘ WOK for some fixed permutation, and WPK-groups
// wholly inside segments.
func verifyMatches(t *testing.T, segs [][]storage.Tuple, x attrs.Set, sortKey attrs.Seq) {
	t.Helper()
	// X-disjointness across segments.
	seenX := map[string]int{}
	for si, seg := range segs {
		for _, row := range seg {
			key := string(storage.AppendTuple(nil, projectTuple(row, x.IDs())))
			if prev, ok := seenX[key]; ok && prev != si {
				t.Fatalf("X value %v appears in segments %d and %d", key, prev, si)
			}
			seenX[key] = si
		}
		if !storage.SortedOn(seg, sortKey) {
			t.Fatalf("segment %d not sorted on %s", si, sortKey)
		}
	}
}

func projectTuple(row storage.Tuple, ids []attrs.ID) storage.Tuple {
	out := make(storage.Tuple, len(ids))
	for i, id := range ids {
		out[i] = row[id]
	}
	return out
}

func TestFullSortBasic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	rows := randTable(rng, 3000, 20, 20)
	cfg, stats := testConfig(2048)
	key := attrs.AscSeq(0, 1)
	out, fsStats, err := FullSort(stream.FromTuples(rows), key, cfg)
	if err != nil {
		t.Fatal(err)
	}
	segs, err := stream.Segments(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Fatalf("FS output has %d segments, want 1", len(segs))
	}
	if !storage.SortedOn(segs[0], key) {
		t.Fatalf("FS output not sorted")
	}
	tagMultisetEqual(t, segs[0], rows, 2)
	if fsStats.Sort.InMemory || stats.TotalBlocks() == 0 {
		t.Errorf("expected external sort under small budget")
	}
}

func TestHashedSortMatchesFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	rows := randTable(rng, 4000, 50, 30)
	wfKey := attrs.AscSeq(0, 1) // →WPK ∘ WOK with WPK = {0}, WOK = (1)
	for _, buckets := range []int{1, 4, 16, 64} {
		cfg, _ := testConfig(4096)
		out, hsStats, err := HashedSort(stream.FromTuples(rows), HSOptions{
			HashKey: []attrs.ID{0},
			SortKey: wfKey,
			Buckets: buckets,
		}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		segs, err := stream.Segments(out)
		if err != nil {
			t.Fatal(err)
		}
		var flat []storage.Tuple
		for _, s := range segs {
			flat = append(flat, s...)
		}
		tagMultisetEqual(t, flat, rows, 2)
		verifyMatches(t, segs, attrs.MakeSet(0), wfKey)
		if hsStats.InputTuples != len(rows) {
			t.Errorf("InputTuples = %d", hsStats.InputTuples)
		}
		if len(segs) > buckets {
			t.Errorf("%d segments from %d buckets", len(segs), buckets)
		}
	}
}

func TestHashedSortSpills(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	rows := randTable(rng, 5000, 100, 10)
	cfg, stats := testConfig(2048) // tiny budget: most buckets must spill
	out, hsStats, err := HashedSort(stream.FromTuples(rows), HSOptions{
		HashKey: []attrs.ID{0},
		SortKey: attrs.AscSeq(0, 1),
		Buckets: 32,
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tuples, err := stream.CollectTuples(out)
	if err != nil {
		t.Fatal(err)
	}
	tagMultisetEqual(t, tuples, rows, 2)
	if hsStats.SpilledBuckets == 0 {
		t.Errorf("expected spilled buckets under a tiny budget: %+v", hsStats)
	}
	if stats.BlocksWritten() == 0 || stats.BlocksRead() == 0 {
		t.Errorf("expected partition I/O, got %d/%d", stats.BlocksWritten(), stats.BlocksRead())
	}
	for _, policy := range []SpillPolicy{SpillLargest, SpillRoundRobin} {
		cfg2, _ := testConfig(2048)
		out2, _, err := HashedSort(stream.FromTuples(rows), HSOptions{
			HashKey: []attrs.ID{0}, SortKey: attrs.AscSeq(0, 1), Buckets: 32, SpillPolicy: policy,
		}, cfg2)
		if err != nil {
			t.Fatal(err)
		}
		tuples2, err := stream.CollectTuples(out2)
		if err != nil {
			t.Fatal(err)
		}
		tagMultisetEqual(t, tuples2, rows, 2)
	}
}

func TestHashedSortMFVBypass(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// Column 0 heavily skewed to value 7.
	rows := make([]storage.Tuple, 3000)
	for i := range rows {
		v := int64(7)
		if rng.Intn(4) == 0 {
			v = rng.Int63n(40)
		}
		rows[i] = storage.Tuple{storage.Int(v), storage.Int(rng.Int63n(50)), storage.Int(int64(i))}
	}
	mfv := map[string]bool{string(EncodeHashKey(rows[0], []attrs.ID{0})): true} // rows[0] has value 7? ensure below
	rows[0][0] = storage.Int(7)
	mfv = map[string]bool{string(EncodeHashKey(rows[0], []attrs.ID{0})): true}

	cfgBypass, statsBypass := testConfig(2048)
	out, hsStats, err := HashedSort(stream.FromTuples(rows), HSOptions{
		HashKey: []attrs.ID{0}, SortKey: attrs.AscSeq(0, 1), Buckets: 16, MFVs: mfv,
	}, cfgBypass)
	if err != nil {
		t.Fatal(err)
	}
	segs, err := stream.Segments(out)
	if err != nil {
		t.Fatal(err)
	}
	var flat []storage.Tuple
	for _, s := range segs {
		flat = append(flat, s...)
	}
	tagMultisetEqual(t, flat, rows, 2)
	verifyMatches(t, segs, attrs.MakeSet(0), attrs.AscSeq(0, 1))
	if hsStats.MFVTuples == 0 {
		t.Fatalf("MFV bypass routed no tuples")
	}
	// The MFV segment must come first (Section 3.2: Rx sorted before any
	// other bucket).
	if len(segs) == 0 || segs[0][0][0].Int64() != 7 {
		t.Errorf("MFV bucket not emitted first")
	}

	cfgPlain, statsPlain := testConfig(2048)
	out2, _, err := HashedSort(stream.FromTuples(rows), HSOptions{
		HashKey: []attrs.ID{0}, SortKey: attrs.AscSeq(0, 1), Buckets: 16,
	}, cfgPlain)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stream.CollectTuples(out2); err != nil {
		t.Fatal(err)
	}
	if statsBypass.TotalBlocks() >= statsPlain.TotalBlocks() {
		t.Errorf("MFV bypass saved no I/O: %d vs %d", statsBypass.TotalBlocks(), statsPlain.TotalBlocks())
	}
}

func TestSegmentedSortAlphaGroups(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	rows := randTable(rng, 3000, 15, 40, 40)
	// Input: totally ordered on (0,1) — R∅,(0,1).
	cfg, _ := testConfig(1 << 20)
	sorted, _, err := FullSort(stream.FromTuples(rows), attrs.AscSeq(0, 1), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// SS to match wf = ({0}, (2)): α = (0), β = (2).
	cfg2, stats2 := testConfig(1 << 20)
	out, ssStats, err := SegmentedSort(sorted, SSOptions{
		Alpha: attrs.AscSeq(0),
		Beta:  attrs.AscSeq(2),
	}, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	segs, err := stream.Segments(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Fatalf("SS must preserve segment structure: got %d segments", len(segs))
	}
	if !storage.SortedOn(segs[0], attrs.AscSeq(0, 2)) {
		t.Fatalf("SS output not ordered on (0,2)")
	}
	tagMultisetEqual(t, segs[0], rows, 3)
	if ssStats.Units < 10 || ssStats.Units > 15 {
		t.Errorf("units = %d, want ≈ D(col0) = 15", ssStats.Units)
	}
	if stats2.TotalBlocks() != 0 {
		t.Errorf("SS spilled %d blocks despite ample memory", stats2.TotalBlocks())
	}
}

func TestSegmentedSortEmptyAlphaOnSegments(t *testing.T) {
	// Segmented input (one segment per col-0 value), SS with empty α sorts
	// whole segments on β — the X ≠ ∅, α = ε case.
	rng := rand.New(rand.NewSource(6))
	rows := randTable(rng, 2000, 8, 30)
	cfg, _ := testConfig(1 << 20)
	hs, _, err := HashedSort(stream.FromTuples(rows), HSOptions{
		HashKey: []attrs.ID{0}, SortKey: attrs.AscSeq(0, 1), Buckets: 8,
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Reorder to match wf = ({0}, (2 DESC)) — wait, use ascending col 1→2.
	cfg2, _ := testConfig(1 << 20)
	out, ssStats, err := SegmentedSort(hs, SSOptions{
		Alpha: nil,
		Beta:  attrs.AscSeq(0, 1),
	}, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	segs, err := stream.Segments(out)
	if err != nil {
		t.Fatal(err)
	}
	verifyMatches(t, segs, attrs.MakeSet(0), attrs.AscSeq(0, 1))
	if ssStats.Units != ssStats.Segments {
		t.Errorf("empty α: units (%d) should equal segments (%d)", ssStats.Units, ssStats.Segments)
	}
	var flat []storage.Tuple
	for _, s := range segs {
		flat = append(flat, s...)
	}
	tagMultisetEqual(t, flat, rows, 2)
}

// TestReorderEquivalence — FS, HS and SS all produce streams on which the
// window function sees identical partitions: the cornerstone observation of
// Section 3 (window partitions may arrive in any order).
func TestReorderEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rows := randTable(rng, 2500, 12, 25)
	wpk := attrs.MakeSet(0)
	key := attrs.AscSeq(0, 1)

	collectPartitions := func(segs [][]storage.Tuple) map[string][]int64 {
		parts := map[string][]int64{}
		for _, seg := range segs {
			for _, row := range seg {
				k := string(storage.AppendTuple(nil, projectTuple(row, wpk.IDs())))
				parts[k] = append(parts[k], row[2].Int64())
			}
		}
		return parts
	}

	cfg1, _ := testConfig(2048)
	fsOut, _, err := FullSort(stream.FromTuples(rows), key, cfg1)
	if err != nil {
		t.Fatal(err)
	}
	fsSegs, _ := stream.Segments(fsOut)

	cfg2, _ := testConfig(2048)
	hsOut, _, err := HashedSort(stream.FromTuples(rows), HSOptions{HashKey: []attrs.ID{0}, SortKey: key, Buckets: 7}, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	hsSegs, _ := stream.Segments(hsOut)

	// SS path: pre-sort on (1) then segmented-sort α=ε… instead use sorted
	// on (0) then α=(0), β=(1).
	cfg3, _ := testConfig(1 << 20)
	pre, _, err := FullSort(stream.FromTuples(rows), attrs.AscSeq(0), cfg3)
	if err != nil {
		t.Fatal(err)
	}
	ssOut, _, err := SegmentedSort(pre, SSOptions{Alpha: attrs.AscSeq(0), Beta: attrs.AscSeq(1)}, cfg3)
	if err != nil {
		t.Fatal(err)
	}
	ssSegs, _ := stream.Segments(ssOut)

	fsParts := collectPartitions(fsSegs)
	for name, segs := range map[string][][]storage.Tuple{"HS": hsSegs, "SS": ssSegs} {
		got := collectPartitions(segs)
		if len(got) != len(fsParts) {
			t.Fatalf("%s: %d partitions vs FS %d", name, len(got), len(fsParts))
		}
		for k, want := range fsParts {
			gotPart := got[k]
			if len(gotPart) != len(want) {
				t.Fatalf("%s: partition %q size %d vs %d", name, k, len(gotPart), len(want))
			}
			// Same tuples in the same WOK order (ties may permute: compare
			// via sorted col-1 projection per tag).
		}
	}
}

// TestTheorem2Physical — evaluating SS after SS (the chained reorders of
// C1's cover sets) preserves segment structure and sortedness.
func TestChainedSegmentedSorts(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	rows := randTable(rng, 2000, 10, 20, 20)
	cfg, _ := testConfig(1 << 20)
	sorted, _, err := FullSort(stream.FromTuples(rows), attrs.AscSeq(0, 1), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ss1, _, err := SegmentedSort(sorted, SSOptions{Alpha: attrs.AscSeq(0), Beta: attrs.AscSeq(2)}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ss2, _, err := SegmentedSort(ss1, SSOptions{Alpha: attrs.AscSeq(0), Beta: attrs.AscSeq(1)}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	segs, err := stream.Segments(ss2)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 || !storage.SortedOn(segs[0], attrs.AscSeq(0, 1)) {
		t.Fatalf("chained SS broke ordering")
	}
	tagMultisetEqual(t, segs[0], rows, 3)
}

func TestHashedSortRequiresKey(t *testing.T) {
	cfg, _ := testConfig(1024)
	if _, _, err := HashedSort(stream.FromTuples(nil), HSOptions{SortKey: attrs.AscSeq(0)}, cfg); err == nil {
		t.Errorf("HS without hash key should fail")
	}
}

func TestEmptyInputs(t *testing.T) {
	cfg, _ := testConfig(1024)
	out, _, err := FullSort(stream.FromTuples(nil), attrs.AscSeq(0), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rows, _ := stream.CollectTuples(out); len(rows) != 0 {
		t.Errorf("FS of empty input returned rows")
	}
	out, _, err = HashedSort(stream.FromTuples(nil), HSOptions{HashKey: []attrs.ID{0}, SortKey: attrs.AscSeq(0), Buckets: 4}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rows, _ := stream.CollectTuples(out); len(rows) != 0 {
		t.Errorf("HS of empty input returned rows")
	}
	ssOut, _, err := SegmentedSort(stream.FromTuples(nil), SSOptions{Beta: attrs.AscSeq(0)}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rows, _ := stream.CollectTuples(ssOut); len(rows) != 0 {
		t.Errorf("SS of empty input returned rows")
	}
}

// TestBucketCountPolicy sanity-checks the shared bucket-count policy.
func TestBucketCountPolicy(t *testing.T) {
	if n := core.HSBucketCount(10, 100000, 10); n != 10 {
		t.Errorf("distinct-bounded count = %d, want 10", n)
	}
	if n := core.HSBucketCount(1_000_000, 8000, 48); n != 256 {
		t.Errorf("default count = %d, want 256 (min bound)", n)
	}
	if n := core.HSBucketCount(1_000_000, 10_000_000, 10); n != core.MaxHSBuckets {
		t.Errorf("count = %d, want cap %d", n, core.MaxHSBuckets)
	}
}
