package reorder

import (
	"fmt"
	"sort"

	"repro/internal/attrs"
	"repro/internal/core"
	"repro/internal/spill"
	"repro/internal/storage"
	"repro/internal/stream"
)

// SpillPolicy selects the victim when HS runs out of bucket memory.
type SpillPolicy uint8

const (
	// SpillLargest flushes the largest memory-resident bucket (default;
	// frees the most memory per flush and tends to keep many small buckets
	// resident — the behavior Eq. 2's N′ term models).
	SpillLargest SpillPolicy = iota
	// SpillRoundRobin flushes buckets cyclically; provided for the spill
	// policy ablation benchmark.
	SpillRoundRobin
)

// HSOptions configures one Hashed Sort.
type HSOptions struct {
	// HashKey is WHK ⊆ WPK: the partitioning attributes.
	HashKey []attrs.ID
	// SortKey is →WPK ∘ WOK: each bucket's sort order.
	SortKey attrs.Seq
	// Buckets overrides the bucket-count policy when > 0.
	Buckets int
	// DistinctHint estimates D(WHK) for the bucket-count policy (0 = unknown).
	DistinctHint int64
	// MFVs lists most-frequent WHK values (encoded with EncodeHashKey).
	// Tuples carrying them bypass partitioning and stream straight into a
	// dedicated sort that is emitted first (the Section 3.2 optimization).
	MFVs map[string]bool
	// SpillPolicy selects the flush victim strategy.
	SpillPolicy SpillPolicy
}

// HSStats reports a HashedSort execution.
type HSStats struct {
	Buckets         int
	SpilledBuckets  int
	MemoryResident  int
	MFVTuples       int
	InputTuples     int
	ExternalBuckets int // buckets whose sort spilled
}

// EncodeHashKey serializes the WHK projection of a tuple; used both for
// hashing and for MFV lookup.
func EncodeHashKey(t storage.Tuple, key []attrs.ID) []byte {
	var buf []byte
	for _, id := range key {
		buf = storage.AppendTuple(buf, storage.Tuple{t[id]})
	}
	return buf
}

// fnv1a hashes the encoded key.
func fnv1a(b []byte) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime
	}
	return h
}

// hsBucket is one hash partition during the build phase.
type hsBucket struct {
	mem     []storage.Tuple // memory-resident tuples
	memSize int
	writer  *spill.Writer // non-nil once the bucket has been flushed
	count   int
}

// HashedSort reorders the input per Section 3.2. The output stream is one
// segment per non-empty bucket (MFV bucket first), each sorted on SortKey;
// its property is R_{WHK, SortKey}.
func HashedSort(in stream.Stream, opt HSOptions, cfg Config) (stream.Stream, HSStats, error) {
	var st HSStats
	if len(opt.HashKey) == 0 {
		return nil, st, fmt.Errorf("reorder: HashedSort requires a non-empty hash key")
	}
	if cfg.Store == nil {
		return nil, st, fmt.Errorf("reorder: HashedSort requires a spill store")
	}

	nbuckets := opt.Buckets
	if nbuckets <= 0 {
		// Estimate table size from the budget policy using the distinct
		// hint; the block count is unknown mid-stream, so the policy is
		// applied with a conservative default and corrected by the caller
		// (exec sizes it from catalog statistics).
		nbuckets = int(core.HSBucketCount(opt.DistinctHint, 0, 0))
	}
	if nbuckets < 1 {
		nbuckets = 1
	}

	buckets := make([]*hsBucket, nbuckets)
	for i := range buckets {
		buckets[i] = &hsBucket{}
	}
	var (
		memUsed   int
		mfvTuples []storage.Tuple
		rrNext    int
		err       error
	)
	defer in.Close()

	flush := func(b *hsBucket) error {
		if b.writer == nil {
			w, err := spill.NewWriter(cfg.Store)
			if err != nil {
				return err
			}
			b.writer = w
			st.SpilledBuckets++
		}
		for _, t := range b.mem {
			if err := b.writer.Write(t); err != nil {
				return err
			}
		}
		memUsed -= b.memSize
		b.mem = nil
		b.memSize = 0
		return nil
	}
	pickVictim := func() *hsBucket {
		switch opt.SpillPolicy {
		case SpillRoundRobin:
			for range buckets {
				b := buckets[rrNext%len(buckets)]
				rrNext++
				if len(b.mem) > 0 {
					return b
				}
			}
			return nil
		default:
			var victim *hsBucket
			for _, b := range buckets {
				if len(b.mem) > 0 && (victim == nil || b.memSize > victim.memSize) {
					victim = b
				}
			}
			return victim
		}
	}

	// Build phase: route every input tuple.
	for {
		r, ok := in.Next()
		if !ok {
			break
		}
		st.InputTuples++
		t := r.Tuple
		key := EncodeHashKey(t, opt.HashKey)
		if opt.MFVs != nil && opt.MFVs[string(key)] {
			// Bypass: straight to the pipelined MFV sort, no partition I/O.
			mfvTuples = append(mfvTuples, t)
			st.MFVTuples++
			continue
		}
		b := buckets[fnv1a(key)%uint64(len(buckets))]
		if b.writer != nil {
			// Once flushed, a bucket stays disk-bound (Section 3.2).
			if err = b.writer.Write(t); err != nil {
				return nil, st, err
			}
			b.count++
			continue
		}
		size := t.Size()
		if cfg.MemoryBytes > 0 && memUsed+size > cfg.MemoryBytes {
			victim := pickVictim()
			if victim != nil {
				if err = flush(victim); err != nil {
					return nil, st, err
				}
			}
		}
		if b.writer != nil { // b itself was the victim
			if err = b.writer.Write(t); err != nil {
				return nil, st, err
			}
			b.count++
			continue
		}
		b.mem = append(b.mem, t)
		b.memSize += size
		b.count++
		memUsed += size
	}

	st.Buckets = 0
	for _, b := range buckets {
		if b.count > 0 {
			st.Buckets++
			if b.writer == nil {
				st.MemoryResident++
			}
		}
	}

	// Sort order: MFV bucket first, then memory-resident buckets, then
	// disk-resident buckets (Section 3.2's prescribed order).
	sort.SliceStable(buckets, func(i, j int) bool {
		mi := buckets[i].writer == nil
		mj := buckets[j].writer == nil
		return mi && !mj
	})

	out := &hsStream{
		cfg:     cfg,
		sortKey: opt.SortKey,
		buckets: buckets,
		stats:   &st,
	}
	if len(mfvTuples) > 0 {
		sorted, sstats, err := cfg.sorter(opt.SortKey).SortTuples(mfvTuples)
		if err != nil {
			return nil, st, err
		}
		if !sstats.InMemory {
			st.ExternalBuckets++
		}
		out.current = sorted
	}
	return out, st, nil
}

// hsStream lazily sorts and emits buckets one at a time.
type hsStream struct {
	cfg     Config
	sortKey attrs.Seq
	buckets []*hsBucket
	current []storage.Tuple
	pos     int
	stats   *HSStats
	err     error
}

func (s *hsStream) Next() (stream.Row, bool) {
	for {
		if s.pos < len(s.current) {
			r := stream.Row{Tuple: s.current[s.pos], Boundary: s.pos == 0}
			s.pos++
			return r, true
		}
		// Advance to the next non-empty bucket.
		var b *hsBucket
		for len(s.buckets) > 0 {
			cand := s.buckets[0]
			s.buckets = s.buckets[1:]
			if cand.count > 0 {
				b = cand
				break
			}
		}
		if b == nil {
			return stream.Row{}, false
		}
		tuples, err := s.loadBucket(b)
		if err != nil {
			s.err = err
			return stream.Row{}, false
		}
		sorted, sstats, err := s.cfg.sorter(s.sortKey).SortTuples(tuples)
		if err != nil {
			s.err = err
			return stream.Row{}, false
		}
		if !sstats.InMemory {
			s.stats.ExternalBuckets++
		}
		s.current = sorted
		s.pos = 0
	}
}

// loadBucket returns all of a bucket's tuples, reading back the spilled part.
func (s *hsStream) loadBucket(b *hsBucket) ([]storage.Tuple, error) {
	if b.writer == nil {
		return b.mem, nil
	}
	f, err := b.writer.Finish()
	if err != nil {
		return nil, err
	}
	rd, err := spill.NewReader(f)
	if err != nil {
		return nil, err
	}
	defer func() {
		rd.Close()
		f.Release()
	}()
	tuples := make([]storage.Tuple, 0, b.count)
	for {
		t, ok, err := rd.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		tuples = append(tuples, t)
	}
	// Under the flush rule a spilled bucket keeps nothing in memory (flush
	// moves everything and later arrivals append to the file); the guard
	// below is defensive.
	tuples = append(tuples, b.mem...)
	return tuples, nil
}

func (s *hsStream) Close() error { return s.err }
