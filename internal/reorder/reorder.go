// Package reorder implements the paper's three tuple-reordering operators as
// streaming executors over segmented tuple streams:
//
//   - FullSort (FS): external sort of the whole input; output is a single
//     totally ordered segment.
//   - HashedSort (HS, Section 3.2): hash-partition on WHK ⊆ WPK into
//     buckets of complete WHK-groups, then sort each bucket on →WPK ∘ WOK;
//     buckets are emitted as segments in arbitrary order — which Section 3's
//     key observation shows is irrelevant to window-function correctness.
//     Includes the spill policy (flush a victim bucket when memory fills;
//     a flushed bucket stays disk-bound) and the most-frequent-value bypass
//     optimization.
//   - SegmentedSort (SS, Section 3.3): within each existing segment, detect
//     α-groups (runs of equal α values, α being the shared prefix between
//     the target key and the input ordering) and sort each independently on
//     the β remainder. Falls back to whole-segment sorts when α is empty
//     (applicable only when X ≠ ∅).
//
// All operators honor a unit reorder memory budget; spill traffic flows
// through pagestore for exact block-I/O accounting, and key comparisons are
// counted.
package reorder

import (
	"repro/internal/attrs"
	"repro/internal/pagestore"
	"repro/internal/storage"
	"repro/internal/stream"
	"repro/internal/xsort"
)

// Config carries the resources every reorder operator needs.
type Config struct {
	// MemoryBytes is the unit reorder memory M (Section 6.1). ≤0 disables
	// the budget (everything in memory).
	MemoryBytes int
	// Store receives spill traffic (runs, buckets).
	Store *pagestore.Store
	// Comparisons, if non-nil, accumulates key comparisons.
	Comparisons *int64
	// RunFormation selects the external sort's run formation policy.
	RunFormation xsort.RunFormation
}

func (c Config) sorter(key attrs.Seq) *xsort.Sorter {
	return &xsort.Sorter{
		Key:          key,
		MemoryBytes:  c.MemoryBytes,
		Store:        c.Store,
		Comparisons:  c.Comparisons,
		RunFormation: c.RunFormation,
	}
}

// streamInput adapts a stream to a sort input, dropping boundaries.
func streamInput(in stream.Stream) xsort.Input {
	return func() (storage.Tuple, bool) {
		r, ok := in.Next()
		if !ok {
			return nil, false
		}
		return r.Tuple, true
	}
}

// FSStats reports a FullSort execution.
type FSStats struct {
	Sort xsort.Stats
}

// FullSort reorders the input into a single segment totally ordered on key.
func FullSort(in stream.Stream, key attrs.Seq, cfg Config) (stream.Stream, FSStats, error) {
	var st FSStats
	sorted, sstats, err := cfg.sorter(key).Sort(streamInput(in), 0)
	st.Sort = sstats
	if err != nil {
		in.Close()
		return nil, st, err
	}
	if cerr := in.Close(); cerr != nil {
		return nil, st, cerr
	}
	return stream.FromTuples(sorted), st, nil
}
