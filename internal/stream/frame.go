package stream

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/storage"
)

// The binary columnar wire format. A stream is a 4-byte magic followed by
// length-prefixed frames:
//
//	"WCF1"                                  stream magic
//	[type:1]['H'|'B'|'T'][len:4 LE][payload]
//
// Frame types:
//
//	'H' header  — JSON payload (the service's schema header, opaque here)
//	'B' batch   — binary columnar row batch (layout below)
//	'T' trailer — JSON payload (outcome/error trailer, opaque here)
//
// Batch payload, given the column count from the header:
//
//	uvarint nrows
//	per column:
//	  [colkind:1]  0=all-NULL 1=int 2=float 3=string 4=mixed
//	  [validity:1] 0|1; if 1: ceil(nrows/8) bitmap bytes, bit set = NULL
//	  packed values of the NULL-free slots:
//	    int    8-byte LE two's complement   (fixed width: near-memcpy)
//	    float  8-byte LE IEEE 754
//	    string uvarint length + bytes
//	  mixed: every row as the storage tuple codec's value encoding
//	         (1 kind byte + payload), NULLs included — the lossless
//	         fallback for kind-heterogeneous columns
//
// Header and trailer payloads stay JSON: they are tiny, carry the service
// layer's metadata taxonomy (including mid-stream errors), and keep this
// package free of service types. The rows — all the volume — are binary.
//
// Every decode path bounds-checks before it allocates or reads: a
// truncated frame, an oversized length, a bad column kind or a
// validity-bitmap overrun must surface ErrFrameCorrupt, never a panic —
// FuzzFrameDecode holds the codec to that.

// FrameMagic starts every binary stream.
const FrameMagic = "WCF1"

// Frame type bytes.
const (
	FrameHeader  = 'H'
	FrameBatch   = 'B'
	FrameTrailer = 'T'
)

// MaxFramePayload bounds a frame's declared payload length: a corrupt or
// hostile 4-byte length cannot make the reader allocate gigabytes.
const MaxFramePayload = 64 << 20

// maxBatchRows bounds a batch's declared row count before any per-row
// allocation happens (the writer emits far smaller batches).
const maxBatchRows = 1 << 21

// ErrFrameCorrupt reports a malformed binary frame stream.
var ErrFrameCorrupt = errors.New("stream: corrupt binary frame")

// FrameWriter emits one binary stream: magic, then frames.
type FrameWriter struct {
	w     io.Writer
	buf   []byte
	wrote bool
}

// NewFrameWriter wraps w; nothing is written until the first frame.
func NewFrameWriter(w io.Writer) *FrameWriter { return &FrameWriter{w: w} }

func (fw *FrameWriter) writeFrame(typ byte, payload []byte) error {
	if !fw.wrote {
		if _, err := io.WriteString(fw.w, FrameMagic); err != nil {
			return err
		}
		fw.wrote = true
	}
	var hdr [5]byte
	hdr[0] = typ
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := fw.w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := fw.w.Write(payload)
	return err
}

// WriteHeader emits the 'H' frame (payload is the caller's JSON header).
func (fw *FrameWriter) WriteHeader(payload []byte) error {
	return fw.writeFrame(FrameHeader, payload)
}

// WriteTrailer emits the 'T' frame (payload is the caller's JSON trailer).
func (fw *FrameWriter) WriteTrailer(payload []byte) error {
	return fw.writeFrame(FrameTrailer, payload)
}

// WriteBatch encodes and emits one 'B' frame.
func (fw *FrameWriter) WriteBatch(b *Batch) error {
	fw.buf = AppendBatch(fw.buf[:0], b)
	return fw.writeFrame(FrameBatch, fw.buf)
}

// WriteTuples batches and emits rows as one 'B' frame.
func (fw *FrameWriter) WriteTuples(tuples []storage.Tuple, arity int) error {
	b, err := BatchFromTuples(tuples, arity)
	if err != nil {
		return err
	}
	return fw.WriteBatch(b)
}

// AppendBatch appends the batch payload encoding of b to dst.
func AppendBatch(dst []byte, b *Batch) []byte {
	dst = binary.AppendUvarint(dst, uint64(b.n))
	for c := range b.cols {
		col := &b.cols[c]
		if col.Mixed != nil {
			dst = append(dst, 4, 0)
			for _, v := range col.Mixed {
				dst = appendValue(dst, v)
			}
			continue
		}
		switch col.Kind {
		case storage.KindNull:
			dst = append(dst, 0, 0)
		case storage.KindInt:
			dst = appendValidity(append(dst, 1), col.Null, b.n)
			for i, v := range col.Ints {
				if col.Null == nil || !col.Null[i] {
					dst = binary.LittleEndian.AppendUint64(dst, uint64(v))
				}
			}
		case storage.KindFloat:
			dst = appendValidity(append(dst, 2), col.Null, b.n)
			for i, v := range col.Floats {
				if col.Null == nil || !col.Null[i] {
					dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
				}
			}
		case storage.KindString:
			dst = appendValidity(append(dst, 3), col.Null, b.n)
			for i, v := range col.Strs {
				if col.Null == nil || !col.Null[i] {
					dst = binary.AppendUvarint(dst, uint64(len(v)))
					dst = append(dst, v...)
				}
			}
		}
	}
	return dst
}

// appendValue encodes one value exactly as the storage tuple codec does
// for a column slot: kind byte, then payload.
func appendValue(dst []byte, v storage.Value) []byte {
	dst = append(dst, byte(v.Kind()))
	switch v.Kind() {
	case storage.KindInt:
		dst = binary.AppendVarint(dst, v.Int64())
	case storage.KindFloat:
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v.Float64()))
	case storage.KindString:
		s := v.Str()
		dst = binary.AppendUvarint(dst, uint64(len(s)))
		dst = append(dst, s...)
	}
	return dst
}

// appendValidity writes the validity flag and, when nulls exist, the NULL
// bitmap (bit set = NULL).
func appendValidity(dst []byte, nulls []bool, n int) []byte {
	if nulls == nil {
		return append(dst, 0)
	}
	dst = append(dst, 1)
	var cur byte
	for i := 0; i < n; i++ {
		if nulls[i] {
			cur |= 1 << (uint(i) & 7)
		}
		if i&7 == 7 {
			dst = append(dst, cur)
			cur = 0
		}
	}
	if n&7 != 0 {
		dst = append(dst, cur)
	}
	return dst
}

// DecodeBatch decodes one batch payload with the given column count. It
// returns ErrFrameCorrupt (wrapped with detail) on any malformed input and
// never panics.
func DecodeBatch(payload []byte, arity int) (*Batch, error) {
	if arity < 0 {
		return nil, fmt.Errorf("%w: negative arity", ErrFrameCorrupt)
	}
	nrows, n := binary.Uvarint(payload)
	if n <= 0 {
		return nil, fmt.Errorf("%w: bad row count", ErrFrameCorrupt)
	}
	if nrows > maxBatchRows {
		return nil, fmt.Errorf("%w: row count %d exceeds limit", ErrFrameCorrupt, nrows)
	}
	pos := n
	b := &Batch{n: int(nrows), cols: make([]Col, arity)}
	for c := 0; c < arity; c++ {
		if pos+2 > len(payload) {
			return nil, fmt.Errorf("%w: truncated column %d", ErrFrameCorrupt, c)
		}
		colkind, validity := payload[pos], payload[pos+1]
		pos += 2
		col := &b.cols[c]
		if colkind == 4 {
			if validity != 0 {
				return nil, fmt.Errorf("%w: mixed column %d with validity bitmap", ErrFrameCorrupt, c)
			}
			col.Mixed = make([]storage.Value, nrows)
			for i := range col.Mixed {
				v, n, err := decodeValue(payload[pos:])
				if err != nil {
					return nil, fmt.Errorf("%w: column %d row %d", err, c, i)
				}
				col.Mixed[i] = v
				pos += n
			}
			continue
		}
		switch validity {
		case 0:
		case 1:
			nbytes := (int(nrows) + 7) / 8
			if pos+nbytes > len(payload) {
				return nil, fmt.Errorf("%w: validity bitmap overruns column %d", ErrFrameCorrupt, c)
			}
			col.Null = make([]bool, nrows)
			for i := 0; i < int(nrows); i++ {
				col.Null[i] = payload[pos+i/8]&(1<<(uint(i)&7)) != 0
			}
			pos += nbytes
		default:
			return nil, fmt.Errorf("%w: bad validity flag %d in column %d", ErrFrameCorrupt, validity, c)
		}
		valid := func(i int) bool { return col.Null == nil || !col.Null[i] }
		switch colkind {
		case 0:
			if validity != 0 {
				return nil, fmt.Errorf("%w: all-NULL column %d with validity bitmap", ErrFrameCorrupt, c)
			}
			col.Kind = storage.KindNull
		case 1:
			col.Kind = storage.KindInt
			col.Ints = make([]int64, nrows)
			for i := range col.Ints {
				if !valid(i) {
					continue
				}
				if pos+8 > len(payload) {
					return nil, fmt.Errorf("%w: truncated int column %d", ErrFrameCorrupt, c)
				}
				col.Ints[i] = int64(binary.LittleEndian.Uint64(payload[pos:]))
				pos += 8
			}
		case 2:
			col.Kind = storage.KindFloat
			col.Floats = make([]float64, nrows)
			for i := range col.Floats {
				if !valid(i) {
					continue
				}
				if pos+8 > len(payload) {
					return nil, fmt.Errorf("%w: truncated float column %d", ErrFrameCorrupt, c)
				}
				col.Floats[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[pos:]))
				pos += 8
			}
		case 3:
			col.Kind = storage.KindString
			col.Strs = make([]string, nrows)
			for i := range col.Strs {
				if !valid(i) {
					continue
				}
				l, n := binary.Uvarint(payload[pos:])
				if n <= 0 {
					return nil, fmt.Errorf("%w: bad string length in column %d", ErrFrameCorrupt, c)
				}
				pos += n
				if l > uint64(len(payload)-pos) {
					return nil, fmt.Errorf("%w: string overruns column %d", ErrFrameCorrupt, c)
				}
				col.Strs[i] = string(payload[pos : pos+int(l)])
				pos += int(l)
			}
		default:
			return nil, fmt.Errorf("%w: bad column kind %d", ErrFrameCorrupt, colkind)
		}
	}
	if pos != len(payload) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrFrameCorrupt, len(payload)-pos)
	}
	return b, nil
}

// decodeValue decodes one storage-codec value slot (kind byte + payload).
func decodeValue(buf []byte) (storage.Value, int, error) {
	if len(buf) == 0 {
		return storage.Null, 0, fmt.Errorf("%w: truncated value", ErrFrameCorrupt)
	}
	switch storage.Kind(buf[0]) {
	case storage.KindNull:
		return storage.Null, 1, nil
	case storage.KindInt:
		v, n := binary.Varint(buf[1:])
		if n <= 0 {
			return storage.Null, 0, fmt.Errorf("%w: bad varint", ErrFrameCorrupt)
		}
		return storage.Int(v), 1 + n, nil
	case storage.KindFloat:
		if len(buf) < 9 {
			return storage.Null, 0, fmt.Errorf("%w: truncated float", ErrFrameCorrupt)
		}
		return storage.Float(math.Float64frombits(binary.LittleEndian.Uint64(buf[1:]))), 9, nil
	case storage.KindString:
		l, n := binary.Uvarint(buf[1:])
		if n <= 0 {
			return storage.Null, 0, fmt.Errorf("%w: bad string length", ErrFrameCorrupt)
		}
		if l > uint64(len(buf)-1-n) {
			return storage.Null, 0, fmt.Errorf("%w: string overrun", ErrFrameCorrupt)
		}
		return storage.StringVal(string(buf[1+n : 1+n+int(l)])), 1 + n + int(l), nil
	default:
		return storage.Null, 0, fmt.Errorf("%w: bad value kind %d", ErrFrameCorrupt, buf[0])
	}
}

// Frame is one decoded frame: its type byte and raw payload. Batch frames
// are decoded on demand by the caller (DecodeBatch) once the arity is
// known from the header.
type Frame struct {
	Type    byte
	Payload []byte
}

// FrameReader consumes one binary stream. The payload returned by Next is
// only valid until the following Next call.
type FrameReader struct {
	br      *bufio.Reader
	started bool
	buf     []byte
}

// NewFrameReader wraps r. If r is already a *bufio.Reader it is used
// directly.
func NewFrameReader(r io.Reader) *FrameReader {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, 64<<10)
	}
	return &FrameReader{br: br}
}

// Next returns the next frame, io.EOF at a clean end of input (only
// between frames), or an error. A stream cut inside a frame surfaces
// io.ErrUnexpectedEOF.
func (fr *FrameReader) Next() (Frame, error) {
	if !fr.started {
		var magic [4]byte
		if _, err := io.ReadFull(fr.br, magic[:]); err != nil {
			if err == io.EOF {
				return Frame{}, io.ErrUnexpectedEOF
			}
			return Frame{}, err
		}
		if string(magic[:]) != FrameMagic {
			return Frame{}, fmt.Errorf("%w: bad magic %q", ErrFrameCorrupt, magic)
		}
		fr.started = true
	}
	var hdr [5]byte
	if _, err := io.ReadFull(fr.br, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return Frame{}, io.ErrUnexpectedEOF
		}
		return Frame{}, err
	}
	typ := hdr[0]
	switch typ {
	case FrameHeader, FrameBatch, FrameTrailer:
	default:
		return Frame{}, fmt.Errorf("%w: bad frame type %d", ErrFrameCorrupt, typ)
	}
	size := binary.LittleEndian.Uint32(hdr[1:])
	if size > MaxFramePayload {
		return Frame{}, fmt.Errorf("%w: frame payload %d exceeds limit", ErrFrameCorrupt, size)
	}
	if cap(fr.buf) < int(size) {
		fr.buf = make([]byte, size)
	}
	fr.buf = fr.buf[:size]
	if _, err := io.ReadFull(fr.br, fr.buf); err != nil {
		if err == io.EOF {
			return Frame{}, io.ErrUnexpectedEOF
		}
		return Frame{}, err
	}
	return Frame{Type: typ, Payload: fr.buf}, nil
}
