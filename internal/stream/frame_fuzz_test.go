package stream

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/storage"
)

// FuzzFrameDecode holds the binary wire decoder to its no-panic contract:
// arbitrary bytes fed to the frame reader and the batch payload decoder
// must produce values or errors, never a panic — truncated frames, bad
// type bytes, hostile lengths and validity-bitmap overruns included. Valid
// payloads that decode must re-encode to an equivalent batch.
func FuzzFrameDecode(f *testing.F) {
	// Seed with well-formed streams so the fuzzer starts at the format's
	// surface instead of random bytes.
	seed := func(tuples []storage.Tuple, arity int) {
		var buf bytes.Buffer
		fw := NewFrameWriter(&buf)
		_ = fw.WriteHeader([]byte(`{"columns":[{"name":"a","type":"INT"}]}`))
		if len(tuples) > 0 {
			_ = fw.WriteTuples(tuples, arity)
		}
		_ = fw.WriteTrailer([]byte(`{"done":true,"row_count":1}`))
		f.Add(buf.Bytes(), arity)
	}
	seed([]storage.Tuple{{storage.Int(42), storage.StringVal("x"), storage.Float(1.5), storage.Null}}, 4)
	seed([]storage.Tuple{
		{storage.Int(1 << 60)},
		{storage.Null},
		{storage.StringVal("mixed kinds")},
	}, 1)
	seed(nil, 0)
	f.Add([]byte("WCF1"), 2)
	f.Add([]byte{}, 1)

	f.Fuzz(func(t *testing.T, data []byte, arity int) {
		if arity < 0 || arity > 64 {
			arity = int(uint(arity) % 65)
		}
		fr := NewFrameReader(bytes.NewReader(data))
		for i := 0; i < 64; i++ {
			fm, err := fr.Next()
			if err != nil {
				if err == io.EOF || err == io.ErrUnexpectedEOF {
					break
				}
				// Any other error must be a descriptive decode failure;
				// reaching here without panicking is the contract.
				break
			}
			if fm.Type != FrameBatch {
				continue
			}
			b, err := DecodeBatch(fm.Payload, arity)
			if err != nil {
				continue
			}
			// A payload that decodes must round-trip value-identically.
			re := AppendBatch(nil, b)
			b2, err := DecodeBatch(re, arity)
			if err != nil {
				t.Fatalf("re-encoded batch failed to decode: %v", err)
			}
			if b2.Len() != b.Len() {
				t.Fatalf("round trip changed row count: %d != %d", b2.Len(), b.Len())
			}
			r1, r2 := b.Tuples(), b2.Tuples()
			for r := range r1 {
				for c := range r1[r] {
					if r1[r][c].Kind() != r2[r][c].Kind() || !storage.Equal(r1[r][c], r2[r][c]) {
						t.Fatalf("round trip changed row %d col %d: %v != %v", r, c, r1[r][c], r2[r][c])
					}
				}
			}
		}
	})
}
