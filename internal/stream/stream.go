// Package stream defines the runtime carrier of segmented relations
// (Definition 1 of the paper): a pull-based tuple stream in which every row
// is tagged with whether it begins a new segment. Reordering operators emit
// segmented streams; the window evaluator and downstream reorders consume
// them. The logical properties of a stream (its X set and Y ordering) are
// tracked statically by the planner; the Boundary flags are the physical
// realization of the segment structure.
package stream

import (
	"repro/internal/storage"
)

// Row is one stream element.
type Row struct {
	Tuple storage.Tuple
	// Boundary is true when this tuple starts a new segment. The first row
	// of a stream always has Boundary == true.
	Boundary bool
}

// Stream is a pull-based segmented tuple stream. Next returns the next row
// and true, or a zero Row and false at end of stream. Errors encountered by
// operators are surfaced via Close following the "drain then close" pattern;
// operators that can fail mid-stream instead return an error eagerly from
// their constructors after materializing (all reorders are blocking).
type Stream interface {
	Next() (Row, bool)
	Close() error
}

// sliceStream streams a materialized row slice.
type sliceStream struct {
	rows []Row
	pos  int
}

// FromRows wraps pre-tagged rows.
func FromRows(rows []Row) Stream { return &sliceStream{rows: rows} }

// FromTuples wraps tuples as a single segment.
func FromTuples(tuples []storage.Tuple) Stream {
	rows := make([]Row, len(tuples))
	for i, t := range tuples {
		rows[i] = Row{Tuple: t, Boundary: i == 0}
	}
	return FromRows(rows)
}

// FromTable streams a table as a single segment.
func FromTable(t *storage.Table) Stream { return FromTuples(t.Rows) }

// FromSegments wraps a list of segments, tagging each segment head.
func FromSegments(segments [][]storage.Tuple) Stream {
	var rows []Row
	for _, seg := range segments {
		for i, t := range seg {
			rows = append(rows, Row{Tuple: t, Boundary: i == 0})
		}
	}
	return FromRows(rows)
}

func (s *sliceStream) Next() (Row, bool) {
	if s.pos >= len(s.rows) {
		return Row{}, false
	}
	r := s.rows[s.pos]
	s.pos++
	return r, true
}

func (s *sliceStream) Close() error { return nil }

// Collect drains a stream into a tagged row slice and closes it.
func Collect(s Stream) ([]Row, error) {
	var rows []Row
	for {
		r, ok := s.Next()
		if !ok {
			break
		}
		rows = append(rows, r)
	}
	return rows, s.Close()
}

// CollectTuples drains a stream into bare tuples, discarding boundaries.
func CollectTuples(s Stream) ([]storage.Tuple, error) {
	rows, err := Collect(s)
	if err != nil {
		return nil, err
	}
	out := make([]storage.Tuple, len(rows))
	for i, r := range rows {
		out[i] = r.Tuple
	}
	return out, nil
}

// Segments drains a stream into per-segment tuple slices.
func Segments(s Stream) ([][]storage.Tuple, error) {
	rows, err := Collect(s)
	if err != nil {
		return nil, err
	}
	var segs [][]storage.Tuple
	for _, r := range rows {
		if r.Boundary || len(segs) == 0 {
			segs = append(segs, nil)
		}
		segs[len(segs)-1] = append(segs[len(segs)-1], r.Tuple)
	}
	return segs, nil
}

// Concat chains streams; each source's segments are preserved.
func Concat(streams ...Stream) Stream { return &concatStream{streams: streams} }

type concatStream struct {
	streams []Stream
	idx     int
	err     error
}

func (c *concatStream) Next() (Row, bool) {
	for c.idx < len(c.streams) {
		r, ok := c.streams[c.idx].Next()
		if ok {
			return r, true
		}
		if err := c.streams[c.idx].Close(); err != nil && c.err == nil {
			c.err = err
		}
		c.idx++
	}
	return Row{}, false
}

func (c *concatStream) Close() error {
	for ; c.idx < len(c.streams); c.idx++ {
		if err := c.streams[c.idx].Close(); err != nil && c.err == nil {
			c.err = err
		}
	}
	return c.err
}
