package stream

import (
	"testing"

	"repro/internal/storage"
)

func rows(vals ...int64) []storage.Tuple {
	out := make([]storage.Tuple, len(vals))
	for i, v := range vals {
		out[i] = storage.Tuple{storage.Int(v)}
	}
	return out
}

func TestFromTuplesSingleSegment(t *testing.T) {
	s := FromTuples(rows(1, 2, 3))
	collected, err := Collect(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(collected) != 3 {
		t.Fatalf("rows = %d", len(collected))
	}
	if !collected[0].Boundary || collected[1].Boundary || collected[2].Boundary {
		t.Errorf("boundaries wrong: %+v", collected)
	}
}

func TestFromSegments(t *testing.T) {
	segsIn := [][]storage.Tuple{rows(1, 2), rows(3), rows(4, 5, 6)}
	s := FromSegments(segsIn)
	segs, err := Segments(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 3 || len(segs[0]) != 2 || len(segs[1]) != 1 || len(segs[2]) != 3 {
		t.Fatalf("segments = %v", segs)
	}
}

func TestCollectTuples(t *testing.T) {
	tuples, err := CollectTuples(FromTuples(rows(9, 8)))
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 2 || tuples[0][0].Int64() != 9 {
		t.Fatalf("tuples = %v", tuples)
	}
}

func TestConcatPreservesSegments(t *testing.T) {
	a := FromSegments([][]storage.Tuple{rows(1), rows(2)})
	b := FromTuples(rows(3, 4))
	segs, err := Segments(Concat(a, b))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 3 {
		t.Fatalf("segments = %d, want 3", len(segs))
	}
}

func TestEmptyStream(t *testing.T) {
	segs, err := Segments(FromTuples(nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 0 {
		t.Fatalf("segments of empty stream = %d", len(segs))
	}
	r, ok := FromRows(nil).Next()
	if ok {
		t.Fatalf("empty stream yielded %v", r)
	}
}

func TestTableRoundTrip(t *testing.T) {
	tbl := storage.NewTable(storage.NewSchema(storage.Column{Name: "a", Type: storage.TypeInt}))
	tbl.MustAppend(storage.Tuple{storage.Int(7)})
	tbl.MustAppend(storage.Tuple{storage.Int(8)})
	got, err := CollectTuples(FromTable(tbl))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[1][0].Int64() != 8 {
		t.Fatalf("round trip = %v", got)
	}
}
