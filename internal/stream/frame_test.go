package stream

import (
	"bytes"
	"errors"
	"io"
	"math"
	"strings"
	"testing"

	"repro/internal/storage"
)

// frameTuples is a torture set for the columnar codec: int64s past 2^53,
// negatives, NaN-free floats, empty and multi-byte strings, NULLs in every
// column, and a kind-heterogeneous final column.
func frameTuples() []storage.Tuple {
	return []storage.Tuple{
		{storage.Int(1), storage.Float(1.5), storage.StringVal("a"), storage.Int(7)},
		{storage.Int(-9_007_199_254_740_993), storage.Null, storage.StringVal(""), storage.StringVal("mixed")},
		{storage.Null, storage.Float(math.MaxFloat64), storage.StringVal("héllo\nworld"), storage.Null},
		{storage.Int(math.MaxInt64), storage.Float(-0.0), storage.Null, storage.Float(2.25)},
		{storage.Int(math.MinInt64), storage.Float(1e-308), storage.StringVal(strings.Repeat("x", 300)), storage.Int(0)},
	}
}

func TestBatchRoundTrip(t *testing.T) {
	tuples := frameTuples()
	b, err := BatchFromTuples(tuples, 4)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != len(tuples) || b.Arity() != 4 {
		t.Fatalf("batch %dx%d, want %dx4", b.Len(), b.Arity(), len(tuples))
	}
	if b.Cols()[3].Mixed == nil {
		t.Fatalf("heterogeneous column did not fall back to mixed layout")
	}
	payload := AppendBatch(nil, b)
	got, err := DecodeBatch(payload, 4)
	if err != nil {
		t.Fatal(err)
	}
	back := got.Tuples()
	if len(back) != len(tuples) {
		t.Fatalf("decoded %d rows, want %d", len(back), len(tuples))
	}
	for i := range tuples {
		for c := range tuples[i] {
			w, g := tuples[i][c], back[i][c]
			if w.Kind() != g.Kind() || !storage.Equal(w, g) {
				t.Fatalf("row %d col %d: got %v (%v), want %v (%v)", i, c, g, g.Kind(), w, w.Kind())
			}
		}
	}
}

func TestBatchRoundTripEdges(t *testing.T) {
	cases := [][]storage.Tuple{
		nil,                              // empty batch
		{{}, {}},                         // zero-arity rows
		{{storage.Null}, {storage.Null}}, // all-NULL column
		{{storage.Int(1)}, {storage.Null}, {storage.Int(2)}}, // nullable int
	}
	for i, tuples := range cases {
		arity := 0
		if len(tuples) > 0 {
			arity = len(tuples[0])
		}
		b, err := BatchFromTuples(tuples, arity)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		got, err := DecodeBatch(AppendBatch(nil, b), arity)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		back := got.Tuples()
		if len(back) != len(tuples) {
			t.Fatalf("case %d: %d rows, want %d", i, len(back), len(tuples))
		}
		for r := range tuples {
			for c := range tuples[r] {
				if !storage.Equal(tuples[r][c], back[r][c]) {
					t.Fatalf("case %d row %d col %d mismatch", i, r, c)
				}
			}
		}
	}
}

func TestBatchArityMismatch(t *testing.T) {
	_, err := BatchFromTuples([]storage.Tuple{{storage.Int(1)}, {}}, 1)
	if err == nil {
		t.Fatal("want arity error")
	}
}

func TestFrameStreamRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	if err := fw.WriteHeader([]byte(`{"columns":[]}`)); err != nil {
		t.Fatal(err)
	}
	tuples := frameTuples()
	if err := fw.WriteTuples(tuples[:3], 4); err != nil {
		t.Fatal(err)
	}
	if err := fw.WriteTuples(tuples[3:], 4); err != nil {
		t.Fatal(err)
	}
	if err := fw.WriteTrailer([]byte(`{"done":true}`)); err != nil {
		t.Fatal(err)
	}

	fr := NewFrameReader(&buf)
	f, err := fr.Next()
	if err != nil || f.Type != FrameHeader || string(f.Payload) != `{"columns":[]}` {
		t.Fatalf("header frame: %v %+v", err, f)
	}
	var rows []storage.Tuple
	for {
		f, err = fr.Next()
		if err != nil {
			t.Fatal(err)
		}
		if f.Type == FrameTrailer {
			break
		}
		if f.Type != FrameBatch {
			t.Fatalf("unexpected frame type %c", f.Type)
		}
		b, err := DecodeBatch(f.Payload, 4)
		if err != nil {
			t.Fatal(err)
		}
		rows = append(rows, b.Tuples()...)
	}
	if string(f.Payload) != `{"done":true}` {
		t.Fatalf("trailer payload %q", f.Payload)
	}
	if len(rows) != len(tuples) {
		t.Fatalf("decoded %d rows, want %d", len(rows), len(tuples))
	}
	if _, err := fr.Next(); err != io.EOF {
		t.Fatalf("after trailer: %v, want io.EOF", err)
	}
}

func TestFrameReaderCutAndCorrupt(t *testing.T) {
	var full bytes.Buffer
	fw := NewFrameWriter(&full)
	_ = fw.WriteHeader([]byte(`{}`))
	_ = fw.WriteTuples(frameTuples(), 4)
	raw := full.Bytes()

	// Every strict prefix must end in a cut-stream error — except a cut
	// exactly on a frame boundary, which is clean io.EOF at this layer
	// (trailer presence is the stream *reader*'s contract, service side).
	boundaries := map[int]bool{4: true, 4 + 5 + 2: true} // after magic; after header frame
	for cut := 0; cut < len(raw); cut++ {
		fr := NewFrameReader(bytes.NewReader(raw[:cut]))
		for {
			_, err := fr.Next()
			if err == nil {
				continue
			}
			if err == io.EOF && !boundaries[cut] {
				t.Fatalf("cut %d: clean EOF inside a truncated frame", cut)
			}
			break
		}
	}

	// Corrupt magic.
	bad := append([]byte("XXXX"), raw[4:]...)
	if _, err := NewFrameReader(bytes.NewReader(bad)).Next(); !errors.Is(err, ErrFrameCorrupt) {
		t.Fatalf("bad magic: %v", err)
	}

	// Corrupt frame type.
	bad = bytes.Clone(raw)
	bad[4] = 'Z'
	if _, err := NewFrameReader(bytes.NewReader(bad)).Next(); !errors.Is(err, ErrFrameCorrupt) {
		t.Fatalf("bad frame type: %v", err)
	}

	// Oversized declared payload.
	bad = bytes.Clone(raw)
	bad[5], bad[6], bad[7], bad[8] = 0xff, 0xff, 0xff, 0xff
	if _, err := NewFrameReader(bytes.NewReader(bad)).Next(); !errors.Is(err, ErrFrameCorrupt) {
		t.Fatalf("oversized payload: %v", err)
	}
}

func TestDecodeBatchRejectsCorruption(t *testing.T) {
	b, err := BatchFromTuples(frameTuples(), 4)
	if err != nil {
		t.Fatal(err)
	}
	payload := AppendBatch(nil, b)

	// Every strict prefix must error, not panic.
	for cut := 0; cut < len(payload); cut++ {
		if _, err := DecodeBatch(payload[:cut], 4); err == nil {
			t.Fatalf("prefix %d decoded cleanly", cut)
		}
	}
	// Wrong arity: either errors or consumes a different layout — must not
	// panic; trailing bytes are rejected.
	if _, err := DecodeBatch(payload, 3); err == nil {
		t.Fatal("short arity decoded cleanly with trailing bytes")
	}
	// Hostile row count (uvarint ≫ maxBatchRows) with no backing data.
	if _, err := DecodeBatch(append([]byte{0xff, 0xff, 0xff, 0xff, 0x7f}, 0, 0), 1); err == nil {
		t.Fatal("hostile row count decoded cleanly")
	}
}
