package stream

import (
	"fmt"

	"repro/internal/storage"
)

// Batch is a column-vector view of a run of rows: one Col per schema
// column, each holding the column's values as a packed typed slice plus a
// validity vector. It is the executor- and wire-facing columnar carrier —
// the binary frame codec (frame.go) writes a Batch payload as a near-memcpy
// of these vectors, and exec's boundaries convert between tuple rows and
// batches so the inner loops can stay cache-friendly.
//
// A Col is in exactly one of two layouts:
//
//   - typed: Kind is Int/Float/String and the matching vector (Ints,
//     Floats, Strs) has one N-aligned slot per row; Null marks the NULL
//     slots (nil Null means no NULLs). Kind Null with no vectors is the
//     all-NULL column.
//   - mixed: Mixed holds one storage.Value per row, for the rare
//     kind-heterogeneous column (well-typed relations never produce one,
//     but the wire must stay lossless for any tuple the engine can carry).
type Batch struct {
	n    int
	cols []Col
}

// Col is one column vector of a Batch.
type Col struct {
	// Kind is the column's value kind: Int/Float/String select a typed
	// vector, Null is the all-NULL column. Mixed layouts ignore Kind.
	Kind storage.Kind
	// Null marks NULL slots of a typed vector; nil means none.
	Null []bool
	// Ints/Floats/Strs is the typed vector (exactly one non-nil, N-aligned;
	// NULL slots hold the zero value).
	Ints   []int64
	Floats []float64
	Strs   []string
	// Mixed, when non-nil, overrides the typed layout with per-row values.
	Mixed []storage.Value
}

// Len returns the batch's row count.
func (b *Batch) Len() int { return b.n }

// Arity returns the batch's column count.
func (b *Batch) Arity() int { return len(b.cols) }

// Cols returns the column vectors.
func (b *Batch) Cols() []Col { return b.cols }

// Value returns row i of the column.
func (c *Col) Value(i int) storage.Value {
	if c.Mixed != nil {
		return c.Mixed[i]
	}
	if c.Null != nil && c.Null[i] {
		return storage.Null
	}
	switch c.Kind {
	case storage.KindInt:
		return storage.Int(c.Ints[i])
	case storage.KindFloat:
		return storage.Float(c.Floats[i])
	case storage.KindString:
		return storage.StringVal(c.Strs[i])
	default:
		return storage.Null
	}
}

// BatchFromTuples converts a run of same-arity tuples into column vectors.
// Columns whose non-NULL values share one kind become typed vectors; a
// kind-heterogeneous column falls back to the mixed layout.
func BatchFromTuples(tuples []storage.Tuple, arity int) (*Batch, error) {
	b := &Batch{n: len(tuples), cols: make([]Col, arity)}
	for _, t := range tuples {
		if len(t) != arity {
			return nil, fmt.Errorf("stream: tuple arity %d != batch arity %d", len(t), arity)
		}
	}
	for c := range b.cols {
		kind := storage.KindNull
		mixed := false
		for _, t := range tuples {
			k := t[c].Kind()
			if k == storage.KindNull {
				continue
			}
			if kind == storage.KindNull {
				kind = k
			} else if kind != k {
				mixed = true
				break
			}
		}
		col := Col{Kind: kind}
		if mixed {
			col.Mixed = make([]storage.Value, len(tuples))
			for i, t := range tuples {
				col.Mixed[i] = t[c]
			}
			b.cols[c] = col
			continue
		}
		switch kind {
		case storage.KindNull: // all-NULL column: no vectors at all
		case storage.KindInt:
			col.Ints = make([]int64, len(tuples))
		case storage.KindFloat:
			col.Floats = make([]float64, len(tuples))
		case storage.KindString:
			col.Strs = make([]string, len(tuples))
		}
		for i, t := range tuples {
			v := t[c]
			if v.IsNull() {
				if kind != storage.KindNull {
					if col.Null == nil {
						col.Null = make([]bool, len(tuples))
					}
					col.Null[i] = true
				}
				continue
			}
			switch kind {
			case storage.KindInt:
				col.Ints[i] = v.Int64()
			case storage.KindFloat:
				col.Floats[i] = v.Float64()
			case storage.KindString:
				col.Strs[i] = v.Str()
			}
		}
		b.cols[c] = col
	}
	return b, nil
}

// Tuples materializes the batch back into row tuples.
func (b *Batch) Tuples() []storage.Tuple {
	out := make([]storage.Tuple, b.n)
	if b.n == 0 {
		return out
	}
	// One arena allocation for all row backing arrays: rows leaving a batch
	// are the executor's working set, and 1 allocation beats b.n small ones.
	arena := make(storage.Tuple, b.n*len(b.cols))
	for i := range out {
		t := arena[i*len(b.cols) : (i+1)*len(b.cols) : (i+1)*len(b.cols)]
		for c := range b.cols {
			t[c] = b.cols[c].Value(i)
		}
		out[i] = t
	}
	return out
}
