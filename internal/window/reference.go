package window

import (
	"sort"

	"repro/internal/storage"
)

// Reference evaluates spec over a table by the definition, with no reliance
// on input ordering, segment structure or sliding-window algebra: partitions
// are collected by grouping, ordered by an explicit stable sort, and every
// frame is recomputed from scratch per row. It is O(n²) and exists as the
// testing oracle for the streaming evaluator and the whole reorder pipeline.
//
// The result is keyed by the original row index, so callers can compare
// regardless of output order.
func Reference(rows []storage.Tuple, spec Spec) ([]storage.Value, error) {
	n := len(rows)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	// Group by WPK via sorting indices on the partition key, then stable
	// order each partition on WOK.
	pkSeq := spec.PK.AscSeq()
	sort.SliceStable(idx, func(a, b int) bool {
		if c := storage.CompareSeq(rows[idx[a]], rows[idx[b]], pkSeq); c != 0 {
			return c < 0
		}
		return storage.CompareSeq(rows[idx[a]], rows[idx[b]], spec.OK) < 0
	})
	out := make([]storage.Value, n)
	start := 0
	for start < n {
		end := start + 1
		for end < n && storage.EqualOn(rows[idx[start]], rows[idx[end]], spec.PK) {
			end++
		}
		part := make([]storage.Tuple, end-start)
		for i := start; i < end; i++ {
			part[i-start] = rows[idx[i]]
		}
		vals, err := referencePartition(part, spec)
		if err != nil {
			return nil, err
		}
		for i := start; i < end; i++ {
			out[idx[i]] = vals[i-start]
		}
		start = end
	}
	return out, nil
}

// referencePartition evaluates one partition by direct definition.
func referencePartition(part []storage.Tuple, spec Spec) ([]storage.Value, error) {
	n := len(part)
	out := make([]storage.Value, n)
	peersEqual := func(i, j int) bool {
		return storage.CompareSeq(part[i], part[j], spec.OK) == 0
	}
	switch spec.Kind {
	case RowNumber:
		for i := range out {
			out[i] = storage.Int(int64(i + 1))
		}
		return out, nil
	case Rank:
		// rank = 1 + count of rows strictly before the peer group.
		for i := range out {
			first := i
			for first > 0 && peersEqual(first-1, i) {
				first--
			}
			out[i] = storage.Int(int64(first + 1))
		}
		return out, nil
	case DenseRank:
		for i := range out {
			d := 1
			for j := 1; j <= i; j++ {
				if !peersEqual(j, j-1) {
					d++
				}
			}
			out[i] = storage.Int(int64(d))
		}
		return out, nil
	case PercentRank:
		for i := range out {
			first := i
			for first > 0 && peersEqual(first-1, i) {
				first--
			}
			if n == 1 {
				out[i] = storage.Float(0)
			} else {
				out[i] = storage.Float(float64(first) / float64(n-1))
			}
		}
		return out, nil
	case CumeDist:
		for i := range out {
			last := i
			for last+1 < n && peersEqual(last+1, i) {
				last++
			}
			out[i] = storage.Float(float64(last+1) / float64(n))
		}
		return out, nil
	case Ntile, Lead, Lag:
		// Positional functions share the streaming implementation's logic;
		// recompute directly.
		return computePartition(part, spec)
	}

	// Framed functions: recompute each frame by scanning.
	lo, hi, err := frameBounds(part, spec)
	if err != nil {
		return nil, err
	}
	for i := range part {
		frame := part[lo[i]:hi[i]]
		switch spec.Kind {
		case FirstValue:
			if len(frame) > 0 {
				out[i] = frame[0][spec.Arg]
			} else {
				out[i] = storage.Null
			}
		case LastValue:
			if len(frame) > 0 {
				out[i] = frame[len(frame)-1][spec.Arg]
			} else {
				out[i] = storage.Null
			}
		case NthValue:
			if int(spec.N) >= 1 && int(spec.N) <= len(frame) {
				out[i] = frame[spec.N-1][spec.Arg]
			} else {
				out[i] = storage.Null
			}
		case Count:
			cnt := int64(0)
			for _, r := range frame {
				if spec.Arg < 0 || !r[spec.Arg].IsNull() {
					cnt++
				}
			}
			out[i] = storage.Int(cnt)
		case Sum, Avg:
			sumF := 0.0
			var sumI int64
			allInt := true
			cnt := int64(0)
			for _, r := range frame {
				v := r[spec.Arg]
				if v.IsNull() {
					continue
				}
				if v.Kind() == storage.KindInt {
					sumI += v.Int64()
					sumF += float64(v.Int64())
				} else {
					sumF += v.Float64()
					allInt = false
				}
				cnt++
			}
			switch {
			case cnt == 0:
				out[i] = storage.Null
			case spec.Kind == Avg:
				out[i] = storage.Float(sumF / float64(cnt))
			case allInt:
				out[i] = storage.Int(sumI)
			default:
				out[i] = storage.Float(sumF)
			}
		case Min, Max:
			best := storage.Null
			for _, r := range frame {
				v := r[spec.Arg]
				if v.IsNull() {
					continue
				}
				if best.IsNull() {
					best = v
					continue
				}
				c := storage.Compare(v, best)
				if (spec.Kind == Min && c < 0) || (spec.Kind == Max && c > 0) {
					best = v
				}
			}
			out[i] = best
		}
	}
	return out, nil
}
