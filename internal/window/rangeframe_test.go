package window

import (
	"testing"

	"repro/internal/attrs"
	"repro/internal/storage"
)

// rangeFrameTable builds rows over (grp INT, k INT-with-NULLs, v INT):
// enough duplicate keys for peer groups, NULLs for the NULL-peer-group
// rule, and gaps (k jumps by 10) so small offsets produce empty frames.
func rangeFrameTable() []storage.Tuple {
	mk := func(grp int64, k storage.Value, v int64) storage.Tuple {
		return storage.Tuple{storage.Int(grp), k, storage.Int(v)}
	}
	n := storage.Null
	i := storage.Int
	return []storage.Tuple{
		mk(1, i(0), 1), mk(1, i(0), 2), mk(1, i(10), 3), mk(1, i(11), 4),
		mk(1, i(30), 5), mk(1, n, 6), mk(1, n, 7),
		mk(2, i(-5), 8), mk(2, i(5), 9), mk(2, n, 10), mk(2, i(5), 11),
		mk(3, i(42), 12), // single-row partition
		mk(4, n, 13),     // all-NULL partition
		mk(4, n, 14),
	}
}

// rangeSpec builds a framed sum() over the table with the given ordering
// direction, null placement and frame bounds.
func rangeSpec(desc, nullsFirst bool, start, end Bound) Spec {
	return Spec{
		Name: "s",
		Kind: Sum,
		Arg:  2,
		PK:   attrs.MakeSet(0),
		OK:   attrs.Seq{{Attr: 1, Desc: desc, NullsFirst: nullsFirst}},
		Frame: &Frame{
			Mode:  Range,
			Start: start,
			End:   end,
		},
	}
}

// assertMatchesReference evaluates the spec via the streaming evaluator
// (over properly arranged input) and via the O(n²) reference (over the
// raw rows) and requires identical derived values per original row.
func assertMatchesReference(t *testing.T, spec Spec, rows []storage.Tuple) {
	t.Helper()
	want, err := Reference(rows, spec)
	if err != nil {
		t.Fatal(err)
	}
	// Arrange a matching order for the streaming path: PK, then OK with
	// its direction and null placement — what any reorder operator
	// producing a matched stream would emit — while remembering each
	// row's original index.
	type tagged struct {
		row storage.Tuple
		idx int
	}
	arranged := make([]tagged, len(rows))
	for i, r := range rows {
		arranged[i] = tagged{row: r, idx: i}
	}
	key := spec.PK.AscSeq().Concat(spec.OK)
	for i := 1; i < len(arranged); i++ {
		for j := i; j > 0 && storage.CompareSeq(arranged[j].row, arranged[j-1].row, key) < 0; j-- {
			arranged[j], arranged[j-1] = arranged[j-1], arranged[j]
		}
	}
	sorted := make([]storage.Tuple, len(arranged))
	for i, a := range arranged {
		sorted[i] = a.row
	}
	got, err := EvaluateSlice(sorted, spec)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range arranged {
		if !storage.Equal(got[i], want[a.idx]) {
			t.Errorf("row %d (%v): streaming %v != reference %v", a.idx, a.row, got[i], want[a.idx])
		}
	}
}

// TestRangeOffsetDescending: RANGE k PRECEDING/FOLLOWING under a
// descending ordering key — "preceding" moves against the sort direction,
// i.e. towards larger values.
func TestRangeOffsetDescending(t *testing.T) {
	rows := rangeFrameTable()
	for _, nullsFirst := range []bool{false, true} {
		assertMatchesReference(t, rangeSpec(true, nullsFirst,
			Bound{Type: Preceding, Offset: 10}, Bound{Type: CurrentRow}), rows)
		assertMatchesReference(t, rangeSpec(true, nullsFirst,
			Bound{Type: CurrentRow}, Bound{Type: Following, Offset: 10}), rows)
		assertMatchesReference(t, rangeSpec(true, nullsFirst,
			Bound{Type: Preceding, Offset: 1}, Bound{Type: Following, Offset: 1}), rows)
	}
}

// TestRangeOffsetAscendingNulls: ascending frames with NULL keys — a NULL
// row's frame is exactly its NULL peer group, wherever the nulls sort.
func TestRangeOffsetAscendingNulls(t *testing.T) {
	rows := rangeFrameTable()
	for _, nullsFirst := range []bool{false, true} {
		assertMatchesReference(t, rangeSpec(false, nullsFirst,
			Bound{Type: Preceding, Offset: 10}, Bound{Type: CurrentRow}), rows)
		assertMatchesReference(t, rangeSpec(false, nullsFirst,
			Bound{Type: Preceding, Offset: 0}, Bound{Type: Following, Offset: 0}), rows)
	}
}

// TestRangeOffsetEmptyFrames: bounds that exclude every row (the frame
// window falls into a key gap) must yield NULL sums, identically in both
// evaluators.
func TestRangeOffsetEmptyFrames(t *testing.T) {
	rows := rangeFrameTable()
	// [k+5, k+6] lands between the 11→30 gap for most keys: frames are
	// frequently empty.
	spec := rangeSpec(false, false,
		Bound{Type: Following, Offset: 5}, Bound{Type: Following, Offset: 6})
	assertMatchesReference(t, spec, rows)
	// And the mirrored preceding form, descending.
	specDesc := rangeSpec(true, false,
		Bound{Type: Preceding, Offset: 6}, Bound{Type: Preceding, Offset: 5})
	assertMatchesReference(t, specDesc, rows)

	// Pin one concrete empty frame: group 1 ascending, row k=30 with
	// frame [35, 36] has no rows — sum must be NULL.
	got, err := Reference(rows, spec)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rows {
		if r[0].Int64() == 1 && !r[1].IsNull() && r[1].Int64() == 30 {
			if !got[i].IsNull() {
				t.Errorf("k=30 frame [35,36]: sum = %v, want NULL", got[i])
			}
		}
	}
}

// TestRangeOffsetCountFirstLast exercises the other framed functions over
// offset frames with descending order and NULLs (count never goes NULL on
// empty frames; first_value/last_value do).
func TestRangeOffsetCountFirstLast(t *testing.T) {
	rows := rangeFrameTable()
	for _, kind := range []Kind{Count, FirstValue, LastValue, Min, Max, Avg} {
		spec := rangeSpec(true, false,
			Bound{Type: Preceding, Offset: 10}, Bound{Type: Following, Offset: 1})
		spec.Kind = kind
		assertMatchesReference(t, spec, rows)
	}
}

// TestRangeOffsetValidation: offset frames demand exactly one ordering
// key, and a string key is rejected at evaluation.
func TestRangeOffsetValidation(t *testing.T) {
	spec := rangeSpec(false, false, Bound{Type: Preceding, Offset: 1}, Bound{Type: CurrentRow})
	spec.OK = attrs.Seq{{Attr: 1}, {Attr: 2}}
	schema := storage.NewSchema(
		storage.Column{Name: "g", Type: storage.TypeInt},
		storage.Column{Name: "k", Type: storage.TypeInt},
		storage.Column{Name: "v", Type: storage.TypeInt},
	)
	if err := spec.Validate(schema); err == nil {
		t.Error("two ordering keys must fail validation for RANGE offsets")
	}

	strRows := []storage.Tuple{
		{storage.Int(1), storage.StringVal("a"), storage.Int(1)},
		{storage.Int(1), storage.StringVal("b"), storage.Int(2)},
	}
	strSpec := rangeSpec(false, false, Bound{Type: Preceding, Offset: 1}, Bound{Type: CurrentRow})
	if _, err := EvaluateSlice(strRows, strSpec); err == nil {
		t.Error("string ordering key must fail RANGE offset evaluation")
	}
}
