package window

import (
	"fmt"

	"repro/internal/storage"
	"repro/internal/stream"
)

// Evaluate computes spec over a stream that matches it (Definition 2) and
// returns a stream of the same rows extended with the derived column. The
// evaluation is the second logical step of Section 1: window partitions are
// detected by WPK value change during a single sequential scan (tuples of
// one WPK-group are consecutive in a matched stream, and — because segments
// are disjoint on X ⊆ WPK — a group never spans segments), each partition is
// buffered, the function is invoked per row, and rows flow on with their
// original segment boundaries.
//
// Evaluate does not verify the match; feeding a non-matching stream yields
// wrong results exactly as it would in a database executor. The planner
// guarantees matching (core.Plan.Validate), and tests cross-check against
// the O(n²) reference evaluator.
func Evaluate(in stream.Stream, spec Spec) (stream.Stream, error) {
	if spec.Kind.needsArg() && spec.Arg < 0 {
		return nil, fmt.Errorf("window: %s requires an argument column", spec.Kind)
	}
	return &evalStream{in: in, spec: spec}, nil
}

// evalStream buffers one partition at a time.
type evalStream struct {
	in   stream.Stream
	spec Spec

	part       []stream.Row // current partition with boundaries
	derived    []storage.Value
	pos        int
	pending    stream.Row
	hasPending bool
	primed     bool
	done       bool
	err        error
}

func (e *evalStream) Next() (stream.Row, bool) {
	for {
		if e.pos < len(e.part) {
			r := e.part[e.pos]
			// Extend, not Append: executor rows are arena-allocated with
			// spare capacity reserved per chain step, so the derived column
			// lands in place; tuples without spare capacity still copy.
			out := stream.Row{Tuple: r.Tuple.Extend(e.derived[e.pos]), Boundary: r.Boundary}
			e.pos++
			return out, true
		}
		if e.done {
			return stream.Row{}, false
		}
		if err := e.fillPartition(); err != nil {
			e.err = err
			return stream.Row{}, false
		}
		if len(e.part) == 0 {
			e.done = true
			return stream.Row{}, false
		}
	}
}

// fillPartition buffers the next WPK-group and computes the function.
func (e *evalStream) fillPartition() error {
	if !e.primed {
		r, ok := e.in.Next()
		if !ok {
			e.part = nil
			e.done = true
			return e.in.Close()
		}
		e.pending, e.hasPending = r, true
		e.primed = true
	}
	if !e.hasPending {
		e.part = nil
		e.done = true
		return nil
	}
	head := e.pending
	e.hasPending = false
	part := []stream.Row{head}
	for {
		r, ok := e.in.Next()
		if !ok {
			if err := e.in.Close(); err != nil {
				return err
			}
			break
		}
		if !storage.EqualOn(head.Tuple, r.Tuple, e.spec.PK) {
			e.pending, e.hasPending = r, true
			break
		}
		part = append(part, r)
	}
	tuples := make([]storage.Tuple, len(part))
	for i, r := range part {
		tuples[i] = r.Tuple
	}
	derived, err := computePartition(tuples, e.spec)
	if err != nil {
		return err
	}
	e.part = part
	e.derived = derived
	e.pos = 0
	return nil
}

func (e *evalStream) Close() error { return e.err }

// EvaluateSlice is the materialized convenience form used by tests and the
// reference paths: it evaluates spec over rows (which must already be
// arranged in matching order) and returns the derived column.
func EvaluateSlice(rows []storage.Tuple, spec Spec) ([]storage.Value, error) {
	out := make([]storage.Value, 0, len(rows))
	start := 0
	for start < len(rows) {
		end := start + 1
		for end < len(rows) && storage.EqualOn(rows[start], rows[end], spec.PK) {
			end++
		}
		vals, err := computePartition(rows[start:end], spec)
		if err != nil {
			return nil, err
		}
		out = append(out, vals...)
		start = end
	}
	return out, nil
}
