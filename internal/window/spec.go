// Package window implements SQL:2003 analytic window functions: ranking
// (row_number, rank, dense_rank, percent_rank, cume_dist, ntile), reference
// (lead, lag, first_value, last_value, nth_value) and aggregate (count, sum,
// avg, min, max) functions with ROWS/RANGE frames, evaluated partition-at-
// a-time over a matched segmented stream (Theorem 1 of the paper: a stream
// matching wf = (WPK, WOK) is consumed by a single sequential scan).
package window

import (
	"fmt"

	"repro/internal/attrs"
	"repro/internal/core"
	"repro/internal/storage"
)

// Kind enumerates the implemented window functions.
type Kind uint8

const (
	// RowNumber numbers rows 1..N within each partition.
	RowNumber Kind = iota
	// Rank is 1 + the number of preceding non-peer rows.
	Rank
	// DenseRank counts distinct peer groups up to the current row.
	DenseRank
	// PercentRank is (rank-1)/(N-1), 0 for a single-row partition.
	PercentRank
	// CumeDist is (rows ≤ current peer group)/N.
	CumeDist
	// Ntile distributes rows into N near-equal buckets.
	Ntile
	// Lead returns the value N rows after the current row.
	Lead
	// Lag returns the value N rows before the current row.
	Lag
	// FirstValue returns Arg at the first frame row.
	FirstValue
	// LastValue returns Arg at the last frame row.
	LastValue
	// NthValue returns Arg at the N-th frame row.
	NthValue
	// Count counts frame rows (CountStar) or non-null Arg values.
	Count
	// Sum totals Arg over the frame.
	Sum
	// Avg averages Arg over the frame.
	Avg
	// Min minimizes Arg over the frame.
	Min
	// Max maximizes Arg over the frame.
	Max
)

// String names the function in SQL spelling.
func (k Kind) String() string {
	switch k {
	case RowNumber:
		return "row_number"
	case Rank:
		return "rank"
	case DenseRank:
		return "dense_rank"
	case PercentRank:
		return "percent_rank"
	case CumeDist:
		return "cume_dist"
	case Ntile:
		return "ntile"
	case Lead:
		return "lead"
	case Lag:
		return "lag"
	case FirstValue:
		return "first_value"
	case LastValue:
		return "last_value"
	case NthValue:
		return "nth_value"
	case Count:
		return "count"
	case Sum:
		return "sum"
	case Avg:
		return "avg"
	case Min:
		return "min"
	case Max:
		return "max"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// needsArg reports whether the function takes a value argument.
func (k Kind) needsArg() bool {
	switch k {
	case Lead, Lag, FirstValue, LastValue, NthValue, Sum, Avg, Min, Max:
		return true
	default:
		return false
	}
}

// BoundType enumerates frame bound kinds.
type BoundType uint8

const (
	// UnboundedPreceding starts the frame at the partition head.
	UnboundedPreceding BoundType = iota
	// Preceding offsets backwards from the current row.
	Preceding
	// CurrentRow bounds the frame at the current row (RANGE: peer group).
	CurrentRow
	// Following offsets forwards from the current row.
	Following
	// UnboundedFollowing ends the frame at the partition tail.
	UnboundedFollowing
)

// Bound is one frame endpoint.
type Bound struct {
	Type   BoundType
	Offset int64 // Preceding/Following only
}

// FrameMode selects ROWS (positional) or RANGE (value/peer) framing.
type FrameMode uint8

const (
	// Rows frames by physical row offsets.
	Rows FrameMode = iota
	// Range frames by ordering-key values; offsets require a single
	// numeric ordering key, CURRENT ROW includes all peers.
	Range
)

// Frame is a window frame clause.
type Frame struct {
	Mode  FrameMode
	Start Bound
	End   Bound
}

// DefaultFrame is the SQL default when an ORDER BY is present:
// RANGE BETWEEN UNBOUNDED PRECEDING AND CURRENT ROW.
func DefaultFrame() Frame {
	return Frame{Mode: Range, Start: Bound{Type: UnboundedPreceding}, End: Bound{Type: CurrentRow}}
}

// WholePartitionFrame is the SQL default without ORDER BY: every partition
// row is in the frame.
func WholePartitionFrame() Frame {
	return Frame{Mode: Rows, Start: Bound{Type: UnboundedPreceding}, End: Bound{Type: UnboundedFollowing}}
}

// Spec is one window function call: wf = (WPK, WOK) plus the function, its
// argument and frame.
type Spec struct {
	// Name becomes the output column name.
	Name string
	Kind Kind
	// Arg is the value column for functions that take one; -1 otherwise.
	// Count with Arg = -1 is COUNT(*).
	Arg attrs.ID
	// N parameterizes ntile (bucket count), lead/lag (offset, default 1)
	// and nth_value (position).
	N int64
	// Default is the out-of-partition value for lead/lag (SQL NULL default).
	Default storage.Value

	// PK is WPK; PKOrder optionally preserves the PARTITION BY clause's
	// written order (used by the PSQL baseline); OK is WOK.
	PK      attrs.Set
	PKOrder attrs.Seq
	OK      attrs.Seq

	// Frame overrides the SQL default frame for framed functions.
	Frame *Frame
}

// WF converts the spec to the optimizer's view with the given chain ID.
func (s Spec) WF(id int) core.WF {
	return core.WF{ID: id, PK: s.PK, OK: s.OK, PKOrder: s.PKOrder}
}

// EffectiveFrame resolves the frame clause per SQL defaults.
func (s Spec) EffectiveFrame() Frame {
	if s.Frame != nil {
		return *s.Frame
	}
	if len(s.OK) > 0 {
		return DefaultFrame()
	}
	return WholePartitionFrame()
}

// Validate rejects malformed specifications.
func (s Spec) Validate(schema *storage.Schema) error {
	ncols := attrs.ID(schema.Len())
	if s.Kind.needsArg() {
		if s.Arg < 0 || s.Arg >= ncols {
			return fmt.Errorf("window: %s requires a value column, got %d", s.Kind, s.Arg)
		}
	}
	if s.Kind == Ntile && s.N < 1 {
		return fmt.Errorf("window: ntile bucket count must be ≥ 1, got %d", s.N)
	}
	if s.Kind == NthValue && s.N < 1 {
		return fmt.Errorf("window: nth_value position must be ≥ 1, got %d", s.N)
	}
	if (s.Kind == Lead || s.Kind == Lag) && s.N < 0 {
		return fmt.Errorf("window: %s offset must be ≥ 0, got %d", s.Kind, s.N)
	}
	for _, id := range s.PK.IDs() {
		if id >= ncols {
			return fmt.Errorf("window: partition attribute %d out of range", id)
		}
	}
	for _, e := range s.OK {
		if e.Attr < 0 || e.Attr >= ncols {
			return fmt.Errorf("window: ordering attribute %d out of range", e.Attr)
		}
	}
	if f := s.EffectiveFrame(); f.Mode == Range {
		if (f.Start.Type == Preceding || f.Start.Type == Following ||
			f.End.Type == Preceding || f.End.Type == Following) && len(s.OK) != 1 {
			return fmt.Errorf("window: RANGE frame with offsets requires exactly one ordering key")
		}
	}
	return nil
}

// OutputColumn names the appended column.
func (s Spec) OutputColumn() storage.Column {
	name := s.Name
	if name == "" {
		name = s.Kind.String()
	}
	typ := storage.TypeInt
	switch s.Kind {
	case PercentRank, CumeDist, Avg:
		typ = storage.TypeFloat
	case Lead, Lag, FirstValue, LastValue, NthValue, Min, Max, Sum:
		typ = storage.TypeFloat // value-dependent; widest default
	}
	return storage.Column{Name: name, Type: typ}
}
