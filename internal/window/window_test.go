package window

import (
	"math/rand"
	"testing"

	"repro/internal/attrs"
	"repro/internal/storage"
	"repro/internal/stream"
)

// arrange sorts rows into matching order for spec (PK then OK), the
// precondition of the streaming evaluator.
func arrange(rows []storage.Tuple, spec Spec) []storage.Tuple {
	t := &storage.Table{Schema: nil, Rows: append([]storage.Tuple(nil), rows...)}
	t.SortBy(spec.PK.AscSeq().Concat(spec.OK))
	return t.Rows
}

// checkAgainstReference evaluates spec both ways and compares per original
// row (identified by the tag in column tagCol).
func checkAgainstReference(t *testing.T, rows []storage.Tuple, spec Spec, tagCol int) {
	t.Helper()
	wantByTag := map[int64]storage.Value{}
	want, err := Reference(rows, spec)
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	for i, r := range rows {
		wantByTag[r[tagCol].Int64()] = want[i]
	}

	arranged := arrange(rows, spec)
	out, err := Evaluate(stream.FromTuples(arranged), spec)
	if err != nil {
		t.Fatalf("evaluate: %v", err)
	}
	got, err := stream.CollectTuples(out)
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	if len(got) != len(rows) {
		t.Fatalf("row count %d != %d", len(got), len(rows))
	}
	for _, r := range got {
		tag := r[tagCol].Int64()
		gotVal := r[len(r)-1]
		wantVal, ok := wantByTag[tag]
		if !ok {
			t.Fatalf("unknown tag %d", tag)
		}
		if !storage.Equal(gotVal, wantVal) {
			t.Fatalf("%s: row tag %d: got %s want %s", spec.Kind, tag, gotVal, wantVal)
		}
	}
}

func randRows(rng *rand.Rand, n int) []storage.Tuple {
	rows := make([]storage.Tuple, n)
	for i := range rows {
		var v storage.Value
		switch rng.Intn(5) {
		case 0:
			v = storage.Null
		default:
			v = storage.Int(rng.Int63n(50))
		}
		rows[i] = storage.Tuple{
			storage.Int(rng.Int63n(4)),  // partition col
			storage.Int(rng.Int63n(10)), // order col
			v,                           // value col (with NULLs)
			storage.Int(int64(i)),       // tag
		}
	}
	return rows
}

func baseSpec(kind Kind) Spec {
	return Spec{
		Name: "w",
		Kind: kind,
		Arg:  2,
		PK:   attrs.MakeSet(0),
		OK:   attrs.AscSeq(1),
	}
}

func TestAllFunctionsAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	kinds := []Kind{
		RowNumber, Rank, DenseRank, PercentRank, CumeDist,
		FirstValue, LastValue, Count, Sum, Avg, Min, Max,
	}
	for _, kind := range kinds {
		t.Run(kind.String(), func(t *testing.T) {
			for trial := 0; trial < 25; trial++ {
				rows := randRows(rng, 1+rng.Intn(120))
				spec := baseSpec(kind)
				if kind == RowNumber || kind == Rank || kind == DenseRank ||
					kind == PercentRank || kind == CumeDist || kind == Count {
					spec.Arg = -1
					if kind == Count && trial%2 == 0 {
						spec.Arg = 2 // count(col) half the time
					}
				}
				checkAgainstReference(t, rows, spec, 3)
			}
		})
	}
}

func TestNtileLeadLagNth(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		rows := randRows(rng, 1+rng.Intn(80))
		nt := baseSpec(Ntile)
		nt.Arg = -1
		nt.N = int64(1 + rng.Intn(7))
		checkAgainstReference(t, rows, nt, 3)

		lead := baseSpec(Lead)
		lead.N = int64(rng.Intn(4))
		lead.Default = storage.Int(-999)
		checkAgainstReference(t, rows, lead, 3)

		lag := baseSpec(Lag)
		lag.N = int64(1 + rng.Intn(3))
		checkAgainstReference(t, rows, lag, 3)

		nth := baseSpec(NthValue)
		nth.N = int64(1 + rng.Intn(5))
		checkAgainstReference(t, rows, nth, 3)
	}
}

func TestFrames(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	frames := []Frame{
		{Mode: Rows, Start: Bound{Type: UnboundedPreceding}, End: Bound{Type: CurrentRow}},
		{Mode: Rows, Start: Bound{Type: Preceding, Offset: 2}, End: Bound{Type: CurrentRow}},
		{Mode: Rows, Start: Bound{Type: Preceding, Offset: 3}, End: Bound{Type: Following, Offset: 1}},
		{Mode: Rows, Start: Bound{Type: CurrentRow}, End: Bound{Type: UnboundedFollowing}},
		{Mode: Rows, Start: Bound{Type: Following, Offset: 1}, End: Bound{Type: Following, Offset: 3}},
		{Mode: Rows, Start: Bound{Type: UnboundedPreceding}, End: Bound{Type: UnboundedFollowing}},
		{Mode: Range, Start: Bound{Type: UnboundedPreceding}, End: Bound{Type: CurrentRow}},
		{Mode: Range, Start: Bound{Type: CurrentRow}, End: Bound{Type: UnboundedFollowing}},
		{Mode: Range, Start: Bound{Type: Preceding, Offset: 2}, End: Bound{Type: CurrentRow}},
		{Mode: Range, Start: Bound{Type: Preceding, Offset: 1}, End: Bound{Type: Following, Offset: 1}},
	}
	kinds := []Kind{Sum, Avg, Min, Max, Count, FirstValue, LastValue}
	for _, f := range frames {
		for _, kind := range kinds {
			for trial := 0; trial < 6; trial++ {
				rows := randRows(rng, 1+rng.Intn(60))
				spec := baseSpec(kind)
				fr := f
				spec.Frame = &fr
				if kind == Count {
					spec.Arg = 2
				}
				checkAgainstReference(t, rows, spec, 3)
			}
		}
	}
}

func TestDescOrderingAndRangeFrames(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		rows := randRows(rng, 1+rng.Intn(60))
		spec := baseSpec(Sum)
		spec.OK = attrs.Seq{{Attr: 1, Desc: true}}
		fr := Frame{Mode: Range, Start: Bound{Type: Preceding, Offset: 2}, End: Bound{Type: CurrentRow}}
		spec.Frame = &fr
		checkAgainstReference(t, rows, spec, 3)
	}
}

func TestEmptyPartitionKeyWholeTable(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	rows := randRows(rng, 50)
	spec := Spec{Name: "r", Kind: Rank, Arg: -1, OK: attrs.AscSeq(1)}
	checkAgainstReference(t, rows, spec, 3)
}

func TestMultiPartitionBoundaries(t *testing.T) {
	// Partitions must reset state: rank restarts at 1.
	rows := []storage.Tuple{
		{storage.Int(1), storage.Int(10), storage.Null, storage.Int(0)},
		{storage.Int(1), storage.Int(20), storage.Null, storage.Int(1)},
		{storage.Int(2), storage.Int(5), storage.Null, storage.Int(2)},
	}
	spec := Spec{Name: "r", Kind: Rank, Arg: -1, PK: attrs.MakeSet(0), OK: attrs.AscSeq(1)}
	out, err := Evaluate(stream.FromTuples(rows), spec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := stream.CollectTuples(out)
	if err != nil {
		t.Fatal(err)
	}
	if got[2][4].Int64() != 1 {
		t.Errorf("rank did not reset at partition boundary: %v", got[2])
	}
}

func TestSumIntegerExactness(t *testing.T) {
	// Integer sums must stay exact (not routed through float64).
	big := int64(1) << 55
	rows := []storage.Tuple{
		{storage.Int(0), storage.Int(1), storage.Int(big), storage.Int(0)},
		{storage.Int(0), storage.Int(2), storage.Int(1), storage.Int(1)},
	}
	spec := baseSpec(Sum)
	fr := WholePartitionFrame()
	spec.Frame = &fr
	vals, err := EvaluateSlice(rows, spec)
	if err != nil {
		t.Fatal(err)
	}
	if vals[0].Kind() != storage.KindInt || vals[0].Int64() != big+1 {
		t.Errorf("integer sum lost exactness: %s", vals[0])
	}
}

func TestValidate(t *testing.T) {
	schema := storage.NewSchema(
		storage.Column{Name: "a", Type: storage.TypeInt},
		storage.Column{Name: "b", Type: storage.TypeInt},
	)
	bad := []Spec{
		{Kind: Sum, Arg: -1},                        // missing arg
		{Kind: Ntile, Arg: -1, N: 0},                // bad bucket count
		{Kind: NthValue, Arg: 0, N: 0},              // bad position
		{Kind: Rank, Arg: -1, OK: attrs.AscSeq(9)},  // attr out of range
		{Kind: Rank, Arg: -1, PK: attrs.MakeSet(7)}, // attr out of range
		{Kind: Sum, Arg: 0, OK: attrs.AscSeq(0, 1), Frame: &Frame{Mode: Range, Start: Bound{Type: Preceding, Offset: 1}, End: Bound{Type: CurrentRow}}}, // RANGE offset needs 1 key
	}
	for i, s := range bad {
		if err := s.Validate(schema); err == nil {
			t.Errorf("spec %d should fail validation", i)
		}
	}
	good := Spec{Kind: Rank, Arg: -1, PK: attrs.MakeSet(0), OK: attrs.AscSeq(1)}
	if err := good.Validate(schema); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

func TestSumOverStringsFails(t *testing.T) {
	rows := []storage.Tuple{{storage.Int(0), storage.Int(1), storage.StringVal("x"), storage.Int(0)}}
	spec := baseSpec(Sum)
	if _, err := EvaluateSlice(rows, spec); err == nil {
		t.Errorf("sum over strings should fail")
	}
}

func TestMinMaxOverStrings(t *testing.T) {
	rows := []storage.Tuple{
		{storage.Int(0), storage.Int(1), storage.StringVal("pear"), storage.Int(0)},
		{storage.Int(0), storage.Int(2), storage.StringVal("apple"), storage.Int(1)},
	}
	spec := baseSpec(Min)
	fr := WholePartitionFrame()
	spec.Frame = &fr
	vals, err := EvaluateSlice(rows, spec)
	if err != nil {
		t.Fatal(err)
	}
	if vals[0].Str() != "apple" {
		t.Errorf("min over strings = %s", vals[0])
	}
}

// TestPaperExample1 reproduces the sample output table of Example 1:
// rank() OVER (PARTITION BY dept ORDER BY salary DESC NULLS LAST) and
// rank() OVER (ORDER BY salary DESC NULLS LAST).
func TestPaperExample1(t *testing.T) {
	rows := []storage.Tuple{
		{storage.Int(1), storage.Null, storage.Null},
		{storage.Int(2), storage.Null, storage.Int(84000)},
		{storage.Int(3), storage.Int(2), storage.Null},
		{storage.Int(4), storage.Int(1), storage.Int(78000)},
		{storage.Int(5), storage.Int(1), storage.Int(75000)},
		{storage.Int(6), storage.Int(3), storage.Int(79000)},
		{storage.Int(7), storage.Int(2), storage.Int(51000)},
		{storage.Int(8), storage.Int(3), storage.Int(55000)},
		{storage.Int(9), storage.Int(1), storage.Int(53000)},
		{storage.Int(10), storage.Int(3), storage.Int(75000)},
	}
	salaryDesc := attrs.Seq{{Attr: 2, Desc: true}} // DESC NULLS LAST
	rankInDept := Spec{Name: "rank_in_dept", Kind: Rank, Arg: -1, PK: attrs.MakeSet(1), OK: salaryDesc}
	globalRank := Spec{Name: "globalrank", Kind: Rank, Arg: -1, OK: salaryDesc}

	inDept, err := Reference(rows, rankInDept)
	if err != nil {
		t.Fatal(err)
	}
	global, err := Reference(rows, globalRank)
	if err != nil {
		t.Fatal(err)
	}
	// Expected values per empnum from the paper's sample output.
	wantInDept := map[int64]int64{4: 1, 5: 2, 9: 3, 7: 1, 3: 2, 6: 1, 10: 2, 8: 3, 2: 1, 1: 2}
	wantGlobal := map[int64]int64{4: 3, 5: 4, 9: 7, 7: 8, 3: 9, 6: 2, 10: 4, 8: 6, 2: 1, 1: 9}
	for i, r := range rows {
		emp := r[0].Int64()
		if inDept[i].Int64() != wantInDept[emp] {
			t.Errorf("emp %d rank_in_dept = %s, want %d", emp, inDept[i], wantInDept[emp])
		}
		if global[i].Int64() != wantGlobal[emp] {
			t.Errorf("emp %d globalrank = %s, want %d", emp, global[i], wantGlobal[emp])
		}
	}
}
