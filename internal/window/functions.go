package window

import (
	"fmt"
	"sort"

	"repro/internal/storage"
)

// computePartition evaluates spec over one window partition (rows already
// ordered on WOK) and returns one derived value per row.
func computePartition(rows []storage.Tuple, spec Spec) ([]storage.Value, error) {
	n := len(rows)
	out := make([]storage.Value, n)
	switch spec.Kind {
	case RowNumber:
		for i := range out {
			out[i] = storage.Int(int64(i + 1))
		}
		return out, nil

	case Rank, DenseRank, PercentRank, CumeDist:
		starts := peerStarts(rows, spec)
		dense := 0
		for g := 0; g < len(starts); g++ {
			lo := starts[g]
			hi := n
			if g+1 < len(starts) {
				hi = starts[g+1]
			}
			dense++
			for i := lo; i < hi; i++ {
				switch spec.Kind {
				case Rank:
					out[i] = storage.Int(int64(lo + 1))
				case DenseRank:
					out[i] = storage.Int(int64(dense))
				case PercentRank:
					if n == 1 {
						out[i] = storage.Float(0)
					} else {
						out[i] = storage.Float(float64(lo) / float64(n-1))
					}
				case CumeDist:
					out[i] = storage.Float(float64(hi) / float64(n))
				}
			}
		}
		return out, nil

	case Ntile:
		buckets := spec.N
		if buckets < 1 {
			return nil, fmt.Errorf("window: ntile bucket count %d", buckets)
		}
		if buckets > int64(n) {
			buckets = int64(n)
		}
		base := int64(n) / buckets
		extra := int64(n) % buckets
		i := 0
		for b := int64(1); b <= buckets; b++ {
			size := base
			if b <= extra {
				size++
			}
			for j := int64(0); j < size && i < n; j++ {
				out[i] = storage.Int(b)
				i++
			}
		}
		return out, nil

	case Lead, Lag:
		// N is the explicit offset; the SQL layer supplies the default of 1
		// when the argument is omitted. N = 0 legitimately means "this row".
		off := spec.N
		for i := range rows {
			j := i
			if spec.Kind == Lead {
				j = i + int(off)
			} else {
				j = i - int(off)
			}
			if j >= 0 && j < n {
				out[i] = rows[j][spec.Arg]
			} else {
				out[i] = spec.Default
			}
		}
		return out, nil
	}

	// Framed functions.
	lo, hi, err := frameBounds(rows, spec)
	if err != nil {
		return nil, err
	}
	switch spec.Kind {
	case FirstValue:
		for i := range rows {
			if lo[i] < hi[i] {
				out[i] = rows[lo[i]][spec.Arg]
			} else {
				out[i] = storage.Null
			}
		}
	case LastValue:
		for i := range rows {
			if lo[i] < hi[i] {
				out[i] = rows[hi[i]-1][spec.Arg]
			} else {
				out[i] = storage.Null
			}
		}
	case NthValue:
		for i := range rows {
			idx := lo[i] + int(spec.N) - 1
			if idx >= lo[i] && idx < hi[i] {
				out[i] = rows[idx][spec.Arg]
			} else {
				out[i] = storage.Null
			}
		}
	case Count:
		if spec.Arg < 0 {
			for i := range rows {
				out[i] = storage.Int(int64(hi[i] - lo[i]))
			}
			break
		}
		pref := make([]int64, n+1)
		for i, r := range rows {
			pref[i+1] = pref[i]
			if !r[spec.Arg].IsNull() {
				pref[i+1]++
			}
		}
		for i := range rows {
			out[i] = storage.Int(pref[hi[i]] - pref[lo[i]])
		}
	case Sum, Avg:
		sums, counts, allInt, err := prefixSums(rows, spec)
		if err != nil {
			return nil, err
		}
		for i := range rows {
			cnt := counts[hi[i]] - counts[lo[i]]
			if cnt == 0 {
				out[i] = storage.Null
				continue
			}
			if spec.Kind == Avg {
				out[i] = storage.Float((sums.f[hi[i]] - sums.f[lo[i]]) / float64(cnt))
			} else if allInt {
				out[i] = storage.Int(sums.i[hi[i]] - sums.i[lo[i]])
			} else {
				out[i] = storage.Float(sums.f[hi[i]] - sums.f[lo[i]])
			}
		}
	case Min, Max:
		if err := slidingExtreme(rows, spec, lo, hi, out); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("window: unimplemented function %s", spec.Kind)
	}
	return out, nil
}

// peerStarts returns the start index of each peer group (rows equal on WOK).
func peerStarts(rows []storage.Tuple, spec Spec) []int {
	var starts []int
	for i := range rows {
		if i == 0 || storage.CompareSeq(rows[i-1], rows[i], spec.OK) != 0 {
			starts = append(starts, i)
		}
	}
	return starts
}

// peerBounds maps each row to its peer group's [start, end).
func peerBounds(rows []storage.Tuple, spec Spec) (start, end []int) {
	n := len(rows)
	start = make([]int, n)
	end = make([]int, n)
	i := 0
	for i < n {
		j := i + 1
		for j < n && storage.CompareSeq(rows[i], rows[j], spec.OK) == 0 {
			j++
		}
		for k := i; k < j; k++ {
			start[k], end[k] = i, j
		}
		i = j
	}
	return
}

// frameBounds computes each row's frame [lo, hi).
func frameBounds(rows []storage.Tuple, spec Spec) (lo, hi []int, err error) {
	n := len(rows)
	lo = make([]int, n)
	hi = make([]int, n)
	f := spec.EffectiveFrame()
	var peerS, peerE []int
	needPeers := f.Mode == Range && (f.Start.Type == CurrentRow || f.End.Type == CurrentRow)
	if needPeers {
		peerS, peerE = peerBounds(rows, spec)
	}
	boundIdx := func(i int, b Bound, isStart bool) (int, error) {
		switch b.Type {
		case UnboundedPreceding:
			return 0, nil
		case UnboundedFollowing:
			return n, nil
		case CurrentRow:
			if f.Mode == Range {
				if isStart {
					return peerS[i], nil
				}
				return peerE[i], nil
			}
			if isStart {
				return i, nil
			}
			return i + 1, nil
		case Preceding, Following:
			if f.Mode == Rows {
				d := int(b.Offset)
				if b.Type == Preceding {
					d = -d
				}
				idx := i + d
				if !isStart {
					idx++
				}
				if idx < 0 {
					idx = 0
				}
				if idx > n {
					idx = n
				}
				return idx, nil
			}
			return rangeOffsetBound(rows, spec, i, b, isStart)
		}
		return 0, fmt.Errorf("window: unknown bound type %d", b.Type)
	}
	for i := range rows {
		l, err := boundIdx(i, f.Start, true)
		if err != nil {
			return nil, nil, err
		}
		h, err := boundIdx(i, f.End, false)
		if err != nil {
			return nil, nil, err
		}
		if h < l {
			h = l
		}
		lo[i], hi[i] = l, h
	}
	return lo, hi, nil
}

// rangeOffsetBound resolves a RANGE k PRECEDING/FOLLOWING bound: it needs a
// single numeric ordering key. Rows with a NULL key frame their own peer
// group (SQL treats NULL as incomparable).
func rangeOffsetBound(rows []storage.Tuple, spec Spec, i int, b Bound, isStart bool) (int, error) {
	if len(spec.OK) != 1 {
		return 0, fmt.Errorf("window: RANGE offset frame requires exactly one ordering key")
	}
	e := spec.OK[0]
	cur := rows[i][e.Attr]
	if cur.IsNull() {
		// NULL peer group.
		lo, hi := i, i+1
		for lo > 0 && rows[lo-1][e.Attr].IsNull() {
			lo--
		}
		for hi < len(rows) && rows[hi][e.Attr].IsNull() {
			hi++
		}
		if isStart {
			return lo, nil
		}
		return hi, nil
	}
	if cur.Kind() == storage.KindString {
		return 0, fmt.Errorf("window: RANGE offset frame requires a numeric ordering key")
	}
	curF := cur.Float64()
	off := float64(b.Offset)
	// Logical threshold in ordering direction: preceding moves against the
	// sort direction, following with it.
	var threshold float64
	sign := 1.0
	if e.Desc {
		sign = -1
	}
	if b.Type == Preceding {
		threshold = curF - sign*off
	} else {
		threshold = curF + sign*off
	}
	n := len(rows)
	inOrder := func(v float64) float64 { return sign * v } // map to ascending space
	tt := inOrder(threshold)
	nonNull := func(j int) bool { return !rows[j][e.Attr].IsNull() }
	if isStart {
		// First row with key ≥ threshold (ascending space), skipping NULLs
		// on the first-sorted side.
		return sort.Search(n, func(j int) bool {
			if !nonNull(j) {
				// NULLs first sort before everything, NULLs last after.
				return !e.NullsFirst
			}
			return inOrder(rows[j][e.Attr].Float64()) >= tt
		}), nil
	}
	// One past the last row with key ≤ threshold.
	return sort.Search(n, func(j int) bool {
		if !nonNull(j) {
			return !e.NullsFirst
		}
		return inOrder(rows[j][e.Attr].Float64()) > tt
	}), nil
}

type sums struct {
	f []float64
	i []int64
}

// prefixSums builds prefix aggregates over the argument column.
func prefixSums(rows []storage.Tuple, spec Spec) (sums, []int64, bool, error) {
	n := len(rows)
	s := sums{f: make([]float64, n+1), i: make([]int64, n+1)}
	counts := make([]int64, n+1)
	allInt := true
	for i, r := range rows {
		v := r[spec.Arg]
		s.f[i+1] = s.f[i]
		s.i[i+1] = s.i[i]
		counts[i+1] = counts[i]
		if v.IsNull() {
			continue
		}
		switch v.Kind() {
		case storage.KindInt:
			s.f[i+1] += float64(v.Int64())
			s.i[i+1] += v.Int64()
		case storage.KindFloat:
			s.f[i+1] += v.Float64()
			allInt = false
		default:
			return s, nil, false, fmt.Errorf("window: %s over non-numeric column", spec.Kind)
		}
		counts[i+1]++
	}
	return s, counts, allInt, nil
}

// slidingExtreme computes min/max over the frames with a monotonic deque;
// all supported frame shapes have non-decreasing lo and hi, so the windows
// advance monotonically. NULL argument values are skipped (SQL semantics).
func slidingExtreme(rows []storage.Tuple, spec Spec, lo, hi []int, out []storage.Value) error {
	better := func(a, b storage.Value) bool { // a strictly better than b
		c := storage.Compare(a, b)
		if spec.Kind == Min {
			return c < 0
		}
		return c > 0
	}
	var deque []int // candidate row indices, best at front
	nextIn := 0
	curLo := 0
	for i := range rows {
		if lo[i] < curLo || hi[i] < nextIn {
			// Non-monotonic frame (cannot happen with supported bounds);
			// fall back to a direct scan for this row.
			out[i] = scanExtreme(rows, spec, lo[i], hi[i], better)
			continue
		}
		for nextIn < hi[i] {
			v := rows[nextIn][spec.Arg]
			if !v.IsNull() {
				for len(deque) > 0 && !better(rows[deque[len(deque)-1]][spec.Arg], v) {
					deque = deque[:len(deque)-1]
				}
				deque = append(deque, nextIn)
			}
			nextIn++
		}
		curLo = lo[i]
		for len(deque) > 0 && deque[0] < curLo {
			deque = deque[1:]
		}
		if len(deque) == 0 {
			out[i] = storage.Null
		} else {
			out[i] = rows[deque[0]][spec.Arg]
		}
	}
	return nil
}

func scanExtreme(rows []storage.Tuple, spec Spec, lo, hi int, better func(a, b storage.Value) bool) storage.Value {
	best := storage.Null
	for j := lo; j < hi && j < len(rows); j++ {
		v := rows[j][spec.Arg]
		if v.IsNull() {
			continue
		}
		if best.IsNull() || better(v, best) {
			best = v
		}
	}
	return best
}
