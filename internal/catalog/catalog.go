// Package catalog registers tables and computes the column statistics the
// cost models and the Hashed Sort consume: distinct-value counts D(A) and
// most-frequent values (MFVs) whose groups exceed a memory budget.
package catalog

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/attrs"
	"repro/internal/core"
	"repro/internal/storage"
)

// ErrUnknownTable classifies Lookup failures; serving layers map it to a
// not-found response. Test with errors.Is.
var ErrUnknownTable = errors.New("catalog: unknown table")

// Catalog maps table names to entries. Names are case-insensitive, like
// the SQL dialect's column identifiers — "WEB_SALES" and "web_sales" are
// the same table, so a query's outcome cannot depend on how a client
// spells the name. All methods are safe for concurrent use; Register
// bumps a generation counter that plan caches key against, so
// re-registering a table invalidates every plan built on the old entry.
type Catalog struct {
	mu         sync.RWMutex
	tables     map[string]*Entry // keyed by folded name
	generation uint64
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{tables: make(map[string]*Entry)}
}

// Register adds (or replaces) a table and advances the catalog generation.
// Names differing only in case replace each other.
func (c *Catalog) Register(name string, t *storage.Table) *Entry {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := &Entry{Name: name, Table: t, distinct: make(map[attrs.Set]int64)}
	c.tables[strings.ToLower(name)] = e
	c.generation++
	return e
}

// TableStats carries externally computed statistics for a stub
// registration: a coordinator that sharded a table away keeps only the
// schema plus these numbers, and plans against them exactly as it would
// against locally scanned rows.
type TableStats struct {
	// Rows is the total row count across all shards.
	Rows int64
	// Bytes is the total serialized size (the B(R) of the cost models).
	Bytes int64
	// Distinct estimates D(set) for the union of the shards; nil disables
	// distinct statistics (cost models fall back to their defaults).
	// Implementations may consult remote nodes — results are cached per
	// set inside the entry, so each set is resolved at most once.
	Distinct func(set attrs.Set) int64
}

// RegisterStub adds (or replaces) a schema-only entry: a table with no
// rows whose statistics come from stats instead of local scans. It is the
// coordinator side of sharded registration — planning needs the schema,
// B(R), |R| and D(·), none of which require the rows to be resident. Like
// Register it advances the catalog generation. MFV statistics are
// unavailable on stubs (the bypass needs the actual rows), so MFVs
// returns nil.
func (c *Catalog) RegisterStub(name string, schema *storage.Schema, stats TableStats) *Entry {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := &Entry{
		Name:     name,
		Table:    storage.NewTable(schema),
		stats:    &stats,
		distinct: make(map[attrs.Set]int64),
	}
	c.tables[strings.ToLower(name)] = e
	c.generation++
	return e
}

// Generation returns the current catalog generation: the number of Register
// calls so far. A cached plan is valid only while the generation it was
// built under is current.
func (c *Catalog) Generation() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.generation
}

// Lookup finds a table entry, case-insensitively. The error wraps
// ErrUnknownTable when the name is not registered.
func (c *Catalog) Lookup(name string) (*Entry, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	e, ok := c.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("%w %q", ErrUnknownTable, name)
	}
	return e, nil
}

// Names lists registered tables (as-registered spelling) in sorted order.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.tables))
	for _, e := range c.tables {
		names = append(names, e.Name)
	}
	sort.Strings(names)
	return names
}

// Entry is one registered table plus lazily computed statistics. Stub
// entries (RegisterStub) carry a rowless table and answer the statistics
// accessors from injected TableStats instead of scanning.
type Entry struct {
	Name  string
	Table *storage.Table

	stats *TableStats // non-nil for stub entries

	mu       sync.Mutex
	distinct map[attrs.Set]int64
	mfvs     map[mfvKey]map[string]bool
	byteSize int64
}

// mfvKey caches MFVs per (attribute set, memory budget) pair.
type mfvKey struct {
	set attrs.Set
	mem int
}

// Stub reports whether the entry is schema-only (registered through
// RegisterStub): its Table holds no rows and its statistics are injected.
func (e *Entry) Stub() bool { return e.stats != nil }

// Rows returns the row count.
func (e *Entry) Rows() int64 {
	if e.stats != nil {
		return e.stats.Rows
	}
	return int64(e.Table.Len())
}

// ByteSize returns (and caches) the serialized size.
func (e *Entry) ByteSize() int64 {
	if e.stats != nil {
		return e.stats.Bytes
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.byteSize == 0 {
		e.byteSize = int64(e.Table.ByteSize())
	}
	return e.byteSize
}

// Blocks returns B(R) for a block size.
func (e *Entry) Blocks(blockSize int) int64 {
	if blockSize <= 0 {
		blockSize = 8192
	}
	return (e.ByteSize() + int64(blockSize) - 1) / int64(blockSize)
}

// Distinct returns the distinct count of the attribute set, cached: exact
// (a local scan) for regular entries, the injected estimator for stubs
// (0 when the stub carries no estimator). The lock is released during the
// computation — a scan or a potentially remote estimate must not block
// the other statistics accessors.
func (e *Entry) Distinct(set attrs.Set) int64 {
	e.mu.Lock()
	if d, ok := e.distinct[set]; ok {
		e.mu.Unlock()
		return d
	}
	e.mu.Unlock()
	var d int64
	if e.stats != nil {
		if e.stats.Distinct != nil {
			d = e.stats.Distinct(set)
		}
	} else {
		d = int64(e.Table.DistinctCount(set))
	}
	e.mu.Lock()
	e.distinct[set] = d
	e.mu.Unlock()
	return d
}

// MFVs returns the encoded values of the attribute set whose groups exceed
// memBytes of tuple data — the candidates for the Hashed Sort bypass
// optimization (Section 3.2). The encoding matches reorder.EncodeHashKey.
// The result is cached per (set, budget) — parallel workers share one
// full-table scan — and must be treated as read-only by callers.
func (e *Entry) MFVs(set attrs.Set, memBytes int) map[string]bool {
	if memBytes <= 0 {
		return nil
	}
	key := mfvKey{set: set, mem: memBytes}
	// The lock is held across the scan so simultaneous first callers (the
	// parallel workers) really do share one computation; the scan touches
	// only the immutable table, no other Entry state.
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.mfvs == nil {
		e.mfvs = make(map[mfvKey]map[string]bool)
	}
	if m, ok := e.mfvs[key]; ok {
		return m
	}
	sizes := make(map[string]int)
	ids := set.IDs()
	var buf []byte
	for _, t := range e.Table.Rows {
		buf = buf[:0]
		for _, id := range ids {
			buf = storage.AppendTuple(buf, storage.Tuple{t[id]})
		}
		sizes[string(buf)] += t.Size()
	}
	out := make(map[string]bool)
	for v, sz := range sizes {
		if sz > memBytes {
			out[v] = true
		}
	}
	if len(out) == 0 {
		out = nil
	}
	e.mfvs[key] = out
	return out
}

// CostParams builds the cost-model inputs for this table.
func (e *Entry) CostParams(memBytes, blockSize int) core.CostParams {
	if blockSize <= 0 {
		blockSize = 8192
	}
	return core.CostParams{
		TableBlocks: e.Blocks(blockSize),
		TableTuples: e.Rows(),
		MemBlocks:   int64(memBytes) / int64(blockSize),
		BlockSize:   blockSize,
		Distinct:    e.Distinct,
	}
}
