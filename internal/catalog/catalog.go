// Package catalog registers tables and computes the column statistics the
// cost models and the Hashed Sort consume: distinct-value counts D(A) and
// most-frequent values (MFVs) whose groups exceed a memory budget.
//
// Since PR 9 the catalog tracks two generations with different blast radii.
// The *schema generation* (Catalog.Generation) advances only on Register /
// RegisterStub — a table was created or replaced wholesale, so prepared
// plans built against the old entry are invalid. The per-entry *data
// generation* (Entry.DataGen) advances on every Append — the schema, and
// therefore every prepared plan, is still valid, but any cached *result*
// (materialized query output, distinct counts, MFV sets) may be stale.
// Plan caches key on the schema generation and survive appends; result
// caches must key on the data generation.
package catalog

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/attrs"
	"repro/internal/core"
	"repro/internal/storage"
)

// ErrUnknownTable classifies Lookup failures; serving layers map it to a
// not-found response. Test with errors.Is.
var ErrUnknownTable = errors.New("catalog: unknown table")

// Catalog maps table names to entries. Names are case-insensitive, like
// the SQL dialect's column identifiers — "WEB_SALES" and "web_sales" are
// the same table, so a query's outcome cannot depend on how a client
// spells the name. All methods are safe for concurrent use; Register
// bumps the schema generation counter that plan caches key against, so
// re-registering a table invalidates every plan built on the old entry.
// Append does NOT bump it — appends preserve the schema.
type Catalog struct {
	mu         sync.RWMutex
	tables     map[string]*Entry // keyed by folded name
	generation uint64
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{tables: make(map[string]*Entry)}
}

// Register adds (or replaces) a table and advances the schema generation.
// Names differing only in case replace each other.
func (c *Catalog) Register(name string, t *storage.Table) *Entry {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := &Entry{Name: name, distinct: make(map[attrs.Set]int64)}
	e.data.Store(&tableData{t: t, gen: 1})
	c.tables[strings.ToLower(name)] = e
	c.generation++
	return e
}

// TableStats carries externally computed statistics for a stub
// registration: a coordinator that sharded a table away keeps only the
// schema plus these numbers, and plans against them exactly as it would
// against locally scanned rows.
type TableStats struct {
	// Rows is the total row count across all shards.
	Rows int64
	// Bytes is the total serialized size (the B(R) of the cost models).
	Bytes int64
	// Distinct estimates D(set) for the union of the shards; nil disables
	// distinct statistics (cost models fall back to their defaults).
	// Implementations may consult remote nodes — results are cached per
	// set inside the entry, so each set is resolved at most once.
	Distinct func(set attrs.Set) int64
}

// RegisterStub adds (or replaces) a schema-only entry: a table with no
// rows whose statistics come from stats instead of local scans. It is the
// coordinator side of sharded registration — planning needs the schema,
// B(R), |R| and D(·), none of which require the rows to be resident. Like
// Register it advances the schema generation. MFV statistics are
// unavailable on stubs (the bypass needs the actual rows), so MFVs
// returns nil.
func (c *Catalog) RegisterStub(name string, schema *storage.Schema, stats TableStats) *Entry {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := &Entry{
		Name:     name,
		stats:    &stats,
		distinct: make(map[attrs.Set]int64),
	}
	e.data.Store(&tableData{t: storage.NewTable(schema), gen: 1})
	c.tables[strings.ToLower(name)] = e
	c.generation++
	return e
}

// Generation returns the current schema generation: the number of Register
// and RegisterStub calls so far. A cached plan is valid only while the
// generation it was built under is current. Appends do not advance it.
func (c *Catalog) Generation() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.generation
}

// Lookup finds a table entry, case-insensitively. The error wraps
// ErrUnknownTable when the name is not registered.
func (c *Catalog) Lookup(name string) (*Entry, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	e, ok := c.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("%w %q", ErrUnknownTable, name)
	}
	return e, nil
}

// Append validates rows against the named table's schema and appends them,
// advancing the table's data generation (but not the schema generation).
// It returns the global row index of the first appended row and the new
// data generation. atLeast lower-bounds the resulting generation — a
// cluster coordinator assigns one watermark per logical append and ships
// it to every owning node so all replicas converge on the same generation;
// pass 0 for plain local appends.
//
// Integer values are coerced to floats against FLOAT columns (the SQL
// layer produces untyped integer literals); any other kind mismatch is an
// error and the table is unchanged. Appending to a stub entry updates its
// injected statistics (row count, byte size) without storing rows — the
// coordinator's planner keeps seeing cluster-accurate cardinalities.
func (c *Catalog) Append(name string, rows []storage.Tuple, atLeast uint64) (startRid int64, gen uint64, err error) {
	e, err := c.Lookup(name)
	if err != nil {
		return 0, 0, err
	}
	return e.Append(rows, atLeast)
}

// Names lists registered tables (as-registered spelling) in sorted order.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.tables))
	for _, e := range c.tables {
		names = append(names, e.Name)
	}
	sort.Strings(names)
	return names
}

// tableData is an entry's immutable data snapshot: the row storage plus
// the data generation it corresponds to. Appends swap in a new snapshot
// (copy-on-write over the row slice); readers that need a consistent
// (rows, generation) pair take one atomic load via Entry.Snapshot.
type tableData struct {
	t   *storage.Table
	gen uint64
}

// Entry is one registered table plus lazily computed statistics. Stub
// entries (RegisterStub) carry a rowless table and answer the statistics
// accessors from injected TableStats instead of scanning. The table
// pointer is accessed through Table/Snapshot — appends replace it
// atomically, and any loaded *storage.Table is immutable forever (its row
// slice is never appended to in place), so readers never need a lock.
type Entry struct {
	Name string

	data atomic.Pointer[tableData]

	stats *TableStats // non-nil for stub entries

	mu       sync.Mutex
	distinct map[attrs.Set]int64
	mfvs     map[mfvKey]map[string]bool
	byteSize int64
}

// mfvKey caches MFVs per (attribute set, memory budget) pair.
type mfvKey struct {
	set attrs.Set
	mem int
}

// Table returns the current immutable data snapshot. Callers holding the
// returned pointer see a frozen prefix of the table: concurrent appends
// produce new snapshots and never mutate this one.
func (e *Entry) Table() *storage.Table {
	return e.data.Load().t
}

// DataGen returns the entry's data generation: 1 at registration,
// advanced by every Append. Result caches key on it.
func (e *Entry) DataGen() uint64 {
	return e.data.Load().gen
}

// Snapshot returns the current table and its data generation as one
// consistent pair.
func (e *Entry) Snapshot() (*storage.Table, uint64) {
	d := e.data.Load()
	return d.t, d.gen
}

// Append validates and appends rows, advancing the data generation to
// max(current+1, atLeast). See Catalog.Append for semantics.
func (e *Entry) Append(rows []storage.Tuple, atLeast uint64) (startRid int64, gen uint64, err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	old := e.data.Load()
	schema := old.t.Schema
	coerced, addedBytes, err := coerceRows(schema, rows)
	if err != nil {
		return 0, 0, err
	}
	gen = old.gen + 1
	if atLeast > gen {
		gen = atLeast
	}
	if e.stats != nil {
		// Stub: the rows live on the shard nodes; keep the injected
		// statistics cluster-accurate without storing anything locally.
		startRid = e.stats.Rows
		e.stats.Rows += int64(len(rows))
		e.stats.Bytes += int64(addedBytes)
		e.data.Store(&tableData{t: old.t, gen: gen})
	} else {
		n := len(old.t.Rows)
		startRid = int64(n)
		// Full-capacity slice: a concurrent reader of the old snapshot
		// must never observe our rows through shared backing storage.
		newRows := append(old.t.Rows[:n:n], coerced...)
		e.data.Store(&tableData{
			t:   &storage.Table{Schema: schema, Rows: newRows},
			gen: gen,
		})
	}
	// Data-dependent statistics are stale now.
	e.distinct = make(map[attrs.Set]int64)
	e.mfvs = nil
	if e.byteSize != 0 {
		e.byteSize += int64(addedBytes)
	}
	return startRid, gen, nil
}

// coerceRows validates rows against schema, coercing integer values to
// floats for FLOAT columns. It returns the validated rows (copied only
// when coercion changed a value) and their total encoded size.
func coerceRows(schema *storage.Schema, rows []storage.Tuple) ([]storage.Tuple, int, error) {
	out := make([]storage.Tuple, len(rows))
	bytes := 0
	for i, row := range rows {
		if len(row) != schema.Len() {
			return nil, 0, fmt.Errorf("catalog: append row %d: arity %d != schema arity %d", i, len(row), schema.Len())
		}
		r, copied := row, false
		for j, v := range row {
			want := schema.Columns[j].Type
			switch v.Kind() {
			case storage.KindNull:
				// NULL fits every column.
			case storage.KindInt:
				if want == storage.TypeFloat {
					if !copied {
						r, copied = row.Clone(), true
					}
					r[j] = storage.Float(float64(v.Int64()))
				} else if want != storage.TypeInt {
					return nil, 0, typeErr(schema, i, j, v)
				}
			case storage.KindFloat:
				if want != storage.TypeFloat {
					return nil, 0, typeErr(schema, i, j, v)
				}
			case storage.KindString:
				if want != storage.TypeString {
					return nil, 0, typeErr(schema, i, j, v)
				}
			}
		}
		out[i] = r
		bytes += storage.EncodedSize(r)
	}
	return out, bytes, nil
}

func typeErr(schema *storage.Schema, row, col int, v storage.Value) error {
	c := schema.Columns[col]
	return fmt.Errorf("catalog: append row %d: column %q is %s, got %s", row, c.Name, c.Type, v.Kind())
}

// Stub reports whether the entry is schema-only (registered through
// RegisterStub): its Table holds no rows and its statistics are injected.
func (e *Entry) Stub() bool { return e.stats != nil }

// Rows returns the row count.
func (e *Entry) Rows() int64 {
	if e.stats != nil {
		e.mu.Lock()
		defer e.mu.Unlock()
		return e.stats.Rows
	}
	return int64(e.Table().Len())
}

// ByteSize returns (and caches) the serialized size.
func (e *Entry) ByteSize() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.stats != nil {
		return e.stats.Bytes
	}
	if e.byteSize == 0 {
		e.byteSize = int64(e.Table().ByteSize())
	}
	return e.byteSize
}

// Blocks returns B(R) for a block size.
func (e *Entry) Blocks(blockSize int) int64 {
	if blockSize <= 0 {
		blockSize = 8192
	}
	return (e.ByteSize() + int64(blockSize) - 1) / int64(blockSize)
}

// Distinct returns the distinct count of the attribute set, cached: exact
// (a local scan) for regular entries, the injected estimator for stubs
// (0 when the stub carries no estimator). The lock is released during the
// computation — a scan or a potentially remote estimate must not block
// the other statistics accessors. A count computed over a snapshot that
// an append has since superseded is returned but not cached.
func (e *Entry) Distinct(set attrs.Set) int64 {
	t, gen := e.Snapshot()
	e.mu.Lock()
	if d, ok := e.distinct[set]; ok {
		e.mu.Unlock()
		return d
	}
	e.mu.Unlock()
	var d int64
	if e.stats != nil {
		if e.stats.Distinct != nil {
			d = e.stats.Distinct(set)
		}
	} else {
		d = int64(t.DistinctCount(set))
	}
	e.mu.Lock()
	if e.DataGen() == gen {
		e.distinct[set] = d
	}
	e.mu.Unlock()
	return d
}

// MFVs returns the encoded values of the attribute set whose groups exceed
// memBytes of tuple data — the candidates for the Hashed Sort bypass
// optimization (Section 3.2). The encoding matches reorder.EncodeHashKey.
// The result is cached per (set, budget) — parallel workers share one
// full-table scan — and must be treated as read-only by callers.
func (e *Entry) MFVs(set attrs.Set, memBytes int) map[string]bool {
	if memBytes <= 0 {
		return nil
	}
	key := mfvKey{set: set, mem: memBytes}
	// The lock is held across the scan so simultaneous first callers (the
	// parallel workers) really do share one computation; the scan touches
	// only an immutable snapshot, no other Entry state.
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.mfvs == nil {
		e.mfvs = make(map[mfvKey]map[string]bool)
	}
	if m, ok := e.mfvs[key]; ok {
		return m
	}
	sizes := make(map[string]int)
	ids := set.IDs()
	var buf []byte
	for _, t := range e.Table().Rows {
		buf = buf[:0]
		for _, id := range ids {
			buf = storage.AppendTuple(buf, storage.Tuple{t[id]})
		}
		sizes[string(buf)] += t.Size()
	}
	out := make(map[string]bool)
	for v, sz := range sizes {
		if sz > memBytes {
			out[v] = true
		}
	}
	if len(out) == 0 {
		out = nil
	}
	e.mfvs[key] = out
	return out
}

// CostParams builds the cost-model inputs for this table.
func (e *Entry) CostParams(memBytes, blockSize int) core.CostParams {
	if blockSize <= 0 {
		blockSize = 8192
	}
	return core.CostParams{
		TableBlocks: e.Blocks(blockSize),
		TableTuples: e.Rows(),
		MemBlocks:   int64(memBytes) / int64(blockSize),
		BlockSize:   blockSize,
		Distinct:    e.Distinct,
	}
}
