package catalog

import (
	"testing"

	"repro/internal/attrs"
	"repro/internal/storage"
)

func table(rows ...[]int64) *storage.Table {
	t := storage.NewTable(storage.NewSchema(
		storage.Column{Name: "a", Type: storage.TypeInt},
		storage.Column{Name: "b", Type: storage.TypeInt},
	))
	for _, r := range rows {
		t.MustAppend(storage.Tuple{storage.Int(r[0]), storage.Int(r[1])})
	}
	return t
}

func TestRegisterLookup(t *testing.T) {
	c := New()
	c.Register("t1", table([]int64{1, 2}))
	c.Register("t2", table([]int64{1, 2}, []int64{3, 4}))
	e, err := c.Lookup("t1")
	if err != nil || e.Rows() != 1 {
		t.Fatalf("lookup t1: %v %v", e, err)
	}
	if _, err := c.Lookup("nope"); err == nil {
		t.Errorf("missing table should error")
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "t1" || names[1] != "t2" {
		t.Errorf("Names = %v", names)
	}
}

func TestDistinctCached(t *testing.T) {
	c := New()
	e := c.Register("t", table([]int64{1, 1}, []int64{1, 2}, []int64{2, 2}))
	if d := e.Distinct(attrs.MakeSet(0)); d != 2 {
		t.Errorf("D(a) = %d", d)
	}
	if d := e.Distinct(attrs.MakeSet(0, 1)); d != 3 {
		t.Errorf("D(a,b) = %d", d)
	}
	// Second call hits the cache (same answer).
	if d := e.Distinct(attrs.MakeSet(0)); d != 2 {
		t.Errorf("cached D(a) = %d", d)
	}
	if d := e.Distinct(attrs.MakeSet()); d != 1 {
		t.Errorf("D(∅) = %d, want 1", d)
	}
}

func TestMFVs(t *testing.T) {
	c := New()
	var rows [][]int64
	for i := 0; i < 100; i++ {
		rows = append(rows, []int64{7, int64(i)}) // value 7 dominates column a
	}
	rows = append(rows, []int64{1, 0}, []int64{2, 0})
	e := c.Register("t", table(rows...))
	tupleSize := e.Table.Rows[0].Size()
	mfvs := e.MFVs(attrs.MakeSet(0), 10*tupleSize)
	if len(mfvs) != 1 {
		t.Fatalf("MFVs = %d entries, want 1", len(mfvs))
	}
	// The encoded key of value 7 must be present.
	key := string(storage.AppendTuple(nil, storage.Tuple{storage.Int(7)}))
	if !mfvs[key] {
		t.Errorf("dominant value missing from MFVs")
	}
	if e.MFVs(attrs.MakeSet(0), 0) != nil {
		t.Errorf("MFVs with no budget should be nil")
	}
	if e.MFVs(attrs.MakeSet(1), 1000*tupleSize) != nil {
		t.Errorf("uniform column should have no MFVs")
	}
}

func TestCostParams(t *testing.T) {
	c := New()
	e := c.Register("t", table([]int64{1, 2}, []int64{3, 4}))
	p := e.CostParams(64<<10, 4096)
	if p.TableTuples != 2 || p.MemBlocks != 16 || p.BlockSize != 4096 {
		t.Errorf("params = %+v", p)
	}
	if p.Distinct == nil || p.Distinct(attrs.MakeSet(0)) != 2 {
		t.Errorf("distinct estimator broken")
	}
	if e.Blocks(4096) < 1 {
		t.Errorf("blocks = %d", e.Blocks(4096))
	}
}
