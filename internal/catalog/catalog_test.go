package catalog

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"repro/internal/attrs"
	"repro/internal/storage"
)

func table(rows ...[]int64) *storage.Table {
	t := storage.NewTable(storage.NewSchema(
		storage.Column{Name: "a", Type: storage.TypeInt},
		storage.Column{Name: "b", Type: storage.TypeInt},
	))
	for _, r := range rows {
		t.MustAppend(storage.Tuple{storage.Int(r[0]), storage.Int(r[1])})
	}
	return t
}

func TestRegisterLookup(t *testing.T) {
	c := New()
	c.Register("t1", table([]int64{1, 2}))
	c.Register("t2", table([]int64{1, 2}, []int64{3, 4}))
	e, err := c.Lookup("t1")
	if err != nil || e.Rows() != 1 {
		t.Fatalf("lookup t1: %v %v", e, err)
	}
	if _, err := c.Lookup("nope"); err == nil {
		t.Errorf("missing table should error")
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "t1" || names[1] != "t2" {
		t.Errorf("Names = %v", names)
	}
}

func TestDistinctCached(t *testing.T) {
	c := New()
	e := c.Register("t", table([]int64{1, 1}, []int64{1, 2}, []int64{2, 2}))
	if d := e.Distinct(attrs.MakeSet(0)); d != 2 {
		t.Errorf("D(a) = %d", d)
	}
	if d := e.Distinct(attrs.MakeSet(0, 1)); d != 3 {
		t.Errorf("D(a,b) = %d", d)
	}
	// Second call hits the cache (same answer).
	if d := e.Distinct(attrs.MakeSet(0)); d != 2 {
		t.Errorf("cached D(a) = %d", d)
	}
	if d := e.Distinct(attrs.MakeSet()); d != 1 {
		t.Errorf("D(∅) = %d, want 1", d)
	}
}

func TestMFVs(t *testing.T) {
	c := New()
	var rows [][]int64
	for i := 0; i < 100; i++ {
		rows = append(rows, []int64{7, int64(i)}) // value 7 dominates column a
	}
	rows = append(rows, []int64{1, 0}, []int64{2, 0})
	e := c.Register("t", table(rows...))
	tupleSize := e.Table().Rows[0].Size()
	mfvs := e.MFVs(attrs.MakeSet(0), 10*tupleSize)
	if len(mfvs) != 1 {
		t.Fatalf("MFVs = %d entries, want 1", len(mfvs))
	}
	// The encoded key of value 7 must be present.
	key := string(storage.AppendTuple(nil, storage.Tuple{storage.Int(7)}))
	if !mfvs[key] {
		t.Errorf("dominant value missing from MFVs")
	}
	if e.MFVs(attrs.MakeSet(0), 0) != nil {
		t.Errorf("MFVs with no budget should be nil")
	}
	if e.MFVs(attrs.MakeSet(1), 1000*tupleSize) != nil {
		t.Errorf("uniform column should have no MFVs")
	}
}

func TestCostParams(t *testing.T) {
	c := New()
	e := c.Register("t", table([]int64{1, 2}, []int64{3, 4}))
	p := e.CostParams(64<<10, 4096)
	if p.TableTuples != 2 || p.MemBlocks != 16 || p.BlockSize != 4096 {
		t.Errorf("params = %+v", p)
	}
	if p.Distinct == nil || p.Distinct(attrs.MakeSet(0)) != 2 {
		t.Errorf("distinct estimator broken")
	}
	if e.Blocks(4096) < 1 {
		t.Errorf("blocks = %d", e.Blocks(4096))
	}
}

// TestGeneration: Register (including replacement) advances the catalog
// generation; lookups do not.
func TestGeneration(t *testing.T) {
	c := New()
	if g := c.Generation(); g != 0 {
		t.Fatalf("fresh catalog generation %d, want 0", g)
	}
	c.Register("t", table([]int64{1, 2}))
	c.Register("u", table([]int64{1, 2}))
	if g := c.Generation(); g != 2 {
		t.Fatalf("generation %d after two registrations, want 2", g)
	}
	if _, err := c.Lookup("t"); err != nil {
		t.Fatal(err)
	}
	c.Register("t", table([]int64{9, 9})) // replacement counts too
	if g := c.Generation(); g != 3 {
		t.Fatalf("generation %d after replacement, want 3", g)
	}
}

// TestUnknownTableError: Lookup failures carry the typed class the serving
// layer's 404 mapping depends on.
func TestUnknownTableError(t *testing.T) {
	c := New()
	_, err := c.Lookup("missing")
	if !errors.Is(err, ErrUnknownTable) {
		t.Fatalf("err = %v, want ErrUnknownTable", err)
	}
	if !strings.Contains(err.Error(), `"missing"`) {
		t.Fatalf("err = %v, want the table name in the message", err)
	}
}

// TestMFVContention hammers the per-(set, budget) MFV cache from many
// goroutines over distinct and overlapping keys; under -race this is the
// regression test for the PR-1 cache's concurrency. All callers of one key
// must observe the identical (shared, read-only) map.
func TestMFVContention(t *testing.T) {
	c := New()
	var rows [][]int64
	for i := 0; i < 400; i++ {
		rows = append(rows, []int64{int64(i % 3), int64(i)})
	}
	e := c.Register("t", table(rows...))
	tupleSize := e.Table().Rows[0].Size()
	budgets := []int{10 * tupleSize, 50 * tupleSize, 200 * tupleSize}
	sets := []attrs.Set{attrs.MakeSet(0), attrs.MakeSet(1), attrs.MakeSet(0, 1)}

	type obs struct {
		set    attrs.Set
		budget int
		mfvs   map[string]bool
	}
	results := make(chan obs, 16*len(sets)*len(budgets))
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, set := range sets {
				for _, budget := range budgets {
					m := e.MFVs(set, budget)
					for k := range m { // concurrent read of the shared map
						_ = m[k]
					}
					results <- obs{set: set, budget: budget, mfvs: m}
					e.Distinct(set) // contend on the sibling cache too
				}
			}
		}()
	}
	wg.Wait()
	close(results)
	first := map[[2]int64]map[string]bool{}
	for o := range results {
		key := [2]int64{int64(o.set), int64(o.budget)}
		if prev, ok := first[key]; ok {
			if len(prev) != len(o.mfvs) {
				t.Fatalf("set %v budget %d: observers saw different MFV maps (%d vs %d entries)",
					o.set, o.budget, len(prev), len(o.mfvs))
			}
			continue
		}
		first[key] = o.mfvs
	}
}

// TestLookupCaseInsensitive: table names fold like the dialect's column
// identifiers, so a serving layer's case-folding cache key and the catalog
// agree on which queries resolve.
func TestLookupCaseInsensitive(t *testing.T) {
	c := New()
	c.Register("Web_Sales", table([]int64{1, 2}))
	for _, name := range []string{"web_sales", "WEB_SALES", "Web_Sales"} {
		e, err := c.Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", name, err)
		}
		if e.Name != "Web_Sales" {
			t.Fatalf("Lookup(%q).Name = %q", name, e.Name)
		}
	}
	if names := c.Names(); len(names) != 1 || names[0] != "Web_Sales" {
		t.Fatalf("Names() = %v", names)
	}
	// Re-registering under a different case replaces, not duplicates.
	c.Register("WEB_SALES", table([]int64{3, 4}))
	if names := c.Names(); len(names) != 1 {
		t.Fatalf("case variant duplicated the table: %v", names)
	}
}

// TestRegisterStub: schema-only entries answer the statistics accessors
// from injected TableStats, advance the generation like Register, cache
// the distinct estimator per set, and never produce MFVs.
func TestRegisterStub(t *testing.T) {
	c := New()
	gen0 := c.Generation()
	calls := 0
	schema := storage.NewSchema(
		storage.Column{Name: "a", Type: storage.TypeInt},
		storage.Column{Name: "b", Type: storage.TypeInt},
	)
	c.RegisterStub("remote", schema, TableStats{
		Rows:  1000,
		Bytes: 64 << 10,
		Distinct: func(set attrs.Set) int64 {
			calls++
			return 77
		},
	})
	if c.Generation() != gen0+1 {
		t.Fatal("stub registration must advance the generation")
	}
	e, err := c.Lookup("REMOTE")
	if err != nil {
		t.Fatal(err)
	}
	if !e.Stub() || e.Rows() != 1000 || e.ByteSize() != 64<<10 || e.Table().Len() != 0 {
		t.Fatalf("stub entry: rows=%d bytes=%d len=%d", e.Rows(), e.ByteSize(), e.Table().Len())
	}
	set := attrs.MakeSet(0)
	if d := e.Distinct(set); d != 77 {
		t.Fatalf("Distinct = %d, want 77", d)
	}
	if d := e.Distinct(set); d != 77 || calls != 1 {
		t.Fatalf("Distinct must cache per set: d=%d calls=%d", d, calls)
	}
	if mfvs := e.MFVs(set, 1); mfvs != nil {
		t.Fatalf("stub MFVs must be nil, got %v", mfvs)
	}
	cp := e.CostParams(8192*4, 8192)
	if cp.TableBlocks != 8 || cp.TableTuples != 1000 {
		t.Fatalf("stub cost params: %+v", cp)
	}
	// Stats without an estimator degrade to zero, not a panic.
	c.RegisterStub("bare", schema, TableStats{Rows: 5, Bytes: 100})
	be, _ := c.Lookup("bare")
	if d := be.Distinct(set); d != 0 {
		t.Fatalf("estimator-less stub Distinct = %d, want 0", d)
	}
}

func TestAppendDataGeneration(t *testing.T) {
	c := New()
	e := c.Register("t", table([]int64{1, 2}))
	schemaGen := c.Generation()
	if g := e.DataGen(); g != 1 {
		t.Fatalf("initial data gen = %d, want 1", g)
	}
	old := e.Table()
	start, gen, err := c.Append("T", []storage.Tuple{
		{storage.Int(3), storage.Int(4)},
		{storage.Int(5), storage.Int(6)},
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if start != 1 || gen != 2 {
		t.Errorf("Append = (%d, %d), want (1, 2)", start, gen)
	}
	if c.Generation() != schemaGen {
		t.Errorf("append bumped the schema generation %d -> %d", schemaGen, c.Generation())
	}
	if e.Rows() != 3 || e.DataGen() != 2 {
		t.Errorf("rows=%d gen=%d after append", e.Rows(), e.DataGen())
	}
	// Old snapshot is frozen.
	if len(old.Rows) != 1 {
		t.Errorf("old snapshot grew to %d rows", len(old.Rows))
	}
	// atLeast lower-bounds the generation (cluster watermarks).
	_, gen, err = e.Append([]storage.Tuple{{storage.Int(7), storage.Int(8)}}, 9)
	if err != nil || gen != 9 {
		t.Fatalf("Append atLeast: gen=%d err=%v, want 9", gen, err)
	}
	_, gen, _ = e.Append([]storage.Tuple{{storage.Int(9), storage.Int(9)}}, 0)
	if gen != 10 {
		t.Errorf("gen after watermark jump = %d, want 10", gen)
	}
}

func TestAppendValidation(t *testing.T) {
	c := New()
	ft := storage.NewTable(storage.NewSchema(
		storage.Column{Name: "i", Type: storage.TypeInt},
		storage.Column{Name: "f", Type: storage.TypeFloat},
		storage.Column{Name: "s", Type: storage.TypeString},
	))
	e := c.Register("ft", ft)
	// Int coerces into FLOAT; NULL fits everywhere.
	_, _, err := e.Append([]storage.Tuple{
		{storage.Int(1), storage.Int(2), storage.StringVal("x")},
		{storage.Null, storage.Null, storage.Null},
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := e.Table().Rows[0][1]
	if got.Kind() != storage.KindFloat || got.Float64() != 2 {
		t.Errorf("coerced value = %v (%s)", got, got.Kind())
	}
	cases := []storage.Tuple{
		{storage.Int(1), storage.Float(1)},                          // arity
		{storage.Float(1), storage.Float(1), storage.StringVal("")}, // float into INT
		{storage.Int(1), storage.StringVal("x"), storage.Null},      // string into FLOAT
		{storage.Int(1), storage.Float(1), storage.Int(3)},          // int into STRING
	}
	for i, row := range cases {
		if _, _, err := e.Append([]storage.Tuple{row}, 0); err == nil {
			t.Errorf("case %d: bad row accepted", i)
		}
	}
	if e.Rows() != 2 {
		t.Errorf("failed appends changed the table: %d rows", e.Rows())
	}
	if _, _, err := c.Append("nope", nil, 0); !errors.Is(err, ErrUnknownTable) {
		t.Errorf("unknown table append: %v", err)
	}
}

func TestAppendStubStats(t *testing.T) {
	c := New()
	schema := storage.NewSchema(storage.Column{Name: "a", Type: storage.TypeInt})
	e := c.RegisterStub("s", schema, TableStats{Rows: 10, Bytes: 100})
	start, gen, err := e.Append([]storage.Tuple{{storage.Int(1)}, {storage.Int(2)}}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if start != 10 || gen != 5 {
		t.Errorf("stub Append = (%d, %d), want (10, 5)", start, gen)
	}
	if e.Rows() != 12 {
		t.Errorf("stub rows = %d, want 12", e.Rows())
	}
	if e.ByteSize() <= 100 {
		t.Errorf("stub bytes = %d, want > 100", e.ByteSize())
	}
	if e.Table().Len() != 0 {
		t.Errorf("stub stored %d rows locally", e.Table().Len())
	}
}

func TestAppendInvalidatesDistinctCache(t *testing.T) {
	c := New()
	e := c.Register("t", table([]int64{1, 1}))
	if d := e.Distinct(attrs.MakeSet(0)); d != 1 {
		t.Fatalf("D(a) = %d", d)
	}
	if _, _, err := e.Append([]storage.Tuple{{storage.Int(2), storage.Int(2)}}, 0); err != nil {
		t.Fatal(err)
	}
	if d := e.Distinct(attrs.MakeSet(0)); d != 2 {
		t.Errorf("D(a) after append = %d, want 2", d)
	}
}
