// Package exec runs window-function chains (core.Plan) over materialized
// tables: it applies each step's reordering operator, invokes the window
// function, and collects per-step metrics — block I/O, key comparisons and
// wall time — the measurements behind every figure in the paper's Section 6.
package exec

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"repro/internal/attrs"
	"repro/internal/core"
	"repro/internal/pagestore"
	"repro/internal/reorder"
	"repro/internal/storage"
	"repro/internal/stream"
	"repro/internal/trace"
	"repro/internal/window"
	"repro/internal/xsort"
)

// Config carries execution resources.
type Config struct {
	// MemoryBytes is the unit reorder memory M: every reordering operation
	// in the chain gets this budget (Section 6.1).
	MemoryBytes int
	// BlockSize is the page size (default pagestore.DefaultBlockSize).
	BlockSize int
	// FileBacked spills to real temp files in TempDir instead of memory.
	FileBacked bool
	TempDir    string
	// RunFormation selects the external-sort run formation policy.
	RunFormation xsort.RunFormation
	// HSBuckets overrides the Hashed Sort bucket-count policy when > 0.
	HSBuckets int
	// SpillPolicy selects the HS bucket flush victim.
	SpillPolicy reorder.SpillPolicy
	// Distinct estimates D(set) from catalog statistics; used for HS bucket
	// sizing. nil falls back to policy defaults.
	Distinct func(set attrs.Set) int64
	// MFV returns the encoded most-frequent values of a hash key whose
	// groups exceed the sort budget (Section 3.2's bypass optimization);
	// nil disables the bypass, matching the paper's prototype.
	MFV func(key attrs.Set) map[string]bool
	// Parallelism is the worker degree of the parallel chain executor
	// (ParallelRun, Section 3.5 generalized to whole chains): values > 1
	// hash-partition the input into that many data partitions, 1 or any
	// negative value force the sequential pipeline, and 0 resolves to
	// runtime.GOMAXPROCS(0). The parallel path is sequential-compatible —
	// it computes exactly the sequential derived values over exactly the
	// sequential row multiset — but emits rows in partition-index order
	// rather than the sequential pipeline's final order. The sequential Run
	// ignores this field; Engine facades and the SQL runner route through
	// ParallelRun when the configured degree exceeds 1.
	Parallelism int
}

// Degree resolves Parallelism to a concrete worker count (≥ 1).
func (c Config) Degree() int {
	switch {
	case c.Parallelism > 0:
		return c.Parallelism
	case c.Parallelism == 0:
		return runtime.GOMAXPROCS(0)
	default:
		return 1
	}
}

func (c Config) blockSize() int {
	if c.BlockSize > 0 {
		return c.BlockSize
	}
	return pagestore.DefaultBlockSize
}

// StepMetrics measures one chain step.
type StepMetrics struct {
	WFID          int
	Reorder       core.ReorderKind
	BlocksRead    int64
	BlocksWritten int64
	Comparisons   int64
	// Rows is the step's output cardinality (window evaluation is 1:1, so
	// this is also the input cardinality — the "actual rows" side of
	// EXPLAIN ANALYZE).
	Rows     int64
	Duration time.Duration
	// Detail carries operator-specific statistics (runs, buckets, units).
	Detail string
}

// Metrics aggregates a chain execution.
type Metrics struct {
	Steps         []StepMetrics
	BlocksRead    int64
	BlocksWritten int64
	Comparisons   int64
	Elapsed       time.Duration
	// Concatenated reports that the output rows are a partition-index
	// concatenation produced by the parallel executor rather than the
	// sequential pipeline's output order: orderings implied by the plan's
	// final stream property then hold only within each partition. False
	// whenever the chain's final segment ran sequentially (a sequential
	// segment after a parallel one always begins with an order-rebuilding
	// reorder, which restores the plan's tracked property).
	Concatenated bool
	// PartitionedSteps counts the chain steps that executed hash-
	// partitioned across workers; 0 means the whole chain ran on the
	// sequential pipeline (always the case for Run).
	PartitionedSteps int
}

// TotalBlocks returns read+written blocks, the paper's I/O cost unit.
func (m *Metrics) TotalBlocks() int64 { return m.BlocksRead + m.BlocksWritten }

// Run executes plan over table. specs[i] must correspond to the window
// function with ID i in the plan. It returns a new table extended with one
// derived column per window function, in plan evaluation order.
//
// Each step drains its (lazily reordering) stream fully before the next step
// begins, so per-step metrics are exact; within a step the reorder and the
// window invocation are pipelined exactly as in the paper's executor.
func Run(table *storage.Table, specs []window.Spec, plan *core.Plan, cfg Config) (*storage.Table, *Metrics, error) {
	return RunContext(context.Background(), table, specs, plan, cfg)
}

// RunContext is Run with cancellation: ctx is checked at every step
// boundary (a chain step — reorder plus window evaluation — is the unit of
// preemption, so a cancelled context stops the chain before the next
// reorder begins). It returns ctx.Err() when the context is done.
func RunContext(ctx context.Context, table *storage.Table, specs []window.Spec, plan *core.Plan, cfg Config) (*storage.Table, *Metrics, error) {
	stats := &pagestore.Stats{}
	var store *pagestore.Store
	if cfg.FileBacked {
		store = pagestore.NewFileBacked(cfg.TempDir, cfg.blockSize(), stats)
	} else {
		store = pagestore.NewMem(cfg.blockSize(), stats)
	}

	metrics := &Metrics{}
	live := trace.LiveFromContext(ctx)
	start := time.Now()
	rows := arenaRows(table, len(plan.Steps))
	schema := table.Schema
	var comparisons int64
	tableBlocks := int64(table.ByteSize()) / int64(cfg.blockSize())

	for _, step := range plan.Steps {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		if step.WF.ID < 0 || step.WF.ID >= len(specs) {
			return nil, nil, fmt.Errorf("exec: plan references wf%d outside specs", step.WF.ID)
		}
		spec := specs[step.WF.ID]
		if err := spec.Validate(schema); err != nil {
			return nil, nil, fmt.Errorf("exec: wf%d: %w", step.WF.ID, err)
		}
		stepStart := time.Now()
		r0, w0, c0 := stats.BlocksRead(), stats.BlocksWritten(), comparisons

		rcfg := reorder.Config{
			MemoryBytes:  cfg.MemoryBytes,
			Store:        store,
			Comparisons:  &comparisons,
			RunFormation: cfg.RunFormation,
		}
		in := stream.FromRows(rows)
		var (
			out     stream.Stream
			detail  string
			ssStats *reorder.SSStats
			err     error
		)
		switch step.Reorder {
		case core.ReorderNone:
			out = in
		case core.ReorderFS:
			var st reorder.FSStats
			out, st, err = reorder.FullSort(in, step.SortKey, rcfg)
			detail = fmt.Sprintf("runs=%d passes=%d inmem=%v", st.Sort.InitialRuns, st.Sort.MergePasses, st.Sort.InMemory)
		case core.ReorderHS:
			opt := reorder.HSOptions{
				HashKey:     step.HashKey.IDs(),
				SortKey:     step.SortKey,
				Buckets:     cfg.HSBuckets,
				SpillPolicy: cfg.SpillPolicy,
			}
			if cfg.Distinct != nil {
				opt.DistinctHint = cfg.Distinct(step.HashKey)
			}
			if opt.Buckets <= 0 {
				opt.Buckets = int(core.HSBucketCount(opt.DistinctHint, tableBlocks, int64(cfg.MemoryBytes)/int64(cfg.blockSize())))
			}
			if cfg.MFV != nil {
				opt.MFVs = cfg.MFV(step.HashKey)
			}
			var st reorder.HSStats
			out, st, err = reorder.HashedSort(in, opt, rcfg)
			detail = fmt.Sprintf("buckets=%d spilled=%d resident=%d mfv=%d", st.Buckets, st.SpilledBuckets, st.MemoryResident, st.MFVTuples)
		case core.ReorderSS:
			opt := reorder.SSOptions{Alpha: step.Alpha, Beta: step.Beta}
			if step.In.Grouped {
				// Grouped inputs carry their segment structure in the data.
				opt.SegmentBy = step.In.X.IDs()
			}
			out, ssStats, err = reorder.SegmentedSort(in, opt, rcfg)
		}
		if err != nil {
			return nil, nil, fmt.Errorf("exec: wf%d %s reorder: %w", step.WF.ID, step.Reorder, err)
		}

		evaluated, err := window.Evaluate(out, spec)
		if err != nil {
			return nil, nil, fmt.Errorf("exec: wf%d evaluate: %w", step.WF.ID, err)
		}
		newRows, err := stream.Collect(evaluated)
		if err != nil {
			return nil, nil, fmt.Errorf("exec: wf%d drain: %w", step.WF.ID, err)
		}
		if ssStats != nil {
			detail = fmt.Sprintf("segments=%d units=%d external=%d", ssStats.Segments, ssStats.Units, ssStats.ExternalUnits)
		}
		rows = newRows
		schema = schema.WithColumn(spec.OutputColumn())

		metrics.Steps = append(metrics.Steps, StepMetrics{
			WFID:          step.WF.ID,
			Reorder:       step.Reorder,
			BlocksRead:    stats.BlocksRead() - r0,
			BlocksWritten: stats.BlocksWritten() - w0,
			Comparisons:   comparisons - c0,
			Rows:          int64(len(newRows)),
			Duration:      time.Since(stepStart),
			Detail:        detail,
		})
		// Per-step progress becomes visible in /debug/queries while the
		// chain is still running; atomic adds once per step, not per row.
		live.AddRowsScanned(int64(len(newRows)))
		live.AddBlocks(stats.BlocksRead()-r0, stats.BlocksWritten()-w0)
	}

	metrics.BlocksRead = stats.BlocksRead()
	metrics.BlocksWritten = stats.BlocksWritten()
	metrics.Comparisons = comparisons
	metrics.Elapsed = time.Since(start)

	result := storage.NewTable(schema)
	result.Rows = make([]storage.Tuple, len(rows))
	for i, r := range rows {
		result.Rows[i] = r.Tuple
	}
	return result, metrics, nil
}

// arenaRows copies the input tuples into one contiguous value arena, each
// row sliced out with spare capacity for the chain's derived columns:
// window evaluation (Tuple.Extend) then grows rows in place, so a k-step
// chain performs zero per-row tuple allocations where it used to copy
// every tuple once per step. The copy also severs the executor from the
// engine-owned table rows, which must never observe the appends — and the
// three-index slices pin each row's capacity to its own arena region, so
// a row cannot grow into its neighbour. In-place extension is safe
// because the chain never duplicates a row reference: reorders permute
// (spills decode into fresh tuples), and evaluation emits exactly one
// output row per input row, so each arena row is extended at most once
// per step.
func arenaRows(table *storage.Table, steps int) []stream.Row {
	arity := table.Schema.Len()
	stride := arity + steps
	rows := make([]stream.Row, len(table.Rows))
	arena := make([]storage.Value, len(table.Rows)*stride)
	for i, t := range table.Rows {
		base := i * stride
		row := storage.Tuple(arena[base : base+arity : base+stride])
		copy(row, t)
		rows[i] = stream.Row{Tuple: row, Boundary: i == 0}
	}
	return rows
}
