package exec

import (
	"testing"

	"repro/internal/attrs"
	"repro/internal/core"
	"repro/internal/storage"
	"repro/internal/window"
)

// BenchmarkRunChain measures the sequential chain executor on a two-step
// rank chain over a synthetic wide table — the per-row cost of the
// reorder+evaluate hot loop (arena conversion, in-place extension).
func BenchmarkRunChain(b *testing.B) {
	const rows, wide = 50_000, 12
	cols := make([]storage.Column, wide)
	for i := range cols {
		cols[i] = storage.Column{Name: string(rune('a' + i)), Type: storage.TypeInt}
	}
	table := storage.NewTable(storage.NewSchema(cols...))
	table.Rows = make([]storage.Tuple, rows)
	for i := range table.Rows {
		t := make(storage.Tuple, wide)
		for c := range t {
			t[c] = storage.Int(int64((i*31 + c*7) % 97))
		}
		table.Rows[i] = t
	}
	pk := attrs.MakeSet(0)
	specs := []window.Spec{
		{Kind: window.Rank, PK: pk, OK: attrs.AscSeq(1), Arg: -1, Name: "r1"},
		{Kind: window.Rank, PK: pk, OK: attrs.AscSeq(2), Arg: -1, Name: "r2"},
	}
	plan := &core.Plan{Steps: []core.Step{
		{WF: specs[0].WF(0), Reorder: core.ReorderFS, SortKey: pk.AscSeq().Concat(specs[0].OK)},
		{WF: specs[1].WF(1), Reorder: core.ReorderFS, SortKey: pk.AscSeq().Concat(specs[1].OK)},
	}}
	cfg := Config{MemoryBytes: 64 << 20}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Run(table, specs, plan, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPartitionRows measures the scatter/shuffle partitioning hash.
func BenchmarkPartitionRows(b *testing.B) {
	const rows = 100_000
	tuples := make([]storage.Tuple, rows)
	for i := range tuples {
		tuples[i] = storage.Tuple{storage.Int(int64(i % 1009)), storage.StringVal("payload"), storage.Float(float64(i))}
	}
	ids := []attrs.ID{0, 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		partitionRows(tuples, ids, 4)
	}
}
