package exec

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/pagestore"
	"repro/internal/reorder"
	"repro/internal/storage"
	"repro/internal/stream"
)

// ReorderTable applies one reorder step to table without evaluating any
// window function and materializes the result: the physical half of a
// shared scan+reorder subplan (sql.(*Prepared).RunSubplan). The returned
// table keeps the input schema — derived columns are the per-statement
// suffix's business — and carries the step's physical stream property in
// its row order, so any chain whose functions are matched by step.Out can
// evaluate over it scan-only (core.DeriveSuffix). Metrics report the
// reorder's I/O as a single chain step.
func ReorderTable(ctx context.Context, table *storage.Table, step core.Step, cfg Config) (*storage.Table, *Metrics, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	stats := &pagestore.Stats{}
	var store *pagestore.Store
	if cfg.FileBacked {
		store = pagestore.NewFileBacked(cfg.TempDir, cfg.blockSize(), stats)
	} else {
		store = pagestore.NewMem(cfg.blockSize(), stats)
	}

	start := time.Now()
	var comparisons int64
	rcfg := reorder.Config{
		MemoryBytes:  cfg.MemoryBytes,
		Store:        store,
		Comparisons:  &comparisons,
		RunFormation: cfg.RunFormation,
	}
	in := stream.FromRows(arenaRows(table, 0))
	tableBlocks := int64(table.ByteSize()) / int64(cfg.blockSize())

	var (
		out    stream.Stream
		detail string
		err    error
	)
	switch step.Reorder {
	case core.ReorderNone:
		out = in
	case core.ReorderFS:
		var st reorder.FSStats
		out, st, err = reorder.FullSort(in, step.SortKey, rcfg)
		detail = fmt.Sprintf("runs=%d passes=%d inmem=%v", st.Sort.InitialRuns, st.Sort.MergePasses, st.Sort.InMemory)
	case core.ReorderHS:
		opt := reorder.HSOptions{
			HashKey:     step.HashKey.IDs(),
			SortKey:     step.SortKey,
			Buckets:     cfg.HSBuckets,
			SpillPolicy: cfg.SpillPolicy,
		}
		if cfg.Distinct != nil {
			opt.DistinctHint = cfg.Distinct(step.HashKey)
		}
		if opt.Buckets <= 0 {
			opt.Buckets = int(core.HSBucketCount(opt.DistinctHint, tableBlocks, int64(cfg.MemoryBytes)/int64(cfg.blockSize())))
		}
		if cfg.MFV != nil {
			opt.MFVs = cfg.MFV(step.HashKey)
		}
		var st reorder.HSStats
		out, st, err = reorder.HashedSort(in, opt, rcfg)
		detail = fmt.Sprintf("buckets=%d spilled=%d resident=%d mfv=%d", st.Buckets, st.SpilledBuckets, st.MemoryResident, st.MFVTuples)
	default:
		// A shared scan materializes only heavy reorders; SS depends on the
		// consumer's segment structure and is never the subplan seam.
		return nil, nil, fmt.Errorf("exec: reorder %s cannot lead a shared subplan", step.Reorder)
	}
	if err != nil {
		return nil, nil, fmt.Errorf("exec: shared %s reorder: %w", step.Reorder, err)
	}

	rows, err := stream.Collect(out)
	if err != nil {
		return nil, nil, fmt.Errorf("exec: shared scan drain: %w", err)
	}
	result := storage.NewTable(table.Schema)
	result.Rows = make([]storage.Tuple, len(rows))
	for i, r := range rows {
		result.Rows[i] = r.Tuple
	}
	metrics := &Metrics{
		BlocksRead:    stats.BlocksRead(),
		BlocksWritten: stats.BlocksWritten(),
		Comparisons:   comparisons,
		Elapsed:       time.Since(start),
		Steps: []StepMetrics{{
			WFID:          step.WF.ID,
			Reorder:       step.Reorder,
			BlocksRead:    stats.BlocksRead(),
			BlocksWritten: stats.BlocksWritten(),
			Comparisons:   comparisons,
			Rows:          int64(len(rows)),
			Duration:      time.Since(start),
			Detail:        detail,
		}},
	}
	return result, metrics, nil
}
