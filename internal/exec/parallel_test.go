package exec

import (
	"fmt"
	"runtime"
	"sort"
	"testing"

	"repro/internal/attrs"
	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/paper"
	"repro/internal/storage"
	"repro/internal/window"
)

// csoPlan plans specs with CSO over the entry's statistics.
func csoPlan(t *testing.T, entry *catalog.Entry, specs []window.Spec, memBytes int) *core.Plan {
	t.Helper()
	plan, err := core.CSO(paper.WFs(specs), core.Unordered(), core.Options{Cost: entry.CostParams(memBytes, 4096)})
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// canonical returns the result rows encoded and sorted, a row-multiset
// fingerprint independent of output order.
func canonical(t *storage.Table) []string {
	out := make([]string, t.Len())
	for i, r := range t.Rows {
		out[i] = string(storage.AppendTuple(nil, r))
	}
	sort.Strings(out)
	return out
}

// TestParallelRunMatchesSequential — on the paper's multi-window queries the
// parallel chain executor computes, at every degree, exactly the sequential
// executor's rows (tuple for tuple under canonical order: same derived
// values, same multiset), and the merged metrics keep one entry per step.
func TestParallelRunMatchesSequential(t *testing.T) {
	table, entry := smallWebSales(3000)
	cfg := Config{MemoryBytes: 32 << 10, BlockSize: 4096, Distinct: entry.Distinct}
	for name, specs := range map[string][]window.Spec{
		"Q6": paper.Q6(), "Q7": paper.Q7(), "Q8": paper.Q8(), "Q9": paper.Q9(),
	} {
		t.Run(name, func(t *testing.T) {
			plan := csoPlan(t, entry, specs, cfg.MemoryBytes)
			seq, seqM, err := Run(table, specs, plan, cfg)
			if err != nil {
				t.Fatal(err)
			}
			want := canonical(seq)
			for _, degree := range []int{2, 3, 4, 8} {
				par, parM, err := ParallelRun(table, specs, plan, cfg, degree)
				if err != nil {
					t.Fatalf("degree %d: %v", degree, err)
				}
				if pn, sn := fmt.Sprint(par.Schema.Names()), fmt.Sprint(seq.Schema.Names()); pn != sn {
					t.Fatalf("degree %d: schema %s != sequential %s", degree, pn, sn)
				}
				got := canonical(par)
				if len(got) != len(want) {
					t.Fatalf("degree %d: %d rows, want %d", degree, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("degree %d: row %d differs from sequential", degree, i)
					}
				}
				if len(parM.Steps) != len(seqM.Steps) {
					t.Fatalf("degree %d: %d step metrics, want %d", degree, len(parM.Steps), len(seqM.Steps))
				}
				if seqM.Concatenated {
					t.Fatalf("sequential metrics report concatenated output")
				}
				for i := range parM.Steps {
					if parM.Steps[i].WFID != seqM.Steps[i].WFID {
						t.Fatalf("degree %d: step %d evaluates wf%d, sequential wf%d",
							degree, i, parM.Steps[i].WFID, seqM.Steps[i].WFID)
					}
				}
			}
		})
	}
}

// TestParallelRunDeterministic — repeated runs at the same degree produce
// identical output, including row order (partition-index concatenation).
func TestParallelRunDeterministic(t *testing.T) {
	table, entry := smallWebSales(2000)
	specs := paper.Q9()
	cfg := Config{MemoryBytes: 16 << 10, BlockSize: 4096, Distinct: entry.Distinct}
	plan := csoPlan(t, entry, specs, cfg.MemoryBytes)
	first, _, err := ParallelRun(table, specs, plan, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 3; trial++ {
		again, _, err := ParallelRun(table, specs, plan, cfg, 4)
		if err != nil {
			t.Fatal(err)
		}
		if again.Len() != first.Len() {
			t.Fatalf("trial %d: %d rows, want %d", trial, again.Len(), first.Len())
		}
		for i := range first.Rows {
			if string(storage.AppendTuple(nil, again.Rows[i])) != string(storage.AppendTuple(nil, first.Rows[i])) {
				t.Fatalf("trial %d: row %d differs between runs of the same degree", trial, i)
			}
		}
	}
}

// TestParallelRunEmptyTable — an empty input yields an empty output with the
// fully extended schema at any degree.
func TestParallelRunEmptyTable(t *testing.T) {
	full, entry := smallWebSales(200)
	specs := paper.Q6()
	plan := csoPlan(t, entry, specs, 16<<10)
	empty := storage.NewTable(full.Schema)
	for _, degree := range []int{1, 4} {
		out, m, err := ParallelRun(empty, specs, plan, Config{MemoryBytes: 16 << 10, BlockSize: 4096}, degree)
		if err != nil {
			t.Fatalf("degree %d: %v", degree, err)
		}
		if out.Len() != 0 {
			t.Fatalf("degree %d: %d rows from empty input", degree, out.Len())
		}
		if out.Schema.Len() != full.Schema.Len()+len(specs) {
			t.Fatalf("degree %d: schema has %d columns, want %d", degree, out.Schema.Len(), full.Schema.Len()+len(specs))
		}
		if m == nil || len(m.Steps) != len(specs) {
			t.Fatalf("degree %d: missing per-step metrics", degree)
		}
	}
	// Sequential compatibility extends to errors: an invalid plan must be
	// rejected even when every partition would be empty.
	bad := &core.Plan{Scheme: "manual", Steps: []core.Step{{WF: core.WF{ID: 99}, Reorder: core.ReorderFS, SortKey: attrs.AscSeq(0)}}}
	if _, _, err := ParallelRun(empty, specs, bad, Config{MemoryBytes: 16 << 10, BlockSize: 4096}, 4); err == nil {
		t.Errorf("invalid plan over empty table accepted by the parallel executor")
	}
}

// TestParallelRunDegreeExceedsKeys — more partitions than distinct partition
// key values leaves some workers idle but changes nothing.
func TestParallelRunDegreeExceedsKeys(t *testing.T) {
	table, entry := smallWebSales(1500)
	// Warehouse has 16 distinct values; degree 64 > 16.
	spec := window.Spec{
		Name: "r", Kind: window.Rank, Arg: -1,
		PK: attrs.MakeSet(paper.Warehouse), OK: attrs.AscSeq(paper.Time),
	}
	specs := []window.Spec{spec}
	cfg := Config{MemoryBytes: 32 << 10, BlockSize: 4096, Distinct: entry.Distinct}
	plan := csoPlan(t, entry, specs, cfg.MemoryBytes)
	seq, _, err := Run(table, specs, plan, cfg)
	if err != nil {
		t.Fatal(err)
	}
	par, _, err := ParallelRun(table, specs, plan, cfg, 64)
	if err != nil {
		t.Fatal(err)
	}
	want, got := canonical(seq), canonical(par)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d differs with degree > distinct keys", i)
		}
	}
}

// TestParallelRunDegreeClamping — degree ≤ 0 resolves through
// Config.Degree(); explicit negatives and zeros still execute correctly.
func TestParallelRunDegreeClamping(t *testing.T) {
	if d := (Config{Parallelism: 5}).Degree(); d != 5 {
		t.Errorf("Degree() with Parallelism 5 = %d", d)
	}
	if d := (Config{Parallelism: -3}).Degree(); d != 1 {
		t.Errorf("Degree() with negative Parallelism = %d, want 1", d)
	}
	if d := (Config{}).Degree(); d != runtime.GOMAXPROCS(0) {
		t.Errorf("Degree() zero default = %d, want GOMAXPROCS %d", d, runtime.GOMAXPROCS(0))
	}
	table, entry := smallWebSales(800)
	specs := paper.Q6()
	cfg := Config{MemoryBytes: 32 << 10, BlockSize: 4096, Distinct: entry.Distinct}
	plan := csoPlan(t, entry, specs, cfg.MemoryBytes)
	seq, _, err := Run(table, specs, plan, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := canonical(seq)
	for _, degree := range []int{0, -7} {
		out, _, err := ParallelRun(table, specs, plan, cfg, degree)
		if err != nil {
			t.Fatalf("degree %d: %v", degree, err)
		}
		got := canonical(out)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("degree %d: row %d differs from sequential", degree, i)
			}
		}
	}
}

// TestParallelRunMergedMetrics — per-step counter sums equal the merged
// totals, exactly as for the sequential executor.
func TestParallelRunMergedMetrics(t *testing.T) {
	table, entry := smallWebSales(2000)
	specs := paper.Q8()
	cfg := Config{MemoryBytes: 16 << 10, BlockSize: 4096, Distinct: entry.Distinct}
	plan := csoPlan(t, entry, specs, cfg.MemoryBytes)
	_, m, err := ParallelRun(table, specs, plan, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	var r, w, c int64
	for _, s := range m.Steps {
		r += s.BlocksRead
		w += s.BlocksWritten
		c += s.Comparisons
	}
	if r != m.BlocksRead || w != m.BlocksWritten || c != m.Comparisons {
		t.Errorf("per-step sums (%d,%d,%d) != totals (%d,%d,%d)", r, w, c, m.BlocksRead, m.BlocksWritten, m.Comparisons)
	}
	if c == 0 {
		t.Errorf("parallel chain recorded no comparisons")
	}
}

// TestPlanSegments — segmentation invariants on the paper's chains: segments
// tile the plan, every parallel segment's key sits inside each member's WPK,
// and every segment after the first begins with an order-rebuilding reorder.
func TestPlanSegments(t *testing.T) {
	_, entry := smallWebSales(2000)
	for name, specs := range map[string][]window.Spec{
		"Q6": paper.Q6(), "Q7": paper.Q7(), "Q8": paper.Q8(), "Q9": paper.Q9(),
	} {
		plan := csoPlan(t, entry, specs, 32<<10)
		segs := planSegments(plan)
		pos := 0
		sawParallel := false
		for i, seg := range segs {
			if seg.lo != pos || seg.hi <= seg.lo {
				t.Fatalf("%s: segment %d spans [%d,%d) after position %d", name, i, seg.lo, seg.hi, pos)
			}
			pos = seg.hi
			if i > 0 && !rebuildsOrder(plan.Steps[seg.lo].Reorder) {
				t.Errorf("%s: segment %d starts with %s after a concatenation barrier",
					name, i, plan.Steps[seg.lo].Reorder)
			}
			if seg.Key.Empty() {
				continue
			}
			sawParallel = true
			for _, s := range plan.Steps[seg.lo:seg.hi] {
				if !seg.Key.SubsetOf(s.WF.PK) {
					t.Errorf("%s: segment key %s ⊄ WPK %s of wf%d", name, seg.Key, s.WF.PK, s.WF.ID)
				}
			}
		}
		if pos != len(plan.Steps) {
			t.Fatalf("%s: segments cover %d of %d steps", name, pos, len(plan.Steps))
		}
		if name == "Q6" && (len(segs) != 1 || segs[0].Key.Empty()) {
			t.Errorf("Q6 shares WPK {item}: want one parallel segment, got %+v", segs)
		}
		if !sawParallel {
			t.Errorf("%s: no parallel segment found", name)
		}
	}
}
