package exec

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/paper"
)

// plannedQ7 plans the 5-step Q7 chain, giving the boundary checks plenty
// of boundaries.
func plannedQ7(t *testing.T, entry interface {
	CostParams(int, int) core.CostParams
}) *core.Plan {
	t.Helper()
	plan, err := core.CSO(paper.WFs(paper.Q7()), core.Unordered(),
		core.Options{Cost: entry.CostParams(1<<20, 4096)})
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// TestRunContextCancelled: an already-cancelled context stops the chain
// before the first step.
func TestRunContextCancelled(t *testing.T) {
	table, entry := smallWebSales(2000)
	plan := plannedQ7(t, entry)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := RunContext(ctx, table, paper.Q7(), plan, Config{MemoryBytes: 1 << 20, BlockSize: 4096})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRunContextDeadlineMidChain: a deadline that expires during the first
// step is honored at the next step boundary.
func TestRunContextDeadlineMidChain(t *testing.T) {
	table, entry := smallWebSales(20_000)
	plan := plannedQ7(t, entry)
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	_, _, err := RunContext(ctx, table, paper.Q7(), plan, Config{MemoryBytes: 1 << 20, BlockSize: 4096})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestParallelRunContextCancelled: the parallel executor propagates
// cancellation from its workers' step boundaries.
func TestParallelRunContextCancelled(t *testing.T) {
	table, entry := smallWebSales(5000)
	specs := paper.Q6() // both functions share WPK {item}: one parallel segment
	plan, err := core.CSO(paper.WFs(specs), core.Unordered(),
		core.Options{Cost: entry.CostParams(1<<20, 4096)})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err = ParallelRunContext(ctx, table, specs, plan, Config{MemoryBytes: 1 << 20, BlockSize: 4096}, 4)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRunContextBackgroundIdentical: threading a background context changes
// nothing — Run and RunContext produce identical results and metrics.
func TestRunContextBackgroundIdentical(t *testing.T) {
	table, entry := smallWebSales(3000)
	specs := paper.Q6()
	plan, err := core.CSO(paper.WFs(specs), core.Unordered(),
		core.Options{Cost: entry.CostParams(1<<20, 4096)})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{MemoryBytes: 1 << 20, BlockSize: 4096, Distinct: entry.Distinct}
	a, am, err := Run(table, specs, plan, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, bm, err := RunContext(context.Background(), table, specs, plan, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() || am.TotalBlocks() != bm.TotalBlocks() || am.Comparisons != bm.Comparisons {
		t.Fatalf("Run and RunContext diverge: rows %d/%d, blocks %d/%d, comparisons %d/%d",
			a.Len(), b.Len(), am.TotalBlocks(), bm.TotalBlocks(), am.Comparisons, bm.Comparisons)
	}
}
