package exec

import (
	"testing"

	"repro/internal/attrs"
	"repro/internal/core"
	"repro/internal/storage"
)

// TestChainCommonKey pins the whole-chain partition-key analysis the
// sharded router consumes.
func TestChainCommonKey(t *testing.T) {
	step := func(pk ...attrs.ID) core.Step {
		return core.Step{WF: core.WF{PK: attrs.MakeSet(pk...)}}
	}
	plan := func(steps ...core.Step) *core.Plan {
		return &core.Plan{Scheme: "manual", Steps: steps}
	}
	cases := []struct {
		name string
		plan *core.Plan
		want attrs.Set
	}{
		{"nil plan", nil, 0},
		{"empty chain", plan(), 0},
		{"single", plan(step(1, 2)), attrs.MakeSet(1, 2)},
		{"shared subset", plan(step(1, 2), step(1)), attrs.MakeSet(1)},
		{"disjoint", plan(step(1), step(2)), 0},
		{"empty member", plan(step(1), step()), 0},
		{"three-way", plan(step(1, 2, 3), step(2, 3), step(3)), attrs.MakeSet(3)},
	}
	for _, tc := range cases {
		if got := ChainCommonKey(tc.plan); got != tc.want {
			t.Errorf("%s: ChainCommonKey = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestPartitionRowsMatchesInternal: the exported partitioner is the
// executors' own — identical bucketing for identical inputs.
func TestPartitionRowsMatchesInternal(t *testing.T) {
	rows := make([]storage.Tuple, 100)
	for i := range rows {
		rows[i] = storage.Tuple{storage.Int(int64(i % 17)), storage.Int(int64(i))}
	}
	ids := []attrs.ID{0}
	a := PartitionRows(rows, ids, 4)
	b := partitionRows(rows, ids, 4)
	if len(a) != len(b) {
		t.Fatal("bucket counts differ")
	}
	total := 0
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("bucket %d sizes differ", i)
		}
		total += len(a[i])
	}
	if total != len(rows) {
		t.Fatalf("partitioning lost rows: %d of %d", total, len(rows))
	}
}
