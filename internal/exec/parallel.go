package exec

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/attrs"
	"repro/internal/core"
	"repro/internal/pagestore"
	"repro/internal/reorder"
	"repro/internal/storage"
	"repro/internal/stream"
	"repro/internal/window"
)

// ParallelEvaluate implements Section 3.5: the evaluation of a single window
// function wf = (WPK, WOK) is parallelized by hash-partitioning the input on
// the WPK attributes; each data partition is reordered independently (every
// partition of an SS/HS-reorderable input remains SS/HS-reorderable) and the
// window function is evaluated per partition. Outputs are concatenated —
// window semantics are insensitive to the order of partitions.
//
// WPK must be non-empty (with an empty WPK the whole table is one window
// partition and the evaluation is inherently sequential).
func ParallelEvaluate(table *storage.Table, spec window.Spec, degree int, cfg Config) (*storage.Table, error) {
	if degree < 1 {
		degree = 1
	}
	if spec.PK.Empty() {
		return nil, fmt.Errorf("exec: parallel evaluation requires a non-empty partitioning key")
	}
	if err := spec.Validate(table.Schema); err != nil {
		return nil, err
	}
	parts := partitionRows(table.Rows, spec.PK.IDs(), degree)

	key := spec.PK.AscSeq().Concat(spec.OK)
	results := make([][]storage.Tuple, degree)
	errs := make([]error, degree)
	var wg sync.WaitGroup
	for p := 0; p < degree; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			if len(parts[p]) == 0 {
				return
			}
			// Each worker gets its own spill store and the full unit
			// reorder memory, as in the paper's parallel model.
			store := pagestore.NewMem(cfg.blockSize(), &pagestore.Stats{})
			rcfg := reorder.Config{MemoryBytes: cfg.MemoryBytes, Store: store, RunFormation: cfg.RunFormation}
			sorted, _, err := reorder.FullSort(stream.FromTuples(parts[p]), key, rcfg)
			if err != nil {
				errs[p] = err
				return
			}
			evaluated, err := window.Evaluate(sorted, spec)
			if err != nil {
				errs[p] = err
				return
			}
			tuples, err := stream.CollectTuples(evaluated)
			if err != nil {
				errs[p] = err
				return
			}
			results[p] = tuples
		}(p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	out := storage.NewTable(table.Schema.WithColumn(spec.OutputColumn()))
	for _, part := range results {
		out.Rows = append(out.Rows, part...)
	}
	return out, nil
}

// chainSegment is a maximal run of plan steps executed as one unit by
// ParallelRun: hash-partitioned across workers on Key when Key is non-empty,
// sequentially otherwise.
type chainSegment struct {
	lo, hi int       // step range [lo, hi)
	Key    attrs.Set // common partition key; empty → sequential segment
}

// planSegments splits a chain into parallel-executable segments, falling
// back to sequential segments where the partition keys diverge.
//
// A segment may run hash-partitioned on key K only when
//
//   - K ⊆ WPK of every window function in the segment: each WPK-group then
//     lands wholly inside one data partition, so every per-partition pipeline
//     sees complete window partitions (Section 3.5's condition, applied to
//     the whole segment instead of a single function);
//   - the segment's first step can tolerate a hash-partitioned input. The
//     very first segment reads the original table, of which each data
//     partition is a subsequence — subsequences preserve sortedness,
//     groupedness and (with K inside every WPK) window-partition
//     contiguity, so any reorder kind may lead it. Later segments read a
//     concatenation of per-partition outputs whose inter-partition order is
//     weaker than the stream property the planner tracked, so they must
//     begin with a reorder that rebuilds order from scratch (FS or HS);
//   - the step after the segment (when one exists) is FS or HS for the same
//     reason: it restarts from the concatenated output.
func planSegments(plan *core.Plan) []chainSegment {
	steps := plan.Steps
	var segs []chainSegment
	for i := 0; i < len(steps); {
		if key, hi := parallelSpan(steps, i); hi > i {
			segs = append(segs, chainSegment{lo: i, hi: hi, Key: key})
			i = hi
			continue
		}
		// Sequential fallback: absorb steps until a parallel span can start.
		hi := i + 1
		for hi < len(steps) {
			if _, h := parallelSpan(steps, hi); h > hi {
				break
			}
			hi++
		}
		segs = append(segs, chainSegment{lo: i, hi: hi})
		i = hi
	}
	return segs
}

// rebuildsOrder reports whether a reorder kind establishes its output
// property regardless of the input arrival order.
func rebuildsOrder(k core.ReorderKind) bool {
	return k == core.ReorderFS || k == core.ReorderHS
}

// parallelSpan returns the longest parallel-executable segment starting at
// step lo and its partition key, or hi == lo when none exists.
func parallelSpan(steps []core.Step, lo int) (attrs.Set, int) {
	if lo > 0 && !rebuildsOrder(steps[lo].Reorder) {
		return 0, lo
	}
	if steps[lo].WF.PK.Empty() {
		return 0, lo
	}
	common := steps[lo].WF.PK
	hi := lo + 1
	for hi < len(steps) && !common.Intersect(steps[hi].WF.PK).Empty() {
		common = common.Intersect(steps[hi].WF.PK)
		hi++
	}
	// The step following the segment restarts from the concatenated output;
	// shrink until it is an order-rebuilding reorder (or the chain end).
	for hi > lo && hi < len(steps) && !rebuildsOrder(steps[hi].Reorder) {
		hi--
	}
	if hi == lo {
		return 0, lo
	}
	// Recompute the widest key for the final (possibly shrunk) range.
	key := steps[lo].WF.PK
	for j := lo + 1; j < hi; j++ {
		key = key.Intersect(steps[j].WF.PK)
	}
	return key, hi
}

// ParallelRun executes a planned window-function chain with Section 3.5's
// hash-partitioned parallelism generalized from one function to the whole
// chain. The chain is split into segments sharing a common partition key
// (planSegments); each parallel segment hash-partitions its input on that
// key into degree data partitions, runs every partition's reorder+evaluate
// pipeline (the unchanged sequential Run) on its own worker with its own
// spill store and the full unit reorder memory, then concatenates the
// per-partition outputs in partition-index order — deterministic for a
// given degree. Segments whose keys diverge down to the empty set run
// sequentially in place.
//
// Derived values and the output row multiset are identical to Run's; only
// the final row order differs (windows are insensitive to it — callers that
// need an order must sort, as the SQL runner does). Per-worker metrics are
// merged: I/O and comparison counters sum across partitions, a step's
// Duration is the slowest partition's (the parallel wall clock), and
// Elapsed spans the whole call.
//
// degree ≤ 0 resolves through cfg.Degree() (Parallelism, 0 → GOMAXPROCS);
// a resolved degree of 1 is exactly the sequential Run.
func ParallelRun(table *storage.Table, specs []window.Spec, plan *core.Plan, cfg Config, degree int) (*storage.Table, *Metrics, error) {
	return ParallelRunContext(context.Background(), table, specs, plan, cfg, degree)
}

// ParallelRunContext is ParallelRun with cancellation: ctx is checked at
// every segment boundary and, inside each worker, at every step boundary of
// the per-partition pipeline (the workers run RunContext). The first
// ctx.Err() observed cancels the whole chain.
func ParallelRunContext(ctx context.Context, table *storage.Table, specs []window.Spec, plan *core.Plan, cfg Config, degree int) (*storage.Table, *Metrics, error) {
	if degree <= 0 {
		degree = cfg.Degree()
	}
	// An empty input delegates too: it would leave every partition empty,
	// skipping the workers — and with them the per-step spec validation the
	// sequential-compatibility contract promises.
	if degree <= 1 || len(plan.Steps) == 0 || table.Len() == 0 {
		return RunContext(ctx, table, specs, plan, cfg)
	}
	start := time.Now()
	metrics := &Metrics{}
	cur := table
	for _, seg := range planSegments(plan) {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		sub := &core.Plan{Scheme: plan.Scheme, Steps: plan.Steps[seg.lo:seg.hi]}
		var (
			out *storage.Table
			m   *Metrics
			err error
		)
		if seg.Key.Empty() {
			out, m, err = RunContext(ctx, cur, specs, sub, cfg)
			metrics.Concatenated = false
		} else {
			out, m, err = runPartitioned(ctx, cur, specs, sub, seg.Key, cfg, degree)
			metrics.Concatenated = true
			metrics.PartitionedSteps += len(sub.Steps)
		}
		if err != nil {
			return nil, nil, err
		}
		cur = out
		metrics.Steps = append(metrics.Steps, m.Steps...)
		metrics.BlocksRead += m.BlocksRead
		metrics.BlocksWritten += m.BlocksWritten
		metrics.Comparisons += m.Comparisons
	}
	metrics.Elapsed = time.Since(start)
	return cur, metrics, nil
}

// runPartitioned executes one parallel segment: partition on key, run the
// segment's pipeline per partition on a pool of degree workers, merge
// metrics and concatenate outputs by partition index.
func runPartitioned(ctx context.Context, table *storage.Table, specs []window.Spec, plan *core.Plan, key attrs.Set, cfg Config, degree int) (*storage.Table, *Metrics, error) {
	parts := partitionRows(table.Rows, key.IDs(), degree)
	outs := make([]*storage.Table, degree)
	mets := make([]*Metrics, degree)
	errs := make([]error, degree)
	var wg sync.WaitGroup
	for p := 0; p < degree; p++ {
		if len(parts[p]) == 0 {
			continue
		}
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			in := storage.NewTable(table.Schema)
			in.Rows = parts[p]
			outs[p], mets[p], errs[p] = RunContext(ctx, in, specs, plan, cfg)
		}(p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}

	// The merged schema is independent of which partitions were non-empty.
	schema := table.Schema
	merged := &Metrics{Steps: make([]StepMetrics, len(plan.Steps))}
	for i, s := range plan.Steps {
		schema = schema.WithColumn(specs[s.WF.ID].OutputColumn())
		merged.Steps[i] = StepMetrics{WFID: s.WF.ID, Reorder: s.Reorder}
	}
	out := storage.NewTable(schema)
	workers := 0
	for p := 0; p < degree; p++ {
		if outs[p] == nil {
			continue
		}
		workers++
		out.Rows = append(out.Rows, outs[p].Rows...)
		for i := range merged.Steps {
			st, ms := mets[p].Steps[i], &merged.Steps[i]
			ms.BlocksRead += st.BlocksRead
			ms.BlocksWritten += st.BlocksWritten
			ms.Comparisons += st.Comparisons
			ms.Rows += st.Rows
			if st.Duration > ms.Duration {
				ms.Duration = st.Duration
			}
			if ms.Detail == "" {
				ms.Detail = st.Detail
			}
		}
	}
	for i := range merged.Steps {
		ms := &merged.Steps[i]
		ms.Detail = strings.TrimSpace(fmt.Sprintf("parallel=%d %s", workers, ms.Detail))
		merged.BlocksRead += ms.BlocksRead
		merged.BlocksWritten += ms.BlocksWritten
		merged.Comparisons += ms.Comparisons
		merged.Elapsed += ms.Duration
	}
	return out, merged, nil
}

// ChainCommonKey returns the partition key shared by every step of the
// chain: the intersection of all window partitioning keys, empty when any
// step has an empty WPK or the keys diverge to ∅. It is the whole-chain
// form of the per-segment analysis in planSegments, and the routing
// predicate of the sharded executor: a table hash-partitioned on a
// non-empty K ⊆ ChainCommonKey can run the entire chain independently per
// partition — every window partition of every function lands wholly inside
// one data partition — so shard-local execution is value-identical to
// single-engine execution (Section 3.5's condition, lifted from segments of
// one process to nodes of a cluster). Unlike planSegments, no
// reorder-kind condition applies: each partition runs the chain from its
// own raw input, so there is no mid-chain concatenation for a later step
// to observe.
func ChainCommonKey(plan *core.Plan) attrs.Set {
	if plan == nil || len(plan.Steps) == 0 {
		return 0
	}
	key := plan.Steps[0].WF.PK
	for _, step := range plan.Steps[1:] {
		key = key.Intersect(step.WF.PK)
	}
	return key
}

// Segment is one key-divergence segment of a chain: the maximal step run
// [Lo, Hi) whose window partitioning keys share the non-empty common Key —
// ChainCommonKey restricted to the run.
type Segment struct {
	Lo, Hi int
	Key    attrs.Set
}

// DivergentSegments splits a chain at its key-divergence points: each
// returned segment is a maximal step run with a non-empty common partition
// key (ChainCommonKey applied per segment). A table hash-partitioned on a
// segment's Key runs that segment fully partitioned — Section 3.5's
// condition per segment instead of per chain — so a distributed executor
// can run every segment scattered, re-shuffling rows on the next segment's
// key between segments (Cao et al., VLDB 2012).
//
// Two conditions void the split, returning nil (the caller falls back to
// single-site execution):
//
//   - a step with an empty WPK, or a divergence down to ∅ mid-segment:
//     that segment has no usable shuffle key;
//   - a segment whose first step (after the first segment) does not
//     rebuild order from scratch (FS/HS): the shuffled rows arrive in
//     arbitrary interleaved order, weaker than the stream property the
//     planner tracked across the cut, so only an order-rebuilding reorder
//     may lead a post-shuffle segment — the same condition planSegments
//     imposes on post-concatenation segments in one process.
//
// A chain with a non-empty whole-chain common key yields one segment.
func DivergentSegments(plan *core.Plan) []Segment {
	if plan == nil || len(plan.Steps) == 0 {
		return nil
	}
	steps := plan.Steps
	key := steps[0].WF.PK
	if key.Empty() {
		return nil
	}
	var segs []Segment
	lo := 0
	for i := 1; i < len(steps); i++ {
		if next := key.Intersect(steps[i].WF.PK); !next.Empty() {
			key = next
			continue
		}
		if steps[i].WF.PK.Empty() || !rebuildsOrder(steps[i].Reorder) {
			return nil
		}
		segs = append(segs, Segment{Lo: lo, Hi: i, Key: key})
		lo, key = i, steps[i].WF.PK
	}
	return append(segs, Segment{Lo: lo, Hi: len(steps), Key: key})
}

// Concatenates reports whether ParallelRun at a degree > 1 would emit a
// partition-index concatenation — i.e. the chain's final segment runs
// hash-partitioned — voiding the plan's nominal output ordering. Planners
// integrating interesting orders (Section 5) consult this before paying
// for an alignment the concatenation would discard.
func Concatenates(plan *core.Plan) bool {
	segs := planSegments(plan)
	return len(segs) > 0 && !segs[len(segs)-1].Key.Empty()
}

// PartitionRows hash-partitions rows on the key attributes into degree
// buckets, preserving scan order within each bucket. It uses the
// tuple-encoding FNV hash shared by both parallel executors, and is
// exported so sharded registration distributes a table's rows exactly as
// the in-process executors would partition them — a chain that is
// shard-local on key K sees the same data partitions either way.
func PartitionRows(rows []storage.Tuple, ids []attrs.ID, degree int) [][]storage.Tuple {
	return partitionRows(rows, ids, degree)
}

// partitionRows hash-partitions rows on the key attributes into degree
// buckets, preserving scan order within each bucket. Both parallel
// executors share it so the single-function and chain forms partition
// identically.
func partitionRows(rows []storage.Tuple, ids []attrs.ID, degree int) [][]storage.Tuple {
	parts := make([][]storage.Tuple, degree)
	for _, t := range rows {
		p := int(hashTupleKey(t, ids) % uint64(degree))
		parts[p] = append(parts[p], t)
	}
	return parts
}

// hashTupleKey is FNV-1a over the concatenated single-value tuple
// encodings of the key attributes, streamed through storage.HashValueFNV
// instead of materializing the encoding — the partitioning hash runs once
// per row on every scatter and shuffle path, and the buffer it used to
// build was the hot loop's dominant allocation. The raw FNV value is
// passed through a finalizer before use: partitioning buckets by hash
// modulo degree, and FNV-1a's low bits carry visible structure for short
// integer keys — every item key in a small dimension can land in one
// bucket mod 2, leaving shards empty. Every placement decision in one
// process (parallel executors, sharded registration, append routing, the
// shuffle data plane) uses this same function, so placement stays
// internally consistent.
func hashTupleKey(t storage.Tuple, ids []attrs.ID) uint64 {
	h := storage.HashSeedFNV
	for _, id := range ids {
		h = storage.HashValueFNV(h, t[id])
	}
	return mix64(h)
}

// mix64 is the splitmix64 finalizer: full-avalanche bit mixing so the
// modulo in partitionRows sees uniform low bits.
func mix64(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}
