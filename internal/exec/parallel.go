package exec

import (
	"fmt"
	"sync"

	"repro/internal/attrs"
	"repro/internal/pagestore"
	"repro/internal/reorder"
	"repro/internal/storage"
	"repro/internal/stream"
	"repro/internal/window"
)

// ParallelEvaluate implements Section 3.5: the evaluation of a single window
// function wf = (WPK, WOK) is parallelized by hash-partitioning the input on
// the WPK attributes; each data partition is reordered independently (every
// partition of an SS/HS-reorderable input remains SS/HS-reorderable) and the
// window function is evaluated per partition. Outputs are concatenated —
// window semantics are insensitive to the order of partitions.
//
// WPK must be non-empty (with an empty WPK the whole table is one window
// partition and the evaluation is inherently sequential).
func ParallelEvaluate(table *storage.Table, spec window.Spec, degree int, cfg Config) (*storage.Table, error) {
	if degree < 1 {
		degree = 1
	}
	if spec.PK.Empty() {
		return nil, fmt.Errorf("exec: parallel evaluation requires a non-empty partitioning key")
	}
	if err := spec.Validate(table.Schema); err != nil {
		return nil, err
	}
	hashIDs := spec.PK.IDs()
	parts := make([][]storage.Tuple, degree)
	for _, t := range table.Rows {
		h := hashTupleKey(t, hashIDs)
		parts[h%uint64(degree)] = append(parts[h%uint64(degree)], t)
	}

	key := spec.PK.AscSeq().Concat(spec.OK)
	results := make([][]storage.Tuple, degree)
	errs := make([]error, degree)
	var wg sync.WaitGroup
	for p := 0; p < degree; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			if len(parts[p]) == 0 {
				return
			}
			// Each worker gets its own spill store and the full unit
			// reorder memory, as in the paper's parallel model.
			store := pagestore.NewMem(cfg.blockSize(), &pagestore.Stats{})
			rcfg := reorder.Config{MemoryBytes: cfg.MemoryBytes, Store: store, RunFormation: cfg.RunFormation}
			sorted, _, err := reorder.FullSort(stream.FromTuples(parts[p]), key, rcfg)
			if err != nil {
				errs[p] = err
				return
			}
			evaluated, err := window.Evaluate(sorted, spec)
			if err != nil {
				errs[p] = err
				return
			}
			tuples, err := stream.CollectTuples(evaluated)
			if err != nil {
				errs[p] = err
				return
			}
			results[p] = tuples
		}(p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	out := storage.NewTable(table.Schema.WithColumn(spec.OutputColumn()))
	for _, part := range results {
		out.Rows = append(out.Rows, part...)
	}
	return out, nil
}

func hashTupleKey(t storage.Tuple, ids []attrs.ID) uint64 {
	var buf []byte
	for _, id := range ids {
		buf = storage.AppendTuple(buf, storage.Tuple{t[id]})
	}
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, c := range buf {
		h ^= uint64(c)
		h *= prime
	}
	return h
}
