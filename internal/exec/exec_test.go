package exec

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/attrs"
	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/paper"
	"repro/internal/storage"
	"repro/internal/window"
)

// smallWebSales builds a reduced web_sales with its catalog entry.
func smallWebSales(rows int) (*storage.Table, *catalog.Entry) {
	t := datagen.WebSales(datagen.WebSalesConfig{Rows: rows, Seed: 42, PadBytes: 24})
	cat := catalog.New()
	return t, cat.Register("web_sales", t)
}

// derived maps tag (ws_order_number) -> wf ID -> derived value for a chain
// execution result.
func derived(t *testing.T, result *storage.Table, plan *core.Plan, baseCols int) map[int64]map[int]storage.Value {
	t.Helper()
	out := make(map[int64]map[int]storage.Value, result.Len())
	for _, row := range result.Rows {
		tag := row[datagen.ColOrderNumber].Int64()
		m := make(map[int]storage.Value, len(plan.Steps))
		for i, step := range plan.Steps {
			m[step.WF.ID] = row[baseCols+i]
		}
		out[tag] = m
	}
	return out
}

// runScheme plans with the given scheme and executes.
func runScheme(t *testing.T, scheme string, table *storage.Table, entry *catalog.Entry, specs []window.Spec, memBytes int) (map[int64]map[int]storage.Value, *Metrics, *core.Plan) {
	t.Helper()
	ws := paper.WFs(specs)
	opt := core.Options{Cost: entry.CostParams(memBytes, 4096)}
	var (
		plan *core.Plan
		err  error
	)
	switch scheme {
	case "CSO":
		plan, err = core.CSO(ws, core.Unordered(), opt)
	case "BFO":
		plan, err = core.BFO(ws, core.Unordered(), opt)
	case "ORCL":
		plan, err = core.ORCL(ws, core.Unordered(), opt)
	case "PSQL":
		plan, err = core.PSQL(ws, core.Unordered())
	default:
		t.Fatalf("unknown scheme %s", scheme)
	}
	if err != nil {
		t.Fatalf("%s: %v", scheme, err)
	}
	cfg := Config{
		MemoryBytes: memBytes,
		BlockSize:   4096,
		Distinct:    entry.Distinct,
	}
	result, metrics, err := Run(table, specs, plan, cfg)
	if err != nil {
		t.Fatalf("%s execute: %v", scheme, err)
	}
	if result.Len() != table.Len() {
		t.Fatalf("%s: result has %d rows, want %d", scheme, result.Len(), table.Len())
	}
	return derived(t, result, plan, table.Schema.Len()), metrics, plan
}

// TestSchemesAgreeOnPaperQueries — every optimization scheme computes
// identical window function values on Q6–Q9, and they agree with the O(n²)
// reference evaluator. This is the end-to-end correctness statement behind
// Figures 5–8: the schemes differ only in speed.
func TestSchemesAgreeOnPaperQueries(t *testing.T) {
	table, entry := smallWebSales(4000)
	queries := map[string][]window.Spec{
		"Q6": paper.Q6(),
		"Q7": paper.Q7(),
		"Q8": paper.Q8(),
		"Q9": paper.Q9(),
	}
	for name, specs := range queries {
		t.Run(name, func(t *testing.T) {
			// Reference values per wf.
			want := make([]map[int64]storage.Value, len(specs))
			for i, spec := range specs {
				vals, err := window.Reference(table.Rows, spec)
				if err != nil {
					t.Fatalf("reference wf%d: %v", i+1, err)
				}
				m := make(map[int64]storage.Value, len(vals))
				for r, v := range vals {
					m[table.Rows[r][datagen.ColOrderNumber].Int64()] = v
				}
				want[i] = m
			}
			for _, scheme := range []string{"CSO", "BFO", "ORCL", "PSQL"} {
				got, _, plan := runScheme(t, scheme, table, entry, specs, 64<<10)
				if err := plan.Validate(paper.WFs(specs), core.Unordered()); err != nil {
					t.Fatalf("%s plan invalid: %v", scheme, err)
				}
				for tag, perWF := range got {
					for wfID, v := range perWF {
						if !storage.Equal(v, want[wfID][tag]) {
							t.Fatalf("%s %s: row %d wf%d = %s, reference %s (plan %s)",
								scheme, name, tag, wfID+1, v, want[wfID][tag], plan.PaperString())
						}
					}
				}
			}
		})
	}
}

// TestCSOBeatsPSQLOnIO — on Q9 the CSO chain must incur strictly less spill
// I/O than PSQL's 7 full sorts (the Figure 8 effect, in blocks).
func TestCSOBeatsPSQLOnIO(t *testing.T) {
	table, entry := smallWebSales(6000)
	specs := paper.Q9()
	mem := 24 << 10 // small enough that full sorts spill
	_, csoM, csoPlan := runScheme(t, "CSO", table, entry, specs, mem)
	_, psqlM, _ := runScheme(t, "PSQL", table, entry, specs, mem)
	if csoM.TotalBlocks() >= psqlM.TotalBlocks() {
		t.Errorf("CSO I/O %d ≥ PSQL I/O %d (CSO plan %s)",
			csoM.TotalBlocks(), psqlM.TotalBlocks(), csoPlan.PaperString())
	}
	_, orclM, _ := runScheme(t, "ORCL", table, entry, specs, mem)
	if csoM.TotalBlocks() >= orclM.TotalBlocks() {
		t.Errorf("CSO I/O %d ≥ ORCL I/O %d", csoM.TotalBlocks(), orclM.TotalBlocks())
	}
}

// TestStepMetrics — per-step accounting matches totals.
func TestStepMetrics(t *testing.T) {
	table, entry := smallWebSales(3000)
	specs := paper.Q6()
	_, m, _ := runScheme(t, "CSO", table, entry, specs, 16<<10)
	var r, w, c int64
	for _, s := range m.Steps {
		r += s.BlocksRead
		w += s.BlocksWritten
		c += s.Comparisons
	}
	if r != m.BlocksRead || w != m.BlocksWritten || c != m.Comparisons {
		t.Errorf("per-step sums (%d,%d,%d) != totals (%d,%d,%d)", r, w, c, m.BlocksRead, m.BlocksWritten, m.Comparisons)
	}
	if len(m.Steps) != len(specs) {
		t.Errorf("%d step metrics for %d functions", len(m.Steps), len(specs))
	}
	if m.Elapsed <= 0 {
		t.Errorf("elapsed not measured")
	}
}

// TestFileBackedExecution — the file-backed spill store produces identical
// results to the memory-backed one.
func TestFileBackedExecution(t *testing.T) {
	table, entry := smallWebSales(2000)
	specs := paper.Q6()
	ws := paper.WFs(specs)
	plan, err := core.CSO(ws, core.Unordered(), core.Options{Cost: entry.CostParams(8<<10, 4096)})
	if err != nil {
		t.Fatal(err)
	}
	memResult, _, err := Run(table, specs, plan, Config{MemoryBytes: 8 << 10, BlockSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	fileResult, _, err := Run(table, specs, plan, Config{MemoryBytes: 8 << 10, BlockSize: 4096, FileBacked: true, TempDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	collect := func(tb *storage.Table) map[string]int {
		m := map[string]int{}
		for _, r := range tb.Rows {
			m[string(storage.AppendTuple(nil, r))]++
		}
		return m
	}
	a, b := collect(memResult), collect(fileResult)
	if len(a) != len(b) {
		t.Fatalf("row multiset size differs: %d vs %d", len(a), len(b))
	}
	for k, n := range a {
		if b[k] != n {
			t.Fatalf("file-backed results differ from memory-backed")
		}
	}
}

// TestParallelEvaluate — Section 3.5's parallel evaluation equals the
// reference for several degrees of parallelism.
func TestParallelEvaluate(t *testing.T) {
	table, _ := smallWebSales(3000)
	spec := paper.MicroQueries()[0].Spec // rank() over (partition by item order by time)
	want, err := window.Reference(table.Rows, spec)
	if err != nil {
		t.Fatal(err)
	}
	wantByTag := map[int64]storage.Value{}
	for i, v := range want {
		wantByTag[table.Rows[i][datagen.ColOrderNumber].Int64()] = v
	}
	for _, degree := range []int{1, 2, 4, 7} {
		out, err := ParallelEvaluate(table, spec, degree, Config{MemoryBytes: 1 << 20, BlockSize: 4096})
		if err != nil {
			t.Fatalf("degree %d: %v", degree, err)
		}
		if out.Len() != table.Len() {
			t.Fatalf("degree %d: %d rows", degree, out.Len())
		}
		last := out.Schema.Len() - 1
		for _, r := range out.Rows {
			tag := r[datagen.ColOrderNumber].Int64()
			if !storage.Equal(r[last], wantByTag[tag]) {
				t.Fatalf("degree %d: row %d = %s, want %s", degree, tag, r[last], wantByTag[tag])
			}
		}
	}
	// Empty partitioning key is rejected.
	bad := window.Spec{Kind: window.Rank, Arg: -1, OK: attrs.AscSeq(0)}
	if _, err := ParallelEvaluate(table, bad, 2, Config{}); err == nil {
		t.Errorf("parallel evaluation with empty WPK should fail")
	}
}

// TestRandomChainsAgainstReference — random multi-function chains through
// CSO and PSQL agree with the reference evaluator (beyond the fixed paper
// queries).
func TestRandomChainsAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	table, entry := smallWebSales(1500)
	attrsPool := []attrs.ID{paper.Date, paper.Time, paper.Item, paper.Bill, paper.Quantity}
	for trial := 0; trial < 8; trial++ {
		n := 1 + rng.Intn(4)
		specs := make([]window.Spec, n)
		for i := range specs {
			var pkIDs []attrs.ID
			for _, a := range attrsPool {
				if rng.Intn(3) == 0 {
					pkIDs = append(pkIDs, a)
				}
			}
			var ok attrs.Seq
			for _, a := range attrsPool {
				if attrs.MakeSet(pkIDs...).Contains(a) {
					continue
				}
				if rng.Intn(4) == 0 {
					ok = append(ok, attrs.Asc(a))
				}
			}
			specs[i] = window.Spec{
				Name: fmt.Sprintf("wf%d", i+1), Kind: window.Rank, Arg: -1,
				PK: attrs.MakeSet(pkIDs...), PKOrder: attrs.AscSeq(pkIDs...), OK: ok,
			}
		}
		want := make([]map[int64]storage.Value, n)
		for i, spec := range specs {
			vals, err := window.Reference(table.Rows, spec)
			if err != nil {
				t.Fatal(err)
			}
			m := map[int64]storage.Value{}
			for r, v := range vals {
				m[table.Rows[r][datagen.ColOrderNumber].Int64()] = v
			}
			want[i] = m
		}
		for _, scheme := range []string{"CSO", "PSQL"} {
			got, _, plan := runScheme(t, scheme, table, entry, specs, 32<<10)
			for tag, perWF := range got {
				for wfID, v := range perWF {
					if !storage.Equal(v, want[wfID][tag]) {
						t.Fatalf("trial %d %s: row %d wf%d = %s, want %s (plan %s, spec %+v)",
							trial, scheme, tag, wfID+1, v, want[wfID][tag], plan, specs[wfID])
					}
				}
			}
		}
	}
}

// TestTheorem4EvaluationOrder — if the input stream matches every function
// in W, any evaluation order computes the same (reference-correct) values
// with zero reorders (Theorem 4 / Corollary 1), end to end.
func TestTheorem4EvaluationOrder(t *testing.T) {
	table, _ := smallWebSales(1200)
	// Sort the table on (item, time, bill): it then matches both functions.
	sorted := table.Clone()
	sorted.SortBy(attrs.AscSeq(paper.Item, paper.Time, paper.Bill))
	specs := []window.Spec{
		{Name: "wf1", Kind: window.Rank, Arg: -1, PK: attrs.MakeSet(paper.Item), OK: attrs.AscSeq(paper.Time)},
		{Name: "wf2", Kind: window.Rank, Arg: -1, PK: attrs.MakeSet(paper.Item, paper.Time), OK: attrs.AscSeq(paper.Bill)},
	}
	ws := paper.WFs(specs)
	inProps := core.TotallyOrdered(attrs.AscSeq(paper.Item, paper.Time, paper.Bill))
	for _, wf := range ws {
		if !inProps.Matches(wf) {
			t.Fatalf("precondition: %s not matched by %s", wf, inProps)
		}
	}
	want := make([]map[int64]storage.Value, len(specs))
	for i, spec := range specs {
		vals, err := window.Reference(sorted.Rows, spec)
		if err != nil {
			t.Fatal(err)
		}
		m := map[int64]storage.Value{}
		for r, v := range vals {
			m[sorted.Rows[r][datagen.ColOrderNumber].Int64()] = v
		}
		want[i] = m
	}
	for _, order := range [][]int{{0, 1}, {1, 0}} {
		plan := &core.Plan{Scheme: "manual"}
		for _, id := range order {
			plan.Steps = append(plan.Steps, core.Step{
				WF: ws[id], Reorder: core.ReorderNone, In: inProps, Out: inProps,
			})
		}
		if err := plan.Validate(ws, inProps); err != nil {
			t.Fatalf("order %v: %v", order, err)
		}
		result, metrics, err := Run(sorted, specs, plan, Config{MemoryBytes: 1 << 20, BlockSize: 4096})
		if err != nil {
			t.Fatalf("order %v: %v", order, err)
		}
		if metrics.TotalBlocks() != 0 {
			t.Errorf("order %v: matched chain spilled %d blocks", order, metrics.TotalBlocks())
		}
		for _, row := range result.Rows {
			tag := row[datagen.ColOrderNumber].Int64()
			for pos, id := range order {
				got := row[sorted.Schema.Len()+pos]
				if !storage.Equal(got, want[id][tag]) {
					t.Fatalf("order %v wf%d row %d: %s != %s", order, id+1, tag, got, want[id][tag])
				}
			}
		}
	}
}
