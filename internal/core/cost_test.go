package core_test

import (
	"testing"

	"repro/internal/attrs"
	"repro/internal/core"
)

func costAt(mem int64) core.CostParams {
	p := scaledParams(mem)
	return p
}

// TestFSCostRegimes — the runtime-mirroring FS model transitions through
// in-memory, single-streaming-merge and multi-pass regimes as M shrinks.
func TestFSCostRegimes(t *testing.T) {
	inMem := costAt(10_000) // M > B: no spill
	if io := inMem.FSCost(); io > 1200 {
		// Only the comparison term remains (300k tuples ≈ 1092 equivalent).
		t.Errorf("in-memory FS cost = %.0f, want comparison-only", io)
	}
	single := costAt(96) // B=8000: runs 42 ≤ F: formation + final merge only
	multi := costAt(48)  // runs 84 > F=47: one materialized pass
	deep := costAt(8)    // deep multi-pass
	if !(single.FSCost() < multi.FSCost() && multi.FSCost() < deep.FSCost()) {
		t.Errorf("FS cost not monotone in memory pressure: %.0f %.0f %.0f",
			single.FSCost(), multi.FSCost(), deep.FSCost())
	}
	// Single-pass ≈ 2B + cmp; multi-pass ≈ 4B + cmp.
	if got := single.FSCost(); got < 16000 || got > 18000 {
		t.Errorf("single-pass FS = %.0f, want ≈ 2B + cmp", got)
	}
	if got := multi.FSCost(); got < 32000 || got > 34100 {
		t.Errorf("one-pass FS = %.0f, want ≈ 4B + cmp", got)
	}
}

// TestHSCostCrossover — the documented FS/HS decision pattern: HS below the
// single-pass threshold, FS at it (what Tables 4–10 rely on).
func TestHSCostCrossover(t *testing.T) {
	item := attrs.MakeSet(3)
	for _, mem := range []int64{48, 56} {
		p := costAt(mem)
		if p.HSCost(item) >= p.FSCost() {
			t.Errorf("M=%d: HS %.0f ≥ FS %.0f (want HS win)", mem, p.HSCost(item), p.FSCost())
		}
	}
	p := costAt(96)
	if p.HSCost(item) <= p.FSCost() {
		t.Errorf("M=96: HS %.0f ≤ FS %.0f (want FS win at single-pass parity)", p.HSCost(item), p.FSCost())
	}
}

// TestSSCostDominates — SS over small α-groups is far cheaper than FS/HS
// (Fig. 4's premise), but not free (per-unit overhead).
func TestSSCostDominates(t *testing.T) {
	p := costAt(48)
	in := core.TotallyOrdered(attrs.AscSeq(6)) // sorted on quantity
	wf := core.WF{ID: 0, PK: attrs.MakeSet(6), OK: attrs.AscSeq(3)}
	choice, ok := core.PlanSS(in, wf)
	if !ok {
		t.Fatal("not SS-reorderable")
	}
	ss := p.SSCost(in, choice)
	if ss <= 0 {
		t.Errorf("SS cost should include per-unit overhead, got %.2f", ss)
	}
	// At M=48 blocks each 80-block quantity-unit still spills once, so SS
	// costs ≈ 2B — strictly below FS's ≈ 4B and HS's partition+sort.
	if ss >= p.FSCost() {
		t.Errorf("SS %.0f ≥ FS %.0f", ss, p.FSCost())
	}
	if ss >= p.HSCost(wf.PK) {
		t.Errorf("SS %.0f ≥ HS %.0f", ss, p.HSCost(wf.PK))
	}
	// Once units fit the budget (M = 96 > 80-block units) SS sorts in
	// memory and its cost collapses to the comparison term — the Fig. 4
	// dominance.
	pBig := costAt(96)
	choiceBig, _ := core.PlanSS(in, wf)
	ssBig := pBig.SSCost(in, choiceBig)
	if ssBig*5 > pBig.FSCost() {
		t.Errorf("in-memory SS %.0f not ≪ FS %.0f", ssBig, pBig.FSCost())
	}
}

// TestPaperFormulas — Eq. 1 and Eq. 2 sanity: Eq. 1 grows with shrinking
// memory; Eq. 2's resident-bucket term reduces cost as memory grows.
func TestPaperFormulas(t *testing.T) {
	small, large := costAt(16), costAt(512)
	if small.PaperFSCost() <= large.PaperFSCost() {
		t.Errorf("Eq.1 not decreasing in M: %.0f vs %.0f", small.PaperFSCost(), large.PaperFSCost())
	}
	item := attrs.MakeSet(3)
	if small.PaperHSCost(item) < 0 || large.PaperHSCost(item) < 0 {
		t.Errorf("Eq.2 negative")
	}
	if large.PaperHSCost(item) > small.PaperHSCost(item) {
		t.Errorf("Eq.2 not improving with M: %.0f vs %.0f",
			large.PaperHSCost(item), small.PaperHSCost(item))
	}
}

// TestPlanCostAdds — chain cost is the sum of step costs (the relation size
// assumption of Section 4.2).
func TestPlanCostAdds(t *testing.T) {
	p := costAt(48)
	key := attrs.AscSeq(3, 1)
	plan := &core.Plan{Steps: []core.Step{
		{WF: core.WF{ID: 0, PK: attrs.MakeSet(3), OK: attrs.AscSeq(1)}, Reorder: core.ReorderFS, SortKey: key},
		{WF: core.WF{ID: 1, PK: attrs.MakeSet(3), OK: attrs.AscSeq(1)}, Reorder: core.ReorderNone},
	}}
	if got, want := p.PlanCost(plan), p.FSCost(); got != want {
		t.Errorf("PlanCost = %.2f, want %.2f (None steps are free)", got, want)
	}
}

// TestHSBucketCountPolicy — documented bounds.
func TestHSBucketCountPolicy(t *testing.T) {
	if got := core.HSBucketCount(0, 8000, 48); got != core.MinHSBuckets {
		t.Errorf("unknown distinct: %d, want %d", got, core.MinHSBuckets)
	}
	if got := core.HSBucketCount(4, 8000, 48); got != 4 {
		t.Errorf("distinct-capped: %d", got)
	}
	if got := core.HSBucketCount(1<<30, 1<<30, 4); got != core.MaxHSBuckets {
		t.Errorf("hard cap: %d", got)
	}
}

// TestCostDefaultDistinct — a missing estimator falls back without panic.
func TestCostDefaultDistinct(t *testing.T) {
	p := core.CostParams{TableBlocks: 1000, TableTuples: 10000, MemBlocks: 16, BlockSize: 8192}
	if p.HSCost(attrs.MakeSet(0)) <= 0 {
		t.Errorf("HS cost with default distinct should be positive")
	}
}
