package core

import (
	"sort"
)

// Cost-based factor rewrite (intra-statement). CSO evaluates the
// SS-reorderable class C1 before the heavy class C2, which is optimal when
// the classes are independent — but a C2 heavy reorder can *subsume* a C1
// cover set: if the heavy reorder's covering permutation γ also matches
// the C1 members (the frame-lattice test of factor.go), evaluating the
// heavy group first lets the C1 functions ride its output for free,
// saving their Segmented Sort entirely. That situation arises on
// segmented inputs (X ≠ ∅): a function with X ⊆ WPK is C1 even when a C2
// neighbour's γ engulfs its key. RewritePlan generates both chain shapes
// and keeps the cheaper under the same cost model CSO's FS/HS choice uses.

// RewritePlan generates a chain with CSO and then applies the
// factor-window rewrite: a heavy-first alternative is constructed, both
// are costed with opt.Cost, and the cheaper valid chain wins. It never
// fails harder than CSO — when the alternative cannot be built or costs
// no less, the CSO chain is returned unchanged.
func RewritePlan(ws []WF, in Props, opt Options) (*Plan, error) {
	base, err := CSO(ws, in, opt)
	if err != nil {
		return nil, err
	}
	if alt := RewriteAlternative(ws, in, opt, base); alt != nil {
		return alt, nil
	}
	return base, nil
}

// RewriteAlternative builds the heavy-first variant of a CSO chain and
// returns it when it validates and is strictly cheaper than base under
// opt.Cost; nil means "keep base". sql.Prepare calls this after its
// (aligned) CSO pass so statement planning stays cost-monotone.
func RewriteAlternative(ws []WF, in Props, opt Options, base *Plan) *Plan {
	alt, ok := heavyFirst(ws, in, opt)
	if !ok {
		return nil
	}
	if err := alt.Validate(ws, in); err != nil {
		return nil
	}
	if opt.Cost.PlanCost(alt) < opt.Cost.PlanCost(base) {
		return alt
	}
	return nil
}

// heavyFirst mirrors CSO's classification but emits the C2 prefixable
// groups before the C1 cover sets, so C1 sets whose members are matched by
// a heavy reorder's output (the lattice subsumption) degenerate to
// reorder-free evaluation inside emitSSCoverSet. Returns false when the
// rewrite cannot apply (either class empty — the orders coincide — or a
// C1 set stops being SS-evaluable after the heavy reorders).
func heavyFirst(ws []WF, in Props, opt Options) (*Plan, bool) {
	if opt.DisableSS {
		return nil, false
	}
	plan := &Plan{Scheme: "CSO+rewrite"}
	props := in

	var c0, c1, c2 []WF
	ordered := append([]WF(nil), ws...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].ID < ordered[j].ID })
	for _, wf := range ordered {
		switch {
		case in.Matches(wf):
			c0 = append(c0, wf)
		case SSReorderable(in, wf):
			c1 = append(c1, wf)
		default:
			c2 = append(c2, wf)
		}
	}
	if len(c1) == 0 || len(c2) == 0 {
		return nil, false
	}

	for _, wf := range c0 {
		plan.Steps = append(plan.Steps, Step{WF: wf, Reorder: ReorderNone, In: props, Out: props})
	}

	for _, g := range PartitionPrefixable(c2) {
		if err := emitPrefixGroup(plan, g, &props, opt); err != nil {
			return nil, false
		}
	}

	csets := PartitionCoverSets(c1)
	sortCoverSets(csets)
	for _, cs := range csets {
		// The heavy reorders destroyed the original segment structure the
		// C1 classification relied on; a set that is neither matched nor
		// SS-reorderable against the evolved props cannot be emitted.
		if err := emitSSCoverSet(plan, cs, &props); err != nil {
			return nil, false
		}
	}
	return plan, true
}
