package core

import (
	"testing"

	"repro/internal/attrs"
)

func testCost() CostParams {
	return CostParams{TableBlocks: 2000, TableTuples: 100000, MemBlocks: 64, BlockSize: 8192}
}

func wf(id int, pk []attrs.ID, ok ...attrs.ID) WF {
	seq := make(attrs.Seq, len(ok))
	for i, a := range ok {
		seq[i] = attrs.Asc(a)
	}
	return WF{ID: id, PK: attrs.MakeSet(pk...), OK: seq}
}

func TestFactorLattice(t *testing.T) {
	fine := wf(0, []attrs.ID{1}, 2, 3)  // PARTITION BY 1 ORDER BY 2,3
	mid := wf(1, []attrs.ID{1}, 2)      // same PK, coarser grain
	whole := wf(2, []attrs.ID{1})       // whole-partition aggregate
	other := wf(3, []attrs.ID{4}, 2)    // unrelated partition key
	finer := wf(4, []attrs.ID{1}, 2, 5) // divergent grain

	cases := []struct {
		name string
		a, b WF
		want bool
	}{
		{"coarser grain factors through finer", mid, fine, true},
		{"whole partition factors through any grain", whole, fine, true},
		{"self edge", fine, fine, true},
		{"finer does not factor through coarser", fine, mid, false},
		{"divergent grains unrelated", finer, fine, false},
		{"different partition key unrelated", other, fine, false},
	}
	for _, c := range cases {
		gamma, ok := Factor(c.a, c.b)
		if ok != c.want {
			t.Errorf("%s: Factor(%s, %s) = %v, want %v", c.name, c.a, c.b, ok, c.want)
			continue
		}
		if !ok {
			continue
		}
		// The returned γ must serve both: a stream totally ordered on γ
		// matches a and b (Theorem 1 via Definition 2).
		p := TotallyOrdered(gamma)
		if !p.Matches(c.a) || !p.Matches(c.b) {
			t.Errorf("%s: γ=%s does not match both (a=%v b=%v)", c.name, gamma, p.Matches(c.a), p.Matches(c.b))
		}
	}
}

func TestDeriveSuffix(t *testing.T) {
	fine := wf(0, []attrs.ID{1}, 2, 3)
	mid := wf(1, []attrs.ID{1}, 2)
	ws := []WF{mid}
	plan, err := CSO(ws, Unordered(), Options{})
	if err != nil {
		t.Fatal(err)
	}

	// A segment reordered for the finer function covers the coarser chain.
	gamma, ok := Factor(mid, fine)
	if !ok {
		t.Fatalf("Factor(%s, %s) should hold", mid, fine)
	}
	seg := TotallyOrdered(gamma)
	suffix, ok := DeriveSuffix(plan, seg)
	if !ok {
		t.Fatalf("DeriveSuffix over %s failed", seg)
	}
	for i, s := range suffix.Steps {
		if s.Reorder != ReorderNone {
			t.Errorf("suffix step %d has reorder %s, want none", i, s.Reorder)
		}
	}
	if err := suffix.Validate(ws, seg); err != nil {
		t.Errorf("suffix plan invalid: %v", err)
	}

	// A segment that is too coarse must be rejected.
	fws := []WF{fine}
	fplan, err := CSO(fws, Unordered(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	coarse := TotallyOrdered(attrs.Seq{attrs.Asc(1), attrs.Asc(2)})
	if _, ok := DeriveSuffix(fplan, coarse); ok {
		t.Errorf("DeriveSuffix accepted a segment too coarse for %s", fine)
	}
}

func TestLatticeNode(t *testing.T) {
	fine := wf(0, []attrs.ID{1}, 2, 3)
	plan, err := CSO([]WF{fine}, Unordered(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	node := LatticeNode(plan)
	if node == "" {
		t.Fatalf("heavy-led chain %s has empty lattice node", plan)
	}
	// Same statement → same node; a different grain → a different node.
	plan2, err := CSO([]WF{fine}, Unordered(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := LatticeNode(plan2); got != node {
		t.Errorf("same chain, different nodes: %q vs %q", got, node)
	}
	mid := wf(0, []attrs.ID{1}, 2)
	plan3, err := CSO([]WF{mid}, Unordered(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := LatticeNode(plan3); got == node {
		t.Errorf("different grains share lattice node %q", got)
	}
	if got := LatticeNode(nil); got != "" {
		t.Errorf("LatticeNode(nil) = %q, want empty", got)
	}
}

// TestRewritePlanSubsumesSS builds the case where the factor rewrite
// strictly beats CSO: on a segmented input a C1 (SS-reorderable) function
// is engulfed by a C2 neighbour's covering permutation, so evaluating the
// heavy reorder first makes the segmented sort unnecessary.
func TestRewritePlanSubsumesSS(t *testing.T) {
	in := Props{X: attrs.MakeSet(1), Y: attrs.Seq{attrs.Asc(1)}}
	wf1 := wf(0, []attrs.ID{1, 2}, 3) // X ⊆ WPK → C1
	wf2 := wf(1, []attrs.ID{2}, 1, 3) // X ⊄ WPK → C2; γ=(2,1,3) engulfs wf1
	ws := []WF{wf1, wf2}
	opt := Options{Cost: testCost()}

	base, err := CSO(ws, in, opt)
	if err != nil {
		t.Fatal(err)
	}
	_, _, baseSS := base.ReorderCounts()
	if baseSS == 0 {
		t.Fatalf("expected CSO to pay an SS here, got %s", base)
	}

	plan, err := RewritePlan(ws, in, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(ws, in); err != nil {
		t.Fatalf("rewritten plan invalid: %v", err)
	}
	_, _, ss := plan.ReorderCounts()
	if ss != 0 {
		t.Errorf("rewrite kept %d segmented sorts: %s", ss, plan)
	}
	if got, want := opt.Cost.PlanCost(plan), opt.Cost.PlanCost(base); got >= want {
		t.Errorf("rewrite cost %.1f not below CSO cost %.1f", got, want)
	}
}

// TestRewritePlanNeverWorse: across a spread of unordered-input statements
// (the SQL entry point) the rewrite must return exactly the CSO chain —
// for X=∅ inputs a heavy reorder can never subsume a C1 function, so the
// alternative is either unconstructible or costlier.
func TestRewritePlanNeverWorse(t *testing.T) {
	opt := Options{Cost: testCost()}
	suites := [][]WF{
		{wf(0, []attrs.ID{1}, 2)},
		{wf(0, []attrs.ID{1}, 2), wf(1, []attrs.ID{1}, 2, 3)},
		{wf(0, []attrs.ID{1}, 2), wf(1, []attrs.ID{3}, 4)},
		{wf(0, nil, 1), wf(1, []attrs.ID{1}), wf(2, []attrs.ID{2}, 1)},
	}
	for _, ws := range suites {
		base, err := CSO(ws, Unordered(), opt)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := RewritePlan(ws, Unordered(), opt)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := opt.Cost.PlanCost(plan), opt.Cost.PlanCost(base); got > want {
			t.Errorf("rewrite worsened %v: %.1f > %.1f", ws, got, want)
		}
		if err := plan.Validate(ws, Unordered()); err != nil {
			t.Errorf("plan for %v invalid: %v", ws, err)
		}
	}
}
