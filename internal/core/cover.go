package core

import (
	"sort"

	"repro/internal/attrs"
)

// This file implements Definition 4 (cover sets): a set of window functions
// W is a cover set when some wfc ∈ W admits a single covering permutation
// γ = →WPKc ∘ WOKc such that every wfi ∈ W has a permutation →WPKi with
// →WPKi ∘ WOKi ≤ γ. By Theorem 7, reordering once to γ lets the whole cover
// set be evaluated with no further reordering.
//
// CoveringSeq constructs γ jointly for all members (pairwise coverage is not
// enough: c = ({a,b,c},(d)) covers ({a},(b)) via (a,b,c,d) and ({b},(a)) via
// (b,a,c,d), but no single γ covers both). The construction treats the first
// |WPKc| positions of γ as slots to be filled with a permutation of WPKc
// under two kinds of constraints contributed by the members:
//
//   - prefix-set constraints: a member with |WPKi| = p ≤ |WPKc| forces the
//     set of the first p slots to be exactly WPKi (so the constraint lengths
//     must form a ⊆-chain);
//   - fixed-element constraints: a member's WOKi pins exact elements
//     (attribute + direction) at specific positions.
//
// Positions at or beyond |WPKc| are the fixed tail WOKc.
//
// Direction handling: following the paper's Section 2 simplification the
// planner generates partitioning-key slots as ascending elements; a member
// ordering element landing in a slot fixes that slot to the member's exact
// element (grouping is direction-insensitive, so any direction in a WPK slot
// is sound). Members with conflicting fixed directions simply fail to share
// a cover set — a conservative, correctness-preserving outcome.

// CoveringSeq returns a covering permutation of c that simultaneously covers
// every member of members (c itself may be included; it is handled
// implicitly). requiredPrefix, when non-empty, additionally constrains γ to
// start with exactly that element sequence — used by the C2 evaluation to
// impose θ(Pi) ≤ γ (Section 4.5.1). It returns false when no such γ exists.
func CoveringSeq(c WF, members []WF, requiredPrefix attrs.Seq) (attrs.Seq, bool) {
	pc := c.PK.Len()
	tail := c.OK
	total := pc + len(tail)

	fixed := make(map[int]attrs.Elem)
	prefixSets := map[int]attrs.Set{pc: c.PK}

	fix := func(pos int, e attrs.Elem) bool {
		if pos >= pc {
			return tail[pos-pc] == e
		}
		if !c.PK.Contains(e.Attr) {
			return false
		}
		if old, ok := fixed[pos]; ok {
			return old == e
		}
		fixed[pos] = e
		return true
	}

	for i, e := range requiredPrefix {
		if i >= total || !fix(i, e) {
			return nil, false
		}
	}

	for _, m := range members {
		if m.ID == c.ID && m.PK == c.PK && m.OK.Equal(c.OK) {
			continue
		}
		pm := m.PK.Len()
		if pm+len(m.OK) > total {
			return nil, false
		}
		if pm <= pc {
			if !m.PK.SubsetOf(c.PK) {
				return nil, false
			}
			if old, ok := prefixSets[pm]; ok {
				if old != m.PK {
					return nil, false
				}
			} else {
				prefixSets[pm] = m.PK
			}
			for k, e := range m.OK {
				if !fix(pm+k, e) {
					return nil, false
				}
			}
		} else {
			// The member's partitioning key engulfs all of WPKc plus a
			// prefix of WOKc.
			if !c.PK.SubsetOf(m.PK) {
				return nil, false
			}
			d := pm - pc
			if d > len(tail) {
				return nil, false
			}
			head := tail[:d].Attrs()
			if head.Len() != d || !head.Intersect(c.PK).Empty() {
				return nil, false
			}
			if c.PK.Union(head) != m.PK {
				return nil, false
			}
			for k, e := range m.OK {
				pos := pm + k - pc
				if pos >= len(tail) || tail[pos] != e {
					return nil, false
				}
			}
		}
	}

	// Assemble the prefix: walk the ⊆-chain of prefix-set constraints,
	// placing fixed elements and filling the rest of each ring with the
	// leftover attributes in canonical ascending order.
	lengths := make([]int, 0, len(prefixSets))
	for l := range prefixSets {
		lengths = append(lengths, l)
	}
	sort.Ints(lengths)
	prefix := make(attrs.Seq, pc)
	var (
		used    attrs.Set
		prevLen int
		prevSet attrs.Set
	)
	for _, l := range lengths {
		set := prefixSets[l]
		if set.Len() != l || !prevSet.SubsetOf(set) {
			return nil, false
		}
		ring := set.Minus(prevSet)
		// Place fixed elements of this ring.
		var placed attrs.Set
		for pos := prevLen; pos < l; pos++ {
			if e, ok := fixed[pos]; ok {
				if !ring.Contains(e.Attr) || placed.Contains(e.Attr) || used.Contains(e.Attr) {
					return nil, false
				}
				prefix[pos] = e
				placed = placed.Add(e.Attr)
			}
		}
		// Fill the free slots with the remaining ring attributes.
		remaining := ring.Minus(placed).IDs()
		ri := 0
		for pos := prevLen; pos < l; pos++ {
			if _, ok := fixed[pos]; ok {
				continue
			}
			if ri >= len(remaining) {
				return nil, false
			}
			prefix[pos] = attrs.Asc(remaining[ri])
			ri++
		}
		used = used.Union(set)
		prevLen, prevSet = l, set
	}
	return prefix.Concat(tail), true
}

// Covers reports whether c can cover m (pairwise form of Definition 4).
func Covers(c, m WF) bool {
	_, ok := CoveringSeq(c, []WF{m}, nil)
	return ok
}

// FindCovering searches ws for a covering window function and its covering
// permutation; it reports failure when ws is not a cover set. requiredPrefix
// is threaded through to CoveringSeq. Candidates are tried in a
// deterministic order: decreasing key length |WPK|+|WOK|, then increasing ID
// (the covering function necessarily has a maximal key).
func FindCovering(ws []WF, requiredPrefix attrs.Seq) (WF, attrs.Seq, bool) {
	cands := append([]WF(nil), ws...)
	sort.Slice(cands, func(i, j int) bool {
		li := cands[i].PK.Len() + len(cands[i].OK)
		lj := cands[j].PK.Len() + len(cands[j].OK)
		if li != lj {
			return li > lj
		}
		return cands[i].ID < cands[j].ID
	})
	for _, c := range cands {
		if seq, ok := CoveringSeq(c, ws, requiredPrefix); ok {
			return c, seq, true
		}
	}
	return WF{}, nil, false
}

// IsCoverSet reports whether ws satisfies Definition 4.
func IsCoverSet(ws []WF) bool {
	if len(ws) == 0 {
		return true
	}
	_, _, ok := FindCovering(ws, nil)
	return ok
}
