package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/attrs"
)

// BFO is the brute-force scheme of Section 6: it searches the space of
// evaluation orders and reordering choices (FS/HS/SS with their candidate
// keys) and returns the cheapest chain under the cost model.
//
// The search is exact over its move set and implemented as memoized dynamic
// programming over (evaluated-set, stream-property) states with one
// dominance rule: a window function matched by the current stream is always
// evaluated immediately (it costs nothing and leaves the property
// unchanged, so deferring it can never help). Candidate reorder keys at
// each step are covering permutations of greedily-maximal jointly-coverable
// subsets of the remaining functions, aligned to the current ordering —
// the keys any optimal chain would use. Ties prefer SELECT-clause order,
// matching the plans reported in the paper's Tables 4–10.
//
// The state space still grows exponentially with the number of window
// functions, which Table 11's optimization-overhead experiment exercises.
func BFO(ws []WF, in Props, opt Options) (*Plan, error) {
	ordered := append([]WF(nil), ws...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].ID < ordered[j].ID })
	if len(ordered) > 20 {
		return nil, fmt.Errorf("core: BFO limited to 20 window functions, got %d", len(ordered))
	}
	b := &bfoSearch{ws: ordered, opt: opt, memo: make(map[string]bfoResult)}
	res, ok := b.solve(0, in)
	if !ok {
		return nil, fmt.Errorf("core: BFO found no feasible plan")
	}
	plan := &Plan{Scheme: "BFO", Steps: res.steps}
	if err := plan.Validate(ws, in); err != nil {
		return nil, fmt.Errorf("core: BFO produced invalid plan: %w", err)
	}
	// The paper's BFO enumerates every feasible chain, which subsumes the
	// CSO heuristic's plan by construction. Our search's candidate keys are
	// the covering permutations of greedy cover subsets; CSO's θ(Pi)-prefix
	// construction can occasionally produce a key outside that set, so admit
	// the CSO chain explicitly — BFO must never lose to the heuristic it
	// upper-bounds. Ties keep the searched plan (SELECT-order preference).
	if cso, err := CSO(ws, in, opt); err == nil {
		if opt.Cost.PlanCost(cso) < res.cost-1e-9 {
			return &Plan{Scheme: "BFO", Steps: cso.Steps}, nil
		}
	}
	return plan, nil
}

type bfoResult struct {
	cost  float64
	steps []Step
	ok    bool
}

type bfoSearch struct {
	ws   []WF
	opt  Options
	memo map[string]bfoResult
}

func stateKey(mask uint32, p Props) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%x|%x|%v|", mask, uint64(p.X), p.Grouped)
	for _, e := range p.Y {
		fmt.Fprintf(&sb, "%d.%v.%v,", e.Attr, e.Desc, e.NullsFirst)
	}
	return sb.String()
}

func (b *bfoSearch) solve(mask uint32, props Props) (bfoResult, bool) {
	if mask == uint32(1)<<uint(len(b.ws))-1 {
		return bfoResult{ok: true}, true
	}
	key := stateKey(mask, props)
	if r, ok := b.memo[key]; ok {
		return r, r.ok
	}

	// Dominance: evaluate any matched function immediately.
	for i, wf := range b.ws {
		if mask&(1<<uint(i)) != 0 {
			continue
		}
		if props.Matches(wf) {
			sub, ok := b.solve(mask|1<<uint(i), props)
			var res bfoResult
			if ok {
				steps := append([]Step{{WF: wf, Reorder: ReorderNone, In: props, Out: props}}, sub.steps...)
				res = bfoResult{cost: sub.cost, steps: steps, ok: true}
			}
			b.memo[key] = res
			return res, res.ok
		}
	}

	best := bfoResult{}
	consider := func(s Step, next Props) {
		sub, ok := b.solve(mask|1<<uint(b.index(s.WF)), next)
		if !ok {
			return
		}
		cost := b.opt.Cost.StepCost(s) + sub.cost
		if !best.ok || cost < best.cost {
			steps := append([]Step{s}, sub.steps...)
			best = bfoResult{cost: cost, steps: steps, ok: true}
		}
	}

	for i, wf := range b.ws {
		if mask&(1<<uint(i)) != 0 {
			continue
		}
		// Candidate SS reorderings.
		if !b.opt.DisableSS {
			for _, target := range b.ssTargets(mask, wf, props) {
				alpha, beta := SSDerive(props, target)
				if props.X.Empty() && alpha.Empty() {
					continue
				}
				out := Props{X: props.X, Y: target, Grouped: props.Grouped}
				if !out.Matches(wf) {
					continue
				}
				consider(Step{
					WF: wf, Reorder: ReorderSS, SortKey: target,
					Alpha: alpha, Beta: beta, In: props, Out: out,
				}, out)
			}
		}
		// Candidate FS and HS reorderings.
		for _, gamma := range b.heavyKeys(mask, wf, props) {
			outFS := TotallyOrdered(gamma)
			if outFS.Matches(wf) {
				consider(Step{WF: wf, Reorder: ReorderFS, SortKey: gamma, In: props, Out: outFS}, outFS)
			}
			if b.opt.DisableHS || !HSReorderable(wf) {
				continue
			}
			for _, whk := range b.hashKeys(mask, wf, gamma) {
				outHS := Props{X: whk, Y: gamma}
				if !outHS.Matches(wf) {
					continue
				}
				consider(Step{WF: wf, Reorder: ReorderHS, SortKey: gamma, HashKey: whk, In: props, Out: outHS}, outHS)
			}
		}
	}
	b.memo[key] = best
	return best, best.ok
}

func (b *bfoSearch) index(wf WF) int {
	for i := range b.ws {
		if b.ws[i].ID == wf.ID {
			return i
		}
	}
	panic("core: BFO step for unknown window function")
}

// greedyCoverSubset grows the largest jointly-coverable subset of the
// remaining functions with wf as the covering candidate, in ID order.
func (b *bfoSearch) greedyCoverSubset(mask uint32, wf WF) []WF {
	set := []WF{wf}
	for i, m := range b.ws {
		if mask&(1<<uint(i)) != 0 || m.ID == wf.ID {
			continue
		}
		if _, ok := CoveringSeq(wf, append(append([]WF(nil), set...), m), nil); ok {
			set = append(set, m)
		}
	}
	return set
}

// ssTargets proposes SS target keys for wf: its own α-maximizing target and
// the alignment-maximizing covering permutation of its greedy cover subset.
func (b *bfoSearch) ssTargets(mask uint32, wf WF, props Props) []attrs.Seq {
	if !SSReorderable(props, wf) {
		return nil
	}
	var out []attrs.Seq
	if choice, ok := PlanSS(props, wf); ok {
		out = append(out, choice.Target)
	}
	subset := b.greedyCoverSubset(mask, wf)
	if len(subset) > 1 {
		if seq, ok := coveringSeqAligned(wf, subset, props.Y); ok {
			out = appendSeqUnique(out, seq)
		}
	}
	return out
}

// heavyKeys proposes FS/HS sort keys for wf: the covering permutation of its
// greedy cover subset (aligned to the current ordering, and unaligned) and
// its own written key.
func (b *bfoSearch) heavyKeys(mask uint32, wf WF, props Props) []attrs.Seq {
	var out []attrs.Seq
	subset := b.greedyCoverSubset(mask, wf)
	if seq, ok := CoveringSeq(wf, subset, nil); ok {
		out = appendSeqUnique(out, seq)
	}
	if seq, ok := coveringSeqAligned(wf, subset, props.Y); ok {
		out = appendSeqUnique(out, seq)
	}
	out = appendSeqUnique(out, wf.PKSeqWritten().Concat(wf.OK))
	return out
}

// hashKeys proposes HS hash keys: the intersection of the partitioning keys
// of the greedy cover subset (what keeps followers matched), and wf's own
// full partitioning key.
func (b *bfoSearch) hashKeys(mask uint32, wf WF, gamma attrs.Seq) []attrs.Set {
	var out []attrs.Set
	subset := b.greedyCoverSubset(mask, wf)
	inter := wf.PK
	for _, m := range subset {
		inter = inter.Intersect(m.PK)
	}
	if !inter.Empty() {
		out = append(out, inter)
	}
	if wf.PK != inter && !wf.PK.Empty() {
		out = append(out, wf.PK)
	}
	return out
}

func appendSeqUnique(seqs []attrs.Seq, s attrs.Seq) []attrs.Seq {
	if s == nil {
		return seqs
	}
	for _, t := range seqs {
		if t.Equal(s) {
			return seqs
		}
	}
	return append(seqs, s)
}
