package core

import (
	"repro/internal/attrs"
)

// This file implements Definition 5 (prefixable sets) and the θ(Pi)
// computation of Section 4.5.1: the longest sequence θ such that every
// wfj ∈ Pi has a permutation →WPKj with θ ≤ →WPKj ∘ WOKj.

// consumeState walks one window function's key while a candidate common
// prefix is being extended: partitioning attributes may be consumed in any
// order (and, being grouping attributes, under any direction), after which
// the ordering key must be consumed verbatim.
type consumeState struct {
	remPK attrs.Set
	okPos int
}

// canConsume reports whether the function in state s accepts e as the next
// common-prefix element, returning the advanced state.
func (s consumeState) canConsume(wf WF, e attrs.Elem) (consumeState, bool) {
	if !s.remPK.Empty() {
		if s.remPK.Contains(e.Attr) {
			s.remPK = s.remPK.Remove(e.Attr)
			return s, true
		}
		return s, false
	}
	if s.okPos < len(wf.OK) && wf.OK[s.okPos] == e {
		s.okPos++
		return s, true
	}
	return s, false
}

// Prefixable implements Definition 5: ws is prefixable iff the longest
// common permuted prefix is non-empty, i.e. iff Theta(ws) ≠ ε. By Theorem 8
// a prefixable set can be evaluated with one FS/HS plus SS reorderings.
func Prefixable(ws []WF) bool {
	if len(ws) == 0 {
		return true
	}
	return len(Theta(ws)) > 0
}

// FirstElems returns the elements that can begin →WPK ∘ WOK for wf: every
// partitioning attribute (ascending canonical form), or the first ordering
// element when the partitioning key is empty.
func FirstElems(wf WF) []attrs.Elem {
	if !wf.PK.Empty() {
		out := make([]attrs.Elem, 0, wf.PK.Len())
		for _, id := range wf.PK.IDs() {
			out = append(out, attrs.Asc(id))
		}
		return out
	}
	if len(wf.OK) > 0 {
		return []attrs.Elem{wf.OK[0]}
	}
	return nil
}

// Theta computes θ(ws), the longest sequence θ with θ ≤ →WPKj ∘ WOKj for
// every wfj (choosing permutations per function). Ties between equally long
// sequences are broken deterministically by preferring lexicographically
// smaller attribute IDs at each step. The search is exact: a DFS over
// candidate next elements, which is tiny for realistic attribute counts.
//
// Candidate elements at each step are drawn from the first function's
// consumable elements, since a common prefix element must be consumable by
// all functions.
func Theta(ws []WF) attrs.Seq {
	if len(ws) == 0 {
		return nil
	}
	states := make([]consumeState, len(ws))
	for i, wf := range ws {
		states[i] = consumeState{remPK: wf.PK}
	}
	var best attrs.Seq
	var cur attrs.Seq
	var dfs func()
	dfs = func() {
		if len(cur) > len(best) {
			best = cur.Clone()
		}
		for _, e := range candidateElems(ws, states, cur.Attrs()) {
			next := make([]consumeState, len(ws))
			ok := true
			for i, wf := range ws {
				ns, can := states[i].canConsume(wf, e)
				if !can {
					ok = false
					break
				}
				next[i] = ns
			}
			if !ok {
				continue
			}
			saved := states
			states = next
			cur = append(cur, e)
			dfs()
			cur = cur[:len(cur)-1]
			states = saved
		}
	}
	dfs()
	return best
}

// candidateElems lists the candidate next common-prefix elements: the union
// over all functions of the elements each can consume next, excluding
// already used attributes, deduplicated in deterministic order. Functions in
// the ordering-key phase contribute their exact next element (which carries
// a direction); functions still consuming partitioning attributes contribute
// ascending canonical elements (grouping is direction-insensitive, so such a
// function can also consume another function's directed element for the same
// attribute).
func candidateElems(ws []WF, states []consumeState, usedAttrs attrs.Set) []attrs.Elem {
	var out []attrs.Elem
	seen := make(map[attrs.Elem]bool)
	add := func(e attrs.Elem) {
		if !usedAttrs.Contains(e.Attr) && !seen[e] {
			seen[e] = true
			out = append(out, e)
		}
	}
	// Directed elements first: they are the constrained ones.
	for i, wf := range ws {
		s := states[i]
		if s.remPK.Empty() && s.okPos < len(wf.OK) {
			add(wf.OK[s.okPos])
		}
	}
	for i := range ws {
		s := states[i]
		for _, id := range s.remPK.IDs() {
			add(attrs.Asc(id))
		}
	}
	return out
}

// ThetaHashPrefix returns θ′, the maximal prefix of theta whose attributes
// are partitioning attributes of every function in ws (Section 4.5.2). The
// hash key of an HS reordering must be a subset of θ′'s attributes so that
// (a) every function in the prefixable set still sees complete partitions in
// each bucket and (b) the remaining cover sets stay SS-reorderable.
func ThetaHashPrefix(theta attrs.Seq, ws []WF) attrs.Seq {
	n := 0
	for _, e := range theta {
		inAll := true
		for _, wf := range ws {
			if !wf.PK.Contains(e.Attr) {
				inAll = false
				break
			}
		}
		if !inAll {
			break
		}
		n++
	}
	return theta[:n:n]
}
