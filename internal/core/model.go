// Package core implements the paper's primary contribution: the formal
// machinery of segmented relations and window-function matching
// (Definitions 1–3, Theorems 1–2), cover sets and prefixable sets
// (Definitions 4–5, Theorems 4–8), the FS/HS/SS cost models (Section 3.4),
// and the four plan generators evaluated in Section 6: CSO (the paper's
// cover-set based optimizer), BFO (brute force), ORCL (Oracle 8i ordering
// groups) and PSQL (PostgreSQL's naive scheme).
package core

import (
	"fmt"

	"repro/internal/attrs"
)

// WF is the optimizer's view of a window function: wf = (WPK, WOK) — a set
// of partitioning attributes and a sequence of ordering attributes
// (Section 2). ID identifies the function within its query (its position in
// the SELECT clause).
type WF struct {
	ID int
	PK attrs.Set // WPK
	OK attrs.Seq // WOK

	// PKOrder optionally records the PARTITION BY clause's written attribute
	// order. Only the naive PSQL baseline consults it (PostgreSQL 9.1 sorts
	// on the clause order verbatim, per Section 6); the other schemes choose
	// their own permutations. Empty means "ascending attribute IDs".
	PKOrder attrs.Seq
}

// PKSeqWritten returns the partitioning key as written in the query, or the
// canonical ascending sequence when no written order was recorded.
func (w WF) PKSeqWritten() attrs.Seq {
	if len(w.PKOrder) == w.PK.Len() && w.PKOrder.Attrs() == w.PK {
		return w.PKOrder
	}
	return w.PK.AscSeq()
}

// String renders the function like "wf3(PK={1,2}, OK=(4))".
func (w WF) String() string {
	return fmt.Sprintf("wf%d(PK=%s, OK=%s)", w.ID, w.PK, w.OK)
}

// Key returns →PK ∘ OK for the given PK permutation.
func (w WF) Key(pkPerm attrs.Seq) attrs.Seq { return pkPerm.Concat(w.OK) }

// permutationsLimit guards the factorial enumeration of partitioning-key
// permutations; window functions in practice have very few partitioning
// attributes (the paper's workloads peak at 4).
const permutationsLimit = 8

// Props captures the physical property of a tuple stream as a segmented
// relation R_{X,Y} (Definition 1): the stream is a sequence of segments
// whose X values are pairwise disjoint and each of which is sorted on Y.
// Grouped marks the special case R^g_{X,Y} in which every segment contains
// exactly one X-group, which makes the X attributes constant within each
// segment and therefore freely insertable anywhere into the segment's
// effective ordering.
type Props struct {
	X       attrs.Set
	Y       attrs.Seq
	Grouped bool
}

// Unordered is the property of a heap relation: R_{∅,ε}.
func Unordered() Props { return Props{} }

// TotallyOrdered is R_{∅,Y}: one segment sorted on key.
func TotallyOrdered(key attrs.Seq) Props { return Props{Y: key} }

// String renders the property like "R{1},(2,3)" or "Rg{1},(2)".
func (p Props) String() string {
	g := ""
	if p.Grouped {
		g = "g"
	}
	return fmt.Sprintf("R%s%s,%s", g, p.X, p.Y)
}

// orderedOn reports whether every segment of a stream with property p is
// necessarily sorted on target. For grouped properties the X attributes are
// constant within a segment, so they are dropped from both the target and
// the recorded ordering before the prefix test (dropping a constant
// attribute anywhere in a lexicographic ordering does not change it).
func (p Props) orderedOn(target attrs.Seq) bool {
	return p.effective(p.Y).HasPrefix(p.effective(target))
}

// effective normalizes an ordering against the property: for grouped
// streams the constant X attributes are removed.
func (p Props) effective(seq attrs.Seq) attrs.Seq {
	if p.Grouped {
		return dropAttrs(seq, p.X)
	}
	return seq
}

// SSDerive computes the α/β split a Segmented Sort to target would use on a
// stream with property p: α is the shared prefix between the (normalized)
// target and the stream's per-segment ordering, β the per-α-group sort key.
func SSDerive(p Props, target attrs.Seq) (alpha, beta attrs.Seq) {
	eff := p.effective(target)
	alpha = eff.LCP(p.effective(p.Y))
	return alpha, eff[len(alpha):]
}

// dropAttrs removes elements whose attribute is in set.
func dropAttrs(seq attrs.Seq, set attrs.Set) attrs.Seq {
	if set.Empty() {
		return seq
	}
	out := make(attrs.Seq, 0, len(seq))
	for _, e := range seq {
		if !set.Contains(e.Attr) {
			out = append(out, e)
		}
	}
	return out
}

// Matches implements Definition 2: R_{X,Y} matches wf iff X ⊆ WPK and there
// is a permutation →WPK with →WPK ∘ WOK ≤ Y (modulo the grouped relaxation).
// By Theorem 1 a matched stream supports evaluating wf with a single
// sequential scan and no reordering.
func (p Props) Matches(wf WF) bool {
	if wf.PK.Empty() && wf.OK.Empty() {
		// Degenerate function: a single window partition (the whole table)
		// with no required internal order is evaluable on any stream.
		return true
	}
	if !p.X.SubsetOf(wf.PK) {
		return false
	}
	found := false
	enumeratePKPerms(wf, func(perm attrs.Seq) bool {
		if p.orderedOn(perm.Concat(wf.OK)) {
			found = true
			return false
		}
		return true
	})
	return found
}

// MatchesAll reports whether p matches every function in ws (Definition 2's
// set form).
func (p Props) MatchesAll(ws []WF) bool {
	for _, wf := range ws {
		if !p.Matches(wf) {
			return false
		}
	}
	return true
}

// enumeratePKPerms invokes fn for each permutation of wf.PK (ascending
// canonical elements); fn returns false to stop. An empty PK yields one
// empty permutation.
func enumeratePKPerms(wf WF, fn func(attrs.Seq) bool) {
	if wf.PK.Len() > permutationsLimit {
		panic(fmt.Sprintf("core: partitioning key %s too large to enumerate", wf.PK))
	}
	if wf.PK.Empty() {
		fn(attrs.Seq{})
		return
	}
	wf.PK.Permutations(fn)
}

// HSReorderable reports whether (R, wf) is HS-reorderable: HS requires a
// non-empty hash key WHK ⊆ WPK, hence WPK ≠ ∅ (Section 3.2).
func HSReorderable(wf WF) bool { return !wf.PK.Empty() }

// SSReorderable implements Section 3.3's applicability rule: (R_{X,Y}, wf)
// is SS-reorderable iff either (1) X ≠ ∅ and X ⊆ WPK, or (2) X = ∅ and some
// permutation →WPK makes (→WPK ∘ WOK) ∧ Y non-empty. Rule (2) is what stops
// SS degenerating into a full sort of the single segment.
func SSReorderable(p Props, wf WF) bool {
	if !p.X.Empty() {
		return p.X.SubsetOf(wf.PK)
	}
	ok := false
	enumeratePKPerms(wf, func(perm attrs.Seq) bool {
		if !perm.Concat(wf.OK).LCP(p.Y).Empty() {
			ok = true
			return false
		}
		return true
	})
	return ok
}

// SSChoice is the outcome of planning a Segmented Sort: the chosen target
// key →WPK ∘ WOK, the α prefix shared with the input ordering (possibly
// empty), and the resulting output property.
type SSChoice struct {
	Target attrs.Seq // →WPK ∘ WOK; the sort goal inside each segment
	Alpha  attrs.Seq // prefix of the segment ordering exploited by SS
	Beta   attrs.Seq // suffix each α-group is sorted on (Target minus α, grouped-adjusted)
	Out    Props
}

// PlanSS chooses the Segmented Sort reordering of a stream with property p
// to match wf, maximizing |α| as Section 3.3 prescribes (footnote 2:
// maximizing the number of attributes in α minimizes the units to sort).
// It returns false when (p, wf) is not SS-reorderable or already matches.
func PlanSS(p Props, wf WF) (SSChoice, bool) {
	if !SSReorderable(p, wf) {
		return SSChoice{}, false
	}
	best := SSChoice{}
	found := false
	enumeratePKPerms(wf, func(perm attrs.Seq) bool {
		target := perm.Concat(wf.OK)
		alpha, beta := SSDerive(p, target)
		if p.X.Empty() && alpha.Empty() {
			return true // rule (2): this permutation would degenerate to FS
		}
		cand := SSChoice{
			Target: target,
			Alpha:  alpha,
			Beta:   beta,
			Out:    Props{X: p.X, Y: target, Grouped: p.Grouped},
		}
		if !found || len(cand.Alpha) > len(best.Alpha) {
			best = cand
			found = true
		}
		return true
	})
	return best, found
}
