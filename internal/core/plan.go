package core

import (
	"fmt"
	"strings"

	"repro/internal/attrs"
)

// ReorderKind identifies the tuple-reordering operator feeding one window
// function evaluation.
type ReorderKind uint8

const (
	// ReorderNone: the input already matches the function (Theorem 1).
	ReorderNone ReorderKind = iota
	// ReorderFS: Full Sort — external sort of the whole input.
	ReorderFS
	// ReorderHS: Hashed Sort — hash partition on HashKey, sort buckets.
	ReorderHS
	// ReorderSS: Segmented Sort — sort α-groups within existing segments.
	ReorderSS
)

// String names the reorder kind as in the paper's plan tables.
func (k ReorderKind) String() string {
	switch k {
	case ReorderNone:
		return "—"
	case ReorderFS:
		return "FS"
	case ReorderHS:
		return "HS"
	case ReorderSS:
		return "SS"
	default:
		return fmt.Sprintf("Reorder(%d)", uint8(k))
	}
}

// Step is one link of a window-function chain: an optional reordering
// followed by the evaluation of one window function.
type Step struct {
	WF      WF
	Reorder ReorderKind

	// SortKey is the reorder's target ordering: the full sort key for FS,
	// the per-bucket sort key for HS, and the per-segment target for SS.
	SortKey attrs.Seq
	// HashKey is the HS partitioning key WHK (ReorderHS only).
	HashKey attrs.Set
	// Alpha is the exploited input-order prefix for SS (ReorderSS only);
	// Beta is the per-α-group sort suffix.
	Alpha, Beta attrs.Seq

	// In and Out are the stream properties before and after the step
	// (window evaluation itself preserves properties — Theorem 4).
	In, Out Props
}

// Plan is a window-function chain (Section 4.1's sequential evaluation
// model) produced by one of the optimization schemes.
type Plan struct {
	Scheme string
	Steps  []Step
}

// String renders the chain in the paper's Table 4/6/8/10 notation, e.g.
// "ws --HS--> wf1 -> wf2 --SS--> wf5".
func (p *Plan) String() string {
	var b strings.Builder
	b.WriteString("ws")
	for _, s := range p.Steps {
		switch s.Reorder {
		case ReorderNone:
			fmt.Fprintf(&b, " -> wf%d", s.WF.ID)
		default:
			fmt.Fprintf(&b, " --%s--> wf%d", s.Reorder, s.WF.ID)
		}
	}
	return b.String()
}

// PaperString renders the chain with the paper's 1-based function labels
// (wf IDs are 0-based SELECT positions internally), for comparison against
// Tables 4, 6, 8 and 10.
func (p *Plan) PaperString() string {
	var b strings.Builder
	b.WriteString("ws")
	for _, s := range p.Steps {
		switch s.Reorder {
		case ReorderNone:
			fmt.Fprintf(&b, " -> wf%d", s.WF.ID+1)
		default:
			fmt.Fprintf(&b, " --%s--> wf%d", s.Reorder, s.WF.ID+1)
		}
	}
	return b.String()
}

// ReorderCounts tallies the chain's reorder operators.
func (p *Plan) ReorderCounts() (fs, hs, ss int) {
	for _, s := range p.Steps {
		switch s.Reorder {
		case ReorderFS:
			fs++
		case ReorderHS:
			hs++
		case ReorderSS:
			ss++
		}
	}
	return
}

// Validate replays the physical properties along the chain and checks that
// every window function is matched at its evaluation point, that every wf
// appears exactly once, and that each reorder is applicable. This is the
// machine-checked form of Theorems 1, 4 and 7 for a concrete plan.
func (p *Plan) Validate(ws []WF, in Props) error {
	if len(p.Steps) != len(ws) {
		return fmt.Errorf("core: plan has %d steps for %d window functions", len(p.Steps), len(ws))
	}
	seen := make(map[int]bool, len(ws))
	byID := make(map[int]WF, len(ws))
	for _, wf := range ws {
		byID[wf.ID] = wf
	}
	props := in
	for i, s := range p.Steps {
		wf, ok := byID[s.WF.ID]
		if !ok {
			return fmt.Errorf("core: step %d evaluates unknown wf%d", i, s.WF.ID)
		}
		if seen[wf.ID] {
			return fmt.Errorf("core: wf%d evaluated twice", wf.ID)
		}
		seen[wf.ID] = true
		switch s.Reorder {
		case ReorderNone:
			// no property change
		case ReorderFS:
			if len(s.SortKey) == 0 && !(wf.PK.Empty() && wf.OK.Empty()) {
				return fmt.Errorf("core: step %d FS without sort key", i)
			}
			props = TotallyOrdered(s.SortKey)
		case ReorderHS:
			if s.HashKey.Empty() {
				return fmt.Errorf("core: step %d HS without hash key", i)
			}
			if !s.HashKey.SubsetOf(wf.PK) {
				return fmt.Errorf("core: step %d HS hash key %s ⊄ WPK %s", i, s.HashKey, wf.PK)
			}
			props = Props{X: s.HashKey, Y: s.SortKey}
		case ReorderSS:
			if !SSReorderable(props, wf) {
				return fmt.Errorf("core: step %d SS not applicable on %s for %s", i, props, wf)
			}
			props = Props{X: props.X, Y: s.SortKey, Grouped: props.Grouped}
		}
		if !props.Matches(wf) {
			return fmt.Errorf("core: step %d leaves wf%d unmatched by %s (plan %s)", i, wf.ID, props, p)
		}
	}
	return nil
}

// FinalProps replays the chain and returns the output stream property.
func (p *Plan) FinalProps(in Props) Props {
	props := in
	for _, s := range p.Steps {
		switch s.Reorder {
		case ReorderFS:
			props = TotallyOrdered(s.SortKey)
		case ReorderHS:
			props = Props{X: s.HashKey, Y: s.SortKey}
		case ReorderSS:
			props = Props{X: props.X, Y: s.SortKey, Grouped: props.Grouped}
		}
	}
	return props
}
