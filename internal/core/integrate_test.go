package core_test

import (
	"testing"

	"repro/internal/attrs"
	"repro/internal/core"
	"repro/internal/paper"
)

// TestCSOAlignedAvoidsFinalSort — Section 5: with an ORDER BY matching one
// group's covering key, the aligned chain moves that group last so its FS
// output satisfies the ordering outright.
func TestCSOAlignedAvoidsFinalSort(t *testing.T) {
	ws := paper.WFs(paper.Q8())
	opt := core.Options{Cost: scaledParams(m150)} // FS everywhere: total orders
	// Default CSO ends with the item-group: final order (item, bill).
	base := mustCSO(t, ws, opt)
	baseProps := base.FinalProps(core.Unordered())

	// Ask for ORDER BY (date, time): the date/time group must move last.
	want := attrs.AscSeq(paper.Date, paper.Time)
	aligned, err := core.CSOAligned(ws, core.Unordered(), opt, want)
	if err != nil {
		t.Fatal(err)
	}
	sat := core.OrderSatisfiedPrefix(aligned.FinalProps(core.Unordered()), want)
	if sat != len(want) {
		t.Fatalf("aligned chain satisfies %d of %d order elements (plan %s, final %s)",
			sat, len(want), aligned.PaperString(), aligned.FinalProps(core.Unordered()))
	}
	if err := aligned.Validate(ws, core.Unordered()); err != nil {
		t.Fatalf("aligned plan invalid: %v", err)
	}
	// Cost must not regress.
	if opt.Cost.PlanCost(aligned) > opt.Cost.PlanCost(base)+1e-9 {
		t.Fatalf("alignment increased cost")
	}
	// And the default chain must not accidentally satisfy it already
	// (otherwise this test proves nothing).
	if core.OrderSatisfiedPrefix(baseProps, want) == len(want) {
		t.Skip("default chain already aligned; pick a different order")
	}
}

// TestCSOAlignedNoOrder — empty order returns the plain CSO chain.
func TestCSOAlignedNoOrder(t *testing.T) {
	ws := paper.WFs(paper.Q6())
	opt := core.Options{Cost: scaledParams(m50)}
	a, err := core.CSOAligned(ws, core.Unordered(), opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	b := mustCSO(t, ws, opt)
	if a.PaperString() != b.PaperString() {
		t.Errorf("no-order alignment changed the plan: %s vs %s", a, b)
	}
}

// TestCSOAlignedC1Reshuffle — with C2 empty, the cover sets of C1 reshuffle
// (the paper's "or the cover sets of C1 if C2 is empty").
func TestCSOAlignedC1Reshuffle(t *testing.T) {
	// Input totally ordered on (item): both functions are SS-reorderable.
	in := core.TotallyOrdered(attrs.AscSeq(paper.Item))
	ws := []core.WF{
		{ID: 0, PK: attrs.MakeSet(paper.Item), OK: attrs.AscSeq(paper.Date)},
		{ID: 1, PK: attrs.MakeSet(paper.Item), OK: attrs.AscSeq(paper.Bill)},
	}
	opt := core.Options{Cost: scaledParams(m50)}
	want := attrs.AscSeq(paper.Item, paper.Date)
	aligned, err := core.CSOAligned(ws, in, opt, want)
	if err != nil {
		t.Fatal(err)
	}
	if sat := core.OrderSatisfiedPrefix(aligned.FinalProps(in), want); sat != 2 {
		t.Fatalf("C1 reshuffle satisfied %d of 2 (plan %s)", sat, aligned.PaperString())
	}
	if err := aligned.Validate(ws, in); err != nil {
		t.Fatalf("invalid: %v", err)
	}
}

// TestOrderSatisfiedPrefix basics.
func TestOrderSatisfiedPrefix(t *testing.T) {
	key := attrs.AscSeq(1, 2, 3)
	if got := core.OrderSatisfiedPrefix(core.TotallyOrdered(key), attrs.AscSeq(1, 2)); got != 2 {
		t.Errorf("full prefix: %d", got)
	}
	if got := core.OrderSatisfiedPrefix(core.TotallyOrdered(key), attrs.AscSeq(2)); got != 0 {
		t.Errorf("non-prefix: %d", got)
	}
	segmented := core.Props{X: attrs.MakeSet(1), Y: key}
	if got := core.OrderSatisfiedPrefix(segmented, attrs.AscSeq(1)); got != 0 {
		t.Errorf("segmented stream has no global order: %d", got)
	}
	if got := core.OrderSatisfiedPrefix(core.TotallyOrdered(key), nil); got != 0 {
		t.Errorf("empty order: %d", got)
	}
}
