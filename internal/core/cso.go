package core

import (
	"fmt"
	"sort"

	"repro/internal/attrs"
)

// Options configures plan generation.
type Options struct {
	// Cost supplies the statistics for cost-based FS/HS selection.
	Cost CostParams
	// DisableHS forces FS for all heavy reorders (the CSO(v1) variant of
	// Section 6.2); DisableSS disables Segmented Sort (CSO(v2)).
	DisableHS bool
	DisableSS bool
}

// CSO generates a window-function chain with the cover-set based
// optimization scheme of Section 4:
//
//	C0 — functions matched by the input relation: evaluated first, no
//	     reordering (Corollary 1);
//	C1 — SS-reorderable functions: partitioned into a minimum number of
//	     cover sets, one SS per cover set (Section 4.4, Theorem 7);
//	C2 — the rest: partitioned into a minimum number of prefixable subsets
//	     Pi (Theorem 8), each evaluated with exactly one FS/HS (for its
//	     first cover set, keyed by a θ(Pi)-prefixed covering permutation)
//	     plus one SS per remaining cover set (Section 4.5).
func CSO(ws []WF, in Props, opt Options) (*Plan, error) {
	plan := &Plan{Scheme: "CSO"}
	props := in

	var c0, c1, c2 []WF
	ordered := append([]WF(nil), ws...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].ID < ordered[j].ID })
	for _, wf := range ordered {
		switch {
		case in.Matches(wf):
			c0 = append(c0, wf)
		case !opt.DisableSS && SSReorderable(in, wf):
			c1 = append(c1, wf)
		default:
			c2 = append(c2, wf)
		}
	}

	for _, wf := range c0 {
		plan.Steps = append(plan.Steps, Step{WF: wf, Reorder: ReorderNone, In: props, Out: props})
	}

	if len(c1) > 0 {
		csets := PartitionCoverSets(c1)
		sortCoverSets(csets)
		for _, cs := range csets {
			if err := emitSSCoverSet(plan, cs, &props); err != nil {
				return nil, err
			}
		}
	}

	if len(c2) > 0 {
		groups := PartitionPrefixable(c2)
		for _, g := range groups {
			if err := emitPrefixGroup(plan, g, &props, opt); err != nil {
				return nil, err
			}
		}
	}

	if err := plan.Validate(ws, in); err != nil {
		return nil, fmt.Errorf("core: CSO produced invalid plan: %w", err)
	}
	return plan, nil
}

// sortCoverSets orders cover sets for evaluation: longest covering
// permutation first (its reorder gives downstream Segmented Sorts the
// longest shared α prefixes), then larger sets, then lower covering ID.
func sortCoverSets(csets []CoverSet) {
	sort.SliceStable(csets, func(i, j int) bool {
		if len(csets[i].Gamma) != len(csets[j].Gamma) {
			return len(csets[i].Gamma) > len(csets[j].Gamma)
		}
		if csets[i].Size() != csets[j].Size() {
			return csets[i].Size() > csets[j].Size()
		}
		return csets[i].Covering.ID < csets[j].Covering.ID
	})
}

// coveringSeqAligned finds a covering permutation of the cover set that
// shares the longest possible literal prefix with y, maximizing the α a
// Segmented Sort can exploit.
func coveringSeqAligned(c WF, members []WF, y attrs.Seq) (attrs.Seq, bool) {
	limit := c.PK.Len() + len(c.OK)
	if len(y) < limit {
		limit = len(y)
	}
	for k := limit; k >= 0; k-- {
		if seq, ok := CoveringSeq(c, members, y[:k]); ok {
			return seq, true
		}
	}
	return nil, false
}

// emitSSCoverSet appends one cover set evaluated via a single Segmented Sort
// on its covering function (Theorem 7), or with no reorder at all when the
// current stream already matches every member.
func emitSSCoverSet(plan *Plan, cs CoverSet, props *Props) error {
	matchedAll := true
	for _, m := range cs.Members {
		if !props.Matches(m) {
			matchedAll = false
			break
		}
	}
	if matchedAll {
		for _, m := range cs.Members {
			plan.Steps = append(plan.Steps, Step{WF: m, Reorder: ReorderNone, In: *props, Out: *props})
		}
		return nil
	}
	target, ok := coveringSeqAligned(cs.Covering, cs.Members, props.Y)
	if !ok {
		return fmt.Errorf("core: no covering permutation for cover set led by %s", cs.Covering)
	}
	alpha, beta := SSDerive(*props, target)
	if props.X.Empty() && alpha.Empty() {
		return fmt.Errorf("core: segmented sort for %s would degenerate to a full sort", cs.Covering)
	}
	out := Props{X: props.X, Y: target, Grouped: props.Grouped}
	plan.Steps = append(plan.Steps, Step{
		WF: cs.Covering, Reorder: ReorderSS,
		SortKey: target, Alpha: alpha, Beta: beta,
		In: *props, Out: out,
	})
	*props = out
	for _, m := range cs.Members[1:] {
		plan.Steps = append(plan.Steps, Step{WF: m, Reorder: ReorderNone, In: out, Out: out})
	}
	return nil
}

// emitPrefixGroup appends one prefixable subset Pi: its leading cover set is
// reordered with FS or HS (cost-based, Sections 4.5.1–4.5.2), the remaining
// cover sets with SS.
func emitPrefixGroup(plan *Plan, g PrefixGroup, props *Props, opt Options) error {
	theta := Theta(g.Members)
	csets := PartitionCoverSets(g.Members)
	sortCoverSets(csets)

	if opt.DisableSS {
		// CSO(v2): without Segmented Sort every cover set pays its own
		// FS/HS (the Section 6.2 ablation variant).
		for _, cs := range csets {
			gamma, ok := CoveringSeq(cs.Covering, cs.Members, nil)
			if !ok {
				return fmt.Errorf("core: cover set led by %s has no covering permutation", cs.Covering)
			}
			whk := ThetaHashPrefix(Theta(cs.Members), cs.Members).Attrs()
			emitHeavy(plan, cs, gamma, whk.IDs(), props, opt)
		}
		return nil
	}

	// Choose the leader: the first cover set (by the same preference order)
	// whose covering permutation admits a non-empty θ prefix — required so
	// the remaining cover sets stay SS-reorderable (footnote 5). With a
	// single cover set any leader works.
	leadIdx := -1
	var leadGamma attrs.Seq
	for i, cs := range csets {
		gamma, ok := thetaPrefixedGamma(cs, theta, len(csets) > 1)
		if ok {
			leadIdx, leadGamma = i, gamma
			break
		}
	}
	if leadIdx < 0 {
		// No cover set can host the θ prefix: give every cover set its own
		// heavy reorder (correct, if suboptimal).
		for _, cs := range csets {
			gamma, ok := CoveringSeq(cs.Covering, cs.Members, nil)
			if !ok {
				return fmt.Errorf("core: cover set led by %s has no covering permutation", cs.Covering)
			}
			emitHeavy(plan, cs, gamma, nil, props, opt)
		}
		return nil
	}

	lead := csets[leadIdx]
	rest := make([]CoverSet, 0, len(csets)-1)
	rest = append(rest, csets[:leadIdx]...)
	rest = append(rest, csets[leadIdx+1:]...)

	// HS applicability (Section 4.5.2, strengthened Pi-wide): the hash key
	// must be grouping-compatible with every member of Pi so that later
	// cover sets remain SS-reorderable and their members matched.
	var whk attrs.Set
	if !opt.DisableHS {
		thetaPrime := ThetaHashPrefix(theta, g.Members)
		whk = thetaPrime.Attrs()
	}
	emitHeavy(plan, lead, leadGamma, whk.IDs(), props, opt)

	for _, cs := range rest {
		if err := emitSSCoverSet(plan, cs, props); err != nil {
			return err
		}
	}
	return nil
}

// thetaPrefixedGamma builds the leader's covering permutation γ with the
// longest workable prefix of θ; when required (other cover sets follow) the
// prefix must be non-empty.
func thetaPrefixedGamma(cs CoverSet, theta attrs.Seq, required bool) (attrs.Seq, bool) {
	for k := len(theta); k >= 0; k-- {
		if required && k == 0 {
			return nil, false
		}
		if gamma, ok := CoveringSeq(cs.Covering, cs.Members, theta[:k]); ok {
			return gamma, true
		}
	}
	if required {
		return nil, false
	}
	return nil, false
}

// emitHeavy appends one cover set reordered with FS or HS, choosing
// cost-based between them when both apply.
func emitHeavy(plan *Plan, cs CoverSet, gamma attrs.Seq, whkIDs []attrs.ID, props *Props, opt Options) {
	whk := attrs.MakeSet(whkIDs...)
	useHS := false
	if !opt.DisableHS && !whk.Empty() && HSReorderable(cs.Covering) && whk.SubsetOf(cs.Covering.PK) {
		useHS = opt.Cost.HSCost(whk) < opt.Cost.FSCost()
	}
	var out Props
	var step Step
	if useHS {
		out = Props{X: whk, Y: gamma}
		step = Step{WF: cs.Covering, Reorder: ReorderHS, SortKey: gamma, HashKey: whk, In: *props, Out: out}
	} else {
		out = TotallyOrdered(gamma)
		step = Step{WF: cs.Covering, Reorder: ReorderFS, SortKey: gamma, In: *props, Out: out}
	}
	plan.Steps = append(plan.Steps, step)
	*props = out
	for _, m := range cs.Members[1:] {
		plan.Steps = append(plan.Steps, Step{WF: m, Reorder: ReorderNone, In: out, Out: out})
	}
}
