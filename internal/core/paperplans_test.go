package core_test

import (
	"testing"

	"repro/internal/attrs"
	"repro/internal/core"
	"repro/internal/paper"
)

// Golden tests for the execution plans of Section 6.2 (Tables 4, 6, 8, 10).
// The cost parameters are this repository's scaled bench configuration:
// an ≈8000-block (64 MB) web_sales with the paper's cardinality ratios, and
// unit reorder memories chosen to land in the same B(R)/M regimes as the
// paper's 50 MB / 75 MB / 150 MB points (HS cheaper below the single-pass
// threshold, FS cheaper at it). Deviations from the published tables are
// deliberate and documented in EXPERIMENTS.md: evaluation order among
// cost-equal cover sets / prefixable groups is a degree of freedom the paper
// itself defers (Section 4.6).
const (
	m50  = 48 // blocks; FS needs a materialized merge pass
	m75  = 56 // blocks; FS still multi-pass
	m150 = 96 // blocks; FS runs fit a single streaming merge
)

// scaledParams mirrors internal/bench's default dataset statistics.
func scaledParams(memBlocks int64) core.CostParams {
	distinct := map[attrs.Set]int64{
		attrs.MakeSet(paper.Item):      850,
		attrs.MakeSet(paper.Bill):      8300,
		attrs.MakeSet(paper.Date):      60,
		attrs.MakeSet(paper.Time):      357,
		attrs.MakeSet(paper.Ship):      60,
		attrs.MakeSet(paper.Warehouse): 16,
		attrs.MakeSet(paper.Quantity):  100,
	}
	return core.CostParams{
		TableBlocks: 8000,
		TableTuples: 300_000,
		MemBlocks:   memBlocks,
		BlockSize:   8192,
		Distinct: func(set attrs.Set) int64 {
			if d, ok := distinct[set]; ok {
				return d
			}
			prod := int64(1)
			for _, id := range set.IDs() {
				if d, ok := distinct[attrs.MakeSet(id)]; ok {
					prod *= d
				} else {
					prod *= 100
				}
				if prod >= 300_000 {
					return 300_000
				}
			}
			return prod
		},
	}
}

func mustCSO(t *testing.T, ws []core.WF, opt core.Options) *core.Plan {
	t.Helper()
	plan, err := core.CSO(ws, core.Unordered(), opt)
	if err != nil {
		t.Fatalf("CSO: %v", err)
	}
	return plan
}

func checkPlan(t *testing.T, name string, plan *core.Plan, want string) {
	t.Helper()
	if got := plan.PaperString(); got != want {
		t.Errorf("%s:\n got  %s\n want %s", name, got, want)
	}
}

func checkCounts(t *testing.T, name string, plan *core.Plan, fs, hs, ss int) {
	t.Helper()
	gfs, ghs, gss := plan.ReorderCounts()
	if gfs != fs || ghs != hs || gss != ss {
		t.Errorf("%s: reorder counts FS=%d HS=%d SS=%d, want FS=%d HS=%d SS=%d (plan %s)",
			name, gfs, ghs, gss, fs, hs, ss, plan.PaperString())
	}
}

// TestQ6Plans reproduces Table 4.
func TestQ6Plans(t *testing.T) {
	ws := paper.WFs(paper.Q6())

	// BFO/CSO: HS at 50/75, FS at 150, SS for wf2 throughout.
	checkPlan(t, "CSO@50", mustCSO(t, ws, core.Options{Cost: scaledParams(m50)}),
		"ws --HS--> wf1 --SS--> wf2")
	checkPlan(t, "CSO@75", mustCSO(t, ws, core.Options{Cost: scaledParams(m75)}),
		"ws --HS--> wf1 --SS--> wf2")
	checkPlan(t, "CSO@150", mustCSO(t, ws, core.Options{Cost: scaledParams(m150)}),
		"ws --FS--> wf1 --SS--> wf2")

	// CSO(v1): HS disabled.
	checkPlan(t, "CSOv1@50", mustCSO(t, ws, core.Options{Cost: scaledParams(m50), DisableHS: true}),
		"ws --FS--> wf1 --SS--> wf2")

	// CSO(v2): SS disabled.
	checkPlan(t, "CSOv2@50", mustCSO(t, ws, core.Options{Cost: scaledParams(m50), DisableSS: true}),
		"ws --HS--> wf1 --HS--> wf2")
	checkPlan(t, "CSOv2@150", mustCSO(t, ws, core.Options{Cost: scaledParams(m150), DisableSS: true}),
		"ws --FS--> wf1 --FS--> wf2")

	// ORCL and PSQL: two full sorts.
	orcl, err := core.ORCL(ws, core.Unordered(), core.Options{Cost: scaledParams(m50)})
	if err != nil {
		t.Fatalf("ORCL: %v", err)
	}
	checkPlan(t, "ORCL", orcl, "ws --FS--> wf1 --FS--> wf2")
	psql, err := core.PSQL(ws, core.Unordered())
	if err != nil {
		t.Fatalf("PSQL: %v", err)
	}
	checkPlan(t, "PSQL", psql, "ws --FS--> wf1 --FS--> wf2")

	// BFO agrees with CSO on Q6 (Table 4's BFO/CSO row).
	bfo, err := core.BFO(ws, core.Unordered(), core.Options{Cost: scaledParams(m50)})
	if err != nil {
		t.Fatalf("BFO: %v", err)
	}
	checkCounts(t, "BFO@50", bfo, 0, 1, 1)
}

// TestQ7Plans reproduces Table 6.
func TestQ7Plans(t *testing.T) {
	ws := paper.WFs(paper.Q7())

	checkPlan(t, "CSO@50", mustCSO(t, ws, core.Options{Cost: scaledParams(m50)}),
		"ws --FS--> wf5 -> wf4 -> wf3 --HS--> wf1 -> wf2")
	checkPlan(t, "CSO@150", mustCSO(t, ws, core.Options{Cost: scaledParams(m150)}),
		"ws --FS--> wf5 -> wf4 -> wf3 --FS--> wf1 -> wf2")

	orcl, err := core.ORCL(ws, core.Unordered(), core.Options{Cost: scaledParams(m50)})
	if err != nil {
		t.Fatalf("ORCL: %v", err)
	}
	checkPlan(t, "ORCL", orcl, "ws --FS--> wf5 -> wf4 -> wf3 --FS--> wf1 -> wf2")

	psql, err := core.PSQL(ws, core.Unordered())
	if err != nil {
		t.Fatalf("PSQL: %v", err)
	}
	checkPlan(t, "PSQL", psql, "ws --FS--> wf1 --FS--> wf2 --FS--> wf3 --FS--> wf4 --FS--> wf5")

	// BFO @50: the symmetric optimum found first in SELECT order
	// (Table 6's BFO row: HS for wf1's group, FS for wf5's).
	bfo, err := core.BFO(ws, core.Unordered(), core.Options{Cost: scaledParams(m50)})
	if err != nil {
		t.Fatalf("BFO: %v", err)
	}
	kinds := reorderByWF(bfo)
	if kinds[0] != core.ReorderHS || kinds[4] != core.ReorderFS {
		t.Errorf("BFO@50: want HS on wf1 and FS on wf5, got %s", bfo.PaperString())
	}
	checkCounts(t, "BFO@50", bfo, 1, 1, 0)
	bfo150, err := core.BFO(ws, core.Unordered(), core.Options{Cost: scaledParams(m150)})
	if err != nil {
		t.Fatalf("BFO@150: %v", err)
	}
	checkCounts(t, "BFO@150", bfo150, 2, 0, 0)
}

// TestQ8Plans reproduces Table 8.
func TestQ8Plans(t *testing.T) {
	ws := paper.WFs(paper.Q8())

	checkPlan(t, "CSO@50", mustCSO(t, ws, core.Options{Cost: scaledParams(m50)}),
		"ws --HS--> wf5 --SS--> wf1 -> wf2 --HS--> wf4 -> wf3")
	checkPlan(t, "CSO@150", mustCSO(t, ws, core.Options{Cost: scaledParams(m150)}),
		"ws --FS--> wf5 --SS--> wf1 -> wf2 --FS--> wf4 -> wf3")

	// ORCL needs three full sorts (it cannot see the SS opportunity);
	// group membership may differ from Oracle's published grouping but the
	// count — what Fig. 7 measures — matches.
	orcl, err := core.ORCL(ws, core.Unordered(), core.Options{Cost: scaledParams(m50)})
	if err != nil {
		t.Fatalf("ORCL: %v", err)
	}
	checkCounts(t, "ORCL", orcl, 3, 0, 0)

	psql, err := core.PSQL(ws, core.Unordered())
	if err != nil {
		t.Fatalf("PSQL: %v", err)
	}
	checkCounts(t, "PSQL", psql, 5, 0, 0)

	bfo, err := core.BFO(ws, core.Unordered(), core.Options{Cost: scaledParams(m50)})
	if err != nil {
		t.Fatalf("BFO: %v", err)
	}
	checkCounts(t, "BFO@50", bfo, 0, 2, 1)
}

// TestQ9Plans reproduces Table 10. The prefixable groups, cover sets and
// reorder-operator multiset match the paper's CSO plan exactly; the
// evaluation order of the (cost-equal) groups is a documented degree of
// freedom, so the chain below lists item's group first where the paper
// lists it last.
func TestQ9Plans(t *testing.T) {
	ws := paper.WFs(paper.Q9())

	checkPlan(t, "CSO@50", mustCSO(t, ws, core.Options{Cost: scaledParams(m50)}),
		"ws --FS--> wf2 -> wf3 --SS--> wf1 --SS--> wf4 --FS--> wf7 -> wf8 --HS--> wf5 --SS--> wf6")
	checkPlan(t, "CSO@150", mustCSO(t, ws, core.Options{Cost: scaledParams(m150)}),
		"ws --FS--> wf2 -> wf3 --SS--> wf1 --SS--> wf4 --FS--> wf7 -> wf8 --FS--> wf5 --SS--> wf6")
	checkCounts(t, "CSO@50", mustCSO(t, ws, core.Options{Cost: scaledParams(m50)}), 2, 1, 3)

	// PSQL avoids exactly one sort (wf3 is matched after wf2's, Section 6.2).
	psql, err := core.PSQL(ws, core.Unordered())
	if err != nil {
		t.Fatalf("PSQL: %v", err)
	}
	checkCounts(t, "PSQL", psql, 7, 0, 0)
	kinds := reorderByWF(psql)
	if kinds[2] != core.ReorderNone {
		t.Errorf("PSQL: wf3 should be matched by wf2's sort, got %s", psql.PaperString())
	}

	// Our ORCL's greedy finds 6 ordering groups (Oracle's own grouping
	// produced 7; ours is a slightly stronger baseline — see EXPERIMENTS.md).
	orcl, err := core.ORCL(ws, core.Unordered(), core.Options{Cost: scaledParams(m50)})
	if err != nil {
		t.Fatalf("ORCL: %v", err)
	}
	checkCounts(t, "ORCL", orcl, 6, 0, 0)

	bfo, err := core.BFO(ws, core.Unordered(), core.Options{Cost: scaledParams(m50)})
	if err != nil {
		t.Fatalf("BFO: %v", err)
	}
	checkCounts(t, "BFO@50", bfo, 2, 1, 3)
	cso := mustCSO(t, ws, core.Options{Cost: scaledParams(m50)})
	p := scaledParams(m50)
	if p.PlanCost(bfo) > p.PlanCost(cso)+1e-9 {
		t.Errorf("BFO cost %.1f exceeds CSO cost %.1f", p.PlanCost(bfo), p.PlanCost(cso))
	}
}

// reorderByWF maps wf ID -> reorder kind.
func reorderByWF(plan *core.Plan) map[int]core.ReorderKind {
	out := make(map[int]core.ReorderKind)
	for _, s := range plan.Steps {
		out[s.WF.ID] = s.Reorder
	}
	return out
}
