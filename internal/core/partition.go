package core

import (
	"sort"

	"repro/internal/attrs"
)

// This file implements the two partitioning problems of Section 4, both
// NP-hard (Theorems 6 and 9):
//
//   - partitioning a set of window functions into a minimum number of cover
//     sets (Section 4.4; reduction from minimum vertex coloring), solved
//     with a greedy maximum-cover heuristic (and a DSATUR-based alternative
//     used for cross-validation and the partition-heuristic ablation);
//   - partitioning C2 into a minimum number of prefixable subsets
//     (Section 4.5; reduction from minimum set cover), solved exactly for
//     the small attribute counts of real queries via branch-and-bound set
//     cover — matching the paper's observation that its greedy heuristic
//     found the optimal partitioning for all tested queries — with the
//     O(|W|²) greedy as fallback for large inputs.

// CoverSet is an ordered cover set: Covering first (the paper's wf* — the
// first function evaluated, whose reordering serves the whole set), then the
// remaining members in decreasing key length (ties by ascending ID),
// mirroring the member order of the paper's plan tables.
type CoverSet struct {
	Covering WF
	Members  []WF // includes Covering, in evaluation order
	// Gamma is a covering permutation (with no external prefix constraint);
	// planners may recompute it with θ-prefix or alignment constraints.
	Gamma attrs.Seq
}

// Size returns the number of member functions.
func (c CoverSet) Size() int { return len(c.Members) }

func orderCoverSet(covering WF, members []WF) CoverSet {
	rest := make([]WF, 0, len(members)-1)
	for _, m := range members {
		if m.ID != covering.ID {
			rest = append(rest, m)
		}
	}
	sort.Slice(rest, func(i, j int) bool {
		li := rest[i].PK.Len() + len(rest[i].OK)
		lj := rest[j].PK.Len() + len(rest[j].OK)
		if li != lj {
			return li > lj
		}
		return rest[i].ID < rest[j].ID
	})
	ordered := append([]WF{covering}, rest...)
	gamma, _ := CoveringSeq(covering, members, nil)
	return CoverSet{Covering: covering, Members: ordered, Gamma: gamma}
}

// PartitionCoverSets partitions ws into cover sets greedily: repeatedly
// choose the candidate covering function whose maximal jointly-coverable
// subset of the remaining functions (found by branch-and-bound over the
// joint covering test) is largest. Ties prefer the lower covering ID
// (SELECT-clause order). The result is returned in selection order.
func PartitionCoverSets(ws []WF) []CoverSet {
	remaining := append([]WF(nil), ws...)
	sort.Slice(remaining, func(i, j int) bool { return remaining[i].ID < remaining[j].ID })
	var out []CoverSet
	for len(remaining) > 0 {
		var (
			bestC   WF
			bestSet []WF
		)
		for _, c := range remaining {
			set := maxCoverSubset(c, remaining)
			better := false
			switch {
			case bestSet == nil:
				better = true
			case len(set) > len(bestSet):
				better = true
			case len(set) == len(bestSet) && c.ID < bestC.ID:
				// SELECT-clause order tie-break, matching the groupings the
				// paper reports for CSO on Q6–Q9.
				better = true
			}
			if better {
				bestC, bestSet = c, set
			}
		}
		out = append(out, orderCoverSet(bestC, bestSet))
		taken := make(map[int]bool, len(bestSet))
		for _, m := range bestSet {
			taken[m.ID] = true
		}
		next := remaining[:0]
		for _, m := range remaining {
			if !taken[m.ID] {
				next = append(next, m)
			}
		}
		remaining = next
	}
	return out
}

// maxCoverSubset finds a maximum subset of remaining (which includes c)
// jointly coverable with c as the covering function. Branch and bound over
// include/exclude decisions in ID order; the first maximal subset found is
// kept on ties, which preserves SELECT-order preference. Greedy ID-order
// insertion is not enough: on Q7, greedily admitting wf2 into wf5's set
// blocks the larger {wf5, wf4, wf3}.
func maxCoverSubset(c WF, remaining []WF) []WF {
	others := make([]WF, 0, len(remaining)-1)
	for _, m := range remaining {
		if m.ID != c.ID {
			others = append(others, m)
		}
	}
	best := []WF{c}
	cur := []WF{c}
	var dfs func(i int)
	dfs = func(i int) {
		if len(cur)+len(others)-i <= len(best) {
			return // cannot beat the incumbent
		}
		if i == len(others) {
			if len(cur) > len(best) {
				best = append([]WF(nil), cur...)
			}
			return
		}
		trial := append(append([]WF(nil), cur...), others[i])
		if _, ok := CoveringSeq(c, trial, nil); ok {
			cur = append(cur, others[i])
			dfs(i + 1)
			cur = cur[:len(cur)-1]
		}
		dfs(i + 1)
	}
	dfs(0)
	return best
}

// PartitionCoverSetsDSATUR is the Brélaz-style alternative mentioned in
// Section 4.4: color the pairwise-incompatibility graph with DSATUR, then
// validate each color class with the joint covering test, splitting classes
// that pairwise compatibility wrongly merged. Used by tests and the
// partition-heuristic ablation.
func PartitionCoverSetsDSATUR(ws []WF) []CoverSet {
	n := len(ws)
	if n == 0 {
		return nil
	}
	// Conflict edge: neither function can cover the other.
	conflict := make([][]bool, n)
	for i := range conflict {
		conflict[i] = make([]bool, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if !Covers(ws[i], ws[j]) && !Covers(ws[j], ws[i]) {
				conflict[i][j], conflict[j][i] = true, true
			}
		}
	}
	color := make([]int, n)
	for i := range color {
		color[i] = -1
	}
	degree := make([]int, n)
	for i := range conflict {
		for j := range conflict[i] {
			if conflict[i][j] {
				degree[i]++
			}
		}
	}
	colors := 0
	for done := 0; done < n; done++ {
		// Pick the uncolored vertex with maximum saturation, then degree.
		best, bestSat := -1, -1
		for v := 0; v < n; v++ {
			if color[v] >= 0 {
				continue
			}
			satSet := map[int]bool{}
			for u := 0; u < n; u++ {
				if conflict[v][u] && color[u] >= 0 {
					satSet[color[u]] = true
				}
			}
			sat := len(satSet)
			if sat > bestSat || (sat == bestSat && (best < 0 || degree[v] > degree[best])) {
				best, bestSat = v, sat
			}
		}
		used := map[int]bool{}
		for u := 0; u < n; u++ {
			if conflict[best][u] && color[u] >= 0 {
				used[color[u]] = true
			}
		}
		c := 0
		for used[c] {
			c++
		}
		color[best] = c
		if c+1 > colors {
			colors = c + 1
		}
	}
	var out []CoverSet
	for c := 0; c < colors; c++ {
		var class []WF
		for v := 0; v < n; v++ {
			if color[v] == c {
				class = append(class, ws[v])
			}
		}
		// Pairwise compatibility does not imply a joint covering
		// permutation; split the class greedily where needed.
		out = append(out, PartitionCoverSets(class)...)
	}
	return out
}

// prefCand is a candidate prefixable group: the shared first element and the
// indices (into the input slice) of the functions that can start with it.
type prefCand struct {
	e       attrs.Elem
	members []int
}

// PrefixGroup is one prefixable subset Pi of C2 with the attribute element
// whose shareability formed it.
type PrefixGroup struct {
	First   attrs.Elem
	Members []WF
}

// PartitionPrefixable partitions ws into a minimum number of prefixable
// subsets (Definition 5). Feasibility of a group keyed by element e: every
// member must be able to start its key with e — i.e. e.Attr ∈ WPK (any
// direction: a partitioning slot groups under any direction), or WPK = ∅
// and WOK begins with exactly e. Minimization is exact set cover over the
// candidate first-elements (branch and bound; candidate counts are tiny),
// falling back to the paper's O(|W|²) greedy beyond 20 functions. Functions
// covered by several chosen groups are assigned to minimize the total number
// of cover sets (the quantity the next stage pays for), ties keeping the
// earlier group. Groups are returned largest-first (ties by ascending
// attribute then direction), which is also their evaluation order.
func PartitionPrefixable(ws []WF) []PrefixGroup {
	if len(ws) == 0 {
		return nil
	}
	accepts := func(wf WF, e attrs.Elem) bool {
		if wf.PK.Contains(e.Attr) {
			return true
		}
		return wf.PK.Empty() && len(wf.OK) > 0 && wf.OK[0] == e
	}
	// Candidate elements: every partitioning attribute (ascending) and every
	// WPK-less function's first ordering element.
	elemSet := map[attrs.Elem]bool{}
	for _, wf := range ws {
		for _, e := range FirstElems(wf) {
			elemSet[e] = true
		}
	}
	var cands []prefCand
	for e := range elemSet {
		var members []int
		for i, wf := range ws {
			if accepts(wf, e) {
				members = append(members, i)
			}
		}
		if len(members) > 0 {
			cands = append(cands, prefCand{e: e, members: members})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if len(cands[i].members) != len(cands[j].members) {
			return len(cands[i].members) > len(cands[j].members)
		}
		if cands[i].e.Attr != cands[j].e.Attr {
			return cands[i].e.Attr < cands[j].e.Attr
		}
		return !cands[i].e.Desc && cands[j].e.Desc
	})

	var chosen []int
	if len(ws) <= 20 {
		chosen = exactSetCover(len(ws), cands)
	}
	if chosen == nil {
		chosen = greedySetCover(len(ws), cands)
	}
	// Keep the candidate preference order (largest first) so that the
	// default assignment of multiply-covered functions is deterministic.
	sort.Ints(chosen)

	// Assign multiply-covered functions to minimize total cover sets.
	assign := make([]int, len(ws)) // ws index -> position in chosen
	options := make([][]int, len(ws))
	for pos, ci := range chosen {
		for _, m := range cands[ci].members {
			options[m] = append(options[m], pos)
		}
	}
	for i := range ws {
		if len(options[i]) == 0 {
			// Unreachable if cover succeeded; keep a safe default.
			assign[i] = 0
			continue
		}
		assign[i] = options[i][0]
	}
	countCoverSets := func() int {
		total := 0
		for pos := range chosen {
			var group []WF
			for i := range ws {
				if assign[i] == pos {
					group = append(group, ws[i])
				}
			}
			if len(group) > 0 {
				total += len(PartitionCoverSets(group))
			}
		}
		return total
	}
	// Local improvement over the (few) ambiguous assignments.
	for i := range ws {
		if len(options[i]) < 2 {
			continue
		}
		best, bestCost := assign[i], countCoverSets()
		for _, pos := range options[i][1:] {
			assign[i] = pos
			if c := countCoverSets(); c < bestCost {
				best, bestCost = pos, c
			}
		}
		assign[i] = best
	}

	var out []PrefixGroup
	for pos, ci := range chosen {
		g := PrefixGroup{First: cands[ci].e}
		for i := range ws {
			if assign[i] == pos {
				g.Members = append(g.Members, ws[i])
			}
		}
		if len(g.Members) > 0 {
			out = append(out, g)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if len(out[i].Members) != len(out[j].Members) {
			return len(out[i].Members) > len(out[j].Members)
		}
		return out[i].First.Attr < out[j].First.Attr
	})
	return out
}

// exactSetCover finds a minimum set cover by branch and bound; cands must be
// sorted by decreasing coverage. Returns indices into cands, or nil if no
// cover exists (some element uncoverable).
func exactSetCover(n int, cands []prefCand) []int {
	full := uint64(1)<<uint(n) - 1
	masks := make([]uint64, len(cands))
	for i, c := range cands {
		for _, m := range c.members {
			masks[i] |= 1 << uint(m)
		}
	}
	var all uint64
	for _, m := range masks {
		all |= m
	}
	if all != full {
		return nil
	}
	best := make([]int, 0, len(cands))
	for i := range cands {
		best = append(best, i) // trivial upper bound: may overcount, fine
	}
	var cur []int
	var dfs func(covered uint64)
	dfs = func(covered uint64) {
		if covered == full {
			if len(cur) < len(best) {
				best = append(best[:0], cur...)
			}
			return
		}
		if len(cur)+1 >= len(best) {
			return
		}
		// Branch on the uncovered element with the fewest candidates.
		var pick int = -1
		pickCount := len(cands) + 1
		for e := 0; e < n; e++ {
			if covered&(1<<uint(e)) != 0 {
				continue
			}
			cnt := 0
			for i := range masks {
				if masks[i]&(1<<uint(e)) != 0 {
					cnt++
				}
			}
			if cnt < pickCount {
				pick, pickCount = e, cnt
			}
		}
		for i := range cands {
			if masks[i]&(1<<uint(pick)) == 0 {
				continue
			}
			cur = append(cur, i)
			dfs(covered | masks[i])
			cur = cur[:len(cur)-1]
		}
	}
	dfs(0)
	return best
}

// greedySetCover is the paper's O(|W|²) heuristic: repeatedly take the
// candidate covering the most uncovered functions.
func greedySetCover(n int, cands []prefCand) []int {
	covered := make([]bool, n)
	remaining := n
	var out []int
	for remaining > 0 {
		best, bestGain := -1, 0
		for i, c := range cands {
			gain := 0
			for _, m := range c.members {
				if !covered[m] {
					gain++
				}
			}
			if gain > bestGain {
				best, bestGain = i, gain
			}
		}
		if best < 0 {
			break // uncoverable remainder; caller validates
		}
		out = append(out, best)
		for _, m := range cands[best].members {
			if !covered[m] {
				covered[m] = true
				remaining--
			}
		}
	}
	return out
}
