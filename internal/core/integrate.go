package core

import (
	"repro/internal/attrs"
)

// This file implements the Section 5 "tightly integrated" optimization:
// the evaluation order of C2's prefixable groups (and of C1's cover sets
// when C2 is empty) is a degree of freedom (Section 4.6), so among the
// cost-equal chains we can pick the one whose output ordering (partially)
// satisfies the query's ORDER BY — letting the final sort be skipped
// entirely or downgraded to a partial sort of already-formed groups.

// OrderSatisfiedPrefix returns how many leading elements of the required
// ordering are already guaranteed by a stream with property p. A global
// ordering requires a single segment (X = ∅).
func OrderSatisfiedPrefix(p Props, order attrs.Seq) int {
	if len(order) == 0 {
		return 0
	}
	if !p.X.Empty() {
		return 0
	}
	return len(p.Y.LCP(order))
}

// CSOAligned runs CSO and then, following Section 5, searches the
// reshufflings that move each independent unit (a prefixable group of C2,
// or a cover set of C1 when C2 is empty) to the end of the chain, returning
// the chain whose final ordering satisfies the longest prefix of finalOrder.
// Under the relation size assumption all candidates cost the same, so the
// reshuffle is free; ties keep the default chain. An empty finalOrder is
// just CSO.
func CSOAligned(ws []WF, in Props, opt Options, finalOrder attrs.Seq) (*Plan, error) {
	base, err := CSO(ws, in, opt)
	if err != nil {
		return nil, err
	}
	if len(finalOrder) == 0 {
		return base, nil
	}
	best := base
	bestSat := OrderSatisfiedPrefix(base.FinalProps(in), finalOrder)
	baseCost := opt.Cost.PlanCost(base)
	// Candidate chains: move unit u last. Units are re-derived inside
	// csoWithLastUnit so property evolution stays consistent.
	for u := 0; ; u++ {
		plan, more, err := csoWithLastUnit(ws, in, opt, u)
		if !more {
			break
		}
		if err != nil {
			continue // an ordering that fails validation is just skipped
		}
		if opt.Cost.PlanCost(plan) > baseCost+1e-9 {
			continue // never trade execution cost for ordering
		}
		if sat := OrderSatisfiedPrefix(plan.FinalProps(in), finalOrder); sat > bestSat {
			best, bestSat = plan, sat
		}
	}
	return best, nil
}

// csoWithLastUnit re-runs the CSO emission with unit index u moved to the
// end. more is false once u exceeds the number of movable units.
func csoWithLastUnit(ws []WF, in Props, opt Options, u int) (plan *Plan, more bool, err error) {
	plan = &Plan{Scheme: "CSO"}
	props := in

	var c0, c1, c2 []WF
	ordered := append([]WF(nil), ws...)
	sortWFsByID(ordered)
	for _, wf := range ordered {
		switch {
		case in.Matches(wf):
			c0 = append(c0, wf)
		case !opt.DisableSS && SSReorderable(in, wf):
			c1 = append(c1, wf)
		default:
			c2 = append(c2, wf)
		}
	}
	for _, wf := range c0 {
		plan.Steps = append(plan.Steps, Step{WF: wf, Reorder: ReorderNone, In: props, Out: props})
	}

	csets := PartitionCoverSets(c1)
	sortCoverSets(csets)
	groups := PartitionPrefixable(c2)

	// Determine the movable unit list: C2 groups, or C1 cover sets when C2
	// is empty (Section 5 reshuffles "the Pi's of C2 ... or the cover sets
	// of C1 if C2 is empty").
	switch {
	case len(groups) > 0:
		if u >= len(groups) {
			return nil, false, nil
		}
		rotated := make([]PrefixGroup, 0, len(groups))
		for i, g := range groups {
			if i != u {
				rotated = append(rotated, g)
			}
		}
		rotated = append(rotated, groups[u])
		for _, cs := range csets {
			if err := emitSSCoverSet(plan, cs, &props); err != nil {
				return nil, true, err
			}
		}
		for _, g := range rotated {
			if err := emitPrefixGroup(plan, g, &props, opt); err != nil {
				return nil, true, err
			}
		}
	case len(csets) > 0:
		if u >= len(csets) {
			return nil, false, nil
		}
		rotated := make([]CoverSet, 0, len(csets))
		for i, cs := range csets {
			if i != u {
				rotated = append(rotated, cs)
			}
		}
		rotated = append(rotated, csets[u])
		for _, cs := range rotated {
			if err := emitSSCoverSet(plan, cs, &props); err != nil {
				return nil, true, err
			}
		}
	default:
		return nil, false, nil
	}

	if err := plan.Validate(ws, in); err != nil {
		return nil, true, err
	}
	return plan, true, nil
}

func sortWFsByID(ws []WF) {
	for i := 1; i < len(ws); i++ {
		for j := i; j > 0 && ws[j].ID < ws[j-1].ID; j-- {
			ws[j], ws[j-1] = ws[j-1], ws[j]
		}
	}
}
