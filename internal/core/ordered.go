package core

import "fmt"

// OrderedPlan plans ws strictly in the given slice order, choosing the
// cheapest applicable reorder for each step: none when the running stream
// property already matches (Definition 2 — unlike PSQL's literal-prefix
// test, alternative WPK permutations count), otherwise the cost minimum
// over SS (when applicable), HS and FS.
//
// It exists for executors that must honor an externally fixed evaluation
// order: the distributed shuffle path ships the coordinator's step order to
// every shard node so all nodes extend the row schema with derived columns
// in the same sequence, whatever their local statistics say — the local
// cost model may only influence the reorder operators, never the order.
func OrderedPlan(ws []WF, in Props, opt Options) (*Plan, error) {
	plan := &Plan{Scheme: "SEQ"}
	props := in
	for _, wf := range ws {
		step := Step{WF: wf, In: props}
		if props.Matches(wf) {
			step.Reorder = ReorderNone
			step.Out = props
		} else {
			key := wf.PK.AscSeq().Concat(wf.OK)
			best := Step{
				WF: wf, Reorder: ReorderFS, SortKey: key,
				In: props, Out: TotallyOrdered(key),
			}
			bestCost := opt.Cost.FSCost()
			if !opt.DisableHS && HSReorderable(wf) {
				if c := opt.Cost.HSCost(wf.PK); c < bestCost {
					best = Step{
						WF: wf, Reorder: ReorderHS, HashKey: wf.PK, SortKey: key,
						In: props, Out: Props{X: wf.PK, Y: key},
					}
					bestCost = c
				}
			}
			if !opt.DisableSS {
				if choice, ok := PlanSS(props, wf); ok {
					if c := opt.Cost.SSCost(props, choice); c < bestCost {
						best = Step{
							WF: wf, Reorder: ReorderSS, SortKey: choice.Target,
							Alpha: choice.Alpha, Beta: choice.Beta,
							In: props, Out: choice.Out,
						}
						bestCost = c
					}
				}
			}
			step = best
		}
		props = step.Out
		plan.Steps = append(plan.Steps, step)
	}
	if err := plan.Validate(ws, in); err != nil {
		return nil, fmt.Errorf("core: OrderedPlan produced invalid plan: %w", err)
	}
	return plan, nil
}
