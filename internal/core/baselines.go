package core

import (
	"fmt"
	"sort"
)

// ORCL reimplements the Oracle 8i scheme described in Section 6: window
// functions are clustered into a minimum number of Ordering Groups (the
// paper notes these are equivalent to cover sets), and the leading function
// of each group is reordered with a Full Sort — HS and SS do not exist in
// this scheme. Groups whose members are all matched by the current stream
// skip their sort (the standard matched-input optimization).
//
// Our ORCL derives its groups with the same greedy cover-set partitioning
// used by CSO. On some inputs this finds slightly fewer groups than the
// grouping the paper observed from Oracle (e.g. 6 instead of 7 on Q9),
// making ORCL a marginally stronger baseline here; EXPERIMENTS.md records
// this.
func ORCL(ws []WF, in Props, opt Options) (*Plan, error) {
	plan := &Plan{Scheme: "ORCL"}
	props := in
	csets := PartitionCoverSets(ws)
	for _, cs := range csets {
		matchedAll := true
		for _, m := range cs.Members {
			if !props.Matches(m) {
				matchedAll = false
				break
			}
		}
		if matchedAll {
			for _, m := range cs.Members {
				plan.Steps = append(plan.Steps, Step{WF: m, Reorder: ReorderNone, In: props, Out: props})
			}
			continue
		}
		gamma := cs.Gamma
		if gamma == nil {
			return nil, fmt.Errorf("core: ORCL cover set led by %s has no covering permutation", cs.Covering)
		}
		out := TotallyOrdered(gamma)
		plan.Steps = append(plan.Steps, Step{WF: cs.Covering, Reorder: ReorderFS, SortKey: gamma, In: props, Out: out})
		props = out
		for _, m := range cs.Members[1:] {
			plan.Steps = append(plan.Steps, Step{WF: m, Reorder: ReorderNone, In: props, Out: props})
		}
	}
	if err := plan.Validate(ws, in); err != nil {
		return nil, fmt.Errorf("core: ORCL produced invalid plan: %w", err)
	}
	return plan, nil
}

// PSQL reimplements PostgreSQL 9.1's naive scheme (Section 6): functions
// are evaluated strictly in SELECT-clause order; each unmatched function is
// preceded by a Full Sort whose key is the PARTITION BY clause order
// verbatim followed by the ORDER BY key. The only optimization is omitting
// the sort when the function is matched by its input — and crucially,
// PostgreSQL's match test is weaker than Definition 2: it only recognizes a
// match when the function's own written key is a literal prefix of the
// current sort order, never considering alternative WPK permutations. That
// weakness is exactly what Section 6.2 demonstrates with Q7, where PSQL
// sorts for wf2 although reordering wf1's key would have covered it.
func PSQL(ws []WF, in Props) (*Plan, error) {
	plan := &Plan{Scheme: "PSQL"}
	props := in
	ordered := append([]WF(nil), ws...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].ID < ordered[j].ID })
	for _, wf := range ordered {
		key := wf.PKSeqWritten().Concat(wf.OK)
		matched := props.X.Empty() && props.Y.HasPrefix(key)
		if wf.PK.Empty() && wf.OK.Empty() {
			matched = true
		}
		if matched {
			plan.Steps = append(plan.Steps, Step{WF: wf, Reorder: ReorderNone, In: props, Out: props})
			continue
		}
		out := TotallyOrdered(key)
		plan.Steps = append(plan.Steps, Step{WF: wf, Reorder: ReorderFS, SortKey: key, In: props, Out: out})
		props = out
	}
	if err := plan.Validate(ws, in); err != nil {
		return nil, fmt.Errorf("core: PSQL produced invalid plan: %w", err)
	}
	return plan, nil
}
