package core_test

import (
	"math/rand"
	"testing"

	"repro/internal/attrs"
	"repro/internal/core"
)

// randWF draws a random window function over nattrs attributes (ascending
// keys only, as in the paper's model).
func randWF(rng *rand.Rand, id, nattrs int) core.WF {
	var pk attrs.Set
	npk := rng.Intn(3)
	for len(pk.IDs()) < npk {
		pk = pk.Add(attrs.ID(rng.Intn(nattrs)))
	}
	var ok attrs.Seq
	var used attrs.Set
	nok := rng.Intn(3)
	for len(ok) < nok {
		a := attrs.ID(rng.Intn(nattrs))
		if pk.Contains(a) || used.Contains(a) {
			break
		}
		used = used.Add(a)
		ok = append(ok, attrs.Asc(a))
	}
	return core.WF{ID: id, PK: pk, OK: ok}
}

// randProps draws a random physical property.
func randProps(rng *rand.Rand, nattrs int) core.Props {
	var p core.Props
	switch rng.Intn(3) {
	case 0: // unordered or totally ordered
		n := rng.Intn(nattrs)
		var used attrs.Set
		for i := 0; i < n; i++ {
			a := attrs.ID(rng.Intn(nattrs))
			if used.Contains(a) {
				continue
			}
			used = used.Add(a)
			p.Y = append(p.Y, attrs.Asc(a))
		}
	case 1: // segmented
		p.X = p.X.Add(attrs.ID(rng.Intn(nattrs)))
		if rng.Intn(2) == 0 {
			p.X = p.X.Add(attrs.ID(rng.Intn(nattrs)))
		}
		var used attrs.Set
		for i := 0; i < rng.Intn(3); i++ {
			a := attrs.ID(rng.Intn(nattrs))
			if used.Contains(a) {
				continue
			}
			used = used.Add(a)
			p.Y = append(p.Y, attrs.Asc(a))
		}
	default: // grouped
		p.X = p.X.Add(attrs.ID(rng.Intn(nattrs)))
		p.Grouped = true
		var used attrs.Set
		used = p.X
		for i := 0; i < rng.Intn(3); i++ {
			a := attrs.ID(rng.Intn(nattrs))
			if used.Contains(a) {
				continue
			}
			used = used.Add(a)
			p.Y = append(p.Y, attrs.Asc(a))
		}
	}
	return p
}

// bruteCovers enumerates all permutations of both partitioning keys to
// decide pairwise coverage, the ground truth for Covers.
func bruteCovers(c, m core.WF) bool {
	found := false
	perms := func(s attrs.Set) []attrs.Seq {
		var out []attrs.Seq
		if s.Empty() {
			return []attrs.Seq{{}}
		}
		s.Permutations(func(seq attrs.Seq) bool {
			out = append(out, seq.Clone())
			return true
		})
		return out
	}
	for _, pc := range perms(c.PK) {
		gamma := pc.Concat(c.OK)
		for _, pm := range perms(m.PK) {
			if gamma.HasPrefix(pm.Concat(m.OK)) {
				found = true
			}
		}
	}
	return found
}

// TestCoversBruteForce cross-validates Covers against permutation
// enumeration on random pairs.
func TestCoversBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		c := randWF(rng, 0, 4)
		m := randWF(rng, 1, 4)
		got := core.Covers(c, m)
		want := bruteCovers(c, m)
		if got != want {
			t.Fatalf("Covers(%s, %s) = %v, brute force = %v", c, m, got, want)
		}
	}
}

// TestCoveringSeqValid checks every constructed covering permutation is a
// genuine one: each member has a permutation prefixing it.
func TestCoveringSeqValid(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 2000; i++ {
		n := 2 + rng.Intn(3)
		ws := make([]core.WF, n)
		for j := range ws {
			ws[j] = randWF(rng, j, 4)
		}
		c := ws[rng.Intn(n)]
		gamma, ok := core.CoveringSeq(c, ws, nil)
		if !ok {
			continue
		}
		// γ must itself be a permutation of PKc followed by OKc.
		if !gamma[:c.PK.Len()].Attrs().SubsetOf(c.PK) || !gamma[c.PK.Len():].Equal(c.OK) {
			t.Fatalf("γ %s is not →WPK∘WOK of %s", gamma, c)
		}
		for _, m := range ws {
			if !coveredBy(m, gamma) {
				t.Fatalf("γ %s of %s does not cover %s", gamma, c, m)
			}
		}
	}
}

// coveredBy checks ∃ perm: →WPKm ∘ WOKm ≤ gamma by direct construction.
func coveredBy(m core.WF, gamma attrs.Seq) bool {
	pm := m.PK.Len()
	if pm+len(m.OK) > len(gamma) {
		return false
	}
	if gamma[:pm].Attrs() != m.PK {
		return false
	}
	for k, e := range m.OK {
		if gamma[pm+k] != e {
			return false
		}
	}
	return true
}

// TestTheorem5 — if a relation matches a set of window functions, the set is
// a cover set.
func TestTheorem5(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	checked := 0
	for i := 0; i < 100000 && checked < 300; i++ {
		p := randProps(rng, 4)
		n := 2 + rng.Intn(3)
		ws := make([]core.WF, n)
		for j := range ws {
			ws[j] = randWF(rng, j, 4)
		}
		// Exclude degenerate functions, which Matches admits by evaluator
		// semantics rather than Definition 2.
		degenerate := false
		for _, wf := range ws {
			if wf.PK.Empty() && wf.OK.Empty() {
				degenerate = true
			}
		}
		if degenerate || !p.MatchesAll(ws) {
			continue
		}
		checked++
		if !core.IsCoverSet(ws) {
			t.Fatalf("props %s matches %v but the set is not a cover set", p, ws)
		}
	}
	if checked < 30 {
		t.Fatalf("too few matched samples (%d); generator drifted", checked)
	}
}

// TestTheorem2Planner — SS-reorderability is preserved by SS reordering at
// the property level: after reordering R with SS wrt wf1, (R', wf2) is
// SS-reorderable iff (R, wf2) was.
func TestTheorem2Planner(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	checked := 0
	for i := 0; i < 20000 && checked < 500; i++ {
		p := randProps(rng, 4)
		wf1 := randWF(rng, 0, 4)
		wf2 := randWF(rng, 1, 4)
		choice, ok := core.PlanSS(p, wf1)
		if !ok {
			continue
		}
		checked++
		before := core.SSReorderable(p, wf2)
		after := core.SSReorderable(choice.Out, wf2)
		if before != after {
			t.Fatalf("SS-reorderability not preserved: %s --SS(wf1=%s)--> %s; wf2=%s before=%v after=%v",
				p, wf1, choice.Out, wf2, before, after)
		}
	}
	if checked < 100 {
		t.Fatalf("too few SS-reorderable samples (%d)", checked)
	}
}

// TestPlanSSOutMatches — the SS target property must match the function.
func TestPlanSSOutMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for i := 0; i < 5000; i++ {
		p := randProps(rng, 4)
		wf := randWF(rng, 0, 4)
		choice, ok := core.PlanSS(p, wf)
		if !ok {
			continue
		}
		if !choice.Out.Matches(wf) {
			t.Fatalf("PlanSS(%s, %s) output %s does not match", p, wf, choice.Out)
		}
		if p.X.Empty() && choice.Alpha.Empty() {
			t.Fatalf("PlanSS(%s, %s) degenerated to a full sort", p, wf)
		}
	}
}

// TestPartitionCoverSetsValid — every partition element is a genuine,
// disjoint cover set covering all input functions.
func TestPartitionCoverSetsValid(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 300; i++ {
		n := 1 + rng.Intn(8)
		ws := make([]core.WF, n)
		for j := range ws {
			ws[j] = randWF(rng, j, 4)
		}
		for _, part := range [][]core.CoverSet{core.PartitionCoverSets(ws), core.PartitionCoverSetsDSATUR(ws)} {
			seen := map[int]bool{}
			for _, cs := range part {
				if !core.IsCoverSet(cs.Members) {
					t.Fatalf("partition element %v is not a cover set", cs.Members)
				}
				if cs.Members[0].ID != cs.Covering.ID {
					t.Fatalf("covering function %v is not evaluated first in %v", cs.Covering, cs.Members)
				}
				for _, m := range cs.Members {
					if seen[m.ID] {
						t.Fatalf("wf%d appears in two cover sets", m.ID)
					}
					seen[m.ID] = true
				}
			}
			if len(seen) != n {
				t.Fatalf("partition covers %d of %d functions", len(seen), n)
			}
		}
	}
}

// TestPartitionPrefixableValid — groups are prefixable and exhaustive.
func TestPartitionPrefixableValid(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for i := 0; i < 300; i++ {
		n := 1 + rng.Intn(8)
		ws := make([]core.WF, 0, n)
		for j := 0; j < n; j++ {
			wf := randWF(rng, j, 4)
			if wf.PK.Empty() && wf.OK.Empty() {
				continue // degenerate functions never reach C2
			}
			ws = append(ws, wf)
		}
		if len(ws) == 0 {
			continue
		}
		groups := core.PartitionPrefixable(ws)
		seen := map[int]bool{}
		for _, g := range groups {
			if !core.Prefixable(g.Members) {
				t.Fatalf("group %v (first %s) is not prefixable", g.Members, g.First)
			}
			for _, m := range g.Members {
				if seen[m.ID] {
					t.Fatalf("wf%d in two prefixable groups", m.ID)
				}
				seen[m.ID] = true
			}
		}
		if len(seen) != len(ws) {
			t.Fatalf("prefixable partition covers %d of %d", len(seen), len(ws))
		}
	}
}

// TestThetaIsCommonPrefix — θ(W) must be consumable by every member, and
// must be non-empty exactly when the set is prefixable.
func TestThetaIsCommonPrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 1000; i++ {
		n := 1 + rng.Intn(4)
		ws := make([]core.WF, n)
		nonDegenerate := true
		for j := range ws {
			ws[j] = randWF(rng, j, 4)
			if ws[j].PK.Empty() && len(ws[j].OK) == 0 {
				nonDegenerate = false
			}
		}
		if !nonDegenerate {
			continue
		}
		theta := core.Theta(ws)
		// Every member must accept θ as a key prefix: verify by replaying
		// the consume discipline.
		for _, wf := range ws {
			rem := wf.PK
			okPos := 0
			for _, e := range theta {
				if !rem.Empty() {
					if !rem.Contains(e.Attr) {
						t.Fatalf("θ %s not consumable by %s", theta, wf)
					}
					rem = rem.Remove(e.Attr)
					continue
				}
				if okPos >= len(wf.OK) || wf.OK[okPos] != e {
					t.Fatalf("θ %s not consumable by %s", theta, wf)
				}
				okPos++
			}
		}
		// Prefixable ⟺ some shared first element exists.
		shared := map[attrs.Elem]int{}
		for _, wf := range ws {
			for _, e := range core.FirstElems(wf) {
				shared[e]++
			}
			// Partitioning attributes also accept directed elements.
		}
		if core.Prefixable(ws) != (len(theta) > 0) {
			t.Fatalf("Prefixable=%v but |θ|=%d for %v", core.Prefixable(ws), len(theta), ws)
		}
	}
}

// TestPlansValidateAcrossSchemes — every scheme yields a valid plan on
// random inputs and random starting properties.
func TestPlansValidateAcrossSchemes(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	opt := core.Options{Cost: scaledParams(m50)}
	for i := 0; i < 400; i++ {
		n := 1 + rng.Intn(6)
		ws := make([]core.WF, n)
		for j := range ws {
			ws[j] = randWF(rng, j, 4)
		}
		props := randProps(rng, 4)
		if cso, err := core.CSO(ws, props, opt); err != nil {
			t.Fatalf("CSO(%v, %s): %v", ws, props, err)
		} else if err := cso.Validate(ws, props); err != nil {
			t.Fatalf("CSO invalid: %v", err)
		}
		if orcl, err := core.ORCL(ws, props, opt); err != nil {
			t.Fatalf("ORCL(%v, %s): %v", ws, props, err)
		} else if err := orcl.Validate(ws, props); err != nil {
			t.Fatalf("ORCL invalid: %v", err)
		}
		if psql, err := core.PSQL(ws, props); err != nil {
			t.Fatalf("PSQL(%v, %s): %v", ws, props, err)
		} else if err := psql.Validate(ws, props); err != nil {
			t.Fatalf("PSQL invalid: %v", err)
		}
		if n <= 5 {
			bfo, err := core.BFO(ws, props, opt)
			if err != nil {
				t.Fatalf("BFO(%v, %s): %v", ws, props, err)
			}
			if err := bfo.Validate(ws, props); err != nil {
				t.Fatalf("BFO invalid: %v", err)
			}
			// BFO is exact over a superset of CSO's moves: never worse.
			cso, _ := core.CSO(ws, props, opt)
			if opt.Cost.PlanCost(bfo) > opt.Cost.PlanCost(cso)+1e-6 {
				t.Fatalf("BFO cost %.2f > CSO cost %.2f\nBFO:  %s\nCSO:  %s",
					opt.Cost.PlanCost(bfo), opt.Cost.PlanCost(cso), bfo, cso)
			}
		}
	}
}
