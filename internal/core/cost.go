package core

import (
	"math"

	"repro/internal/attrs"
)

// Cost models (Section 3.4). Two layers are provided:
//
//  1. The paper's analytical formulas Eq. 1–3 (PaperFSCost, PaperHSCost,
//     PaperSSCost), kept verbatim for documentation and tests.
//  2. A runtime-mirroring block-I/O model (FSCost, HSCost, SSCost) that
//     predicts exactly what this engine's operators will do — replacement
//     selection runs of ≈2M, materialized intermediate merge passes with a
//     streaming final merge, HS bucket counts as the runtime chooses them,
//     SS unit estimation per the paper's uniformity assumptions — plus a
//     small comparison-cost term. The planners use layer 2; on equal I/O
//     the tie breaks toward FS, whose totally ordered output can benefit
//     downstream operators (a point Section 6.1 makes explicitly).
//
// All costs are in block I/Os; CPU comparison work is folded in via
// CmpBlockEquiv (one block I/O ≡ 5000 comparisons), a calibration constant
// representing the CPU/I/O cost ratio of the simulated device.

// CmpBlockEquiv converts key comparisons into block-I/O equivalents.
const CmpBlockEquiv = 1.0 / 5000

// HSPerTupleOverhead prices Hashed Sort's per-tuple partitioning work (key
// encoding, hashing, bucket routing and spill bookkeeping) in comparison
// equivalents. Calibrated on this substrate so that when FS and HS tie on
// block I/O — a single-merge-pass FS against a fully-resident-bucket HS —
// the model prefers FS, reproducing the paper's observed crossover
// (Fig. 3: FS wins at large M, HS at small M).
const HSPerTupleOverhead = 16.0

// SSPerUnitOverhead prices Segmented Sort's per-unit work (unit boundary
// detection, sorter setup, per-unit bookkeeping) in comparison equivalents.
// Without it a sort of N single-tuple units would be free, and the planners
// would happily append no-op Segmented Sorts over near-unique α prefixes.
const SSPerUnitOverhead = 24.0

// MaxHSBuckets bounds the number of physical hash buckets the runtime
// creates (spilled buckets hold an append page outside the sort budget,
// mirroring PostgreSQL's BufFile behavior; the bound keeps that overhead
// trivial).
const MaxHSBuckets = 8192

// MinHSBuckets is the default lower bound on bucket count; a healthy
// over-partitioning keeps buckets internally sortable across a wide memory
// range, which is what makes HS's performance flat in M (Fig. 3).
const MinHSBuckets = 256

// CostParams carries the statistics the models need.
type CostParams struct {
	TableBlocks int64 // B(R)
	TableTuples int64 // T(R)
	MemBlocks   int64 // M, the unit reorder memory in blocks
	BlockSize   int
	// Distinct estimates D(A) for an attribute set; nil falls back to a
	// fixed default. Estimators derive from catalog statistics.
	Distinct func(attrs.Set) int64
}

// distinct applies the estimator with a guard.
func (p CostParams) distinct(set attrs.Set) int64 {
	if set.Empty() {
		return 1
	}
	if p.Distinct != nil {
		if d := p.Distinct(set); d > 0 {
			return d
		}
	}
	// Uniformity default: the square root of the table.
	d := int64(math.Sqrt(float64(p.TableTuples)))
	if d < 1 {
		d = 1
	}
	return d
}

func (p CostParams) mergeOrder() int64 {
	f := p.MemBlocks - 1
	if f < 2 {
		f = 2
	}
	return f
}

// mergePasses returns the number of intermediate materialized merge passes
// for an external sort of b blocks under budget m (runs ≈ 2m from
// replacement selection; the final merge streams).
func mergePasses(b, m, f int64) int64 {
	if b <= m {
		return 0
	}
	runs := ceilDiv(b, 2*m)
	passes := int64(0)
	for runs > f {
		runs = ceilDiv(runs, f)
		passes++
	}
	return passes
}

func ceilDiv(a, b int64) int64 {
	if b <= 0 {
		return a
	}
	return (a + b - 1) / b
}

// externalSortIO is the spill I/O of sorting b blocks under budget m:
// zero when in-memory; otherwise run formation writes b, each materialized
// pass reads and writes b, and the streaming final merge reads b.
func externalSortIO(b, m, f int64) int64 {
	if b <= m {
		return 0
	}
	return 2 * b * (mergePasses(b, m, f) + 1)
}

// sortCmps estimates key comparisons for sorting n tuples: n·log2(n).
func sortCmps(n int64) float64 {
	if n < 2 {
		return 0
	}
	return float64(n) * math.Log2(float64(n))
}

// FSCost predicts this engine's Full Sort: external sort of the whole table.
func (p CostParams) FSCost() float64 {
	io := externalSortIO(p.TableBlocks, p.MemBlocks, p.mergeOrder())
	return float64(io) + sortCmps(p.TableTuples)*CmpBlockEquiv
}

// HSBucketCount mirrors the runtime's bucket-count policy: enough buckets
// that the average bucket fits the sort budget, at least MinHSBuckets, never
// more than the key's distinct count or MaxHSBuckets.
func HSBucketCount(distinct, tableBlocks, memBlocks int64) int64 {
	n := ceilDiv(tableBlocks, maxi64(memBlocks, 1))
	if n < MinHSBuckets {
		n = MinHSBuckets
	}
	if n > MaxHSBuckets {
		n = MaxHSBuckets
	}
	if distinct > 0 && n > distinct {
		n = distinct
	}
	if n < 1 {
		n = 1
	}
	return n
}

func maxi64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// HSCost predicts this engine's Hashed Sort with hash key whk: one
// partitioning pass whose spilled fraction is written and read back
// (Eq. 2's 2·B·(1−N′/N) term), plus per-bucket sorts. A small per-tuple
// hashing/bucketing term keeps FS preferred when I/O ties.
func (p CostParams) HSCost(whk attrs.Set) float64 {
	d := p.distinct(whk)
	n := HSBucketCount(d, p.TableBlocks, p.MemBlocks)
	bucketBlocks := ceilDiv(p.TableBlocks, n)
	// Buckets never spilled: those resident when partitioning ends (Eq. 2).
	nResident := p.MemBlocks * n / maxi64(p.TableBlocks, 1)
	if nResident > n {
		nResident = n
	}
	spillFrac := 1 - float64(nResident)/float64(n)
	partitionIO := 2 * float64(p.TableBlocks) * spillFrac
	sortIO := float64(n) * float64(externalSortIO(bucketBlocks, p.MemBlocks, p.mergeOrder()))
	bucketTuples := ceilDiv(p.TableTuples, n)
	cmps := float64(n) * sortCmps(bucketTuples)
	hashWork := HSPerTupleOverhead * float64(p.TableTuples)
	return partitionIO + sortIO + (cmps+hashWork)*CmpBlockEquiv
}

// SSCost predicts Segmented Sort per Eq. 3's unit analysis: k segments, u
// units per segment, each of B/(k·u) blocks, sorted independently. Unit
// counts follow the paper's uniformity assumptions.
func (p CostParams) SSCost(in Props, choice SSChoice) float64 {
	var k int64 = 1
	if !in.X.Empty() {
		k = p.distinct(in.X)
		// Segments may merge several X-groups (e.g. HS buckets); the
		// runtime bucket bound caps the segment count.
		if !in.Grouped && k > MaxHSBuckets {
			k = MaxHSBuckets
		}
	}
	var u int64 = 1
	if !choice.Alpha.Empty() {
		alphaAttrs := choice.Alpha.Attrs()
		dAlpha := p.distinct(alphaAttrs)
		perSeg := ceilDiv(p.TableTuples, k)
		if alphaAttrs.Intersect(in.X).Empty() {
			u = mini64(perSeg, dAlpha)
		} else {
			u = mini64(perSeg, ceilDiv(dAlpha, k))
		}
	}
	if u < 1 {
		u = 1
	}
	units := k * u
	unitBlocks := ceilDiv(p.TableBlocks, units)
	unitTuples := ceilDiv(p.TableTuples, units)
	io := float64(units) * float64(externalSortIO(unitBlocks, p.MemBlocks, p.mergeOrder()))
	cmps := float64(units)*sortCmps(unitTuples) + SSPerUnitOverhead*float64(units)
	return io + cmps*CmpBlockEquiv
}

func mini64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// PaperFSCost is Eq. 1 verbatim: 2·B·(⌈log_F(B/2M)⌉+1).
func (p CostParams) PaperFSCost() float64 {
	b, m := float64(p.TableBlocks), float64(p.MemBlocks)
	f := float64(p.mergeOrder())
	passes := math.Ceil(math.Log(math.Max(b/(2*m), 1)) / math.Log(f))
	return 2 * b * (passes + 1)
}

// PaperHSCost is Eq. 2 verbatim with N = D(WHK).
func (p CostParams) PaperHSCost(whk attrs.Set) float64 {
	b, m := float64(p.TableBlocks), float64(p.MemBlocks)
	n := float64(p.distinct(whk))
	nPrime := math.Floor(m * n / b)
	if nPrime > n {
		nPrime = n
	}
	bucket := int64(math.Ceil(b / n))
	sortCost := n * float64(externalSortIO(bucket, p.MemBlocks, p.mergeOrder()))
	return 2*b*(1-nPrime/n) + sortCost
}

// PaperSSCost is Eq. 3 verbatim: the sum of unit sort costs.
func (p CostParams) PaperSSCost(in Props, choice SSChoice) float64 {
	return p.SSCost(in, choice) // identical unit analysis, shared here
}

// StepCost prices one plan step's reordering.
func (p CostParams) StepCost(s Step) float64 {
	switch s.Reorder {
	case ReorderFS:
		return p.FSCost()
	case ReorderHS:
		return p.HSCost(s.HashKey)
	case ReorderSS:
		return p.SSCost(s.In, SSChoice{Target: s.SortKey, Alpha: s.Alpha, Beta: s.Beta})
	default:
		return 0
	}
}

// PlanCost prices a whole chain under the relation size assumption of
// Section 4.2 (every step sees the same table size).
func (p CostParams) PlanCost(plan *Plan) float64 {
	total := 0.0
	for _, s := range plan.Steps {
		total += p.StepCost(s)
	}
	return total
}
