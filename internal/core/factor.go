package core

import (
	"fmt"

	"repro/internal/attrs"
)

// Frame lattice (factor windows). Two window functions over the same table
// stand in a derivability relation a ⊑ b — "a factors through b" — when a
// stream reordered for b necessarily matches a as well: b's window is finer
// (same partitioning-key family, a longer ordering grain), so a's result is
// computable from b's physical input with a plain sequential scan and no
// reordering of its own. This is the cross-statement generalization of the
// paper's cover sets: within one statement CSO already proves Theorem 7
// coverage and shares one reorder per cover set; the lattice extends the
// same CoveringSeq test across statements so a *service* can compute the
// coarse dashboards of a correlated mix from the finest one's scan
// ("Factor Windows", Wu et al. — see PAPERS.md).
//
// Note the lattice is defined at the ordering level: a frame clause (ROWS
// k PRECEDING …) changes only the aggregate evaluated during the scan,
// never the reordering requirement, so two specs that differ solely in
// frame are at the *same* lattice node and trivially share; differing
// grains (ordering-key prefixes) are the interesting ⊑ edges.

// Factor reports whether wfA is derivable from wfB in the frame lattice —
// whether some single ordering γ = →WPKb ∘ WOKb that serves wfB also
// matches wfA (Definition 4's pairwise coverage, built with the joint
// CoveringSeq construction). On success it returns that γ: reorder once to
// γ and both functions evaluate scan-only.
func Factor(wfA, wfB WF) (attrs.Seq, bool) {
	return CoveringSeq(wfB, []WF{wfA}, nil)
}

// LatticeNode canonically names the physical reorder a planned chain asks
// of its input — the frame-lattice coordinate of the chain's scan+reorder
// subplan. Chains whose nodes are equal can share one physical reorder
// verbatim; chains whose input properties match (Props.MatchesAll) can
// share across nodes. Empty means the chain has no heavy leading reorder
// to share (SS-led or reorder-free chains).
func LatticeNode(plan *Plan) string {
	if plan == nil || len(plan.Steps) == 0 {
		return ""
	}
	s := plan.Steps[0]
	switch s.Reorder {
	case ReorderFS:
		return fmt.Sprintf("FS:%s", s.SortKey)
	case ReorderHS:
		return fmt.Sprintf("HS%s:%s", s.HashKey, s.SortKey)
	}
	return ""
}

// DeriveSuffix rewrites a planned chain for execution over a stream that
// already carries the physical property in — a shared, materialized
// scan+reorder segment. Every step becomes reorder-free: by Theorem 1 a
// matched stream evaluates its function with one sequential scan, so the
// suffix is pure window evaluation. It fails (false) when any function is
// not matched by in — the segment is not fine enough for this statement
// and the caller must fall back to private execution.
func DeriveSuffix(plan *Plan, in Props) (*Plan, bool) {
	if plan == nil {
		return nil, false
	}
	steps := make([]Step, len(plan.Steps))
	for i, s := range plan.Steps {
		if !in.Matches(s.WF) {
			return nil, false
		}
		steps[i] = Step{WF: s.WF, Reorder: ReorderNone, In: in, Out: in}
	}
	return &Plan{Scheme: plan.Scheme + "+factored", Steps: steps}, true
}
