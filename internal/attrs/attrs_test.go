package attrs

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSeqPrefixLCP(t *testing.T) {
	a := AscSeq(1, 2, 3)
	b := AscSeq(1, 2)
	c := AscSeq(1, 4)
	if !a.HasPrefix(b) {
		t.Errorf("%s should have prefix %s", a, b)
	}
	if b.HasPrefix(a) {
		t.Errorf("%s should not have prefix %s", b, a)
	}
	if !a.HasPrefix(Seq{}) {
		t.Errorf("every sequence has the empty prefix")
	}
	if got := a.LCP(c); len(got) != 1 || got[0].Attr != 1 {
		t.Errorf("LCP(%s, %s) = %s, want (1)", a, c, got)
	}
	if got := a.LCP(b); !got.Equal(b) {
		t.Errorf("LCP(%s, %s) = %s, want %s", a, b, got, b)
	}
	// Direction changes break prefixes.
	d := Seq{{Attr: 1, Desc: true}}
	if a.HasPrefix(d) {
		t.Errorf("ascending sequence should not have a descending prefix")
	}
}

func TestSeqConcat(t *testing.T) {
	a := AscSeq(1)
	b := AscSeq(2, 3)
	got := a.Concat(b)
	if !got.Equal(AscSeq(1, 2, 3)) {
		t.Errorf("Concat = %s", got)
	}
	// Concat must not alias its receiver's backing array.
	got[0] = Asc(9)
	if a[0] != Asc(1) {
		t.Errorf("Concat aliased receiver")
	}
}

func TestSetOps(t *testing.T) {
	s := MakeSet(1, 3, 5)
	if s.Len() != 3 {
		t.Errorf("Len = %d", s.Len())
	}
	if !s.Contains(3) || s.Contains(2) {
		t.Errorf("Contains wrong")
	}
	if !MakeSet(1, 3).SubsetOf(s) || s.SubsetOf(MakeSet(1, 3)) {
		t.Errorf("SubsetOf wrong")
	}
	if s.Minus(MakeSet(3)) != MakeSet(1, 5) {
		t.Errorf("Minus wrong")
	}
	if s.Union(MakeSet(2)) != MakeSet(1, 2, 3, 5) {
		t.Errorf("Union wrong")
	}
	if s.Intersect(MakeSet(3, 5, 7)) != MakeSet(3, 5) {
		t.Errorf("Intersect wrong")
	}
	if got := s.IDs(); len(got) != 3 || got[0] != 1 || got[2] != 5 {
		t.Errorf("IDs = %v", got)
	}
}

func TestSetQuickProperties(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500}
	// Union is commutative and contains both operands.
	if err := quick.Check(func(a, b uint16) bool {
		x, y := Set(a), Set(b)
		u := x.Union(y)
		return u == y.Union(x) && x.SubsetOf(u) && y.SubsetOf(u)
	}, cfg); err != nil {
		t.Error(err)
	}
	// Minus then intersect is empty.
	if err := quick.Check(func(a, b uint16) bool {
		x, y := Set(a), Set(b)
		return x.Minus(y).Intersect(y).Empty()
	}, cfg); err != nil {
		t.Error(err)
	}
	// Len agrees with IDs.
	if err := quick.Check(func(a uint16) bool {
		return Set(a).Len() == len(Set(a).IDs())
	}, cfg); err != nil {
		t.Error(err)
	}
}

func TestPermutations(t *testing.T) {
	s := MakeSet(1, 2, 3)
	var perms []Seq
	s.Permutations(func(p Seq) bool {
		perms = append(perms, p.Clone())
		return true
	})
	if len(perms) != 6 {
		t.Fatalf("3-set yields %d permutations, want 6", len(perms))
	}
	seen := map[string]bool{}
	for _, p := range perms {
		if p.Attrs() != s || len(p) != 3 {
			t.Errorf("permutation %s is not over %s", p, s)
		}
		if seen[p.String()] {
			t.Errorf("duplicate permutation %s", p)
		}
		seen[p.String()] = true
	}
	// Early stop.
	count := 0
	s.Permutations(func(p Seq) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Errorf("early stop visited %d permutations", count)
	}
	// The empty set has exactly one permutation: ε.
	calls := 0
	MakeSet().Permutations(func(p Seq) bool {
		calls++
		return len(p) == 0
	})
	if calls != 1 {
		t.Errorf("empty set yielded %d permutations, want 1 (the empty sequence)", calls)
	}
}

func TestPermutationsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20; i++ {
		s := MakeSet(ID(rng.Intn(8)), ID(rng.Intn(8)), ID(rng.Intn(8)))
		var first, second []string
		s.Permutations(func(p Seq) bool { first = append(first, p.String()); return true })
		s.Permutations(func(p Seq) bool { second = append(second, p.String()); return true })
		if len(first) != len(second) {
			t.Fatalf("non-deterministic permutation count")
		}
		for j := range first {
			if first[j] != second[j] {
				t.Fatalf("non-deterministic permutation order")
			}
		}
	}
}

func TestDistinct(t *testing.T) {
	if !AscSeq(1, 2, 3).Distinct() {
		t.Errorf("distinct sequence misreported")
	}
	if AscSeq(1, 2, 1).Distinct() {
		t.Errorf("duplicate attribute not detected")
	}
}

func TestAddOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("Add(64) should panic")
		}
	}()
	MakeSet(64)
}
