// Package attrs implements the attribute-set and attribute-sequence algebra
// of Section 2 of the paper: permutations, prefixes, longest common prefixes
// and concatenation over ordered attribute sequences, and bitset operations
// over unordered attribute sets.
//
// Attributes are identified by their column index in a relation's schema.
// An ordering element carries a direction and a null ordering so that the
// same machinery serves both the optimizer (which, following the paper,
// reasons over ascending keys) and the runtime sort operators (which support
// DESC and NULLS FIRST/LAST).
package attrs

import (
	"fmt"
	"sort"
	"strings"
)

// ID identifies an attribute by its column position in a schema.
type ID int

// Elem is one element of an ordering sequence: an attribute with a sort
// direction and null placement. Two elements are interchangeable for
// order-property reasoning only if all three fields are equal.
type Elem struct {
	Attr       ID
	Desc       bool
	NullsFirst bool
}

// Asc returns an ascending, nulls-last ordering element for attr. This is
// the canonical form the optimizer uses for partitioning-key attributes,
// mirroring the paper's "all ascending" simplification.
func Asc(attr ID) Elem { return Elem{Attr: attr} }

// String renders the element like "3" or "3 DESC" for diagnostics.
func (e Elem) String() string {
	s := fmt.Sprintf("%d", e.Attr)
	if e.Desc {
		s += " DESC"
	}
	if e.NullsFirst {
		s += " NF"
	}
	return s
}

// Seq is an ordered sequence of attributes (the paper's X ∘ Y sequences).
type Seq []Elem

// AscSeq builds an all-ascending sequence from attribute IDs.
func AscSeq(ids ...ID) Seq {
	s := make(Seq, len(ids))
	for i, id := range ids {
		s[i] = Asc(id)
	}
	return s
}

// Empty reports whether the sequence is ε.
func (s Seq) Empty() bool { return len(s) == 0 }

// Concat returns s ∘ t as a fresh sequence.
func (s Seq) Concat(t Seq) Seq {
	out := make(Seq, 0, len(s)+len(t))
	out = append(out, s...)
	return append(out, t...)
}

// Equal reports element-wise equality.
func (s Seq) Equal(t Seq) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// HasPrefix reports p ≤ s (p is a prefix of s).
func (s Seq) HasPrefix(p Seq) bool {
	if len(p) > len(s) {
		return false
	}
	for i := range p {
		if s[i] != p[i] {
			return false
		}
	}
	return true
}

// LCP returns s ∧ t, the longest common prefix of s and t.
func (s Seq) LCP(t Seq) Seq {
	n := len(s)
	if len(t) < n {
		n = len(t)
	}
	i := 0
	for i < n && s[i] == t[i] {
		i++
	}
	return s[:i:i]
}

// Attrs returns the set of attributes mentioned in the sequence.
func (s Seq) Attrs() Set {
	var set Set
	for _, e := range s {
		set = set.Add(e.Attr)
	}
	return set
}

// IDs returns the attribute IDs of the sequence in order.
func (s Seq) IDs() []ID {
	out := make([]ID, len(s))
	for i, e := range s {
		out[i] = e.Attr
	}
	return out
}

// Distinct reports whether no attribute appears twice in the sequence.
func (s Seq) Distinct() bool {
	var seen Set
	for _, e := range s {
		if seen.Contains(e.Attr) {
			return false
		}
		seen = seen.Add(e.Attr)
	}
	return true
}

// String renders the sequence as "(a, b DESC, c)".
func (s Seq) String() string {
	parts := make([]string, len(s))
	for i, e := range s {
		parts[i] = e.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Clone returns a copy of the sequence.
func (s Seq) Clone() Seq {
	out := make(Seq, len(s))
	copy(out, s)
	return out
}

// Set is an unordered attribute set backed by a 64-bit bitmap. Relations are
// therefore limited to 64 attributes, far beyond any workload in the paper.
type Set uint64

// MakeSet builds a set from attribute IDs.
func MakeSet(ids ...ID) Set {
	var s Set
	for _, id := range ids {
		s = s.Add(id)
	}
	return s
}

// Add returns s ∪ {id}.
func (s Set) Add(id ID) Set {
	if id < 0 || id >= 64 {
		panic(fmt.Sprintf("attrs: attribute id %d out of range [0,64)", id))
	}
	return s | 1<<uint(id)
}

// Remove returns s − {id}.
func (s Set) Remove(id ID) Set { return s &^ (1 << uint(id)) }

// Contains reports id ∈ s.
func (s Set) Contains(id ID) bool {
	return id >= 0 && id < 64 && s&(1<<uint(id)) != 0
}

// Union returns s ∪ t.
func (s Set) Union(t Set) Set { return s | t }

// Intersect returns s ∩ t.
func (s Set) Intersect(t Set) Set { return s & t }

// Minus returns s − t.
func (s Set) Minus(t Set) Set { return s &^ t }

// SubsetOf reports s ⊆ t.
func (s Set) SubsetOf(t Set) bool { return s&^t == 0 }

// Empty reports s = ∅.
func (s Set) Empty() bool { return s == 0 }

// Len returns |s|.
func (s Set) Len() int {
	n := 0
	for v := uint64(s); v != 0; v &= v - 1 {
		n++
	}
	return n
}

// IDs returns the members in ascending order.
func (s Set) IDs() []ID {
	out := make([]ID, 0, s.Len())
	for id := ID(0); id < 64; id++ {
		if s.Contains(id) {
			out = append(out, id)
		}
	}
	return out
}

// AscSeq returns the canonical ascending sequence of the set's members in
// ascending ID order. Used where any permutation is acceptable and a
// deterministic choice is wanted.
func (s Set) AscSeq() Seq {
	return AscSeq(s.IDs()...)
}

// String renders the set as "{a, b}".
func (s Set) String() string {
	ids := s.IDs()
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = fmt.Sprintf("%d", id)
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// Permutations invokes fn with every permutation of the set's members (as
// ascending Elems) until fn returns false. The empty set has exactly one
// permutation, the empty sequence. The iteration order is deterministic
// (lexicographic over IDs). It is intended for the small partitioning-key
// sets of window specifications; the caller is responsible for not calling
// it on large sets.
func (s Set) Permutations(fn func(Seq) bool) {
	ids := s.IDs()
	perm := make([]ID, len(ids))
	copy(perm, ids)
	permute(perm, 0, fn)
}

func permute(ids []ID, k int, fn func(Seq) bool) bool {
	if k == len(ids) {
		return fn(AscSeq(ids...))
	}
	// Generate in deterministic order: sort the tail candidates.
	tail := append([]ID(nil), ids[k:]...)
	sort.Slice(tail, func(i, j int) bool { return tail[i] < tail[j] })
	for _, cand := range tail {
		// Move cand to position k.
		idx := k
		for ids[idx] != cand {
			idx++
		}
		ids[k], ids[idx] = ids[idx], ids[k]
		if !permute(ids, k+1, fn) {
			return false
		}
		ids[k], ids[idx] = ids[idx], ids[k]
	}
	return true
}
