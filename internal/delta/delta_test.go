package delta

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/catalog"
	"repro/internal/sql"
	"repro/internal/storage"
	"repro/internal/window"
)

// ws builds a 3-column test table: k (partition), o (order), v (value).
func ws(rows ...[3]int64) *storage.Table {
	t := storage.NewTable(storage.NewSchema(
		storage.Column{Name: "k", Type: storage.TypeInt},
		storage.Column{Name: "o", Type: storage.TypeInt},
		storage.Column{Name: "v", Type: storage.TypeInt},
	))
	for _, r := range rows {
		t.MustAppend(storage.Tuple{storage.Int(r[0]), storage.Int(r[1]), storage.Int(r[2])})
	}
	return t
}

// prep prepares src against a catalog holding table t as "t".
func prep(tb testing.TB, t *storage.Table, src string) (*sql.MaintainInfo, *catalog.Entry) {
	tb.Helper()
	cat := catalog.New()
	entry := cat.Register("t", t)
	r := &sql.Runner{Catalog: cat}
	p, err := r.Prepare(src)
	if err != nil {
		tb.Fatal(err)
	}
	info, err := p.Maintenance()
	if err != nil {
		tb.Fatal(err)
	}
	return info, entry
}

// applyAll drives batches through both a maintainer and a reference
// (bootstrap-from-scratch) evaluation, comparing the maintained state
// after every batch.
func checkMaintained(t *testing.T, src string, base *storage.Table, batches [][]storage.Tuple) *Update {
	t.Helper()
	info, entry := prep(t, base, src)
	snap, gen := entry.Snapshot()
	m, err := NewMaintainer(info, snap, gen)
	if err != nil {
		t.Fatal(err)
	}
	var last *Update
	for bi, rows := range batches {
		start, g, err := entry.Append(rows, 0)
		if err != nil {
			t.Fatal(err)
		}
		stored := entry.Table().Rows[start : start+int64(len(rows))]
		last, err = m.Apply(Batch{Table: "t", Rows: stored, StartRid: start, Gen: g})
		if err != nil {
			t.Fatal(err)
		}
		// Reference: bootstrap a fresh maintainer over the full table.
		refSnap, refGen := entry.Snapshot()
		ref, err := NewMaintainer(info, refSnap, refGen)
		if err != nil {
			t.Fatal(err)
		}
		if len(m.rows) != len(ref.rows) {
			t.Fatalf("batch %d: %d maintained rows, reference %d", bi, len(m.rows), len(ref.rows))
		}
		for wi := range m.wfs {
			got, want := m.wfs[wi].vals, ref.wfs[wi].vals
			// The reference indexes positions in scan order; the maintained
			// rows are also in scan order (appends go to the end), so the
			// value slices align positionally.
			for pos := range got {
				if got[pos] != want[pos] {
					t.Errorf("batch %d wf %d row %d (rid %d): maintained %v (%s), reference %v (%s)",
						bi, wi, pos, m.rids[pos], got[pos], got[pos].Kind(), want[pos], want[pos].Kind())
				}
			}
		}
	}
	return last
}

func TestMaintainRankTail(t *testing.T) {
	base := ws([3]int64{1, 10, 5}, [3]int64{1, 20, 7}, [3]int64{2, 5, 1})
	u := checkMaintained(t, "SELECT k, o, rank() OVER (PARTITION BY k ORDER BY o) FROM t", base,
		[][]storage.Tuple{
			{{storage.Int(1), storage.Int(30), storage.Int(2)}, {storage.Int(1), storage.Int(30), storage.Int(3)}},
			{{storage.Int(2), storage.Int(6), storage.Int(4)}, {storage.Int(3), storage.Int(1), storage.Int(9)}},
		})
	if u.Upserted != 0 {
		t.Errorf("tail rank appends upserted %d old rows", u.Upserted)
	}
}

func TestMaintainRankMidPartitionUpserts(t *testing.T) {
	base := ws([3]int64{1, 10, 5}, [3]int64{1, 20, 7}, [3]int64{1, 30, 9})
	u := checkMaintained(t, "SELECT o, rank() OVER (PARTITION BY k ORDER BY o) FROM t", base,
		[][]storage.Tuple{{{storage.Int(1), storage.Int(15), storage.Int(1)}}})
	// Inserting o=15 shifts the ranks of o=20 and o=30: two upserts.
	if u.Upserted != 2 || u.Appended != 1 {
		t.Errorf("mid-partition insert: %d upserts, %d appends; want 2, 1", u.Upserted, u.Appended)
	}
	for _, row := range u.Rows {
		op := row[len(row)-2].Str()
		if op != OpAppend && op != OpUpsert {
			t.Errorf("unexpected op %q", op)
		}
	}
}

func TestMaintainFunctionMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	randomRows := func(n int, maxO int64) [][3]int64 {
		out := make([][3]int64, n)
		for i := range out {
			out[i] = [3]int64{rng.Int63n(4), rng.Int63n(maxO), rng.Int63n(50)}
		}
		return out
	}
	baseRows := randomRows(60, 100)
	queries := []string{
		"SELECT k, dense_rank() OVER (PARTITION BY k ORDER BY o) FROM t",
		"SELECT k, row_number() OVER (PARTITION BY k ORDER BY o) FROM t",
		"SELECT k, sum(v) OVER (PARTITION BY k ORDER BY o) FROM t",
		"SELECT k, avg(v) OVER (PARTITION BY k ORDER BY o) FROM t",
		"SELECT k, count(v) OVER (PARTITION BY k ORDER BY o) FROM t",
		"SELECT k, min(v) OVER (PARTITION BY k ORDER BY o) FROM t",
		"SELECT k, max(v) OVER (PARTITION BY k ORDER BY o) FROM t",
		"SELECT k, sum(v) OVER (PARTITION BY k ORDER BY o ROWS BETWEEN UNBOUNDED PRECEDING AND CURRENT ROW) FROM t",
		"SELECT k, sum(v) OVER (PARTITION BY k ORDER BY o ROWS BETWEEN 3 PRECEDING AND CURRENT ROW) FROM t",
		"SELECT k, avg(v) OVER (PARTITION BY k ORDER BY o ROWS BETWEEN 2 PRECEDING AND CURRENT ROW) FROM t",
		"SELECT k, min(v) OVER (PARTITION BY k ORDER BY o ROWS BETWEEN 4 PRECEDING AND CURRENT ROW) FROM t",
		// Full-recompute modes must stay correct too.
		"SELECT k, percent_rank() OVER (PARTITION BY k ORDER BY o) FROM t",
		"SELECT k, cume_dist() OVER (PARTITION BY k ORDER BY o) FROM t",
		"SELECT k, sum(v) OVER (PARTITION BY k ORDER BY o ROWS BETWEEN CURRENT ROW AND UNBOUNDED FOLLOWING) FROM t",
		"SELECT k, lag(v) OVER (PARTITION BY k ORDER BY o) FROM t",
		// Windowless and filtered statements maintain too.
		"SELECT k, v FROM t WHERE v > 10",
		"SELECT k, rank() OVER (PARTITION BY k ORDER BY o) FROM t WHERE v > 10",
	}
	for qi, q := range queries {
		t.Run(fmt.Sprintf("q%d", qi), func(t *testing.T) {
			base := ws(baseRows...)
			// Three batches: monotone tail appends (hit the patch paths),
			// then random (exercise fallback), then a mix with ties.
			tail := [][3]int64{{0, 200, 3}, {1, 201, 4}, {0, 205, 11}, {2, 210, 30}}
			random := randomRows(10, 100)
			ties := [][3]int64{{0, 205, 8}, {1, 201, 2}, {3, 50, 6}}
			var batches [][]storage.Tuple
			for _, group := range [][][3]int64{tail, random, ties} {
				var b []storage.Tuple
				for _, r := range group {
					b = append(b, storage.Tuple{storage.Int(r[0]), storage.Int(r[1]), storage.Int(r[2])})
				}
				batches = append(batches, b)
			}
			checkMaintained(t, q, base, batches)
		})
	}
}

func TestMaintainSumIntToFloatRetype(t *testing.T) {
	// A float appended to an all-int SUM partition retypes every old
	// value from INT to FLOAT: the tail path must refuse and the full
	// recompute must upsert the old rows.
	base := storage.NewTable(storage.NewSchema(
		storage.Column{Name: "k", Type: storage.TypeInt},
		storage.Column{Name: "o", Type: storage.TypeInt},
		storage.Column{Name: "v", Type: storage.TypeFloat},
	))
	base.MustAppend(storage.Tuple{storage.Int(1), storage.Int(1), storage.Float(2)})
	base.MustAppend(storage.Tuple{storage.Int(1), storage.Int(2), storage.Float(3)})
	u := checkMaintained(t, "SELECT k, sum(v) OVER (PARTITION BY k ORDER BY o) FROM t", base,
		[][]storage.Tuple{{{storage.Int(1), storage.Int(3), storage.Float(1.5)}}})
	if u.Appended != 1 {
		t.Errorf("appended %d", u.Appended)
	}
}

func TestMaintainNulls(t *testing.T) {
	base := storage.NewTable(storage.NewSchema(
		storage.Column{Name: "k", Type: storage.TypeInt},
		storage.Column{Name: "o", Type: storage.TypeInt},
		storage.Column{Name: "v", Type: storage.TypeInt},
	))
	base.MustAppend(storage.Tuple{storage.Int(1), storage.Int(1), storage.Null})
	u := checkMaintained(t, "SELECT k, sum(v) OVER (PARTITION BY k ORDER BY o), count(v) OVER (PARTITION BY k ORDER BY o) FROM t", base,
		[][]storage.Tuple{
			{{storage.Int(1), storage.Int(2), storage.Null}},
			{{storage.Int(1), storage.Int(3), storage.Int(4)}, {storage.Int(1), storage.Null, storage.Int(9)}},
		})
	_ = u
}

func TestMaintainIncrementality(t *testing.T) {
	// A large base with a tail-landing batch must re-evaluate far fewer
	// rows than the table holds.
	rng := rand.New(rand.NewSource(42))
	var rows [][3]int64
	for i := 0; i < 5000; i++ {
		rows = append(rows, [3]int64{rng.Int63n(50), int64(i), rng.Int63n(100)})
	}
	base := ws(rows...)
	info, entry := prep(t, base, "SELECT k, rank() OVER (PARTITION BY k ORDER BY o), sum(v) OVER (PARTITION BY k ORDER BY o) FROM t")
	snap, gen := entry.Snapshot()
	m, err := NewMaintainer(info, snap, gen)
	if err != nil {
		t.Fatal(err)
	}
	var batch []storage.Tuple
	for i := 0; i < 100; i++ {
		batch = append(batch, storage.Tuple{storage.Int(rng.Int63n(50)), storage.Int(int64(10000 + i)), storage.Int(rng.Int63n(100))})
	}
	start, g, err := entry.Append(batch, 0)
	if err != nil {
		t.Fatal(err)
	}
	u, err := m.Apply(Batch{Table: "t", Rows: batch, StartRid: start, Gen: g})
	if err != nil {
		t.Fatal(err)
	}
	if u.RowsScanned >= u.FullRows/10 {
		t.Errorf("maintenance scanned %d rows, full recompute %d: not incremental", u.RowsScanned, u.FullRows)
	}
	if len(u.Steps) != 2 || u.Metrics().Steps[0].Rows != u.Steps[0] {
		t.Errorf("metrics mismatch: %v", u.Steps)
	}
	if u.Appended != 100 || u.Upserted != 0 {
		t.Errorf("tail batch: %d appends, %d upserts", u.Appended, u.Upserted)
	}
}

func TestMaintainStaleBatchSkipped(t *testing.T) {
	base := ws([3]int64{1, 1, 1})
	info, entry := prep(t, base, "SELECT k FROM t")
	snap, gen := entry.Snapshot()
	m, err := NewMaintainer(info, snap, gen)
	if err != nil {
		t.Fatal(err)
	}
	u, err := m.Apply(Batch{Table: "t", Rows: []storage.Tuple{{storage.Int(9), storage.Int(9), storage.Int(9)}}, StartRid: 0, Gen: gen})
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Rows) != 0 || u.Watermark != gen {
		t.Errorf("stale batch applied: %+v", u)
	}
}

func TestMaintainNoOrderByRank(t *testing.T) {
	// rank() without ORDER BY: every row is a peer, rank 1 forever; the
	// tail path must handle the all-ties case.
	base := ws([3]int64{1, 1, 1}, [3]int64{1, 2, 2})
	checkMaintained(t, "SELECT k, rank() OVER (PARTITION BY k), row_number() OVER (PARTITION BY k) FROM t", base,
		[][]storage.Tuple{{{storage.Int(1), storage.Int(3), storage.Int(3)}}})
}

func TestHubPublishSubscribe(t *testing.T) {
	h := NewHub()
	s := h.Subscribe("T", 2)
	if n := h.Subscribers("t"); n != 1 {
		t.Fatalf("subscribers = %d", n)
	}
	h.Publish(Batch{Table: "t", Gen: 2})
	h.Publish(Batch{Table: "other", Gen: 3})
	b := <-s.Chan()
	if b.Gen != 2 {
		t.Errorf("got gen %d", b.Gen)
	}
	select {
	case b, ok := <-s.Chan():
		if ok {
			t.Errorf("unexpected delivery %+v", b)
		}
	default:
	}
	s.Close()
	s.Close() // idempotent
	if n := h.Subscribers("t"); n != 0 {
		t.Errorf("subscribers after close = %d", n)
	}
	if _, ok := <-s.Chan(); ok {
		t.Errorf("channel open after close")
	}
	if s.Err() != nil {
		t.Errorf("deliberate close recorded error %v", s.Err())
	}
}

func TestHubOverflowLags(t *testing.T) {
	h := NewHub()
	s := h.Subscribe("t", 1)
	h.Publish(Batch{Table: "t", Gen: 2})
	h.Publish(Batch{Table: "t", Gen: 3}) // buffer full: dropped
	if n := h.Subscribers("t"); n != 0 {
		t.Errorf("lagged sub still registered")
	}
	if b := <-s.Chan(); b.Gen != 2 {
		t.Errorf("buffered batch gen %d", b.Gen)
	}
	if _, ok := <-s.Chan(); ok {
		t.Errorf("channel still open after lag")
	}
	if s.Err() != ErrLagged {
		t.Errorf("Err = %v, want ErrLagged", s.Err())
	}
}

// TestMaintainRangeTies pins the subtle case: an append whose ordering
// key ties the partition's current maximum extends the old rows' RANGE
// CURRENT ROW frames, so running RANGE aggregates must take the full
// path (and upsert the peers), while ROWS running aggregates and rank
// take the tail path with no upserts.
func TestMaintainRangeTies(t *testing.T) {
	base := ws([3]int64{1, 10, 5}, [3]int64{1, 20, 7})
	u := checkMaintained(t, "SELECT k, sum(v) OVER (PARTITION BY k ORDER BY o) FROM t", base,
		[][]storage.Tuple{{{storage.Int(1), storage.Int(20), storage.Int(100)}}})
	// o=20 ties the old max: the old o=20 row's frame now includes the
	// new row, changing its sum from 12 to 112 — one upsert.
	if u.Upserted != 1 {
		t.Errorf("RANGE tie upserted %d rows, want 1", u.Upserted)
	}
	u2 := checkMaintained(t, "SELECT k, sum(v) OVER (PARTITION BY k ORDER BY o ROWS BETWEEN UNBOUNDED PRECEDING AND CURRENT ROW) FROM t", base,
		[][]storage.Tuple{{{storage.Int(1), storage.Int(20), storage.Int(100)}}})
	if u2.Upserted != 0 {
		t.Errorf("ROWS tie upserted %d rows, want 0", u2.Upserted)
	}
	_ = window.Spec{}
}
