// Package delta is the mutation-and-maintenance subsystem: a per-table
// append bus (Hub) plus an incremental re-evaluator (Maintainer) that
// keeps a prepared window query's output current under appends without
// recomputing the whole chain. The maintenance strategy exploits the
// frame structure the paper's executor is built on — RANGE/ROWS frames
// ending at CURRENT ROW only depend on a bounded neighborhood near each
// partition's tail, and rank-based functions patch per partition — so a
// batch landing in a few partitions touches a few partition tails, not
// the table.
package delta

import (
	"errors"
	"strings"
	"sync"

	"repro/internal/storage"
)

// ErrLagged reports that a subscription's delivery buffer overflowed and
// the hub dropped it: the subscriber was too slow for the append rate and
// must re-subscribe (getting a fresh snapshot) rather than silently miss
// deltas.
var ErrLagged = errors.New("delta: subscription lagged behind appends")

// Batch is one published append: the stored (validated, coerced) rows,
// the global row index of the first one, and the table's data generation
// after the append — the watermark subscribers see.
type Batch struct {
	Table    string
	Rows     []storage.Tuple
	StartRid int64
	Gen      uint64
}

// Hub fans appends out to per-table subscribers. Publish never blocks:
// a subscriber whose buffer is full is closed with ErrLagged instead of
// back-pressuring the ingest path. Table names are case-insensitive,
// matching the catalog.
type Hub struct {
	mu   sync.Mutex
	subs map[string]map[*Sub]struct{}
}

// NewHub returns an empty hub.
func NewHub() *Hub {
	return &Hub{subs: make(map[string]map[*Sub]struct{})}
}

// DefaultSubBuffer is the delivery buffer of Subscribe when buf <= 0.
const DefaultSubBuffer = 256

// Subscribe registers a delivery channel for a table's appends. The
// caller must consume Chan until it closes, then check Err; Close
// unsubscribes early.
func (h *Hub) Subscribe(table string, buf int) *Sub {
	if buf <= 0 {
		buf = DefaultSubBuffer
	}
	key := strings.ToLower(table)
	s := &Sub{hub: h, key: key, ch: make(chan Batch, buf)}
	h.mu.Lock()
	defer h.mu.Unlock()
	set, ok := h.subs[key]
	if !ok {
		set = make(map[*Sub]struct{})
		h.subs[key] = set
	}
	set[s] = struct{}{}
	return s
}

// Publish delivers b to every subscriber of b.Table. Subscribers that
// cannot accept the batch (full buffer) are dropped with ErrLagged.
func (h *Hub) Publish(b Batch) {
	key := strings.ToLower(b.Table)
	h.mu.Lock()
	defer h.mu.Unlock()
	for s := range h.subs[key] {
		select {
		case s.ch <- b:
		default:
			s.err = ErrLagged
			s.dropLocked()
		}
	}
}

// Subscribers returns the number of live subscriptions on a table;
// tests use it to assert drain-to-zero.
func (h *Hub) Subscribers(table string) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs[strings.ToLower(table)])
}

// Sub is one subscription. Receive from Chan; a closed channel means the
// subscription ended — Err distinguishes a deliberate Close (nil) from a
// buffer overflow (ErrLagged).
type Sub struct {
	hub    *Hub
	key    string
	ch     chan Batch
	closed bool
	err    error
}

// Chan returns the delivery channel.
func (s *Sub) Chan() <-chan Batch { return s.ch }

// Err returns why the channel closed; nil until it has.
func (s *Sub) Err() error {
	s.hub.mu.Lock()
	defer s.hub.mu.Unlock()
	return s.err
}

// Close unsubscribes and closes the delivery channel. Idempotent.
func (s *Sub) Close() {
	s.hub.mu.Lock()
	defer s.hub.mu.Unlock()
	s.dropLocked()
}

// dropLocked unregisters and closes the channel; callers hold hub.mu,
// which also serializes against Publish's sends.
func (s *Sub) dropLocked() {
	if s.closed {
		return
	}
	s.closed = true
	set := s.hub.subs[s.key]
	delete(set, s)
	if len(set) == 0 {
		delete(s.hub.subs, s.key)
	}
	close(s.ch)
}
