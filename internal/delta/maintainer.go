package delta

import (
	"fmt"
	"sort"

	"repro/internal/exec"
	"repro/internal/sql"
	"repro/internal/storage"
	"repro/internal/window"
)

// Delta-row operation tags carried in the _op meta column.
const (
	// OpInit tags a row of the subscription's initial result.
	OpInit = "init"
	// OpAppend tags a newly ingested row's output.
	OpAppend = "append"
	// OpUpsert tags a previously emitted row whose derived values changed.
	OpUpsert = "upsert"
)

// MetaColumns are appended to a maintained query's output schema: the
// base-table row id, the operation tag, and the data-generation watermark
// the row is current as of.
func MetaColumns() []storage.Column {
	return []storage.Column{
		{Name: "_rid", Type: storage.TypeInt},
		{Name: "_op", Type: storage.TypeString},
		{Name: "_watermark", Type: storage.TypeInt},
	}
}

// maintenance modes: how a spec's values react to rows appended at a
// partition's tail (in ordering-key position).
const (
	// modeFull recomputes every dirty partition: unbounded-following
	// frames, RANGE offset frames, n-dependent functions (percent_rank,
	// cume_dist, ntile), and reference functions all couple old rows to
	// new ones arbitrarily.
	modeFull = iota
	// modeRowNumber assigns n+1, n+2, ... to tail rows.
	modeRowNumber
	// modeRank patches rank from the last peer group's start.
	modeRank
	// modeDense patches dense_rank from the last distinct-key count.
	modeDense
	// modeRunning extends a running aggregate (UNBOUNDED PRECEDING ..
	// CURRENT ROW) from a per-partition checkpoint — the spilling paper's
	// incremental-aggregation trick.
	modeRunning
	// modeLookback re-evaluates a ROWS k PRECEDING .. CURRENT ROW
	// aggregate over the stored k-row tail plus the new rows.
	modeLookback
)

// classify maps a spec to its maintenance mode.
func classify(spec window.Spec) int {
	switch spec.Kind {
	case window.RowNumber:
		return modeRowNumber
	case window.Rank:
		return modeRank
	case window.DenseRank:
		return modeDense
	case window.Count, window.Sum, window.Avg, window.Min, window.Max:
		f := spec.EffectiveFrame()
		if f.Start.Type == window.UnboundedPreceding && f.End.Type == window.CurrentRow {
			return modeRunning
		}
		if f.Mode == window.Rows && f.Start.Type == window.Preceding && f.End.Type == window.CurrentRow {
			return modeLookback
		}
		return modeFull
	default:
		return modeFull
	}
}

// partState is one window partition's maintenance state: its row
// positions in evaluation order plus the running checkpoint the tail
// paths extend. Checkpoint fields are only meaningful for the spec's
// mode; rebuild refreshes all of them in one linear pass.
type partState struct {
	// positions index Maintainer.rows, sorted by (OK, arrival) — the
	// evaluation order of a stable sort over the scan order.
	positions []int

	rank   int64 // rank of the last row
	dense  int64 // dense_rank of the last row
	cnt    int64 // running non-NULL argument count (rows for COUNT(*))
	sumI   int64
	sumF   float64
	allInt bool          // no FLOAT argument seen in the partition
	ext    storage.Value // running MIN/MAX extreme
}

// wfState is one spec's maintenance state across all partitions.
type wfState struct {
	spec  window.Spec
	mode  int
	vals  []storage.Value // derived value per Maintainer.rows position
	parts map[string]*partState
}

// Maintainer keeps one prepared statement's output current under appends.
// It owns a filtered copy of the base rows (the statement's WHERE view)
// and, per window spec, the derived value of every row plus per-partition
// checkpoints. Apply ingests one published batch and returns the changed
// output rows. Not safe for concurrent use; a subscription drives its
// maintainer from one goroutine.
type Maintainer struct {
	info *sql.MaintainInfo
	rows []storage.Tuple // WHERE-filtered base rows, scan order
	rids []int64         // global base-table row index per row
	gen  uint64          // data generation covered
	wfs  []*wfState
	out  *storage.Schema
}

// Update is the result of applying one batch: the projected delta rows
// (appends then upserts, each tagged and watermarked), plus the scan
// accounting that proves incrementality.
type Update struct {
	Rows      []storage.Tuple
	Watermark uint64
	Appended  int
	Upserted  int
	// RowsScanned counts row visits window maintenance made for this
	// batch; FullRows is what a from-scratch recompute would have made
	// (filtered rows × specs). Steps breaks RowsScanned down per spec;
	// Metrics exposes the same numbers in the executor's shape.
	RowsScanned int64
	FullRows    int64
	Steps       []int64
}

// Metrics renders the update's scan accounting as executor metrics — one
// step per maintained spec — so serving layers report maintenance cost in
// the same currency as chain execution.
func (u *Update) Metrics() *exec.Metrics {
	m := &exec.Metrics{}
	for i, n := range u.Steps {
		m.Steps = append(m.Steps, exec.StepMetrics{WFID: i, Rows: n})
	}
	return m
}

// NewMaintainer bootstraps maintenance state for info over the table
// snapshot t at data generation gen: it filters the rows, evaluates every
// spec once (exactly what a fresh execution would compute), and builds
// the per-partition checkpoints the tail paths extend.
func NewMaintainer(info *sql.MaintainInfo, t *storage.Table, gen uint64) (*Maintainer, error) {
	m := &Maintainer{
		info: info,
		gen:  gen,
		out:  storage.NewSchema(append(append([]storage.Column{}, info.OutCols...), MetaColumns()...)...),
	}
	for i, row := range t.Rows {
		ok, err := m.filter(row)
		if err != nil {
			return nil, err
		}
		if ok {
			m.rows = append(m.rows, row)
			m.rids = append(m.rids, int64(i))
		}
	}
	for _, spec := range info.Specs {
		wf := &wfState{
			spec:  spec,
			mode:  classify(spec),
			vals:  make([]storage.Value, len(m.rows)),
			parts: make(map[string]*partState),
		}
		var order []string // partition keys in first-seen order
		for pos, row := range m.rows {
			key := partKey(row, spec)
			ps, ok := wf.parts[key]
			if !ok {
				ps = &partState{}
				wf.parts[key] = ps
				order = append(order, key)
			}
			ps.positions = append(ps.positions, pos)
		}
		for _, key := range order {
			ps := wf.parts[key]
			m.sortPositions(ps.positions, spec)
			if err := m.recomputePartition(wf, ps, nil, 0); err != nil {
				return nil, err
			}
		}
		m.wfs = append(m.wfs, wf)
	}
	return m, nil
}

// Generation returns the data generation the maintainer is current as of.
func (m *Maintainer) Generation() uint64 { return m.gen }

// OutputColumns returns the maintained output schema (projection plus
// meta columns).
func (m *Maintainer) OutputColumns() []storage.Column { return m.out.Columns }

// Initial returns the full current result, every row tagged OpInit at the
// bootstrap watermark — what a subscription emits before its first delta.
func (m *Maintainer) Initial() []storage.Tuple {
	out := make([]storage.Tuple, len(m.rows))
	for pos := range m.rows {
		out[pos] = m.projectPos(pos, OpInit, m.gen)
	}
	return out
}

// Apply ingests one published batch: WHERE-filters the new rows, patches
// or recomputes each spec's dirty partitions, and returns the delta —
// appended rows first (in row-id order), then upserted old rows whose
// derived values changed. Batches at or below the covered generation are
// skipped (they were already part of the bootstrap snapshot).
func (m *Maintainer) Apply(b Batch) (*Update, error) {
	if b.Gen <= m.gen {
		return &Update{Watermark: m.gen}, nil
	}
	var fresh []storage.Tuple
	var freshRids []int64
	for i, row := range b.Rows {
		ok, err := m.filter(row)
		if err != nil {
			return nil, err
		}
		if ok {
			fresh = append(fresh, row)
			freshRids = append(freshRids, b.StartRid+int64(i))
		}
	}
	base := len(m.rows)
	m.rows = append(m.rows, fresh...)
	m.rids = append(m.rids, freshRids...)

	u := &Update{Watermark: b.Gen}
	changed := make(map[int]bool) // old positions with changed derived values
	steps := make([]int64, len(m.wfs))
	for wi, wf := range m.wfs {
		wf.vals = append(wf.vals, make([]storage.Value, len(fresh))...)
		// Group the new positions per partition, preserving arrival order.
		dirty := make(map[string][]int)
		var order []string
		for i := range fresh {
			pos := base + i
			key := partKey(m.rows[pos], wf.spec)
			if _, ok := dirty[key]; !ok {
				order = append(order, key)
			}
			dirty[key] = append(dirty[key], pos)
		}
		for _, key := range order {
			newPos := dirty[key]
			m.sortPositions(newPos, wf.spec)
			ps, exists := wf.parts[key]
			if !exists {
				ps = &partState{positions: newPos}
				wf.parts[key] = ps
				if err := m.recomputePartition(wf, ps, nil, 0); err != nil {
					return nil, err
				}
				steps[wi] += int64(len(newPos))
				continue
			}
			scanned, err := m.applyPartition(wf, ps, newPos, changed, base)
			if err != nil {
				return nil, err
			}
			steps[wi] += scanned
		}
	}
	u.Steps = steps
	for _, n := range steps {
		u.RowsScanned += n
	}
	u.FullRows = int64(len(m.rows)) * int64(len(m.wfs))
	m.gen = b.Gen

	for pos := base; pos < len(m.rows); pos++ {
		u.Rows = append(u.Rows, m.projectPos(pos, OpAppend, b.Gen))
		u.Appended++
	}
	upserts := make([]int, 0, len(changed))
	for pos := range changed {
		upserts = append(upserts, pos)
	}
	sort.Ints(upserts)
	for _, pos := range upserts {
		u.Rows = append(u.Rows, m.projectPos(pos, OpUpsert, b.Gen))
		u.Upserted++
	}
	return u, nil
}

// applyPartition routes one existing dirty partition down the tail patch
// or the full-recompute path, returning the rows scanned.
func (m *Maintainer) applyPartition(wf *wfState, ps *partState, newPos []int, changed map[int]bool, oldLimit int) (int64, error) {
	if tailable, lookback := m.tailApplicable(wf, ps, newPos); tailable {
		n := int64(len(newPos)) + lookback
		return n, m.patchTail(wf, ps, newPos)
	}
	// Full per-partition recompute: merge the sorted position lists (the
	// stable concat-then-sort preserves arrival order within equal keys),
	// re-evaluate, and diff against the old values.
	old := ps.positions
	merged := make([]int, 0, len(old)+len(newPos))
	merged = append(append(merged, old...), newPos...)
	m.sortPositions(merged, wf.spec)
	ps.positions = merged
	if err := m.recomputePartition(wf, ps, changed, oldLimit); err != nil {
		return 0, err
	}
	return int64(len(merged)), nil
}

// tailApplicable decides whether newPos (sorted) lands strictly at the
// partition's tail in ordering-key position, so the spec's patch mode
// applies without touching old rows. It returns the extra lookback rows
// the patch will read (modeLookback only).
func (m *Maintainer) tailApplicable(wf *wfState, ps *partState, newPos []int) (bool, int64) {
	if wf.mode == modeFull {
		return false, 0
	}
	spec := wf.spec
	last := m.rows[ps.positions[len(ps.positions)-1]]
	c := storage.CompareSeq(last, m.rows[newPos[0]], spec.OK)
	if c > 0 {
		return false, 0 // lands before the tail: old frames shift
	}
	if c == 0 && wf.mode == modeRunning && spec.EffectiveFrame().Mode == window.Range {
		// A tie extends the last peer group, so the old rows' RANGE
		// CURRENT ROW frames grow — their values change.
		return false, 0
	}
	var lookback int64
	switch wf.mode {
	case modeRunning, modeLookback:
		if spec.Kind == window.Sum {
			// SUM's output kind is INT iff every partition argument is an
			// integer; a FLOAT landing in an all-INT partition retypes
			// every old value, so only a full recompute is faithful.
			newAllInt := true
			for _, pos := range newPos {
				if v := m.rows[pos][spec.Arg]; !v.IsNull() && v.Kind() != storage.KindInt {
					newAllInt = false
					break
				}
			}
			if wf.mode == modeLookback && (!ps.allInt || !newAllInt) {
				return false, 0 // mini-slice evaluation can't see partition-wide kinds
			}
			if ps.allInt && !newAllInt {
				return false, 0
			}
		}
		if wf.mode == modeLookback {
			k := int64(spec.EffectiveFrame().Start.Offset)
			if k > int64(len(ps.positions)) {
				k = int64(len(ps.positions))
			}
			lookback = k
		}
	}
	return true, lookback
}

// patchTail extends a partition's values over newPos (sorted, all at or
// after the old tail) without revisiting old rows.
func (m *Maintainer) patchTail(wf *wfState, ps *partState, newPos []int) error {
	spec := wf.spec
	switch wf.mode {
	case modeRowNumber:
		for _, pos := range newPos {
			wf.vals[pos] = storage.Int(int64(len(ps.positions)) + 1)
			ps.positions = append(ps.positions, pos)
		}
	case modeRank, modeDense:
		last := m.rows[ps.positions[len(ps.positions)-1]]
		for _, pos := range newPos {
			row := m.rows[pos]
			if storage.CompareSeq(last, row, spec.OK) != 0 {
				ps.rank = int64(len(ps.positions)) + 1
				ps.dense++
			}
			if wf.mode == modeRank {
				wf.vals[pos] = storage.Int(ps.rank)
			} else {
				wf.vals[pos] = storage.Int(ps.dense)
			}
			ps.positions = append(ps.positions, pos)
			last = row
		}
	case modeRunning:
		if spec.EffectiveFrame().Mode == window.Range {
			// Peer groups share one value: accumulate the whole group,
			// then assign. Ties against the old tail were excluded.
			i := 0
			for i < len(newPos) {
				j := i + 1
				for j < len(newPos) && storage.CompareSeq(m.rows[newPos[i]], m.rows[newPos[j]], spec.OK) == 0 {
					j++
				}
				for k := i; k < j; k++ {
					if err := ps.accumulate(m.rows[newPos[k]], spec); err != nil {
						return err
					}
				}
				v := ps.runningValue(spec)
				for k := i; k < j; k++ {
					wf.vals[newPos[k]] = v
					ps.positions = append(ps.positions, newPos[k])
				}
				i = j
			}
		} else {
			for _, pos := range newPos {
				if err := ps.accumulate(m.rows[pos], spec); err != nil {
					return err
				}
				wf.vals[pos] = ps.runningValue(spec)
				ps.positions = append(ps.positions, pos)
			}
		}
	case modeLookback:
		k := int(spec.EffectiveFrame().Start.Offset)
		tailStart := len(ps.positions) - k
		if tailStart < 0 {
			tailStart = 0
		}
		tail := ps.positions[tailStart:]
		mini := make([]storage.Tuple, 0, len(tail)+len(newPos))
		for _, pos := range tail {
			mini = append(mini, m.rows[pos])
		}
		for _, pos := range newPos {
			mini = append(mini, m.rows[pos])
		}
		vals, err := window.EvaluateSlice(mini, spec)
		if err != nil {
			return err
		}
		for i, pos := range newPos {
			wf.vals[pos] = vals[len(tail)+i]
			ps.positions = append(ps.positions, pos)
			if err := ps.accumulate(m.rows[pos], spec); err != nil {
				return err // keeps allInt current for the SUM guard
			}
		}
	default:
		return fmt.Errorf("delta: patchTail on mode %d", wf.mode)
	}
	return nil
}

// recomputePartition evaluates the spec over the partition's (sorted)
// positions from scratch and rebuilds the checkpoint. Positions below
// oldLimit were emitted before this batch; when one's value changes it
// is recorded in changed (fresh positions are the caller's appends, not
// upserts). Bootstrap passes changed=nil.
func (m *Maintainer) recomputePartition(wf *wfState, ps *partState, changed map[int]bool, oldLimit int) error {
	rows := make([]storage.Tuple, len(ps.positions))
	for i, pos := range ps.positions {
		rows[i] = m.rows[pos]
	}
	vals, err := window.EvaluateSlice(rows, wf.spec)
	if err != nil {
		return err
	}
	for i, pos := range ps.positions {
		if changed != nil && pos < oldLimit && vals[i] != wf.vals[pos] {
			changed[pos] = true
		}
		wf.vals[pos] = vals[i]
	}
	if wf.mode != modeFull {
		ps.rebuild(rows, wf.spec)
	}
	return nil
}

// filter applies the statement's WHERE view.
func (m *Maintainer) filter(row storage.Tuple) (bool, error) {
	if m.info.Filter == nil {
		return true, nil
	}
	return m.info.Filter(row)
}

// sortPositions stable-sorts positions by the spec's ordering key; ties
// keep arrival (row-id) order, matching the executor's stable reorders.
func (m *Maintainer) sortPositions(positions []int, spec window.Spec) {
	sort.SliceStable(positions, func(i, j int) bool {
		return storage.CompareSeq(m.rows[positions[i]], m.rows[positions[j]], spec.OK) < 0
	})
}

// partKey encodes a row's partition-key values.
func partKey(row storage.Tuple, spec window.Spec) string {
	ids := spec.PK.IDs()
	var buf []byte
	for _, id := range ids {
		buf = storage.AppendTuple(buf, storage.Tuple{row[id]})
	}
	return string(buf)
}

// projectPos maps one maintained position to an output row with meta
// columns.
func (m *Maintainer) projectPos(pos int, op string, wm uint64) storage.Tuple {
	srcs := m.info.Sources
	t := make(storage.Tuple, len(srcs)+3)
	for i, s := range srcs {
		if s.WF >= 0 {
			t[i] = m.wfs[s.WF].vals[pos]
		} else {
			t[i] = m.rows[pos][s.Col]
		}
	}
	t[len(srcs)] = storage.Int(m.rids[pos])
	t[len(srcs)+1] = storage.StringVal(op)
	t[len(srcs)+2] = storage.Int(int64(wm))
	return t
}

// accumulate folds one row's argument into the running checkpoint.
func (ps *partState) accumulate(row storage.Tuple, spec window.Spec) error {
	if spec.Arg < 0 {
		ps.cnt++ // COUNT(*)
		return nil
	}
	v := row[spec.Arg]
	if v.IsNull() {
		return nil
	}
	switch v.Kind() {
	case storage.KindInt:
		ps.sumI += v.Int64()
		ps.sumF += float64(v.Int64())
	case storage.KindFloat:
		ps.sumF += v.Float64()
		ps.allInt = false
	default:
		if spec.Kind == window.Sum || spec.Kind == window.Avg {
			return fmt.Errorf("window: %s over non-numeric column", spec.Kind)
		}
	}
	ps.cnt++
	if ps.ext.IsNull() || betterExtreme(spec, v, ps.ext) {
		ps.ext = v
	}
	return nil
}

func betterExtreme(spec window.Spec, a, b storage.Value) bool {
	c := storage.Compare(a, b)
	if spec.Kind == window.Min {
		return c < 0
	}
	return c > 0
}

// runningValue renders the checkpoint as the spec's value at the
// partition's current tail — identical to what computePartition assigns
// to the last frame.
func (ps *partState) runningValue(spec window.Spec) storage.Value {
	switch spec.Kind {
	case window.Count:
		return storage.Int(ps.cnt)
	case window.Sum:
		if ps.cnt == 0 {
			return storage.Null
		}
		if ps.allInt {
			return storage.Int(ps.sumI)
		}
		return storage.Float(ps.sumF)
	case window.Avg:
		if ps.cnt == 0 {
			return storage.Null
		}
		return storage.Float(ps.sumF / float64(ps.cnt))
	case window.Min, window.Max:
		return ps.ext
	}
	return storage.Null
}

// rebuild refreshes the checkpoint from the partition's rows (already in
// evaluation order).
func (ps *partState) rebuild(rows []storage.Tuple, spec window.Spec) {
	ps.rank, ps.dense, ps.cnt, ps.sumI, ps.sumF = 0, 0, 0, 0, 0
	ps.allInt = true
	ps.ext = storage.Null
	for i, row := range rows {
		if i == 0 || storage.CompareSeq(rows[i-1], row, spec.OK) != 0 {
			ps.rank = int64(i) + 1
			ps.dense++
		}
		_ = ps.accumulate(row, spec)
	}
}
