// Package pagestore simulates the block device underneath the reordering
// operators. Spill files (sort runs, hash buckets) are written and read at
// page granularity and every page transfer is counted, so experiments can
// report exact block-I/O figures — the currency of the paper's cost models —
// independently of the machine's real disk.
//
// Two backends are provided: a memory backend (default; deterministic and
// fast, used by tests and benchmarks) and a file backend (temp files on the
// real filesystem, for runs larger than RAM). Both account identically.
package pagestore

import (
	"fmt"
	"io"
	"os"
	"sync/atomic"
)

// DefaultBlockSize is the page size used throughout the system when a
// configuration does not override it (8 KiB, PostgreSQL's default).
const DefaultBlockSize = 8192

// Stats accumulates block transfer counts. Safe for concurrent use.
type Stats struct {
	blocksRead    atomic.Int64
	blocksWritten atomic.Int64
	bytesRead     atomic.Int64
	bytesWritten  atomic.Int64
}

// BlocksRead returns the number of pages read back from spill files.
func (s *Stats) BlocksRead() int64 { return s.blocksRead.Load() }

// BlocksWritten returns the number of pages written to spill files.
func (s *Stats) BlocksWritten() int64 { return s.blocksWritten.Load() }

// BytesRead returns the payload bytes read back.
func (s *Stats) BytesRead() int64 { return s.bytesRead.Load() }

// BytesWritten returns the payload bytes written.
func (s *Stats) BytesWritten() int64 { return s.bytesWritten.Load() }

// TotalBlocks returns reads+writes, the paper's cost unit.
func (s *Stats) TotalBlocks() int64 { return s.BlocksRead() + s.BlocksWritten() }

// Reset zeroes all counters.
func (s *Stats) Reset() {
	s.blocksRead.Store(0)
	s.blocksWritten.Store(0)
	s.bytesRead.Store(0)
	s.bytesWritten.Store(0)
}

// Add merges other into s.
func (s *Stats) Add(other *Stats) {
	s.blocksRead.Add(other.BlocksRead())
	s.blocksWritten.Add(other.BlocksWritten())
	s.bytesRead.Add(other.BytesRead())
	s.bytesWritten.Add(other.BytesWritten())
}

// Store creates spill files over one backend with shared accounting.
type Store struct {
	blockSize int
	stats     *Stats
	dir       string // non-empty ⇒ file-backed
}

// NewMem returns a memory-backed store. stats may be nil.
func NewMem(blockSize int, stats *Stats) *Store {
	return newStore(blockSize, stats, "")
}

// NewFileBacked returns a store whose spill files live as temp files in dir
// (or the OS temp dir when dir is empty).
func NewFileBacked(dir string, blockSize int, stats *Stats) *Store {
	if dir == "" {
		dir = os.TempDir()
	}
	return newStore(blockSize, stats, dir)
}

func newStore(blockSize int, stats *Stats, dir string) *Store {
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	if stats == nil {
		stats = &Stats{}
	}
	return &Store{blockSize: blockSize, stats: stats, dir: dir}
}

// BlockSize returns the page size in bytes.
func (s *Store) BlockSize() int { return s.blockSize }

// Stats returns the shared counters.
func (s *Store) Stats() *Stats { return s.stats }

// Create opens a fresh spill file for sequential writing.
func (s *Store) Create() (*File, error) {
	f := &File{store: s}
	if s.dir != "" {
		osf, err := os.CreateTemp(s.dir, "windowdb-spill-*")
		if err != nil {
			return nil, fmt.Errorf("pagestore: create spill: %w", err)
		}
		f.osf = osf
	}
	return f, nil
}

// File is a spill file: write sequentially, Seal, then read via one or more
// independent Readers. Not safe for concurrent writers; readers are
// independent and may run concurrently after Seal.
type File struct {
	store  *Store
	mem    []byte   // memory backend payload
	osf    *os.File // file backend handle (nil for memory)
	size   int64
	sealed bool
	wbuf   []byte // current partial page
}

// Write appends payload bytes, flushing full pages with accounting.
func (f *File) Write(p []byte) (int, error) {
	if f.sealed {
		return 0, fmt.Errorf("pagestore: write after Seal")
	}
	n := len(p)
	bs := f.store.blockSize
	for len(p) > 0 {
		room := bs - len(f.wbuf)
		take := room
		if take > len(p) {
			take = len(p)
		}
		f.wbuf = append(f.wbuf, p[:take]...)
		p = p[take:]
		if len(f.wbuf) == bs {
			if err := f.flushPage(); err != nil {
				return 0, err
			}
		}
	}
	return n, nil
}

func (f *File) flushPage() error {
	if len(f.wbuf) == 0 {
		return nil
	}
	f.store.stats.blocksWritten.Add(1)
	f.store.stats.bytesWritten.Add(int64(len(f.wbuf)))
	if f.osf != nil {
		if _, err := f.osf.Write(f.wbuf); err != nil {
			return fmt.Errorf("pagestore: flush: %w", err)
		}
	} else {
		f.mem = append(f.mem, f.wbuf...)
	}
	f.size += int64(len(f.wbuf))
	f.wbuf = f.wbuf[:0]
	return nil
}

// Seal flushes the final partial page and makes the file readable.
func (f *File) Seal() error {
	if f.sealed {
		return nil
	}
	if err := f.flushPage(); err != nil {
		return err
	}
	f.sealed = true
	return nil
}

// Size returns payload bytes written (valid after Seal).
func (f *File) Size() int64 { return f.size }

// Blocks returns the number of pages the file occupies.
func (f *File) Blocks() int64 {
	bs := int64(f.store.blockSize)
	return (f.size + bs - 1) / bs
}

// Release frees backing resources. Readers must be finished.
func (f *File) Release() {
	f.mem = nil
	f.wbuf = nil
	if f.osf != nil {
		name := f.osf.Name()
		f.osf.Close()
		os.Remove(name)
		f.osf = nil
	}
}

// NewReader returns an independent sequential reader over the sealed file.
func (f *File) NewReader() (*Reader, error) {
	if !f.sealed {
		return nil, fmt.Errorf("pagestore: NewReader before Seal")
	}
	return &Reader{f: f}, nil
}

// Reader reads a sealed File sequentially, counting one block read per page
// it consumes.
type Reader struct {
	f          *File
	off        int64
	pagesRead  int64
	fileHandle *os.File
}

// Read implements io.Reader with page-granular accounting.
func (r *Reader) Read(p []byte) (int, error) {
	f := r.f
	if r.off >= f.size {
		return 0, io.EOF
	}
	// Bound the read to the remaining payload.
	remain := f.size - r.off
	if int64(len(p)) > remain {
		p = p[:remain]
	}
	var n int
	if f.osf != nil {
		if r.fileHandle == nil {
			h, err := os.Open(f.osf.Name())
			if err != nil {
				return 0, fmt.Errorf("pagestore: reopen spill: %w", err)
			}
			r.fileHandle = h
		}
		m, err := r.fileHandle.ReadAt(p, r.off)
		if err != nil && err != io.EOF {
			return m, err
		}
		n = m
	} else {
		n = copy(p, f.mem[r.off:])
	}
	if n == 0 {
		return 0, io.EOF
	}
	// Account pages crossed by this read.
	bs := int64(f.store.blockSize)
	firstPage := r.off / bs
	lastPage := (r.off + int64(n) - 1) / bs
	newPages := lastPage - firstPage + 1
	if r.pagesRead > 0 && firstPage == (r.off-1)/bs {
		// The first page of this read was already counted by the previous
		// read that ended inside it.
		newPages--
	}
	if newPages > 0 {
		f.store.stats.blocksRead.Add(newPages)
		r.pagesRead += newPages
	}
	f.store.stats.bytesRead.Add(int64(n))
	r.off += int64(n)
	return n, nil
}

// Close releases the reader's OS handle (memory backend: no-op).
func (r *Reader) Close() error {
	if r.fileHandle != nil {
		err := r.fileHandle.Close()
		r.fileHandle = nil
		return err
	}
	return nil
}
