package pagestore

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
)

func TestWriteReadAccounting(t *testing.T) {
	for _, backend := range []string{"mem", "file"} {
		t.Run(backend, func(t *testing.T) {
			stats := &Stats{}
			var store *Store
			if backend == "mem" {
				store = NewMem(1024, stats)
			} else {
				store = NewFileBacked(t.TempDir(), 1024, stats)
			}
			f, err := store.Create()
			if err != nil {
				t.Fatal(err)
			}
			payload := make([]byte, 2500) // 2.44 pages
			for i := range payload {
				payload[i] = byte(i)
			}
			if _, err := f.Write(payload); err != nil {
				t.Fatal(err)
			}
			if err := f.Seal(); err != nil {
				t.Fatal(err)
			}
			if got := stats.BlocksWritten(); got != 3 {
				t.Errorf("BlocksWritten = %d, want 3 (2 full + 1 partial page)", got)
			}
			if f.Blocks() != 3 || f.Size() != 2500 {
				t.Errorf("Blocks=%d Size=%d", f.Blocks(), f.Size())
			}

			rd, err := f.NewReader()
			if err != nil {
				t.Fatal(err)
			}
			got, err := io.ReadAll(rd)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, payload) {
				t.Fatalf("read back %d bytes, mismatch", len(got))
			}
			if r := stats.BlocksRead(); r != 3 {
				t.Errorf("BlocksRead = %d, want 3", r)
			}
			rd.Close()
			f.Release()
		})
	}
}

func TestReaderSmallReadsCountPagesOnce(t *testing.T) {
	stats := &Stats{}
	store := NewMem(100, stats)
	f, _ := store.Create()
	data := make([]byte, 1000) // 10 pages
	f.Write(data)
	f.Seal()
	stats.Reset()
	rd, _ := f.NewReader()
	buf := make([]byte, 7) // many tiny reads inside each page
	for {
		_, err := rd.Read(buf)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := stats.BlocksRead(); got != 10 {
		t.Errorf("BlocksRead = %d, want 10 (each page charged once)", got)
	}
}

func TestIndependentReaders(t *testing.T) {
	stats := &Stats{}
	store := NewMem(64, stats)
	f, _ := store.Create()
	f.Write([]byte("hello world, this is spill data"))
	f.Seal()
	r1, _ := f.NewReader()
	r2, _ := f.NewReader()
	b1, _ := io.ReadAll(r1)
	b2, _ := io.ReadAll(r2)
	if !bytes.Equal(b1, b2) {
		t.Errorf("independent readers disagree")
	}
}

func TestWriteAfterSeal(t *testing.T) {
	store := NewMem(64, nil)
	f, _ := store.Create()
	f.Seal()
	if _, err := f.Write([]byte("x")); err == nil {
		t.Errorf("write after Seal should fail")
	}
	if _, err := f.NewReader(); err != nil {
		t.Errorf("reader on sealed empty file should work: %v", err)
	}
}

func TestReaderBeforeSeal(t *testing.T) {
	store := NewMem(64, nil)
	f, _ := store.Create()
	if _, err := f.NewReader(); err == nil {
		t.Errorf("NewReader before Seal should fail")
	}
}

func TestStatsAccumulateAcrossFiles(t *testing.T) {
	stats := &Stats{}
	store := NewMem(128, stats)
	rng := rand.New(rand.NewSource(3))
	totalWritten := int64(0)
	for i := 0; i < 20; i++ {
		f, _ := store.Create()
		n := rng.Intn(1000) + 1
		f.Write(make([]byte, n))
		f.Seal()
		totalWritten += (int64(n) + 127) / 128
	}
	if got := stats.BlocksWritten(); got != totalWritten {
		t.Errorf("BlocksWritten = %d, want %d", got, totalWritten)
	}
	if stats.BytesWritten() == 0 || stats.BlocksRead() != 0 {
		t.Errorf("unexpected byte/read counters")
	}
	other := &Stats{}
	other.Add(stats)
	if other.TotalBlocks() != stats.TotalBlocks() {
		t.Errorf("Add/TotalBlocks mismatch")
	}
	stats.Reset()
	if stats.TotalBlocks() != 0 {
		t.Errorf("Reset failed")
	}
}
