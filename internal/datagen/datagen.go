// Package datagen synthesizes the evaluation datasets of Section 6:
// a TPC-DS-like web_sales fact table with the paper's cardinality profile
// (medium-cardinality item keys, near-unique item×customer pairs, 16
// warehouses, 100 quantities, uniform distributions), its sorted and grouped
// variants web_sales_s / web_sales_g used in the micro-benchmark's second
// part, and the emptab relation of Example 1.
//
// Generation is deterministic per seed. Scale is expressed in rows; the
// distinct-value counts scale with the row count in the same proportions as
// the paper's 72M-row, scale-factor-100 instance.
package datagen

import (
	"fmt"
	"math/rand"

	"repro/internal/attrs"
	"repro/internal/storage"
)

// WebSalesConfig parameterizes the generator.
type WebSalesConfig struct {
	Rows int
	Seed int64

	// Distinct counts; 0 picks the paper-proportional default.
	DateDistinct      int // ws_sold_date_sk
	TimeDistinct      int // ws_sold_time_sk
	ShipDistinct      int // ws_ship_date_sk
	ItemDistinct      int // ws_item_sk: 204000 per 72M rows ⇒ rows/353
	BillDistinct      int // ws_bill_customer_sk: ~2M per 72M rows ⇒ rows/36
	WarehouseDistinct int // ws_warehouse_sk: 16
	QuantityDistinct  int // ws_quantity: 100

	// PadBytes sizes the filler column so tuples approximate the paper's
	// 214-byte average (default 96).
	PadBytes int
}

func (c WebSalesConfig) withDefaults() WebSalesConfig {
	def := func(v *int, d int) {
		if *v <= 0 {
			*v = d
		}
	}
	if c.Rows <= 0 {
		c.Rows = 100_000
	}
	def(&c.DateDistinct, maxInt(c.Rows/40_000, 60))
	def(&c.TimeDistinct, maxInt(c.Rows/840, 120))
	def(&c.ShipDistinct, maxInt(c.Rows/40_000, 60))
	def(&c.ItemDistinct, maxInt(c.Rows/353, 16))
	def(&c.BillDistinct, maxInt(c.Rows/36, 64))
	def(&c.WarehouseDistinct, 16)
	def(&c.QuantityDistinct, 100)
	def(&c.PadBytes, 96)
	return c
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Column positions in the web_sales schema, used by benchmarks and tests.
const (
	ColSoldDate      = iota // ws_sold_date_sk
	ColSoldTime             // ws_sold_time_sk
	ColShipDate             // ws_ship_date_sk
	ColItem                 // ws_item_sk
	ColBill                 // ws_bill_customer_sk
	ColWarehouse            // ws_warehouse_sk
	ColQuantity             // ws_quantity
	ColWholesaleCost        // ws_wholesale_cost
	ColListPrice            // ws_list_price
	ColSalesPrice           // ws_sales_price
	ColOrderNumber          // ws_order_number
	ColPad                  // ws_pad
)

// WebSalesSchema returns the table schema.
func WebSalesSchema() *storage.Schema {
	return storage.NewSchema(
		storage.Column{Name: "ws_sold_date_sk", Type: storage.TypeInt},
		storage.Column{Name: "ws_sold_time_sk", Type: storage.TypeInt},
		storage.Column{Name: "ws_ship_date_sk", Type: storage.TypeInt},
		storage.Column{Name: "ws_item_sk", Type: storage.TypeInt},
		storage.Column{Name: "ws_bill_customer_sk", Type: storage.TypeInt},
		storage.Column{Name: "ws_warehouse_sk", Type: storage.TypeInt},
		storage.Column{Name: "ws_quantity", Type: storage.TypeInt},
		storage.Column{Name: "ws_wholesale_cost", Type: storage.TypeFloat},
		storage.Column{Name: "ws_list_price", Type: storage.TypeFloat},
		storage.Column{Name: "ws_sales_price", Type: storage.TypeFloat},
		storage.Column{Name: "ws_order_number", Type: storage.TypeInt},
		storage.Column{Name: "ws_pad", Type: storage.TypeString},
	)
}

// WebSales generates the fact table.
func WebSales(cfg WebSalesConfig) *storage.Table {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := storage.NewTable(WebSalesSchema())
	t.Rows = make([]storage.Tuple, 0, cfg.Rows)
	pad := make([]byte, cfg.PadBytes)
	for i := range pad {
		pad[i] = byte('a' + i%26)
	}
	padStr := string(pad)
	for i := 0; i < cfg.Rows; i++ {
		wholesale := float64(rng.Intn(10000)) / 100
		list := wholesale * (1 + rng.Float64())
		sales := list * (0.5 + rng.Float64()/2)
		t.Rows = append(t.Rows, storage.Tuple{
			storage.Int(int64(rng.Intn(cfg.DateDistinct)) + 2450000),
			storage.Int(int64(rng.Intn(cfg.TimeDistinct))),
			storage.Int(int64(rng.Intn(cfg.ShipDistinct)) + 2450000),
			storage.Int(int64(rng.Intn(cfg.ItemDistinct)) + 1),
			storage.Int(int64(rng.Intn(cfg.BillDistinct)) + 1),
			storage.Int(int64(rng.Intn(cfg.WarehouseDistinct)) + 1),
			storage.Int(int64(rng.Intn(cfg.QuantityDistinct)) + 1),
			storage.Float(wholesale),
			storage.Float(list),
			storage.Float(sales),
			storage.Int(int64(i)),
			storage.StringVal(padStr),
		})
	}
	return t
}

// WebSalesSorted returns web_sales_s: the table totally ordered on
// ws_quantity (Section 6.1 part 2, query Q4).
func WebSalesSorted(cfg WebSalesConfig) *storage.Table {
	t := WebSales(cfg)
	t.SortBy(attrs.AscSeq(ColQuantity))
	return t
}

// WebSalesGrouped returns web_sales_g: grouped on ws_quantity (each group
// contiguous) but unordered inside each group (query Q5). Grouping is
// achieved by sorting on quantity and then shuffling within each group.
func WebSalesGrouped(cfg WebSalesConfig) *storage.Table {
	t := WebSalesSorted(cfg)
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	start := 0
	for start < len(t.Rows) {
		end := start + 1
		for end < len(t.Rows) && storage.Equal(t.Rows[end][ColQuantity], t.Rows[start][ColQuantity]) {
			end++
		}
		group := t.Rows[start:end]
		rng.Shuffle(len(group), func(i, j int) { group[i], group[j] = group[j], group[i] })
		start = end
	}
	return t
}

// EmptabSchema is Example 1's employee table schema.
func EmptabSchema() *storage.Schema {
	return storage.NewSchema(
		storage.Column{Name: "empnum", Type: storage.TypeInt},
		storage.Column{Name: "dept", Type: storage.TypeInt},
		storage.Column{Name: "salary", Type: storage.TypeInt},
	)
}

// Emptab reproduces the exact 10-row relation of the paper's Example 1,
// including its NULL departments and salaries.
func Emptab() *storage.Table {
	t := storage.NewTable(EmptabSchema())
	null := storage.Null
	rows := []storage.Tuple{
		{storage.Int(1), null, null},
		{storage.Int(2), null, storage.Int(84000)},
		{storage.Int(3), storage.Int(2), null},
		{storage.Int(4), storage.Int(1), storage.Int(78000)},
		{storage.Int(5), storage.Int(1), storage.Int(75000)},
		{storage.Int(6), storage.Int(3), storage.Int(79000)},
		{storage.Int(7), storage.Int(2), storage.Int(51000)},
		{storage.Int(8), storage.Int(3), storage.Int(55000)},
		{storage.Int(9), storage.Int(1), storage.Int(53000)},
		{storage.Int(10), storage.Int(3), storage.Int(75000)},
	}
	for _, r := range rows {
		t.MustAppend(r)
	}
	return t
}

// Uniform generates a generic table of n rows over integer columns with the
// given distinct counts — the synthetic workload generator used by the
// optimizer-overhead experiment (Table 11) and property tests.
func Uniform(n int, seed int64, distincts ...int) *storage.Table {
	cols := make([]storage.Column, len(distincts))
	for i := range cols {
		cols[i] = storage.Column{Name: fmt.Sprintf("c%d", i), Type: storage.TypeInt}
	}
	t := storage.NewTable(storage.NewSchema(cols...))
	rng := rand.New(rand.NewSource(seed))
	t.Rows = make([]storage.Tuple, 0, n)
	for i := 0; i < n; i++ {
		row := make(storage.Tuple, len(distincts))
		for c, d := range distincts {
			if d < 1 {
				d = 1
			}
			row[c] = storage.Int(int64(rng.Intn(d)))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}
