package datagen

import (
	"testing"

	"repro/internal/attrs"
	"repro/internal/storage"
)

func TestWebSalesCardinalities(t *testing.T) {
	cfg := WebSalesConfig{Rows: 40_000, Seed: 1}
	tbl := WebSales(cfg)
	if tbl.Len() != 40_000 {
		t.Fatalf("rows = %d", tbl.Len())
	}
	check := func(col int, wantMax int, name string) {
		d := tbl.DistinctCount(attrs.MakeSet(attrs.ID(col)))
		if d > wantMax {
			t.Errorf("%s distinct = %d, want ≤ %d", name, d, wantMax)
		}
		if d < wantMax/2 {
			t.Errorf("%s distinct = %d, implausibly low for cap %d", name, d, wantMax)
		}
	}
	check(ColWarehouse, 16, "warehouse")
	check(ColQuantity, 100, "quantity")
	// Item cardinality scales like the paper's 204000 per 72M ⇒ rows/353.
	item := tbl.DistinctCount(attrs.MakeSet(attrs.ID(ColItem)))
	want := 40_000 / 353
	if item < want/2 || item > want*2 {
		t.Errorf("item distinct = %d, want ≈ %d", item, want)
	}
	// (item, bill) is near-unique relative to item alone.
	pair := tbl.DistinctCount(attrs.MakeSet(attrs.ID(ColItem), attrs.ID(ColBill)))
	if pair < 10*item {
		t.Errorf("item×bill distinct = %d, want ≫ item's %d", pair, item)
	}
}

func TestWebSalesDeterminism(t *testing.T) {
	a := WebSales(WebSalesConfig{Rows: 500, Seed: 7})
	b := WebSales(WebSalesConfig{Rows: 500, Seed: 7})
	c := WebSales(WebSalesConfig{Rows: 500, Seed: 8})
	for i := range a.Rows {
		for j := range a.Rows[i] {
			if !storage.Equal(a.Rows[i][j], b.Rows[i][j]) {
				t.Fatalf("same seed produced different data at row %d", i)
			}
		}
	}
	same := true
	for i := range a.Rows {
		if !storage.Equal(a.Rows[i][ColItem], c.Rows[i][ColItem]) {
			same = false
			break
		}
	}
	if same {
		t.Errorf("different seeds produced identical item columns")
	}
}

func TestSortedVariant(t *testing.T) {
	tbl := WebSalesSorted(WebSalesConfig{Rows: 2000, Seed: 2})
	if !storage.SortedOn(tbl.Rows, attrs.AscSeq(attrs.ID(ColQuantity))) {
		t.Errorf("web_sales_s not sorted on quantity")
	}
}

func TestGroupedVariant(t *testing.T) {
	tbl := WebSalesGrouped(WebSalesConfig{Rows: 5000, Seed: 2})
	// Grouped: every quantity value occupies one contiguous range...
	seen := map[int64]bool{}
	var prev int64 = -1
	withinGroupSorted := true
	var groupStart int
	for i, row := range tbl.Rows {
		q := row[ColQuantity].Int64()
		if q != prev {
			if seen[q] {
				t.Fatalf("quantity %d appears in two separate groups", q)
			}
			seen[q] = true
			if i > groupStart+1 && !storage.SortedOn(tbl.Rows[groupStart:i], attrs.AscSeq(attrs.ID(ColItem))) {
				withinGroupSorted = false
			}
			groupStart = i
			prev = q
		}
	}
	// ...but inside groups the rows are shuffled (otherwise it would just
	// be web_sales_s and SS's Q5 case would be vacuous).
	if withinGroupSorted {
		t.Errorf("grouped variant appears fully sorted; shuffle missing")
	}
}

func TestEmptabMatchesPaper(t *testing.T) {
	tbl := Emptab()
	if tbl.Len() != 10 {
		t.Fatalf("emptab rows = %d", tbl.Len())
	}
	// Employee 1 has NULL dept and NULL salary; employee 2 NULL dept only.
	if !tbl.Rows[0][1].IsNull() || !tbl.Rows[0][2].IsNull() {
		t.Errorf("employee 1 should have NULL dept and salary")
	}
	if !tbl.Rows[1][1].IsNull() || tbl.Rows[1][2].Int64() != 84000 {
		t.Errorf("employee 2 wrong: %v", tbl.Rows[1])
	}
}

func TestUniform(t *testing.T) {
	tbl := Uniform(1000, 3, 5, 50)
	if tbl.Len() != 1000 || tbl.Schema.Len() != 2 {
		t.Fatalf("shape = %d×%d", tbl.Len(), tbl.Schema.Len())
	}
	if d := tbl.DistinctCount(attrs.MakeSet(0)); d > 5 {
		t.Errorf("col0 distinct = %d, want ≤ 5", d)
	}
	if d := tbl.DistinctCount(attrs.MakeSet(1)); d > 50 || d < 25 {
		t.Errorf("col1 distinct = %d, want ≈ 50", d)
	}
}

func TestTupleWidth(t *testing.T) {
	// The default pad approximates the paper's 214-byte tuples within 2x.
	tbl := WebSales(WebSalesConfig{Rows: 100, Seed: 1})
	avg := tbl.ByteSize() / tbl.Len()
	if avg < 100 || avg > 400 {
		t.Errorf("avg tuple bytes = %d, want ≈ 214", avg)
	}
}
