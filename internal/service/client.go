package service

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro"
	"repro/internal/catalog"
	"repro/internal/sql"
	"repro/internal/storage"
)

// RemoteError is a serving process's error response, preserving the
// service status taxonomy across the wire: Unwrap maps the taxonomy kind
// back to the matching sentinel, so errors.Is sees through the transport
// and front ends re-serve the original status. Both the cluster's shard
// transport and Client speak it.
type RemoteError struct {
	Node   string
	Status int
	Kind   string
	Msg    string
}

// Error implements error.
func (e *RemoteError) Error() string {
	return fmt.Sprintf("remote %s: %s (%s)", e.Node, e.Msg, e.Kind)
}

// Unwrap maps the remote taxonomy kind to its sentinel error.
func (e *RemoteError) Unwrap() error {
	switch e.Kind {
	case "parse":
		return sql.ErrParse
	case "bind":
		return sql.ErrBind
	case "unknown_table":
		return catalog.ErrUnknownTable
	case "overloaded":
		return ErrOverloaded
	case "timeout":
		return context.DeadlineExceeded
	case "canceled":
		return context.Canceled
	}
	return nil
}

// DecodeRemoteError turns a non-2xx response into a *RemoteError, reading
// (a bounded prefix of) the body for the taxonomy payload.
func DecodeRemoteError(node string, resp *http.Response) error {
	var e struct {
		Error string `json:"error"`
		Kind  string `json:"kind"`
	}
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	if json.Unmarshal(msg, &e) != nil || e.Error == "" {
		e.Error = strings.TrimSpace(string(msg))
		if e.Error == "" {
			e.Error = resp.Status
		}
	}
	return &RemoteError{Node: node, Status: resp.StatusCode, Kind: e.Kind, Msg: e.Error}
}

// Client is the remote windowdb.Queryer: it speaks the streaming /query
// surface of a running windserve — single engine or cluster coordinator,
// the wire shape is the same — yielding rows incrementally as the server
// emits them. It asks for the binary columnar frame stream and accepts
// NDJSON, so it interoperates with servers of either vintage; the decoder
// follows the response content type. Closing a half-drained Rows closes
// the response body, which the server observes as a disconnect and
// releases its admission slot.
//
// A Client is safe for concurrent use (http.Client is).
type Client struct {
	base  string
	hc    *http.Client
	codec WireCodec
}

var _ windowdb.Queryer = (*Client)(nil)

// NewClient builds a client for a serving address ("host:port" or a full
// http:// URL). A nil http.Client uses http.DefaultClient.
func NewClient(addr string, hc *http.Client) *Client {
	return NewClientCodec(addr, hc, CodecBinary)
}

// NewClientCodec is NewClient with an explicit wire codec preference:
// CodecJSON pins the client to the NDJSON stream (the pre-binary wire),
// CodecBinary (the NewClient default) prefers columnar frames.
func NewClientCodec(addr string, hc *http.Client, codec WireCodec) *Client {
	base := strings.TrimRight(addr, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	if hc == nil {
		hc = http.DefaultClient
	}
	if codec == "" {
		codec = CodecBinary
	}
	return &Client{base: base, hc: hc, codec: codec}
}

// Addr returns the server's base URL.
func (c *Client) Addr() string { return c.base }

// QueryContext executes src on the server and returns a cursor over the
// response stream.
func (c *Client) QueryContext(ctx context.Context, src string) (*windowdb.Rows, error) {
	start := time.Now()
	sr, err := OpenStream(ctx, c.hc, c.base+"/query", queryRequest{SQL: src, Stream: true}, c.codec)
	if err != nil {
		return nil, err
	}
	return windowdb.NewRows(&clientSource{sr: sr, start: start}), nil
}

// PrepareContext returns a statement bound to this client. The server
// keeps the plan in its own cache keyed by the SQL text, so preparation
// needs no round trip; validation errors surface on first execution.
func (c *Client) PrepareContext(ctx context.Context, src string) (windowdb.Stmt, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return &clientStmt{c: c, src: src}, nil
}

type clientStmt struct {
	c   *Client
	src string
}

func (st *clientStmt) QueryContext(ctx context.Context) (*windowdb.Rows, error) {
	return st.c.QueryContext(ctx, st.src)
}

func (st *clientStmt) Close() error { return nil }

// clientSource adapts a StreamReader to the RowSource contract.
type clientSource struct {
	sr    *StreamReader
	start time.Time
	meta  *windowdb.QueryMetrics
}

func (cs *clientSource) Columns() []storage.Column { return cs.sr.Columns() }

func (cs *clientSource) Next() (storage.Tuple, error) {
	t, err := cs.sr.Next()
	if err == io.EOF {
		cs.meta = metaFromTrailer(cs.sr.Trailer())
		cs.meta.Elapsed = time.Since(cs.start)
	}
	return t, err
}

func (cs *clientSource) Close() error { return cs.sr.Close() }

// Metrics returns the trailer-derived metadata; nil when the stream was
// closed before the trailer arrived (there is nothing trustworthy to
// report about a query whose outcome the server never confirmed).
func (cs *clientSource) Metrics() *windowdb.QueryMetrics { return cs.meta }

// metaFromTrailer lifts a stream trailer into the public metrics shape.
// Elapsed is overwritten by the caller with the client-observed time; the
// trailer's ElapsedMillis is the server-side figure.
func metaFromTrailer(t *StreamTrailer) *windowdb.QueryMetrics {
	if t == nil {
		return &windowdb.QueryMetrics{FinalSort: "none", Parallelism: 1}
	}
	return &windowdb.QueryMetrics{
		Chain:         t.Chain,
		FinalSort:     t.FinalSort,
		Parallelism:   1,
		CacheHit:      t.CacheHit,
		SharedScan:    t.SharedScan,
		Route:         t.Route,
		ShardsUsed:    t.ShardsUsed,
		Queued:        time.Duration(t.QueuedMillis * float64(time.Millisecond)),
		BlocksRead:    t.BlocksRead,
		BlocksWritten: t.BlocksWritten,
		Comparisons:   t.Comparisons,
		TraceID:       t.TraceID,
		Trace:         t.Trace,
	}
}
