package service

import (
	"context"
	"strings"
	"sync"
	"testing"

	"repro"
	"repro/internal/datagen"
	"repro/internal/storage"
)

// shareQ* is a correlated dashboard mix: one table, one partition key,
// three ordering grains. The finest statement's scan serves the coarser
// two through the frame lattice.
const (
	shareQFine   = `SELECT ws_item_sk, rank() OVER (PARTITION BY ws_item_sk ORDER BY ws_sold_date_sk, ws_sold_time_sk, ws_order_number) AS r FROM web_sales`
	shareQMid    = `SELECT ws_item_sk, rank() OVER (PARTITION BY ws_item_sk ORDER BY ws_sold_date_sk, ws_sold_time_sk) AS r FROM web_sales`
	shareQCoarse = `SELECT ws_item_sk, sum(ws_quantity) OVER (PARTITION BY ws_item_sk) AS s FROM web_sales`
)

// newSpillService builds a service whose unit reorder memory is far below
// the table size, so every scan's full sort spills and block I/O becomes
// observable in the metrics.
func newSpillService(t testing.TB, cfg Config, rows int) *Service {
	t.Helper()
	eng := windowdb.New(windowdb.Config{SortMemBytes: 1 << 15, Parallelism: 1})
	eng.Register("web_sales", datagen.WebSales(datagen.WebSalesConfig{Rows: rows, Seed: 1}))
	return New(eng, cfg)
}

// TestSubplanSingleflight: concurrent identical queries share one scan —
// exactly one miss leads it, every other execution hits the completed
// segment or attaches to the in-flight one, results stay correct, and the
// fleet's total block I/O collapses to roughly one scan's worth.
func TestSubplanSingleflight(t *testing.T) {
	const rows, clients = 6000, 8
	svc := newSpillService(t, Config{Slots: 4}, rows)
	off := newSpillService(t, Config{Slots: 4, DisableSharing: true}, rows)
	ctx := context.Background()

	want, err := off.Query(ctx, shareQFine)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	results := make([]*QueryResult, clients)
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = svc.Query(ctx, shareQFine)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	for i, res := range results {
		if res.Table.Len() != want.Table.Len() {
			t.Fatalf("client %d: %d rows, want %d", i, res.Table.Len(), want.Table.Len())
		}
		for j := range want.Table.Rows {
			if string(storage.AppendTuple(nil, res.Table.Rows[j])) != string(storage.AppendTuple(nil, want.Table.Rows[j])) {
				t.Fatalf("client %d: row %d differs from private execution", i, j)
			}
		}
		if res.SharedScan == "" {
			t.Fatalf("client %d: no shared-scan disposition", i)
		}
	}

	st := svc.Stats().Subplans
	if st.Misses != 1 {
		t.Fatalf("misses = %d, want exactly 1 (one scan for %d clients)", st.Misses, clients)
	}
	if st.Hits+st.Attaches != clients-1 {
		t.Fatalf("hits=%d attaches=%d, want %d reuses", st.Hits, st.Attaches, clients-1)
	}

	// The A/B I/O check: the same 8 queries without sharing read at least
	// 2x the blocks (the acceptance bar; in practice it is ~8x).
	for i := 0; i < clients-1; i++ { // off already served one
		if _, err := off.Query(ctx, shareQFine); err != nil {
			t.Fatal(err)
		}
	}
	onBlocks, offBlocks := svc.Stats().BlocksRead, off.Stats().BlocksRead
	if offBlocks == 0 {
		t.Fatal("no spill: the scan must exceed reorder memory for this test to observe I/O")
	}
	if onBlocks*2 > offBlocks {
		t.Fatalf("sharing read %d blocks vs %d unshared — want at least a 2x reduction", onBlocks, offBlocks)
	}
}

// TestSubplanLattice: a coarser-grain statement reuses the finer
// statement's cached segment — a cross-statement hit, no second scan.
func TestSubplanLattice(t *testing.T) {
	svc := newTestService(t, Config{Slots: 2}, 3000)
	off := newTestService(t, Config{Slots: 2, DisableSharing: true}, 3000)
	ctx := context.Background()

	fine, err := svc.Query(ctx, shareQFine)
	if err != nil {
		t.Fatal(err)
	}
	if fine.SharedScan != dispMiss {
		t.Fatalf("first query disposition %q, want miss", fine.SharedScan)
	}
	for _, q := range []string{shareQMid, shareQCoarse} {
		got, err := svc.Query(ctx, q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if got.SharedScan != dispHit {
			t.Fatalf("%s: disposition %q, want lattice hit", q, got.SharedScan)
		}
		want, err := off.Query(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		assertSameMultiset(t, q, want.Table, got.Table)
	}
	st := svc.Stats().Subplans
	if st.Misses != 1 || st.Hits != 2 {
		t.Fatalf("misses=%d hits=%d, want 1 scan serving 3 statements", st.Misses, st.Hits)
	}
}

// TestSubplanAppendInvalidation: an append retires the shared segment —
// the next query re-scans and sees the new rows, never a stale segment.
func TestSubplanAppendInvalidation(t *testing.T) {
	const rows = 2000
	svc := newTestService(t, Config{Slots: 2}, rows)
	ctx := context.Background()

	first, err := svc.Query(ctx, shareQFine)
	if err != nil {
		t.Fatal(err)
	}
	if first.Table.Len() != rows {
		t.Fatalf("first query: %d rows, want %d", first.Table.Len(), rows)
	}

	base, err := svc.Engine().Table("web_sales")
	if err != nil {
		t.Fatal(err)
	}
	fresh := make([]storage.Tuple, 10)
	for i := range fresh {
		fresh[i] = append(storage.Tuple(nil), base.Rows[i]...)
	}
	if _, _, err := svc.Append(ctx, "web_sales", fresh, 0); err != nil {
		t.Fatal(err)
	}

	second, err := svc.Query(ctx, shareQFine)
	if err != nil {
		t.Fatal(err)
	}
	if second.Table.Len() != rows+len(fresh) {
		t.Fatalf("post-append query: %d rows, want %d — a stale shared segment was served",
			second.Table.Len(), rows+len(fresh))
	}
	if second.SharedScan != dispMiss {
		t.Fatalf("post-append disposition %q, want miss (new data generation)", second.SharedScan)
	}
	st := svc.Stats().Subplans
	if st.Invalidations == 0 {
		t.Fatal("append did not invalidate the old segment")
	}
}

// TestExplainAnalyzeSharedScan: the trace surfaces the disposition, so
// EXPLAIN ANALYZE on a warm statement shows shared_scan=hit.
func TestExplainAnalyzeSharedScan(t *testing.T) {
	svc := newTestService(t, Config{Slots: 2}, 1500)
	ctx := context.Background()
	if _, err := svc.Query(ctx, shareQFine); err != nil {
		t.Fatal(err)
	}
	rows, err := svc.QueryContext(ctx, "EXPLAIN ANALYZE "+shareQFine)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for rows.Next() {
		out = append(out, rows.Row()[0].String())
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	text := strings.Join(out, "\n")
	if !strings.Contains(text, "shared_scan=hit") {
		t.Fatalf("EXPLAIN ANALYZE does not show shared_scan=hit:\n%s", text)
	}
}

// assertSameMultiset compares two tables as row multisets.
func assertSameMultiset(t *testing.T, q string, want, got *storage.Table) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("%s: %d rows, want %d", q, got.Len(), want.Len())
	}
	counts := make(map[string]int, want.Len())
	for _, row := range want.Rows {
		counts[string(storage.AppendTuple(nil, row))]++
	}
	for _, row := range got.Rows {
		counts[string(storage.AppendTuple(nil, row))]--
	}
	for k, c := range counts {
		if c != 0 {
			t.Fatalf("%s: multiset mismatch (%d for %q)", q, c, k)
		}
	}
}

// TestSubplanHammer drives the shared-subplan cache with mixed
// Register / Append / Query traffic from many goroutines — the -race
// exercise for the singleflight and the two-generation invalidation. No
// query may fail, and the service must stay serviceable afterwards.
func TestSubplanHammer(t *testing.T) {
	const rows = 1200
	svc := newTestService(t, Config{Slots: 4, SubplanEntries: 4}, rows)
	ctx := context.Background()
	mix := []string{shareQFine, shareQMid, shareQCoarse, mixQ1}

	base, err := svc.Engine().Table("web_sales")
	if err != nil {
		t.Fatal(err)
	}
	row := append(storage.Tuple(nil), base.Rows[0]...)

	var wg sync.WaitGroup
	errCh := make(chan error, 256)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if _, err := svc.Query(ctx, mix[(g+i)%len(mix)]); err != nil {
					errCh <- err
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 15; i++ {
			batch := []storage.Tuple{append(storage.Tuple(nil), row...)}
			if _, _, err := svc.Append(ctx, "web_sales", batch, 0); err != nil {
				errCh <- err
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			svc.Engine().Register("web_sales", datagen.WebSales(datagen.WebSalesConfig{Rows: rows, Seed: int64(i + 2)}))
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Errorf("hammer: %v", err)
	}

	// The governor must not be wedged and the cache must still serve.
	res, err := svc.Query(ctx, shareQFine)
	if err != nil {
		t.Fatalf("post-hammer query: %v", err)
	}
	if res.Table.Len() == 0 {
		t.Fatal("post-hammer query returned no rows")
	}
	st := svc.Stats()
	if st.InFlight != 0 {
		t.Fatalf("in-flight gauge stuck at %d", st.InFlight)
	}
}
