// Package service is the concurrent query-serving layer over
// windowdb.Engine: the subsystem that turns the single-query reproduction
// into a system that plans once and executes many.
//
// Three mechanisms compose:
//
//   - a prepared-statement cache (planCache): normalized SQL text maps to a
//     *sql.Prepared — parse, bind and CSO planning paid once — keyed
//     against the engine's catalog generation so re-registering a table
//     invalidates every plan built on the old entry. Hit, miss,
//     invalidation and eviction counters are exported.
//
//   - admission control (governor): a global reorder-memory budget is
//     divided into unit-memory execution slots; at most Slots chains run
//     concurrently, each entitled to the full unit reorder memory M of
//     Section 6.1, in the spirit of the spill-budget discipline of Shi &
//     Wang's aggregate-window spilling work. Excess queries wait in a
//     bounded queue honoring context cancellation and deadlines (threaded
//     down to chain-step boundaries in the executor); past the bound they
//     fail fast with the typed ErrOverloaded.
//
//   - metrics: QPS, in-flight gauge with high-water mark, an exponential
//     latency histogram read at p50/p95/p99, and aggregated exec.Metrics.
//
// The HTTP front end over this layer lives in http.go (Service.Handler);
// cmd/windserve wires it to a socket, and internal/bench.RunService drives
// it with an ostresser-style closed-loop load harness.
package service

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"
	"time"

	"repro"
	"repro/internal/exec"
	"repro/internal/sql"
	"repro/internal/storage"
	"repro/internal/trace"
)

// Config parameterizes a Service. The zero value serves: 4 chain-memory
// slots, a 64-entry admission queue, a 256-statement plan cache, no
// implicit deadline.
type Config struct {
	// MemoryBudgetBytes is the global reorder-memory budget shared by all
	// concurrent queries. It is divided by the per-chain memory cost —
	// the engine's unit reorder memory M times its resolved parallel
	// degree, since every worker of a parallel chain is entitled to the
	// full M — into execution slots (minimum 1): with the default 0 the
	// budget is 4 chains' worth. Ignored when Slots is set.
	MemoryBudgetBytes int
	// Slots overrides the derived slot count when > 0.
	Slots int
	// MaxQueue bounds the queries waiting for a slot; the MaxQueue+1-th
	// waiter is rejected with ErrOverloaded. Default 64; negative means no
	// queue (immediate rejection when all slots are busy).
	MaxQueue int
	// CacheEntries bounds the prepared-statement cache (default 256).
	CacheEntries int
	// SubplanEntries bounds the shared-subplan cache — materialized
	// scan+reorder segments shared across concurrent queries (subplan.go).
	// Default 32; each entry pins a filtered, reordered copy of its table,
	// so the bound is deliberately much smaller than the plan cache's.
	SubplanEntries int
	// DisableSharing turns the shared-subplan cache off: every query runs
	// its own scan. The A/B switch for windbench -exp share and a bail-out
	// if sharing ever misbehaves in production.
	DisableSharing bool
	// DefaultTimeout is applied to queries whose context carries no
	// deadline. 0 leaves them unbounded.
	DefaultTimeout time.Duration
	// ShardRoutes mounts the /shard/* node surface (query, register,
	// table, distinct, shuffle) on Handler. Off by default: those routes
	// let a cluster coordinator install tables and dump raw rows, so only
	// processes meant to serve as shard nodes — deployed behind the
	// cluster boundary, not on the public edge — should enable them.
	ShardRoutes bool
	// PeerClient is the HTTP client shuffle stages use to deliver
	// re-shuffled rows to peer nodes (their /shard/shuffle routes); nil
	// uses http.DefaultClient. Configure it when the node-to-node data
	// plane needs TLS, a custom CA or dial timeouts — the coordinator's
	// own transport client never carries this traffic.
	PeerClient *http.Client
	// ShuffleTTL expires idle shuffle-inbox buffers: a coordinator that
	// dies between delivering a round and consuming it can never send its
	// cleanup drop, so nodes sweep buffers untouched for this long
	// (lazily, on shuffle activity and Stats). 0 means the 5-minute
	// default — generously past any round barrier a live coordinator
	// would tolerate — and negative disables expiry.
	ShuffleTTL time.Duration
	// DisableBinary pins every streamed response — and every shuffle
	// delivery this node originates — to the NDJSON codec, even for
	// clients whose Accept names the binary frame stream. For wire
	// debugging and for holding a mixed-version fleet to its lowest
	// common codec.
	DisableBinary bool
	// TraceRing bounds the /debug/trace ring buffer of recent query
	// traces (default 128; negative disables recording).
	TraceRing int
	// SlowLogThreshold enables the structured slow-query log: every query
	// at or over the threshold emits one JSON line (kind "slow_query")
	// with its span tree to SlowLogWriter. 0 disables.
	SlowLogThreshold time.Duration
	// SlowLogWriter receives slow-query lines; nil defaults to stderr.
	SlowLogWriter io.Writer
	// SlowLogRate caps slow-query log emission in lines per second (the
	// storm guard; suppressed lines are counted and the count rides on the
	// next emitted line). 0 means trace.DefaultSlowLogRate; negative
	// uncaps.
	SlowLogRate int
}

func (c Config) withDefaults(chainMem int) Config {
	if c.Slots <= 0 {
		budget := c.MemoryBudgetBytes
		if budget <= 0 {
			budget = 4 * chainMem
		}
		c.Slots = budget / chainMem
		if c.Slots < 1 {
			c.Slots = 1
		}
	}
	switch {
	case c.MaxQueue == 0:
		c.MaxQueue = 64
	case c.MaxQueue < 0:
		c.MaxQueue = 0
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 256
	}
	if c.SubplanEntries <= 0 {
		c.SubplanEntries = 32
	}
	switch {
	case c.ShuffleTTL == 0:
		c.ShuffleTTL = 5 * time.Minute
	case c.ShuffleTTL < 0:
		c.ShuffleTTL = 0 // disabled
	}
	return c
}

// Service is a thread-safe query service over a windowdb.Engine. All
// methods may be called concurrently.
type Service struct {
	eng      *windowdb.Engine
	cfg      Config
	gov      *governor
	cache    *planCache
	subplans *subplanCache // nil when Config.DisableSharing
	metrics  *Metrics
	inbox    shuffleInbox
	ring     *trace.Ring
	slow     *trace.SlowLogger
	reg      *trace.Registry
}

// New builds a service over eng. The engine must not be shared with
// another admission-controlled service (slots would not compose).
func New(eng *windowdb.Engine, cfg Config) *Service {
	// Per-chain memory cost: M per worker of the parallel executor
	// (ResolvedConfig returns the concrete degree, ≥ 1).
	rc := eng.ResolvedConfig()
	cfg = cfg.withDefaults(rc.SortMemBytes * rc.Parallelism)
	slowW := cfg.SlowLogWriter
	if slowW == nil {
		slowW = os.Stderr
	}
	s := &Service{
		eng:     eng,
		cfg:     cfg,
		gov:     newGovernor(cfg.Slots, cfg.MaxQueue),
		cache:   newPlanCache(cfg.CacheEntries),
		metrics: newMetrics(),
		slow:    trace.NewSlowLoggerRate(slowW, cfg.SlowLogThreshold, cfg.SlowLogRate),
		reg:     trace.NewRegistry(),
	}
	if !cfg.DisableSharing {
		s.subplans = newSubplanCache(cfg.SubplanEntries)
	}
	if cfg.TraceRing >= 0 {
		n := cfg.TraceRing
		if n == 0 {
			n = 128
		}
		s.ring = trace.NewRing(n)
	}
	return s
}

// Traces exposes the ring buffer of recent query traces (nil when
// disabled); the /debug/trace endpoint and the coordinator read it.
func (s *Service) Traces() *trace.Ring { return s.ring }

// Registry exposes the in-flight query registry behind GET/DELETE
// /debug/queries: every admitted statement — streamed, buffered or a
// shuffle stage — is listed with live counters until its cursor finishes,
// and Kill fires the stored cancel (the query then classifies as
// aborted).
func (s *Service) Registry() *trace.Registry { return s.reg }

// role names this process for registry entries.
func (s *Service) role() string {
	if s.cfg.ShardRoutes {
		return "shardnode"
	}
	return "engine"
}

// recordTrace finalizes one served query's trace: the ring entry and, past
// the threshold, the slow-query log line.
func (s *Service) recordTrace(id, src string, start time.Time, elapsed time.Duration, root *trace.Span, err error) {
	if id == "" || (s.ring == nil && s.slow == nil) {
		return
	}
	t := &trace.Trace{
		ID: id, SQL: src, Start: start,
		DurationMillis: trace.Millis(elapsed),
		Root:           root,
	}
	if err != nil {
		t.Error = err.Error()
	}
	s.ring.Add(t)
	s.slow.Observe(t)
}

// Engine returns the wrapped engine (for registration; Register invalidates
// cached plans via the catalog generation).
func (s *Service) Engine() *windowdb.Engine { return s.eng }

// resolve turns statement text into its Prepared through the plan cache,
// preparing and caching on a miss. The bool reports a cache hit.
func (s *Service) resolve(src string) (*sql.Prepared, bool, error) {
	return s.resolveFP(src, "")
}

// resolveFP is resolve with a coordinator-shipped plan fingerprint: when a
// scatter or shuffle request carries the coordinator's fingerprint of the
// statement, the node answers from its fingerprint index — one O(1) map
// lookup instead of normalizing the SQL text — before falling back to the
// text-keyed path. A miss prepares as usual and links the fingerprint for
// the query's next round.
func (s *Service) resolveFP(src, fp string) (*sql.Prepared, bool, error) {
	gen := s.eng.Generation()
	if fp != "" {
		if prep, ok := s.cache.getFP(fp, gen); ok {
			return prep, true, nil
		}
	}
	key := NormalizeSQL(src)
	prep, hit := s.cache.get(key, gen)
	if !hit {
		p, err := s.eng.Prepare(src)
		if err != nil {
			return nil, false, err
		}
		s.cache.put(key, p)
		prep = p
	}
	if fp != "" {
		s.cache.linkFP(fp, key)
	}
	return prep, hit, nil
}

// Slots returns the concurrent-execution bound the governor enforces.
func (s *Service) Slots() int { return s.gov.Slots() }

// QueryResult is one served query: the engine result plus serving-side
// observations.
type QueryResult struct {
	*windowdb.Result
	// CacheHit reports that the plan came from the prepared-statement cache
	// (no parse/bind/plan work on this call).
	CacheHit bool
	// Queued is the time spent waiting for an execution slot.
	Queued time.Duration
	// Elapsed is the end-to-end service time: cache lookup or prepare,
	// admission wait, and execution.
	Elapsed time.Duration
	// TraceID names the query's recorded trace in /debug/trace/{id}.
	TraceID string
}

// Query serves one query: plan-cache lookup (preparing and caching on
// miss), slot admission, execution under ctx. Error classes: parse and
// bind errors (sql.ErrParse/ErrBind), unknown tables
// (catalog.ErrUnknownTable), admission rejection (ErrOverloaded), and
// ctx.Err() for queries cancelled or timed out while queued or between
// chain steps; anything else is an engine fault.
func (s *Service) Query(ctx context.Context, src string) (*QueryResult, error) {
	if windowdb.IsInsert(src) {
		start := time.Now()
		rows, err := s.insertStream(ctx, src)
		if err != nil {
			return nil, err
		}
		res, err := windowdb.DrainResult(rows)
		if err != nil {
			return nil, err
		}
		return &QueryResult{Result: res, Elapsed: time.Since(start)}, nil
	}
	if _, ok := windowdb.StripSubscribe(src); ok {
		// A subscription never completes, so it cannot be served buffered.
		return nil, fmt.Errorf("%w: SUBSCRIBE needs a streaming client (stream=1 or Accept: %s)", sql.ErrBind, ContentTypeNDJSON)
	}
	return s.serve(ctx, src, "", false)
}

// QueryShardLocal serves the shard-local part of a statement: WHERE, the
// window chain and projection, skipping DISTINCT, ORDER BY and LIMIT —
// the phases a scatter-gather coordinator applies over the concatenation
// of every shard's output. It shares Query's plan cache (the Prepared is
// the same object; only the execution entry point differs), admission
// control and metrics. subplanFP is the coordinator's optional subplan
// fingerprint (see StreamShardLocal); "" derives the identity locally.
func (s *Service) QueryShardLocal(ctx context.Context, src, subplanFP string) (*QueryResult, error) {
	return s.serve(ctx, src, subplanFP, true)
}

func (s *Service) serve(ctx context.Context, src, subplanFP string, shardLocal bool) (*QueryResult, error) {
	if s.cfg.DefaultTimeout > 0 {
		if _, ok := ctx.Deadline(); !ok {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.cfg.DefaultTimeout)
			defer cancel()
		}
	}
	// The kill cancel wraps ctx unconditionally: DELETE /debug/queries/{id}
	// fires it whether or not a timeout is armed.
	ctx, kill := context.WithCancel(ctx)
	defer kill()
	id := trace.IDFromContext(ctx)
	ctx = trace.NewContext(ctx, id)
	entry := s.reg.Register(id, src, s.role(), trace.ClientFromContext(ctx), kill)
	defer s.reg.Remove(entry)
	live := entry.Live()
	ctx = trace.WithLive(ctx, live)
	live.SetPhase("planning")

	start := time.Now()
	prep, hit, err := s.resolve(src)
	if err != nil {
		s.metrics.failures.Add(1)
		return nil, err
	}

	live.SetPhase("queued")
	queueStart := time.Now()
	if _, err := s.gov.acquire(ctx); err != nil {
		if errors.Is(err, ErrOverloaded) {
			s.metrics.rejected.Add(1)
		}
		s.metrics.failures.Add(1)
		return nil, err
	}
	queued := time.Since(queueStart)
	live.RaiseMemPeak(1)
	live.SetPhase("executing")

	// Release the slot and the gauge via defer: a panicking execution
	// (recovered per-request by net/http) must not leak a slot, or the
	// governor would wedge shut while /healthz still answers ok.
	res, err := func() (*windowdb.Result, error) {
		defer s.gov.release()
		s.metrics.beginExec()
		defer s.metrics.endExec()
		return s.execPrepared(ctx, prep, subplanFP, shardLocal)
	}()

	elapsed := time.Since(start)
	var execM *exec.Metrics
	var rowsOut int64
	var meta *windowdb.QueryMetrics
	if res != nil {
		execM = res.Metrics
		if res.Table != nil {
			rowsOut = int64(res.Table.Len())
		}
		meta = windowdb.MetaFromResult(res)
	}
	live.AddRowsEmitted(rowsOut)
	if entry.Killed() && err != nil {
		s.metrics.aborted.Add(1)
	} else {
		s.metrics.observe(execM, rowsOut, elapsed, err)
	}
	s.recordTrace(id, src, start, elapsed, queryTrace(elapsed, queued, hit, rowsOut, meta), err)
	if err != nil {
		return nil, err
	}
	return &QueryResult{Result: res, CacheHit: hit, Queued: queued, Elapsed: elapsed, TraceID: id}, nil
}

// queryTrace assembles a served query's span tree: the admission wait,
// the chain execution subtree (per-step reorder choice, cardinality and
// spill), and the residual drain/render time.
func queryTrace(elapsed, queued time.Duration, cacheHit bool, rows int64, meta *windowdb.QueryMetrics) *trace.Span {
	root := trace.New("query", elapsed)
	if cacheHit {
		root.SetAttr("plan_cache", "hit")
	} else {
		root.SetAttr("plan_cache", "miss")
	}
	root.SetInt("rows", rows)
	root.Add(trace.New("admission.wait", queued))
	var execElapsed time.Duration
	if meta != nil && meta.SharedScan != "" {
		root.SetAttr("shared_scan", meta.SharedScan)
	}
	if meta != nil {
		if es := windowdb.ExecTrace(meta); es != nil {
			root.Add(es)
			execElapsed = meta.Exec.Elapsed
		}
	}
	if d := elapsed - queued - execElapsed; d > 0 {
		root.Add(trace.New("drain", d))
	}
	return root
}

// Service implements windowdb.Queryer: QueryContext serves a statement as
// an incremental Rows cursor whose admission slot is held for the cursor's
// whole lifetime — acquired before execution, released when the cursor is
// drained or closed. A client that stops consuming must Close (the HTTP
// layer does so on disconnect), or its slot stays occupied; a cancelled
// context unblocks a half-drained cursor at the next row stride and
// releases the slot the same way.
var _ windowdb.Queryer = (*Service)(nil)

// QueryContext serves one query as a streaming cursor. The error classes
// match Query's. An `EXPLAIN ANALYZE <stmt>` prefix executes the inner
// statement through the same path and returns the annotated trace
// rendering as a one-column text cursor; an `INSERT INTO ...` statement
// appends through Service.Append and returns the one-row summary cursor;
// a `SUBSCRIBE <stmt>` prefix serves the long-lived maintained cursor —
// the subscription holds its admission slot for its whole lifetime, shows
// in /debug/queries with phase "waiting for data", and is killable there.
func (s *Service) QueryContext(ctx context.Context, src string) (*windowdb.Rows, error) {
	if inner, ok := windowdb.StripExplainAnalyze(src); ok {
		return windowdb.ExplainAnalyzeRows(ctx, s, inner)
	}
	if windowdb.IsInsert(src) {
		return s.insertStream(ctx, src)
	}
	if inner, ok := windowdb.StripSubscribe(src); ok {
		return s.subscribeStream(ctx, src, inner)
	}
	return s.stream(ctx, src, "", "", false)
}

// insertStream serves an INSERT: parse, append (metered), one-row summary.
func (s *Service) insertStream(ctx context.Context, src string) (*windowdb.Rows, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ins, err := sql.ParseInsert(src)
	if err != nil {
		s.metrics.failures.Add(1)
		return nil, err
	}
	_, wm, err := s.Append(ctx, ins.Table, ins.Rows, 0)
	if err != nil {
		return nil, err
	}
	return windowdb.NewInsertRows(ins.Table, len(ins.Rows), wm), nil
}

// subscribeStream serves a SUBSCRIBE through the shared streaming body:
// the inner statement resolves through the plan cache, the subscription is
// admitted like any chain (it holds the slot while live) and registered
// under the full SUBSCRIBE text.
func (s *Service) subscribeStream(ctx context.Context, full, inner string) (*windowdb.Rows, error) {
	return s.streamCursor(ctx, full, inner, "", "waiting for data", func(ctx context.Context, prep *sql.Prepared) (execCursor, error) {
		return s.eng.SubscribeStatement(ctx, prep)
	})
}

// StreamShardLocal is QueryContext for the shard-local part of a statement
// (WHERE, chain, projection — no DISTINCT/ORDER BY/LIMIT): what a shard
// node streams back to a scatter-gather coordinator. fp is the
// coordinator's optional plan fingerprint (resolveFP); "" resolves by
// text. subplanFP is the coordinator's subplan fingerprint: when every
// request of a distributed statement carries it, the node's shared-subplan
// cache collides them by construction and one scan serves the fan-out.
// Because the shard-local pipeline never finalizes, rows leave the node
// the moment the final chain segment's projection yields them.
func (s *Service) StreamShardLocal(ctx context.Context, src, fp, subplanFP string) (*windowdb.Rows, error) {
	return s.stream(ctx, src, fp, subplanFP, true)
}

// PrepareContext validates and plans src through the service's plan cache,
// returning a statement that executes via the streaming path.
func (s *Service) PrepareContext(ctx context.Context, src string) (windowdb.Stmt, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if _, _, err := s.resolve(src); err != nil {
		return nil, err
	}
	return &serviceStmt{s: s, src: src}, nil
}

// serviceStmt re-resolves through the plan cache per execution, so a
// statement survives table re-registration (the cache re-prepares under
// the new catalog generation).
type serviceStmt struct {
	s   *Service
	src string
}

func (st *serviceStmt) QueryContext(ctx context.Context) (*windowdb.Rows, error) {
	return st.s.QueryContext(ctx, st.src)
}

func (st *serviceStmt) Close() error { return nil }

// execCursor is what a served stream drains: the sql.Cursor shape, also
// satisfied by the engine's live Subscription — the widening that lets
// SUBSCRIBE share the admission/registry/metrics discipline of one-shot
// streams.
type execCursor interface {
	Columns() []storage.Column
	Next() (storage.Tuple, error)
	Close() error
	Meta() *sql.Result
}

func (s *Service) stream(ctx context.Context, src, fp, subplanFP string, shardLocal bool) (*windowdb.Rows, error) {
	return s.streamCursor(ctx, src, src, fp, "draining", func(ctx context.Context, prep *sql.Prepared) (execCursor, error) {
		return s.openStream(ctx, prep, subplanFP, shardLocal)
	})
}

// streamCursor is the shared streaming-serve body: plan-cache resolution
// (by fingerprint when the coordinator shipped one, by text otherwise),
// admission, and the handoff-guarded slot-to-cursor transfer, with the
// execution cursor opened by open (the full statement, its shard-local
// part, a shuffle segment, or a subscription). display is the statement
// text registered in /debug/queries (the full SUBSCRIBE spelling for
// subscriptions); src is what resolves through the plan cache; phase is
// the registry phase the cursor shows while it streams.
func (s *Service) streamCursor(ctx context.Context, display, src, fp, phase string, open func(context.Context, *sql.Prepared) (execCursor, error)) (*windowdb.Rows, error) {
	var timeoutCancel context.CancelFunc
	if s.cfg.DefaultTimeout > 0 {
		if _, ok := ctx.Deadline(); !ok {
			// The timeout must cover the cursor's whole lifetime, so the
			// cancel travels with the stream and fires when it finishes.
			ctx, timeoutCancel = context.WithTimeout(ctx, s.cfg.DefaultTimeout)
		}
	}
	// The kill cancel wraps ctx unconditionally — DELETE /debug/queries/{id}
	// fires it through the registry entry whether or not a timeout is armed
	// — and travels with the cursor exactly like the timeout cancel.
	ctx, kill := context.WithCancel(ctx)
	cancel := func() {
		kill()
		if timeoutCancel != nil {
			timeoutCancel()
		}
	}
	id := trace.IDFromContext(ctx)
	ctx = trace.NewContext(ctx, id)
	entry := s.reg.Register(id, display, s.role(), trace.ClientFromContext(ctx), kill)
	live := entry.Live()
	ctx = trace.WithLive(ctx, live)
	live.SetPhase("planning")
	fail := func(err error) error {
		s.reg.Remove(entry)
		if entry.Killed() {
			s.metrics.aborted.Add(1)
		} else {
			s.metrics.failures.Add(1)
		}
		cancel()
		return err
	}
	start := time.Now()
	prep, hit, err := s.resolveFP(src, fp)
	if err != nil {
		return nil, fail(err)
	}

	live.SetPhase("queued")
	queueStart := time.Now()
	if _, err := s.gov.acquire(ctx); err != nil {
		if errors.Is(err, ErrOverloaded) {
			s.metrics.rejected.Add(1)
		}
		return nil, fail(err)
	}
	queued := time.Since(queueStart)
	live.RaiseMemPeak(1)
	live.SetPhase("executing")
	s.metrics.beginExec()
	// Until the slot is handed to the cursor, release it on every exit —
	// error or panic (recovered per-request by net/http): a panicking
	// chain must not wedge the governor shut while /healthz still answers
	// ok, same discipline as serve()'s deferred release.
	handoff := false
	defer func() {
		if !handoff {
			s.gov.release()
			s.metrics.endExec()
		}
	}()

	cur, err := open(ctx, prep)
	if err != nil {
		s.reg.Remove(entry)
		if entry.Killed() {
			s.metrics.aborted.Add(1)
		} else {
			s.metrics.observe(nil, 0, time.Since(start), err)
		}
		cancel()
		return nil, err
	}
	live.SetPhase(phase)
	handoff = true
	return windowdb.NewRows(&servedSource{
		svc: s, cur: cur, src: display, traceID: id, entry: entry, live: live,
		start: start, queued: queued, cacheHit: hit, cancel: cancel,
	}), nil
}

// servedSource adapts an execution cursor to the Rows contract while
// holding the service-side resources: the admission slot and the in-flight
// gauge, both released exactly once when the stream ends — drained, failed
// or closed early. The three endings classify differently: a full drain
// is a query, an execution error a failure, and an early Close (client
// disconnect, deliberate truncation) an abort — counted on its own
// gauge, with no latency sample, so partial deliveries don't masquerade
// as fast successes in the histogram.
type servedSource struct {
	svc      *Service
	cur      execCursor
	src      string
	traceID  string
	entry    *trace.QueryEntry
	live     *trace.Live
	start    time.Time
	queued   time.Duration
	cacheHit bool
	cancel   context.CancelFunc

	rows      int64
	completed bool // a terminal Next (io.EOF) was observed
	once      sync.Once
	meta      *windowdb.QueryMetrics
}

func (ss *servedSource) Columns() []storage.Column { return ss.cur.Columns() }

func (ss *servedSource) Next() (storage.Tuple, error) {
	t, err := ss.cur.Next()
	switch {
	case err == io.EOF:
		ss.completed = true
		ss.finish(nil)
	case err != nil:
		ss.finish(err)
	default:
		ss.rows++
		ss.live.AddRowsEmitted(1)
	}
	return t, err
}

func (ss *servedSource) Close() error {
	ss.finish(nil)
	return ss.cur.Close()
}

func (ss *servedSource) Metrics() *windowdb.QueryMetrics { return ss.meta }

func (ss *servedSource) finish(err error) {
	ss.once.Do(func() {
		ss.svc.gov.release()
		ss.svc.metrics.endExec()
		ss.svc.reg.Remove(ss.entry)
		killed := ss.entry.Killed()
		elapsed := time.Since(ss.start)
		meta := windowdb.MetaFromResult(ss.cur.Meta())
		meta.CacheHit, meta.Queued, meta.Elapsed = ss.cacheHit, ss.queued, elapsed
		root := queryTrace(elapsed, ss.queued, ss.cacheHit, ss.rows, meta)
		if killed {
			root.SetAttr("killed", "true")
		}
		if err != nil {
			root.SetAttr("error", err.Error())
		} else if !ss.completed {
			root.SetAttr("aborted", "true")
		}
		meta.TraceID, meta.Trace = ss.traceID, root
		ss.meta = meta
		switch {
		case killed:
			// The kill switch fired: an operator abort, not an engine
			// failure — no latency sample either way.
			ss.svc.metrics.aborted.Add(1)
		case err != nil:
			ss.svc.metrics.observe(nil, 0, elapsed, err)
		case !ss.completed:
			ss.svc.metrics.aborted.Add(1)
		default:
			ss.svc.metrics.observe(ss.cur.Meta().Metrics, ss.rows, elapsed, nil)
		}
		ss.svc.recordTrace(ss.traceID, ss.src, ss.start, elapsed, root, err)
		if ss.cancel != nil {
			ss.cancel()
		}
	})
}

// ResetMaxInFlight re-arms the in-flight high-water mark to the current
// gauge value, so load harnesses can read a per-window maximum instead of
// the lifetime one.
func (s *Service) ResetMaxInFlight() {
	s.metrics.maxInFlight.Store(s.metrics.inFlight.Load())
}

// Stats snapshots the service counters, including admission and cache
// state. It doubles as the shuffle inbox's periodic sweep trigger: /stats
// polling is the one call path a node sees regularly even when no new
// shuffles arrive, so orphaned buffers expire without a background
// goroutine.
func (s *Service) Stats() Snapshot {
	s.sweepShuffle()
	snap := s.metrics.snapshot()
	snap.Slots = s.gov.Slots()
	snap.QueueDepth = s.gov.queueDepth()
	snap.LiveQueries = s.reg.Len()
	snap.Cache = s.cache.stats()
	if s.subplans != nil {
		snap.Subplans = s.subplans.stats()
	}
	return snap
}
