package service

import (
	"container/list"
	"context"
	"fmt"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/sql"
)

// The shared-subplan cache generalizes the prepared-statement cache from
// "share the planning" to "share the execution": two statements whose
// expensive half — WHERE filtering plus the chain's leading heavy reorder
// (the scan+reorder subplan of internal/sql/subplan.go) — has the same
// identity run that half once and evaluate their private derivation
// suffixes over one materialized segment. Identity has two levels:
//
//   - the *group*: (schema generation, data generation, lowercased table,
//     canonical WHERE) — statements in one group read exactly the same
//     rows. Both generations are part of the key, so re-registering a
//     table (schema gen) or appending rows (data gen) silently retires
//     every segment built on the old data: a query arriving after an
//     append keys to the new generation, misses, and re-scans.
//
//   - the *node*: the canonical form of the leading reorder — the frame
//     lattice position (core.LatticeNode), or the coordinator-shipped
//     subplan fingerprint when a scatter request carries one, so every
//     request of one distributed statement collides by construction.
//
// An exact (group, node) match is direct reuse. Within a group, a miss
// also scans for a *finer* cached segment whose stream properties match
// all of the statement's window functions (Props.MatchesAll — Definition
// 2 applied at the cache boundary): the frame-lattice hit, where a
// dashboard's coarse-grain queries ride the finest query's scan.
//
// Concurrency is singleflight: the first query to want a segment becomes
// the leader and executes the scan; colliding queries attach to the
// in-flight entry and wait on its done channel (honoring their contexts).
// Every participant holds its own admission slot — the leader acquires
// its slot before entering the cache, so a full governor can never
// deadlock the flight — but the scan's I/O is charged once, to the
// leader (chargeScan in sql.Prepared's shared execution entry points);
// attachers report suffix-only metrics. A leader error removes the entry
// and its attachers fall back to private execution (counted as
// fallbacks), so a poisoned scan is never served.
type subplanCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*subplanEntry
	order   *list.List // front = most recently used; values are *subplanEntry

	hits, misses, attaches, evictions, invalidations, fallbacks uint64
}

// Shared-scan dispositions, reported through sql.Result.SharedScan, the
// shared_scan trace attribute and the stream trailer.
const (
	dispMiss   = "miss"
	dispHit    = "hit"
	dispAttach = "attach"
)

// subplanEntry is one cached (or in-flight) scan+reorder execution. done
// closes when the leader completes; seg/err are valid after that. props is
// known from planning time — before the scan finishes — so frame-lattice
// matching works against in-flight entries too.
type subplanEntry struct {
	key       string
	table     string
	schemaGen uint64
	dataGen   uint64
	props     core.Props

	done chan struct{}
	seg  *sql.SharedSegment
	err  error
	el   *list.Element
}

// wait blocks until the entry's leader completes or ctx is done.
func (e *subplanEntry) wait(ctx context.Context) (*sql.SharedSegment, error) {
	select {
	case <-e.done:
		return e.seg, e.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func newSubplanCache(capacity int) *subplanCache {
	if capacity < 1 {
		capacity = 1
	}
	return &subplanCache{
		cap:     capacity,
		entries: make(map[string]*subplanEntry, capacity),
		order:   list.New(),
	}
}

// acquire resolves prep's subplan through the cache: an exact or lattice
// match returns the existing entry with disposition "hit" (completed) or
// "attach" (in-flight); otherwise a fresh in-flight entry is created and
// the caller is the leader ("miss") — it must execute the scan and call
// complete exactly once. shippedFP is the coordinator's subplan
// fingerprint when the request carried one ("" otherwise); schemaGen is
// the engine's catalog generation.
func (c *subplanCache) acquire(prep *sql.Prepared, shippedFP string, schemaGen uint64) (*subplanEntry, string) {
	scanKey := prep.SubplanScanKey()
	table := scanKey
	if i := strings.IndexByte(scanKey, '|'); i >= 0 {
		table = scanKey[:i]
	}
	dataGen := prep.DataGeneration()
	group := fmt.Sprintf("g%d|d%d|%s", schemaGen, dataGen, scanKey)
	node := prep.SubplanNode()
	if shippedFP != "" {
		node = shippedFP
	}
	key := group + "|" + node
	wfs := prep.WFs()

	c.mu.Lock()
	defer c.mu.Unlock()

	// Sweep superseded segments for this table: entries keyed under an
	// older generation can never match again, and each pins a materialized
	// table — they must not wait for LRU pressure in a memory-budgeted
	// server.
	var next *list.Element
	for el := c.order.Front(); el != nil; el = next {
		next = el.Next()
		ent := el.Value.(*subplanEntry)
		if ent.table == table && (ent.schemaGen != schemaGen || ent.dataGen != dataGen) {
			c.removeLocked(ent)
			c.invalidations++
		}
	}

	if ent, ok := c.entries[key]; ok {
		return ent, c.useLocked(ent)
	}
	// Frame-lattice scan: a finer segment in the same group whose stream
	// properties match every window function of this statement serves it
	// scan-free.
	for el := c.order.Front(); el != nil; el = el.Next() {
		ent := el.Value.(*subplanEntry)
		if strings.HasPrefix(ent.key, group+"|") && ent.props.MatchesAll(wfs) {
			return ent, c.useLocked(ent)
		}
	}

	ent := &subplanEntry{
		key: key, table: table, schemaGen: schemaGen, dataGen: dataGen,
		props: prep.SubplanProps(), done: make(chan struct{}),
	}
	ent.el = c.order.PushFront(ent)
	c.entries[key] = ent
	c.misses++
	if c.order.Len() > c.cap {
		back := c.order.Back().Value.(*subplanEntry)
		c.removeLocked(back)
		c.evictions++
	}
	return ent, dispMiss
}

// useLocked classifies reuse of an existing entry — "hit" when completed,
// "attach" while the leader's scan is in flight — and bumps its recency.
func (c *subplanCache) useLocked(ent *subplanEntry) string {
	if ent.el != nil {
		c.order.MoveToFront(ent.el)
	}
	select {
	case <-ent.done:
		c.hits++
		return dispHit
	default:
		c.attaches++
		return dispAttach
	}
}

// removeLocked unlinks an entry from the map and the LRU list. Attachers
// already holding the entry are unaffected: removal only stops new
// lookups from finding it; the done channel and segment stay valid.
func (c *subplanCache) removeLocked(ent *subplanEntry) {
	if cur, ok := c.entries[ent.key]; ok && cur == ent {
		delete(c.entries, ent.key)
	}
	if ent.el != nil {
		c.order.Remove(ent.el)
		ent.el = nil
	}
}

// complete publishes the leader's scan outcome and wakes every attacher.
// A failed scan is removed so the error is never served to later queries
// — each attacher sees the error once and falls back to private
// execution.
func (c *subplanCache) complete(ent *subplanEntry, seg *sql.SharedSegment, err error) {
	c.mu.Lock()
	ent.seg, ent.err = seg, err
	if err != nil {
		c.removeLocked(ent)
	}
	c.mu.Unlock()
	close(ent.done)
}

// fallback counts an attacher that abandoned a failed flight and executed
// privately.
func (c *subplanCache) fallback() {
	c.mu.Lock()
	c.fallbacks++
	c.mu.Unlock()
}

// SubplanStats is the shared-subplan cache counter snapshot exposed
// through Service.Stats and /metrics.
type SubplanStats struct {
	Size     int `json:"size"`
	Capacity int `json:"capacity"`
	// Hits are lookups served from a completed shared segment; Attaches
	// joined an in-flight scan; Misses led one. Hits+Attaches over all
	// three is the fraction of shareable executions that skipped a scan.
	Hits     uint64 `json:"hits"`
	Misses   uint64 `json:"misses"`
	Attaches uint64 `json:"attaches"`
	// Invalidations are segments retired by a schema or data generation
	// change; Evictions by LRU pressure; Fallbacks are attachers whose
	// leader failed and who re-executed privately.
	Invalidations uint64 `json:"invalidations"`
	Evictions     uint64 `json:"evictions"`
	Fallbacks     uint64 `json:"fallbacks"`
}

// SharedRate returns (hits+attaches) / (hits+attaches+misses): the
// fraction of shareable executions that reused another query's scan. 0
// when no lookups happened.
func (s SubplanStats) SharedRate() float64 {
	total := s.Hits + s.Attaches + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits+s.Attaches) / float64(total)
}

func (c *subplanCache) stats() SubplanStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return SubplanStats{
		Size:          c.order.Len(),
		Capacity:      c.cap,
		Hits:          c.hits,
		Misses:        c.misses,
		Attaches:      c.attaches,
		Invalidations: c.invalidations,
		Evictions:     c.evictions,
		Fallbacks:     c.fallbacks,
	}
}

// sharedSegment resolves prep's scan+reorder subplan through the shared
// cache. It returns (nil, "", nil) when the execution should run
// privately: sharing disabled, statement not shareable, or this query
// attached to a flight whose leader failed (the fallback). A non-nil
// segment comes with the disposition the caller stamps on the result;
// disposition "miss" means this query led the scan and must charge it.
func (s *Service) sharedSegment(ctx context.Context, prep *sql.Prepared, shippedFP string) (*sql.SharedSegment, string, error) {
	if s.subplans == nil || !prep.Shareable() {
		return nil, "", nil
	}
	ent, disp := s.subplans.acquire(prep, shippedFP, s.eng.Generation())
	if disp == dispMiss {
		seg, err := prep.RunSubplan(ctx)
		s.subplans.complete(ent, seg, err)
		return seg, disp, err
	}
	seg, err := ent.wait(ctx)
	if err != nil {
		if ctx.Err() != nil {
			return nil, "", ctx.Err()
		}
		s.subplans.fallback()
		return nil, "", nil
	}
	return seg, disp, nil
}

// execPrepared is the buffered execution body behind serve(): shared when
// the subplan cache yields a segment, private otherwise. The disposition
// rides home in Result.SharedScan.
func (s *Service) execPrepared(ctx context.Context, prep *sql.Prepared, shippedFP string, shardLocal bool) (*sql.Result, error) {
	seg, disp, err := s.sharedSegment(ctx, prep, shippedFP)
	if err != nil {
		return nil, err
	}
	if seg != nil {
		var res *sql.Result
		if shardLocal {
			res, err = prep.ExecuteSharedShardContext(ctx, seg, disp == dispMiss)
		} else {
			res, err = prep.ExecuteSharedContext(ctx, seg, disp == dispMiss)
		}
		if err != nil {
			return nil, err
		}
		res.SharedScan = disp
		return res, nil
	}
	if shardLocal {
		return prep.ExecuteShardContext(ctx)
	}
	return prep.ExecuteContext(ctx)
}

// openStream is execPrepared's cursor sibling, behind stream(): the
// disposition is stamped on the cursor's meta so it reaches the trace,
// the trailer and EXPLAIN ANALYZE.
func (s *Service) openStream(ctx context.Context, prep *sql.Prepared, shippedFP string, shardLocal bool) (execCursor, error) {
	seg, disp, err := s.sharedSegment(ctx, prep, shippedFP)
	if err != nil {
		return nil, err
	}
	if seg != nil {
		var cur *sql.Cursor
		if shardLocal {
			cur, err = prep.StreamSharedShardContext(ctx, seg, disp == dispMiss)
		} else {
			cur, err = prep.StreamSharedContext(ctx, seg, disp == dispMiss)
		}
		if err != nil {
			return nil, err
		}
		cur.Meta().SharedScan = disp
		return cur, nil
	}
	if shardLocal {
		return prep.StreamShardContext(ctx)
	}
	return prep.StreamContext(ctx)
}
