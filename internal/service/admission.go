package service

import (
	"context"
	"errors"
	"sync/atomic"
)

// ErrOverloaded rejects a query when every execution slot is busy and the
// admission queue is full. It is the service's typed backpressure signal;
// the HTTP layer maps it to 429. Test with errors.Is.
var ErrOverloaded = errors.New("service: overloaded, admission queue full")

// governor is the admission controller: a semaphore of unit-memory
// execution slots plus a bounded wait queue. Each in-flight execution
// holds one slot, so at most cap(slots) chains run concurrently and each
// can assume the full unit reorder memory M — N simultaneous queries
// share the global budget honestly instead of each pretending to own M.
type governor struct {
	slots    chan struct{}
	maxQueue int64
	waiting  atomic.Int64
}

func newGovernor(slots, maxQueue int) *governor {
	if slots < 1 {
		slots = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &governor{slots: make(chan struct{}, slots), maxQueue: int64(maxQueue)}
}

// Slots returns the concurrent-execution bound.
func (g *governor) Slots() int { return cap(g.slots) }

// queueDepth returns the number of queries currently waiting for a slot.
func (g *governor) queueDepth() int64 { return g.waiting.Load() }

// acquire claims one execution slot, queueing when all are busy. A query
// that cannot even enter the queue (maxQueue waiters already) fails fast
// with ErrOverloaded; a queued query that is cancelled or times out
// returns ctx.Err(). queued reports whether the query waited.
func (g *governor) acquire(ctx context.Context) (queued bool, err error) {
	select {
	case g.slots <- struct{}{}:
		return false, nil
	default:
	}
	if err := ctx.Err(); err != nil {
		return false, err
	}
	if g.waiting.Add(1) > g.maxQueue {
		g.waiting.Add(-1)
		return false, ErrOverloaded
	}
	defer g.waiting.Add(-1)
	select {
	case g.slots <- struct{}{}:
		return true, nil
	case <-ctx.Done():
		return true, ctx.Err()
	}
}

// release returns a slot claimed by acquire.
func (g *governor) release() { <-g.slots }
