package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro"
	"repro/internal/datagen"
)

const mixQ1 = `SELECT ws_item_sk, rank() OVER (PARTITION BY ws_item_sk ORDER BY ws_sold_time_sk) AS r FROM web_sales`

func newTestService(t testing.TB, cfg Config, rows int) *Service {
	t.Helper()
	eng := windowdb.New(windowdb.Config{SortMemBytes: 4 << 20, Parallelism: 1})
	eng.Register("web_sales", datagen.WebSales(datagen.WebSalesConfig{Rows: rows, Seed: 1}))
	eng.Register("emptab", datagen.Emptab())
	return New(eng, cfg)
}

// TestAdmissionBoundsInFlight is the acceptance check for the governor:
// with 2 execution slots and 8 closed-loop clients, the in-flight gauge's
// high-water mark never exceeds the slot count, while every query still
// completes (the excess queued rather than failing).
func TestAdmissionBoundsInFlight(t *testing.T) {
	const slots = 2
	svc := newTestService(t, Config{Slots: slots, MaxQueue: 64}, 4000)
	ctx := context.Background()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 3; j++ {
				if _, err := svc.Query(ctx, mixQ1); err != nil {
					t.Errorf("query: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	stats := svc.Stats()
	if stats.MaxInFlight > slots {
		t.Fatalf("max in-flight %d exceeds %d slots", stats.MaxInFlight, slots)
	}
	if stats.Queries != 24 {
		t.Fatalf("completed %d queries, want 24", stats.Queries)
	}
	if stats.Failures != 0 || stats.Rejected != 0 {
		t.Fatalf("unexpected failures=%d rejected=%d", stats.Failures, stats.Rejected)
	}
}

// TestGovernorQueueOverflow pins the admission state machine: with 1 slot
// and a 1-deep queue, the slot holder plus one waiter are admitted and the
// next query is rejected with ErrOverloaded; releasing the slot admits the
// waiter.
func TestGovernorQueueOverflow(t *testing.T) {
	g := newGovernor(1, 1)
	ctx := context.Background()
	if queued, err := g.acquire(ctx); err != nil || queued {
		t.Fatalf("first acquire: queued=%v err=%v", queued, err)
	}

	waiterIn := make(chan error, 1)
	go func() {
		_, err := g.acquire(ctx)
		waiterIn <- err
	}()
	// Wait until the goroutine is actually queued.
	for i := 0; g.queueDepth() != 1; i++ {
		if i > 1000 {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}

	if _, err := g.acquire(ctx); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("overflow acquire: err=%v, want ErrOverloaded", err)
	}

	g.release()
	if err := <-waiterIn; err != nil {
		t.Fatalf("queued waiter: %v", err)
	}
	g.release()
}

// TestGovernorCancelWhileQueued: a queued query honors its deadline.
func TestGovernorCancelWhileQueued(t *testing.T) {
	g := newGovernor(1, 8)
	if _, err := g.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	queued, err := g.acquire(ctx)
	if !queued || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued=%v err=%v, want queued deadline-exceeded", queued, err)
	}
	g.release()
}

// TestServiceOverloaded: with every slot held and no queue, Query fails
// fast with the typed error and the rejection is counted.
func TestServiceOverloaded(t *testing.T) {
	svc := newTestService(t, Config{Slots: 1, MaxQueue: -1}, 200)
	svc.gov.slots <- struct{}{} // occupy the only slot
	_, err := svc.Query(context.Background(), mixQ1)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err=%v, want ErrOverloaded", err)
	}
	stats := svc.Stats()
	if stats.Rejected != 1 || stats.Failures != 1 {
		t.Fatalf("rejected=%d failures=%d, want 1/1", stats.Rejected, stats.Failures)
	}
	<-svc.gov.slots
	if _, err := svc.Query(context.Background(), mixQ1); err != nil {
		t.Fatalf("after release: %v", err)
	}
}

// TestPlanCacheHitMissInvalidation: the second textual variant of a query
// hits; re-registering a table invalidates and re-prepares.
func TestPlanCacheHitMissInvalidation(t *testing.T) {
	svc := newTestService(t, Config{}, 500)
	ctx := context.Background()
	if _, err := svc.Query(ctx, mixQ1); err != nil {
		t.Fatal(err)
	}
	// A whitespace variant of the same statement must share the slot.
	variant := "SELECT   ws_item_sk,\trank() OVER (PARTITION BY ws_item_sk ORDER BY ws_sold_time_sk) AS r\n FROM web_sales"
	res, err := svc.Query(ctx, variant)
	if err != nil {
		t.Fatal(err)
	}
	if !res.CacheHit {
		t.Fatal("normalized variant missed the plan cache")
	}
	if c := svc.cache.stats(); c.Hits != 1 || c.Misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", c.Hits, c.Misses)
	}

	// Re-registering any table bumps the generation: the cached plan is
	// stale, the lookup counts an invalidation and the query re-prepares.
	svc.Engine().Register("web_sales", datagen.WebSales(datagen.WebSalesConfig{Rows: 300, Seed: 2}))
	res, err = svc.Query(ctx, mixQ1)
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHit {
		t.Fatal("stale plan served after re-registration")
	}
	if res.Table.Len() != 300 {
		t.Fatalf("stale execution: got %d rows, want the re-registered table's 300", res.Table.Len())
	}
	if c := svc.cache.stats(); c.Invalidations != 1 {
		t.Fatalf("invalidations=%d, want 1", c.Invalidations)
	}
}

// TestPlanCacheLRU: the least recently used statement is evicted past
// capacity.
func TestPlanCacheLRU(t *testing.T) {
	svc := newTestService(t, Config{CacheEntries: 2}, 200)
	ctx := context.Background()
	queries := []string{
		`SELECT ws_item_sk FROM web_sales LIMIT 1`,
		`SELECT ws_quantity FROM web_sales LIMIT 1`,
		`SELECT ws_warehouse_sk FROM web_sales LIMIT 1`,
	}
	for _, q := range queries {
		if _, err := svc.Query(ctx, q); err != nil {
			t.Fatal(err)
		}
	}
	c := svc.cache.stats()
	if c.Size != 2 || c.Evictions != 1 {
		t.Fatalf("size=%d evictions=%d, want 2/1", c.Size, c.Evictions)
	}
	// The first statement was evicted; the last two still hit.
	res, err := svc.Query(ctx, queries[2])
	if err != nil {
		t.Fatal(err)
	}
	if !res.CacheHit {
		t.Fatal("most recent statement evicted")
	}
	res, err = svc.Query(ctx, queries[0])
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHit {
		t.Fatal("evicted statement reported as hit")
	}
}

// TestQueryDeadline: a query whose deadline expires mid-chain surfaces
// context.DeadlineExceeded (the executor checks at step boundaries).
func TestQueryDeadline(t *testing.T) {
	svc := newTestService(t, Config{}, 20_000)
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	_, err := svc.Query(ctx, mixQ1)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err=%v, want DeadlineExceeded", err)
	}
}

// TestStatsSnapshot: the counters a dashboard depends on move.
func TestStatsSnapshot(t *testing.T) {
	svc := newTestService(t, Config{Slots: 3}, 500)
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if _, err := svc.Query(ctx, mixQ1); err != nil {
			t.Fatal(err)
		}
	}
	s := svc.Stats()
	if s.Queries != 5 {
		t.Errorf("queries=%d, want 5", s.Queries)
	}
	if s.QPS <= 0 {
		t.Errorf("qps=%v, want > 0", s.QPS)
	}
	if s.Slots != 3 || s.InFlight != 0 {
		t.Errorf("slots=%d inflight=%d, want 3/0", s.Slots, s.InFlight)
	}
	if s.P50Millis <= 0 || s.P95Millis < s.P50Millis || s.P99Millis < s.P95Millis {
		t.Errorf("implausible percentiles %v/%v/%v", s.P50Millis, s.P95Millis, s.P99Millis)
	}
	if s.Cache.Hits != 4 || s.Cache.Misses != 1 {
		t.Errorf("cache hits=%d misses=%d, want 4/1", s.Cache.Hits, s.Cache.Misses)
	}
	if s.RowsOut != 5*500 {
		t.Errorf("rows_out=%d, want %d", s.RowsOut, 5*500)
	}
}

// TestHistogramQuantiles pins the bucketed quantile read: upper bounds
// bracket the true values within one growth factor.
func TestHistogramQuantiles(t *testing.T) {
	var h latencyHist
	for i := 1; i <= 1000; i++ {
		h.observe(time.Duration(i) * time.Millisecond)
	}
	for _, c := range []struct {
		q    float64
		want time.Duration
	}{{0.50, 500 * time.Millisecond}, {0.95, 950 * time.Millisecond}, {0.99, 990 * time.Millisecond}} {
		got := h.quantile(c.q)
		if got < c.want || got > time.Duration(float64(c.want)*histGrowth*histGrowth) {
			t.Errorf("q%.0f = %v, want within a bucket of %v", c.q*100, got, c.want)
		}
	}
}

// TestConcurrentMixedTraffic hammers one service from many goroutines with
// a mix of hits, misses and re-registrations; run under -race this is the
// service's thread-safety proof.
func TestConcurrentMixedTraffic(t *testing.T) {
	svc := newTestService(t, Config{Slots: 4, CacheEntries: 8}, 500)
	ctx := context.Background()
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				q := fmt.Sprintf(`SELECT ws_item_sk, rank() OVER (PARTITION BY ws_item_sk ORDER BY ws_sold_time_sk) AS r FROM web_sales LIMIT %d`, 1+(i+j)%4)
				if _, err := svc.Query(ctx, q); err != nil {
					t.Errorf("worker %d: %v", i, err)
					return
				}
			}
		}(i)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 5; j++ {
			svc.Engine().Register("web_sales", datagen.WebSales(datagen.WebSalesConfig{Rows: 500, Seed: int64(j + 2)}))
		}
	}()
	wg.Wait()
	s := svc.Stats()
	if s.Failures != 0 {
		t.Fatalf("failures=%d, want 0", s.Failures)
	}
	if s.MaxInFlight > 4 {
		t.Fatalf("max in-flight %d exceeds 4 slots", s.MaxInFlight)
	}
}

// TestPlanCacheSweepOnGenerationChange: the first lookup after a Register
// drops every stale entry — not just the looked-up key — so plans whose
// SQL never recurs cannot pin superseded table snapshots.
func TestPlanCacheSweepOnGenerationChange(t *testing.T) {
	svc := newTestService(t, Config{}, 300)
	ctx := context.Background()
	queries := []string{
		`SELECT ws_item_sk FROM web_sales LIMIT 1`,
		`SELECT ws_quantity FROM web_sales LIMIT 1`,
		`SELECT ws_warehouse_sk FROM web_sales LIMIT 1`,
	}
	for _, q := range queries {
		if _, err := svc.Query(ctx, q); err != nil {
			t.Fatal(err)
		}
	}
	if c := svc.cache.stats(); c.Size != 3 {
		t.Fatalf("size=%d, want 3", c.Size)
	}
	svc.Engine().Register("web_sales", datagen.WebSales(datagen.WebSalesConfig{Rows: 100, Seed: 5}))
	// One lookup of a brand-new statement triggers the sweep of all three.
	if _, err := svc.Query(ctx, `SELECT ws_order_number FROM web_sales LIMIT 1`); err != nil {
		t.Fatal(err)
	}
	c := svc.cache.stats()
	if c.Size != 1 || c.Invalidations != 3 {
		t.Fatalf("size=%d invalidations=%d after sweep, want 1/3", c.Size, c.Invalidations)
	}
}
