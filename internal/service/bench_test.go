package service

import (
	"context"
	"testing"

	"repro"
	"repro/internal/datagen"
)

// BenchmarkService — the serving hot path: one query of the load-harness
// mix through the full service stack (plan cache, admission, execution).
// After the warmup query every plan comes from the cache, so cache=hit
// measures the execute-many side of plan-once/execute-many; the
// cache=miss variant re-registers the table each iteration to price the
// full parse+bind+plan path on top. cmd/windbench -exp service runs the
// closed-loop concurrency sweep with a printed table.
func BenchmarkService(b *testing.B) {
	const q = `SELECT ws_item_sk, rank() OVER (PARTITION BY ws_item_sk ORDER BY ws_sold_time_sk) AS r FROM web_sales`
	table := datagen.WebSales(datagen.WebSalesConfig{Rows: 10_000, Seed: 1})
	newService := func() *Service {
		eng := windowdb.New(windowdb.Config{SortMemBytes: 8 << 20, Parallelism: 1})
		eng.Register("web_sales", table)
		return New(eng, Config{})
	}
	b.Run("cache=hit", func(b *testing.B) {
		svc := newService()
		ctx := context.Background()
		if _, err := svc.Query(ctx, q); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := svc.Query(ctx, q); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if hits := svc.Stats().Cache.Hits; hits < uint64(b.N) {
			b.Fatalf("expected every timed query to hit the plan cache, got %d hits for %d queries", hits, b.N)
		}
	})
	b.Run("cache=miss", func(b *testing.B) {
		svc := newService()
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			svc.Engine().Register("web_sales", table) // bump the generation
			if _, err := svc.Query(ctx, q); err != nil {
				b.Fatal(err)
			}
		}
	})
}
