package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime/debug"
	"strings"
	"time"

	"repro"
	"repro/internal/catalog"
	"repro/internal/sql"
	"repro/internal/storage"
	"repro/internal/trace"
)

// Handler returns the HTTP/JSON serving surface:
//
//	POST /query   {"sql": "...", "max_rows": 100, "timeout_ms": 5000}
//	GET  /query?q=SELECT+...
//	GET  /stats   service Snapshot as JSON
//	GET  /healthz "ok"
//
// /query answers with a buffered JSON body by default; a request carrying
// "stream":true, ?stream=1 or `Accept: application/x-ndjson` gets the
// chunked NDJSON stream instead (stream.go) — rows leave as the cursor
// yields them and the admission slot is released when the stream ends or
// the client disconnects. service.Client is the Go consumer of that shape.
//
// With Config.ShardRoutes, the /shard/* node surface (shard.go) is
// mounted too.
//
// Status taxonomy: client errors are distinguished from engine faults —
// malformed requests and parse/bind errors are 400, unknown tables 404,
// admission rejection 429, queries timed out under the server's control
// 503, everything else (a genuine engine fault) 500. Error bodies are
// {"error": "...", "kind": "..."} with kind one of request, parse, bind,
// unknown_table, overloaded, timeout, canceled, internal.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/append", s.handleAppend)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/trace/", s.handleDebugTrace)
	mux.HandleFunc("/debug/queries", s.handleDebugQueries)
	mux.HandleFunc("/debug/queries/", s.handleDebugQueries)
	if s.cfg.ShardRoutes {
		// Shard-node surface (shard.go): what a cluster coordinator
		// calls. Opt-in — register/table would let any client overwrite
		// or dump tables on a public single-engine server.
		mux.HandleFunc("/shard/query", s.handleShardQuery)
		mux.HandleFunc("/shard/register", s.handleShardRegister)
		mux.HandleFunc("/shard/table", s.handleShardTable)
		mux.HandleFunc("/shard/distinct", s.handleShardDistinct)
		mux.HandleFunc("/shard/shuffle", s.handleShuffleIngest)
		mux.HandleFunc("/shard/shuffle/run", s.handleShuffleRun)
		mux.HandleFunc("/shard/shuffle/drop", s.handleShuffleDrop)
	}
	return mux
}

type queryRequest struct {
	SQL string `json:"sql"`
	// MaxRows truncates the returned rows (the query still executes fully);
	// 0 means all rows.
	MaxRows int `json:"max_rows"`
	// TimeoutMillis bounds the query when > 0, overriding the service
	// default.
	TimeoutMillis int64 `json:"timeout_ms"`
	// Stream asks for the NDJSON streamed response (stream.go) instead of
	// the buffered JSON body; `Accept: application/x-ndjson` and `?stream=1`
	// are equivalent spellings.
	Stream bool `json:"stream,omitempty"`
	// Subscribe turns the statement into a SUBSCRIBE (prepending the verb
	// if the SQL doesn't already carry it) and implies Stream: the response
	// is the live delta stream, flushed row by row. `?subscribe=1` is the
	// GET spelling.
	Subscribe bool `json:"subscribe,omitempty"`
}

type queryResponse struct {
	Columns   []string `json:"columns"`
	Rows      [][]any  `json:"rows"`
	RowCount  int      `json:"row_count"`
	Truncated bool     `json:"truncated,omitempty"`

	ElapsedMillis float64 `json:"elapsed_ms"`
	QueuedMillis  float64 `json:"queued_ms"`
	CacheHit      bool    `json:"cache_hit"`
	SharedScan    string  `json:"shared_scan,omitempty"`

	Chain         string `json:"chain,omitempty"`
	FinalSort     string `json:"final_sort,omitempty"`
	BlocksRead    int64  `json:"blocks_read"`
	BlocksWritten int64  `json:"blocks_written"`
	TraceID       string `json:"trace_id,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
	Kind  string `json:"kind"`
}

// StatusFor maps a serving error to its HTTP status and taxonomy kind.
// Exported so the cluster coordinator's front end (internal/shard) serves
// the same taxonomy.
func StatusFor(err error) (int, string) {
	switch {
	case errors.Is(err, sql.ErrParse):
		return http.StatusBadRequest, "parse"
	case errors.Is(err, sql.ErrBind):
		return http.StatusBadRequest, "bind"
	case errors.Is(err, catalog.ErrUnknownTable):
		return http.StatusNotFound, "unknown_table"
	case errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests, "overloaded"
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusServiceUnavailable, "timeout"
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable, "canceled"
	default:
		return http.StatusInternalServerError, "internal"
	}
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(body)
}

func writeError(w http.ResponseWriter, status int, kind string, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error(), Kind: kind})
}

func (s *Service) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	switch r.Method {
	case http.MethodGet:
		req.SQL = r.URL.Query().Get("q")
	case http.MethodPost:
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "request", fmt.Errorf("service: bad request body: %w", err))
			return
		}
	default:
		w.Header().Set("Allow", "GET, POST")
		writeError(w, http.StatusMethodNotAllowed, "request", errors.New("service: use GET ?q= or POST JSON"))
		return
	}
	if req.SQL == "" {
		writeError(w, http.StatusBadRequest, "request", errors.New("service: empty query: pass ?q= or a JSON body with \"sql\""))
		return
	}
	if v := r.URL.Query().Get("subscribe"); v == "1" || strings.EqualFold(v, "true") {
		req.Subscribe = true
	}
	if req.Subscribe {
		if _, ok := windowdb.StripSubscribe(req.SQL); !ok {
			req.SQL = "SUBSCRIBE " + req.SQL
		}
	}
	// A SUBSCRIBE statement (spelled either way) only makes sense streamed.
	_, isLive := windowdb.StripSubscribe(req.SQL)
	if isLive {
		req.Stream = true
	}

	ctx := r.Context()
	if req.TimeoutMillis > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMillis)*time.Millisecond)
		defer cancel()
	}

	// Join the caller's distributed trace, or start one: the ID travels
	// by context into the serving path and back out as a response header,
	// so `curl -i` hands the caller the /debug/trace/{id} key.
	traceID := r.Header.Get(trace.HeaderTraceID)
	if traceID == "" {
		traceID = trace.NewID()
	}
	ctx = trace.NewContext(ctx, traceID)
	ctx = trace.WithClient(ctx, r.RemoteAddr)
	w.Header().Set(trace.HeaderTraceID, traceID)

	if req.Stream || NDJSONRequested(r) {
		rows, err := s.QueryContext(ctx, req.SQL)
		if err != nil {
			status, kind := StatusFor(err)
			writeError(w, status, kind, err)
			return
		}
		if isLive {
			WriteLiveStream(s.liveContext(r.Context(), traceID), w, rows, req.MaxRows, s.streamCodec(r))
		} else {
			WriteStream(s.liveContext(r.Context(), traceID), w, rows, req.MaxRows, s.streamCodec(r))
		}
		return
	}

	res, err := s.Query(ctx, req.SQL)
	if err != nil {
		status, kind := StatusFor(err)
		writeError(w, status, kind, err)
		return
	}

	t := res.Table
	resp := queryResponse{
		Columns:       make([]string, t.Schema.Len()),
		RowCount:      t.Len(),
		ElapsedMillis: float64(res.Elapsed) / float64(time.Millisecond),
		QueuedMillis:  float64(res.Queued) / float64(time.Millisecond),
		CacheHit:      res.CacheHit,
		SharedScan:    res.SharedScan,
		FinalSort:     res.FinalSort,
		TraceID:       res.TraceID,
	}
	for i, c := range t.Schema.Columns {
		resp.Columns[i] = c.Name
	}
	if res.Plan != nil {
		resp.Chain = res.Plan.PaperString()
	}
	if res.Metrics != nil {
		resp.BlocksRead = res.Metrics.BlocksRead
		resp.BlocksWritten = res.Metrics.BlocksWritten
	}
	rows := t.Rows
	if req.MaxRows > 0 && len(rows) > req.MaxRows {
		rows = rows[:req.MaxRows]
		resp.Truncated = true
	}
	resp.Rows = make([][]any, len(rows))
	for i, row := range rows {
		out := make([]any, len(row))
		for j, v := range row {
			out[j] = JSONValue(v)
		}
		resp.Rows[i] = out
	}
	writeJSON(w, http.StatusOK, resp)
}

// JSONValue maps a storage value to its natural JSON representation (the
// human-facing /query row encoding; the lossless shard-transport encoding
// is WireValue).
func JSONValue(v storage.Value) any {
	switch v.Kind() {
	case storage.KindNull:
		return nil
	case storage.KindInt:
		return v.Int64()
	case storage.KindFloat:
		return v.Float64()
	case storage.KindString:
		return v.Str()
	default:
		return v.String()
	}
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// liveContext attaches the registered query's live counters to the
// context a stream writer runs under, so wire bytes account to the owning
// registry entry. The stream outlives the registration window by one
// trailer write at most; a post-deregistration add on the Live is
// harmless.
func (s *Service) liveContext(ctx context.Context, traceID string) context.Context {
	if e := s.reg.Get(traceID); e != nil {
		ctx = trace.WithLive(ctx, e.Live())
	}
	return ctx
}

// Health is the /healthz response body: alive plus enough identity —
// build version, negotiated codec support, shard role — that a cluster's
// fan-out diagnoses mixed-version fleet skew from one probe.
type Health struct {
	Status  string   `json:"status"`
	Version string   `json:"version"`
	Codecs  []string `json:"codecs"`
	// Role is "engine" for a public single-engine server, "shardnode"
	// when the /shard/* surface is mounted, "coordinator" for a cluster
	// front end.
	Role string `json:"role"`
}

// healthNow assembles this process's Health.
func (s *Service) healthNow() Health {
	h := Health{Status: "ok", Version: BuildVersion(), Role: "engine"}
	if s.cfg.ShardRoutes {
		h.Role = "shardnode"
	}
	h.Codecs = []string{string(CodecJSON)}
	if !s.cfg.DisableBinary {
		h.Codecs = append([]string{string(CodecBinary)}, h.Codecs...)
	}
	return h
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.healthNow())
}

// BuildVersion reports this binary's module version (or VCS revision)
// from the embedded build info — "unknown" outside module builds.
func BuildVersion() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	version := bi.Main.Version
	var rev, dirty string
	for _, kv := range bi.Settings {
		switch kv.Key {
		case "vcs.revision":
			rev = kv.Value
		case "vcs.modified":
			if kv.Value == "true" {
				dirty = "-dirty"
			}
		}
	}
	if rev != "" {
		short := rev
		if len(short) > 12 {
			short = short[:12]
		}
		if version == "" || version == "(devel)" {
			return short + dirty
		}
		// Pseudo-versions already embed the revision (and "+dirty" when
		// modified); don't repeat either marker.
		if strings.Contains(version, short) {
			if strings.Contains(version, "dirty") {
				return version
			}
			return version + dirty
		}
		return version + "+" + short + dirty
	}
	if version == "" {
		return "unknown"
	}
	return version
}
