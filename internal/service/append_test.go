package service

import (
	"context"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/storage"
)

func TestServiceInsertAndAppendRoute(t *testing.T) {
	svc := newTestService(t, Config{}, 100)
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	c := NewClient(srv.URL, nil)

	// INSERT through the buffered surface.
	res, err := svc.Query(context.Background(), `INSERT INTO emptab VALUES (11, 20, 4000)`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.Len() != 1 || res.Table.Rows[0][1].Int64() != 1 {
		t.Fatalf("INSERT summary = %v", res.Table.Rows)
	}

	// JSON /append through the client.
	resp, err := c.Append(context.Background(), "emptab", []storage.Tuple{
		{storage.Int(12), storage.Int(20), storage.Int(5000)},
		{storage.Int(13), storage.Int(30), storage.Null},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.RowsAppended != 2 {
		t.Fatalf("rows_appended = %d", resp.RowsAppended)
	}
	if resp.Watermark <= 1 {
		t.Fatalf("watermark = %d", resp.Watermark)
	}
	if resp.StartRid != 11 {
		t.Fatalf("start_rid = %d, want 11", resp.StartRid)
	}

	// All appended rows are queryable.
	qres, err := svc.Query(context.Background(), `SELECT empnum FROM emptab WHERE empnum >= 11 ORDER BY empnum`)
	if err != nil {
		t.Fatal(err)
	}
	if qres.Table.Len() != 3 {
		t.Fatalf("appended rows visible = %d, want 3", qres.Table.Len())
	}

	stats := svc.Stats()
	if stats.Appends != 2 || stats.RowsAppended != 3 {
		t.Fatalf("append counters = %d/%d, want 2/3", stats.Appends, stats.RowsAppended)
	}

	// Error taxonomy: unknown table 404, arity mismatch 400.
	if _, err := c.Append(context.Background(), "nosuch", []storage.Tuple{{storage.Int(1)}}); err == nil {
		t.Error("append to unknown table succeeded")
	} else if re := new(RemoteError); !errors.As(err, &re) || re.Status != 404 {
		t.Errorf("unknown-table append error = %v", err)
	}
	if _, err := c.Append(context.Background(), "emptab", []storage.Tuple{{storage.Int(1)}}); err == nil {
		t.Error("arity-mismatch append succeeded")
	} else if re := new(RemoteError); !errors.As(err, &re) || re.Status != 400 {
		t.Errorf("arity-mismatch append error = %v", err)
	}
}

func TestServiceSubscribeBufferedRejected(t *testing.T) {
	svc := newTestService(t, Config{}, 100)
	if _, err := svc.Query(context.Background(), `SUBSCRIBE SELECT empnum FROM emptab`); err == nil {
		t.Fatal("buffered SUBSCRIBE succeeded")
	}
}

// TestServiceSubscribeHTTP drives the full live loop over real sockets:
// subscribe, drain the initial result, append through /append, receive the
// pushed delta with an advanced watermark, close, and verify every slot
// and registry entry drains.
func TestServiceSubscribeHTTP(t *testing.T) {
	svc := newTestService(t, Config{}, 0)
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	c := NewClient(srv.URL, nil)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rows, err := c.Subscribe(ctx, `SELECT empnum, rank() OVER (PARTITION BY dept ORDER BY salary DESC NULLS LAST) AS r FROM emptab`)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()

	cols := rows.Columns()
	if len(cols) != 5 || cols[2] != "_rid" || cols[3] != "_op" || cols[4] != "_watermark" {
		t.Fatalf("columns = %v", cols)
	}
	for i := 0; i < 10; i++ {
		if !rows.Next() {
			t.Fatalf("initial stream ended early at %d: %v", i, rows.Err())
		}
		if op := rows.Row()[3].Str(); op != "init" {
			t.Fatalf("initial row op = %q", op)
		}
	}

	// The subscription shows in the registry with the live phase.
	deadlineInfo := time.Now().Add(2 * time.Second)
	for {
		infos := svc.Registry().Snapshot()
		if len(infos) == 1 && strings.HasPrefix(infos[0].SQL, "SUBSCRIBE") {
			break
		}
		if time.Now().After(deadlineInfo) {
			t.Fatalf("subscription not in registry: %+v", infos)
		}
		time.Sleep(time.Millisecond)
	}

	// Routed append wakes the cursor.
	resp, err := c.Append(ctx, "emptab", []storage.Tuple{{storage.Int(20), storage.Int(10), storage.Int(1000000)}})
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatalf("no delta after append: %v", rows.Err())
	}
	row := rows.Row()
	if op := row[3].Str(); op != "append" && op != "upsert" {
		t.Fatalf("delta op = %q", op)
	}
	if wm := uint64(row[4].Int64()); wm != resp.Watermark {
		t.Fatalf("delta watermark = %d, append watermark = %d", wm, resp.Watermark)
	}

	// Close ends the stream; the server drains its slot, registry entry and
	// hub subscription.
	rows.Close()
	waitDrained(t, svc)
}

// TestServiceSubscribeKill kills a live subscription through the registry
// (what DELETE /debug/queries/{id} calls) and asserts the client stream
// ends and the server drains.
func TestServiceSubscribeKill(t *testing.T) {
	svc := newTestService(t, Config{}, 0)
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	c := NewClient(srv.URL, nil)

	rows, err := c.Subscribe(context.Background(), `SELECT empnum, rank() OVER (ORDER BY salary DESC NULLS LAST) AS r FROM emptab`)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	for i := 0; i < 10; i++ {
		if !rows.Next() {
			t.Fatalf("initial stream ended early: %v", rows.Err())
		}
	}

	// Find and kill the one in-flight query.
	var id string
	deadline := time.Now().Add(2 * time.Second)
	for id == "" {
		if infos := svc.Registry().Snapshot(); len(infos) == 1 {
			id = infos[0].ID
		} else if time.Now().After(deadline) {
			t.Fatalf("subscription not registered: %+v", infos)
		} else {
			time.Sleep(time.Millisecond)
		}
	}
	if !svc.Registry().Kill(id) {
		t.Fatalf("kill %s failed", id)
	}

	// The client's blocked read ends (error or EOF — the stream was cut or
	// the trailer carried the cancellation).
	done := make(chan struct{})
	go func() {
		for rows.Next() {
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("client stream did not end after kill")
	}
	waitDrained(t, svc)
}

// waitDrained asserts every serving resource returns to idle: registry
// empty, no in-flight execution, and no live hub subscription.
func waitDrained(t *testing.T, svc *Service) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		stats := svc.Stats()
		subs := svc.Engine().Subscriptions("emptab")
		if stats.LiveQueries == 0 && stats.InFlight == 0 && subs == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("not drained: live=%d inflight=%d subs=%d", stats.LiveQueries, stats.InFlight, subs)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
