package service

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/exec"
)

// latencyHist is a fixed exponential-bucket histogram: bucket i covers
// latencies up to base·growth^i. Quantiles are read as the upper bound of
// the bucket where the cumulative count crosses the rank — resolution is
// one growth factor (±25%), which is plenty for p50/p95/p99 serving
// dashboards and keeps observation lock-free-cheap and allocation-free.
type latencyHist struct {
	counts [histBuckets]uint64
	total  uint64
	// sum accumulates observed latency for the Prometheus histogram's
	// _sum series; quantile reads ignore it.
	sum time.Duration
}

const (
	histBuckets = 96
	histGrowth  = 1.25
)

var histBase = float64(time.Microsecond)

func histIndex(d time.Duration) int {
	if d <= time.Microsecond {
		return 0
	}
	i := int(math.Log(float64(d)/histBase) / math.Log(histGrowth))
	if i < 0 {
		i = 0
	}
	if i >= histBuckets {
		i = histBuckets - 1
	}
	return i
}

func histUpper(i int) time.Duration {
	return time.Duration(histBase * math.Pow(histGrowth, float64(i+1)))
}

func (h *latencyHist) observe(d time.Duration) {
	h.counts[histIndex(d)]++
	h.total++
	h.sum += d
}

// quantile returns the latency below which fraction q of observations fall.
func (h *latencyHist) quantile(q float64) time.Duration {
	if h.total == 0 {
		return 0
	}
	rank := uint64(q * float64(h.total))
	if rank >= h.total {
		rank = h.total - 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum > rank {
			return histUpper(i)
		}
	}
	return histUpper(histBuckets - 1)
}

// Metrics aggregates service-level observability: query and failure
// counters, the in-flight gauge with its high-water mark, the latency
// histogram, and the per-query exec.Metrics sums (block I/O, comparisons).
type Metrics struct {
	start time.Time

	queries  atomic.Uint64 // completed successfully
	failures atomic.Uint64 // completed with any error
	rejected atomic.Uint64 // of failures: ErrOverloaded rejections
	aborted  atomic.Uint64 // streams closed before their last row (disconnects, truncation)

	shuffleRounds atomic.Uint64 // executed shuffle stages (RunShuffleStep)

	appends      atomic.Uint64 // append batches applied (Service.Append)
	rowsAppended atomic.Uint64 // rows ingested across those batches

	inFlight    atomic.Int64 // executions currently holding a slot
	maxInFlight atomic.Int64 // high-water mark of inFlight

	mu            sync.Mutex
	hist          latencyHist
	blocksRead    int64
	blocksWritten int64
	comparisons   int64
	rowsOut       int64
}

func newMetrics() *Metrics {
	return &Metrics{start: time.Now()}
}

// beginExec marks an execution entering its slot, maintaining the
// high-water mark.
func (m *Metrics) beginExec() {
	n := m.inFlight.Add(1)
	for {
		max := m.maxInFlight.Load()
		if n <= max || m.maxInFlight.CompareAndSwap(max, n) {
			return
		}
	}
}

func (m *Metrics) endExec() { m.inFlight.Add(-1) }

// observe records one finished query: its end-to-end latency, outcome,
// rows served and (on success) the executor's metrics. Streaming queries
// observe at stream end — rowsOut then counts the rows actually yielded,
// not the rows the statement could have produced.
func (m *Metrics) observe(execM *exec.Metrics, rowsOut int64, d time.Duration, err error) {
	if err != nil {
		m.failures.Add(1)
		return
	}
	m.queries.Add(1)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.hist.observe(d)
	if execM != nil {
		m.blocksRead += execM.BlocksRead
		m.blocksWritten += execM.BlocksWritten
		m.comparisons += execM.Comparisons
	}
	m.rowsOut += rowsOut
}

// Snapshot is a point-in-time view of the service counters, shaped for the
// /stats JSON endpoint. Latency quantiles are histogram upper bounds.
type Snapshot struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Queries       uint64  `json:"queries"`
	Failures      uint64  `json:"failures"`
	Rejected      uint64  `json:"rejected"`
	// Aborted counts streamed queries whose cursor was closed before the
	// last row — client disconnects and deliberate truncations. They are
	// neither successes nor failures and contribute no latency sample.
	Aborted uint64  `json:"aborted"`
	QPS     float64 `json:"qps"`
	// ShuffleRounds counts the shuffle stages this node executed for a
	// cluster coordinator's per-segment distributed chains (each stage is a
	// slot-holding chain-segment execution, not a query).
	ShuffleRounds uint64 `json:"shuffle_rounds"`
	// Appends counts applied append batches (INSERT statements and /append
	// bodies); RowsAppended is the rows they ingested.
	Appends      uint64 `json:"appends"`
	RowsAppended uint64 `json:"rows_appended"`

	InFlight    int64 `json:"in_flight"`
	MaxInFlight int64 `json:"max_in_flight"`
	Slots       int   `json:"slots"`
	QueueDepth  int64 `json:"queue_depth"`
	// LiveQueries is the in-flight query registry's size (GET
	// /debug/queries lists the entries).
	LiveQueries int `json:"live_queries"`

	P50Millis float64 `json:"p50_ms"`
	P95Millis float64 `json:"p95_ms"`
	P99Millis float64 `json:"p99_ms"`

	Cache CacheStats `json:"cache"`
	// Subplans is the shared-subplan cache snapshot (zero when sharing is
	// disabled).
	Subplans SubplanStats `json:"subplans"`

	BlocksRead    int64 `json:"blocks_read"`
	BlocksWritten int64 `json:"blocks_written"`
	Comparisons   int64 `json:"comparisons"`
	RowsOut       int64 `json:"rows_out"`
}

func (m *Metrics) snapshot() Snapshot {
	up := time.Since(m.start).Seconds()
	s := Snapshot{
		UptimeSeconds: up,
		Queries:       m.queries.Load(),
		Failures:      m.failures.Load(),
		Rejected:      m.rejected.Load(),
		Aborted:       m.aborted.Load(),
		ShuffleRounds: m.shuffleRounds.Load(),
		Appends:       m.appends.Load(),
		RowsAppended:  m.rowsAppended.Load(),
		InFlight:      m.inFlight.Load(),
		MaxInFlight:   m.maxInFlight.Load(),
	}
	if up > 0 {
		s.QPS = float64(s.Queries) / up
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	s.P50Millis = float64(m.hist.quantile(0.50)) / float64(time.Millisecond)
	s.P95Millis = float64(m.hist.quantile(0.95)) / float64(time.Millisecond)
	s.P99Millis = float64(m.hist.quantile(0.99)) / float64(time.Millisecond)
	s.BlocksRead = m.blocksRead
	s.BlocksWritten = m.blocksWritten
	s.Comparisons = m.comparisons
	s.RowsOut = m.rowsOut
	return s
}

// histSnapshot copies the latency histogram's raw buckets for the
// Prometheus exposition (cumulative buckets, _sum and _count).
func (m *Metrics) histSnapshot() latencyHist {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.hist
}
