package service

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro"
	"repro/internal/storage"
)

// TestCodecNegotiationFallback pins the negotiation rules at the raw HTTP
// level: binary only when the client names it (Accept or ?codec=binary),
// NDJSON for everything else — including Accept headers this server has
// never heard of — and a DisableBinary server answers NDJSON even to a
// binary-preferring client, which is how a mixed-version fleet degrades.
func TestCodecNegotiationFallback(t *testing.T) {
	svc := newTestService(t, Config{Slots: 2}, 200)
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	oldSvc := newTestService(t, Config{Slots: 2, DisableBinary: true}, 200)
	oldSrv := httptest.NewServer(oldSvc.Handler())
	defer oldSrv.Close()

	cases := []struct {
		name   string
		base   string
		accept string
		query  string
		want   string
	}{
		{"binary accept", srv.URL, ContentTypeBinary + ", " + ContentTypeNDJSON, "", ContentTypeBinary},
		{"ndjson accept", srv.URL, ContentTypeNDJSON, "", ContentTypeNDJSON},
		{"unknown accept falls back", srv.URL, "application/vnd.fancy+columns", "?stream=1", ContentTypeNDJSON},
		{"no accept, stream param", srv.URL, "", "?stream=1", ContentTypeNDJSON},
		{"codec query param", srv.URL, "", "?stream=1&codec=binary", ContentTypeBinary},
		{"disabled server ignores binary accept", oldSrv.URL, ContentTypeBinary + ", " + ContentTypeNDJSON, "", ContentTypeNDJSON},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			body := strings.NewReader(`{"sql":"SELECT empnum, rank() OVER (ORDER BY salary DESC) AS r FROM emptab"}`)
			req, err := http.NewRequest(http.MethodPost, tc.base+"/query"+tc.query, body)
			if err != nil {
				t.Fatal(err)
			}
			req.Header.Set("Content-Type", "application/json")
			if tc.accept != "" {
				req.Header.Set("Accept", tc.accept)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %s", resp.Status)
			}
			if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, tc.want) {
				t.Fatalf("Content-Type %q, want %q", ct, tc.want)
			}
			// Whatever the codec, the stream must decode: count the rows.
			sr := respReader(t, resp)
			n := 0
			for {
				if _, err := sr.next(); err == io.EOF {
					break
				} else if err != nil {
					t.Fatal(err)
				}
				n++
			}
			if n != 10 { // emptab is the paper's 10-row Example 1 relation
				t.Fatalf("decoded %d rows, want 10", n)
			}
		})
	}
}

// respReader wraps an already-issued streamed response in the matching
// decoder, the way openStream sniffs the response content type.
type sniffedStream struct {
	sr *StreamReader
}

func respReader(t *testing.T, resp *http.Response) *sniffedStream {
	t.Helper()
	sr, err := wrapResponse("test", resp)
	if err != nil {
		t.Fatal(err)
	}
	return &sniffedStream{sr: sr}
}

func (s *sniffedStream) next() (storage.Tuple, error) { return s.sr.Next() }

// failingSource yields a few rows and then dies: the deterministic way to
// observe a mid-stream error, which on the wire must arrive as an error
// trailer — the 200 header is long gone when the failure happens.
type failingSource struct {
	rows int
	n    int
	err  error
}

func (f *failingSource) Columns() []storage.Column {
	return []storage.Column{{Name: "n", Type: storage.TypeInt}}
}

func (f *failingSource) Next() (storage.Tuple, error) {
	if f.n >= f.rows {
		return nil, f.err
	}
	f.n++
	return storage.Tuple{storage.Int(int64(f.n))}, nil
}

func (f *failingSource) Close() error                    { return nil }
func (f *failingSource) Metrics() *windowdb.QueryMetrics { return nil }

// TestErrorTrailerSurvivesFraming: a server-side failure after rows have
// streamed surfaces through BOTH codecs as a trailer-borne RemoteError
// with the taxonomy kind — not a silent prefix, not a cut stream.
func TestErrorTrailerSurvivesFraming(t *testing.T) {
	for _, codec := range []WireCodec{CodecJSON, CodecBinary} {
		t.Run(string(codec), func(t *testing.T) {
			const good = 700 // past several flush strides and batches
			boom := fmt.Errorf("spill device gone")
			mux := http.NewServeMux()
			mux.HandleFunc("/query", func(w http.ResponseWriter, r *http.Request) {
				rows := windowdb.NewRows(&failingSource{rows: good, err: boom})
				WriteStream(r.Context(), w, rows, 0, codec)
			})
			srv := httptest.NewServer(mux)
			defer srv.Close()

			sr, err := OpenStream(context.Background(), srv.Client(), srv.URL+"/query", queryRequest{SQL: "x"}, codec)
			if err != nil {
				t.Fatal(err)
			}
			defer sr.Close()
			n := 0
			for {
				tup, err := sr.Next()
				if err != nil {
					var re *RemoteError
					if !errors.As(err, &re) {
						t.Fatalf("after %d rows: %v, want RemoteError", n, err)
					}
					if re.Kind != "internal" || !strings.Contains(re.Msg, "spill device gone") {
						t.Fatalf("remote error %+v", re)
					}
					break
				}
				if want := storage.Int(int64(n + 1)); tup[0] != want {
					t.Fatalf("row %d = %v", n, tup)
				}
				n++
			}
			if n != good {
				t.Fatalf("delivered %d rows before the error, want %d", n, good)
			}
			if sr.Trailer() != nil {
				t.Fatal("error stream must not expose a success trailer")
			}
		})
	}
}
