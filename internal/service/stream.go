package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro"
	"repro/internal/storage"
	"repro/internal/stream"
	"repro/internal/trace"
)

// The streaming wire format: one query result as newline-delimited JSON
// (Content-Type application/x-ndjson), so a client renders — and a
// coordinator forwards — rows as they arrive instead of buffering the
// whole body. Three frame shapes, one per line:
//
//	{"columns":[{"name":"r","type":"INT"}, ...]}   header, first line
//	[{"i":"42"}, {"s":"x"}, null, ...]             one row, WireValue-tagged
//	{"done":true, "row_count":N, ...}              trailer, last line
//
// Rows use the lossless kind-tagged WireValue encoding (wire.go), so a
// streamed result decodes to exactly the values a local cursor yields —
// int64s past 2^53 included. Errors discovered after the 200 header has
// been sent arrive in the trailer as {"done":true,"error":...,"kind":...}
// with the same taxonomy kinds the buffered surface maps to HTTP statuses;
// a missing trailer means the stream was cut and the client reports a
// truncation error rather than silently serving a prefix.
//
// Both /query (engine and coordinator front ends) and /shard/query (node
// scatter surface) speak this format when the request asks for it
// (NDJSONRequested); service.Client and the cluster's HTTP shard transport
// are the two consumers.

// ContentTypeNDJSON is the streamed response content type.
const ContentTypeNDJSON = "application/x-ndjson"

// ContentTypeBinary is the binary columnar streamed response content type
// (internal/stream's length-prefixed frame format: a JSON header frame,
// columnar row batches, a JSON trailer frame). Negotiated per request via
// Accept — a client that doesn't name it keeps getting NDJSON.
const ContentTypeBinary = "application/x-windowdb-frame"

// WireCodec names a streamed row encoding.
type WireCodec string

// The two wire codecs every streamed route speaks.
const (
	CodecJSON   WireCodec = "json"
	CodecBinary WireCodec = "binary"
)

// ParseCodec maps a codec spelling ("json", "binary", "") to a WireCodec;
// the empty string is the binary default.
func ParseCodec(s string) (WireCodec, error) {
	switch WireCodec(strings.ToLower(s)) {
	case CodecJSON:
		return CodecJSON, nil
	case CodecBinary, "":
		return CodecBinary, nil
	}
	return "", fmt.Errorf("service: unknown wire codec %q (want json or binary)", s)
}

// streamHeader is the first NDJSON line: the output schema.
type streamHeader struct {
	Columns []WireColumn `json:"columns"`
}

// StreamTrailer is the last NDJSON line: the query's outcome and serving
// observations (the streamed analogue of the buffered response's metadata
// fields, plus the error slot for mid-stream failures).
type StreamTrailer struct {
	Done  bool   `json:"done"`
	Error string `json:"error,omitempty"`
	Kind  string `json:"kind,omitempty"`

	RowCount  int64 `json:"row_count"`
	Truncated bool  `json:"truncated,omitempty"`

	// Watermark is the table data generation a SUBSCRIBE stream's output
	// was current as of when the stream ended; 0 for one-shot queries.
	Watermark uint64 `json:"watermark,omitempty"`

	ElapsedMillis float64 `json:"elapsed_ms"`
	QueuedMillis  float64 `json:"queued_ms"`
	CacheHit      bool    `json:"cache_hit"`
	// SharedScan is the shared-subplan cache disposition ("miss", "hit" or
	// "attach"); empty for executions that bypassed the cache.
	SharedScan string `json:"shared_scan,omitempty"`

	Chain      string `json:"chain,omitempty"`
	FinalSort  string `json:"final_sort,omitempty"`
	Route      string `json:"route,omitempty"`
	ShardsUsed int    `json:"shards_used,omitempty"`

	BlocksRead    int64 `json:"blocks_read"`
	BlocksWritten int64 `json:"blocks_written"`
	Comparisons   int64 `json:"comparisons"`

	// TraceID and Trace carry the query's distributed trace back to the
	// caller: the ID that names it in /debug/trace/{id}, and the span
	// subtree this node recorded. Trailer payloads are JSON in both wire
	// codecs, so the subtree travels codec-independently.
	TraceID string      `json:"trace_id,omitempty"`
	Trace   *trace.Span `json:"trace,omitempty"`
}

// TrailerFor renders a cursor's post-drain metrics as the stream trailer.
func TrailerFor(m *windowdb.QueryMetrics) StreamTrailer {
	t := StreamTrailer{Done: true}
	if m == nil {
		return t
	}
	t.RowCount = m.Rows
	t.Watermark = m.Watermark
	t.ElapsedMillis = float64(m.Elapsed) / float64(time.Millisecond)
	t.QueuedMillis = float64(m.Queued) / float64(time.Millisecond)
	t.CacheHit = m.CacheHit
	t.SharedScan = m.SharedScan
	t.Chain = m.Chain
	t.FinalSort = m.FinalSort
	t.Route = m.Route
	t.ShardsUsed = m.ShardsUsed
	t.BlocksRead = m.BlocksRead
	t.BlocksWritten = m.BlocksWritten
	t.Comparisons = m.Comparisons
	t.TraceID = m.TraceID
	t.Trace = m.Trace
	return t
}

// NDJSONRequested reports whether an HTTP request asked for the streamed
// response shape: an Accept header naming application/x-ndjson or
// application/x-windowdb-frame, or a stream=1 query parameter (the
// GET-friendly spelling).
func NDJSONRequested(r *http.Request) bool {
	accept := r.Header.Get("Accept")
	if strings.Contains(accept, ContentTypeNDJSON) || strings.Contains(accept, ContentTypeBinary) {
		return true
	}
	v := r.URL.Query().Get("stream")
	return v == "1" || strings.EqualFold(v, "true")
}

// BinaryRequested reports whether the request asked for the binary
// columnar stream: an Accept header naming application/x-windowdb-frame or
// a codec=binary query parameter.
func BinaryRequested(r *http.Request) bool {
	if strings.Contains(r.Header.Get("Accept"), ContentTypeBinary) {
		return true
	}
	return strings.EqualFold(r.URL.Query().Get("codec"), string(CodecBinary))
}

// NegotiateCodec picks the response codec for a stream request: binary
// only when the client named it, NDJSON for everything else — an unknown
// or absent Accept always degrades to NDJSON, so old clients keep working
// against new servers and a new client against an old server simply never
// sees the binary content type it asked for.
func NegotiateCodec(r *http.Request) WireCodec {
	if BinaryRequested(r) {
		return CodecBinary
	}
	return CodecJSON
}

// streamCodec is NegotiateCodec under the service's DisableBinary switch.
func (s *Service) streamCodec(r *http.Request) WireCodec {
	if s.cfg.DisableBinary {
		return CodecJSON
	}
	return NegotiateCodec(r)
}

// streamFlushStride is how many rows go out between explicit flushes: low
// enough that a slow consumer sees steady progress, high enough that the
// syscall cost disappears into the encoding work.
const streamFlushStride = 64

// streamBatchRows is how many rows a binary stream packs per columnar
// frame (and flushes together). Larger than the NDJSON flush stride: one
// frame amortizes the column-vector conversion, and 256 rows of packed
// values still sit well under a socket buffer.
const streamBatchRows = 256

// encodeWireRow writes one tuple as a WireValue-tagged NDJSON array line —
// the single definition of the row frame every stream writer (/query,
// /shard/table, the shuffle data plane) emits.
func encodeWireRow(enc *json.Encoder, row storage.Tuple) error {
	wr := make([]WireValue, len(row))
	for i, v := range row {
		wr[i] = WireValue{V: v}
	}
	return enc.Encode(wr)
}

// readNDJSONLine returns the next non-empty line without its terminator:
// the frame scanner shared by every stream reader.
func readNDJSONLine(br *bufio.Reader) ([]byte, error) {
	for {
		line, err := br.ReadBytes('\n')
		trimmed := bytes.TrimSpace(line)
		if len(trimmed) > 0 {
			return trimmed, nil
		}
		if err != nil {
			return nil, err
		}
	}
}

// decodeWireRow decodes one NDJSON row line into a tuple, validating the
// arity against the stream's schema — the single definition of row-frame
// decoding, shared by StreamReader and the shuffle ingest handler.
func decodeWireRow(line []byte, arity int) (storage.Tuple, error) {
	var row []WireValue
	if err := json.Unmarshal(line, &row); err != nil {
		return nil, fmt.Errorf("bad stream row: %w", err)
	}
	if len(row) != arity {
		return nil, fmt.Errorf("stream row arity %d != schema arity %d", len(row), arity)
	}
	t := make(storage.Tuple, len(row))
	for i, v := range row {
		t[i] = v.V
	}
	return t, nil
}

// WriteStream serves rows as a stream in the negotiated codec and closes
// the cursor. It owns the response from the first byte: callers must not
// have written a status. maxRows > 0 truncates the stream after that many
// rows (the trailer marks it). ctx — the request context — aborts the
// stream between flushes when the client disconnects, which is what
// releases the cursor's admission slot mid-stream.
func WriteStream(ctx context.Context, w http.ResponseWriter, rows *windowdb.Rows, maxRows int, codec WireCodec) {
	writeStream(ctx, w, rows, maxRows, codec, streamFlushStride, streamBatchRows)
}

// WriteLiveStream is WriteStream for subscription cursors: every row is
// flushed as it is written (NDJSON) or framed singly (binary), because a
// live cursor blocks indefinitely between delta batches and a row parked
// behind the flush stride would never reach the client.
func WriteLiveStream(ctx context.Context, w http.ResponseWriter, rows *windowdb.Rows, maxRows int, codec WireCodec) {
	writeStream(ctx, w, rows, maxRows, codec, 1, 1)
}

func writeStream(ctx context.Context, w http.ResponseWriter, rows *windowdb.Rows, maxRows int, codec WireCodec, stride, batchRows int) {
	if live := trace.LiveFromContext(ctx); live != nil {
		// Account response-body bytes to the owning /debug/queries entry.
		w = &liveCountingWriter{ResponseWriter: w, live: live}
	}
	if codec == CodecBinary {
		writeStreamBinary(ctx, w, rows, maxRows, batchRows)
		return
	}
	defer rows.Close()
	w.Header().Set("Content-Type", ContentTypeNDJSON)
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	if err := enc.Encode(streamHeader{Columns: WireColumns(rows.ColumnTypes())}); err != nil {
		return
	}
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	// Ship the header before the first row: a live cursor with an empty
	// initial result blocks indefinitely on its first row, and a client
	// opening the stream waits on the response header — without this flush
	// the two deadlock against each other.
	flush()

	var n int64
	truncated := false
	for rows.Next() {
		if err := encodeWireRow(enc, rows.Row()); err != nil {
			return // client gone; the deferred Close releases the slot
		}
		n++
		if n%int64(stride) == 0 {
			flush()
			if ctx.Err() != nil {
				return
			}
		}
		if maxRows > 0 && n >= int64(maxRows) {
			// Probe one more row before declaring truncation: an
			// exact-boundary result was fully delivered (and the probe's
			// io.EOF lets the source classify the query as completed, not
			// aborted).
			truncated = rows.Next()
			break
		}
	}

	// Close before reading Metrics: post-drain metadata is finalized when
	// the stream ends, and a truncated drain ends it via Close.
	_ = rows.Close()
	var trailer StreamTrailer
	if err := rows.Err(); err != nil {
		_, kind := StatusFor(err)
		trailer = StreamTrailer{Done: true, Error: err.Error(), Kind: kind, RowCount: n}
		// A failed stream still ships whatever spans were recorded — a
		// node dying mid-shuffle is exactly when the trace matters.
		if m := rows.Metrics(); m != nil {
			trailer.TraceID, trailer.Trace = m.TraceID, m.Trace
		}
	} else {
		trailer = TrailerFor(rows.Metrics())
		trailer.RowCount = n
		trailer.Truncated = truncated
	}
	_ = enc.Encode(trailer)
	flush()
}

// writeStreamBinary is WriteStream's binary half: the same header, rows,
// trailer contract (error trailers and truncation probing included), with
// rows leaving as columnar frames of streamBatchRows tuples. Buffering the
// cursor's tuples is safe — Rows.Row() tuples are caller-owned and stay
// valid across Next.
// liveCountingWriter accounts every response-body byte to the owning
// query's live counters — the wire_bytes column of /debug/queries. Its
// Flush keeps the wrapped writer's streaming behavior.
type liveCountingWriter struct {
	http.ResponseWriter
	live *trace.Live
}

func (cw *liveCountingWriter) Write(p []byte) (int, error) {
	n, err := cw.ResponseWriter.Write(p)
	cw.live.AddWireBytes(int64(n))
	return n, err
}

func (cw *liveCountingWriter) Flush() {
	if f, ok := cw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func writeStreamBinary(ctx context.Context, w http.ResponseWriter, rows *windowdb.Rows, maxRows, batchRows int) {
	defer rows.Close()
	w.Header().Set("Content-Type", ContentTypeBinary)
	w.WriteHeader(http.StatusOK)
	fw := stream.NewFrameWriter(w)
	hdr, err := json.Marshal(streamHeader{Columns: WireColumns(rows.ColumnTypes())})
	if err != nil || fw.WriteHeader(hdr) != nil {
		return
	}
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	// Same contract as the NDJSON writer: the header frame leaves before
	// the first row, or a subscription whose initial result is empty (an
	// empty shard partition, say) wedges the opening client forever.
	flush()
	arity := len(rows.ColumnTypes())
	batch := make([]storage.Tuple, 0, batchRows)
	emit := func() bool {
		if len(batch) == 0 {
			return true
		}
		if fw.WriteTuples(batch, arity) != nil {
			return false // client gone; the deferred Close releases the slot
		}
		batch = batch[:0]
		flush()
		return ctx.Err() == nil
	}

	var n int64
	truncated := false
	for rows.Next() {
		batch = append(batch, rows.Row())
		n++
		if len(batch) >= batchRows {
			if !emit() {
				return
			}
		}
		if maxRows > 0 && n >= int64(maxRows) {
			truncated = rows.Next()
			break
		}
	}
	if !emit() {
		return
	}

	_ = rows.Close()
	var trailer StreamTrailer
	if err := rows.Err(); err != nil {
		_, kind := StatusFor(err)
		trailer = StreamTrailer{Done: true, Error: err.Error(), Kind: kind, RowCount: n}
		if m := rows.Metrics(); m != nil {
			trailer.TraceID, trailer.Trace = m.TraceID, m.Trace
		}
	} else {
		trailer = TrailerFor(rows.Metrics())
		trailer.RowCount = n
		trailer.Truncated = truncated
	}
	tb, err := json.Marshal(trailer)
	if err != nil {
		return
	}
	_ = fw.WriteTrailer(tb)
	flush()
}

// WriteTableStream serves a materialized table as a stream with
// WriteStream's framing (header, rows, trailer) in the negotiated codec:
// the /shard/table response shape, so the gather data plane ships raw rows
// without either side materializing a whole HTTP body. ctx aborts the
// stream between flushes when the client disconnects.
func WriteTableStream(ctx context.Context, w http.ResponseWriter, t *storage.Table, codec WireCodec) {
	if codec == CodecBinary {
		writeTableStreamBinary(ctx, w, t)
		return
	}
	w.Header().Set("Content-Type", ContentTypeNDJSON)
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	if err := enc.Encode(streamHeader{Columns: WireColumns(t.Schema.Columns)}); err != nil {
		return
	}
	flusher, _ := w.(http.Flusher)
	var n int64
	for _, row := range t.Rows {
		if err := encodeWireRow(enc, row); err != nil {
			return
		}
		n++
		if n%streamFlushStride == 0 {
			if flusher != nil {
				flusher.Flush()
			}
			if ctx.Err() != nil {
				return
			}
		}
	}
	_ = enc.Encode(StreamTrailer{Done: true, RowCount: n})
	if flusher != nil {
		flusher.Flush()
	}
}

// writeTableStreamBinary is WriteTableStream's binary half: the table's
// rows leave as columnar frames, chunked by streamBatchRows.
func writeTableStreamBinary(ctx context.Context, w http.ResponseWriter, t *storage.Table) {
	w.Header().Set("Content-Type", ContentTypeBinary)
	w.WriteHeader(http.StatusOK)
	fw := stream.NewFrameWriter(w)
	hdr, err := json.Marshal(streamHeader{Columns: WireColumns(t.Schema.Columns)})
	if err != nil || fw.WriteHeader(hdr) != nil {
		return
	}
	flusher, _ := w.(http.Flusher)
	arity := t.Schema.Len()
	for off := 0; off < len(t.Rows); off += streamBatchRows {
		end := off + streamBatchRows
		if end > len(t.Rows) {
			end = len(t.Rows)
		}
		if fw.WriteTuples(t.Rows[off:end], arity) != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
		if ctx.Err() != nil {
			return
		}
	}
	tb, err := json.Marshal(StreamTrailer{Done: true, RowCount: int64(len(t.Rows))})
	if err != nil {
		return
	}
	_ = fw.WriteTrailer(tb)
	if flusher != nil {
		flusher.Flush()
	}
}

// StreamReader consumes one result stream, NDJSON or binary: the client
// half of WriteStream. The codec follows the response Content-Type, not
// the request — a JSON-only server answering a binary-preferring Accept
// with NDJSON reads fine, which is what lets mixed-version fleets degrade
// per transport. Next yields decoded tuples and io.EOF at the trailer;
// Trailer exposes the trailer after EOF. A stream that ends without a
// trailer (a cut connection) surfaces an error instead of a silent prefix.
type StreamReader struct {
	node string
	body io.ReadCloser
	br   *bufio.Reader       // NDJSON streams
	fr   *stream.FrameReader // binary streams (exactly one of br/fr is set)
	pend []storage.Tuple     // decoded rows of the current binary batch
	pi   int

	cols    []storage.Column
	trailer *StreamTrailer
	err     error
}

// OpenStream POSTs body as JSON to url with the stream accept header and
// returns a reader over the response stream. The optional codec caps what
// the request advertises: by default it accepts the binary frame stream
// with NDJSON fallback; CodecJSON restricts it to NDJSON. Non-2xx
// responses decode into *RemoteError carrying the service error taxonomy.
func OpenStream(ctx context.Context, hc *http.Client, url string, reqBody any, codec ...WireCodec) (*StreamReader, error) {
	buf, err := json.Marshal(reqBody)
	if err != nil {
		return nil, fmt.Errorf("service: encode request: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(buf))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	return openStream(hc, req, url, pickCodec(codec))
}

// OpenStreamGet is OpenStream for body-less GET routes (/shard/table).
func OpenStreamGet(ctx context.Context, hc *http.Client, url string, codec ...WireCodec) (*StreamReader, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	return openStream(hc, req, url, pickCodec(codec))
}

// pickCodec resolves the optional codec argument; absent means binary-
// preferred (the reader follows whatever content type the server picks).
func pickCodec(codec []WireCodec) WireCodec {
	if len(codec) > 0 && codec[0] == CodecJSON {
		return CodecJSON
	}
	return CodecBinary
}

// openStream issues req and wraps the streamed response in a StreamReader,
// selecting the row decoder from the response content type.
func openStream(hc *http.Client, req *http.Request, url string, codec WireCodec) (*StreamReader, error) {
	if hc == nil {
		hc = http.DefaultClient
	}
	// Propagate the caller's trace: any stream opened under a traced
	// context — a client /query, a coordinator's scatter or gather fan-out
	// — carries the ID so the server joins instead of minting.
	if id := trace.FromContext(req.Context()); id != "" {
		req.Header.Set(trace.HeaderTraceID, id)
	}
	if codec == CodecBinary {
		// Prefer binary, accept NDJSON: a server without the binary codec
		// ignores the first alternative and streams NDJSON.
		req.Header.Set("Accept", ContentTypeBinary+", "+ContentTypeNDJSON)
	} else {
		req.Header.Set("Accept", ContentTypeNDJSON)
	}
	resp, err := hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("service: %s: %w", url, err)
	}
	if resp.StatusCode/100 != 2 {
		defer resp.Body.Close()
		return nil, DecodeRemoteError(url, resp)
	}
	return wrapResponse(url, resp)
}

// wrapResponse builds a StreamReader over an already-issued 2xx streamed
// response, sniffing the codec from the response content type.
func wrapResponse(url string, resp *http.Response) (*StreamReader, error) {
	var err error
	sr := &StreamReader{node: url, body: resp.Body}
	var hdr []byte
	if strings.Contains(resp.Header.Get("Content-Type"), ContentTypeBinary) {
		sr.fr = stream.NewFrameReader(resp.Body)
		f, err := sr.fr.Next()
		if err == nil && f.Type != stream.FrameHeader {
			err = fmt.Errorf("first frame is %c, want header", f.Type)
		}
		if err != nil {
			resp.Body.Close()
			return nil, fmt.Errorf("service: %s: reading stream header: %w", url, err)
		}
		hdr = f.Payload
	} else {
		sr.br = bufio.NewReaderSize(resp.Body, 64<<10)
		hdr, err = sr.readLine()
		if err != nil {
			resp.Body.Close()
			return nil, fmt.Errorf("service: %s: reading stream header: %w", url, err)
		}
	}
	var h streamHeader
	if err := json.Unmarshal(hdr, &h); err != nil {
		resp.Body.Close()
		return nil, fmt.Errorf("service: %s: bad stream header %q: %w", url, hdr, err)
	}
	cols, err := DecodeColumns(h.Columns)
	if err != nil {
		resp.Body.Close()
		return nil, err
	}
	sr.cols = cols
	return sr, nil
}

// Columns returns the streamed schema from the header line.
func (sr *StreamReader) Columns() []storage.Column { return sr.cols }

// readLine returns the next non-empty line without its terminator.
func (sr *StreamReader) readLine() ([]byte, error) {
	return readNDJSONLine(sr.br)
}

// Next returns the next row, io.EOF after the trailer, or an error — a
// decode failure, a mid-stream server error from the trailer (unwrapping
// to the taxonomy sentinels via RemoteError), or a truncated stream.
func (sr *StreamReader) Next() (storage.Tuple, error) {
	if sr.trailer != nil {
		return nil, io.EOF
	}
	if sr.err != nil {
		return nil, sr.err
	}
	if sr.fr != nil {
		return sr.nextBinary()
	}
	line, err := sr.readLine()
	if err != nil {
		sr.err = fmt.Errorf("service: %s: stream cut before trailer: %w", sr.node, err)
		return nil, sr.err
	}
	if line[0] == '[' {
		t, err := decodeWireRow(line, len(sr.cols))
		if err != nil {
			sr.err = fmt.Errorf("service: %s: %w", sr.node, err)
			return nil, sr.err
		}
		return t, nil
	}
	var trailer StreamTrailer
	if err := json.Unmarshal(line, &trailer); err != nil {
		sr.err = fmt.Errorf("service: %s: bad stream trailer %q: %w", sr.node, line, err)
		return nil, sr.err
	}
	if trailer.Error != "" {
		sr.err = &RemoteError{Node: sr.node, Status: http.StatusOK, Kind: trailer.Kind, Msg: trailer.Error}
		return nil, sr.err
	}
	sr.trailer = &trailer
	return nil, io.EOF
}

// nextBinary is Next over the binary frame stream: rows come from the
// current batch's decoded tuples, refilled a frame at a time.
func (sr *StreamReader) nextBinary() (storage.Tuple, error) {
	for {
		if sr.pi < len(sr.pend) {
			t := sr.pend[sr.pi]
			sr.pi++
			return t, nil
		}
		f, err := sr.fr.Next()
		if err != nil {
			sr.err = fmt.Errorf("service: %s: stream cut before trailer: %w", sr.node, err)
			return nil, sr.err
		}
		switch f.Type {
		case stream.FrameBatch:
			b, err := stream.DecodeBatch(f.Payload, len(sr.cols))
			if err != nil {
				sr.err = fmt.Errorf("service: %s: %w", sr.node, err)
				return nil, sr.err
			}
			sr.pend, sr.pi = b.Tuples(), 0
		case stream.FrameTrailer:
			var trailer StreamTrailer
			if err := json.Unmarshal(f.Payload, &trailer); err != nil {
				sr.err = fmt.Errorf("service: %s: bad stream trailer %q: %w", sr.node, f.Payload, err)
				return nil, sr.err
			}
			if trailer.Error != "" {
				sr.err = &RemoteError{Node: sr.node, Status: http.StatusOK, Kind: trailer.Kind, Msg: trailer.Error}
				return nil, sr.err
			}
			sr.trailer = &trailer
			return nil, io.EOF
		default:
			sr.err = fmt.Errorf("service: %s: unexpected %c frame mid-stream", sr.node, f.Type)
			return nil, sr.err
		}
	}
}

// Trailer returns the stream trailer, nil until Next returned io.EOF.
func (sr *StreamReader) Trailer() *StreamTrailer { return sr.trailer }

// Close releases the underlying response body; closing a half-read stream
// is how a client disconnects (the server sees the write fail or the
// request context cancel, and releases its slot).
func (sr *StreamReader) Close() error { return sr.body.Close() }
