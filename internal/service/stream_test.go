package service

import (
	"context"
	"errors"
	"io"
	"net"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro"
	"repro/internal/catalog"
	"repro/internal/sql"
	"repro/internal/storage"
)

// tinyBufListener clamps the kernel buffers of every accepted connection,
// so a streamed response cannot be absorbed in-flight: the server blocks
// on the socket until the client actually reads — which makes
// client-disconnect tests deterministic instead of racing the drain of
// the whole (compact, binary) body into autotuned loopback buffers.
type tinyBufListener struct {
	net.Listener
}

func (l tinyBufListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	if tc, ok := c.(*net.TCPConn); ok {
		_ = tc.SetReadBuffer(4 << 10)
		_ = tc.SetWriteBuffer(4 << 10)
	}
	return c, nil
}

// waitInFlightZero polls the in-flight gauge back to zero: server-side
// stream teardown after a disconnect is asynchronous.
func waitInFlightZero(t *testing.T, svc *Service) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if svc.Stats().InFlight == 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("in-flight gauge stuck at %d", svc.Stats().InFlight)
}

// TestStreamSlotHeldUntilClose: the admission slot belongs to the cursor
// from QueryContext until Close — a second query on a one-slot service is
// rejected while the cursor is open and admitted after Close.
func TestStreamSlotHeldUntilClose(t *testing.T) {
	svc := newTestService(t, Config{Slots: 1, MaxQueue: -1}, 2000)
	ctx := context.Background()
	rows, err := svc.QueryContext(ctx, mixQ1)
	if err != nil {
		t.Fatal(err)
	}
	if got := svc.Stats().InFlight; got != 1 {
		t.Fatalf("in-flight = %d with an open cursor, want 1", got)
	}
	if _, err := svc.Query(ctx, mixQ1); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("second query err = %v, want ErrOverloaded while cursor holds the slot", err)
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	waitInFlightZero(t, svc)
	if _, err := svc.Query(ctx, mixQ1); err != nil {
		t.Fatalf("query after Close: %v", err)
	}
}

// TestStreamSlotReleasedOnDrain: a fully drained cursor releases its slot
// without an explicit Close.
func TestStreamSlotReleasedOnDrain(t *testing.T) {
	svc := newTestService(t, Config{Slots: 1, MaxQueue: -1}, 500)
	rows, err := svc.QueryContext(context.Background(), mixQ1)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for rows.Next() {
		n++
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if n != 500 {
		t.Fatalf("drained %d rows, want 500", n)
	}
	waitInFlightZero(t, svc)
	m := rows.Metrics()
	if m == nil || m.Rows != 500 {
		t.Fatalf("metrics after drain = %+v, want 500 rows", m)
	}
}

// TestStreamCancelMidDrain is the mid-stream cancellation contract: a
// half-drained cursor whose context is cancelled stops with
// context.Canceled and the slot and in-flight gauge return to zero.
func TestStreamCancelMidDrain(t *testing.T) {
	svc := newTestService(t, Config{Slots: 1, MaxQueue: -1}, 4000)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rows, err := svc.QueryContext(ctx, mixQ1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if !rows.Next() {
			t.Fatalf("stream ended after %d rows: %v", i, rows.Err())
		}
	}
	cancel()
	for rows.Next() {
	}
	if err := rows.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	waitInFlightZero(t, svc)
	if _, err := svc.Query(context.Background(), mixQ1); err != nil {
		t.Fatalf("slot not released after cancel: %v", err)
	}
}

// TestStreamValueIdentity: the streamed rows equal the buffered Query
// result, value for value.
func TestStreamValueIdentity(t *testing.T) {
	svc := newTestService(t, Config{Slots: 2}, 1000)
	ctx := context.Background()
	want, err := svc.Query(ctx, mixQ1)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := svc.QueryContext(ctx, mixQ1)
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	for rows.Next() {
		if i >= want.Table.Len() {
			t.Fatal("stream yields more rows than the buffered result")
		}
		got := string(storage.AppendTuple(nil, rows.Row()))
		exp := string(storage.AppendTuple(nil, want.Table.Rows[i]))
		if got != exp {
			t.Fatalf("row %d differs", i)
		}
		i++
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if i != want.Table.Len() {
		t.Fatalf("stream %d rows, buffered %d", i, want.Table.Len())
	}
	m := rows.Metrics()
	if m == nil || !m.CacheHit {
		t.Fatalf("metrics = %+v, want a plan-cache hit on the second execution", m)
	}
}

// TestClientStreamRoundTrip: the remote Client against a real handler —
// rows arrive incrementally, values are lossless, and the trailer's
// metadata lands in Metrics.
func TestClientStreamRoundTrip(t *testing.T) {
	svc := newTestService(t, Config{Slots: 2}, 1000)
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	client := NewClient(srv.URL, srv.Client())

	ctx := context.Background()
	want, err := svc.Query(ctx, mixQ1)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := client.QueryContext(ctx, mixQ1)
	if err != nil {
		t.Fatal(err)
	}
	if cols := rows.Columns(); len(cols) != 2 || cols[0] != "ws_item_sk" || cols[1] != "r" {
		t.Fatalf("columns = %v", cols)
	}
	i := 0
	for rows.Next() {
		got := string(storage.AppendTuple(nil, rows.Row()))
		exp := string(storage.AppendTuple(nil, want.Table.Rows[i]))
		if got != exp {
			t.Fatalf("row %d differs across the wire", i)
		}
		i++
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if i != want.Table.Len() {
		t.Fatalf("client %d rows, local %d", i, want.Table.Len())
	}
	m := rows.Metrics()
	if m == nil {
		t.Fatal("no metrics after drain")
	}
	if m.Chain == "" {
		t.Fatal("trailer lost the chain")
	}
	if m.Rows != int64(i) {
		t.Fatalf("metrics rows = %d, want %d", m.Rows, i)
	}
}

// TestClientErrorTaxonomy: remote errors unwrap to the local sentinels
// through the streaming surface.
func TestClientErrorTaxonomy(t *testing.T) {
	svc := newTestService(t, Config{Slots: 2}, 100)
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	client := NewClient(srv.URL, srv.Client())
	ctx := context.Background()

	cases := []struct {
		q    string
		want error
	}{
		{"SELEKT 1", sql.ErrParse},
		{"SELECT nosuch FROM emptab", sql.ErrBind},
		{"SELECT * FROM nosuch", catalog.ErrUnknownTable},
	}
	for _, c := range cases {
		_, err := client.QueryContext(ctx, c.q)
		if !errors.Is(err, c.want) {
			t.Errorf("%s: err = %v, want %v", c.q, err, c.want)
		}
	}
}

// TestClientDisconnectReleasesSlot is the client-disconnect half of the
// cancellation contract: a client that closes a half-read stream releases
// the server's admission slot — the in-flight gauge returns to zero and
// the next query is admitted.
func TestClientDisconnectReleasesSlot(t *testing.T) {
	svc := newTestService(t, Config{Slots: 1, MaxQueue: -1}, 20_000)
	srv := httptest.NewUnstartedServer(svc.Handler())
	srv.Listener = tinyBufListener{srv.Listener}
	srv.Start()
	defer srv.Close()
	client := NewClient(srv.URL, srv.Client())

	rows, err := client.QueryContext(context.Background(), mixQ1)
	if err != nil {
		t.Fatal(err)
	}
	// Read a prefix, then hang up mid-stream.
	for i := 0; i < 5; i++ {
		if !rows.Next() {
			t.Fatalf("stream ended early: %v", rows.Err())
		}
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	if m := rows.Metrics(); m != nil {
		t.Fatalf("metrics after disconnect = %+v, want nil (no confirmed trailer)", m)
	}
	waitInFlightZero(t, svc)
	if _, err := svc.Query(context.Background(), mixQ1); err != nil {
		t.Fatalf("slot not released after disconnect: %v", err)
	}
	// The cut stream classifies as aborted — not as a fast success.
	stats := svc.Stats()
	if stats.Aborted != 1 {
		t.Fatalf("aborted = %d, want 1", stats.Aborted)
	}
	if stats.Queries != 1 { // only the follow-up buffered query
		t.Fatalf("queries = %d, want 1 (the aborted stream must not count)", stats.Queries)
	}
}

// TestStreamMaxRowsTruncates: the HTTP layer's max_rows stops the stream
// and marks the trailer.
func TestStreamMaxRowsTruncates(t *testing.T) {
	svc := newTestService(t, Config{Slots: 1}, 1000)
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	resp, err := srv.Client().Post(srv.URL+"/query", "application/json",
		strings.NewReader(`{"sql":"SELECT ws_order_number FROM web_sales","stream":true,"max_rows":3}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != ContentTypeNDJSON {
		t.Fatalf("content type %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var lines int
	for _, b := range raw {
		if b == '\n' {
			lines++
		}
	}
	body := string(raw)
	if lines != 5 { // header + 3 rows + trailer
		t.Fatalf("got %d lines:\n%s", lines, body)
	}
	if !strings.Contains(body, `"truncated":true`) {
		t.Fatalf("trailer not marked truncated:\n%s", body)
	}
	waitInFlightZero(t, svc)

	// Exact boundary: max_rows equal to the result size is a complete
	// delivery — not truncated, classified as a query, not an abort.
	abortedBefore := svc.Stats().Aborted
	resp, err = srv.Client().Post(srv.URL+"/query", "application/json",
		strings.NewReader(`{"sql":"SELECT empnum FROM emptab","stream":true,"max_rows":10}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err = io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(raw), `"truncated":true`) {
		t.Fatalf("exact-boundary stream marked truncated:\n%s", raw)
	}
	waitInFlightZero(t, svc)
	if got := svc.Stats().Aborted; got != abortedBefore {
		t.Fatalf("exact-boundary stream counted aborted (%d -> %d)", abortedBefore, got)
	}
}

// TestServiceQueryerConformsToEngine: Service and Engine implement the
// same interface; a window-less statement streams identically.
func TestServiceQueryerConformsToEngine(t *testing.T) {
	svc := newTestService(t, Config{Slots: 1}, 100)
	var q windowdb.Queryer = svc
	st, err := q.PrepareContext(context.Background(), `SELECT empnum FROM emptab ORDER BY empnum`)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for i := 0; i < 2; i++ {
		rows, err := st.QueryContext(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		var n int
		for rows.Next() {
			n++
		}
		if err := rows.Err(); err != nil {
			t.Fatal(err)
		}
		if n != 10 {
			t.Fatalf("run %d: %d rows, want 10", i, n)
		}
	}
}
