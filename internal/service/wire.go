package service

import (
	"encoding/json"
	"fmt"
	"math"
	"strconv"

	"repro/internal/storage"
)

// Wire types for the shard transport: a lossless JSON encoding of tables
// so a coordinator and its shard nodes exchange rows without collapsing
// value kinds. The /query endpoint's row encoding (jsonValue) maps values
// to their natural JSON forms — good for human clients, but it erases the
// int/float distinction that the engine's canonical tuple encoding (and
// therefore result-equivalence checking) preserves. WireValue instead tags
// every value: null, {"i":"<int64>"} (string payload — JSON numbers lose
// precision past 2^53), {"f":<float64>} or {"s":"<string>"}.

// WireValue wraps one storage.Value for tagged JSON transport.
type WireValue struct{ V storage.Value }

// MarshalJSON encodes the value with an explicit kind tag.
func (w WireValue) MarshalJSON() ([]byte, error) {
	switch w.V.Kind() {
	case storage.KindNull:
		return []byte("null"), nil
	case storage.KindInt:
		return []byte(`{"i":"` + strconv.FormatInt(w.V.Int64(), 10) + `"}`), nil
	case storage.KindFloat:
		f := w.V.Float64()
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return nil, fmt.Errorf("service: cannot encode non-finite float %v", f)
		}
		return json.Marshal(map[string]float64{"f": f})
	case storage.KindString:
		return json.Marshal(map[string]string{"s": w.V.Str()})
	}
	return nil, fmt.Errorf("service: cannot encode value kind %v", w.V.Kind())
}

// UnmarshalJSON decodes a tagged value.
func (w *WireValue) UnmarshalJSON(data []byte) error {
	if string(data) == "null" {
		w.V = storage.Null
		return nil
	}
	var tag struct {
		I *string  `json:"i"`
		F *float64 `json:"f"`
		S *string  `json:"s"`
	}
	if err := json.Unmarshal(data, &tag); err != nil {
		return fmt.Errorf("service: bad wire value %q: %w", data, err)
	}
	switch {
	case tag.I != nil:
		n, err := strconv.ParseInt(*tag.I, 10, 64)
		if err != nil {
			return fmt.Errorf("service: bad wire int %q: %w", *tag.I, err)
		}
		w.V = storage.Int(n)
	case tag.F != nil:
		w.V = storage.Float(*tag.F)
	case tag.S != nil:
		w.V = storage.StringVal(*tag.S)
	default:
		return fmt.Errorf("service: wire value %q carries no kind tag", data)
	}
	return nil
}

// WireColumn is one schema column on the wire.
type WireColumn struct {
	Name string `json:"name"`
	Type string `json:"type"` // INT | FLOAT | STRING
}

// WireTable is a schema plus tagged rows.
type WireTable struct {
	Columns []WireColumn  `json:"columns"`
	Rows    [][]WireValue `json:"rows"`
}

// EncodeTable converts a table to its wire form.
func EncodeTable(t *storage.Table) WireTable {
	wt := WireTable{Columns: WireColumns(t.Schema.Columns)}
	wt.Rows = make([][]WireValue, t.Len())
	for ri, row := range t.Rows {
		out := make([]WireValue, len(row))
		for ci, v := range row {
			out[ci] = WireValue{V: v}
		}
		wt.Rows[ri] = out
	}
	return wt
}

// WireColumns converts a schema's columns to their wire form: the header
// line of the NDJSON stream and the column block of WireTable.
func WireColumns(cols []storage.Column) []WireColumn {
	out := make([]WireColumn, len(cols))
	for i, c := range cols {
		out[i] = WireColumn{Name: c.Name, Type: c.Type.String()}
	}
	return out
}

// DecodeColumns converts wire columns back to schema columns, validating
// the type names.
func DecodeColumns(wc []WireColumn) ([]storage.Column, error) {
	cols := make([]storage.Column, len(wc))
	for i, c := range wc {
		var typ storage.ColumnType
		switch c.Type {
		case "INT":
			typ = storage.TypeInt
		case "FLOAT":
			typ = storage.TypeFloat
		case "STRING":
			typ = storage.TypeString
		default:
			return nil, fmt.Errorf("service: unknown wire column type %q", c.Type)
		}
		cols[i] = storage.Column{Name: c.Name, Type: typ}
	}
	return cols, nil
}

// Decode converts a wire table back to a storage table, validating column
// types and row arity.
func (w WireTable) Decode() (*storage.Table, error) {
	cols, err := DecodeColumns(w.Columns)
	if err != nil {
		return nil, err
	}
	t := storage.NewTable(storage.NewSchema(cols...))
	t.Rows = make([]storage.Tuple, len(w.Rows))
	for ri, row := range w.Rows {
		if len(row) != len(cols) {
			return nil, fmt.Errorf("service: wire row %d arity %d != schema arity %d", ri, len(row), len(cols))
		}
		tuple := make(storage.Tuple, len(row))
		for ci, v := range row {
			tuple[ci] = v.V
		}
		t.Rows[ri] = tuple
	}
	return t, nil
}
