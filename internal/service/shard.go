package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro"
	"repro/internal/attrs"
	"repro/internal/sql"
	"repro/internal/trace"
)

// Shard-side HTTP surface: the routes a windserve process exposes so a
// cluster coordinator (internal/shard) can use it as a shard node. The
// routes mount only under Config.ShardRoutes (windserve -shardnode).
//
//	POST /shard/query        {"sql": "...", "mode": "local"|"full"|"segment"}
//	POST /shard/register     {"name": "t", "table": {wire table}}
//	GET  /shard/table?name=t (NDJSON row stream)
//	GET  /shard/distinct?table=t&attrs=3,4
//	POST /shard/shuffle/run  {ShuffleRunRequest}
//	POST /shard/shuffle      (NDJSON peer row stream — node-to-node)
//	POST /shard/shuffle/drop {"shuffle_id": "..."}
//
// "local" mode executes the shard-local part of the statement (WHERE,
// chain, projection — no DISTINCT/ORDER BY/LIMIT; see
// Service.QueryShardLocal); "full" executes the entire statement, used for
// replicated tables where one shard serves the whole query; "segment"
// executes the final segment of a coordinator SegmentPlan over the node's
// shuffle inbox (StreamSegment — always streamed). /shard/register
// installs a table partition (or replica) into the node's engine — like
// every route here it is an intra-cluster interface: deploy shard nodes
// behind the cluster boundary, not on the public edge. /shard/table
// streams a table's raw rows with the NDJSON framing (the gather path of
// chains with no usable shuffle key) and /shard/distinct answers a
// distinct count for the coordinator's statistics stubs. The two
// /shard/shuffle data-plane routes carry the per-segment distributed
// execution of key-divergent chains: "run" executes one stage
// (RunShuffleStep), the bare route ingests a peer's re-shuffled rows into
// the node's inbox — node-to-node traffic that never transits the
// coordinator.

// ShardQueryRequest asks a shard node to execute a statement.
type ShardQueryRequest struct {
	SQL string `json:"sql"`
	// Mode is "local" (shard-local part only), "full" (entire statement)
	// or "segment" (final shuffle segment over the node's inbox).
	Mode string `json:"mode"`
	// Stream asks for the NDJSON row stream (stream.go) instead of the
	// buffered WireTable body: the coordinator's scatter path uses it to
	// bound its resident rows by the wire batch instead of |R|.
	Stream bool `json:"stream,omitempty"`

	// Fingerprint is the coordinator's plan fingerprint of SQL
	// (sql.Fingerprint): nodes resolve their plan cache by it in O(1)
	// before falling back to text normalization. Optional — "" resolves
	// by text, so old coordinators keep working.
	Fingerprint string `json:"fp,omitempty"`

	// SubplanFP is the coordinator's subplan fingerprint
	// (sql.Prepared.SubplanFingerprint): the identity of the statement's
	// scan+reorder subplan, shipped so the node's shared-subplan cache
	// collides every request of one distributed statement on one scan.
	// Optional — "" lets the node derive the identity itself.
	SubplanFP string `json:"subplan_fp,omitempty"`

	// Mode "segment" only: the coordinator's segmentation decision and the
	// inbox generation holding the final segment's shuffled input.
	Plan      *sql.SegmentPlan `json:"plan,omitempty"`
	ShuffleID string           `json:"shuffle_id,omitempty"`
	Round     int              `json:"round,omitempty"`
	Senders   int              `json:"senders,omitempty"`
}

// ShardQueryResponse carries the executed rows plus the execution
// observations the coordinator aggregates.
type ShardQueryResponse struct {
	Table         WireTable `json:"table"`
	CacheHit      bool      `json:"cache_hit"`
	FinalSort     string    `json:"final_sort,omitempty"`
	BlocksRead    int64     `json:"blocks_read"`
	BlocksWritten int64     `json:"blocks_written"`
	Comparisons   int64     `json:"comparisons"`
	ElapsedMillis float64   `json:"elapsed_ms"`
}

// ShardRegisterRequest installs a table on a shard node.
type ShardRegisterRequest struct {
	Name  string    `json:"name"`
	Table WireTable `json:"table"`
}

// ShardDistinctResponse is a shard-local distinct count.
type ShardDistinctResponse struct {
	Count int64 `json:"count"`
}

func (s *Service) handleShardQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		writeError(w, http.StatusMethodNotAllowed, "request", errors.New("service: POST a ShardQueryRequest"))
		return
	}
	var req ShardQueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "request", fmt.Errorf("service: bad request body: %w", err))
		return
	}
	if req.SQL == "" {
		writeError(w, http.StatusBadRequest, "request", errors.New("service: empty query"))
		return
	}
	// Join the coordinator's distributed trace: the node's span subtree
	// rides home in the stream trailer under the same ID.
	ctx := r.Context()
	traceID := r.Header.Get(trace.HeaderTraceID)
	if traceID != "" {
		ctx = trace.NewContext(ctx, traceID)
		w.Header().Set(trace.HeaderTraceID, traceID)
	}
	ctx = trace.WithClient(ctx, r.RemoteAddr)
	if req.Stream {
		var (
			rows *windowdb.Rows
			err  error
		)
		switch req.Mode {
		case "local":
			rows, err = s.StreamShardLocal(ctx, req.SQL, req.Fingerprint, req.SubplanFP)
		case "segment":
			rows, err = s.StreamSegment(ctx, req)
		case "full", "":
			rows, err = s.QueryContext(ctx, req.SQL)
		default:
			writeError(w, http.StatusBadRequest, "request", fmt.Errorf("service: unknown shard query mode %q", req.Mode))
			return
		}
		if err != nil {
			status, kind := StatusFor(err)
			writeError(w, status, kind, err)
			return
		}
		WriteStream(s.liveContext(r.Context(), traceID), w, rows, 0, s.streamCodec(r))
		return
	}

	var (
		res *QueryResult
		err error
	)
	switch req.Mode {
	case "local":
		res, err = s.QueryShardLocal(ctx, req.SQL, req.SubplanFP)
	case "segment":
		writeError(w, http.StatusBadRequest, "request", errors.New("service: segment mode is stream-only"))
		return
	case "full", "":
		res, err = s.Query(ctx, req.SQL)
	default:
		writeError(w, http.StatusBadRequest, "request", fmt.Errorf("service: unknown shard query mode %q", req.Mode))
		return
	}
	if err != nil {
		status, kind := StatusFor(err)
		writeError(w, status, kind, err)
		return
	}
	resp := ShardQueryResponse{
		Table:         EncodeTable(res.Table),
		CacheHit:      res.CacheHit,
		FinalSort:     res.FinalSort,
		ElapsedMillis: float64(res.Elapsed) / float64(time.Millisecond),
	}
	if res.Metrics != nil {
		resp.BlocksRead = res.Metrics.BlocksRead
		resp.BlocksWritten = res.Metrics.BlocksWritten
		resp.Comparisons = res.Metrics.Comparisons
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleShardRegister(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		writeError(w, http.StatusMethodNotAllowed, "request", errors.New("service: POST a ShardRegisterRequest"))
		return
	}
	var req ShardRegisterRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "request", fmt.Errorf("service: bad request body: %w", err))
		return
	}
	if req.Name == "" {
		writeError(w, http.StatusBadRequest, "request", errors.New("service: register needs a table name"))
		return
	}
	t, err := req.Table.Decode()
	if err != nil {
		writeError(w, http.StatusBadRequest, "request", err)
		return
	}
	s.eng.Register(req.Name, t)
	writeJSON(w, http.StatusOK, map[string]any{"ok": true, "rows": t.Len()})
}

func (s *Service) handleShardTable(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	if name == "" {
		writeError(w, http.StatusBadRequest, "request", errors.New("service: pass ?name="))
		return
	}
	t, err := s.eng.Table(name)
	if err != nil {
		status, kind := StatusFor(err)
		writeError(w, status, kind, err)
		return
	}
	// Chunked stream, never a whole JSON body: the gather data plane ships
	// raw rows with the same framing as /query's streamed responses, in
	// whichever codec the coordinator's Accept negotiated.
	WriteTableStream(r.Context(), w, t, s.streamCodec(r))
}

func (s *Service) handleShardDistinct(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("table")
	if name == "" {
		writeError(w, http.StatusBadRequest, "request", errors.New("service: pass ?table="))
		return
	}
	set, err := parseAttrSet(r.URL.Query().Get("attrs"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "request", err)
		return
	}
	entry, err := s.eng.Stats(name)
	if err != nil {
		status, kind := StatusFor(err)
		writeError(w, status, kind, err)
		return
	}
	writeJSON(w, http.StatusOK, ShardDistinctResponse{Count: entry.Distinct(set)})
}

// parseAttrSet parses a comma-separated attribute-ID list ("3,4") into a
// set. The empty string is the empty set.
func parseAttrSet(s string) (attrs.Set, error) {
	var set attrs.Set
	if s == "" {
		return set, nil
	}
	for _, part := range strings.Split(s, ",") {
		id, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || id < 0 || id >= 64 {
			return 0, fmt.Errorf("service: bad attribute id %q", part)
		}
		set = set.Add(attrs.ID(id))
	}
	return set, nil
}

// FormatAttrSet renders a set as the comma-separated ID list
// /shard/distinct accepts; the HTTP transport uses it to build requests.
func FormatAttrSet(set attrs.Set) string {
	ids := set.IDs()
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = strconv.Itoa(int(id))
	}
	return strings.Join(parts, ",")
}
