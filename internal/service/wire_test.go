package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"slices"
	"testing"

	"repro"
	"repro/internal/storage"
)

// TestWireValueRoundTrip: every kind survives the tagged encoding exactly,
// including int64s past 2^53 (where plain JSON numbers lose precision) and
// the int/float distinction the canonical tuple encoding observes.
func TestWireValueRoundTrip(t *testing.T) {
	vals := []storage.Value{
		storage.Null,
		storage.Int(0),
		storage.Int(-42),
		storage.Int(1<<62 + 12345), // would corrupt as a JSON number
		storage.Float(0),
		storage.Float(2), // must stay a float, not collapse to int 2
		storage.Float(-3.25),
		storage.StringVal(""),
		storage.StringVal(`quotes " and unicode ✓`),
	}
	for _, v := range vals {
		buf, err := json.Marshal(WireValue{V: v})
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		var back WireValue
		if err := json.Unmarshal(buf, &back); err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if back.V.Kind() != v.Kind() || !storage.Equal(back.V, v) {
			t.Fatalf("round trip %v (%v) -> %v (%v)", v, v.Kind(), back.V, back.V.Kind())
		}
	}
}

// TestWireTableRoundTrip: schema and rows survive; canonical encodings are
// bit-identical (the property shard result-equivalence checks rest on).
func TestWireTableRoundTrip(t *testing.T) {
	schema := storage.NewSchema(
		storage.Column{Name: "a", Type: storage.TypeInt},
		storage.Column{Name: "b", Type: storage.TypeFloat},
		storage.Column{Name: "c", Type: storage.TypeString},
	)
	tab := storage.NewTable(schema)
	tab.MustAppend(storage.Tuple{storage.Int(1), storage.Float(1.5), storage.StringVal("x")})
	tab.MustAppend(storage.Tuple{storage.Null, storage.Int(7), storage.Null}) // mixed kind in a FLOAT column

	buf, err := json.Marshal(EncodeTable(tab))
	if err != nil {
		t.Fatal(err)
	}
	var wt WireTable
	if err := json.Unmarshal(buf, &wt); err != nil {
		t.Fatal(err)
	}
	back, err := wt.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if back.Schema.Len() != 3 || back.Schema.Columns[1].Type != storage.TypeFloat {
		t.Fatalf("schema mangled: %+v", back.Schema)
	}
	for i := range tab.Rows {
		got := storage.AppendTuple(nil, back.Rows[i])
		want := storage.AppendTuple(nil, tab.Rows[i])
		if !slices.Equal(got, want) {
			t.Fatalf("row %d canonical encoding differs", i)
		}
	}
}

// TestWireTableDecodeErrors rejects malformed wire tables.
func TestWireTableDecodeErrors(t *testing.T) {
	if _, err := (WireTable{Columns: []WireColumn{{Name: "a", Type: "BLOB"}}}).Decode(); err == nil {
		t.Fatal("unknown column type must fail")
	}
	wt := WireTable{
		Columns: []WireColumn{{Name: "a", Type: "INT"}},
		Rows:    [][]WireValue{{{V: storage.Int(1)}, {V: storage.Int(2)}}},
	}
	if _, err := wt.Decode(); err == nil {
		t.Fatal("arity mismatch must fail")
	}
	var wv WireValue
	if err := json.Unmarshal([]byte(`{"x":1}`), &wv); err == nil {
		t.Fatal("untagged wire value must fail")
	}
	if err := json.Unmarshal([]byte(`{"i":"not-a-number"}`), &wv); err == nil {
		t.Fatal("bad int payload must fail")
	}
}

// TestShardRoutesGated: the /shard/* node surface mounts only when
// Config.ShardRoutes is set — a public single-engine server must not
// expose table overwrite or raw-table dump endpoints.
func TestShardRoutesGated(t *testing.T) {
	public := httptest.NewServer(New(windowdb.New(windowdb.Config{}), Config{}).Handler())
	defer public.Close()
	for _, path := range []string{"/shard/query", "/shard/register", "/shard/table", "/shard/distinct"} {
		resp, err := public.Client().Get(public.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s on a public server: %s, want 404", path, resp.Status)
		}
	}
	node := httptest.NewServer(New(windowdb.New(windowdb.Config{}), Config{ShardRoutes: true}).Handler())
	defer node.Close()
	resp, err := node.Client().Get(node.URL + "/shard/table?name=missing")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound { // unknown table, but the route exists
		t.Errorf("shard node /shard/table: %s", resp.Status)
	}
	resp, err = node.Client().Get(node.URL + "/shard/distinct?table=missing")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("shard node /shard/distinct: %s", resp.Status)
	}
}
