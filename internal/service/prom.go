package service

// Prometheus text exposition (version 0.0.4) for the pull-based /metrics
// plane. Hand-rolled — the format is a dozen lines of fmt and the repo
// takes no dependencies — but kept strict enough that promtool parses it:
// every family gets HELP and TYPE, histogram buckets are cumulative and
// end at +Inf, and values are Go's shortest-round-trip floats.

import (
	"bytes"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/trace"
)

// PromWriter accumulates metric families in Prometheus text exposition
// format. The cluster coordinator (internal/shard) reuses it to add
// per-shard labelled families on top of the service families.
type PromWriter struct {
	b bytes.Buffer
}

// Family emits the # HELP / # TYPE preamble for a metric family. Call it
// once per family, before the family's samples.
func (p *PromWriter) Family(name, help, typ string) {
	fmt.Fprintf(&p.b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// Sample emits one sample line; labels is the raw label-pair text (e.g.
// `shard="0"`) or "" for an unlabelled sample.
func (p *PromWriter) Sample(name, labels string, v float64) {
	if labels != "" {
		fmt.Fprintf(&p.b, "%s{%s} %s\n", name, labels, promValue(v))
	} else {
		fmt.Fprintf(&p.b, "%s %s\n", name, promValue(v))
	}
}

// Counter emits a single-sample counter family.
func (p *PromWriter) Counter(name, help string, v float64) {
	p.Family(name, help, "counter")
	p.Sample(name, "", v)
}

// Gauge emits a single-sample gauge family.
func (p *PromWriter) Gauge(name, help string, v float64) {
	p.Family(name, help, "gauge")
	p.Sample(name, "", v)
}

// ServeTo writes the accumulated exposition as an HTTP response.
func (p *PromWriter) ServeTo(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write(p.b.Bytes())
}

func promValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteSnapshotMetrics renders one service Snapshot as the windowdb_*
// family set. The coordinator calls it for its own counters and then
// layers per-shard labelled families beside it.
func WriteSnapshotMetrics(p *PromWriter, s Snapshot) {
	p.Counter("windowdb_queries_total", "Queries completed successfully.", float64(s.Queries))
	p.Counter("windowdb_query_failures_total", "Queries completed with an error.", float64(s.Failures))
	p.Counter("windowdb_query_rejected_total", "Queries rejected by admission control (overloaded).", float64(s.Rejected))
	p.Counter("windowdb_streams_aborted_total", "Streamed queries closed before their last row.", float64(s.Aborted))
	// Same counter under the lifecycle plane's canonical name: kills via
	// DELETE /debug/queries/{id} land here too.
	p.Counter("windowdb_queries_aborted_total", "Queries aborted before completion (kills and client disconnects).", float64(s.Aborted))
	p.Counter("windowdb_shuffle_rounds_total", "Shuffle stages executed for cluster coordinators.", float64(s.ShuffleRounds))
	p.Counter("windowdb_appends_total", "Append batches applied (INSERT statements and /append bodies).", float64(s.Appends))
	p.Counter("windowdb_rows_appended_total", "Rows ingested by append batches.", float64(s.RowsAppended))
	p.Counter("windowdb_rows_out_total", "Rows yielded to clients.", float64(s.RowsOut))
	p.Counter("windowdb_blocks_read_total", "Storage blocks read by query execution.", float64(s.BlocksRead))
	p.Counter("windowdb_blocks_written_total", "Storage blocks spilled by query execution.", float64(s.BlocksWritten))
	p.Counter("windowdb_comparisons_total", "Tuple comparisons performed by query execution.", float64(s.Comparisons))

	p.Counter("windowdb_plan_cache_hits_total", "Plan cache hits.", float64(s.Cache.Hits))
	p.Counter("windowdb_plan_cache_misses_total", "Plan cache misses.", float64(s.Cache.Misses))
	p.Counter("windowdb_plan_cache_invalidations_total", "Plan cache entries invalidated by DDL or stats changes.", float64(s.Cache.Invalidations))
	p.Counter("windowdb_plan_cache_evictions_total", "Plan cache LRU evictions.", float64(s.Cache.Evictions))
	p.Counter("windowdb_plan_cache_fp_hits_total", "Plan cache hits served via statement fingerprinting.", float64(s.Cache.FPHits))

	p.Counter("windowdb_subplan_cache_hits_total", "Shared-subplan cache hits (completed segment reused).", float64(s.Subplans.Hits))
	p.Counter("windowdb_subplan_cache_misses_total", "Shared-subplan cache misses (query led its own scan).", float64(s.Subplans.Misses))
	p.Counter("windowdb_subplan_cache_attaches_total", "Queries attached to an in-flight shared scan.", float64(s.Subplans.Attaches))
	p.Counter("windowdb_subplan_cache_invalidations_total", "Shared segments retired by schema or data generation changes.", float64(s.Subplans.Invalidations))
	p.Counter("windowdb_subplan_cache_evictions_total", "Shared-subplan cache LRU evictions.", float64(s.Subplans.Evictions))
	p.Counter("windowdb_subplan_cache_fallbacks_total", "Attachers whose shared scan failed and re-executed privately.", float64(s.Subplans.Fallbacks))

	p.Gauge("windowdb_in_flight", "Executions currently holding an admission slot.", float64(s.InFlight))
	p.Gauge("windowdb_in_flight_max", "High-water mark of in-flight executions.", float64(s.MaxInFlight))
	p.Gauge("windowdb_admission_slots", "Admission slots configured.", float64(s.Slots))
	p.Gauge("windowdb_admission_queue_depth", "Executions waiting for an admission slot.", float64(s.QueueDepth))
	p.Gauge("windowdb_live_queries", "In-flight queries in the /debug/queries registry.", float64(s.LiveQueries))
	p.Gauge("windowdb_plan_cache_entries", "Plan cache resident entries.", float64(s.Cache.Size))
	p.Gauge("windowdb_subplan_cache_entries", "Shared-subplan cache resident segments.", float64(s.Subplans.Size))
	p.Gauge("windowdb_uptime_seconds", "Seconds since the service started.", s.UptimeSeconds)
}

// histStride thins the 96 exponential buckets to every 8th boundary in
// the exposition — 12 boundaries plus +Inf spans 1µs to ~2min at 6x
// resolution, plenty for scrape-side quantiles, and cumulative buckets
// make the subset exact rather than lossy.
const histStride = 8

// WriteLatencyHistogram renders the exponential latency histogram as a
// Prometheus cumulative-bucket histogram in seconds.
func WriteLatencyHistogram(p *PromWriter, name string, h latencyHist) {
	p.Family(name, "End-to-end query latency.", "histogram")
	var cum uint64
	next := histStride - 1
	for i := 0; i < histBuckets; i++ {
		cum += h.counts[i]
		if i == next {
			p.Sample(name+"_bucket", fmt.Sprintf("le=%q", promValue(histUpper(i).Seconds())), float64(cum))
			next += histStride
		}
	}
	p.Sample(name+"_bucket", `le="+Inf"`, float64(h.total))
	p.Sample(name+"_sum", "", h.sum.Seconds())
	p.Sample(name+"_count", "", float64(h.total))
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	p := &PromWriter{}
	WriteSnapshotMetrics(p, s.Stats())
	codec := CodecBinary
	if s.cfg.DisableBinary {
		codec = CodecJSON
	}
	WriteBuildInfo(p, codec)
	WriteLatencyHistogram(p, "windowdb_query_duration_seconds", s.metrics.histSnapshot())
	p.ServeTo(w)
}

// WriteBuildInfo emits the standard build-identity gauge — always 1, the
// facts live in the labels. The version is the same debug.ReadBuildInfo
// answer the JSON /healthz reports.
func WriteBuildInfo(p *PromWriter, codec WireCodec) {
	p.Family("windowdb_build_info", "Build identity of this process; value is always 1.", "gauge")
	p.Sample("windowdb_build_info", fmt.Sprintf("version=%q,codec=%q", BuildVersion(), codec), 1)
}

// ServeTraceRing answers /debug/trace/ requests from a ring: the bare
// prefix lists recent traces newest-first (?limit= bounds the count,
// default 32, capped at the ring's capacity; ?n= is the legacy spelling),
// a trailing {id} returns that trace or 404. Shared with the
// coordinator's debug surface.
func ServeTraceRing(w http.ResponseWriter, r *http.Request, ring *trace.Ring, prefix string) {
	if ring == nil {
		writeError(w, http.StatusNotFound, "request", fmt.Errorf("service: tracing disabled"))
		return
	}
	id := strings.TrimPrefix(r.URL.Path, prefix)
	if id == "" {
		n := 32
		q := r.URL.Query().Get("limit")
		if q == "" {
			q = r.URL.Query().Get("n")
		}
		if q != "" {
			if v, err := strconv.Atoi(q); err == nil && v > 0 {
				n = v
			}
		}
		if n > ring.Cap() {
			n = ring.Cap()
		}
		writeJSON(w, http.StatusOK, ring.Recent(n))
		return
	}
	t := ring.Get(id)
	if t == nil {
		writeError(w, http.StatusNotFound, "request", fmt.Errorf("service: no trace %q in the ring (it holds the most recent %d)", id, ring.Len()))
		return
	}
	writeJSON(w, http.StatusOK, t)
}

func (s *Service) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	ServeTraceRing(w, r, s.Traces(), "/debug/trace/")
}

// KillResponse is the DELETE /debug/queries/{id} JSON body.
type KillResponse struct {
	ID     string `json:"id"`
	Killed bool   `json:"killed"`
}

// ServeQueryRegistry answers /debug/queries requests from a registry: the
// bare prefix GETs every in-flight query newest-first, a trailing {id}
// GETs one entry or DELETEs (kills) it. Shared by the service and the
// coordinator's node-local half (the coordinator's own handler layers the
// shard fan-out on top).
func ServeQueryRegistry(w http.ResponseWriter, r *http.Request, reg *trace.Registry, prefix string) {
	id := strings.TrimPrefix(strings.TrimPrefix(r.URL.Path, prefix), "/")
	if id == "" {
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", "GET")
			writeError(w, http.StatusMethodNotAllowed, "request", fmt.Errorf("service: use GET to list queries, DELETE %s/{id} to kill one", prefix))
			return
		}
		infos := reg.Snapshot()
		if infos == nil {
			infos = []trace.QueryInfo{}
		}
		writeJSON(w, http.StatusOK, infos)
		return
	}
	switch r.Method {
	case http.MethodGet:
		e := reg.Get(id)
		if e == nil {
			writeError(w, http.StatusNotFound, "request", fmt.Errorf("service: no in-flight query %q", id))
			return
		}
		writeJSON(w, http.StatusOK, e.Info())
	case http.MethodDelete:
		if !reg.Kill(id) {
			writeError(w, http.StatusNotFound, "request", fmt.Errorf("service: no in-flight query %q", id))
			return
		}
		writeJSON(w, http.StatusOK, KillResponse{ID: id, Killed: true})
	default:
		w.Header().Set("Allow", "GET, DELETE")
		writeError(w, http.StatusMethodNotAllowed, "request", fmt.Errorf("service: use GET or DELETE"))
	}
}

func (s *Service) handleDebugQueries(w http.ResponseWriter, r *http.Request) {
	ServeQueryRegistry(w, r, s.reg, "/debug/queries")
}
