package service

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"repro/internal/storage"
	"repro/internal/stream"
	"repro/internal/trace"
)

// The HTTP spelling of the shuffle data plane: /shard/shuffle/run executes
// one stage on a node, and the bare /shard/shuffle route is the
// node-to-node row exchange — one stream per (sender, receiver, round)
// with the same header/rows/trailer framing as /query's streamed
// responses, in either wire codec: binary columnar frames by default,
// NDJSON when the stage request says so. The receiver keys its decoder on
// the request content type and always accepts both, which is what lets a
// mixed-version cluster degrade per transport. Rows go straight from the
// wire into the receiver's inbox buffer; neither side materializes a
// request or response body.

// shuffleHeader is the first NDJSON line of a peer shuffle stream.
type shuffleHeader struct {
	ShuffleID string       `json:"shuffle_id"`
	Round     int          `json:"round"`
	Sender    int          `json:"sender"`
	Columns   []WireColumn `json:"columns"`
}

// shuffleIngestChunk bounds the rows decoded between inbox appends.
const shuffleIngestChunk = 512

// SendShuffleHTTP delivers one shuffle batch to a peer node's
// /shard/shuffle route as a streamed POST — binary columnar frames by
// default, NDJSON when the optional codec argument says CodecJSON. The
// cluster's HTTP transport and the shard-node handler's peer sender both
// use it.
func SendShuffleHTTP(ctx context.Context, hc *http.Client, base string, b *ShuffleBatch, codec ...WireCodec) error {
	if hc == nil {
		hc = http.DefaultClient
	}
	contentType := ContentTypeNDJSON
	pr, pw := io.Pipe()
	hdr := shuffleHeader{
		ShuffleID: b.ID, Round: b.Round, Sender: b.Sender,
		Columns: WireColumns(b.Cols),
	}
	if pickCodec(codec) == CodecBinary {
		contentType = ContentTypeBinary
		go func() {
			fw := stream.NewFrameWriter(pw)
			payload, err := json.Marshal(hdr)
			if err == nil {
				err = fw.WriteHeader(payload)
			}
			arity := len(b.Cols)
			for off := 0; err == nil && off < len(b.Rows); off += shuffleIngestChunk {
				end := off + shuffleIngestChunk
				if end > len(b.Rows) {
					end = len(b.Rows)
				}
				err = fw.WriteTuples(b.Rows[off:end], arity)
			}
			if err == nil {
				var payload []byte
				payload, err = json.Marshal(StreamTrailer{Done: true, RowCount: int64(len(b.Rows))})
				if err == nil {
					err = fw.WriteTrailer(payload)
				}
			}
			pw.CloseWithError(err)
		}()
	} else {
		go func() {
			enc := json.NewEncoder(pw)
			err := enc.Encode(hdr)
			for _, row := range b.Rows {
				if err != nil {
					break
				}
				err = encodeWireRow(enc, row)
			}
			if err == nil {
				err = enc.Encode(StreamTrailer{Done: true, RowCount: int64(len(b.Rows))})
			}
			pw.CloseWithError(err)
		}()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/shard/shuffle", pr)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", contentType)
	resp, err := hc.Do(req)
	if err != nil {
		return fmt.Errorf("service: shuffle to %s: %w", base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return DecodeRemoteError(base, resp)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	return nil
}

// handleShuffleRun executes one shuffle stage, delivering the re-shuffled
// output directly to the peer addresses the request names (self-deliveries
// skip the socket).
func (s *Service) handleShuffleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		writeError(w, http.StatusMethodNotAllowed, "request", errors.New("service: POST a ShuffleRunRequest"))
		return
	}
	var req ShuffleRunRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "request", fmt.Errorf("service: bad request body: %w", err))
		return
	}
	// The trace ID rides in the request body on this route; fall back to
	// the header so hand-built curls still join a trace.
	if req.TraceID == "" {
		req.TraceID = r.Header.Get(trace.HeaderTraceID)
	}
	// The stage request picks the delivery codec; a node pinned to NDJSON
	// (DisableBinary) overrides it, and receivers sniff the content type, so
	// a mixed-codec fleet interoperates per transport.
	codec := CodecBinary
	if req.Codec == string(CodecJSON) || s.cfg.DisableBinary {
		codec = CodecJSON
	}
	send := func(ctx context.Context, peer int, b *ShuffleBatch) error {
		if peer == req.Self {
			return s.ShuffleAccept(ctx, b)
		}
		if peer < 0 || peer >= len(req.Peers) || req.Peers[peer] == "" {
			return fmt.Errorf("service: no address for shuffle peer %d", peer)
		}
		return SendShuffleHTTP(ctx, s.cfg.PeerClient, req.Peers[peer], b, codec)
	}
	res, err := s.RunShuffleStep(r.Context(), req, send)
	if err != nil {
		status, kind := StatusFor(err)
		writeError(w, status, kind, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// handleShuffleIngest receives one peer's shuffle stream, decoding rows
// incrementally into the inbox. The sender is registered complete only
// when the trailer arrives with the right row count — a cut stream leaves
// the buffer incomplete, which the consuming stage reports.
func (s *Service) handleShuffleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		writeError(w, http.StatusMethodNotAllowed, "request", errors.New("service: POST a shuffle stream"))
		return
	}
	bad := func(err error) {
		writeError(w, http.StatusBadRequest, "request", err)
	}
	// Keyed on the sender's declared content type, never on configuration:
	// an NDJSON-only peer can push into a binary-preferring node and vice
	// versa.
	if strings.Contains(r.Header.Get("Content-Type"), ContentTypeBinary) {
		s.ingestShuffleBinary(w, r, bad)
		return
	}
	br := bufio.NewReaderSize(r.Body, 64<<10)
	line, err := readNDJSONLine(br)
	if err != nil {
		bad(fmt.Errorf("service: reading shuffle header: %w", err))
		return
	}
	var hdr shuffleHeader
	if err := json.Unmarshal(line, &hdr); err != nil {
		bad(fmt.Errorf("service: bad shuffle header %q: %w", line, err))
		return
	}
	cols, err := DecodeColumns(hdr.Columns)
	if err != nil {
		bad(err)
		return
	}
	arity := len(cols)
	var batch []storage.Tuple
	var n int64
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		err := s.appendShuffle(hdr.ShuffleID, hdr.Round, arity, batch)
		batch = nil
		return err
	}
	for {
		line, err := readNDJSONLine(br)
		if err != nil {
			bad(fmt.Errorf("service: shuffle stream cut before trailer: %w", err))
			return
		}
		if line[0] != '[' {
			var trailer StreamTrailer
			if err := json.Unmarshal(line, &trailer); err != nil {
				bad(fmt.Errorf("service: bad shuffle trailer %q: %w", line, err))
				return
			}
			if trailer.RowCount != n {
				bad(fmt.Errorf("service: shuffle trailer counts %d rows, received %d", trailer.RowCount, n))
				return
			}
			break
		}
		t, err := decodeWireRow(line, arity)
		if err != nil {
			bad(fmt.Errorf("service: shuffle %w", err))
			return
		}
		batch = append(batch, t)
		n++
		if len(batch) >= shuffleIngestChunk {
			if err := flush(); err != nil {
				bad(err)
				return
			}
		}
	}
	if err := flush(); err != nil {
		bad(err)
		return
	}
	if err := s.finishShuffle(hdr.ShuffleID, hdr.Round, hdr.Sender, arity); err != nil {
		bad(err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ok": true, "rows": n})
}

// ingestShuffleBinary is handleShuffleIngest's frame-codec twin: same
// header/rows/trailer protocol, decoded from binary columnar frames.
func (s *Service) ingestShuffleBinary(w http.ResponseWriter, r *http.Request, bad func(error)) {
	fr := stream.NewFrameReader(bufio.NewReaderSize(r.Body, 64<<10))
	f, err := fr.Next()
	if err != nil {
		bad(fmt.Errorf("service: reading shuffle header: %w", err))
		return
	}
	if f.Type != stream.FrameHeader {
		bad(fmt.Errorf("service: shuffle stream opened with %q frame, want header", f.Type))
		return
	}
	var hdr shuffleHeader
	if err := json.Unmarshal(f.Payload, &hdr); err != nil {
		bad(fmt.Errorf("service: bad shuffle header: %w", err))
		return
	}
	cols, err := DecodeColumns(hdr.Columns)
	if err != nil {
		bad(err)
		return
	}
	arity := len(cols)
	var n int64
	for {
		f, err := fr.Next()
		if err != nil {
			bad(fmt.Errorf("service: shuffle stream cut before trailer: %w", err))
			return
		}
		if f.Type == stream.FrameTrailer {
			var trailer StreamTrailer
			if err := json.Unmarshal(f.Payload, &trailer); err != nil {
				bad(fmt.Errorf("service: bad shuffle trailer: %w", err))
				return
			}
			if trailer.RowCount != n {
				bad(fmt.Errorf("service: shuffle trailer counts %d rows, received %d", trailer.RowCount, n))
				return
			}
			break
		}
		if f.Type != stream.FrameBatch {
			bad(fmt.Errorf("service: unexpected %q frame in shuffle stream", f.Type))
			return
		}
		b, err := stream.DecodeBatch(f.Payload, arity)
		if err != nil {
			bad(fmt.Errorf("service: shuffle %w", err))
			return
		}
		rows := b.Tuples()
		if len(rows) == 0 {
			continue
		}
		n += int64(len(rows))
		if err := s.appendShuffle(hdr.ShuffleID, hdr.Round, arity, rows); err != nil {
			bad(err)
			return
		}
	}
	if err := s.finishShuffle(hdr.ShuffleID, hdr.Round, hdr.Sender, arity); err != nil {
		bad(err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ok": true, "rows": n})
}

// handleShuffleDrop discards a query's buffered shuffle state: the
// coordinator's cleanup after a failed or abandoned shuffle.
func (s *Service) handleShuffleDrop(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		writeError(w, http.StatusMethodNotAllowed, "request", errors.New("service: POST a drop request"))
		return
	}
	var req struct {
		ShuffleID string `json:"shuffle_id"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "request", fmt.Errorf("service: bad request body: %w", err))
		return
	}
	if req.ShuffleID == "" {
		writeError(w, http.StatusBadRequest, "request", errors.New("service: drop needs a shuffle_id"))
		return
	}
	s.ShuffleDrop(req.ShuffleID)
	writeJSON(w, http.StatusOK, map[string]any{"ok": true})
}
