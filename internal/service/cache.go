package service

import (
	"container/list"
	"strings"
	"sync"
	"unicode"

	"repro/internal/sql"
)

// planCache is the prepared-statement cache: normalized SQL text maps to a
// *sql.Prepared carrying the parse, bind and CSO-planning work. An entry is
// valid only while the catalog generation it was prepared under is current;
// a lookup that finds a stale entry drops it and counts an invalidation, so
// re-registering a table flushes every plan built on the old data. Bounded
// LRU: the least recently used entry is evicted past capacity.
type planCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*list.Element
	order   *list.List // front = most recently used
	lastGen uint64     // generation observed by the latest lookup

	// fpIndex maps a coordinator-shipped plan fingerprint to the
	// normalized-text cache key, so scatter and shuffle requests resolve
	// with one map lookup instead of re-normalizing the SQL text every
	// round. It is an index, not a second cache: each link is recorded on
	// the entry it points to and dropped with it (dropLinksLocked), so the
	// index holds links for live entries only — at most fpLinksPerEntry
	// per entry — and fingerprints of long-evicted statements cannot
	// accumulate on a long-lived node.
	fpIndex map[string]string

	hits, misses, invalidations, evictions, fpHits uint64
}

type cacheEntry struct {
	key  string
	prep *sql.Prepared
	// fps are the fingerprints linkFP indexed to this key, kept so eviction
	// and invalidation can sweep their fpIndex links with the entry.
	fps []string
}

// fpLinksPerEntry bounds how many fingerprints one cache entry may hold in
// the index. Distinct coordinator plans normalizing to one text are rare
// (in practice one statement has one fingerprint); past the bound the
// oldest link is recycled rather than letting one hot key grow an
// unbounded tail.
const fpLinksPerEntry = 4

func newPlanCache(capacity int) *planCache {
	if capacity < 1 {
		capacity = 1
	}
	return &planCache{
		cap:     capacity,
		entries: make(map[string]*list.Element, capacity),
		order:   list.New(),
	}
}

// get returns the cached statement for key when present and still valid
// under the catalog generation gen. The first lookup after a generation
// change sweeps every stale entry, not just this key's: a Prepared pins
// its catalog entry (and that entry's whole table), so stale plans whose
// SQL text never recurs must not keep superseded snapshots reachable in a
// long-running, memory-budgeted server.
func (c *planCache) get(key string, gen uint64) (*sql.Prepared, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if gen != c.lastGen {
		c.lastGen = gen
		var next *list.Element
		for el := c.order.Front(); el != nil; el = next {
			next = el.Next()
			ent := el.Value.(*cacheEntry)
			if ent.prep.Generation() != gen {
				c.invalidations++
				c.order.Remove(el)
				delete(c.entries, ent.key)
				c.dropLinksLocked(ent)
			}
		}
	}
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	ent := el.Value.(*cacheEntry)
	if ent.prep.Generation() != gen {
		c.invalidations++
		c.misses++
		c.order.Remove(el)
		delete(c.entries, key)
		c.dropLinksLocked(ent)
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return ent.prep, true
}

// getFP resolves a coordinator-shipped fingerprint through the index to
// its cached statement, honoring the same generation discipline as get. A
// dangling index entry (evicted or invalidated key) is dropped and counts
// a miss; the caller falls back to the text-keyed path.
func (c *planCache) getFP(fp string, gen uint64) (*sql.Prepared, bool) {
	c.mu.Lock()
	key, ok := c.fpIndex[fp]
	c.mu.Unlock()
	if !ok {
		return nil, false
	}
	prep, hit := c.get(key, gen)
	c.mu.Lock()
	if hit {
		c.fpHits++
	} else if c.fpIndex[fp] == key {
		// Only while it still points at the missed key: a concurrent
		// re-link to a fresh entry must survive.
		delete(c.fpIndex, fp)
	}
	c.mu.Unlock()
	return prep, hit
}

// linkFP records fingerprint → normalized key. A link lives exactly as
// long as the entry it points to: it is recorded on the entry and swept
// from the index when the entry is evicted or invalidated, so the index
// can never outgrow the live entries. A key that is no longer cached is
// not indexed at all — the next prepare re-links it.
func (c *planCache) linkFP(fp, key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return // evicted between put and link; indexing now would dangle
	}
	if c.fpIndex[fp] == key {
		return
	}
	ent := el.Value.(*cacheEntry)
	if len(ent.fps) >= fpLinksPerEntry {
		old := ent.fps[0]
		ent.fps = append(ent.fps[:0], ent.fps[1:]...)
		if c.fpIndex[old] == key {
			delete(c.fpIndex, old)
		}
	}
	if c.fpIndex == nil {
		c.fpIndex = make(map[string]string)
	}
	c.fpIndex[fp] = key
	ent.fps = append(ent.fps, fp)
}

// dropLinksLocked sweeps ent's fingerprint links out of the index. A link
// is removed only while it still points at ent's key: linkFP may have
// re-pointed a fingerprint at a newer entry, whose link must survive.
func (c *planCache) dropLinksLocked(ent *cacheEntry) {
	for _, fp := range ent.fps {
		if c.fpIndex[fp] == ent.key {
			delete(c.fpIndex, fp)
		}
	}
	ent.fps = nil
}

// put stores a freshly prepared statement, evicting the LRU entry past
// capacity. Concurrent misses on one key may both prepare; the entry
// prepared under the newest catalog generation wins, so a slow prepare
// racing a Register cannot clobber a fresher plan with a stale one (which
// would make every later lookup invalidate and re-plan).
func (c *planCache) put(key string, p *sql.Prepared) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		ent := el.Value.(*cacheEntry)
		if p.Generation() >= ent.prep.Generation() {
			ent.prep = p
		}
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, prep: p})
	if c.order.Len() > c.cap {
		back := c.order.Back()
		c.order.Remove(back)
		ent := back.Value.(*cacheEntry)
		delete(c.entries, ent.key)
		c.dropLinksLocked(ent)
		c.evictions++
	}
}

// CacheStats is the cache counter snapshot exposed through Service.Stats.
type CacheStats struct {
	Size          int    `json:"size"`
	Capacity      int    `json:"capacity"`
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	Invalidations uint64 `json:"invalidations"`
	Evictions     uint64 `json:"evictions"`
	// FPHits counts hits resolved through the coordinator-shipped plan
	// fingerprint index (a subset of Hits).
	FPHits uint64 `json:"fp_hits"`
}

// HitRate returns hits / (hits + misses), 0 when no lookups happened.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

func (c *planCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Size:          c.order.Len(),
		Capacity:      c.cap,
		Hits:          c.hits,
		Misses:        c.misses,
		Invalidations: c.invalidations,
		Evictions:     c.evictions,
		FPHits:        c.fpHits,
	}
}

// NormalizeSQL renders statement text as its cache key via sql.Canonical:
// spacing, comment, keyword-case and redundant-quoting variants of one
// statement share a slot (`SELECT  "ws_item_sk"` keys with `select
// ws_item_sk`), while identifier case stays semantic — a SELECT alias
// names the output column with its written spelling, so `AS E` and `AS e`
// must not collide. It is a cache key, not a semantic rewrite: the
// original text is what gets prepared on a miss. Text the lexer rejects
// still needs a deterministic key (its prepare fails, but whether it
// fails must not depend on spacing), so it falls back to collapsing
// whitespace outside quoted regions.
func NormalizeSQL(src string) string {
	if key, err := sql.Canonical(src); err == nil {
		return key
	}
	var b strings.Builder
	b.Grow(len(src))
	var quote rune // 0 outside; '\'' or '"' inside a quoted region
	pendingSpace := false
	for _, r := range src {
		if quote != 0 {
			b.WriteRune(r)
			if r == quote {
				quote = 0
			}
			continue
		}
		switch {
		case unicode.IsSpace(r):
			pendingSpace = true
		default:
			if pendingSpace && b.Len() > 0 {
				b.WriteByte(' ')
			}
			pendingSpace = false
			if r == '\'' || r == '"' {
				quote = r
			}
			b.WriteRune(r)
		}
	}
	return b.String()
}
