package service

import (
	"container/list"
	"strings"
	"sync"
	"unicode"

	"repro/internal/sql"
)

// planCache is the prepared-statement cache: normalized SQL text maps to a
// *sql.Prepared carrying the parse, bind and CSO-planning work. An entry is
// valid only while the catalog generation it was prepared under is current;
// a lookup that finds a stale entry drops it and counts an invalidation, so
// re-registering a table flushes every plan built on the old data. Bounded
// LRU: the least recently used entry is evicted past capacity.
type planCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*list.Element
	order   *list.List // front = most recently used
	lastGen uint64     // generation observed by the latest lookup

	// fpIndex maps a coordinator-shipped plan fingerprint to the
	// normalized-text cache key, so scatter and shuffle requests resolve
	// with one map lookup instead of re-normalizing the SQL text every
	// round. It is an index, not a second cache: a fingerprint whose key
	// was evicted or invalidated just misses and is re-linked on the next
	// prepare. Bounded by periodic reset (see linkFP).
	fpIndex map[string]string

	hits, misses, invalidations, evictions, fpHits uint64
}

type cacheEntry struct {
	key  string
	prep *sql.Prepared
}

func newPlanCache(capacity int) *planCache {
	if capacity < 1 {
		capacity = 1
	}
	return &planCache{
		cap:     capacity,
		entries: make(map[string]*list.Element, capacity),
		order:   list.New(),
	}
}

// get returns the cached statement for key when present and still valid
// under the catalog generation gen. The first lookup after a generation
// change sweeps every stale entry, not just this key's: a Prepared pins
// its catalog entry (and that entry's whole table), so stale plans whose
// SQL text never recurs must not keep superseded snapshots reachable in a
// long-running, memory-budgeted server.
func (c *planCache) get(key string, gen uint64) (*sql.Prepared, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if gen != c.lastGen {
		c.lastGen = gen
		var next *list.Element
		for el := c.order.Front(); el != nil; el = next {
			next = el.Next()
			ent := el.Value.(*cacheEntry)
			if ent.prep.Generation() != gen {
				c.invalidations++
				c.order.Remove(el)
				delete(c.entries, ent.key)
			}
		}
	}
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	ent := el.Value.(*cacheEntry)
	if ent.prep.Generation() != gen {
		c.invalidations++
		c.misses++
		c.order.Remove(el)
		delete(c.entries, key)
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return ent.prep, true
}

// getFP resolves a coordinator-shipped fingerprint through the index to
// its cached statement, honoring the same generation discipline as get. A
// dangling index entry (evicted or invalidated key) is dropped and counts
// a miss; the caller falls back to the text-keyed path.
func (c *planCache) getFP(fp string, gen uint64) (*sql.Prepared, bool) {
	c.mu.Lock()
	key, ok := c.fpIndex[fp]
	c.mu.Unlock()
	if !ok {
		return nil, false
	}
	prep, hit := c.get(key, gen)
	c.mu.Lock()
	if hit {
		c.fpHits++
	} else {
		delete(c.fpIndex, fp)
	}
	c.mu.Unlock()
	return prep, hit
}

// linkFP records fingerprint → normalized key. The index is reset when it
// outgrows 4× the cache capacity: fingerprints of long-evicted statements
// must not accumulate forever on a long-lived node, and losing live links
// only costs one re-link on the next request.
func (c *planCache) linkFP(fp, key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.fpIndex) >= 4*c.cap {
		c.fpIndex = nil
	}
	if c.fpIndex == nil {
		c.fpIndex = make(map[string]string)
	}
	c.fpIndex[fp] = key
}

// put stores a freshly prepared statement, evicting the LRU entry past
// capacity. Concurrent misses on one key may both prepare; the entry
// prepared under the newest catalog generation wins, so a slow prepare
// racing a Register cannot clobber a fresher plan with a stale one (which
// would make every later lookup invalidate and re-plan).
func (c *planCache) put(key string, p *sql.Prepared) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		ent := el.Value.(*cacheEntry)
		if p.Generation() >= ent.prep.Generation() {
			ent.prep = p
		}
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, prep: p})
	if c.order.Len() > c.cap {
		back := c.order.Back()
		c.order.Remove(back)
		delete(c.entries, back.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// CacheStats is the cache counter snapshot exposed through Service.Stats.
type CacheStats struct {
	Size          int    `json:"size"`
	Capacity      int    `json:"capacity"`
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	Invalidations uint64 `json:"invalidations"`
	Evictions     uint64 `json:"evictions"`
	// FPHits counts hits resolved through the coordinator-shipped plan
	// fingerprint index (a subset of Hits).
	FPHits uint64 `json:"fp_hits"`
}

// HitRate returns hits / (hits + misses), 0 when no lookups happened.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

func (c *planCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Size:          c.order.Len(),
		Capacity:      c.cap,
		Hits:          c.hits,
		Misses:        c.misses,
		Invalidations: c.invalidations,
		Evictions:     c.evictions,
		FPHits:        c.fpHits,
	}
}

// NormalizeSQL collapses whitespace outside single-quoted strings so
// spacing variants of one query ("SELECT  *", "SELECT *\n") share a cache
// slot. Letter case is preserved: identifier case is semantic here — a
// SELECT alias names the output column with its written spelling — and
// keywords cannot be told from identifiers without parsing, so folding
// case would let `AS E` and `AS e` collide and serve whichever column
// spelling was cached first. It is a cache key, not a semantic rewrite:
// the original text is what gets prepared on a miss.
func NormalizeSQL(src string) string {
	var b strings.Builder
	b.Grow(len(src))
	inStr := false
	pendingSpace := false
	for _, r := range src {
		if inStr {
			b.WriteRune(r)
			if r == '\'' {
				inStr = false
			}
			continue
		}
		switch {
		case unicode.IsSpace(r):
			pendingSpace = true
		default:
			if pendingSpace && b.Len() > 0 {
				b.WriteByte(' ')
			}
			pendingSpace = false
			if r == '\'' {
				inStr = true
			}
			b.WriteRune(r)
		}
	}
	return b.String()
}
