package service

import (
	"container/list"
	"strings"
	"sync"
	"unicode"

	"repro/internal/sql"
)

// planCache is the prepared-statement cache: normalized SQL text maps to a
// *sql.Prepared carrying the parse, bind and CSO-planning work. An entry is
// valid only while the catalog generation it was prepared under is current;
// a lookup that finds a stale entry drops it and counts an invalidation, so
// re-registering a table flushes every plan built on the old data. Bounded
// LRU: the least recently used entry is evicted past capacity.
type planCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*list.Element
	order   *list.List // front = most recently used
	lastGen uint64     // generation observed by the latest lookup

	hits, misses, invalidations, evictions uint64
}

type cacheEntry struct {
	key  string
	prep *sql.Prepared
}

func newPlanCache(capacity int) *planCache {
	if capacity < 1 {
		capacity = 1
	}
	return &planCache{
		cap:     capacity,
		entries: make(map[string]*list.Element, capacity),
		order:   list.New(),
	}
}

// get returns the cached statement for key when present and still valid
// under the catalog generation gen. The first lookup after a generation
// change sweeps every stale entry, not just this key's: a Prepared pins
// its catalog entry (and that entry's whole table), so stale plans whose
// SQL text never recurs must not keep superseded snapshots reachable in a
// long-running, memory-budgeted server.
func (c *planCache) get(key string, gen uint64) (*sql.Prepared, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if gen != c.lastGen {
		c.lastGen = gen
		var next *list.Element
		for el := c.order.Front(); el != nil; el = next {
			next = el.Next()
			ent := el.Value.(*cacheEntry)
			if ent.prep.Generation() != gen {
				c.invalidations++
				c.order.Remove(el)
				delete(c.entries, ent.key)
			}
		}
	}
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	ent := el.Value.(*cacheEntry)
	if ent.prep.Generation() != gen {
		c.invalidations++
		c.misses++
		c.order.Remove(el)
		delete(c.entries, key)
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return ent.prep, true
}

// put stores a freshly prepared statement, evicting the LRU entry past
// capacity. Concurrent misses on one key may both prepare; the entry
// prepared under the newest catalog generation wins, so a slow prepare
// racing a Register cannot clobber a fresher plan with a stale one (which
// would make every later lookup invalidate and re-plan).
func (c *planCache) put(key string, p *sql.Prepared) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		ent := el.Value.(*cacheEntry)
		if p.Generation() >= ent.prep.Generation() {
			ent.prep = p
		}
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, prep: p})
	if c.order.Len() > c.cap {
		back := c.order.Back()
		c.order.Remove(back)
		delete(c.entries, back.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// CacheStats is the cache counter snapshot exposed through Service.Stats.
type CacheStats struct {
	Size          int    `json:"size"`
	Capacity      int    `json:"capacity"`
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	Invalidations uint64 `json:"invalidations"`
	Evictions     uint64 `json:"evictions"`
}

// HitRate returns hits / (hits + misses), 0 when no lookups happened.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

func (c *planCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Size:          c.order.Len(),
		Capacity:      c.cap,
		Hits:          c.hits,
		Misses:        c.misses,
		Invalidations: c.invalidations,
		Evictions:     c.evictions,
	}
}

// NormalizeSQL collapses whitespace outside single-quoted strings so
// spacing variants of one query ("SELECT  *", "SELECT *\n") share a cache
// slot. Letter case is preserved: identifier case is semantic here — a
// SELECT alias names the output column with its written spelling — and
// keywords cannot be told from identifiers without parsing, so folding
// case would let `AS E` and `AS e` collide and serve whichever column
// spelling was cached first. It is a cache key, not a semantic rewrite:
// the original text is what gets prepared on a miss.
func NormalizeSQL(src string) string {
	var b strings.Builder
	b.Grow(len(src))
	inStr := false
	pendingSpace := false
	for _, r := range src {
		if inStr {
			b.WriteRune(r)
			if r == '\'' {
				inStr = false
			}
			continue
		}
		switch {
		case unicode.IsSpace(r):
			pendingSpace = true
		default:
			if pendingSpace && b.Len() > 0 {
				b.WriteByte(' ')
			}
			pendingSpace = false
			if r == '\'' {
				inStr = true
			}
			b.WriteRune(r)
		}
	}
	return b.String()
}
