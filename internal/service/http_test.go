package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"repro/internal/datagen"
)

func doJSON(t *testing.T, h http.Handler, method, path, body string) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	var req *http.Request
	if body == "" {
		req = httptest.NewRequest(method, path, nil)
	} else {
		req = httptest.NewRequest(method, path, strings.NewReader(body))
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var decoded map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &decoded); err != nil && rec.Code != http.StatusOK {
		t.Fatalf("%s %s: non-JSON %d response: %q", method, path, rec.Code, rec.Body.String())
	}
	return rec, decoded
}

// TestHTTPQueryRoundTrip: the happy path returns columns, typed rows and
// serving metadata.
func TestHTTPQueryRoundTrip(t *testing.T) {
	svc := newTestService(t, Config{}, 500)
	h := svc.Handler()
	body := `{"sql": "SELECT empnum, rank() OVER (ORDER BY salary DESC) AS r FROM emptab ORDER BY r LIMIT 2", "max_rows": 1}`
	rec, resp := doJSON(t, h, http.MethodPost, "/query", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	cols, _ := resp["columns"].([]any)
	if len(cols) != 2 || cols[0] != "empnum" || cols[1] != "r" {
		t.Fatalf("columns = %v", cols)
	}
	if resp["row_count"].(float64) != 2 {
		t.Fatalf("row_count = %v, want 2", resp["row_count"])
	}
	rows, _ := resp["rows"].([]any)
	if len(rows) != 1 || resp["truncated"] != true {
		t.Fatalf("max_rows: got %d rows, truncated=%v", len(rows), resp["truncated"])
	}
	if resp["chain"] == "" {
		t.Fatal("missing chain")
	}
	// Second identical query via GET must be a cache hit.
	rec, resp = doJSON(t, h, http.MethodGet,
		"/query?q="+url.QueryEscape("SELECT empnum, rank() OVER (ORDER BY salary DESC) AS r FROM emptab ORDER BY r LIMIT 2"), "")
	if rec.Code != http.StatusOK || resp["cache_hit"] != true {
		t.Fatalf("GET repeat: status %d cache_hit=%v", rec.Code, resp["cache_hit"])
	}
}

// TestHTTPErrorTaxonomy asserts the full status mapping through the
// handler: parse/bind → 400, unknown table → 404, admission overflow →
// 429, server-side timeout → 503, engine fault → 500, malformed requests
// → 400/405.
func TestHTTPErrorTaxonomy(t *testing.T) {
	svc := newTestService(t, Config{Slots: 1}, 500)
	h := svc.Handler()
	cases := []struct {
		name   string
		method string
		path   string
		body   string
		status int
		kind   string
		setup  func()
	}{
		{
			name: "parse error", method: http.MethodPost, path: "/query",
			body:   `{"sql": "SELEKT * FROM emptab"}`,
			status: http.StatusBadRequest, kind: "parse",
		},
		{
			name: "trailing garbage", method: http.MethodPost, path: "/query",
			body:   `{"sql": "SELECT * FROM emptab;"}`,
			status: http.StatusBadRequest, kind: "parse",
		},
		{
			name: "bind unknown column", method: http.MethodPost, path: "/query",
			body:   `{"sql": "SELECT nosuch FROM emptab"}`,
			status: http.StatusBadRequest, kind: "bind",
		},
		{
			name: "bind unknown window function", method: http.MethodPost, path: "/query",
			body:   `{"sql": "SELECT frobnicate() OVER (ORDER BY salary) FROM emptab"}`,
			status: http.StatusBadRequest, kind: "bind",
		},
		{
			name: "bind bad ORDER BY", method: http.MethodPost, path: "/query",
			body:   `{"sql": "SELECT empnum FROM emptab ORDER BY nosuch"}`,
			status: http.StatusBadRequest, kind: "bind",
		},
		{
			name: "unknown table", method: http.MethodPost, path: "/query",
			body:   `{"sql": "SELECT * FROM missing"}`,
			status: http.StatusNotFound, kind: "unknown_table",
		},
		{
			name: "engine fault", method: http.MethodPost, path: "/query",
			// sum over a string column binds (the column exists) but fails
			// in the evaluator — a genuine engine-side fault.
			body:   `{"sql": "SELECT sum(ws_pad) OVER (PARTITION BY ws_item_sk) FROM web_sales"}`,
			status: http.StatusInternalServerError, kind: "internal",
		},
		{
			name: "timeout", method: http.MethodPost, path: "/query",
			// Two functions with different partition keys force a two-step
			// chain: the 1ms deadline has certainly expired by the step
			// boundary after the first reorder of 30k rows.
			body:   `{"sql": "SELECT rank() OVER (PARTITION BY ws_item_sk ORDER BY ws_sold_time_sk) AS r1, rank() OVER (PARTITION BY ws_bill_customer_sk ORDER BY ws_sold_time_sk) AS r2 FROM big", "timeout_ms": 1}`,
			status: http.StatusServiceUnavailable, kind: "timeout",
			setup: func() {
				svc.Engine().Register("big", datagen.WebSales(datagen.WebSalesConfig{Rows: 30_000, Seed: 3}))
			},
		},
		{
			name: "overloaded", method: http.MethodPost, path: "/query",
			body:   `{"sql": "SELECT * FROM emptab"}`,
			status: http.StatusTooManyRequests, kind: "overloaded",
			setup: func() {
				svc.cfg.MaxQueue = 0 // immediate rejection...
				svc.gov.maxQueue = 0
				svc.gov.slots <- struct{}{} // ...with the only slot held
			},
		},
		{
			name: "empty request", method: http.MethodPost, path: "/query",
			body:   `{}`,
			status: http.StatusBadRequest, kind: "request",
		},
		{
			name: "bad JSON", method: http.MethodPost, path: "/query",
			body:   `{"sql": `,
			status: http.StatusBadRequest, kind: "request",
		},
		{
			name: "bad method", method: http.MethodDelete, path: "/query",
			status: http.StatusMethodNotAllowed, kind: "request",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if c.setup != nil {
				c.setup()
			}
			rec, resp := doJSON(t, h, c.method, c.path, c.body)
			if rec.Code != c.status {
				t.Fatalf("status %d, want %d (body %s)", rec.Code, c.status, rec.Body.String())
			}
			if resp["kind"] != c.kind {
				t.Fatalf("kind %v, want %q (body %s)", resp["kind"], c.kind, rec.Body.String())
			}
			if resp["error"] == "" {
				t.Fatal("missing error message")
			}
		})
	}
}

// TestHTTPStatsAndHealth: the observability endpoints respond.
func TestHTTPStatsAndHealth(t *testing.T) {
	svc := newTestService(t, Config{}, 200)
	h := svc.Handler()
	if _, err := svc.Query(httptest.NewRequest("GET", "/", nil).Context(), `SELECT empnum FROM emptab LIMIT 1`); err != nil {
		t.Fatal(err)
	}
	rec, stats := doJSON(t, h, http.MethodGet, "/stats", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("/stats: %d", rec.Code)
	}
	if stats["queries"].(float64) != 1 {
		t.Fatalf("/stats queries = %v, want 1", stats["queries"])
	}
	if _, ok := stats["cache"].(map[string]any); !ok {
		t.Fatalf("/stats missing cache block: %v", stats)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "ok") {
		t.Fatalf("/healthz: %d %q", rec.Code, rec.Body.String())
	}
}

// TestHTTPTableNameCase: table names resolve case-insensitively in the
// catalog, so a query's outcome never depends on cache state — any case
// variant succeeds cold, and alias case is preserved per request (case
// variants get distinct cache slots).
func TestHTTPTableNameCase(t *testing.T) {
	svc := newTestService(t, Config{}, 100)
	h := svc.Handler()
	rec, resp := doJSON(t, h, http.MethodPost, "/query", `{"sql": "SELECT empnum AS E FROM EMPTAB LIMIT 1"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("uppercase table name on a cold cache: %d %s", rec.Code, rec.Body.String())
	}
	if cols, _ := resp["columns"].([]any); len(cols) != 1 || cols[0] != "E" {
		t.Fatalf("columns = %v, want [E]", resp["columns"])
	}
	// A case variant succeeds too, with its own alias spelling — it must
	// not be served the cached "E" schema.
	rec, resp = doJSON(t, h, http.MethodPost, "/query", `{"sql": "SELECT empnum AS e FROM emptab LIMIT 1"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("lowercase variant: %d %s", rec.Code, rec.Body.String())
	}
	if cols, _ := resp["columns"].([]any); len(cols) != 1 || cols[0] != "e" {
		t.Fatalf("columns = %v, want the request's own alias [e]", resp["columns"])
	}
	// Identical text does hit.
	rec, resp = doJSON(t, h, http.MethodPost, "/query", `{"sql": "SELECT empnum AS e FROM emptab LIMIT 1"}`)
	if rec.Code != http.StatusOK || resp["cache_hit"] != true {
		t.Fatalf("identical repeat should hit: %d hit=%v", rec.Code, resp["cache_hit"])
	}
}
