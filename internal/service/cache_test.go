package service

import (
	"context"
	"fmt"
	"testing"

	"repro"
	"repro/internal/datagen"
)

func newCacheEngine(t *testing.T) *windowdb.Engine {
	t.Helper()
	eng := windowdb.New(windowdb.Config{SortMemBytes: 1 << 20, Parallelism: 1})
	eng.Register("web_sales", datagen.WebSales(datagen.WebSalesConfig{Rows: 200, Seed: 1}))
	return eng
}

// TestPlanCacheFPIndexBoundedByLiveEntries: evicting a cache entry sweeps
// its fingerprint links, so arbitrarily long statement churn cannot grow
// the index past the live entries.
func TestPlanCacheFPIndexBoundedByLiveEntries(t *testing.T) {
	eng := newCacheEngine(t)
	prep, err := eng.Prepare(mixQ1)
	if err != nil {
		t.Fatal(err)
	}
	const capacity = 4
	c := newPlanCache(capacity)
	for i := 0; i < 50*capacity; i++ {
		key := fmt.Sprintf("k%d", i)
		c.put(key, prep)
		c.linkFP(fmt.Sprintf("fp%d", i), key)
	}
	c.mu.Lock()
	live, links := c.order.Len(), len(c.fpIndex)
	c.mu.Unlock()
	if live > capacity {
		t.Fatalf("cache holds %d entries past capacity %d", live, capacity)
	}
	if links > live {
		t.Fatalf("fp index holds %d links for %d live entries — eviction left dangling links", links, live)
	}
	gen := prep.Generation()
	if _, ok := c.getFP("fp0", gen); ok {
		t.Fatal("fingerprint of an evicted key resolved")
	}
	if _, ok := c.getFP(fmt.Sprintf("fp%d", 50*capacity-1), gen); !ok {
		t.Fatal("fingerprint of a live key missed")
	}
}

// TestPlanCacheFPIndexInvalidationSweep: the generation sweep that drops
// stale plans drops their fingerprint links too.
func TestPlanCacheFPIndexInvalidationSweep(t *testing.T) {
	eng := newCacheEngine(t)
	stale, err := eng.Prepare(mixQ1)
	if err != nil {
		t.Fatal(err)
	}
	eng.Register("web_sales", datagen.WebSales(datagen.WebSalesConfig{Rows: 200, Seed: 2}))
	fresh, err := eng.Prepare(mixQ1)
	if err != nil {
		t.Fatal(err)
	}

	c := newPlanCache(8)
	c.put("stale", stale)
	c.linkFP("fp-stale", "stale")
	c.put("fresh", fresh)
	c.linkFP("fp-fresh", "fresh")

	if _, ok := c.get("fresh", fresh.Generation()); !ok {
		t.Fatal("fresh entry missed") // this lookup runs the generation sweep
	}
	c.mu.Lock()
	_, hasStale := c.fpIndex["fp-stale"]
	_, hasFresh := c.fpIndex["fp-fresh"]
	c.mu.Unlock()
	if hasStale {
		t.Fatal("invalidated entry's fingerprint link survived the sweep")
	}
	if !hasFresh {
		t.Fatal("live entry's fingerprint link was swept")
	}
}

// TestPlanCacheFPLinksPerEntry: one hot key cannot grow an unbounded
// fingerprint tail — the oldest link recycles past the bound.
func TestPlanCacheFPLinksPerEntry(t *testing.T) {
	eng := newCacheEngine(t)
	prep, err := eng.Prepare(mixQ1)
	if err != nil {
		t.Fatal(err)
	}
	c := newPlanCache(4)
	c.put("hot", prep)
	for i := 0; i < 3*fpLinksPerEntry; i++ {
		c.linkFP(fmt.Sprintf("fp%d", i), "hot")
	}
	c.mu.Lock()
	links := len(c.fpIndex)
	c.mu.Unlock()
	if links > fpLinksPerEntry {
		t.Fatalf("one entry holds %d links, bound is %d", links, fpLinksPerEntry)
	}
	if _, ok := c.getFP(fmt.Sprintf("fp%d", 3*fpLinksPerEntry-1), prep.Generation()); !ok {
		t.Fatal("newest fingerprint link missed")
	}
}

// TestNormalizeSQL: the cache key collapses spacing, comments, keyword
// case and redundant identifier quoting, while preserving everything
// semantic — identifier case, string contents, quoted keywords.
func TestNormalizeSQL(t *testing.T) {
	exact := []struct{ in, want string }{
		{"select *  from\tweb_sales", "SELECT * FROM web_sales"},
		{`SELECT "ws_item_sk" FROM "web_sales"`, "SELECT ws_item_sk FROM web_sales"},
		{"SELECT * FROM t -- trailing comment\nWHERE a = 1", "SELECT * FROM t WHERE a = 1"},
		{"SELECT 'it''s  spaced' FROM t", "SELECT 'it''s  spaced' FROM t"},
		{`SELECT "order" FROM t`, `SELECT "order" FROM t`},  // quoted keyword stays quoted
		{`SELECT "a b" FROM t`, `SELECT "a b" FROM t`},      // non-identifier content stays quoted
		{`SELECT x"y" FROM t`, "SELECT x y FROM t"},         // adjacent quoted ident is not concatenation
		{"SELECT $ FROM", "SELECT $ FROM"},                  // unlexable: deterministic fallback
		{"SELECT  $\n FROM 'a  b'", "SELECT $ FROM 'a  b'"}, // fallback still collapses outside quotes
		{`SELECT $ "a  b"`, `SELECT $ "a  b"`},              // ...and not inside quoted identifiers
	}
	for _, tc := range exact {
		if got := NormalizeSQL(tc.in); got != tc.want {
			t.Errorf("NormalizeSQL(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}

	same := [][2]string{
		{"SELECT  *\nFROM web_sales", "select * from web_sales"},
		{`SELECT "ws_item_sk", rank() OVER (PARTITION BY "ws_item_sk" ORDER BY ws_sold_time_sk) AS r FROM web_sales`, mixQ1},
		{"SELECT a FROM t -- dashboard 7\n", "SELECT a FROM t"},
	}
	for _, p := range same {
		if NormalizeSQL(p[0]) != NormalizeSQL(p[1]) {
			t.Errorf("keys differ for equivalent statements:\n  %q -> %q\n  %q -> %q",
				p[0], NormalizeSQL(p[0]), p[1], NormalizeSQL(p[1]))
		}
	}

	distinct := [][2]string{
		{"SELECT x AS E FROM t", "SELECT x AS e FROM t"}, // alias case is semantic
		{"SELECT 'a' FROM t", "SELECT 'A' FROM t"},
		{`SELECT "order" FROM t`, `SELECT "ORDER" FROM t`},
		{`SELECT x"y" FROM t`, "SELECT xy FROM t"},
	}
	for _, p := range distinct {
		if NormalizeSQL(p[0]) == NormalizeSQL(p[1]) {
			t.Errorf("distinct statements share key %q:\n  %q\n  %q", NormalizeSQL(p[0]), p[0], p[1])
		}
	}
}

// TestQuotedIdentifierQuery: a statement spelled with quoted identifiers
// executes and keys to the same cached plan as its bare spelling.
func TestQuotedIdentifierQuery(t *testing.T) {
	svc := newTestService(t, Config{Slots: 2}, 500)
	quoted := `SELECT "ws_item_sk", rank() OVER (PARTITION BY "ws_item_sk" ORDER BY "ws_sold_time_sk") AS r FROM "web_sales"`

	ctx := context.Background()
	bare, err := svc.Query(ctx, mixQ1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := svc.Query(ctx, quoted)
	if err != nil {
		t.Fatalf("quoted-identifier statement failed: %v", err)
	}
	if !res.CacheHit {
		t.Fatal("quoted spelling missed the plan cached under the bare spelling")
	}
	assertSameMultiset(t, quoted, bare.Table, res.Table)
}
