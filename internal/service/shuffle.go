package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	windowdb "repro"
	"repro/internal/attrs"
	"repro/internal/exec"
	"repro/internal/sql"
	"repro/internal/storage"
	"repro/internal/trace"
)

// The node half of the cluster's shuffle data plane (the coordinator half
// lives in internal/shard): per-segment distributed execution of
// key-divergent window chains. The coordinator splits a statement's chain
// at its key-divergence points (sql.SegmentPlan) and drives one round per
// non-final stage: every node runs the stage over its current rows
// (RunShuffleStep) and re-shuffles the output directly to its peers,
// hash-partitioned on the next segment's key — rows never transit the
// coordinator. Peers ingest into a per-service shuffle inbox keyed by
// (shuffle id, round); the next round's stage consumes its inbox buffer
// whole (the coordinator barriers rounds, so a consumed buffer is always
// complete). The final segment streams its projected output back through
// StreamSegment, which the coordinator merge-concatenates exactly as the
// scatter route does.
//
// Memory discipline: a node's resident shuffle state is its own partition
// of the intermediate rows — the same order of magnitude as its registered
// table partition — and the coordinator holds only the final merge's
// in-flight rows. Slot discipline: each RunShuffleStep holds the node's
// admission slot for the stage's chain execution; StreamSegment holds it
// for the cursor lifetime, exactly like every other streamed query.

// ShuffleBatch is one sender's contribution to one inbox buffer: the rows
// of the receiver's hash partition, tagged with their round and sender so
// the receiver can account completeness.
type ShuffleBatch struct {
	ID     string
	Round  int
	Sender int
	Cols   []storage.Column
	Rows   []storage.Tuple
}

// ShuffleSend delivers one batch to peer (a shard index). The in-process
// cluster wires this straight into the peer services' inboxes; the HTTP
// handler builds an NDJSON POST to the peer's /shard/shuffle route.
type ShuffleSend func(ctx context.Context, peer int, b *ShuffleBatch) error

// ShuffleRunRequest asks a node to execute one non-final shuffle stage.
type ShuffleRunRequest struct {
	SQL string `json:"sql"`
	// Plan is the coordinator's segmentation decision; every node executes
	// the shipped step order (sql.SegmentPlan).
	Plan *sql.SegmentPlan `json:"plan"`
	// Segment is the segment to execute, or -1 for the raw stage: WHERE
	// filtering only, shuffling the statement's base rows onto the first
	// segment's key when the shard key does not already cover it.
	Segment int `json:"segment"`
	// Source is "local" (the node's registered partition) or "inbox" (the
	// shuffle buffer the previous round delivered).
	Source string `json:"source"`
	// ShuffleID names the query's shuffle state on every node.
	ShuffleID string `json:"shuffle_id"`
	// Round is the stage index: the inbox generation consumed when Source
	// is "inbox"; the stage's output is delivered to Round+1.
	Round int `json:"round"`
	// Senders is the cluster width: the expected sender count of every
	// inbox buffer and the partition count of the stage's output.
	Senders int `json:"senders"`
	// OutKey is the hash key the output rows partition on (base-schema
	// column indices): the next segment's common key.
	OutKey []int `json:"out_key"`
	// Peers are the nodes' base URLs for the HTTP data plane; Peers[Self]
	// is this node. Unused when Deliver is set.
	Peers []string `json:"peers,omitempty"`
	// Self is this node's shard index.
	Self int `json:"self"`
	// Fingerprint is the coordinator's plan fingerprint of SQL
	// (sql.Fingerprint); "" resolves by text.
	Fingerprint string `json:"fp,omitempty"`
	// TraceID joins the stage to the coordinator's distributed trace; ""
	// leaves the stage untraced.
	TraceID string `json:"trace_id,omitempty"`
	// Codec selects the wire codec for this stage's peer deliveries
	// ("json" or "binary"; "" means binary). The ingest route accepts
	// both regardless, keyed on the request content type.
	Codec string `json:"codec,omitempty"`
	// Deliver overrides peer delivery for in-process nodes. Never
	// serialized: a remote node builds its own NDJSON sender from Peers.
	Deliver ShuffleSend `json:"-"`
}

// ShuffleRunResult reports one executed stage: row flow plus the execution
// observations the coordinator aggregates.
type ShuffleRunResult struct {
	RowsIn        int64 `json:"rows_in"`
	RowsOut       int64 `json:"rows_out"`
	CacheHit      bool  `json:"cache_hit"`
	BlocksRead    int64 `json:"blocks_read"`
	BlocksWritten int64 `json:"blocks_written"`
	Comparisons   int64 `json:"comparisons"`

	// Per-phase wall-clock breakdown of the stage, for the coordinator's
	// shuffle-round trace spans: admission wait, input acquisition (local
	// base filter, or the wait-free inbox take whose cost is the rows a
	// slow peer has not yet delivered — by the round barrier it is the
	// take itself), segment chain execution, and partition + peer
	// delivery.
	QueuedMillis  float64 `json:"queued_ms"`
	InputMillis   float64 `json:"input_ms"`
	ExecMillis    float64 `json:"exec_ms"`
	DeliverMillis float64 `json:"deliver_ms"`
}

// shuffleInbox is a service's buffered shuffle state: one buffer per
// (shuffle id, round), each accumulating rows from every peer until the
// consuming stage takes it. Dropped shuffle ids leave a bounded tombstone
// trail so a straggler delivery racing the coordinator's cleanup — a peer
// still streaming when the drop lands — cannot silently re-create a
// deleted buffer that nothing would ever consume.
type shuffleInbox struct {
	mu      sync.Mutex
	bufs    map[string]*shuffleBuf
	dropped map[string]bool // recently dropped shuffle ids (tombstones)
	dropLog []string        // FIFO bounding dropped to shuffleTombstones
}

// shuffleTombstones bounds the remembered dropped ids: stragglers arrive
// within the failing round's cancellation window, so a short memory is
// enough, and the bound keeps a long-lived node from accumulating one
// entry per failed query forever.
const shuffleTombstones = 256

// tombstone records id as dropped. Caller holds in.mu.
func (in *shuffleInbox) tombstone(id string) {
	if in.dropped == nil {
		in.dropped = make(map[string]bool)
	}
	if in.dropped[id] {
		return
	}
	in.dropped[id] = true
	in.dropLog = append(in.dropLog, id)
	if len(in.dropLog) > shuffleTombstones {
		delete(in.dropped, in.dropLog[0])
		in.dropLog = in.dropLog[1:]
	}
}

type shuffleBuf struct {
	rows    []storage.Tuple
	arity   int
	senders map[int]bool // senders whose delivery completed
	touched time.Time    // last append/finish; drives the TTL sweep
}

func shuffleKey(id string, round int) string { return fmt.Sprintf("%s/%d", id, round) }

func (in *shuffleInbox) buf(id string, round int) *shuffleBuf {
	if in.bufs == nil {
		in.bufs = make(map[string]*shuffleBuf)
	}
	key := shuffleKey(id, round)
	b := in.bufs[key]
	if b == nil {
		b = &shuffleBuf{senders: make(map[int]bool)}
		in.bufs[key] = b
	}
	b.touched = time.Now()
	return b
}

// sweep drops buffers untouched for ttl: the node-side backstop for a
// coordinator that died (or whose cleanup drop never arrived) between
// delivering a round and consuming it — the only other way a buffer is
// freed is its take or an explicit drop. Caller holds in.mu; ttl 0
// disables.
func (in *shuffleInbox) sweep(ttl time.Duration) {
	if ttl <= 0 {
		return
	}
	cutoff := time.Now().Add(-ttl)
	for key, b := range in.bufs {
		if b.touched.Before(cutoff) {
			delete(in.bufs, key)
		}
	}
}

// sweepShuffle expires idle inbox buffers; called lazily from shuffle
// operations and Stats.
func (s *Service) sweepShuffle() {
	s.inbox.mu.Lock()
	s.inbox.sweep(s.cfg.ShuffleTTL)
	s.inbox.mu.Unlock()
}

// appendShuffle ingests a chunk of rows into a buffer; callers mark the
// sender complete with finishShuffle once its stream ends. arity pins the
// row width so a malformed sender fails fast instead of corrupting the
// buffer.
func (s *Service) appendShuffle(id string, round, arity int, rows []storage.Tuple) error {
	s.inbox.mu.Lock()
	defer s.inbox.mu.Unlock()
	s.inbox.sweep(s.cfg.ShuffleTTL)
	if s.inbox.dropped[id] {
		return fmt.Errorf("service: shuffle %s was dropped", id)
	}
	b := s.inbox.buf(id, round)
	if b.arity == 0 {
		b.arity = arity
	}
	if arity != b.arity {
		return fmt.Errorf("service: shuffle %s round %d: row arity %d != %d", id, round, arity, b.arity)
	}
	b.rows = append(b.rows, rows...)
	return nil
}

// finishShuffle records that a sender's delivery for (id, round) is
// complete, even when it contributed no rows.
func (s *Service) finishShuffle(id string, round, sender, arity int) error {
	s.inbox.mu.Lock()
	defer s.inbox.mu.Unlock()
	if s.inbox.dropped[id] {
		return fmt.Errorf("service: shuffle %s was dropped", id)
	}
	b := s.inbox.buf(id, round)
	if b.arity == 0 {
		b.arity = arity
	}
	if b.senders[sender] {
		return fmt.Errorf("service: shuffle %s round %d: sender %d delivered twice", id, round, sender)
	}
	b.senders[sender] = true
	return nil
}

// ShuffleAccept ingests one whole peer batch: the in-process delivery path
// (the HTTP route ingests incrementally through appendShuffle instead).
func (s *Service) ShuffleAccept(ctx context.Context, b *ShuffleBatch) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if len(b.Rows) > 0 {
		if err := s.appendShuffle(b.ID, b.Round, len(b.Cols), b.Rows); err != nil {
			return err
		}
	}
	return s.finishShuffle(b.ID, b.Round, b.Sender, len(b.Cols))
}

// takeShuffle removes and returns the buffer for (id, round) as a table
// with the given schema. The coordinator barriers rounds, so an incomplete
// buffer — missing senders, wrong arity — is a coordination fault.
func (s *Service) takeShuffle(id string, round, senders int, schema *storage.Schema) (*storage.Table, error) {
	s.inbox.mu.Lock()
	defer s.inbox.mu.Unlock()
	key := shuffleKey(id, round)
	b := s.inbox.bufs[key]
	if b == nil {
		return nil, fmt.Errorf("service: shuffle %s round %d: no buffered input", id, round)
	}
	delete(s.inbox.bufs, key)
	if len(b.senders) != senders {
		return nil, fmt.Errorf("service: shuffle %s round %d: %d of %d senders delivered", id, round, len(b.senders), senders)
	}
	if b.arity != 0 && b.arity != schema.Len() {
		return nil, fmt.Errorf("service: shuffle %s round %d: row arity %d != schema arity %d", id, round, b.arity, schema.Len())
	}
	t := storage.NewTable(schema)
	t.Rows = b.rows
	return t, nil
}

// ShuffleDrop discards every buffered round of shuffle id — the
// coordinator's cleanup path when a stage fails or a query is abandoned
// mid-shuffle — and tombstones the id so a peer delivery still in flight
// when the drop lands is rejected instead of re-creating a buffer nothing
// will ever consume.
func (s *Service) ShuffleDrop(id string) {
	s.inbox.mu.Lock()
	defer s.inbox.mu.Unlock()
	s.inbox.tombstone(id)
	prefix := id + "/"
	for key := range s.inbox.bufs {
		if len(key) > len(prefix) && key[:len(prefix)] == prefix {
			delete(s.inbox.bufs, key)
		}
	}
}

// ShuffleBuffered returns the number of buffered shuffle rounds; tests
// assert it returns to zero after failures and cancellations.
func (s *Service) ShuffleBuffered() int {
	s.inbox.mu.Lock()
	defer s.inbox.mu.Unlock()
	return len(s.inbox.bufs)
}

// RunShuffleStep executes one non-final shuffle stage: resolve the
// statement (plan cache), take the stage's input (local partition or inbox
// buffer), run the segment's chain steps under an admission slot, hash-
// partition the output on the next segment's key and deliver every
// partition to its peer through send (req.Deliver when send is nil). It
// returns when every peer has ingested its partition, which is what lets
// the coordinator barrier rounds. A failed delivery cancels the remaining
// sends.
func (s *Service) RunShuffleStep(ctx context.Context, req ShuffleRunRequest, send ShuffleSend) (*ShuffleRunResult, error) {
	if send == nil {
		send = req.Deliver
	}
	if send == nil {
		return nil, errors.New("service: shuffle stage without a delivery path")
	}
	if req.Senders < 1 || req.Plan == nil {
		return nil, errors.New("service: malformed shuffle stage request")
	}
	var entry *trace.QueryEntry
	fail := func(err error) (*ShuffleRunResult, error) {
		if entry.Killed() {
			s.metrics.aborted.Add(1)
		} else {
			s.metrics.failures.Add(1)
		}
		return nil, err
	}
	prep, hit, err := s.resolveFP(req.SQL, req.Fingerprint)
	if err != nil {
		return fail(err)
	}
	runner, err := prep.Segments(req.Plan)
	if err != nil {
		return fail(err)
	}
	if req.Segment >= runner.Segments()-1 {
		return fail(fmt.Errorf("service: shuffle stage for segment %d of %d: the final segment streams", req.Segment, runner.Segments()))
	}

	// Node-side lifecycle visibility: the stage registers under the
	// coordinator's trace ID, so the coordinator's /debug/queries merge
	// finds it and a fanned-out kill fires this cancel between phases.
	ctx, kill := context.WithCancel(ctx)
	defer kill()
	entry = s.reg.Register(req.TraceID, req.SQL, s.role(), trace.ClientFromContext(ctx), kill)
	defer s.reg.Remove(entry)
	live := entry.Live()
	ctx = trace.WithLive(ctx, live)
	phase := fmt.Sprintf("shuffle raw round %d", req.Round)
	if req.Segment >= 0 {
		phase = fmt.Sprintf("segment %d of %d", req.Segment+1, runner.Segments())
	}
	live.SetPhase("queued")

	// The stage's chain execution is a full chain-memory consumer; it takes
	// an admission slot like any other execution, released synchronously
	// when the stage (sends included) finishes.
	phaseStart := time.Now()
	if _, err := s.gov.acquire(ctx); err != nil {
		if errors.Is(err, ErrOverloaded) {
			s.metrics.rejected.Add(1)
		}
		return fail(err)
	}
	s.metrics.beginExec()
	defer func() {
		s.gov.release()
		s.metrics.endExec()
	}()
	s.metrics.shuffleRounds.Add(1)
	live.RaiseMemPeak(1)
	live.SetPhase(phase)
	queuedMillis := phaseMillis(&phaseStart)

	var in *storage.Table
	switch req.Source {
	case "local":
		in, err = runner.FilterBase(ctx)
	case "inbox":
		if req.Segment < 0 {
			err = errors.New("service: raw shuffle stage cannot read the inbox")
		} else {
			in, err = s.takeShuffle(req.ShuffleID, req.Round, req.Senders, runner.InputSchema(req.Segment))
		}
	default:
		err = fmt.Errorf("service: unknown shuffle source %q", req.Source)
	}
	if err != nil {
		return fail(err)
	}

	res := &ShuffleRunResult{
		RowsIn: int64(in.Len()), CacheHit: hit,
		QueuedMillis: queuedMillis, InputMillis: phaseMillis(&phaseStart),
	}
	out := in
	if req.Segment >= 0 {
		var m *exec.Metrics
		out, m, err = runner.Run(ctx, req.Segment, in)
		if err != nil {
			return fail(err)
		}
		if m != nil {
			res.BlocksRead = m.BlocksRead
			res.BlocksWritten = m.BlocksWritten
			res.Comparisons = m.Comparisons
		}
	}
	res.RowsOut = int64(out.Len())
	res.ExecMillis = phaseMillis(&phaseStart)

	ids := make([]attrs.ID, len(req.OutKey))
	for i, c := range req.OutKey {
		if c < 0 || c >= out.Schema.Len() {
			return fail(fmt.Errorf("service: shuffle key column %d outside the stage output schema", c))
		}
		ids[i] = attrs.ID(c)
	}
	parts := exec.PartitionRows(out.Rows, ids, req.Senders)

	// Deliver every partition concurrently; the first failure cancels the
	// peers' streams so a doomed round does not keep shipping rows.
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make([]error, req.Senders)
	var wg sync.WaitGroup
	for peer := 0; peer < req.Senders; peer++ {
		wg.Add(1)
		go func(peer int) {
			defer wg.Done()
			b := &ShuffleBatch{
				ID: req.ShuffleID, Round: req.Round + 1, Sender: req.Self,
				Cols: out.Schema.Columns, Rows: parts[peer],
			}
			if err := send(sctx, peer, b); err != nil {
				errs[peer] = err
				cancel()
			}
		}(peer)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil && !errors.Is(err, context.Canceled) {
			return fail(err)
		}
	}
	if err := errors.Join(errs...); err != nil {
		return fail(err)
	}
	res.DeliverMillis = phaseMillis(&phaseStart)
	live.AddShuffleRows(res.RowsOut)
	return res, nil
}

// phaseMillis reports the milliseconds since *start and advances it: the
// phase clock RunShuffleStep reads between its stages.
func phaseMillis(start *time.Time) float64 {
	now := time.Now()
	d := now.Sub(*start)
	*start = now
	return float64(d) / float64(time.Millisecond)
}

// StreamSegment serves the final shuffle segment as a streaming cursor: the
// last rounds' inbox buffer runs through the segment's chain steps and the
// statement's projection, with the node's admission slot held for the
// cursor lifetime — the shuffle sibling of StreamShardLocal. DISTINCT,
// ORDER BY and LIMIT stay with the coordinator's finalize, as on the
// scatter route.
func (s *Service) StreamSegment(ctx context.Context, req ShardQueryRequest) (*windowdb.Rows, error) {
	if req.Plan == nil {
		return nil, errors.New("service: segment stream without a segment plan")
	}
	return s.streamCursor(ctx, req.SQL, req.SQL, req.Fingerprint, "draining", func(ctx context.Context, prep *sql.Prepared) (execCursor, error) {
		runner, err := prep.Segments(req.Plan)
		if err != nil {
			return nil, err
		}
		in, err := s.takeShuffle(req.ShuffleID, req.Round, req.Senders, runner.InputSchema(runner.Segments()-1))
		if err != nil {
			return nil, err
		}
		return runner.StreamFinal(ctx, in)
	})
}
