package service

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/trace"
)

// TestMetricsExposition is the golden check for the Prometheus text
// exposition: after a couple of queries, /metrics must carry every
// required family with HELP/TYPE headers, parseable sample values, and a
// latency histogram whose cumulative buckets are monotone and terminate
// in +Inf matching _count.
func TestMetricsExposition(t *testing.T) {
	svc := newTestService(t, Config{Slots: 2}, 2000)
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, err := svc.Query(ctx, mixQ1); err != nil {
			t.Fatal(err)
		}
	}

	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q is not the exposition format", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	lines := strings.Split(strings.TrimSpace(body), "\n")

	// Every non-comment line must parse as `name{labels} value`.
	sample := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [^ ]+$`)
	for _, line := range lines {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !sample.MatchString(line) {
			t.Fatalf("malformed sample line %q", line)
		}
	}

	for _, fam := range []string{
		"windowdb_queries_total",
		"windowdb_query_failures_total",
		"windowdb_query_rejected_total",
		"windowdb_rows_out_total",
		"windowdb_plan_cache_hits_total",
		"windowdb_in_flight",
		"windowdb_admission_slots",
		"windowdb_uptime_seconds",
		"windowdb_query_duration_seconds",
	} {
		if !strings.Contains(body, "# HELP "+fam+" ") {
			t.Errorf("missing HELP for %s", fam)
		}
		if !strings.Contains(body, "# TYPE "+fam+" ") {
			t.Errorf("missing TYPE for %s", fam)
		}
	}

	if !strings.Contains(body, "windowdb_queries_total 2") {
		t.Errorf("queries_total should read 2:\n%s", body)
	}

	// Histogram: buckets cumulative and monotone, +Inf == _count == 2.
	var prev float64
	var bucketLines int
	var infSeen bool
	for _, line := range lines {
		if !strings.HasPrefix(line, "windowdb_query_duration_seconds_bucket{") {
			continue
		}
		bucketLines++
		fields := strings.Fields(line)
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			t.Fatalf("bucket value in %q: %v", line, err)
		}
		if v < prev {
			t.Fatalf("bucket counts not monotone at %q (%v < %v)", line, v, prev)
		}
		prev = v
		if strings.Contains(line, `le="+Inf"`) {
			infSeen = true
			if v != 2 {
				t.Fatalf("+Inf bucket = %v, want 2", v)
			}
		}
	}
	if bucketLines < 2 || !infSeen {
		t.Fatalf("histogram exposition incomplete (%d bucket lines, inf=%v)", bucketLines, infSeen)
	}
	if !strings.Contains(body, "windowdb_query_duration_seconds_count 2") {
		t.Errorf("histogram _count should read 2")
	}
	if !strings.Contains(body, "windowdb_query_duration_seconds_sum ") {
		t.Errorf("histogram _sum missing")
	}
}

// TestDebugTraceEndpoint exercises the ring-backed /debug/trace surface:
// a served query lands in the ring, is listable newest-first, and
// fetchable by the ID the response advertised.
func TestDebugTraceEndpoint(t *testing.T) {
	svc := newTestService(t, Config{Slots: 1}, 2000)
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/query", "application/json",
		strings.NewReader(`{"sql":"`+mixQ1+`","max_rows":1}`))
	if err != nil {
		t.Fatal(err)
	}
	id := resp.Header.Get(trace.HeaderTraceID)
	var qr struct {
		TraceID string `json:"trace_id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if id == "" || qr.TraceID != id {
		t.Fatalf("trace ID header %q vs body %q", id, qr.TraceID)
	}

	list, err := http.Get(srv.URL + "/debug/trace/")
	if err != nil {
		t.Fatal(err)
	}
	var recent []*trace.Trace
	if err := json.NewDecoder(list.Body).Decode(&recent); err != nil {
		t.Fatal(err)
	}
	list.Body.Close()
	if len(recent) == 0 || recent[0].ID != id {
		t.Fatalf("recent traces %v missing query %s", recent, id)
	}

	one, err := http.Get(srv.URL + "/debug/trace/" + id)
	if err != nil {
		t.Fatal(err)
	}
	var tr trace.Trace
	if err := json.NewDecoder(one.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	one.Body.Close()
	if tr.ID != id || tr.Root == nil {
		t.Fatalf("trace %s came back without a span tree: %+v", id, tr)
	}
	found := false
	for _, c := range tr.Root.Children {
		if c.Name == "execute" {
			found = true
		}
	}
	if !found {
		t.Fatalf("span tree lacks an execute child: %v", trace.Render(tr.Root))
	}

	if missing, err := http.Get(srv.URL + "/debug/trace/ffffffffffffffff"); err != nil {
		t.Fatal(err)
	} else {
		missing.Body.Close()
		if missing.StatusCode != http.StatusNotFound {
			t.Fatalf("unknown trace ID: %s, want 404", missing.Status)
		}
	}
}

// TestTraceIDJoinsCaller pins wire propagation: a caller-supplied
// X-Windowdb-Trace-Id must be adopted, echoed, and used as the recorded
// trace's ID instead of a freshly minted one.
func TestTraceIDJoinsCaller(t *testing.T) {
	svc := newTestService(t, Config{Slots: 1}, 2000)
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/query",
		strings.NewReader(`{"sql":"`+mixQ1+`","max_rows":1}`))
	req.Header.Set(trace.HeaderTraceID, "cafecafecafecafe")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(trace.HeaderTraceID); got != "cafecafecafecafe" {
		t.Fatalf("echoed trace ID %q", got)
	}
	if svc.Traces().Get("cafecafecafecafe") == nil {
		t.Fatal("caller-supplied trace ID not joined")
	}
}

// TestServeTraceRingLimit: the /debug/trace/ listing is newest-first and
// ?limit= bounds it — capped at the ring's capacity, defaulting to 32,
// with ?n= as the legacy spelling and junk values falling back to the
// default.
func TestServeTraceRingLimit(t *testing.T) {
	ring := trace.NewRing(4)
	for i := 0; i < 6; i++ {
		ring.Add(&trace.Trace{ID: "t" + strconv.Itoa(i)})
	}
	list := func(query string) []trace.Trace {
		t.Helper()
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodGet, "/debug/trace/"+query, nil)
		ServeTraceRing(rec, req, ring, "/debug/trace/")
		if rec.Code != http.StatusOK {
			t.Fatalf("GET /debug/trace/%s: %d", query, rec.Code)
		}
		var out []trace.Trace
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			t.Fatalf("listing is not JSON: %v", err)
		}
		return out
	}

	got := list("?limit=2")
	if len(got) != 2 || got[0].ID != "t5" || got[1].ID != "t4" {
		t.Fatalf("limit=2 listing = %+v, want [t5 t4]", got)
	}
	// The ring holds 4 traces (t2..t5 after eviction); any larger limit —
	// explicit or the default — is capped at its capacity.
	for _, q := range []string{"", "?limit=9999", "?limit=bogus", "?limit=-3"} {
		if got := list(q); len(got) != 4 || got[0].ID != "t5" || got[3].ID != "t2" {
			t.Fatalf("listing %q = %+v, want the full ring [t5..t2]", q, got)
		}
	}
	if got := list("?n=1"); len(got) != 1 || got[0].ID != "t5" {
		t.Fatalf("legacy n=1 listing = %+v, want [t5]", got)
	}
}
