package service

import (
	"context"
	"strings"
	"testing"
	"time"

	windowdb "repro"
	"repro/internal/datagen"
	"repro/internal/storage"
)

func shuffleTestService() *Service {
	eng := windowdb.New(windowdb.Config{SortMemBytes: 1 << 20, Parallelism: 1})
	eng.Register("web_sales", datagen.WebSales(datagen.WebSalesConfig{Rows: 100, Seed: 1}))
	return New(eng, Config{})
}

func testBatch(id string, round, sender int, n int) *ShuffleBatch {
	cols := []storage.Column{{Name: "a", Type: storage.TypeInt}}
	rows := make([]storage.Tuple, n)
	for i := range rows {
		rows[i] = storage.Tuple{storage.Int(int64(i))}
	}
	return &ShuffleBatch{ID: id, Round: round, Sender: sender, Cols: cols, Rows: rows}
}

// TestShuffleInboxRoundTrip: batches accumulate per (id, round), take
// requires completeness, and a consumed buffer is gone.
func TestShuffleInboxRoundTrip(t *testing.T) {
	s := shuffleTestService()
	ctx := context.Background()
	if err := s.ShuffleAccept(ctx, testBatch("q1", 1, 0, 3)); err != nil {
		t.Fatal(err)
	}
	if err := s.ShuffleAccept(ctx, testBatch("q1", 1, 1, 0)); err != nil {
		t.Fatal(err)
	}
	// Incomplete: only 2 of 3 senders delivered.
	schema := storage.NewSchema(storage.Column{Name: "a", Type: storage.TypeInt})
	if _, err := s.takeShuffle("q1", 1, 3, schema); err == nil {
		t.Fatal("take of an incomplete buffer must fail")
	}
	// takeShuffle removed the buffer even on failure; re-deliver fully.
	for sender := 0; sender < 2; sender++ {
		if err := s.ShuffleAccept(ctx, testBatch("q1", 1, sender, 2)); err != nil {
			t.Fatal(err)
		}
	}
	tab, err := s.takeShuffle("q1", 1, 2, schema)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 4 {
		t.Fatalf("took %d rows, want 4", tab.Len())
	}
	if got := s.ShuffleBuffered(); got != 0 {
		t.Fatalf("%d buffers left after take", got)
	}
	// Duplicate sender delivery is rejected.
	if err := s.ShuffleAccept(ctx, testBatch("q2", 1, 0, 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.ShuffleAccept(ctx, testBatch("q2", 1, 0, 1)); err == nil {
		t.Fatal("duplicate sender must be rejected")
	}
}

// TestShuffleDropTombstone: a delivery landing after the coordinator's
// cleanup drop must be rejected, not silently re-create the buffer — the
// straggler race of a peer still streaming when a failed query's drop
// arrives.
func TestShuffleDropTombstone(t *testing.T) {
	s := shuffleTestService()
	ctx := context.Background()
	if err := s.ShuffleAccept(ctx, testBatch("doomed", 1, 0, 5)); err != nil {
		t.Fatal(err)
	}
	s.ShuffleDrop("doomed")
	if got := s.ShuffleBuffered(); got != 0 {
		t.Fatalf("%d buffers left after drop", got)
	}
	err := s.ShuffleAccept(ctx, testBatch("doomed", 2, 1, 5))
	if err == nil || !strings.Contains(err.Error(), "dropped") {
		t.Fatalf("straggler after drop: err = %v, want dropped rejection", err)
	}
	if got := s.ShuffleBuffered(); got != 0 {
		t.Fatalf("straggler re-created %d buffers past the tombstone", got)
	}
	// A fresh shuffle id is unaffected.
	if err := s.ShuffleAccept(ctx, testBatch("fresh", 1, 0, 1)); err != nil {
		t.Fatal(err)
	}
	s.ShuffleDrop("fresh")
}

// TestShuffleBufferTTL: a buffer whose coordinator died (no take, no
// drop) expires after the configured idle TTL — swept lazily by Stats and
// by later shuffle activity — so nodes cannot leak intermediate rows
// forever.
func TestShuffleBufferTTL(t *testing.T) {
	eng := windowdb.New(windowdb.Config{SortMemBytes: 1 << 20, Parallelism: 1})
	s := New(eng, Config{ShuffleTTL: 10 * time.Millisecond})
	ctx := context.Background()
	if err := s.ShuffleAccept(ctx, testBatch("orphan", 1, 0, 8)); err != nil {
		t.Fatal(err)
	}
	if got := s.ShuffleBuffered(); got != 1 {
		t.Fatalf("buffered = %d, want 1", got)
	}
	time.Sleep(30 * time.Millisecond)
	s.Stats() // the periodic sweep trigger
	if got := s.ShuffleBuffered(); got != 0 {
		t.Fatalf("buffered = %d after TTL sweep, want 0", got)
	}
	// Negative TTL disables expiry.
	s2 := New(eng, Config{ShuffleTTL: -1})
	if err := s2.ShuffleAccept(ctx, testBatch("kept", 1, 0, 1)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)
	s2.Stats()
	if got := s2.ShuffleBuffered(); got != 1 {
		t.Fatalf("buffered = %d with expiry disabled, want 1", got)
	}
}
