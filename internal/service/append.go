package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"repro"
	"repro/internal/catalog"
	"repro/internal/storage"
	"repro/internal/stream"
)

// The ingestion surface: POST /append applies one batch of rows to a
// registered table, bumping its data generation (prepared plans survive —
// only the schema generation invalidates them) and waking every SUBSCRIBE
// cursor on the table. Two body encodings, negotiated by Content-Type
// exactly like the response streams:
//
//	application/json                  {"table":"ws","rows":[[{"i":"1"},...],...],"watermark":0}
//	application/x-windowdb-frame      header frame (columns), columnar row batches
//
// The response is JSON either way: {"table","start_rid","rows_appended",
// "watermark"}. The watermark request field (or ?watermark= for binary
// bodies) is the cluster coordinator's generation lower bound; plain
// clients leave it 0.

// AppendRequest is the JSON /append body.
type AppendRequest struct {
	Table string        `json:"table"`
	Rows  [][]WireValue `json:"rows"`
	// Watermark is a lower bound on the data generation this append lands
	// at — a cluster coordinator assigns one generation per logical append
	// and ships it to every owning node so replicas converge. 0 for plain
	// clients.
	Watermark uint64 `json:"watermark,omitempty"`
}

// AppendResponse is the JSON /append (and Client.Append) response.
type AppendResponse struct {
	Table        string `json:"table"`
	StartRid     int64  `json:"start_rid"`
	RowsAppended int    `json:"rows_appended"`
	Watermark    uint64 `json:"watermark"`
}

// Append applies one batch of rows to a registered table through the
// engine — validation, data-generation bump, subscription wake — and
// meters it. atLeast is the coordinator-assigned watermark lower bound
// (0 locally).
func (s *Service) Append(ctx context.Context, table string, rows []storage.Tuple, atLeast uint64) (startRid int64, watermark uint64, err error) {
	if err := ctx.Err(); err != nil {
		return 0, 0, err
	}
	start, wm, err := s.eng.AppendAt(table, rows, atLeast)
	if err != nil {
		s.metrics.failures.Add(1)
		return 0, 0, err
	}
	s.metrics.appends.Add(1)
	s.metrics.rowsAppended.Add(uint64(len(rows)))
	return start, wm, nil
}

// DecodeAppendBody decodes a POST /append request into its metadata and
// rows: the JSON shape by default, the binary columnar frame shape when
// the Content-Type says so (table and watermark then ride the query
// string). Shared by the single-engine route and the cluster
// coordinator's front door.
func DecodeAppendBody(r *http.Request) (AppendRequest, []storage.Tuple, error) {
	var req AppendRequest
	var rows []storage.Tuple
	if strings.Contains(r.Header.Get("Content-Type"), ContentTypeBinary) {
		req.Table = r.URL.Query().Get("table")
		if wmStr := r.URL.Query().Get("watermark"); wmStr != "" {
			wm, err := strconv.ParseUint(wmStr, 10, 64)
			if err != nil {
				return req, nil, fmt.Errorf("service: bad watermark %q: %w", wmStr, err)
			}
			req.Watermark = wm
		}
		var err error
		rows, err = readAppendFrames(r.Body)
		if err != nil {
			return req, nil, err
		}
	} else {
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			return req, nil, fmt.Errorf("service: bad append body: %w", err)
		}
		rows = make([]storage.Tuple, len(req.Rows))
		for i, wr := range req.Rows {
			t := make(storage.Tuple, len(wr))
			for j, v := range wr {
				t[j] = v.V
			}
			rows[i] = t
		}
	}
	if req.Table == "" {
		return req, nil, errors.New("service: append without a table name")
	}
	if len(rows) == 0 {
		return req, nil, errors.New("service: append without rows")
	}
	return req, rows, nil
}

// handleAppend is the POST /append route.
func (s *Service) handleAppend(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		writeError(w, http.StatusMethodNotAllowed, "request", errors.New("service: use POST"))
		return
	}
	req, rows, err := DecodeAppendBody(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "request", err)
		return
	}
	start, wm, err := s.Append(r.Context(), req.Table, rows, req.Watermark)
	if err != nil {
		status, kind := AppendStatus(err)
		writeError(w, status, kind, err)
		return
	}
	writeJSON(w, http.StatusOK, AppendResponse{
		Table: req.Table, StartRid: start, RowsAppended: len(rows), Watermark: wm,
	})
}

// AppendStatus maps an append error onto the HTTP status taxonomy:
// unknown table keeps its 404, and any other would-be-500 is a validation
// failure from catalog.Append (arity, column type) — the client's fault,
// not an engine fault — so it becomes a 400 "append".
func AppendStatus(err error) (status int, kind string) {
	status, kind = StatusFor(err)
	if status == http.StatusInternalServerError && !errors.Is(err, catalog.ErrUnknownTable) {
		status, kind = http.StatusBadRequest, "append"
	}
	return status, kind
}

// readAppendFrames decodes a binary append body: a header frame naming the
// columns (arity only — type validation is the catalog's), then columnar
// row batches until EOF or a trailer frame.
func readAppendFrames(body io.Reader) ([]storage.Tuple, error) {
	fr := stream.NewFrameReader(body)
	f, err := fr.Next()
	if err != nil {
		return nil, fmt.Errorf("service: reading append header frame: %w", err)
	}
	if f.Type != stream.FrameHeader {
		return nil, fmt.Errorf("service: first append frame is %c, want header", f.Type)
	}
	var h streamHeader
	if err := json.Unmarshal(f.Payload, &h); err != nil {
		return nil, fmt.Errorf("service: bad append header %q: %w", f.Payload, err)
	}
	arity := len(h.Columns)
	if arity == 0 {
		return nil, errors.New("service: append header names no columns")
	}
	var rows []storage.Tuple
	for {
		f, err := fr.Next()
		if err == io.EOF {
			return rows, nil
		}
		if err != nil {
			return nil, fmt.Errorf("service: reading append frames: %w", err)
		}
		switch f.Type {
		case stream.FrameBatch:
			b, err := stream.DecodeBatch(f.Payload, arity)
			if err != nil {
				return nil, fmt.Errorf("service: bad append batch: %w", err)
			}
			rows = append(rows, b.Tuples()...)
		case stream.FrameTrailer:
			return rows, nil
		default:
			return nil, fmt.Errorf("service: unexpected %c frame in append body", f.Type)
		}
	}
}

// Append ships one batch of rows to the server's /append route (JSON
// body). The returned watermark is the table's new data generation — the
// value SUBSCRIBE trailers and delta rows report.
func (c *Client) Append(ctx context.Context, table string, rows []storage.Tuple) (AppendResponse, error) {
	req := AppendRequest{Table: table, Rows: make([][]WireValue, len(rows))}
	for i, row := range rows {
		wr := make([]WireValue, len(row))
		for j, v := range row {
			wr[j] = WireValue{V: v}
		}
		req.Rows[i] = wr
	}
	var resp AppendResponse
	buf, err := json.Marshal(req)
	if err != nil {
		return resp, fmt.Errorf("service: encode append: %w", err)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/append", strings.NewReader(string(buf)))
	if err != nil {
		return resp, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hres, err := c.hc.Do(hreq)
	if err != nil {
		return resp, fmt.Errorf("service: %s/append: %w", c.base, err)
	}
	defer hres.Body.Close()
	if hres.StatusCode/100 != 2 {
		return resp, DecodeRemoteError(c.base+"/append", hres)
	}
	if err := json.NewDecoder(hres.Body).Decode(&resp); err != nil {
		return resp, fmt.Errorf("service: decode append response: %w", err)
	}
	return resp, nil
}

// Subscribe opens a live maintained cursor over src on the server: the
// initial result streams first (rows tagged "init" in the _op column),
// then the cursor blocks and delta rows arrive as appends land. Cancel ctx
// or Close the Rows to end it. src may carry the SUBSCRIBE prefix or not.
func (c *Client) Subscribe(ctx context.Context, src string) (*windowdb.Rows, error) {
	if _, ok := windowdb.StripSubscribe(src); !ok {
		src = "SUBSCRIBE " + src
	}
	return c.QueryContext(ctx, src)
}
