// Package paper defines the exact workloads of the paper's Section 6:
// the micro-benchmark queries Q1–Q5 (Table 1) and the multi-window queries
// Q6–Q9 (Tables 3, 5, 7, 9), expressed over the web_sales schema of
// internal/datagen. Attribute abbreviations follow Table 2: date = sold
// date, time = sold time, ship = ship date, item, bill = bill customer.
package paper

import (
	"repro/internal/attrs"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/window"
)

// Attribute IDs in the web_sales schema (Table 2 abbreviations).
const (
	Date      = attrs.ID(datagen.ColSoldDate)
	Time      = attrs.ID(datagen.ColSoldTime)
	Ship      = attrs.ID(datagen.ColShipDate)
	Item      = attrs.ID(datagen.ColItem)
	Bill      = attrs.ID(datagen.ColBill)
	Warehouse = attrs.ID(datagen.ColWarehouse)
	Quantity  = attrs.ID(datagen.ColQuantity)
)

// rankSpec builds a rank() window spec; pkOrder preserves the written
// PARTITION BY order for the PSQL baseline.
func rankSpec(name string, pkOrder []attrs.ID, ok ...attrs.ID) window.Spec {
	return window.Spec{
		Name:    name,
		Kind:    window.Rank,
		Arg:     -1,
		PK:      attrs.MakeSet(pkOrder...),
		PKOrder: attrs.AscSeq(pkOrder...),
		OK:      attrs.AscSeq(ok...),
	}
}

// MicroQuery is one of Table 1's single-function queries.
type MicroQuery struct {
	Name    string
	Table   string // web_sales, web_sales_s or web_sales_g
	Spec    window.Spec
	Comment string
}

// MicroQueries returns Q1–Q5 (Table 1).
func MicroQueries() []MicroQuery {
	return []MicroQuery{
		{
			Name: "Q1", Table: "web_sales",
			Spec:    rankSpec("rank", []attrs.ID{Item}, Time),
			Comment: "medium number of window partitions (D(item))",
		},
		{
			Name: "Q2", Table: "web_sales",
			Spec:    rankSpec("rank", []attrs.ID{Item, Bill}, Time),
			Comment: "extremely large number of window partitions (D(item,bill))",
		},
		{
			Name: "Q3", Table: "web_sales",
			Spec:    rankSpec("rank", []attrs.ID{Warehouse}, Time),
			Comment: "extremely small number of window partitions (16)",
		},
		{
			Name: "Q4", Table: "web_sales_s",
			Spec:    rankSpec("rank", []attrs.ID{Quantity}, Item),
			Comment: "input sorted on ws_quantity: SS applicable",
		},
		{
			Name: "Q5", Table: "web_sales_g",
			Spec:    rankSpec("rank", []attrs.ID{Quantity}, Item),
			Comment: "input grouped on ws_quantity: SS applicable",
		},
	}
}

// Q6 returns Table 3's window functions.
func Q6() []window.Spec {
	return []window.Spec{
		rankSpec("wf1", []attrs.ID{Item}, Date),
		rankSpec("wf2", []attrs.ID{Item}, Bill),
	}
}

// Q7 returns Table 5's window functions (the running example of the Oracle
// report [5]).
func Q7() []window.Spec {
	return []window.Spec{
		rankSpec("wf1", []attrs.ID{Date, Time, Ship}),
		rankSpec("wf2", []attrs.ID{Time, Date}),
		rankSpec("wf3", []attrs.ID{Item}),
		rankSpec("wf4", nil, Item, Bill),
		rankSpec("wf5", []attrs.ID{Date, Time, Item, Bill}, Ship),
	}
}

// Q8 returns Table 7's window functions (Q7 with item moved from WOK4 into
// WPK4 and bill moved from WPK5 into WOK5).
func Q8() []window.Spec {
	return []window.Spec{
		rankSpec("wf1", []attrs.ID{Date, Time, Ship}),
		rankSpec("wf2", []attrs.ID{Time, Date}),
		rankSpec("wf3", []attrs.ID{Item}),
		rankSpec("wf4", []attrs.ID{Item}, Bill),
		rankSpec("wf5", []attrs.ID{Date, Time, Item}, Bill, Ship),
	}
}

// Q9 returns Table 9's window functions.
func Q9() []window.Spec {
	return []window.Spec{
		rankSpec("wf1", []attrs.ID{Item}, Bill, Date),
		rankSpec("wf2", []attrs.ID{Item, Time}, Date),
		rankSpec("wf3", []attrs.ID{Item}, Time),
		rankSpec("wf4", nil, Item, Date),
		rankSpec("wf5", []attrs.ID{Bill, Date}, Time),
		rankSpec("wf6", []attrs.ID{Bill}, Time),
		rankSpec("wf7", []attrs.ID{Date, Time}),
		rankSpec("wf8", nil, Time),
	}
}

// WFs converts specs to the optimizer's view, IDs by SELECT position.
func WFs(specs []window.Spec) []core.WF {
	out := make([]core.WF, len(specs))
	for i, s := range specs {
		out[i] = s.WF(i)
	}
	return out
}

// PaperStats approximates the statistics of the paper's scale-factor-100
// web_sales instance (72M tuples, 14.3GB), for cost-model documentation
// tests: D(item) = 204000, D(item,bill) = 71976736, D(warehouse) = 16.
func PaperStats() core.CostParams {
	distinct := map[attrs.Set]int64{
		attrs.MakeSet(Item):       204_000,
		attrs.MakeSet(Item, Bill): 71_976_736,
		attrs.MakeSet(Warehouse):  16,
		attrs.MakeSet(Bill):       1_900_000,
		attrs.MakeSet(Date):       1_823,
		attrs.MakeSet(Time):       86_400,
		attrs.MakeSet(Ship):       1_823,
		attrs.MakeSet(Quantity):   100,
	}
	return core.CostParams{
		TableBlocks: 1_875_000, // 14.3GB / 8KB
		TableTuples: 72_000_000,
		MemBlocks:   6_400, // 50MB
		BlockSize:   8192,
		Distinct: func(set attrs.Set) int64 {
			if d, ok := distinct[set]; ok {
				return d
			}
			// Product of singleton estimates, capped by the table.
			prod := int64(1)
			for _, id := range set.IDs() {
				if d, ok := distinct[attrs.MakeSet(id)]; ok {
					prod *= d
				} else {
					prod *= 100
				}
				if prod > 72_000_000 {
					return 72_000_000
				}
			}
			return prod
		},
	}
}
