// Package csvio loads and stores tables as CSV with type inference,
// backing the windsql/windgen tools and external-data workflows.
package csvio

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/storage"
)

// Read parses CSV with a header row into a table. Column types are inferred
// from the first non-empty cell per column (int, then float, else string);
// empty cells are NULL.
func Read(r io.Reader) (*storage.Table, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // tolerate ragged rows; missing cells are NULL
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("csvio: read header: %w", err)
	}
	var records [][]string
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("csvio: %w", err)
		}
		records = append(records, rec)
	}
	cols := make([]storage.Column, len(header))
	for i, name := range header {
		cols[i] = storage.Column{Name: name, Type: inferType(records, i)}
	}
	t := storage.NewTable(storage.NewSchema(cols...))
	t.Rows = make([]storage.Tuple, 0, len(records))
	for _, rec := range records {
		row := make(storage.Tuple, len(cols))
		for i := range cols {
			cell := ""
			if i < len(rec) {
				cell = rec[i]
			}
			row[i] = parseCell(cell, cols[i].Type)
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Write emits the table as CSV with a header row; NULLs become empty cells.
func Write(w io.Writer, t *storage.Table) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Schema.Names()); err != nil {
		return fmt.Errorf("csvio: %w", err)
	}
	rec := make([]string, t.Schema.Len())
	for _, row := range t.Rows {
		for i, v := range row {
			if v.IsNull() {
				rec[i] = ""
			} else {
				rec[i] = v.String()
			}
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("csvio: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("csvio: %w", err)
	}
	return nil
}

func inferType(records [][]string, col int) storage.ColumnType {
	for _, rec := range records {
		if col >= len(rec) || rec[col] == "" {
			continue
		}
		if _, err := strconv.ParseInt(rec[col], 10, 64); err == nil {
			return storage.TypeInt
		}
		if _, err := strconv.ParseFloat(rec[col], 64); err == nil {
			return storage.TypeFloat
		}
		return storage.TypeString
	}
	return storage.TypeString
}

func parseCell(cell string, typ storage.ColumnType) storage.Value {
	if cell == "" {
		return storage.Null
	}
	switch typ {
	case storage.TypeInt:
		if v, err := strconv.ParseInt(cell, 10, 64); err == nil {
			return storage.Int(v)
		}
	case storage.TypeFloat:
		if v, err := strconv.ParseFloat(cell, 64); err == nil {
			return storage.Float(v)
		}
	}
	return storage.StringVal(cell)
}
