package csvio

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/storage"
)

func TestReadTypeInference(t *testing.T) {
	in := strings.NewReader("id,price,name,flag\n1,2.5,apple,\n2,3.0,pear,x\n,,,,\n")
	tbl, err := Read(in)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Schema.Columns[0].Type != storage.TypeInt {
		t.Errorf("id type = %s", tbl.Schema.Columns[0].Type)
	}
	if tbl.Schema.Columns[1].Type != storage.TypeFloat {
		t.Errorf("price type = %s", tbl.Schema.Columns[1].Type)
	}
	if tbl.Schema.Columns[2].Type != storage.TypeString {
		t.Errorf("name type = %s", tbl.Schema.Columns[2].Type)
	}
	if tbl.Len() != 3 {
		t.Fatalf("rows = %d", tbl.Len())
	}
	if !tbl.Rows[0][3].IsNull() {
		t.Errorf("empty cell should be NULL")
	}
	if !tbl.Rows[2][0].IsNull() || !tbl.Rows[2][1].IsNull() {
		t.Errorf("all-empty row should be all NULL")
	}
	if tbl.Rows[1][2].Str() != "pear" {
		t.Errorf("string cell = %s", tbl.Rows[1][2])
	}
}

func TestRoundTrip(t *testing.T) {
	orig := datagen.Emptab()
	var buf bytes.Buffer
	if err := Write(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != orig.Len() || back.Schema.Len() != orig.Schema.Len() {
		t.Fatalf("shape changed: %d×%d", back.Len(), back.Schema.Len())
	}
	for i := range orig.Rows {
		for c := range orig.Rows[i] {
			if !storage.Equal(back.Rows[i][c], orig.Rows[i][c]) {
				t.Fatalf("row %d col %d: %s != %s", i, c, back.Rows[i][c], orig.Rows[i][c])
			}
		}
	}
}

func TestReadErrors(t *testing.T) {
	if _, err := Read(strings.NewReader("")); err == nil {
		t.Errorf("empty input should fail (no header)")
	}
	if _, err := Read(strings.NewReader("a,b\n\"unterminated")); err == nil {
		t.Errorf("malformed CSV should fail")
	}
}

func TestHeaderOnly(t *testing.T) {
	tbl, err := Read(strings.NewReader("a,b,c\n"))
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 0 || tbl.Schema.Len() != 3 {
		t.Fatalf("header-only table shape: %d×%d", tbl.Len(), tbl.Schema.Len())
	}
}
