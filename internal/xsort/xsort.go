// Package xsort implements the external merge sort underlying all three
// reordering operators of the paper: replacement-selection run formation
// (expected run length 2M, Section 3.4) followed by F-way merging, with a
// fully in-memory fast path when the input fits in the sort budget.
//
// All spill traffic goes through a pagestore.Store so experiments observe
// exact block-I/O counts, and every key comparison is counted, giving the
// second currency of the paper's cost analysis (Section 3.4's
// O(n log(n/k)) vs O(n log n) argument for Segmented Sort).
package xsort

import (
	"fmt"
	"sort"

	"repro/internal/attrs"
	"repro/internal/pagestore"
	"repro/internal/storage"
)

// Input supplies tuples one at a time; it returns false when exhausted.
type Input func() (storage.Tuple, bool)

// SliceInput adapts a tuple slice to an Input.
func SliceInput(tuples []storage.Tuple) Input {
	i := 0
	return func() (storage.Tuple, bool) {
		if i >= len(tuples) {
			return nil, false
		}
		t := tuples[i]
		i++
		return t, true
	}
}

// RunFormation selects the run-formation algorithm.
type RunFormation uint8

const (
	// ReplacementSelection forms runs of expected length 2M with a
	// tournament heap (the paper's assumption in Eq. 1).
	ReplacementSelection RunFormation = iota
	// LoadSortStore forms runs of length M by fill-sort-spill; provided for
	// the ablation benchmark on run formation policy.
	LoadSortStore
)

// Sorter configures one external sort. The zero value is not usable; set at
// least Key and Store. MemoryBytes ≤ 0 means "unlimited" (always in-memory).
type Sorter struct {
	Key          attrs.Seq
	MemoryBytes  int
	Store        *pagestore.Store
	RunFormation RunFormation

	// Comparisons, if non-nil, accumulates key comparison counts.
	Comparisons *int64
}

// Stats reports what one Sort did.
type Stats struct {
	Tuples      int
	InitialRuns int   // 0 when fully in-memory
	MergePasses int   // intermediate passes that re-materialized runs
	InMemory    bool  // true when no spill occurred
	Comparisons int64 // key comparisons performed by this sort
}

func (s *Sorter) less(a, b storage.Tuple) bool {
	if s.Comparisons != nil {
		*s.Comparisons++
	}
	return storage.CompareSeq(a, b, s.Key) < 0
}

// SortTuples sorts a materialized slice honoring the memory budget: if the
// slice fits in MemoryBytes it is sorted in place, otherwise it is spilled
// and merged externally. It returns the sorted tuples and sort statistics.
func (s *Sorter) SortTuples(tuples []storage.Tuple) ([]storage.Tuple, Stats, error) {
	return s.sort(SliceInput(tuples), len(tuples))
}

// Sort consumes the input and returns the fully sorted tuples. sizeHint may
// be 0 when unknown.
func (s *Sorter) Sort(in Input, sizeHint int) ([]storage.Tuple, Stats, error) {
	return s.sort(in, sizeHint)
}

func (s *Sorter) sort(in Input, sizeHint int) (out []storage.Tuple, st Stats, err error) {
	start := int64(0)
	if s.Comparisons != nil {
		start = *s.Comparisons
	}
	defer func() {
		if s.Comparisons != nil {
			st.Comparisons = *s.Comparisons - start
		}
	}()

	// Phase 0: buffer input until the memory budget is exceeded. If it never
	// is, sort in memory and return.
	var (
		buf      []storage.Tuple
		bufBytes int
	)
	if sizeHint > 0 {
		buf = make([]storage.Tuple, 0, sizeHint)
	}
	overflowed := false
	var pending storage.Tuple
	for {
		t, ok := in()
		if !ok {
			break
		}
		if s.MemoryBytes > 0 && bufBytes+t.Size() > s.MemoryBytes && len(buf) > 0 {
			pending = t
			overflowed = true
			break
		}
		buf = append(buf, t)
		bufBytes += t.Size()
	}
	st.Tuples = len(buf)
	if !overflowed {
		sort.SliceStable(buf, func(i, j int) bool { return s.less(buf[i], buf[j]) })
		st.InMemory = true
		out = buf
		return out, st, nil
	}
	if s.Store == nil {
		return nil, st, fmt.Errorf("xsort: input exceeds memory budget and no spill store configured")
	}

	// Phase 1: run formation over (buffered ∪ pending ∪ rest of input).
	rest := func() (storage.Tuple, bool) {
		if pending != nil {
			t := pending
			pending = nil
			return t, true
		}
		t, ok := in()
		if ok {
			st.Tuples++
		}
		return t, ok
	}
	st.Tuples++ // pending
	var runs []*run
	switch s.RunFormation {
	case LoadSortStore:
		runs, err = s.formRunsLoadSort(buf, rest)
	default:
		runs, err = s.formRunsReplacement(buf, rest)
	}
	if err != nil {
		releaseRuns(runs)
		return nil, st, err
	}
	st.InitialRuns = len(runs)

	// Phase 2: merge down to one logical stream. Intermediate passes
	// re-materialize; the final merge streams directly into the result.
	fanIn := s.mergeOrder()
	for len(runs) > fanIn {
		var next []*run
		for lo := 0; lo < len(runs); lo += fanIn {
			hi := lo + fanIn
			if hi > len(runs) {
				hi = len(runs)
			}
			merged, err := s.mergeToRun(runs[lo:hi])
			if err != nil {
				releaseRuns(runs[lo:])
				releaseRuns(next)
				return nil, st, err
			}
			next = append(next, merged)
		}
		runs = next
		st.MergePasses++
	}
	out, err = s.mergeToSlice(runs, st.Tuples)
	if err != nil {
		return nil, st, err
	}
	return out, st, nil
}

// mergeOrder returns F, the number of runs merged simultaneously: one input
// page per run plus one output page must fit in the budget.
func (s *Sorter) mergeOrder() int {
	bs := s.Store.BlockSize()
	f := s.MemoryBytes/bs - 1
	if f < 2 {
		f = 2
	}
	return f
}

type run struct {
	file *pagestore.File
}

func releaseRuns(runs []*run) {
	for _, r := range runs {
		if r != nil && r.file != nil {
			r.file.Release()
		}
	}
}
