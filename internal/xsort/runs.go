package xsort

import (
	"container/heap"
	"sort"

	"repro/internal/spill"
	"repro/internal/storage"
)

// formRunsReplacement forms initial runs with replacement selection: a heap
// of (runID, tuple) keeps emitting the smallest tuple of the current run;
// incoming tuples that sort below the last emitted key are deferred to the
// next run. Expected run length is 2M for random input (the assumption
// behind Eq. 1 of the paper), and already-sorted input yields a single run.
//
// buf holds the tuples that filled the memory budget; next supplies the rest.
func (s *Sorter) formRunsReplacement(buf []storage.Tuple, next Input) ([]*run, error) {
	h := &rsHeap{sorter: s}
	h.items = make([]rsItem, 0, len(buf))
	for _, t := range buf {
		h.items = append(h.items, rsItem{run: 0, tuple: t})
	}
	heap.Init(h)

	var (
		runs    []*run
		writer  *spill.Writer
		current = 0
		last    storage.Tuple
		err     error
	)
	closeCurrent := func() error {
		if writer == nil {
			return nil
		}
		f, err := writer.Finish()
		if err != nil {
			return err
		}
		runs = append(runs, &run{file: f})
		writer = nil
		return nil
	}
	for h.Len() > 0 {
		item := h.items[0]
		if item.run != current {
			if err = closeCurrent(); err != nil {
				releaseRuns(runs)
				return nil, err
			}
			current = item.run
			last = nil
		}
		if writer == nil {
			writer, err = spill.NewWriter(s.Store)
			if err != nil {
				releaseRuns(runs)
				return nil, err
			}
		}
		heap.Pop(h)
		if err = writer.Write(item.tuple); err != nil {
			releaseRuns(runs)
			return nil, err
		}
		last = item.tuple
		if t, ok := next(); ok {
			it := rsItem{run: current, tuple: t}
			if s.less(t, last) {
				it.run = current + 1
			}
			heap.Push(h, it)
		}
	}
	if err = closeCurrent(); err != nil {
		releaseRuns(runs)
		return nil, err
	}
	return runs, nil
}

// rsItem is a heap entry: ordering is (run, key) so the current run drains
// before the next run begins.
type rsItem struct {
	run   int
	tuple storage.Tuple
}

type rsHeap struct {
	items  []rsItem
	sorter *Sorter
}

func (h *rsHeap) Len() int { return len(h.items) }
func (h *rsHeap) Less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	if a.run != b.run {
		return a.run < b.run
	}
	return h.sorter.less(a.tuple, b.tuple)
}
func (h *rsHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *rsHeap) Push(x interface{}) { h.items = append(h.items, x.(rsItem)) }
func (h *rsHeap) Pop() interface{} {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}

// formRunsLoadSort is the ablation alternative: fill memory, quicksort,
// spill, repeat. Runs have length M instead of 2M.
func (s *Sorter) formRunsLoadSort(buf []storage.Tuple, next Input) ([]*run, error) {
	var runs []*run
	spillChunk := func(chunk []storage.Tuple) error {
		sort.SliceStable(chunk, func(i, j int) bool { return s.less(chunk[i], chunk[j]) })
		w, err := spill.NewWriter(s.Store)
		if err != nil {
			return err
		}
		for _, t := range chunk {
			if err := w.Write(t); err != nil {
				return err
			}
		}
		f, err := w.Finish()
		if err != nil {
			return err
		}
		runs = append(runs, &run{file: f})
		return nil
	}
	chunk := buf
	bytes := 0
	for _, t := range chunk {
		bytes += t.Size()
	}
	for {
		t, ok := next()
		if !ok {
			break
		}
		if s.MemoryBytes > 0 && bytes+t.Size() > s.MemoryBytes && len(chunk) > 0 {
			if err := spillChunk(chunk); err != nil {
				releaseRuns(runs)
				return nil, err
			}
			chunk = nil
			bytes = 0
		}
		chunk = append(chunk, t)
		bytes += t.Size()
	}
	if len(chunk) > 0 {
		if err := spillChunk(chunk); err != nil {
			releaseRuns(runs)
			return nil, err
		}
	}
	return runs, nil
}

// mergeSource is one leg of a multiway merge.
type mergeSource struct {
	rd    *spill.Reader
	tuple storage.Tuple
}

type mergeHeap struct {
	items  []*mergeSource
	sorter *Sorter
}

func (h *mergeHeap) Len() int { return len(h.items) }
func (h *mergeHeap) Less(i, j int) bool {
	return h.sorter.less(h.items[i].tuple, h.items[j].tuple)
}
func (h *mergeHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *mergeHeap) Push(x interface{}) { h.items = append(h.items, x.(*mergeSource)) }
func (h *mergeHeap) Pop() interface{} {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}

// startMerge opens readers for all runs and primes the heap.
func (s *Sorter) startMerge(runs []*run) (*mergeHeap, error) {
	h := &mergeHeap{sorter: s}
	for _, r := range runs {
		rd, err := spill.NewReader(r.file)
		if err != nil {
			return nil, err
		}
		t, ok, err := rd.Next()
		if err != nil {
			rd.Close()
			return nil, err
		}
		if !ok {
			rd.Close()
			continue
		}
		h.items = append(h.items, &mergeSource{rd: rd, tuple: t})
	}
	heap.Init(h)
	return h, nil
}

// mergeNext pops the globally smallest tuple and advances its source.
func (s *Sorter) mergeNext(h *mergeHeap) (storage.Tuple, bool, error) {
	if h.Len() == 0 {
		return nil, false, nil
	}
	src := h.items[0]
	t := src.tuple
	nt, ok, err := src.rd.Next()
	if err != nil {
		return nil, false, err
	}
	if ok {
		src.tuple = nt
		heap.Fix(h, 0)
	} else {
		src.rd.Close()
		heap.Pop(h)
	}
	return t, true, nil
}

// mergeToRun merges runs into a single re-materialized run.
func (s *Sorter) mergeToRun(runs []*run) (*run, error) {
	h, err := s.startMerge(runs)
	if err != nil {
		return nil, err
	}
	w, err := spill.NewWriter(s.Store)
	if err != nil {
		return nil, err
	}
	for {
		t, ok, err := s.mergeNext(h)
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		if err := w.Write(t); err != nil {
			return nil, err
		}
	}
	releaseRuns(runs)
	f, err := w.Finish()
	if err != nil {
		return nil, err
	}
	return &run{file: f}, nil
}

// mergeToSlice merges the final wave of runs straight into memory (this is
// the pipelined final merge: no output re-materialization).
func (s *Sorter) mergeToSlice(runs []*run, sizeHint int) ([]storage.Tuple, error) {
	h, err := s.startMerge(runs)
	if err != nil {
		return nil, err
	}
	out := make([]storage.Tuple, 0, sizeHint)
	for {
		t, ok, err := s.mergeNext(h)
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		out = append(out, t)
	}
	releaseRuns(runs)
	return out, nil
}
