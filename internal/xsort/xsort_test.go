package xsort

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/attrs"
	"repro/internal/pagestore"
	"repro/internal/storage"
)

func randRows(rng *rand.Rand, n, domain int) []storage.Tuple {
	rows := make([]storage.Tuple, n)
	for i := range rows {
		rows[i] = storage.Tuple{
			storage.Int(rng.Int63n(int64(domain))),
			storage.Int(rng.Int63n(int64(domain))),
			storage.Int(int64(i)), // unique tag for permutation checks
		}
	}
	return rows
}

// multisetEqual compares row multisets via the unique tag column.
func multisetEqual(a, b []storage.Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	seen := make(map[int64]int)
	for _, t := range a {
		seen[t[2].Int64()]++
	}
	for _, t := range b {
		seen[t[2].Int64()]--
	}
	for _, c := range seen {
		if c != 0 {
			return false
		}
	}
	return true
}

func TestSortRegimes(t *testing.T) {
	key := attrs.AscSeq(0, 1)
	for _, tc := range []struct {
		name  string
		mem   int
		rows  int
		block int
	}{
		{"in-memory", 1 << 20, 500, 256},
		{"single-merge", 8192, 2000, 256},
		{"multi-pass", 1024, 5000, 128},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(5))
			rows := randRows(rng, tc.rows, 50)
			stats := &pagestore.Stats{}
			s := &Sorter{
				Key:         key,
				MemoryBytes: tc.mem,
				Store:       pagestore.NewMem(tc.block, stats),
			}
			got, st, err := s.SortTuples(append([]storage.Tuple(nil), rows...))
			if err != nil {
				t.Fatal(err)
			}
			if !storage.SortedOn(got, key) {
				t.Fatalf("output not sorted")
			}
			if !multisetEqual(got, rows) {
				t.Fatalf("output is not a permutation of input")
			}
			if st.Tuples != tc.rows {
				t.Errorf("Tuples = %d, want %d", st.Tuples, tc.rows)
			}
			if tc.name == "in-memory" {
				if !st.InMemory || stats.TotalBlocks() != 0 {
					t.Errorf("in-memory sort spilled: %+v, io=%d", st, stats.TotalBlocks())
				}
			} else {
				if st.InMemory || st.InitialRuns == 0 || stats.TotalBlocks() == 0 {
					t.Errorf("external sort did not spill: %+v", st)
				}
			}
			if tc.name == "multi-pass" && st.MergePasses == 0 {
				t.Errorf("expected materialized merge passes, got %+v", st)
			}
			if tc.name == "single-merge" && st.MergePasses != 0 {
				t.Errorf("expected streaming-only merge, got %d passes", st.MergePasses)
			}
		})
	}
}

// TestReplacementSelectionRunLength — random input yields runs of ≈2M;
// sorted input yields a single run (the classic replacement-selection
// properties Eq. 1 builds on).
func TestReplacementSelectionRunLength(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rows := randRows(rng, 4000, 1_000_000)
	mem := 0
	for _, r := range rows[:200] {
		mem += r.Size()
	}
	s := &Sorter{Key: attrs.AscSeq(0), MemoryBytes: mem, Store: pagestore.NewMem(512, nil)}
	_, st, err := s.SortTuples(append([]storage.Tuple(nil), rows...))
	if err != nil {
		t.Fatal(err)
	}
	// ≈ n/(2·200) = 10 runs; allow generous slack.
	if st.InitialRuns < 6 || st.InitialRuns > 16 {
		t.Errorf("replacement selection runs = %d, want ≈10", st.InitialRuns)
	}

	sorted := append([]storage.Tuple(nil), rows...)
	sort.SliceStable(sorted, func(i, j int) bool {
		return storage.CompareSeq(sorted[i], sorted[j], attrs.AscSeq(0)) < 0
	})
	s2 := &Sorter{Key: attrs.AscSeq(0), MemoryBytes: mem, Store: pagestore.NewMem(512, nil)}
	_, st2, err := s2.SortTuples(sorted)
	if err != nil {
		t.Fatal(err)
	}
	if st2.InitialRuns != 1 {
		t.Errorf("sorted input formed %d runs, want 1", st2.InitialRuns)
	}

	// Load-sort-store forms ≈ n/200 = 20 runs on the same input.
	s3 := &Sorter{Key: attrs.AscSeq(0), MemoryBytes: mem, Store: pagestore.NewMem(512, nil), RunFormation: LoadSortStore}
	_, st3, err := s3.SortTuples(append([]storage.Tuple(nil), rows...))
	if err != nil {
		t.Fatal(err)
	}
	if st3.InitialRuns <= st.InitialRuns {
		t.Errorf("load-sort-store runs (%d) should exceed replacement selection (%d)", st3.InitialRuns, st.InitialRuns)
	}
}

func TestSortStability(t *testing.T) {
	// Equal keys must keep input order in the in-memory path (documented
	// behavior for deterministic tests).
	rows := []storage.Tuple{
		{storage.Int(1), storage.Int(0), storage.Int(0)},
		{storage.Int(1), storage.Int(0), storage.Int(1)},
		{storage.Int(0), storage.Int(0), storage.Int(2)},
	}
	s := &Sorter{Key: attrs.AscSeq(0)}
	got, _, err := s.SortTuples(rows)
	if err != nil {
		t.Fatal(err)
	}
	if got[1][2].Int64() != 0 || got[2][2].Int64() != 1 {
		t.Errorf("in-memory sort not stable: %v", got)
	}
}

func TestSortDescAndNulls(t *testing.T) {
	rows := []storage.Tuple{
		{storage.Null, storage.Int(0), storage.Int(0)},
		{storage.Int(5), storage.Int(0), storage.Int(1)},
		{storage.Int(7), storage.Int(0), storage.Int(2)},
	}
	key := attrs.Seq{{Attr: 0, Desc: true}}
	s := &Sorter{Key: key}
	got, _, err := s.SortTuples(rows)
	if err != nil {
		t.Fatal(err)
	}
	if got[0][0].Int64() != 7 || got[1][0].Int64() != 5 || !got[2][0].IsNull() {
		t.Errorf("desc nulls-last order wrong: %v", got)
	}
	keyNF := attrs.Seq{{Attr: 0, Desc: true, NullsFirst: true}}
	s2 := &Sorter{Key: keyNF}
	got2, _, err := s2.SortTuples(rows)
	if err != nil {
		t.Fatal(err)
	}
	if !got2[0][0].IsNull() {
		t.Errorf("nulls-first order wrong: %v", got2)
	}
}

func TestSortQuick(t *testing.T) {
	key := attrs.AscSeq(0, 1)
	err := quick.Check(func(seed int64, nRaw uint16, memRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%3000) + 1
		rows := randRows(rng, n, 30)
		mem := int(memRaw%8192) + 64
		s := &Sorter{Key: key, MemoryBytes: mem, Store: pagestore.NewMem(256, nil)}
		got, _, err := s.SortTuples(append([]storage.Tuple(nil), rows...))
		if err != nil {
			return false
		}
		return storage.SortedOn(got, key) && multisetEqual(got, rows)
	}, &quick.Config{MaxCount: 60})
	if err != nil {
		t.Error(err)
	}
}

func TestEmptyAndSingle(t *testing.T) {
	s := &Sorter{Key: attrs.AscSeq(0)}
	got, st, err := s.SortTuples(nil)
	if err != nil || len(got) != 0 || !st.InMemory {
		t.Errorf("empty sort: %v %v %v", got, st, err)
	}
	got, _, err = s.SortTuples([]storage.Tuple{{storage.Int(1)}})
	if err != nil || len(got) != 1 {
		t.Errorf("single sort: %v %v", got, err)
	}
}

func TestComparisonsCounted(t *testing.T) {
	var cmps int64
	s := &Sorter{Key: attrs.AscSeq(0), Comparisons: &cmps}
	rows := randRows(rand.New(rand.NewSource(1)), 100, 10)
	_, st, err := s.SortTuples(rows)
	if err != nil {
		t.Fatal(err)
	}
	if cmps == 0 || st.Comparisons != cmps {
		t.Errorf("comparisons not counted: global=%d stats=%d", cmps, st.Comparisons)
	}
}

func ExampleSorter() {
	rows := []storage.Tuple{
		{storage.Int(3)}, {storage.Int(1)}, {storage.Int(2)},
	}
	s := &Sorter{Key: attrs.AscSeq(0)}
	sorted, _, _ := s.SortTuples(rows)
	for _, r := range sorted {
		fmt.Println(r[0])
	}
	// Output:
	// 1
	// 2
	// 3
}
