// Package cli holds the table bootstrap shared by the command-line front
// ends (windsql, windserve): the standard demo tables and CSV loading, so
// the shells stay interchangeable — a query that works in one works in the
// other.
package cli

import (
	"os"

	"repro"
	"repro/internal/csvio"
	"repro/internal/datagen"
)

// RegisterStandardTables registers the demo set every shell serves:
// emptab (Example 1 of the paper) and the generated web_sales with its
// sorted/grouped variants, sized by rows.
func RegisterStandardTables(eng *windowdb.Engine, rows int) {
	eng.Register("emptab", datagen.Emptab())
	gen := datagen.WebSalesConfig{Rows: rows, Seed: 1}
	eng.Register("web_sales", datagen.WebSales(gen))
	eng.Register("web_sales_s", datagen.WebSalesSorted(gen))
	eng.Register("web_sales_g", datagen.WebSalesGrouped(gen))
}

// RegisterCSV loads a CSV file (header row, inferred column types) and
// registers it under name. A path of "" is a no-op.
func RegisterCSV(eng *windowdb.Engine, path, name string) error {
	if path == "" {
		return nil
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	t, err := csvio.Read(f)
	if err != nil {
		return err
	}
	eng.Register(name, t)
	return nil
}
