// Package cli holds the table bootstrap shared by the command-line front
// ends (windsql, windserve): the standard demo tables and CSV loading, so
// the shells stay interchangeable — a query that works in one works in the
// other, whether it lands on a single engine or a sharded cluster.
package cli

import (
	"context"
	"os"

	"repro"
	"repro/internal/csvio"
	"repro/internal/datagen"
	"repro/internal/shard"
	"repro/internal/storage"
)

// RegisterStandardTables registers the demo set every shell serves:
// emptab (Example 1 of the paper) and the generated web_sales with its
// sorted/grouped variants, sized by rows.
func RegisterStandardTables(eng *windowdb.Engine, rows int) {
	eng.Register("emptab", datagen.Emptab())
	gen := datagen.WebSalesConfig{Rows: rows, Seed: 1}
	eng.Register("web_sales", datagen.WebSales(gen))
	eng.Register("web_sales_s", datagen.WebSalesSorted(gen))
	eng.Register("web_sales_g", datagen.WebSalesGrouped(gen))
}

// RegisterStandardTablesSharded distributes the demo set across a
// cluster: web_sales and its variants hash-sharded on ws_item_sk (each
// shard's partition is a subsequence of the original, so the sorted and
// grouped variants keep their SS-enabling structure per shard), emptab —
// the small dimension table — replicated.
func RegisterStandardTablesSharded(ctx context.Context, c *shard.Cluster, rows int) error {
	if err := c.RegisterReplicated(ctx, "emptab", datagen.Emptab()); err != nil {
		return err
	}
	gen := datagen.WebSalesConfig{Rows: rows, Seed: 1}
	for _, t := range []struct {
		name  string
		table *storage.Table
	}{
		{"web_sales", datagen.WebSales(gen)},
		{"web_sales_s", datagen.WebSalesSorted(gen)},
		{"web_sales_g", datagen.WebSalesGrouped(gen)},
	} {
		if err := c.RegisterSharded(ctx, t.name, t.table, "ws_item_sk"); err != nil {
			return err
		}
	}
	return nil
}

// RegisterCSV loads a CSV file (header row, inferred column types) and
// registers it under name. A path of "" is a no-op.
func RegisterCSV(eng *windowdb.Engine, path, name string) error {
	if path == "" {
		return nil
	}
	t, err := readCSV(path)
	if err != nil || t == nil {
		return err
	}
	eng.Register(name, t)
	return nil
}

// RegisterCSVReplicated loads a CSV file and replicates it across a
// cluster. A path of "" is a no-op.
func RegisterCSVReplicated(ctx context.Context, c *shard.Cluster, path, name string) error {
	if path == "" {
		return nil
	}
	t, err := readCSV(path)
	if err != nil || t == nil {
		return err
	}
	return c.RegisterReplicated(ctx, name, t)
}

func readCSV(path string) (*storage.Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return csvio.Read(f)
}
