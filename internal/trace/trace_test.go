package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNewID(t *testing.T) {
	a, b := NewID(), NewID()
	if len(a) != 16 || len(b) != 16 {
		t.Fatalf("want 16-hex IDs, got %q, %q", a, b)
	}
	if a == b {
		t.Fatalf("two minted IDs collided: %q", a)
	}
}

func TestContextRoundTrip(t *testing.T) {
	ctx := context.Background()
	if got := FromContext(ctx); got != "" {
		t.Fatalf("empty context carried trace ID %q", got)
	}
	ctx = NewContext(ctx, "deadbeefdeadbeef")
	if got := FromContext(ctx); got != "deadbeefdeadbeef" {
		t.Fatalf("FromContext = %q", got)
	}
	if got := IDFromContext(ctx); got != "deadbeefdeadbeef" {
		t.Fatalf("IDFromContext = %q, want the carried ID", got)
	}
	if got := IDFromContext(context.Background()); len(got) != 16 {
		t.Fatalf("IDFromContext on empty context minted %q", got)
	}
}

func TestSpanBuilding(t *testing.T) {
	root := New("query", 40*time.Millisecond).SetAttr("route", "shuffle").SetInt("rows", 120)
	root.Add(New("execute", 30*time.Millisecond))
	root.Add(nil) // nil children are dropped, not stored
	if len(root.Children) != 1 {
		t.Fatalf("children = %d, want 1 (nil Add ignored)", len(root.Children))
	}
	if root.Attrs["route"] != "shuffle" || root.Attrs["rows"] != "120" {
		t.Fatalf("attrs = %v", root.Attrs)
	}
	if root.DurationMillis != 40 {
		t.Fatalf("duration = %v ms, want 40", root.DurationMillis)
	}
}

func TestRenderSortedAttrsAndIndent(t *testing.T) {
	root := New("query", 12*time.Millisecond).SetAttr("zeta", "1").SetAttr("alpha", "2")
	root.Add(New("execute", 10*time.Millisecond).SetInt("rows", 5))
	lines := Render(root)
	want := []string{
		"query 12.000ms [alpha=2 zeta=1]",
		"  execute 10.000ms [rows=5]",
	}
	if len(lines) != len(want) {
		t.Fatalf("Render returned %d lines: %q", len(lines), lines)
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Fatalf("line %d = %q, want %q", i, lines[i], want[i])
		}
	}
	if got := Render(nil); got != nil {
		t.Fatalf("Render(nil) = %q, want nil", got)
	}
}

func TestRingFIFOEviction(t *testing.T) {
	r := NewRing(3)
	for i := 0; i < 5; i++ {
		r.Add(&Trace{ID: fmt.Sprintf("id-%d", i)})
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
	for _, evicted := range []string{"id-0", "id-1"} {
		if r.Get(evicted) != nil {
			t.Fatalf("%s survived eviction", evicted)
		}
	}
	for _, kept := range []string{"id-2", "id-3", "id-4"} {
		if r.Get(kept) == nil {
			t.Fatalf("%s missing after partial wrap", kept)
		}
	}
	recent := r.Recent(2)
	if len(recent) != 2 || recent[0].ID != "id-4" || recent[1].ID != "id-3" {
		t.Fatalf("Recent(2) = %v, want newest first", recent)
	}
}

func TestRingNilSafety(t *testing.T) {
	var r *Ring
	r.Add(&Trace{ID: "x"}) // must not panic
	if r.Get("x") != nil || r.Recent(1) != nil || r.Len() != 0 {
		t.Fatal("nil ring should read as empty")
	}
	NewRing(0).Add(nil) // zero capacity clamps, nil trace ignored
}

// TestRingConcurrent hammers one ring from concurrent writers and readers;
// the -race run of this test is the regression gate for the ring's locking.
func TestRingConcurrent(t *testing.T) {
	r := NewRing(8)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(2)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Add(&Trace{ID: fmt.Sprintf("g%d-%d", g, i), Root: New("query", time.Millisecond)})
			}
		}(g)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Get(fmt.Sprintf("g%d-%d", g, i))
				r.Recent(4)
				r.Len()
			}
		}(g)
	}
	wg.Wait()
	if r.Len() != 8 {
		t.Fatalf("Len = %d after saturation, want 8", r.Len())
	}
}

func TestSlowLogger(t *testing.T) {
	var buf bytes.Buffer
	l := NewSlowLogger(&buf, 10*time.Millisecond)
	l.Observe(&Trace{ID: "fast", DurationMillis: 5})
	if buf.Len() != 0 {
		t.Fatalf("fast query logged: %s", buf.String())
	}
	l.Observe(&Trace{
		ID: "slow", SQL: "SELECT 1", DurationMillis: 25,
		Root: New("query", 25*time.Millisecond),
	})
	line := strings.TrimSuffix(buf.String(), "\n")
	if strings.Contains(line, "\n") {
		t.Fatalf("entry spans multiple lines: %q", line)
	}
	var entry SlowLogEntry
	if err := json.Unmarshal([]byte(line), &entry); err != nil {
		t.Fatalf("slow-log line is not JSON: %v (%q)", err, line)
	}
	if entry.Kind != "slow_query" || entry.ID != "slow" || entry.ThresholdMs != 10 || entry.Root == nil {
		t.Fatalf("entry = %+v", entry)
	}
}

func TestSlowLoggerDisabled(t *testing.T) {
	if NewSlowLogger(nil, time.Second) != nil {
		t.Fatal("nil writer should disable the logger")
	}
	if NewSlowLogger(&bytes.Buffer{}, 0) != nil {
		t.Fatal("zero threshold should disable the logger")
	}
	var l *SlowLogger
	l.Observe(&Trace{ID: "x", DurationMillis: 1e6}) // must not panic
}

func TestSpanJSONRoundTrip(t *testing.T) {
	root := New("query", 3*time.Millisecond).SetAttr("route", "scatter")
	root.Add(New("node 0", 2*time.Millisecond).SetInt("rows", 7))
	buf, err := json.Marshal(root)
	if err != nil {
		t.Fatal(err)
	}
	var back Span
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != "query" || len(back.Children) != 1 || back.Children[0].Attrs["rows"] != "7" {
		t.Fatalf("round trip lost structure: %+v", back)
	}
}

// TestSlowLoggerRateCap: a storm of slow queries within one second writes
// at most maxPerSec lines; the overflow is counted, and the count flushes
// onto the first line of the next window so no suppression goes unseen.
func TestSlowLoggerRateCap(t *testing.T) {
	var buf bytes.Buffer
	l := NewSlowLoggerRate(&buf, 10*time.Millisecond, 2)
	for i := 0; i < 5; i++ {
		l.Observe(&Trace{ID: fmt.Sprintf("q%d", i), DurationMillis: 50})
	}
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("storm wrote %d lines, want cap of 2: %q", len(lines), buf.String())
	}
	for _, line := range lines {
		var entry SlowLogEntry
		if err := json.Unmarshal([]byte(line), &entry); err != nil {
			t.Fatalf("slow-log line is not JSON: %v (%q)", err, line)
		}
		if entry.Suppressed != 0 {
			t.Fatalf("in-window line reports %d suppressed, want 0: %q", entry.Suppressed, line)
		}
	}

	// Roll the window back instead of sleeping: the next Observe lands in
	// a fresh second and must carry the 3 swallowed lines.
	l.mu.Lock()
	l.windowStart = l.windowStart.Add(-2 * time.Second)
	l.mu.Unlock()
	buf.Reset()
	l.Observe(&Trace{ID: "after", DurationMillis: 50})
	var entry SlowLogEntry
	if err := json.Unmarshal(bytes.TrimSuffix(buf.Bytes(), []byte("\n")), &entry); err != nil {
		t.Fatalf("post-window line is not JSON: %v (%q)", err, buf.String())
	}
	if entry.ID != "after" || entry.Suppressed != 3 {
		t.Fatalf("post-window entry = %+v, want ID=after Suppressed=3", entry)
	}
}

// TestSlowLoggerUncapped: a negative rate removes the storm guard.
func TestSlowLoggerUncapped(t *testing.T) {
	var buf bytes.Buffer
	l := NewSlowLoggerRate(&buf, 10*time.Millisecond, -1)
	for i := 0; i < 30; i++ {
		l.Observe(&Trace{ID: fmt.Sprintf("q%d", i), DurationMillis: 50})
	}
	if got := strings.Count(buf.String(), "\n"); got != 30 {
		t.Fatalf("uncapped logger wrote %d lines, want 30", got)
	}
}
