// Package trace is the per-query distributed tracing spine: a query gets
// one trace ID at the front door (or carries one in on the wire), every
// layer it crosses — admission, plan cache, chain execution, shuffle
// rounds, node drains — records a span with a duration and a bag of
// attributes, and the coordinator assembles the subtrees that come back
// in stream trailers into one tree per statement.
//
// The model is deliberately small: a Span is a name, a duration in
// milliseconds, string attributes and children. Spans are built from
// measurements already taken (the executor and service have always timed
// these phases), not from live start/stop clocks, so recording a span
// costs one struct append on a path that already holds the numbers.
// Trees serialize as JSON (the trailer and /debug/trace shapes are the
// same) and render as an indented text tree for EXPLAIN ANALYZE, windsql
// and the slow-query log's human side.
package trace

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// HeaderTraceID is the HTTP header that carries a query's trace ID across
// /query, /shard/query and /shard/shuffle/run hops. Absent, the receiving
// layer mints one; present, it joins the caller's trace.
const HeaderTraceID = "X-Windowdb-Trace-Id"

// Span is one timed phase of a query: a name, a duration, optional
// string attributes (cardinalities, reorder kinds, cache dispositions)
// and child phases. The JSON shape is the wire shape — nodes ship their
// subtree back in the stream trailer and the coordinator grafts it under
// its own spans unchanged.
type Span struct {
	Name           string            `json:"name"`
	DurationMillis float64           `json:"duration_ms"`
	Attrs          map[string]string `json:"attrs,omitempty"`
	Children       []*Span           `json:"children,omitempty"`
}

// New builds a span with the given name and measured duration.
func New(name string, d time.Duration) *Span {
	return &Span{Name: name, DurationMillis: Millis(d)}
}

// SetAttr records a key/value attribute, allocating the map lazily.
func (s *Span) SetAttr(key, value string) *Span {
	if s.Attrs == nil {
		s.Attrs = make(map[string]string, 4)
	}
	s.Attrs[key] = value
	return s
}

// SetInt records an integer attribute.
func (s *Span) SetInt(key string, v int64) *Span {
	return s.SetAttr(key, fmt.Sprintf("%d", v))
}

// Add appends a child span and returns it for chaining.
func (s *Span) Add(child *Span) *Span {
	if child != nil {
		s.Children = append(s.Children, child)
	}
	return s
}

// Millis converts a duration to the float milliseconds spans carry.
func Millis(d time.Duration) float64 {
	return float64(d) / float64(time.Millisecond)
}

// Trace is one recorded query: the ID, the statement, when it started,
// how long it took end to end, the terminal error if any, and the
// assembled span tree.
type Trace struct {
	ID             string    `json:"id"`
	SQL            string    `json:"sql,omitempty"`
	Start          time.Time `json:"start"`
	DurationMillis float64   `json:"duration_ms"`
	Error          string    `json:"error,omitempty"`
	Root           *Span     `json:"root,omitempty"`
}

// NewID mints a 16-hex-digit trace ID. It falls back to a counter-free
// constant-entropy read; crypto/rand never fails on supported platforms.
func NewID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// ctxKey keys the trace ID in a context. Only the ID travels by context —
// spans are assembled from measurements after the fact, so nothing else
// needs ambient state.
type ctxKey struct{}

// NewContext returns ctx carrying the trace ID.
func NewContext(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ctxKey{}, id)
}

// FromContext returns the trace ID carried by ctx, or "".
func FromContext(ctx context.Context) string {
	id, _ := ctx.Value(ctxKey{}).(string)
	return id
}

// IDFromContext returns the context's trace ID, minting one when absent.
func IDFromContext(ctx context.Context) string {
	if id := FromContext(ctx); id != "" {
		return id
	}
	return NewID()
}

// Ring is a bounded buffer of recent traces with FIFO eviction, safe for
// concurrent recording and reading. It backs /debug/trace/{id}: the last
// N queries (successes and failures both — a failing node mid-shuffle is
// exactly what the buffer is for) stay inspectable without a collector.
type Ring struct {
	mu   sync.Mutex
	buf  []*Trace
	next int
	full bool
}

// NewRing builds a ring holding up to n traces (minimum 1).
func NewRing(n int) *Ring {
	if n < 1 {
		n = 1
	}
	return &Ring{buf: make([]*Trace, n)}
}

// Add records a trace, evicting the oldest when full.
func (r *Ring) Add(t *Trace) {
	if r == nil || t == nil {
		return
	}
	r.mu.Lock()
	r.buf[r.next] = t
	r.next = (r.next + 1) % len(r.buf)
	if r.next == 0 {
		r.full = true
	}
	r.mu.Unlock()
}

// Get returns the trace with the given ID, or nil.
func (r *Ring) Get(id string) *Trace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, t := range r.buf {
		if t != nil && t.ID == id {
			return t
		}
	}
	return nil
}

// Recent returns up to n traces, newest first.
func (r *Ring) Recent(n int) []*Trace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []*Trace
	size := len(r.buf)
	for i := 0; i < size && (n <= 0 || len(out) < n); i++ {
		idx := (r.next - 1 - i + 2*size) % size
		if t := r.buf[idx]; t != nil {
			out = append(out, t)
		}
	}
	return out
}

// Len reports how many traces the ring currently holds.
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		return len(r.buf)
	}
	return r.next
}

// Cap reports the ring's capacity — the bound for /debug/trace ?limit=.
func (r *Ring) Cap() int {
	if r == nil {
		return 0
	}
	return len(r.buf)
}

// Render flattens a span tree into indented text lines:
//
//	execute 41.2ms [chain=ws --HS--> wf1 -> wf2]
//	  step wf1 HS 30.1ms [rows=120000 spilled=64]
//
// Attributes print sorted for stable output.
func Render(root *Span) []string {
	var lines []string
	var walk func(s *Span, depth int)
	walk = func(s *Span, depth int) {
		if s == nil {
			return
		}
		var b strings.Builder
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(s.Name)
		fmt.Fprintf(&b, " %.3fms", s.DurationMillis)
		if len(s.Attrs) > 0 {
			keys := make([]string, 0, len(s.Attrs))
			for k := range s.Attrs {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			b.WriteString(" [")
			for i, k := range keys {
				if i > 0 {
					b.WriteString(" ")
				}
				fmt.Fprintf(&b, "%s=%s", k, s.Attrs[k])
			}
			b.WriteString("]")
		}
		lines = append(lines, b.String())
		for _, c := range s.Children {
			walk(c, depth+1)
		}
	}
	walk(root, 0)
	return lines
}

// SlowLogEntry is one line of the structured slow-query log: the trace
// with a marker field so `grep slow_query` finds it in mixed stderr.
type SlowLogEntry struct {
	Kind           string  `json:"kind"` // always "slow_query"
	ID             string  `json:"id"`
	SQL            string  `json:"sql,omitempty"`
	DurationMillis float64 `json:"duration_ms"`
	ThresholdMs    float64 `json:"threshold_ms"`
	Error          string  `json:"error,omitempty"`
	// Suppressed counts lines the storm guard dropped since the previous
	// emitted line; carried on the first line that gets through.
	Suppressed int64 `json:"suppressed,omitempty"`
	Root       *Span `json:"root,omitempty"`
}

// DefaultSlowLogRate is the storm guard's default emission cap in lines
// per second.
const DefaultSlowLogRate = 10

// SlowLogger emits one JSON line per query at or over the threshold,
// rate-capped so one overloaded process cannot melt stderr: past
// maxPerSec lines in a one-second window further lines are counted, and
// the count flushes as "suppressed" on the next emitted line. A nil
// SlowLogger, a zero threshold or a nil writer disables it.
type SlowLogger struct {
	mu          sync.Mutex
	w           io.Writer
	threshold   time.Duration
	maxPerSec   int
	windowStart time.Time
	windowCount int
	suppressed  int64
}

// NewSlowLogger builds a slow-query logger with the default rate cap;
// nil when disabled.
func NewSlowLogger(w io.Writer, threshold time.Duration) *SlowLogger {
	return NewSlowLoggerRate(w, threshold, 0)
}

// NewSlowLoggerRate builds a slow-query logger capped at maxPerSec lines
// per second (0 means DefaultSlowLogRate, negative means uncapped); nil
// when disabled.
func NewSlowLoggerRate(w io.Writer, threshold time.Duration, maxPerSec int) *SlowLogger {
	if w == nil || threshold <= 0 {
		return nil
	}
	if maxPerSec == 0 {
		maxPerSec = DefaultSlowLogRate
	}
	return &SlowLogger{w: w, threshold: threshold, maxPerSec: maxPerSec}
}

// Observe logs the trace if its duration meets the threshold and the
// storm guard admits the line.
func (l *SlowLogger) Observe(t *Trace) {
	if l == nil || t == nil || time.Duration(t.DurationMillis*float64(time.Millisecond)) < l.threshold {
		return
	}
	entry := SlowLogEntry{
		Kind: "slow_query", ID: t.ID, SQL: t.SQL,
		DurationMillis: t.DurationMillis,
		ThresholdMs:    Millis(l.threshold),
		Error:          t.Error, Root: t.Root,
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.maxPerSec > 0 {
		now := time.Now()
		if now.Sub(l.windowStart) >= time.Second {
			l.windowStart = now
			l.windowCount = 0
		}
		if l.windowCount >= l.maxPerSec {
			l.suppressed++
			return
		}
		l.windowCount++
		entry.Suppressed = l.suppressed
		l.suppressed = 0
	}
	buf, err := json.Marshal(entry)
	if err != nil {
		return
	}
	buf = append(buf, '\n')
	_, _ = l.w.Write(buf)
}
