package trace

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Live is one in-flight query's progress counters, sampled from the hot
// paths by atomic adds — the executor bumps rows/blocks per chain step,
// the stream writers bump wire bytes per flush, shuffle stages bump
// delivered rows per partition send. All methods are nil-receiver safe so
// paths without a registered query (the engine backend, tests driving
// internals directly) pay one nil check and no allocation.
type Live struct {
	RowsScanned   atomic.Int64
	RowsEmitted   atomic.Int64
	BlocksRead    atomic.Int64
	BlocksWritten atomic.Int64
	ShuffleRows   atomic.Int64
	WireBytes     atomic.Int64
	MemPeak       atomic.Int64

	phase atomic.Pointer[string]
}

// AddRowsScanned counts rows processed by executor chain steps.
func (l *Live) AddRowsScanned(n int64) {
	if l != nil && n != 0 {
		l.RowsScanned.Add(n)
	}
}

// AddRowsEmitted counts rows handed to the query's consumer.
func (l *Live) AddRowsEmitted(n int64) {
	if l != nil && n != 0 {
		l.RowsEmitted.Add(n)
	}
}

// AddBlocks counts spill blocks read and written by reorders.
func (l *Live) AddBlocks(read, written int64) {
	if l == nil {
		return
	}
	if read != 0 {
		l.BlocksRead.Add(read)
	}
	if written != 0 {
		l.BlocksWritten.Add(written)
	}
}

// AddShuffleRows counts rows delivered node-to-node in shuffle rounds.
func (l *Live) AddShuffleRows(n int64) {
	if l != nil && n != 0 {
		l.ShuffleRows.Add(n)
	}
}

// AddWireBytes counts bytes written to the query's response stream.
func (l *Live) AddWireBytes(n int64) {
	if l != nil && n != 0 {
		l.WireBytes.Add(n)
	}
}

// RaiseMemPeak lifts the peak in-flight memory-unit high-water mark (one
// unit = one held admission slot's chain-memory claim).
func (l *Live) RaiseMemPeak(units int64) {
	if l == nil {
		return
	}
	for {
		cur := l.MemPeak.Load()
		if units <= cur || l.MemPeak.CompareAndSwap(cur, units) {
			return
		}
	}
}

// SetPhase records the query's current lifecycle phase ("queued",
// "planning", "segment 2 of 3", "shuffle round 1", "draining", ...).
func (l *Live) SetPhase(phase string) {
	if l != nil {
		l.phase.Store(&phase)
	}
}

// Phase returns the current lifecycle phase.
func (l *Live) Phase() string {
	if l == nil {
		return ""
	}
	if p := l.phase.Load(); p != nil {
		return *p
	}
	return ""
}

// liveKey keys a *Live in a context, riding alongside the trace ID so the
// executor and stream writers can account to the owning query without any
// signature changes on the hot paths.
type liveKey struct{}

// WithLive returns ctx carrying the query's live counters.
func WithLive(ctx context.Context, l *Live) context.Context {
	if l == nil {
		return ctx
	}
	return context.WithValue(ctx, liveKey{}, l)
}

// LiveFromContext returns the live counters carried by ctx, or nil.
func LiveFromContext(ctx context.Context) *Live {
	l, _ := ctx.Value(liveKey{}).(*Live)
	return l
}

// clientKey keys the requesting client's address in a context; HTTP front
// ends set it from RemoteAddr before entering the serving path.
type clientKey struct{}

// WithClient returns ctx carrying the requesting client's address.
func WithClient(ctx context.Context, addr string) context.Context {
	if addr == "" {
		return ctx
	}
	return context.WithValue(ctx, clientKey{}, addr)
}

// ClientFromContext returns the client address carried by ctx, or "".
func ClientFromContext(ctx context.Context) string {
	addr, _ := ctx.Value(clientKey{}).(string)
	return addr
}

// QueryEntry is one registered in-flight query: identity, the stored
// cancel that the kill switch fires, and the live counters.
type QueryEntry struct {
	id      string
	sql     string
	backend string
	client  string
	start   time.Time
	cancel  context.CancelFunc
	killed  atomic.Bool
	live    Live
}

// ID returns the entry's trace ID.
func (e *QueryEntry) ID() string {
	if e == nil {
		return ""
	}
	return e.id
}

// Live returns the entry's counters (nil-safe; a nil entry yields a nil
// Live, whose methods are no-ops).
func (e *QueryEntry) Live() *Live {
	if e == nil {
		return nil
	}
	return &e.live
}

// Kill fires the stored cancel and marks the entry killed, so the owning
// finish path classifies the query as aborted rather than failed.
func (e *QueryEntry) Kill() {
	if e == nil {
		return
	}
	e.killed.Store(true)
	if e.cancel != nil {
		e.cancel()
	}
}

// Killed reports whether the kill switch fired for this entry.
func (e *QueryEntry) Killed() bool {
	return e != nil && e.killed.Load()
}

// Info snapshots the entry for the /debug/queries JSON surface.
func (e *QueryEntry) Info() QueryInfo {
	info := QueryInfo{
		ID:            e.id,
		SQL:           e.sql,
		Backend:       e.backend,
		ClientAddr:    e.client,
		Start:         e.start,
		ElapsedMillis: Millis(time.Since(e.start)),
		Phase:         e.live.Phase(),
		Killed:        e.killed.Load(),
		RowsScanned:   e.live.RowsScanned.Load(),
		RowsEmitted:   e.live.RowsEmitted.Load(),
		BlocksRead:    e.live.BlocksRead.Load(),
		BlocksWritten: e.live.BlocksWritten.Load(),
		ShuffleRows:   e.live.ShuffleRows.Load(),
		WireBytes:     e.live.WireBytes.Load(),
		MemPeakUnits:  e.live.MemPeak.Load(),
	}
	return info
}

// QueryInfo is the JSON shape of one in-flight query, the GET
// /debug/queries element. A coordinator's entries carry the shard nodes'
// matching entries under Nodes.
type QueryInfo struct {
	ID            string    `json:"id"`
	SQL           string    `json:"sql"`
	Backend       string    `json:"backend"`
	Phase         string    `json:"phase,omitempty"`
	ClientAddr    string    `json:"client_addr,omitempty"`
	Start         time.Time `json:"start"`
	ElapsedMillis float64   `json:"elapsed_ms"`
	Killed        bool      `json:"killed,omitempty"`
	RowsScanned   int64     `json:"rows_scanned"`
	RowsEmitted   int64     `json:"rows_emitted"`
	BlocksRead    int64     `json:"blocks_read"`
	BlocksWritten int64     `json:"blocks_written"`
	ShuffleRows   int64     `json:"shuffle_rows"`
	WireBytes     int64     `json:"wire_bytes"`
	MemPeakUnits  int64     `json:"mem_peak_units"`

	Nodes []QueryInfo `json:"nodes,omitempty"`
}

// Registry tracks a process's in-flight queries by trace ID: the
// pg_stat_activity half of the observability plane. Register on
// admission, Remove when the cursor finishes, Kill from the DELETE
// /debug/queries/{id} surface. A nil Registry is inert.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*QueryEntry
	order   []*QueryEntry // insertion order; Snapshot reverses it
}

// NewRegistry builds an empty in-flight query registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*QueryEntry)}
}

// Register records a query entering the serving path and returns its
// entry. An empty id gets a minted one (nothing upstream to join). When
// the same trace ID re-registers (sequential stages of one distributed
// query on the same node), the newest entry owns the ID.
func (r *Registry) Register(id, sql, backend, client string, cancel context.CancelFunc) *QueryEntry {
	if r == nil {
		return nil
	}
	if id == "" {
		id = NewID()
	}
	e := &QueryEntry{
		id: id, sql: sql, backend: backend, client: client,
		start: time.Now(), cancel: cancel,
	}
	r.mu.Lock()
	r.entries[id] = e
	r.order = append(r.order, e)
	r.mu.Unlock()
	return e
}

// Remove drops the entry from the registry. Pointer-compared, so a stale
// deregistration cannot evict a newer entry that took over the ID.
func (r *Registry) Remove(e *QueryEntry) {
	if r == nil || e == nil {
		return
	}
	r.mu.Lock()
	if cur, ok := r.entries[e.id]; ok && cur == e {
		delete(r.entries, e.id)
	}
	for i, oe := range r.order {
		if oe == e {
			r.order = append(r.order[:i], r.order[i+1:]...)
			break
		}
	}
	r.mu.Unlock()
}

// Get returns the live entry with the given trace ID, or nil.
func (r *Registry) Get(id string) *QueryEntry {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.entries[id]
}

// Kill cancels the in-flight query with the given trace ID, reporting
// whether the registry held it.
func (r *Registry) Kill(id string) bool {
	e := r.Get(id)
	if e == nil {
		return false
	}
	e.Kill()
	return true
}

// Len reports how many queries are in flight.
func (r *Registry) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries)
}

// Snapshot returns every in-flight query, newest first.
func (r *Registry) Snapshot() []QueryInfo {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	entries := make([]*QueryEntry, len(r.order))
	copy(entries, r.order)
	r.mu.Unlock()
	out := make([]QueryInfo, 0, len(entries))
	for i := len(entries) - 1; i >= 0; i-- {
		out = append(out, entries[i].Info())
	}
	return out
}
