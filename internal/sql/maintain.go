package sql

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/storage"
	"repro/internal/window"
)

// MaintainSource describes where one output column of a maintained query
// comes from: a base-table column (WF < 0) or a window-function spec
// (WF is the index into MaintainInfo.Specs).
type MaintainSource struct {
	Col int // base-schema column index; -1 when the source is a window function
	WF  int // spec index; -1 when the source is a base column
}

// MaintainInfo is the statically resolved shape of a prepared statement
// that an incremental maintainer (internal/delta) re-evaluates on appends:
// the base schema, the bound window specs, the projection mapping and the
// WHERE predicate as a row closure. It exists so the delta subsystem can
// maintain a query without re-doing any parse/bind/plan work — and without
// depending on the executor at all; maintenance recomputes window values
// per dirty partition, not per chain.
type MaintainInfo struct {
	Entry   *catalog.Entry
	Schema  *storage.Schema
	Specs   []window.Spec
	OutCols []storage.Column
	// Sources has one element per OutCols entry.
	Sources []MaintainSource
	// Filter evaluates the statement's WHERE clause over a base row; nil
	// when the statement has none.
	Filter func(storage.Tuple) (bool, error)
}

// Maintenance resolves the prepared statement's maintainable shape.
// Statements with DISTINCT, ORDER BY or LIMIT are not maintainable — a
// delta stream has no stable notion of "the k-th row of the sorted
// output" — and return an ErrBind-classified error, which the serving
// layers surface as a client error on SUBSCRIBE.
func (p *Prepared) Maintenance() (*MaintainInfo, error) {
	switch {
	case p.q.Distinct:
		return nil, classify(ErrBind, fmt.Errorf("sql: SUBSCRIBE does not support DISTINCT"))
	case len(p.q.OrderBy) > 0:
		return nil, classify(ErrBind, fmt.Errorf("sql: SUBSCRIBE does not support ORDER BY"))
	case p.q.Limit >= 0:
		return nil, classify(ErrBind, fmt.Errorf("sql: SUBSCRIBE does not support LIMIT"))
	}
	schema := p.entry.Table().Schema
	info := &MaintainInfo{
		Entry:   p.entry,
		Schema:  schema,
		Specs:   p.specs,
		OutCols: p.outCols,
		Sources: make([]MaintainSource, 0, len(p.pick)),
	}
	// p.pick addresses the executed table (base schema + one column per
	// chain step); invert wfCol to map chain columns back to spec indices.
	colWF := make(map[int]int, len(p.wfCol))
	for id, col := range p.wfCol {
		colWF[col] = id
	}
	for _, src := range p.pick {
		if src < schema.Len() {
			info.Sources = append(info.Sources, MaintainSource{Col: src, WF: -1})
		} else {
			id, ok := colWF[src]
			if !ok {
				return nil, fmt.Errorf("sql: projection column %d has no window source", src)
			}
			info.Sources = append(info.Sources, MaintainSource{Col: -1, WF: id})
		}
	}
	if p.q.Where != nil {
		where := p.q.Where
		info.Filter = func(row storage.Tuple) (bool, error) {
			v, err := evalPredicate(where, row, schema)
			if err != nil {
				return false, err
			}
			return v == tTrue, nil
		}
	}
	return info, nil
}
