package sql

import (
	"context"
	"testing"

	"repro/internal/storage"
)

// shareMix is a correlated dashboard mix: same table, same partition key,
// four ordering grains. The finest statement's segment must serve the
// coarser three via the frame lattice.
var shareMix = []string{
	`SELECT ws_item_sk, rank() OVER (PARTITION BY ws_item_sk ORDER BY ws_sold_date_sk, ws_sold_time_sk, ws_order_number) AS r FROM web_sales`,
	`SELECT ws_item_sk, rank() OVER (PARTITION BY ws_item_sk ORDER BY ws_sold_date_sk, ws_sold_time_sk) AS r FROM web_sales`,
	`SELECT ws_item_sk, rank() OVER (PARTITION BY ws_item_sk ORDER BY ws_sold_date_sk) AS r FROM web_sales`,
	`SELECT ws_item_sk, sum(ws_quantity) OVER (PARTITION BY ws_item_sk) AS s FROM web_sales`,
}

func TestShareable(t *testing.T) {
	r := testRunner(t)
	for _, q := range shareMix {
		p, err := r.Prepare(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if !p.Shareable() {
			t.Errorf("%s: expected shareable, plan %s", q, p.Plan())
		}
		if p.SubplanNode() == "" || p.SubplanFingerprint() == "" {
			t.Errorf("%s: empty subplan identity", q)
		}
	}
	// Window-less statements have no subplan to share.
	p, err := r.Prepare(`SELECT ws_item_sk FROM web_sales`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Shareable() {
		t.Error("window-less statement reported shareable")
	}
	if _, err := p.RunSubplan(context.Background()); err == nil {
		t.Error("RunSubplan on non-shareable statement should fail")
	}
}

// TestSharedMatchesPrivate: executing each statement's suffix over its own
// subplan segment (exact hit) reproduces the private execution exactly —
// values and order.
func TestSharedMatchesPrivate(t *testing.T) {
	r := testRunner(t)
	ctx := context.Background()
	for _, q := range append(shareMix,
		`SELECT ws_item_sk, rank() OVER (PARTITION BY ws_item_sk ORDER BY ws_sold_date_sk) AS r FROM web_sales WHERE ws_quantity > 50 ORDER BY ws_item_sk, r LIMIT 40`,
	) {
		p, err := r.Prepare(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		want, err := p.ExecuteContext(ctx)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		seg, err := p.RunSubplan(ctx)
		if err != nil {
			t.Fatalf("%s: subplan: %v", q, err)
		}
		got, err := p.ExecuteSharedContext(ctx, seg, true)
		if err != nil {
			t.Fatalf("%s: shared execute: %v", q, err)
		}
		assertSameRows(t, q, want.Table, got.Table)

		cur, err := p.StreamSharedContext(ctx, seg, false)
		if err != nil {
			t.Fatalf("%s: shared stream: %v", q, err)
		}
		rows := drainCursor(t, cur)
		if len(rows) != want.Table.Len() {
			t.Fatalf("%s: shared cursor %d rows, want %d", q, len(rows), want.Table.Len())
		}
		for i, row := range rows {
			if string(storage.AppendTuple(nil, row)) != string(storage.AppendTuple(nil, want.Table.Rows[i])) {
				t.Fatalf("%s: shared cursor row %d differs", q, i)
			}
		}
		// Attachers (chargeScan=false) must not be billed the scan's I/O.
		if m := cur.Meta().Metrics; m != nil && seg.Metrics.BlocksRead > 0 && m.BlocksRead >= seg.Metrics.BlocksRead {
			t.Errorf("%s: attacher charged scan I/O (%d blocks)", q, m.BlocksRead)
		}
	}
}

// TestLatticeAttach: the coarser statements of the mix execute correctly
// over the finest statement's segment — the cross-statement lattice hit.
func TestLatticeAttach(t *testing.T) {
	r := testRunner(t)
	ctx := context.Background()
	fine, err := r.Prepare(shareMix[0])
	if err != nil {
		t.Fatal(err)
	}
	seg, err := fine.RunSubplan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range shareMix[1:] {
		p, err := r.Prepare(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if !seg.Props.MatchesAll(p.WFs()) {
			t.Fatalf("%s: fine segment %s should match", q, seg.Props)
		}
		want, err := p.ExecuteContext(ctx)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		got, err := p.ExecuteSharedContext(ctx, seg, false)
		if err != nil {
			t.Fatalf("%s: shared: %v", q, err)
		}
		// Cross-statement attach: values must agree; compare as multisets
		// (the attacher's row order follows the finer segment's order).
		assertSameMultiset(t, q, want.Table, got.Table)
	}

	// The reverse direction must be rejected: a coarse segment cannot
	// serve the fine statement.
	coarse, err := r.Prepare(shareMix[2])
	if err != nil {
		t.Fatal(err)
	}
	cseg, err := coarse.RunSubplan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if cseg.Props.MatchesAll(fine.WFs()) {
		t.Fatal("coarse segment should not match the fine statement")
	}
	if _, err := fine.ExecuteSharedContext(ctx, cseg, false); err == nil {
		t.Fatal("ExecuteSharedContext over a too-coarse segment should fail")
	}
}

func TestSubplanKeyCanonical(t *testing.T) {
	r := testRunner(t)
	a, err := r.Prepare(`SELECT ws_item_sk, rank() OVER (PARTITION BY ws_item_sk ORDER BY ws_sold_date_sk) AS r FROM web_sales WHERE ws_quantity > 50`)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Prepare(`SELECT ws_item_sk, avg(ws_quantity) OVER (PARTITION BY ws_item_sk ORDER BY ws_sold_date_sk) AS a FROM WEB_SALES WHERE WS_QUANTITY > 50`)
	if err != nil {
		t.Fatal(err)
	}
	if a.SubplanScanKey() != b.SubplanScanKey() {
		t.Errorf("scan keys differ: %q vs %q", a.SubplanScanKey(), b.SubplanScanKey())
	}
	if a.SubplanNode() != b.SubplanNode() {
		t.Errorf("lattice nodes differ: %q vs %q", a.SubplanNode(), b.SubplanNode())
	}
	if a.SubplanFingerprint() != b.SubplanFingerprint() {
		t.Errorf("fingerprints differ")
	}
	c, err := r.Prepare(`SELECT ws_item_sk, rank() OVER (PARTITION BY ws_item_sk ORDER BY ws_sold_date_sk) AS r FROM web_sales WHERE ws_quantity > 51`)
	if err != nil {
		t.Fatal(err)
	}
	if a.SubplanScanKey() == c.SubplanScanKey() {
		t.Error("different predicates share a scan key")
	}
}

func assertSameRows(t *testing.T, q string, want, got *storage.Table) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("%s: %d rows, want %d", q, got.Len(), want.Len())
	}
	for i := range want.Rows {
		if string(storage.AppendTuple(nil, got.Rows[i])) != string(storage.AppendTuple(nil, want.Rows[i])) {
			t.Fatalf("%s: row %d differs", q, i)
		}
	}
}

func assertSameMultiset(t *testing.T, q string, want, got *storage.Table) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("%s: %d rows, want %d", q, got.Len(), want.Len())
	}
	counts := make(map[string]int, want.Len())
	for _, row := range want.Rows {
		counts[string(storage.AppendTuple(nil, row))]++
	}
	for _, row := range got.Rows {
		counts[string(storage.AppendTuple(nil, row))]--
	}
	for k, c := range counts {
		if c != 0 {
			t.Fatalf("%s: multiset mismatch (%d for %q)", q, c, k)
		}
	}
}
