package sql

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/attrs"
	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/storage"
	"repro/internal/window"
)

// Prepared is a query carried through every phase that does not depend on
// the data: parse, table lookup, window binding, CSO (or baseline)
// planning, projection and ORDER BY resolution, and WHERE validation. What
// remains — filtering, chain execution, projection, DISTINCT, the final
// sort — happens in ExecuteContext, which may be called many times and
// concurrently: a Prepared is immutable after Prepare, and every execution
// builds its own spill stores and row buffers. This is the plan-once /
// execute-many seam the serving layer's plan cache stores.
//
// A Prepared captures the catalog entry and the catalog generation at
// prepare time. Generation returns the latter so caches can drop plans
// whose table was re-registered; executing a stale Prepared is
// memory-safe (the old entry and its table are immutable) but reads the
// superseded data.
type Prepared struct {
	src    string
	fp     string // Fingerprint(src), computed once at prepare
	q      *Query
	entry  *catalog.Entry
	gen    uint64
	scheme Scheme
	cfg    exec.Config
	// The CSO ablation switches the statement was planned under; segment
	// sub-planning (SegmentRunner) honors the same restrictions.
	disableHS bool
	disableSS bool

	specs      []window.Spec
	plan       *core.Plan // nil when the query has no window functions
	alignOrder attrs.Seq
	wfCol      map[int]int // wf ID -> column index in the executed table
	// shareable marks a chain that splits at the subplan seam: one leading
	// heavy reorder, every later step reorder-free, sequential execution
	// (see subplan.go).
	shareable bool

	outCols []storage.Column
	pick    []int // executed-table source column per output column

	orderKey attrs.Seq // final ORDER BY over the output schema

	// Memoized SegmentRunners keyed by shipped-plan fingerprint: a shard
	// node executes one statement's shuffle stages many times (every
	// round, then the final stream), all against the same immutable
	// segmentation — validate and sub-plan once. Guarded by segMu; the
	// rest of the struct stays immutable after Prepare.
	segMu      sync.Mutex
	segRunners map[string]*SegmentRunner
}

// SQL returns the original query text.
func (p *Prepared) SQL() string { return p.src }

// Table returns the FROM table's name as written in the query.
func (p *Prepared) Table() string { return p.q.Table }

// Plan returns the planned window-function chain (nil for window-less
// queries).
func (p *Prepared) Plan() *core.Plan { return p.plan }

// ShardLocal reports whether this statement may execute independently on
// shards hash-partitioned on shardKey, with the results concatenated and
// finalized (FinalizeConcat) at a coordinator, and still produce the
// single-engine values. The condition is exec.ChainCommonKey's: every
// window function's partitioning key must contain the shard key, so no
// window partition spans shards. WHERE filtering and projection are
// row-local and always distribute; DISTINCT, ORDER BY and LIMIT are not
// shard-local and belong to the coordinator's finalize step. Window-less
// statements are trivially shard-local.
func (p *Prepared) ShardLocal(shardKey attrs.Set) bool {
	if shardKey.Empty() {
		return false
	}
	if p.plan == nil {
		return true
	}
	return shardKey.SubsetOf(exec.ChainCommonKey(p.plan))
}

// Generation returns the catalog generation the statement was prepared
// under.
func (p *Prepared) Generation() uint64 { return p.gen }

// Fingerprint returns the statement's wire fingerprint (see the package
// Fingerprint function): what a coordinator ships with scatter and shuffle
// requests so nodes resolve their cached plan without re-normalizing the
// text.
func (p *Prepared) Fingerprint() string { return p.fp }

// Fingerprint hashes statement text into the short identifier shipped on
// the cluster's control plane: FNV-64a over the raw source, hex-encoded.
// It identifies text, not plans — coordinator and node prepare from the
// same shipped SQL string, so equal text means an equal plan under an
// equal catalog generation (which the plan cache checks separately).
func Fingerprint(src string) string {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(src); i++ {
		h ^= uint64(src[i])
		h *= prime64
	}
	var out [16]byte
	const hexdigits = "0123456789abcdef"
	for i := 0; i < 16; i++ {
		out[i] = hexdigits[(h>>uint(60-4*i))&0xf]
	}
	return string(out[:])
}

// Distinct reports whether the statement carries SELECT DISTINCT.
func (p *Prepared) Distinct() bool { return p.q.Distinct }

// HasOrderBy reports whether the statement carries a final ORDER BY.
func (p *Prepared) HasOrderBy() bool { return len(p.orderKey) > 0 }

// Limit returns the statement's LIMIT, -1 when absent.
func (p *Prepared) Limit() int64 { return p.q.Limit }

// StreamsConcat reports whether the finalize phase over a shard
// concatenation is order-insensitive and row-local — no DISTINCT and no
// ORDER BY — so a coordinator may emit the concatenation of per-shard
// output streams incrementally (applying LIMIT by early termination)
// instead of buffering it. DISTINCT and ORDER BY force materialization at
// the concatenating side.
func (p *Prepared) StreamsConcat() bool {
	return !p.q.Distinct && len(p.orderKey) == 0
}

// Prepare parses, binds and plans src against the runner's catalog without
// executing it. Parse failures carry the ErrParse class, unknown tables
// wrap catalog.ErrUnknownTable, and every other error a malformed-but-
// parseable query can provoke (unknown columns, bad window clauses,
// unsupported predicates) carries ErrBind — execution errors after a
// successful Prepare are engine faults.
func (r *Runner) Prepare(src string) (*Prepared, error) {
	q, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return r.prepare(q, src)
}

// prepare performs every data-independent phase on a parsed query.
func (r *Runner) prepare(q *Query, src string) (*Prepared, error) {
	gen := r.Catalog.Generation()
	entry, err := r.Catalog.Lookup(q.Table)
	if err != nil {
		return nil, err
	}
	schema := entry.Table().Schema
	p := &Prepared{
		src:       src,
		fp:        Fingerprint(src),
		q:         q,
		entry:     entry,
		gen:       gen,
		scheme:    r.Scheme,
		cfg:       r.Exec,
		disableHS: r.DisableHS,
		disableSS: r.DisableSS,
		wfCol:     map[int]int{},
	}

	if q.Where != nil {
		if err := checkPredicate(q.Where, schema); err != nil {
			return nil, classify(ErrBind, err)
		}
	}

	// Bind the window calls in SELECT order.
	windowItem := make([]int, len(q.Items)) // item index -> wf ID or -1
	for i, item := range q.Items {
		windowItem[i] = -1
		if item.Window == nil {
			continue
		}
		name := item.Alias
		if name == "" {
			name = item.Window.Func
		}
		spec, err := BindWindowCall(item.Window, schema, name)
		if err != nil {
			return nil, classify(ErrBind, err)
		}
		if err := spec.Validate(schema); err != nil {
			return nil, classify(ErrBind, err)
		}
		windowItem[i] = len(p.specs)
		p.specs = append(p.specs, spec)
	}

	// Section 5 integration: resolve the longest ORDER BY prefix whose
	// columns are base-table columns of the output; CSO aligns its chain
	// toward it. Resolution must honor SELECT-list aliases (an alias can
	// shadow a base column name), so it goes through the projected names,
	// not the base schema directly.
	for _, item := range q.OrderBy {
		c, isBase := resolveOutputColumn(q.Items, schema, item.Column)
		if !isBase {
			break
		}
		p.alignOrder = append(p.alignOrder, attrs.Elem{Attr: attrs.ID(c), Desc: item.Desc, NullsFirst: item.NullsFirst})
	}

	if len(p.specs) > 0 {
		ws := make([]core.WF, len(p.specs))
		for i, s := range p.specs {
			ws[i] = s.WF(i)
		}
		opt := core.Options{
			Cost:      entry.CostParams(r.Exec.MemoryBytes, r.Exec.BlockSize),
			DisableHS: r.DisableHS,
			DisableSS: r.DisableSS,
		}
		var plan *core.Plan
		switch r.Scheme {
		case SchemeBFO:
			plan, err = core.BFO(ws, core.Unordered(), opt)
		case SchemeORCL:
			plan, err = core.ORCL(ws, core.Unordered(), opt)
		case SchemePSQL:
			plan, err = core.PSQL(ws, core.Unordered())
		case SchemeCSO, "":
			plan, err = core.CSOAligned(ws, core.Unordered(), opt, p.alignOrder)
			// Alignment toward the ORDER BY cannot pay off when the parallel
			// path will concatenate partitions (the output loses the chain's
			// nominal order and is fully sorted anyway); take CSO's cheapest
			// unaligned chain instead of paying for a dead alignment.
			if err == nil && len(p.alignOrder) > 0 && r.Exec.Parallelism > 1 && exec.Concatenates(plan) {
				plan, err = core.CSO(ws, core.Unordered(), opt)
			}
		default:
			return nil, fmt.Errorf("sql: unknown scheme %q", r.Scheme)
		}
		if err != nil {
			return nil, err
		}
		if r.Scheme == SchemeCSO || r.Scheme == "" {
			// Factor-window rewrite (core/rewrite.go): keep the heavy-first
			// variant when it validates and costs strictly less.
			if alt := core.RewriteAlternative(ws, core.Unordered(), opt, plan); alt != nil {
				plan = alt
			}
		}
		p.plan = plan
		for pos, step := range plan.Steps {
			p.wfCol[step.WF.ID] = schema.Len() + pos
		}
		p.shareable = shareableChain(plan) && r.Exec.Parallelism <= 1
	}

	// Projection: the executed table is the base schema extended with one
	// derived column per chain step, so output columns resolve statically.
	for i, item := range q.Items {
		switch {
		case item.Star:
			for c := 0; c < schema.Len(); c++ {
				p.outCols = append(p.outCols, schema.Columns[c])
				p.pick = append(p.pick, c)
			}
		case item.Window != nil:
			srcCol := p.wfCol[windowItem[i]]
			col := p.specs[windowItem[i]].OutputColumn()
			if item.Alias != "" {
				col.Name = item.Alias
			}
			p.outCols = append(p.outCols, col)
			p.pick = append(p.pick, srcCol)
		default:
			c := schema.ColIndex(item.Column)
			if c < 0 {
				return nil, classify(ErrBind, fmt.Errorf("sql: unknown column %q", item.Column))
			}
			col := schema.Columns[c]
			if item.Alias != "" {
				col.Name = item.Alias
			}
			p.outCols = append(p.outCols, col)
			p.pick = append(p.pick, c)
		}
	}

	// Final ORDER BY over output columns.
	outSchema := storage.NewSchema(p.outCols...)
	for _, item := range q.OrderBy {
		c := outSchema.ColIndex(item.Column)
		if c < 0 {
			return nil, classify(ErrBind, fmt.Errorf("sql: ORDER BY column %q not in output", item.Column))
		}
		p.orderKey = append(p.orderKey, attrs.Elem{Attr: attrs.ID(c), Desc: item.Desc, NullsFirst: item.NullsFirst})
	}
	return p, nil
}

// shareableChain reports whether a planned chain is a single heavy reorder
// followed by reorder-free evaluation — the physical shape the subplan
// seam (subplan.go) can split and the shared-subplan cache can serve.
func shareableChain(plan *core.Plan) bool {
	if plan == nil || len(plan.Steps) == 0 {
		return false
	}
	lead := plan.Steps[0].Reorder
	if lead != core.ReorderFS && lead != core.ReorderHS {
		return false
	}
	for _, s := range plan.Steps[1:] {
		if s.Reorder != core.ReorderNone {
			return false
		}
	}
	return true
}

// Execute runs the prepared query without a deadline.
func (p *Prepared) Execute() (*Result, error) {
	return p.ExecuteContext(context.Background())
}

// ExecuteContext runs the prepared query's data-dependent phases: WHERE
// filtering, chain execution (honoring ctx at step boundaries), projection,
// DISTINCT, the final ORDER BY and LIMIT. It is safe for concurrent use on
// one Prepared.
func (p *Prepared) ExecuteContext(ctx context.Context) (*Result, error) {
	return p.execute(ctx, p.entry.Table(), true)
}

// ExecuteOverContext runs the full prepared pipeline over base instead of
// the catalog entry's rows. base must share the entry's schema; it is how
// a scatter-gather coordinator executes a plan prepared against a
// schema-only stub over rows just gathered from the shards — the gathered
// concatenation arrives in arbitrary order, which is exactly the
// Unordered input property the plan was built from, so the chain's first
// order-rebuilding reorder (FS/HS) absorbs it, mirroring how post-barrier
// segments restart in exec.ParallelRun.
func (p *Prepared) ExecuteOverContext(ctx context.Context, base *storage.Table) (*Result, error) {
	return p.execute(ctx, base, true)
}

// ExecuteShardContext runs the shard-local part of the statement over the
// catalog entry's rows: WHERE, the window chain and projection — skipping
// DISTINCT, ORDER BY and LIMIT, which only the coordinator can apply
// correctly over the concatenation of every shard's output
// (FinalizeConcat). Only meaningful when the caller established
// ShardLocal for the cluster's shard key.
func (p *Prepared) ExecuteShardContext(ctx context.Context) (*Result, error) {
	return p.execute(ctx, p.entry.Table(), false)
}

// FinalizeConcat applies the coordinator-side phases — DISTINCT, the final
// ORDER BY and LIMIT — to the concatenation of shard-local outputs
// (ExecuteShardContext results appended in shard-index order). The
// concatenation voids any ordering the per-shard chains produced, so an
// ORDER BY is always satisfied by a full sort, exactly as after a
// partition-concatenating parallel chain. t is finalized in place and
// returned inside the Result.
func (p *Prepared) FinalizeConcat(t *storage.Table) *Result {
	result := &Result{FinalSort: "none", Parallelism: 1, Plan: p.plan, Table: t}
	if p.q.Distinct {
		distinctRows(t)
	}
	if len(p.orderKey) > 0 {
		result.FinalSort = "full"
		key := p.orderKey
		sort.SliceStable(t.Rows, func(i, j int) bool {
			return storage.CompareSeq(t.Rows[i], t.Rows[j], key) < 0
		})
	}
	if p.q.Limit >= 0 && int64(t.Len()) > p.q.Limit {
		t.Rows = t.Rows[:p.q.Limit]
	}
	return result
}

// execute is the shared eager execution body: WHERE, chain, projection,
// and — when finalize is set — DISTINCT, ORDER BY and LIMIT. The streaming
// surface (StreamContext and friends, cursor.go) composes the same three
// phases but defers the projection to pull time when the statement needs
// no finalize pass.
func (p *Prepared) execute(ctx context.Context, base *storage.Table, finalize bool) (*Result, error) {
	executed, result, err := p.runChain(ctx, base)
	if err != nil {
		return nil, err
	}
	outTable := p.project(executed)
	result.Table = outTable
	if finalize {
		// Shard-local execution skips this: DISTINCT, ORDER BY and LIMIT
		// are the coordinator's to apply over the concatenation.
		p.finalize(outTable, result)
	}
	return result, nil
}

// runChain runs the data-dependent phases up to (and including) the window
// chain: WHERE filtering and chain execution. The returned Result carries
// the plan, metrics and parallel degree but no table yet.
func (p *Prepared) runChain(ctx context.Context, base *storage.Table) (*storage.Table, *Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	windowed, err := p.filterWhere(base)
	if err != nil {
		return nil, nil, err
	}
	result := &Result{FinalSort: "none", Parallelism: 1, EstRows: p.entry.Rows()}
	executed := windowed
	if p.plan != nil {
		out, metrics, par, err := p.runPlan(ctx, windowed, p.plan)
		if err != nil {
			return nil, nil, err
		}
		executed = out
		result.Plan = p.plan
		result.Metrics = metrics
		result.Parallelism = par
	}
	return executed, result, nil
}

// filterWhere applies the statement's WHERE clause to base, producing the
// windowed table WT (Section 5's loose integration: all clauses except
// ORDER BY run before the windows). Statements without a WHERE return base
// unchanged.
func (p *Prepared) filterWhere(base *storage.Table) (*storage.Table, error) {
	if p.q.Where == nil {
		return base, nil
	}
	schema := base.Schema
	wt := storage.NewTable(schema)
	for _, row := range base.Rows {
		v, err := evalPredicate(p.q.Where, row, schema)
		if err != nil {
			return nil, err
		}
		if v == tTrue {
			wt.Rows = append(wt.Rows, row)
		}
	}
	return wt, nil
}

// runPlan executes a planned chain (p.plan or a segment sub-plan) over in
// with the prepared execution config, returning the extended table, the
// executor metrics, and the parallel degree the chain actually ran with.
//
// Parallelism must be set explicitly (> 1) to engage the parallel chain
// executor: a zero-value Runner stays on the sequential path (facades that
// want the GOMAXPROCS default resolve it before building the Runner, as
// windowdb.Engine does).
func (p *Prepared) runPlan(ctx context.Context, in *storage.Table, plan *core.Plan) (*storage.Table, *exec.Metrics, int, error) {
	cfg := p.cfg
	if cfg.Distinct == nil {
		cfg.Distinct = p.entry.Distinct
	}
	if cfg.Parallelism > 1 {
		out, metrics, err := exec.ParallelRunContext(ctx, in, p.specs, plan, cfg, cfg.Parallelism)
		par := 1
		if err == nil && metrics.PartitionedSteps > 0 {
			par = cfg.Parallelism
		}
		return out, metrics, par, err
	}
	out, metrics, err := exec.RunContext(ctx, in, p.specs, plan, cfg)
	return out, metrics, 1, err
}

// project materializes the projection of every executed row.
func (p *Prepared) project(executed *storage.Table) *storage.Table {
	outTable := storage.NewTable(storage.NewSchema(p.outCols...))
	outTable.Rows = make([]storage.Tuple, executed.Len())
	for ri, row := range executed.Rows {
		outTable.Rows[ri] = p.projectRow(row)
	}
	return outTable
}

// projectRow maps one executed-table row to the output schema.
func (p *Prepared) projectRow(row storage.Tuple) storage.Tuple {
	t := make(storage.Tuple, len(p.pick))
	for ci, src := range p.pick {
		t[ci] = row[src]
	}
	return t
}

// finalize applies the statement's terminal phases in place: DISTINCT, the
// final ORDER BY (with Section 5's sort avoidance) and LIMIT.
func (p *Prepared) finalize(outTable *storage.Table, result *Result) {
	// DISTINCT: deduplicate projected rows (evaluated after the window
	// functions, as in the paper's Section 1/5 decomposition; NULLs compare
	// equal, per SQL DISTINCT semantics).
	if p.q.Distinct {
		distinctRows(outTable)
	}

	// Final ORDER BY over output columns. When the chain's output ordering
	// already satisfies a prefix of the key (Section 5), the sort is
	// avoided or downgraded to per-group partial sorting.
	if len(p.orderKey) > 0 {
		key := p.orderKey
		sat := 0
		// A chain whose final segment ran hash-partitioned concatenates
		// partitions, so the plan's nominal final ordering holds only
		// within each partition; the ORDER BY must then be satisfied by a
		// full sort.
		if result.Plan != nil && (result.Metrics == nil || !result.Metrics.Concatenated) {
			finalProps := result.Plan.FinalProps(core.Unordered())
			sat = core.OrderSatisfiedPrefix(finalProps, p.alignOrder)
			// The satisfied alignment elements must actually be the leading
			// ORDER BY items (alignOrder was built from that prefix).
			if sat > len(key) {
				sat = len(key)
			}
		}
		result.SatisfiedPrefix = sat
		switch {
		case sat >= len(key):
			result.FinalSort = "avoided"
		case sat > 0:
			result.FinalSort = "partial"
			partialSort(outTable.Rows, key, sat)
		default:
			result.FinalSort = "full"
			sort.SliceStable(outTable.Rows, func(i, j int) bool {
				return storage.CompareSeq(outTable.Rows[i], outTable.Rows[j], key) < 0
			})
		}
	}
	if p.q.Limit >= 0 && int64(outTable.Len()) > p.q.Limit {
		outTable.Rows = outTable.Rows[:p.q.Limit]
	}
}

// distinctRows deduplicates a table's rows in place, keeping the first
// occurrence (NULLs compare equal, per SQL DISTINCT semantics).
func distinctRows(t *storage.Table) {
	seen := make(map[string]bool, t.Len())
	dedup := t.Rows[:0]
	for _, row := range t.Rows {
		key := string(storage.AppendTuple(nil, row))
		if !seen[key] {
			seen[key] = true
			dedup = append(dedup, row)
		}
	}
	t.Rows = dedup
}

// checkPredicate validates a WHERE tree against the schema at prepare time:
// every column must resolve and every operator must be one evalPredicate
// implements, so a prepared statement cannot fail at execution with a
// client-side error.
func checkPredicate(e Expr, schema *storage.Schema) error {
	switch n := e.(type) {
	case *ColumnRef:
		if schema.ColIndex(n.Name) < 0 {
			return fmt.Errorf("sql: unknown column %q", n.Name)
		}
	case *LitExpr:
	case *NotExpr:
		return checkPredicate(n.E, schema)
	case *IsNullExpr:
		return checkPredicate(n.E, schema)
	case *BinaryExpr:
		switch strings.ToUpper(n.Op) {
		case "AND", "OR", "=", "<>", "<", "<=", ">", ">=":
		default:
			return fmt.Errorf("sql: unknown operator %q", n.Op)
		}
		if err := checkPredicate(n.L, schema); err != nil {
			return err
		}
		return checkPredicate(n.R, schema)
	default:
		return fmt.Errorf("sql: unsupported predicate node %T", e)
	}
	return nil
}
