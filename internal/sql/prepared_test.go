package sql

import (
	"context"
	"errors"
	"testing"

	"repro/internal/catalog"
	"repro/internal/datagen"
)

// TestErrorClasses pins the error taxonomy the serving layer's HTTP status
// mapping depends on: parse errors carry ErrParse, every client-side
// prepare failure carries ErrBind, unknown tables wrap
// catalog.ErrUnknownTable, and the classes are mutually exclusive.
func TestErrorClasses(t *testing.T) {
	r := testRunner(t)
	parse := []string{
		"SELEKT * FROM emptab",
		"SELECT rank() FROM emptab",
		"SELECT * FROM emptab WHERE 'unterminated",
	}
	for _, src := range parse {
		_, err := r.Prepare(src)
		if !errors.Is(err, ErrParse) {
			t.Errorf("Prepare(%q) err = %v, want ErrParse", src, err)
		}
		if errors.Is(err, ErrBind) {
			t.Errorf("Prepare(%q): classes must be exclusive", src)
		}
	}
	bind := []string{
		"SELECT rank() OVER (PARTITION BY nosuch) FROM emptab",
		"SELECT frobnicate() OVER () FROM emptab",
		"SELECT ntile(0) OVER () FROM emptab",
		"SELECT nosuchcol FROM emptab",
		"SELECT * FROM emptab ORDER BY nosuch",
		"SELECT * FROM emptab WHERE nosuch = 1",
	}
	for _, src := range bind {
		_, err := r.Prepare(src)
		if !errors.Is(err, ErrBind) {
			t.Errorf("Prepare(%q) err = %v, want ErrBind", src, err)
		}
		if errors.Is(err, ErrParse) || errors.Is(err, catalog.ErrUnknownTable) {
			t.Errorf("Prepare(%q): classes must be exclusive", src)
		}
	}
	_, err := r.Prepare("SELECT * FROM nosuchtable")
	if !errors.Is(err, catalog.ErrUnknownTable) {
		t.Errorf("unknown table err = %v, want catalog.ErrUnknownTable", err)
	}
	if _, err := r.Prepare("SELECT empnum FROM emptab"); err != nil {
		t.Errorf("valid statement failed to prepare: %v", err)
	}
}

// TestPreparedMatchesQuery: preparing once and executing equals the
// one-shot path on every result field, including Section 5's sort
// disposition, for queries with and without windows.
func TestPreparedMatchesQuery(t *testing.T) {
	r := testRunner(t)
	queries := []string{
		`SELECT empnum, rank() OVER (ORDER BY salary DESC NULLS LAST) AS r FROM emptab ORDER BY r, empnum`,
		`SELECT ws_item_sk, rank() OVER (PARTITION BY ws_item_sk ORDER BY ws_sold_date_sk) AS r FROM web_sales ORDER BY ws_item_sk`,
		`SELECT DISTINCT dept FROM emptab WHERE salary > 40 ORDER BY dept LIMIT 2`,
	}
	for _, src := range queries {
		want, err := r.Query(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		p, err := r.Prepare(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		for rep := 0; rep < 3; rep++ {
			got, err := p.Execute()
			if err != nil {
				t.Fatalf("%s rep %d: %v", src, rep, err)
			}
			if got.Table.Len() != want.Table.Len() ||
				got.FinalSort != want.FinalSort ||
				got.SatisfiedPrefix != want.SatisfiedPrefix {
				t.Fatalf("%s rep %d: rows %d/%d, sort %s/%s, prefix %d/%d",
					src, rep, got.Table.Len(), want.Table.Len(),
					got.FinalSort, want.FinalSort, got.SatisfiedPrefix, want.SatisfiedPrefix)
			}
			for ri := range want.Table.Rows {
				for ci := range want.Table.Rows[ri] {
					a, b := got.Table.Rows[ri][ci], want.Table.Rows[ri][ci]
					if a.String() != b.String() {
						t.Fatalf("%s rep %d: row %d col %d = %s, want %s", src, rep, ri, ci, a, b)
					}
				}
			}
		}
	}
}

// TestPreparedGenerationSnapshot: a Prepared executes against the entry it
// was planned on, and records the generation so caches can notice.
func TestPreparedGenerationSnapshot(t *testing.T) {
	r := testRunner(t)
	p, err := r.Prepare(`SELECT ws_item_sk FROM web_sales LIMIT 10000`)
	if err != nil {
		t.Fatal(err)
	}
	gen := r.Catalog.Generation()
	if p.Generation() != gen {
		t.Fatalf("prepared generation %d, catalog at %d", p.Generation(), gen)
	}
	res, err := p.Execute()
	if err != nil {
		t.Fatal(err)
	}
	oldRows := res.Table.Len()

	// Replace the table: the statement keeps reading its snapshot, but its
	// recorded generation is now stale.
	r.Catalog.Register("web_sales", datagen.WebSales(datagen.WebSalesConfig{Rows: 100, Seed: 9, PadBytes: 8}))
	if p.Generation() == r.Catalog.Generation() {
		t.Fatal("generation did not advance on re-registration")
	}
	res, err = p.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.Len() != oldRows {
		t.Fatalf("stale prepared read %d rows, want its snapshot's %d", res.Table.Len(), oldRows)
	}
}

// TestQueryContextCancelled: the runner's context-aware entry point
// propagates cancellation.
func TestQueryContextCancelled(t *testing.T) {
	r := testRunner(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := r.QueryContext(ctx, `SELECT ws_item_sk, rank() OVER (PARTITION BY ws_item_sk ORDER BY ws_sold_date_sk) AS r FROM web_sales`)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
