package sql

import (
	"context"
	"errors"
	"io"
	"testing"

	"repro/internal/storage"
)

// drainCursor pulls a cursor dry.
func drainCursor(t *testing.T, c *Cursor) []storage.Tuple {
	t.Helper()
	var out []storage.Tuple
	for {
		row, err := c.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("cursor: %v", err)
		}
		out = append(out, row)
	}
}

// cursorQueries spans the execution shapes: lazy projection (no
// finalize), WHERE, eager finalize via ORDER BY, DISTINCT, LIMIT on both
// paths, star, window-less.
var cursorQueries = []string{
	`SELECT ws_item_sk, rank() OVER (PARTITION BY ws_item_sk ORDER BY ws_sold_time_sk) AS r FROM web_sales`,
	`SELECT ws_item_sk, rank() OVER (PARTITION BY ws_item_sk ORDER BY ws_sold_time_sk) AS r FROM web_sales WHERE ws_quantity > 50`,
	`SELECT ws_item_sk, ws_order_number, rank() OVER (PARTITION BY ws_item_sk ORDER BY ws_sold_time_sk) AS r FROM web_sales ORDER BY r, ws_item_sk, ws_order_number`,
	`SELECT DISTINCT ws_item_sk FROM web_sales`,
	`SELECT ws_item_sk, ws_order_number FROM web_sales LIMIT 7`,
	`SELECT ws_item_sk, rank() OVER (ORDER BY ws_sold_time_sk) AS r FROM web_sales LIMIT 11`,
	`SELECT DISTINCT ws_item_sk, rank() OVER (PARTITION BY ws_item_sk ORDER BY ws_sold_date_sk) AS r FROM web_sales ORDER BY ws_item_sk, r LIMIT 13`,
	`SELECT * FROM emptab`,
	`SELECT empnum, salary FROM emptab ORDER BY salary DESC NULLS LAST, empnum`,
}

// TestCursorMatchesExecute: for every execution shape, the streamed rows
// equal ExecuteContext's table — same values, same order — and the
// cursor's metadata matches the eager result's.
func TestCursorMatchesExecute(t *testing.T) {
	r := testRunner(t)
	ctx := context.Background()
	for _, q := range cursorQueries {
		p, err := r.Prepare(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		want, err := p.ExecuteContext(ctx)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		cur, err := p.StreamContext(ctx)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		got := drainCursor(t, cur)
		if len(got) != want.Table.Len() {
			t.Fatalf("%s: cursor %d rows, execute %d", q, len(got), want.Table.Len())
		}
		for i, row := range got {
			if string(storage.AppendTuple(nil, row)) != string(storage.AppendTuple(nil, want.Table.Rows[i])) {
				t.Fatalf("%s: row %d differs", q, i)
			}
		}
		meta := cur.Meta()
		if meta.FinalSort != want.FinalSort {
			t.Errorf("%s: cursor FinalSort %q, execute %q", q, meta.FinalSort, want.FinalSort)
		}
		if (meta.Plan == nil) != (want.Plan == nil) {
			t.Errorf("%s: plan presence differs", q)
		}
	}
}

// TestCursorShardStream: the shard-local stream skips DISTINCT, ORDER BY
// and LIMIT, matching ExecuteShardContext.
func TestCursorShardStream(t *testing.T) {
	r := testRunner(t)
	ctx := context.Background()
	q := `SELECT DISTINCT ws_item_sk, rank() OVER (PARTITION BY ws_item_sk ORDER BY ws_sold_date_sk) AS r FROM web_sales ORDER BY ws_item_sk LIMIT 3`
	p, err := r.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	want, err := p.ExecuteShardContext(ctx)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := p.StreamShardContext(ctx)
	if err != nil {
		t.Fatal(err)
	}
	got := drainCursor(t, cur)
	if len(got) != want.Table.Len() {
		t.Fatalf("shard stream %d rows, execute %d (LIMIT must not apply)", len(got), want.Table.Len())
	}
	for i, row := range got {
		if string(storage.AppendTuple(nil, row)) != string(storage.AppendTuple(nil, want.Table.Rows[i])) {
			t.Fatalf("row %d differs", i)
		}
	}
}

// TestCursorLimitStopsEarly: the lazy path stops yielding at LIMIT
// without touching later source rows.
func TestCursorLimitStopsEarly(t *testing.T) {
	r := testRunner(t)
	p, err := r.Prepare(`SELECT ws_order_number FROM web_sales LIMIT 5`)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := p.StreamContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := drainCursor(t, cur); len(got) != 5 {
		t.Fatalf("got %d rows, want 5", len(got))
	}
}

// TestCursorCancelMidStream: a context cancelled between pulls surfaces
// at the next row stride on the lazy path.
func TestCursorCancelMidStream(t *testing.T) {
	r := testRunner(t)
	p, err := r.Prepare(`SELECT ws_order_number FROM web_sales`)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cur, err := p.StreamContext(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cur.Next(); err != nil {
		t.Fatalf("first row: %v", err)
	}
	cancel()
	var sawErr error
	for i := 0; i < 2*cursorCtxStride; i++ {
		if _, err := cur.Next(); err != nil {
			sawErr = err
			break
		}
	}
	if !errors.Is(sawErr, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled within one stride", sawErr)
	}
}

// TestCursorCloseIsEOF: Close ends iteration and is idempotent.
func TestCursorCloseIsEOF(t *testing.T) {
	r := testRunner(t)
	p, err := r.Prepare(`SELECT ws_order_number FROM web_sales`)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := p.StreamContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cur.Next(); err != nil {
		t.Fatal(err)
	}
	if err := cur.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cur.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := cur.Next(); err != io.EOF {
		t.Fatalf("Next after Close = %v, want io.EOF", err)
	}
}
