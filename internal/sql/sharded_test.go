package sql

import (
	"context"
	"slices"
	"testing"

	"repro/internal/attrs"
	"repro/internal/catalog"
	"repro/internal/datagen"
	"repro/internal/exec"
	"repro/internal/storage"
)

// TestShardPhasesComposeToExecute: manually hash-partitioning the table,
// running ExecuteShardContext per partition, concatenating and finalizing
// must reproduce ExecuteContext exactly — the algebraic identity the
// cluster's scatter path rests on.
func TestShardPhasesComposeToExecute(t *testing.T) {
	ws := datagen.WebSales(datagen.WebSalesConfig{Rows: 700, Seed: 3})
	src := `SELECT ws_item_sk, ws_order_number,
	 rank() OVER (PARTITION BY ws_item_sk ORDER BY ws_sold_date_sk) AS r
	 FROM web_sales WHERE ws_quantity <= 70 ORDER BY ws_item_sk, ws_order_number LIMIT 200`
	key := attrs.MakeSet(attrs.ID(datagen.ColItem))

	full := catalog.New()
	full.Register("web_sales", ws)
	runner := Runner{Catalog: full, Exec: exec.Config{MemoryBytes: 1 << 20}}
	prep, err := runner.Prepare(src)
	if err != nil {
		t.Fatal(err)
	}
	if !prep.ShardLocal(key) {
		t.Fatal("statement should be shard-local on the item key")
	}
	want, err := prep.ExecuteContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	const shards = 3
	parts := exec.PartitionRows(ws.Rows, key.IDs(), shards)
	var concat *storage.Table
	for i := 0; i < shards; i++ {
		cat := catalog.New()
		pt := storage.NewTable(ws.Schema)
		pt.Rows = parts[i]
		cat.Register("web_sales", pt)
		r := Runner{Catalog: cat, Exec: exec.Config{MemoryBytes: 1 << 20}}
		p, err := r.Prepare(src)
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.ExecuteShardContext(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if concat == nil {
			concat = storage.NewTable(res.Table.Schema)
		}
		concat.Rows = append(concat.Rows, res.Table.Rows...)
	}
	got := prep.FinalizeConcat(concat)
	if got.FinalSort != "full" {
		t.Fatalf("finalize sort %q, want full", got.FinalSort)
	}
	if got.Table.Len() != want.Table.Len() {
		t.Fatalf("row count %d, want %d", got.Table.Len(), want.Table.Len())
	}
	for i := range want.Table.Rows {
		a := storage.AppendTuple(nil, got.Table.Rows[i])
		b := storage.AppendTuple(nil, want.Table.Rows[i])
		if !slices.Equal(a, b) {
			t.Fatalf("row %d differs after scatter composition", i)
		}
	}
}

// TestExecuteOverContext: a plan prepared against a schema-only stub
// executes over externally supplied rows (the gather path) and matches a
// directly prepared execution.
func TestExecuteOverContext(t *testing.T) {
	ws := datagen.WebSales(datagen.WebSalesConfig{Rows: 400, Seed: 5})
	src := `SELECT ws_order_number, rank() OVER (ORDER BY ws_sold_time_sk) AS r FROM web_sales ORDER BY ws_order_number`

	stub := catalog.New()
	stub.RegisterStub("web_sales", ws.Schema, catalog.TableStats{
		Rows:  int64(ws.Len()),
		Bytes: int64(ws.ByteSize()),
		Distinct: func(set attrs.Set) int64 {
			return int64(ws.DistinctCount(set))
		},
	})
	rStub := Runner{Catalog: stub, Exec: exec.Config{MemoryBytes: 1 << 20}}
	prep, err := rStub.Prepare(src)
	if err != nil {
		t.Fatal(err)
	}
	got, err := prep.ExecuteOverContext(context.Background(), ws)
	if err != nil {
		t.Fatal(err)
	}

	full := catalog.New()
	full.Register("web_sales", ws)
	rFull := Runner{Catalog: full, Exec: exec.Config{MemoryBytes: 1 << 20}}
	want, err := rFull.Query(src)
	if err != nil {
		t.Fatal(err)
	}
	if got.Table.Len() != want.Table.Len() {
		t.Fatalf("rows %d, want %d", got.Table.Len(), want.Table.Len())
	}
	for i := range want.Table.Rows {
		a := storage.AppendTuple(nil, got.Table.Rows[i])
		b := storage.AppendTuple(nil, want.Table.Rows[i])
		if !slices.Equal(a, b) {
			t.Fatalf("row %d differs between stub-over and direct execution", i)
		}
	}
}

// TestShardLocalPredicate pins the routing rule on crafted chains.
func TestShardLocalPredicate(t *testing.T) {
	ws := datagen.WebSales(datagen.WebSalesConfig{Rows: 50, Seed: 1})
	cat := catalog.New()
	cat.Register("web_sales", ws)
	r := Runner{Catalog: cat, Exec: exec.Config{MemoryBytes: 1 << 20}}
	item := attrs.MakeSet(attrs.ID(datagen.ColItem))
	itemBill := attrs.MakeSet(attrs.ID(datagen.ColItem), attrs.ID(datagen.ColBill))
	cases := []struct {
		src  string
		key  attrs.Set
		want bool
	}{
		// Chain common key {item,bill} covers both {item} and {item,bill}.
		{`SELECT rank() OVER (PARTITION BY ws_item_sk, ws_bill_customer_sk ORDER BY ws_quantity) AS r FROM web_sales`, item, true},
		{`SELECT rank() OVER (PARTITION BY ws_item_sk, ws_bill_customer_sk ORDER BY ws_quantity) AS r FROM web_sales`, itemBill, true},
		// Shard key {item,bill} is not contained in WPK {item}: one
		// item-partition spans shards (its rows hash by bill too), so the
		// chain cannot run shard-locally.
		{`SELECT rank() OVER (PARTITION BY ws_item_sk ORDER BY ws_quantity) AS r FROM web_sales`, itemBill, false},
		// Empty shard key never routes shard-local.
		{`SELECT ws_item_sk FROM web_sales`, 0, false},
		// Window-less statements distribute trivially.
		{`SELECT ws_item_sk FROM web_sales`, item, true},
	}
	for _, tc := range cases {
		prep, err := r.Prepare(tc.src)
		if err != nil {
			t.Fatal(err)
		}
		if got := prep.ShardLocal(tc.key); got != tc.want {
			t.Errorf("ShardLocal(%q, %v) = %v, want %v", tc.src, tc.key, got, tc.want)
		}
	}
}
