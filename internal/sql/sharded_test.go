package sql

import (
	"context"
	"io"
	"slices"
	"testing"

	"repro/internal/attrs"
	"repro/internal/catalog"
	"repro/internal/datagen"
	"repro/internal/exec"
	"repro/internal/storage"
)

// TestShardPhasesComposeToExecute: manually hash-partitioning the table,
// running ExecuteShardContext per partition, concatenating and finalizing
// must reproduce ExecuteContext exactly — the algebraic identity the
// cluster's scatter path rests on.
func TestShardPhasesComposeToExecute(t *testing.T) {
	ws := datagen.WebSales(datagen.WebSalesConfig{Rows: 700, Seed: 3})
	src := `SELECT ws_item_sk, ws_order_number,
	 rank() OVER (PARTITION BY ws_item_sk ORDER BY ws_sold_date_sk) AS r
	 FROM web_sales WHERE ws_quantity <= 70 ORDER BY ws_item_sk, ws_order_number LIMIT 200`
	key := attrs.MakeSet(attrs.ID(datagen.ColItem))

	full := catalog.New()
	full.Register("web_sales", ws)
	runner := Runner{Catalog: full, Exec: exec.Config{MemoryBytes: 1 << 20}}
	prep, err := runner.Prepare(src)
	if err != nil {
		t.Fatal(err)
	}
	if !prep.ShardLocal(key) {
		t.Fatal("statement should be shard-local on the item key")
	}
	want, err := prep.ExecuteContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	const shards = 3
	parts := exec.PartitionRows(ws.Rows, key.IDs(), shards)
	var concat *storage.Table
	for i := 0; i < shards; i++ {
		cat := catalog.New()
		pt := storage.NewTable(ws.Schema)
		pt.Rows = parts[i]
		cat.Register("web_sales", pt)
		r := Runner{Catalog: cat, Exec: exec.Config{MemoryBytes: 1 << 20}}
		p, err := r.Prepare(src)
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.ExecuteShardContext(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if concat == nil {
			concat = storage.NewTable(res.Table.Schema)
		}
		concat.Rows = append(concat.Rows, res.Table.Rows...)
	}
	got := prep.FinalizeConcat(concat)
	if got.FinalSort != "full" {
		t.Fatalf("finalize sort %q, want full", got.FinalSort)
	}
	if got.Table.Len() != want.Table.Len() {
		t.Fatalf("row count %d, want %d", got.Table.Len(), want.Table.Len())
	}
	for i := range want.Table.Rows {
		a := storage.AppendTuple(nil, got.Table.Rows[i])
		b := storage.AppendTuple(nil, want.Table.Rows[i])
		if !slices.Equal(a, b) {
			t.Fatalf("row %d differs after scatter composition", i)
		}
	}
}

// TestExecuteOverContext: a plan prepared against a schema-only stub
// executes over externally supplied rows (the gather path) and matches a
// directly prepared execution.
func TestExecuteOverContext(t *testing.T) {
	ws := datagen.WebSales(datagen.WebSalesConfig{Rows: 400, Seed: 5})
	src := `SELECT ws_order_number, rank() OVER (ORDER BY ws_sold_time_sk) AS r FROM web_sales ORDER BY ws_order_number`

	stub := catalog.New()
	stub.RegisterStub("web_sales", ws.Schema, catalog.TableStats{
		Rows:  int64(ws.Len()),
		Bytes: int64(ws.ByteSize()),
		Distinct: func(set attrs.Set) int64 {
			return int64(ws.DistinctCount(set))
		},
	})
	rStub := Runner{Catalog: stub, Exec: exec.Config{MemoryBytes: 1 << 20}}
	prep, err := rStub.Prepare(src)
	if err != nil {
		t.Fatal(err)
	}
	got, err := prep.ExecuteOverContext(context.Background(), ws)
	if err != nil {
		t.Fatal(err)
	}

	full := catalog.New()
	full.Register("web_sales", ws)
	rFull := Runner{Catalog: full, Exec: exec.Config{MemoryBytes: 1 << 20}}
	want, err := rFull.Query(src)
	if err != nil {
		t.Fatal(err)
	}
	if got.Table.Len() != want.Table.Len() {
		t.Fatalf("rows %d, want %d", got.Table.Len(), want.Table.Len())
	}
	for i := range want.Table.Rows {
		a := storage.AppendTuple(nil, got.Table.Rows[i])
		b := storage.AppendTuple(nil, want.Table.Rows[i])
		if !slices.Equal(a, b) {
			t.Fatalf("row %d differs between stub-over and direct execution", i)
		}
	}
}

// TestSegmentPlan pins the per-segment routing predicate: key-divergent
// chains with non-empty per-segment keys split, empty PARTITION BY voids
// the split, and common-key chains collapse to one segment.
func TestSegmentPlan(t *testing.T) {
	ws := datagen.WebSales(datagen.WebSalesConfig{Rows: 300, Seed: 2})
	cat := catalog.New()
	cat.Register("web_sales", ws)
	r := Runner{Catalog: cat, Exec: exec.Config{MemoryBytes: 1 << 20}}
	cases := []struct {
		src      string
		segments int // 0 = no segment plan
	}{
		// Disjoint WPKs: one segment per key.
		{`SELECT rank() OVER (PARTITION BY ws_item_sk ORDER BY ws_sold_date_sk) AS a,
		  rank() OVER (PARTITION BY ws_warehouse_sk ORDER BY ws_sold_date_sk) AS b FROM web_sales`, 2},
		{`SELECT rank() OVER (PARTITION BY ws_item_sk ORDER BY ws_sold_date_sk) AS a,
		  rank() OVER (PARTITION BY ws_warehouse_sk ORDER BY ws_sold_date_sk) AS b,
		  rank() OVER (PARTITION BY ws_bill_customer_sk ORDER BY ws_sold_date_sk) AS c FROM web_sales`, 3},
		// A shared key keeps the chain in one segment.
		{`SELECT rank() OVER (PARTITION BY ws_item_sk ORDER BY ws_sold_date_sk) AS a,
		  rank() OVER (PARTITION BY ws_item_sk ORDER BY ws_bill_customer_sk) AS b FROM web_sales`, 1},
		// An empty PARTITION BY leaves a segment keyless: no plan.
		{`SELECT rank() OVER (ORDER BY ws_sold_time_sk) AS a,
		  rank() OVER (PARTITION BY ws_item_sk ORDER BY ws_sold_date_sk) AS b FROM web_sales`, 0},
		// Window-less statements have no chain to segment.
		{`SELECT ws_item_sk FROM web_sales`, 0},
	}
	for _, tc := range cases {
		prep, err := r.Prepare(tc.src)
		if err != nil {
			t.Fatal(err)
		}
		sp := prep.SegmentPlan()
		got := 0
		if sp != nil {
			got = sp.Segments()
		}
		if got != tc.segments {
			t.Errorf("SegmentPlan(%q) = %d segments, want %d", tc.src, got, tc.segments)
		}
		if sp == nil {
			continue
		}
		// Every segment key must be non-empty and the order a permutation.
		seen := map[int]bool{}
		for _, id := range sp.Order {
			if seen[id] {
				t.Fatalf("wf %d appears twice in %v", id, sp.Order)
			}
			seen[id] = true
		}
		for i, key := range sp.Keys {
			if len(key) == 0 {
				t.Fatalf("segment %d of %q has an empty key", i, tc.src)
			}
		}
	}
}

// TestSegmentRunnerComposesToExecute is the algebraic identity the
// cluster's shuffle route rests on: hash-partitioning the table across N
// "nodes", running each segment per node with a re-shuffle on the
// segment's key in between, concatenating the final segment's projected
// streams and finalizing at a coordinator reproduces ExecuteContext
// exactly — WHERE, DISTINCT, ORDER BY and LIMIT included.
func TestSegmentRunnerComposesToExecute(t *testing.T) {
	ws := datagen.WebSales(datagen.WebSalesConfig{Rows: 900, Seed: 4})
	src := `SELECT ws_order_number, ws_warehouse_sk,
	 rank() OVER (PARTITION BY ws_item_sk ORDER BY ws_sold_date_sk) AS a,
	 rank() OVER (PARTITION BY ws_warehouse_sk ORDER BY ws_sold_date_sk) AS b
	 FROM web_sales WHERE ws_quantity <= 80 ORDER BY ws_order_number, b LIMIT 300`

	full := catalog.New()
	full.Register("web_sales", ws)
	runner := Runner{Catalog: full, Exec: exec.Config{MemoryBytes: 1 << 20}}
	prep, err := runner.Prepare(src)
	if err != nil {
		t.Fatal(err)
	}
	sp := prep.SegmentPlan()
	if sp == nil || sp.Segments() != 2 {
		t.Fatalf("want a 2-segment plan, got %+v", sp)
	}
	want, err := prep.ExecuteContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	const nodes = 3
	shardKey := attrs.MakeSet(attrs.ID(datagen.ColItem))
	parts := exec.PartitionRows(ws.Rows, shardKey.IDs(), nodes)
	runners := make([]*SegmentRunner, nodes)
	cur := make([]*storage.Table, nodes)
	for i := 0; i < nodes; i++ {
		cat := catalog.New()
		pt := storage.NewTable(ws.Schema)
		pt.Rows = parts[i]
		cat.Register("web_sales", pt)
		r := Runner{Catalog: cat, Exec: exec.Config{MemoryBytes: 1 << 20}}
		p, err := r.Prepare(src)
		if err != nil {
			t.Fatal(err)
		}
		if runners[i], err = p.Segments(sp); err != nil {
			t.Fatal(err)
		}
		if cur[i], err = runners[i].FilterBase(context.Background()); err != nil {
			t.Fatal(err)
		}
	}

	// reshuffle redistributes every node's current rows on key, exactly as
	// the nodes would exchange them over the wire.
	reshuffle := func(key []int, schema *storage.Schema) {
		ids := make([]attrs.ID, len(key))
		for i, c := range key {
			ids[i] = attrs.ID(c)
		}
		next := make([]*storage.Table, nodes)
		for i := range next {
			next[i] = storage.NewTable(schema)
		}
		for _, t := range cur {
			for p, rows := range exec.PartitionRows(t.Rows, ids, nodes) {
				next[p].Rows = append(next[p].Rows, rows...)
			}
		}
		cur = next
	}

	// Run every segment with a re-shuffle on its key first (always legal;
	// the cluster skips the first one when the shard key already covers
	// segment 0's key).
	for seg := 0; seg < sp.Segments()-1; seg++ {
		reshuffle(sp.Keys[seg], runners[0].InputSchema(seg))
		for i := 0; i < nodes; i++ {
			out, _, err := runners[i].Run(context.Background(), seg, cur[i])
			if err != nil {
				t.Fatal(err)
			}
			cur[i] = out
		}
	}
	last := sp.Segments() - 1
	reshuffle(sp.Keys[last], runners[0].InputSchema(last))
	var concat *storage.Table
	for i := 0; i < nodes; i++ {
		c, err := runners[i].StreamFinal(context.Background(), cur[i])
		if err != nil {
			t.Fatal(err)
		}
		for {
			row, err := c.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			if concat == nil {
				concat = storage.NewTable(storage.NewSchema(c.Columns()...))
			}
			concat.Rows = append(concat.Rows, row)
		}
	}
	got := prep.FinalizeConcat(concat)
	if got.Table.Len() != want.Table.Len() {
		t.Fatalf("rows %d, want %d", got.Table.Len(), want.Table.Len())
	}
	for i := range want.Table.Rows {
		a := storage.AppendTuple(nil, got.Table.Rows[i])
		b := storage.AppendTuple(nil, want.Table.Rows[i])
		if !slices.Equal(a, b) {
			t.Fatalf("row %d differs after segment composition", i)
		}
	}
}

// TestShardLocalPredicate pins the routing rule on crafted chains.
func TestShardLocalPredicate(t *testing.T) {
	ws := datagen.WebSales(datagen.WebSalesConfig{Rows: 50, Seed: 1})
	cat := catalog.New()
	cat.Register("web_sales", ws)
	r := Runner{Catalog: cat, Exec: exec.Config{MemoryBytes: 1 << 20}}
	item := attrs.MakeSet(attrs.ID(datagen.ColItem))
	itemBill := attrs.MakeSet(attrs.ID(datagen.ColItem), attrs.ID(datagen.ColBill))
	cases := []struct {
		src  string
		key  attrs.Set
		want bool
	}{
		// Chain common key {item,bill} covers both {item} and {item,bill}.
		{`SELECT rank() OVER (PARTITION BY ws_item_sk, ws_bill_customer_sk ORDER BY ws_quantity) AS r FROM web_sales`, item, true},
		{`SELECT rank() OVER (PARTITION BY ws_item_sk, ws_bill_customer_sk ORDER BY ws_quantity) AS r FROM web_sales`, itemBill, true},
		// Shard key {item,bill} is not contained in WPK {item}: one
		// item-partition spans shards (its rows hash by bill too), so the
		// chain cannot run shard-locally.
		{`SELECT rank() OVER (PARTITION BY ws_item_sk ORDER BY ws_quantity) AS r FROM web_sales`, itemBill, false},
		// Empty shard key never routes shard-local.
		{`SELECT ws_item_sk FROM web_sales`, 0, false},
		// Window-less statements distribute trivially.
		{`SELECT ws_item_sk FROM web_sales`, item, true},
	}
	for _, tc := range cases {
		prep, err := r.Prepare(tc.src)
		if err != nil {
			t.Fatal(err)
		}
		if got := prep.ShardLocal(tc.key); got != tc.want {
			t.Errorf("ShardLocal(%q, %v) = %v, want %v", tc.src, tc.key, got, tc.want)
		}
	}
}
