// Package sql parses and executes window-function SQL: SELECT lists mixing
// plain columns and OVER(...) window calls, WHERE filters, and a final
// ORDER BY — the "basic window query block" of the paper's Section 1. The
// runner binds against a catalog, plans the window functions with a chosen
// optimization scheme, executes the chain, and applies projection and final
// ordering.
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokSymbol
)

type token struct {
	kind tokenKind
	text string // keywords upper-cased; idents as written
	pos  int
}

// keywords recognized by the parser. Identifiers matching these (case-
// insensitively) lex as keywords.
var keywords = map[string]bool{
	"SELECT": true, "DISTINCT": true, "FROM": true, "WHERE": true, "AS": true,
	"OVER": true, "PARTITION": true, "BY": true, "ORDER": true,
	"ASC": true, "DESC": true, "NULLS": true, "FIRST": true, "LAST": true,
	"ROWS": true, "RANGE": true, "BETWEEN": true, "AND": true, "OR": true,
	"NOT": true, "UNBOUNDED": true, "PRECEDING": true, "FOLLOWING": true,
	"CURRENT": true, "ROW": true, "NULL": true, "IS": true, "LIMIT": true,
	"TRUE": true, "FALSE": true,
	"INSERT": true, "INTO": true, "VALUES": true, "SUBSCRIBE": true,
}

type lexer struct {
	src string
	pos int
}

func (l *lexer) error(pos int, format string, args ...interface{}) error {
	return fmt.Errorf("sql: at offset %d: %s", pos, fmt.Sprintf(format, args...))
}

// lex tokenizes the whole input.
func (l *lexer) lex() ([]token, error) {
	var out []token
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			out = append(out, token{kind: tokEOF, pos: l.pos})
			return out, nil
		}
		start := l.pos
		c := l.src[l.pos]
		switch {
		case isIdentStart(rune(c)):
			for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
				l.pos++
			}
			text := l.src[start:l.pos]
			upper := strings.ToUpper(text)
			if keywords[upper] {
				out = append(out, token{kind: tokKeyword, text: upper, pos: start})
			} else {
				out = append(out, token{kind: tokIdent, text: text, pos: start})
			}
		case c >= '0' && c <= '9':
			seenDot := false
			for l.pos < len(l.src) {
				ch := l.src[l.pos]
				if ch == '.' && !seenDot {
					seenDot = true
					l.pos++
					continue
				}
				if ch < '0' || ch > '9' {
					break
				}
				l.pos++
			}
			out = append(out, token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
		case c == '\'':
			l.pos++
			var sb strings.Builder
			for {
				if l.pos >= len(l.src) {
					return nil, l.error(start, "unterminated string literal")
				}
				if l.src[l.pos] == '\'' {
					if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
						sb.WriteByte('\'')
						l.pos += 2
						continue
					}
					l.pos++
					break
				}
				sb.WriteByte(l.src[l.pos])
				l.pos++
			}
			out = append(out, token{kind: tokString, text: sb.String(), pos: start})
		case c == '"':
			// Double-quoted identifier: the content is the name as written
			// (no case folding, "" escapes one quote). It lexes to the same
			// tokIdent a bare spelling would, so `"ws_item_sk"` and
			// `ws_item_sk` parse identically; quoting only matters when the
			// name collides with a keyword or holds non-identifier runes.
			l.pos++
			var sb strings.Builder
			for {
				if l.pos >= len(l.src) {
					return nil, l.error(start, "unterminated quoted identifier")
				}
				if l.src[l.pos] == '"' {
					if l.pos+1 < len(l.src) && l.src[l.pos+1] == '"' {
						sb.WriteByte('"')
						l.pos += 2
						continue
					}
					l.pos++
					break
				}
				sb.WriteByte(l.src[l.pos])
				l.pos++
			}
			if sb.Len() == 0 {
				return nil, l.error(start, "empty quoted identifier")
			}
			out = append(out, token{kind: tokIdent, text: sb.String(), pos: start})
		default:
			// Multi-char operators first.
			for _, op := range []string{"<>", "<=", ">=", "!="} {
				if strings.HasPrefix(l.src[l.pos:], op) {
					out = append(out, token{kind: tokSymbol, text: op, pos: start})
					l.pos += 2
					goto next
				}
			}
			switch c {
			case '(', ')', ',', '*', '=', '<', '>', '.', '-', '+':
				out = append(out, token{kind: tokSymbol, text: string(c), pos: start})
				l.pos++
			default:
				return nil, l.error(start, "unexpected character %q", c)
			}
		next:
		}
	}
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := rune(l.src[l.pos])
		if unicode.IsSpace(c) {
			l.pos++
			continue
		}
		// -- line comments
		if c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		return
	}
}

func isIdentStart(c rune) bool {
	return c == '_' || unicode.IsLetter(c)
}

func isIdentPart(c rune) bool {
	return c == '_' || unicode.IsLetter(c) || unicode.IsDigit(c)
}

// IsBareIdent reports whether s lexes as one unquoted identifier — i.e.
// double-quoting it is redundant. Keywords are not bare: they need the
// quotes to read as names rather than syntax.
func IsBareIdent(s string) bool {
	for i, r := range s {
		if i == 0 {
			if !isIdentStart(r) {
				return false
			}
		} else if !isIdentPart(r) {
			return false
		}
	}
	return s != "" && !keywords[strings.ToUpper(s)]
}

// Canonical renders src as a canonical statement key: tokens joined by
// single spaces, keywords upper-cased, comments dropped, strings re-quoted
// with doubled-quote escapes, and quoted identifiers unquoted whenever the
// quotes are redundant (IsBareIdent). Two texts get one key exactly when
// they lex to the same token stream, so the spacing, comment, keyword-case
// and quoting variants one dashboard fleet emits collapse to one cache
// slot while semantically distinct statements never collide. Identifier
// case is preserved — it is semantic (an alias names its output column
// with its written spelling). Fails where the lexer fails; callers keying
// arbitrary text need a fallback.
func Canonical(src string) (string, error) {
	toks, err := (&lexer{src: src}).lex()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.Grow(len(src))
	for _, t := range toks {
		if t.kind == tokEOF {
			break
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		switch t.kind {
		case tokString:
			b.WriteByte('\'')
			b.WriteString(strings.ReplaceAll(t.text, `'`, `''`))
			b.WriteByte('\'')
		case tokIdent:
			if IsBareIdent(t.text) {
				b.WriteString(t.text)
			} else {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(t.text, `"`, `""`))
				b.WriteByte('"')
			}
		default:
			b.WriteString(t.text)
		}
	}
	return b.String(), nil
}
