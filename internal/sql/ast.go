package sql

// The abstract syntax of the supported window query block:
//
//	SELECT item [, item ...]
//	FROM table
//	[WHERE predicate]
//	[ORDER BY col [ASC|DESC] [NULLS FIRST|LAST], ...]
//	[LIMIT n]
//
// where item is '*', a column reference, or a window function call
// fn(args) OVER (PARTITION BY ... ORDER BY ... [frame]) with an optional
// AS alias.

// Query is a parsed window query block.
type Query struct {
	Distinct bool
	Items    []SelectItem
	Table    string
	Where    Expr // nil when absent
	OrderBy  []OrderItem
	Limit    int64 // -1 when absent
}

// SelectItem is one SELECT-list entry.
type SelectItem struct {
	Star   bool
	Column string      // column reference (when Window == nil and !Star)
	Window *WindowCall // window function call
	Alias  string
}

// WindowCall is fn(args) OVER (...).
type WindowCall struct {
	Func        string
	Star        bool // fn(*) — count(*)
	Args        []Arg
	PartitionBy []string
	OrderBy     []OrderItem
	Frame       *FrameClause
}

// Arg is a window function argument: a column or a literal.
type Arg struct {
	Column string // non-empty for column refs
	Lit    *Literal
}

// Literal is a constant.
type Literal struct {
	IsNull bool
	Int    *int64
	Float  *float64
	Str    *string
	Bool   *bool
}

// OrderItem is one ordering element.
type OrderItem struct {
	Column     string
	Desc       bool
	NullsFirst bool
	// nullsSet records an explicit NULLS FIRST/LAST (default: NULLS LAST
	// for ASC, NULLS FIRST for DESC — PostgreSQL's convention).
	nullsSet bool
}

// FrameClause is ROWS/RANGE BETWEEN a AND b.
type FrameClause struct {
	Rows  bool // true = ROWS, false = RANGE
	Start FrameBound
	End   FrameBound
}

// FrameBound is one frame endpoint.
type FrameBound struct {
	Kind   string // "UNBOUNDED PRECEDING", "PRECEDING", "CURRENT ROW", "FOLLOWING", "UNBOUNDED FOLLOWING"
	Offset int64
}

// Expr is a WHERE predicate node.
type Expr interface{ isExpr() }

// BinaryExpr is AND/OR or a comparison.
type BinaryExpr struct {
	Op   string // "AND", "OR", "=", "<>", "<", "<=", ">", ">="
	L, R Expr
}

// NotExpr negates a predicate.
type NotExpr struct{ E Expr }

// ColumnRef names a column inside a predicate.
type ColumnRef struct{ Name string }

// LitExpr wraps a literal inside a predicate.
type LitExpr struct{ Lit Literal }

// IsNullExpr is col IS [NOT] NULL.
type IsNullExpr struct {
	E   Expr
	Not bool
}

func (*BinaryExpr) isExpr() {}
func (*NotExpr) isExpr()    {}
func (*ColumnRef) isExpr()  {}
func (*LitExpr) isExpr()    {}
func (*IsNullExpr) isExpr() {}
