package sql

import (
	"errors"
	"testing"

	"repro/internal/storage"
)

func TestIsInsert(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{"INSERT INTO t VALUES (1)", true},
		{"  insert into t values (1)", true},
		{"InSeRt INTO t VALUES (1)", true},
		{"INSERTX INTO t VALUES (1)", false},
		{"SELECT 1", false},
		{"", false},
	}
	for _, c := range cases {
		if got := IsInsert(c.src); got != c.want {
			t.Errorf("IsInsert(%q) = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestParseInsert(t *testing.T) {
	ins, err := ParseInsert(`INSERT INTO ws VALUES (1, 'a', 2.5, NULL), (-3, 'it''s', 0.0, TRUE)`)
	if err != nil {
		t.Fatal(err)
	}
	if ins.Table != "ws" {
		t.Errorf("table = %q", ins.Table)
	}
	if len(ins.Rows) != 2 {
		t.Fatalf("rows = %d", len(ins.Rows))
	}
	want0 := storage.Tuple{storage.Int(1), storage.StringVal("a"), storage.Float(2.5), storage.Null}
	for i, v := range want0 {
		if ins.Rows[0][i] != v {
			t.Errorf("row 0 col %d = %s, want %s", i, ins.Rows[0][i], v)
		}
	}
	if ins.Rows[1][0] != storage.Int(-3) {
		t.Errorf("negative literal = %s", ins.Rows[1][0])
	}
	if ins.Rows[1][1] != storage.StringVal("it's") {
		t.Errorf("escaped string = %s", ins.Rows[1][1])
	}
}

func TestParseInsertErrors(t *testing.T) {
	for _, src := range []string{
		"INSERT t VALUES (1)",
		"INSERT INTO t (1)",
		"INSERT INTO t VALUES ()",
		"INSERT INTO t VALUES (1),",
		"INSERT INTO t VALUES (1) garbage",
		"INSERT INTO t VALUES (1 2)",
	} {
		_, err := ParseInsert(src)
		if err == nil {
			t.Errorf("%q: parsed without error", src)
			continue
		}
		if !errors.Is(err, ErrParse) {
			t.Errorf("%q: error class = %v, want ErrParse", src, err)
		}
	}
}
