package sql

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/attrs"
	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/storage"
	"repro/internal/window"
)

// Scheme names a window-function optimization scheme.
type Scheme string

// The four schemes evaluated in the paper's Section 6.
const (
	SchemeCSO  Scheme = "CSO"
	SchemeBFO  Scheme = "BFO"
	SchemeORCL Scheme = "ORCL"
	SchemePSQL Scheme = "PSQL"
)

// Runner executes window queries against a catalog.
type Runner struct {
	Catalog *catalog.Catalog
	// Scheme selects the plan generator (default CSO).
	Scheme Scheme
	// Exec carries the execution resources (unit reorder memory etc.).
	Exec exec.Config
}

// Result is an executed query: the output table plus the window chain and
// its execution metrics (nil when the query had no window functions).
type Result struct {
	Table   *storage.Table
	Plan    *core.Plan
	Metrics *exec.Metrics
	// FinalSort reports how the query's ORDER BY was satisfied: "none"
	// (no ORDER BY), "full" (explicit sort), "partial" (the chain's output
	// ordering pre-satisfied a prefix; only within-group sorting remained)
	// or "avoided" (the chain's output already satisfied it — Section 5's
	// interesting-order integration).
	FinalSort string
	// SatisfiedPrefix counts the leading ORDER BY elements the chain's
	// output ordering guaranteed.
	SatisfiedPrefix int
	// Parallelism is the worker degree the chain actually executed with:
	// 1 when every step ran on the sequential pipeline — including chains
	// the parallel executor fell back on for lack of a common partition
	// key — and the configured degree when at least one segment ran
	// hash-partitioned (Metrics.PartitionedSteps > 0). When the final
	// segment ran partitioned (Metrics.Concatenated), the chain's nominal
	// output ordering is not preserved and any ORDER BY is satisfied by a
	// full explicit sort; chains run sequentially end to end keep
	// Section 5's sort avoidance.
	Parallelism int
}

// Query parses, plans and executes one window query block.
func (r *Runner) Query(src string) (*Result, error) {
	q, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return r.Run(q)
}

// Run executes a parsed query.
func (r *Runner) Run(q *Query) (*Result, error) {
	entry, err := r.Catalog.Lookup(q.Table)
	if err != nil {
		return nil, err
	}
	base := entry.Table
	schema := base.Schema

	// WHERE: filter into the windowed table WT (Section 5's loose
	// integration: all clauses except ORDER BY run before the windows).
	windowed := base
	if q.Where != nil {
		wt := storage.NewTable(schema)
		for _, row := range base.Rows {
			v, err := evalPredicate(q.Where, row, schema)
			if err != nil {
				return nil, err
			}
			if v == tTrue {
				wt.Rows = append(wt.Rows, row)
			}
		}
		windowed = wt
	}

	// Bind the window calls in SELECT order.
	var specs []window.Spec
	windowItem := make([]int, len(q.Items)) // item index -> wf ID or -1
	for i, item := range q.Items {
		windowItem[i] = -1
		if item.Window == nil {
			continue
		}
		name := item.Alias
		if name == "" {
			name = item.Window.Func
		}
		spec, err := BindWindowCall(item.Window, schema, name)
		if err != nil {
			return nil, err
		}
		if err := spec.Validate(schema); err != nil {
			return nil, err
		}
		windowItem[i] = len(specs)
		specs = append(specs, spec)
	}

	result := &Result{FinalSort: "none", Parallelism: 1}
	executed := windowed
	wfCol := map[int]int{} // wf ID -> column in executed table
	// Section 5 integration: resolve the longest ORDER BY prefix whose
	// columns are base-table columns of the output; CSO aligns its chain
	// toward it. Resolution must honor SELECT-list aliases (an alias can
	// shadow a base column name), so it goes through the projected names,
	// not the base schema directly.
	var alignOrder attrs.Seq
	for _, item := range q.OrderBy {
		c, isBase := resolveOutputColumn(q.Items, schema, item.Column)
		if !isBase {
			break
		}
		alignOrder = append(alignOrder, attrs.Elem{Attr: attrs.ID(c), Desc: item.Desc, NullsFirst: item.NullsFirst})
	}
	if len(specs) > 0 {
		ws := make([]core.WF, len(specs))
		for i, s := range specs {
			ws[i] = s.WF(i)
		}
		opt := core.Options{Cost: entry.CostParams(r.Exec.MemoryBytes, r.Exec.BlockSize)}
		var plan *core.Plan
		switch r.Scheme {
		case SchemeBFO:
			plan, err = core.BFO(ws, core.Unordered(), opt)
		case SchemeORCL:
			plan, err = core.ORCL(ws, core.Unordered(), opt)
		case SchemePSQL:
			plan, err = core.PSQL(ws, core.Unordered())
		case SchemeCSO, "":
			plan, err = core.CSOAligned(ws, core.Unordered(), opt, alignOrder)
			// Alignment toward the ORDER BY cannot pay off when the parallel
			// path will concatenate partitions (the output loses the chain's
			// nominal order and is fully sorted anyway); take CSO's cheapest
			// unaligned chain instead of paying for a dead alignment.
			if err == nil && len(alignOrder) > 0 && r.Exec.Parallelism > 1 && exec.Concatenates(plan) {
				plan, err = core.CSO(ws, core.Unordered(), opt)
			}
		default:
			return nil, fmt.Errorf("sql: unknown scheme %q", r.Scheme)
		}
		if err != nil {
			return nil, err
		}
		cfg := r.Exec
		if cfg.Distinct == nil {
			cfg.Distinct = entry.Distinct
		}
		var (
			out     *storage.Table
			metrics *exec.Metrics
		)
		// Parallelism must be set explicitly (> 1) to engage the parallel
		// chain executor here: a zero-value Runner stays on the sequential
		// path (facades that want the GOMAXPROCS default resolve it before
		// building the Runner, as windowdb.Engine does).
		if cfg.Parallelism > 1 {
			out, metrics, err = exec.ParallelRun(windowed, specs, plan, cfg, cfg.Parallelism)
			if err == nil && metrics.PartitionedSteps > 0 {
				result.Parallelism = cfg.Parallelism
			}
		} else {
			out, metrics, err = exec.Run(windowed, specs, plan, cfg)
		}
		if err != nil {
			return nil, err
		}
		executed = out
		result.Plan = plan
		result.Metrics = metrics
		for pos, step := range plan.Steps {
			wfCol[step.WF.ID] = schema.Len() + pos
		}
	}

	// Projection.
	var outCols []storage.Column
	var pick []int // source column per output column
	for i, item := range q.Items {
		switch {
		case item.Star:
			for c := 0; c < schema.Len(); c++ {
				outCols = append(outCols, schema.Columns[c])
				pick = append(pick, c)
			}
		case item.Window != nil:
			src := wfCol[windowItem[i]]
			col := executed.Schema.Columns[src]
			if item.Alias != "" {
				col.Name = item.Alias
			}
			outCols = append(outCols, col)
			pick = append(pick, src)
		default:
			c := schema.ColIndex(item.Column)
			if c < 0 {
				return nil, fmt.Errorf("sql: unknown column %q", item.Column)
			}
			col := schema.Columns[c]
			if item.Alias != "" {
				col.Name = item.Alias
			}
			outCols = append(outCols, col)
			pick = append(pick, c)
		}
	}
	outSchema := storage.NewSchema(outCols...)
	outTable := storage.NewTable(outSchema)
	outTable.Rows = make([]storage.Tuple, executed.Len())
	for ri, row := range executed.Rows {
		t := make(storage.Tuple, len(pick))
		for ci, src := range pick {
			t[ci] = row[src]
		}
		outTable.Rows[ri] = t
	}

	// DISTINCT: deduplicate projected rows (evaluated after the window
	// functions, as in the paper's Section 1/5 decomposition; NULLs compare
	// equal, per SQL DISTINCT semantics).
	if q.Distinct {
		seen := make(map[string]bool, outTable.Len())
		dedup := outTable.Rows[:0]
		for _, row := range outTable.Rows {
			key := string(storage.AppendTuple(nil, row))
			if !seen[key] {
				seen[key] = true
				dedup = append(dedup, row)
			}
		}
		outTable.Rows = dedup
	}

	// Final ORDER BY over output columns. When the chain's output ordering
	// already satisfies a prefix of the key (Section 5), the sort is
	// avoided or downgraded to per-group partial sorting.
	if len(q.OrderBy) > 0 {
		var key attrs.Seq
		for _, item := range q.OrderBy {
			c := outSchema.ColIndex(item.Column)
			if c < 0 {
				return nil, fmt.Errorf("sql: ORDER BY column %q not in output", item.Column)
			}
			key = append(key, attrs.Elem{Attr: attrs.ID(c), Desc: item.Desc, NullsFirst: item.NullsFirst})
		}
		sat := 0
		// A chain whose final segment ran hash-partitioned concatenates
		// partitions, so the plan's nominal final ordering holds only
		// within each partition; the ORDER BY must then be satisfied by a
		// full sort.
		if result.Plan != nil && (result.Metrics == nil || !result.Metrics.Concatenated) {
			finalProps := result.Plan.FinalProps(core.Unordered())
			sat = core.OrderSatisfiedPrefix(finalProps, alignOrder)
			// The satisfied alignment elements must actually be the leading
			// ORDER BY items (alignOrder was built from that prefix).
			if sat > len(key) {
				sat = len(key)
			}
		}
		result.SatisfiedPrefix = sat
		switch {
		case sat >= len(key):
			result.FinalSort = "avoided"
		case sat > 0:
			result.FinalSort = "partial"
			partialSort(outTable.Rows, key, sat)
		default:
			result.FinalSort = "full"
			sort.SliceStable(outTable.Rows, func(i, j int) bool {
				return storage.CompareSeq(outTable.Rows[i], outTable.Rows[j], key) < 0
			})
		}
	}
	if q.Limit >= 0 && int64(outTable.Len()) > q.Limit {
		outTable.Rows = outTable.Rows[:q.Limit]
	}
	result.Table = outTable
	return result, nil
}

// resolveOutputColumn finds the first SELECT item whose visible name is
// name and, when that item projects a base-table column, returns the base
// column index. Window-function items and unmatched names return false.
func resolveOutputColumn(items []SelectItem, schema *storage.Schema, name string) (int, bool) {
	for _, item := range items {
		switch {
		case item.Star:
			if c := schema.ColIndex(name); c >= 0 {
				return c, true
			}
		case item.Window != nil:
			visible := item.Alias
			if visible == "" {
				visible = item.Window.Func
			}
			if strings.EqualFold(visible, name) {
				return 0, false
			}
		default:
			visible := item.Alias
			if visible == "" {
				visible = item.Column
			}
			if strings.EqualFold(visible, name) {
				c := schema.ColIndex(item.Column)
				return c, c >= 0
			}
		}
	}
	return 0, false
}

// partialSort exploits a pre-satisfied key prefix: rows already arrive in
// runs that agree on key[:sat], so only each run needs sorting on the key
// remainder — the partial sort of [7, 13], which Section 3.3 identifies as
// a special case of Segmented Sort.
func partialSort(rows []storage.Tuple, key attrs.Seq, sat int) {
	prefix, rest := key[:sat], key[sat:]
	start := 0
	for start < len(rows) {
		end := start + 1
		for end < len(rows) && storage.CompareSeq(rows[start], rows[end], prefix) == 0 {
			end++
		}
		run := rows[start:end]
		sort.SliceStable(run, func(i, j int) bool {
			return storage.CompareSeq(run[i], run[j], rest) < 0
		})
		start = end
	}
}

// FormatTable renders a result table with padded columns, for examples and
// the CLI.
func FormatTable(t *storage.Table, maxRows int) string {
	var sb strings.Builder
	widths := make([]int, t.Schema.Len())
	for i, c := range t.Schema.Columns {
		widths[i] = len(c.Name)
	}
	n := t.Len()
	if maxRows > 0 && n > maxRows {
		n = maxRows
	}
	for _, row := range t.Rows[:n] {
		for i, v := range row {
			if l := len(v.String()); l > widths[i] {
				widths[i] = l
			}
		}
	}
	for i, c := range t.Schema.Columns {
		if i > 0 {
			sb.WriteString("  ")
		}
		fmt.Fprintf(&sb, "%-*s", widths[i], strings.ToUpper(c.Name))
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows[:n] {
		for i, v := range row {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], v.String())
		}
		sb.WriteByte('\n')
	}
	if n < t.Len() {
		fmt.Fprintf(&sb, "... (%d more rows)\n", t.Len()-n)
	}
	return sb.String()
}
