package sql

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/attrs"
	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/storage"
)

// Scheme names a window-function optimization scheme.
type Scheme string

// The four schemes evaluated in the paper's Section 6.
const (
	SchemeCSO  Scheme = "CSO"
	SchemeBFO  Scheme = "BFO"
	SchemeORCL Scheme = "ORCL"
	SchemePSQL Scheme = "PSQL"
)

// Runner executes window queries against a catalog.
type Runner struct {
	Catalog *catalog.Catalog
	// Scheme selects the plan generator (default CSO).
	Scheme Scheme
	// Exec carries the execution resources (unit reorder memory etc.).
	Exec exec.Config
	// DisableHS / DisableSS restrict the optimizer to the paper's CSO(v1)
	// / CSO(v2) ablation variants, matching windowdb.Config's switches.
	DisableHS bool
	DisableSS bool
}

// Result is an executed query: the output table plus the window chain and
// its execution metrics (nil when the query had no window functions).
type Result struct {
	Table   *storage.Table
	Plan    *core.Plan
	Metrics *exec.Metrics
	// FinalSort reports how the query's ORDER BY was satisfied: "none"
	// (no ORDER BY), "full" (explicit sort), "partial" (the chain's output
	// ordering pre-satisfied a prefix; only within-group sorting remained)
	// or "avoided" (the chain's output already satisfied it — Section 5's
	// interesting-order integration).
	FinalSort string
	// SatisfiedPrefix counts the leading ORDER BY elements the chain's
	// output ordering guaranteed.
	SatisfiedPrefix int
	// Parallelism is the worker degree the chain actually executed with:
	// 1 when every step ran on the sequential pipeline — including chains
	// the parallel executor fell back on for lack of a common partition
	// key — and the configured degree when at least one segment ran
	// hash-partitioned (Metrics.PartitionedSteps > 0). When the final
	// segment ran partitioned (Metrics.Concatenated), the chain's nominal
	// output ordering is not preserved and any ORDER BY is satisfied by a
	// full explicit sort; chains run sequentially end to end keep
	// Section 5's sort avoidance.
	Parallelism int
	// EstRows is the planner's input-cardinality estimate for the queried
	// table (catalog |R|): the "estimated rows" EXPLAIN ANALYZE contrasts
	// with each step's observed cardinality.
	EstRows int64
	// Watermark is the table data generation a maintained (SUBSCRIBE)
	// cursor's output is current as of; 0 for one-shot queries.
	Watermark uint64
	// SharedScan is the shared-subplan cache disposition of this execution
	// — "miss" (this query ran the scan), "hit" (served from a completed
	// segment) or "attach" (waited on an in-flight scan). Empty when the
	// execution did not go through the shared-subplan cache. Set by the
	// serving layer.
	SharedScan string
}

// Query parses, plans and executes one window query block.
func (r *Runner) Query(src string) (*Result, error) {
	return r.QueryContext(context.Background(), src)
}

// QueryContext is Query with cancellation and deadline support: ctx is
// threaded through the executor and checked at chain-step boundaries.
func (r *Runner) QueryContext(ctx context.Context, src string) (*Result, error) {
	p, err := r.Prepare(src)
	if err != nil {
		return nil, err
	}
	return p.ExecuteContext(ctx)
}

// Run executes a parsed query.
func (r *Runner) Run(q *Query) (*Result, error) {
	return r.RunContext(context.Background(), q)
}

// RunContext prepares and executes a parsed query under ctx.
func (r *Runner) RunContext(ctx context.Context, q *Query) (*Result, error) {
	p, err := r.prepare(q, "")
	if err != nil {
		return nil, err
	}
	return p.ExecuteContext(ctx)
}

// resolveOutputColumn finds the first SELECT item whose visible name is
// name and, when that item projects a base-table column, returns the base
// column index. Window-function items and unmatched names return false.
func resolveOutputColumn(items []SelectItem, schema *storage.Schema, name string) (int, bool) {
	for _, item := range items {
		switch {
		case item.Star:
			if c := schema.ColIndex(name); c >= 0 {
				return c, true
			}
		case item.Window != nil:
			visible := item.Alias
			if visible == "" {
				visible = item.Window.Func
			}
			if strings.EqualFold(visible, name) {
				return 0, false
			}
		default:
			visible := item.Alias
			if visible == "" {
				visible = item.Column
			}
			if strings.EqualFold(visible, name) {
				c := schema.ColIndex(item.Column)
				return c, c >= 0
			}
		}
	}
	return 0, false
}

// partialSort exploits a pre-satisfied key prefix: rows already arrive in
// runs that agree on key[:sat], so only each run needs sorting on the key
// remainder — the partial sort of [7, 13], which Section 3.3 identifies as
// a special case of Segmented Sort.
func partialSort(rows []storage.Tuple, key attrs.Seq, sat int) {
	prefix, rest := key[:sat], key[sat:]
	start := 0
	for start < len(rows) {
		end := start + 1
		for end < len(rows) && storage.CompareSeq(rows[start], rows[end], prefix) == 0 {
			end++
		}
		run := rows[start:end]
		sort.SliceStable(run, func(i, j int) bool {
			return storage.CompareSeq(run[i], run[j], rest) < 0
		})
		start = end
	}
}

// FormatTable renders a result table with padded columns, for examples and
// the CLI.
func FormatTable(t *storage.Table, maxRows int) string {
	var sb strings.Builder
	widths := make([]int, t.Schema.Len())
	for i, c := range t.Schema.Columns {
		widths[i] = len(c.Name)
	}
	n := t.Len()
	if maxRows > 0 && n > maxRows {
		n = maxRows
	}
	for _, row := range t.Rows[:n] {
		for i, v := range row {
			if l := len(v.String()); l > widths[i] {
				widths[i] = l
			}
		}
	}
	for i, c := range t.Schema.Columns {
		if i > 0 {
			sb.WriteString("  ")
		}
		fmt.Fprintf(&sb, "%-*s", widths[i], strings.ToUpper(c.Name))
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows[:n] {
		for i, v := range row {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], v.String())
		}
		sb.WriteByte('\n')
	}
	if n < t.Len() {
		fmt.Fprintf(&sb, "... (%d more rows)\n", t.Len()-n)
	}
	return sb.String()
}
