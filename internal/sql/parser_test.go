package sql

import (
	"testing"
)

func TestParseFullQuery(t *testing.T) {
	q, err := Parse(`
		SELECT DISTINCT a, b AS bee, sum(c) OVER (PARTITION BY a, b ORDER BY d DESC NULLS FIRST
		       ROWS BETWEEN 2 PRECEDING AND UNBOUNDED FOLLOWING) total
		FROM t
		WHERE (a >= 1 AND b <> 'x''y') OR NOT c IS NULL
		ORDER BY bee DESC, a NULLS FIRST
		LIMIT 10`)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Distinct || q.Table != "t" || q.Limit != 10 {
		t.Errorf("query header wrong: %+v", q)
	}
	if len(q.Items) != 3 {
		t.Fatalf("items = %d", len(q.Items))
	}
	if q.Items[1].Alias != "bee" || q.Items[2].Alias != "total" {
		t.Errorf("aliases: %q %q", q.Items[1].Alias, q.Items[2].Alias)
	}
	w := q.Items[2].Window
	if w == nil || w.Func != "sum" || len(w.PartitionBy) != 2 {
		t.Fatalf("window call: %+v", w)
	}
	if len(w.OrderBy) != 1 || !w.OrderBy[0].Desc || !w.OrderBy[0].NullsFirst {
		t.Errorf("window order: %+v", w.OrderBy)
	}
	if w.Frame == nil || !w.Frame.Rows || w.Frame.Start.Kind != "PRECEDING" ||
		w.Frame.Start.Offset != 2 || w.Frame.End.Kind != "UNBOUNDED FOLLOWING" {
		t.Errorf("frame: %+v", w.Frame)
	}
	if len(q.OrderBy) != 2 || !q.OrderBy[0].Desc || !q.OrderBy[1].NullsFirst {
		t.Errorf("order by: %+v", q.OrderBy)
	}
	be, ok := q.Where.(*BinaryExpr)
	if !ok || be.Op != "OR" {
		t.Fatalf("where root: %T", q.Where)
	}
}

func TestParseSingleBoundFrame(t *testing.T) {
	q, err := Parse(`SELECT sum(c) OVER (ORDER BY d RANGE UNBOUNDED PRECEDING) FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	f := q.Items[0].Window.Frame
	if f.Rows || f.Start.Kind != "UNBOUNDED PRECEDING" || f.End.Kind != "CURRENT ROW" {
		t.Errorf("shorthand frame: %+v", f)
	}
}

func TestParseDefaultNullOrdering(t *testing.T) {
	q, err := Parse(`SELECT a FROM t ORDER BY a, b DESC`)
	if err != nil {
		t.Fatal(err)
	}
	// PostgreSQL default: ASC → NULLS LAST, DESC → NULLS FIRST.
	if q.OrderBy[0].NullsFirst {
		t.Errorf("ASC should default to NULLS LAST")
	}
	if !q.OrderBy[1].NullsFirst {
		t.Errorf("DESC should default to NULLS FIRST")
	}
}

func TestParseLiterals(t *testing.T) {
	q, err := Parse(`SELECT lead(a, 2, -5) OVER (ORDER BY a) FROM t WHERE b = 'it''s' AND c <> 2.5 AND d = TRUE AND e = NULL`)
	if err != nil {
		t.Fatal(err)
	}
	args := q.Items[0].Window.Args
	if len(args) != 3 || args[1].Lit.Int == nil || *args[1].Lit.Int != 2 {
		t.Errorf("args: %+v", args)
	}
	if *args[2].Lit.Int != -5 {
		t.Errorf("negative literal: %+v", args[2].Lit)
	}
}

func TestParseComments(t *testing.T) {
	q, err := Parse("SELECT a -- trailing comment\nFROM t -- another\n")
	if err != nil {
		t.Fatal(err)
	}
	if q.Table != "t" {
		t.Errorf("comments broke parsing")
	}
}

func TestParseCountStar(t *testing.T) {
	q, err := Parse(`SELECT count(*) OVER () FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Items[0].Window.Star {
		t.Errorf("count(*) star flag missing")
	}
}

func TestParseBareAlias(t *testing.T) {
	q, err := Parse(`SELECT a the_a FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Items[0].Alias != "the_a" {
		t.Errorf("bare alias: %+v", q.Items[0])
	}
}

func TestParseMoreErrors(t *testing.T) {
	bad := []string{
		"SELECT a FROM t WHERE a IS",            // incomplete IS
		"SELECT a FROM t ORDER BY a NULLS",      // incomplete NULLS
		"SELECT f(a) OVER (PARTITION a) FROM t", // missing BY
		"SELECT f(a) OVER (ROWS BETWEEN 1 PRECEDING AND) FROM t",
		"SELECT f(a) OVER (ROWS BETWEEN UNBOUNDED AND 1 FOLLOWING) FROM t",
		"SELECT f(a) OVER (ROWS 1) FROM t", // bare offset, no direction
		"SELECT a FROM t LIMIT x",          // non-numeric limit
		"SELECT a FROM t extra stuff ~",    // trailing garbage
		"SELECT lead(a, 1, ) OVER (ORDER BY a) FROM t",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestQuotedIdentifiers(t *testing.T) {
	q, err := Parse(`SELECT "a", sum("c") OVER (PARTITION BY "a" ORDER BY "d") AS "Total", "order" FROM "t" WHERE "a" >= 1`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Table != "t" {
		t.Errorf("quoted table: %q", q.Table)
	}
	if q.Items[1].Alias != "Total" {
		t.Errorf("quoted alias kept its case: %q", q.Items[1].Alias)
	}
	if q.Items[2].Column != "order" {
		t.Errorf("quoted keyword as column: %+v", q.Items[2])
	}
	bad := []string{
		`SELECT "a FROM t`, // unterminated
		`SELECT "" FROM t`, // empty
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestCanonical(t *testing.T) {
	cases := []struct{ in, want string }{
		{"select  a\nfrom t -- c", "SELECT a FROM t"},
		{`SELECT "a", "it""s", "order" FROM "t"`, `SELECT a , "it""s" , "order" FROM t`},
		{`SELECT 'it''s' FROM t WHERE a <> 2.50`, `SELECT 'it''s' FROM t WHERE a <> 2.50`},
	}
	for _, tc := range cases {
		got, err := Canonical(tc.in)
		if err != nil {
			t.Errorf("Canonical(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("Canonical(%q) = %q, want %q", tc.in, got, tc.want)
		}
		// Canonical is a fixed point: re-rendering changes nothing.
		again, err := Canonical(got)
		if err != nil || again != got {
			t.Errorf("Canonical(%q) not a fixed point: %q, %v", got, again, err)
		}
	}
	if _, err := Canonical("SELECT $"); err == nil {
		t.Error("Canonical should fail where the lexer fails")
	}
}
