package sql

import (
	"strings"

	"repro/internal/storage"
)

// Insert is a parsed INSERT INTO <table> VALUES (...), (...) statement.
// Values are literal tuples; type validation and INT→FLOAT coercion
// against the table schema happen in catalog.Append, so an Insert parses
// without a catalog.
type Insert struct {
	Table string
	Rows  []storage.Tuple
}

// IsInsert reports whether src's first keyword is INSERT — the cheap
// dispatch test serving layers apply before choosing a parser.
func IsInsert(src string) bool {
	s := strings.TrimSpace(src)
	if len(s) < 6 || !strings.EqualFold(s[:6], "INSERT") {
		return false
	}
	return len(s) == 6 || !isWordByte(s[6])
}

func isWordByte(b byte) bool {
	return b == '_' || (b >= '0' && b <= '9') || (b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z')
}

// ParseInsert parses an INSERT statement. Errors carry the ErrParse class.
func ParseInsert(src string) (*Insert, error) {
	lx := &lexer{src: src}
	toks, err := lx.lex()
	if err != nil {
		return nil, classify(ErrParse, err)
	}
	p := &parser{toks: toks}
	ins, err := p.parseInsert()
	if err != nil {
		return nil, classify(ErrParse, err)
	}
	if !p.at(tokEOF, "") {
		return nil, classify(ErrParse, p.errorf("trailing input %q", p.cur().text))
	}
	return ins, nil
}

func (p *parser) parseInsert() (*Insert, error) {
	if _, err := p.expect(tokKeyword, "INSERT"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "INTO"); err != nil {
		return nil, err
	}
	tbl, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "VALUES"); err != nil {
		return nil, err
	}
	ins := &Insert{Table: tbl.text}
	for {
		row, err := p.parseValueTuple()
		if err != nil {
			return nil, err
		}
		ins.Rows = append(ins.Rows, row)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	return ins, nil
}

func (p *parser) parseValueTuple() (storage.Tuple, error) {
	if _, err := p.expect(tokSymbol, "("); err != nil {
		return nil, err
	}
	var row storage.Tuple
	for {
		lit, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		v, err := litValue(lit)
		if err != nil {
			return nil, p.errorf("%v", err)
		}
		row = append(row, v)
		if p.accept(tokSymbol, ",") {
			continue
		}
		break
	}
	if _, err := p.expect(tokSymbol, ")"); err != nil {
		return nil, err
	}
	return row, nil
}
