package sql

import (
	"context"
	"fmt"

	"repro/internal/attrs"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/storage"
)

// SegmentPlan is a coordinator's decision to execute a prepared statement's
// chain as a sequence of distributed segments (exec.DivergentSegments): the
// Section 3.5 parallelism condition holds per segment, so each segment runs
// fully partitioned on its own common key, with rows re-shuffled on the
// next segment's key between segments.
//
// The plan is shipped to every shard node with the statement text, and the
// nodes execute the shipped step order rather than their own: node-local
// statistics may legitimately produce a different chain, but the shuffle
// exchanges intermediate rows — the base schema extended with the derived
// columns evaluated so far — between nodes, so every node must append those
// columns in the same sequence. Local statistics still pick each step's
// reorder operator (core.OrderedPlan); they can never change the order or
// the wire schema.
type SegmentPlan struct {
	// Order lists the statement's window-function IDs (SELECT binding
	// positions) in coordinator execution order, segments concatenated.
	Order []int `json:"order"`
	// Ends[i] is the end offset (into Order) of segment i; the last entry
	// equals len(Order).
	Ends []int `json:"ends"`
	// Keys[i] is segment i's common partition key as base-schema column
	// indices: the hash key rows shuffle on before the segment runs.
	Keys [][]int `json:"keys"`
}

// Segments returns the segment count.
func (sp *SegmentPlan) Segments() int { return len(sp.Ends) }

// start returns the offset into Order where segment i begins.
func (sp *SegmentPlan) start(i int) int {
	if i == 0 {
		return 0
	}
	return sp.Ends[i-1]
}

// SegmentPlan derives the statement's shuffle segmentation from its planned
// chain, or nil when no per-segment distributed execution exists: the
// statement is window-less, some step has an empty partitioning key, or a
// post-divergence segment does not begin with an order-rebuilding reorder
// (see exec.DivergentSegments). A nil SegmentPlan means a key-divergent
// statement can only gather.
func (p *Prepared) SegmentPlan() *SegmentPlan {
	segs := exec.DivergentSegments(p.plan)
	if len(segs) == 0 {
		return nil
	}
	sp := &SegmentPlan{}
	for _, s := range segs {
		for _, st := range p.plan.Steps[s.Lo:s.Hi] {
			sp.Order = append(sp.Order, st.WF.ID)
		}
		sp.Ends = append(sp.Ends, s.Hi)
		ids := s.Key.IDs()
		key := make([]int, len(ids))
		for i, id := range ids {
			key[i] = int(id)
		}
		sp.Keys = append(sp.Keys, key)
	}
	return sp
}

// SegmentRunner executes one statement's chain segment by segment on a
// shard node, following a coordinator's SegmentPlan: the per-segment
// execution entry points behind the cluster's shuffle route. Build one with
// Prepared.Segments; it is immutable and safe for concurrent use, like the
// Prepared it wraps.
type SegmentRunner struct {
	p  *Prepared
	sp *SegmentPlan

	subs    []*core.Plan      // per-segment sub-plan over the shipped order
	schemas []*storage.Schema // schemas[i] = input schema of segment i; last entry = final executed schema
	pick    []int             // projection over the Order-extended schema
}

// Segments validates a coordinator SegmentPlan against this statement and
// returns the runner executing it. The plan must name every window function
// exactly once, its segment keys must be non-empty subsets of every member
// function's partitioning key, and its offsets must be well-formed —
// violations are coordination faults, not user errors. Runners are
// memoized per plan fingerprint: a node executes the same statement's
// stages once per round plus the final stream, all against one immutable
// segmentation.
func (p *Prepared) Segments(sp *SegmentPlan) (*SegmentRunner, error) {
	if sp == nil {
		return nil, fmt.Errorf("sql: malformed segment plan")
	}
	key := fmt.Sprintf("%v|%v|%v", sp.Order, sp.Ends, sp.Keys)
	p.segMu.Lock()
	r, ok := p.segRunners[key]
	p.segMu.Unlock()
	if ok {
		return r, nil
	}
	r, err := p.buildSegments(sp)
	if err != nil {
		return nil, err
	}
	p.segMu.Lock()
	if p.segRunners == nil {
		p.segRunners = make(map[string]*SegmentRunner)
	}
	p.segRunners[key] = r
	p.segMu.Unlock()
	return r, nil
}

// buildSegments performs Segments' validation and per-segment sub-planning.
func (p *Prepared) buildSegments(sp *SegmentPlan) (*SegmentRunner, error) {
	if p.plan == nil {
		return nil, fmt.Errorf("sql: segment execution of a window-less statement")
	}
	if len(sp.Order) != len(p.specs) || len(sp.Ends) != len(sp.Keys) || len(sp.Ends) == 0 {
		return nil, fmt.Errorf("sql: malformed segment plan")
	}
	if sp.Ends[len(sp.Ends)-1] != len(sp.Order) {
		return nil, fmt.Errorf("sql: segment plan ends at %d of %d steps", sp.Ends[len(sp.Ends)-1], len(sp.Order))
	}
	seen := make([]bool, len(p.specs))
	for _, id := range sp.Order {
		if id < 0 || id >= len(p.specs) || seen[id] {
			return nil, fmt.Errorf("sql: segment plan order %v is not a permutation of the statement's %d window functions", sp.Order, len(p.specs))
		}
		seen[id] = true
	}

	base := p.entry.Table().Schema
	r := &SegmentRunner{p: p, sp: sp}
	opt := core.Options{
		Cost:      p.entry.CostParams(p.cfg.MemoryBytes, p.cfg.BlockSize),
		DisableHS: p.disableHS,
		DisableSS: p.disableSS,
	}
	schema := base
	for i := 0; i < sp.Segments(); i++ {
		lo, hi := sp.start(i), sp.Ends[i]
		if hi <= lo {
			return nil, fmt.Errorf("sql: empty segment %d", i)
		}
		var key attrs.Set
		for _, c := range sp.Keys[i] {
			if c < 0 || c >= base.Len() {
				return nil, fmt.Errorf("sql: segment %d key column %d outside the base schema", i, c)
			}
			key = key.Add(attrs.ID(c))
		}
		if key.Empty() {
			return nil, fmt.Errorf("sql: segment %d has no shuffle key", i)
		}
		ws := make([]core.WF, 0, hi-lo)
		for _, id := range sp.Order[lo:hi] {
			wf := p.specs[id].WF(id)
			if !key.SubsetOf(wf.PK) {
				return nil, fmt.Errorf("sql: segment %d key %s not contained in wf%d's partitioning key %s", i, key, id, wf.PK)
			}
			ws = append(ws, wf)
		}
		// The segment's input arrives hash-partitioned on key in arbitrary
		// interleaved order — exactly the Unordered property — whether it is
		// the node's raw partition or a shuffled intermediate.
		sub, err := core.OrderedPlan(ws, core.Unordered(), opt)
		if err != nil {
			return nil, err
		}
		r.subs = append(r.subs, sub)
		r.schemas = append(r.schemas, schema)
		for _, id := range sp.Order[lo:hi] {
			schema = schema.WithColumn(p.specs[id].OutputColumn())
		}
	}
	r.schemas = append(r.schemas, schema)

	// Re-derive the projection against the shipped order: p.pick maps output
	// columns onto the executed schema of p.plan's own step order, which the
	// coordinator's order may permute.
	r.pick = make([]int, len(p.pick))
	for j, src := range p.pick {
		if src < base.Len() {
			r.pick[j] = src
			continue
		}
		wfID := p.plan.Steps[src-base.Len()].WF.ID
		pos := -1
		for k, id := range sp.Order {
			if id == wfID {
				pos = k
				break
			}
		}
		r.pick[j] = base.Len() + pos
	}
	return r, nil
}

// Segments returns the runner's segment count.
func (r *SegmentRunner) Segments() int { return len(r.subs) }

// InputSchema returns the row schema segment seg consumes: the base schema
// extended with the derived columns of every earlier segment, in shipped
// order — the wire schema of the shuffle that feeds the segment.
func (r *SegmentRunner) InputSchema(seg int) *storage.Schema { return r.schemas[seg] }

// FilterBase applies the statement's WHERE clause to the node's local
// partition: the input of the first shuffle stage. Filtering before the
// first shuffle keeps discarded rows off the wire.
func (r *SegmentRunner) FilterBase(ctx context.Context) (*storage.Table, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return r.p.filterWhere(r.p.entry.Table())
}

// Run executes segment seg's chain steps over in — rows already
// hash-partitioned on the segment's key — returning the extended table and
// the executor metrics.
func (r *SegmentRunner) Run(ctx context.Context, seg int, in *storage.Table) (*storage.Table, *exec.Metrics, error) {
	out, m, _, err := r.p.runPlan(ctx, in, r.subs[seg])
	return out, m, err
}

// StreamFinal executes the last segment over in and returns a cursor over
// the projected output — no DISTINCT, ORDER BY or LIMIT, which only the
// coordinator can apply over the concatenation of every node's stream
// (FinalizeConcat), exactly as StreamShardContext leaves them to it.
func (r *SegmentRunner) StreamFinal(ctx context.Context, in *storage.Table) (*Cursor, error) {
	last := len(r.subs) - 1
	out, m, par, err := r.p.runPlan(ctx, in, r.subs[last])
	if err != nil {
		return nil, err
	}
	result := &Result{FinalSort: "none", Parallelism: par, Plan: r.p.plan, Metrics: m}
	return &Cursor{
		cols: r.p.outCols, src: out.Rows, pick: r.pick,
		meta: result, ctx: ctx, limit: -1,
	}, nil
}
