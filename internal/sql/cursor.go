package sql

import (
	"context"
	"io"

	"repro/internal/storage"
)

// Cursor is the pull seam over a prepared statement's execution: an
// incremental iterator over the statement's output rows. The phases that
// inherently materialize — WHERE filtering and the window chain's
// reordering operators — run eagerly when the cursor is built, exactly as
// in ExecuteContext; what the cursor defers is everything after the final
// chain segment. For statements without DISTINCT or ORDER BY the
// projection runs lazily, one row per Next, honoring LIMIT by early
// termination and the context at a fixed row stride; statements that need
// a finalize pass (DISTINCT deduplication, the final sort) project and
// finalize eagerly and then stream the finalized buffer.
//
// A Cursor is single-consumer and not safe for concurrent use; a Prepared
// may serve any number of concurrent cursors.
type Cursor struct {
	cols []storage.Column
	meta *Result // Table nil: the executed statement's metadata
	ctx  context.Context

	src    []storage.Tuple
	pick   []int // non-nil: lazily project each row through pick
	limit  int64 // remaining LIMIT budget; -1 = unlimited
	pos    int
	stride int
	closed bool
}

// cursorCtxStride is how many rows the lazy path emits between context
// checks: small enough that a cancelled client stops promptly, large
// enough that the check never shows up in a profile.
const cursorCtxStride = 128

// Columns returns the output schema.
func (c *Cursor) Columns() []storage.Column { return c.cols }

// Meta returns the executed statement's metadata — the plan, executor
// metrics, final-sort disposition and parallel degree of Result, with
// Table nil. It is valid from cursor creation (the chain has already
// run).
func (c *Cursor) Meta() *Result { return c.meta }

// Next returns the next output row, or io.EOF when the stream is
// exhausted (or the cursor closed), or the context's error when it was
// cancelled mid-stream. Returned tuples are owned by the caller: lazily
// projected rows are freshly allocated, buffered rows are immutable.
func (c *Cursor) Next() (storage.Tuple, error) {
	if c.closed || c.limit == 0 || c.pos >= len(c.src) {
		return nil, io.EOF
	}
	c.stride++
	if c.stride >= cursorCtxStride {
		c.stride = 0
		if err := c.ctx.Err(); err != nil {
			return nil, err
		}
	}
	row := c.src[c.pos]
	c.pos++
	if c.limit > 0 {
		c.limit--
	}
	if c.pick != nil {
		row = c.projectRow(row)
	}
	return row, nil
}

func (c *Cursor) projectRow(row storage.Tuple) storage.Tuple {
	t := make(storage.Tuple, len(c.pick))
	for ci, src := range c.pick {
		t[ci] = row[src]
	}
	return t
}

// Close releases the cursor; further Next calls return io.EOF. Idempotent.
func (c *Cursor) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	c.src = nil
	return nil
}

// StreamContext runs the prepared query and returns a Cursor over its
// output: the streaming sibling of ExecuteContext.
func (p *Prepared) StreamContext(ctx context.Context) (*Cursor, error) {
	return p.stream(ctx, p.entry.Table(), true)
}

// StreamShardContext streams the shard-local part of the statement (WHERE,
// chain, projection — no DISTINCT/ORDER BY/LIMIT): the streaming sibling
// of ExecuteShardContext. Because the shard-local part never finalizes,
// this path always projects lazily — the seam a shard node streams its
// scatter response through.
func (p *Prepared) StreamShardContext(ctx context.Context) (*Cursor, error) {
	return p.stream(ctx, p.entry.Table(), false)
}

// StreamOverContext streams the full prepared pipeline over base instead
// of the catalog entry's rows: the streaming sibling of
// ExecuteOverContext (the coordinator's gather path).
func (p *Prepared) StreamOverContext(ctx context.Context, base *storage.Table) (*Cursor, error) {
	return p.stream(ctx, base, true)
}

func (p *Prepared) stream(ctx context.Context, base *storage.Table, finalize bool) (*Cursor, error) {
	executed, result, err := p.runChain(ctx, base)
	if err != nil {
		return nil, err
	}
	if finalize && (p.q.Distinct || len(p.orderKey) > 0) {
		// DISTINCT and ORDER BY need every projected row before the first
		// output row is known; project and finalize eagerly (LIMIT
		// included) and stream the finalized buffer.
		out := p.project(executed)
		p.finalize(out, result)
		return &Cursor{cols: p.outCols, src: out.Rows, meta: result, ctx: ctx, limit: -1}, nil
	}
	limit := int64(-1)
	if finalize {
		limit = p.q.Limit
	}
	return &Cursor{
		cols: p.outCols, src: executed.Rows, pick: p.pick,
		meta: result, ctx: ctx, limit: limit,
	}, nil
}

// TableCursor wraps an already-materialized result as a Cursor, for
// serving layers that had to buffer rows (a coordinator finalizing a shard
// concatenation) but speak the cursor surface outward. meta may carry the
// table too; the cursor streams t's rows as-is.
func TableCursor(t *storage.Table, meta *Result) *Cursor {
	return &Cursor{cols: t.Schema.Columns, src: t.Rows, meta: meta, ctx: context.Background(), limit: -1}
}
