package sql

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/storage"
)

// The subplan seam splits a shareable prepared statement in two along the
// frame lattice (core/factor.go):
//
//   - the *scan+reorder subplan* — WHERE filtering plus the chain's single
//     heavy reorder — which depends only on (table, predicate, γ) and not
//     on the statement's window functions, projection or finalize clauses;
//   - the *derivation suffix* — window evaluation, projection, DISTINCT /
//     ORDER BY / LIMIT — which is scan-only over the subplan's output
//     (Theorem 1) and therefore cheap.
//
// Two different statements whose subplan identities collide (or whose
// functions are matched by a finer cached segment — the lattice hit) can
// share one physical execution of the expensive half. The service's
// shared-subplan cache (internal/service) is the coordination point; this
// file provides the statement-side mechanics.

// SharedSegment is a materialized scan+reorder subplan execution: the
// filtered, reordered base-schema rows, the physical stream property the
// row order carries, and the scan's metrics (charged once, to the query
// that executed it). The table is immutable — concurrent suffix
// executions copy rows into private arenas (exec.arenaRows) — so one
// segment serves any number of attached cursors.
type SharedSegment struct {
	Table   *storage.Table
	Props   core.Props
	Metrics *exec.Metrics
	// DataGen is the catalog data generation the scan observed; cache keys
	// embed it so appends invalidate shared segments.
	DataGen uint64
}

// Shareable reports whether the statement splits at the subplan seam: a
// planned chain led by one heavy reorder (FS/HS) with every later step
// reorder-free, executing sequentially. Multi-reorder chains and parallel
// configurations execute privately — their physical shape is not a single
// shared segment.
func (p *Prepared) Shareable() bool { return p.shareable }

// SubplanScanKey is the canonical identity of the statement's scan input:
// the lowercased table name and the canonicalized WHERE predicate. It is
// the frame-lattice *group* — statements in one group read the same rows
// and differ only in their reorder node.
func (p *Prepared) SubplanScanKey() string {
	return strings.ToLower(p.entry.Name) + "|" + canonExpr(p.q.Where)
}

// SubplanNode is the statement's frame-lattice node: the canonical form of
// the chain's leading heavy reorder (core.LatticeNode). Empty when the
// statement is not shareable.
func (p *Prepared) SubplanNode() string {
	if !p.shareable {
		return ""
	}
	return core.LatticeNode(p.plan)
}

// SubplanFingerprint hashes the subplan identity (scan key + lattice node)
// into the short token a cluster coordinator ships with scatter and
// shuffle requests, so every node resolves the same shared scan for one
// distributed statement without re-deriving it from text. Empty for
// non-shareable statements.
func (p *Prepared) SubplanFingerprint() string {
	if !p.shareable {
		return ""
	}
	return Fingerprint(p.SubplanScanKey() + "|" + p.SubplanNode())
}

// SubplanProps is the physical stream property of the subplan's output —
// what a shared segment cached under this statement's key carries.
func (p *Prepared) SubplanProps() core.Props {
	if !p.shareable {
		return core.Unordered()
	}
	return p.plan.Steps[0].Out
}

// WFs returns the statement's window functions in spec order, for lattice
// matching against a candidate segment's properties.
func (p *Prepared) WFs() []core.WF {
	ws := make([]core.WF, len(p.specs))
	for i, s := range p.specs {
		ws[i] = s.WF(i)
	}
	return ws
}

// DataGeneration returns the table's live data generation (advanced by
// appends); subplan cache keys embed it next to the schema generation.
func (p *Prepared) DataGeneration() uint64 { return p.entry.DataGen() }

// RunSubplan executes the scan+reorder subplan: WHERE filtering over a
// consistent table snapshot, then the chain's leading heavy reorder,
// materialized. The caller (the cache's singleflight leader) owns the
// returned segment and its metrics.
func (p *Prepared) RunSubplan(ctx context.Context) (*SharedSegment, error) {
	if !p.shareable {
		return nil, errors.New("sql: statement has no shareable subplan")
	}
	base, gen := p.entry.Snapshot()
	wt, err := p.filterWhere(base)
	if err != nil {
		return nil, err
	}
	cfg := p.cfg
	cfg.Parallelism = 1
	if cfg.Distinct == nil {
		cfg.Distinct = p.entry.Distinct
	}
	seg, metrics, err := exec.ReorderTable(ctx, wt, p.plan.Steps[0], cfg)
	if err != nil {
		return nil, err
	}
	return &SharedSegment{Table: seg, Props: p.plan.Steps[0].Out, Metrics: metrics, DataGen: gen}, nil
}

// runSuffix executes the statement's derivation suffix over a shared
// segment: the chain re-derived against the segment's stream property
// (every step reorder-free, by core.DeriveSuffix), run sequentially.
// chargeScan merges the segment's scan metrics into the result — set by
// the execution that actually paid for the scan, so accounting stays
// truthful: the leader reports scan+suffix, attachers report drain only.
func (p *Prepared) runSuffix(ctx context.Context, seg *SharedSegment, chargeScan bool) (*storage.Table, *Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	suffix, ok := core.DeriveSuffix(p.plan, seg.Props)
	if !ok {
		return nil, nil, fmt.Errorf("sql: shared segment %s does not cover the statement", seg.Props)
	}
	cfg := p.cfg
	cfg.Parallelism = 1
	if cfg.Distinct == nil {
		cfg.Distinct = p.entry.Distinct
	}
	out, metrics, err := exec.RunContext(ctx, seg.Table, p.specs, suffix, cfg)
	if err != nil {
		return nil, nil, err
	}
	if chargeScan && seg.Metrics != nil {
		merged := &exec.Metrics{
			BlocksRead:    seg.Metrics.BlocksRead + metrics.BlocksRead,
			BlocksWritten: seg.Metrics.BlocksWritten + metrics.BlocksWritten,
			Comparisons:   seg.Metrics.Comparisons + metrics.Comparisons,
			Elapsed:       seg.Metrics.Elapsed + metrics.Elapsed,
		}
		merged.Steps = append(append([]exec.StepMetrics{}, seg.Metrics.Steps...), metrics.Steps...)
		metrics = merged
	}
	// Result.Plan is the suffix chain: truthful for this execution (no
	// reorders ran) and what EXPLAIN renders. Its final property replays to
	// Unordered, so a final ORDER BY is satisfied by a stable full sort —
	// over a segment already carrying the order that sort is the identity
	// permutation, so shared and private executions emit identical rows in
	// identical order for any totally-ordering ORDER BY.
	result := &Result{FinalSort: "none", Parallelism: 1, EstRows: p.entry.Rows(), Plan: suffix, Metrics: metrics}
	return out, result, nil
}

// ExecuteSharedContext runs the full derivation suffix (projection,
// DISTINCT, ORDER BY, LIMIT included) over a shared segment: the shared
// sibling of ExecuteContext.
func (p *Prepared) ExecuteSharedContext(ctx context.Context, seg *SharedSegment, chargeScan bool) (*Result, error) {
	return p.executeShared(ctx, seg, chargeScan, true)
}

// ExecuteSharedShardContext runs the shard-local suffix (no DISTINCT /
// ORDER BY / LIMIT) over a shared segment: the shared sibling of
// ExecuteShardContext.
func (p *Prepared) ExecuteSharedShardContext(ctx context.Context, seg *SharedSegment, chargeScan bool) (*Result, error) {
	return p.executeShared(ctx, seg, chargeScan, false)
}

func (p *Prepared) executeShared(ctx context.Context, seg *SharedSegment, chargeScan, finalize bool) (*Result, error) {
	executed, result, err := p.runSuffix(ctx, seg, chargeScan)
	if err != nil {
		return nil, err
	}
	outTable := p.project(executed)
	result.Table = outTable
	if finalize {
		p.finalize(outTable, result)
	}
	return result, nil
}

// StreamSharedContext is the cursor form of ExecuteSharedContext.
func (p *Prepared) StreamSharedContext(ctx context.Context, seg *SharedSegment, chargeScan bool) (*Cursor, error) {
	return p.streamShared(ctx, seg, chargeScan, true)
}

// StreamSharedShardContext is the cursor form of ExecuteSharedShardContext.
func (p *Prepared) StreamSharedShardContext(ctx context.Context, seg *SharedSegment, chargeScan bool) (*Cursor, error) {
	return p.streamShared(ctx, seg, chargeScan, false)
}

func (p *Prepared) streamShared(ctx context.Context, seg *SharedSegment, chargeScan, finalize bool) (*Cursor, error) {
	executed, result, err := p.runSuffix(ctx, seg, chargeScan)
	if err != nil {
		return nil, err
	}
	if finalize && (p.q.Distinct || len(p.orderKey) > 0) {
		out := p.project(executed)
		p.finalize(out, result)
		return &Cursor{cols: p.outCols, src: out.Rows, meta: result, ctx: ctx, limit: -1}, nil
	}
	limit := int64(-1)
	if finalize {
		limit = p.q.Limit
	}
	return &Cursor{
		cols: p.outCols, src: executed.Rows, pick: p.pick,
		meta: result, ctx: ctx, limit: limit,
	}, nil
}

// canonExpr renders a predicate in canonical form — lowercased column
// names, uppercased operators, fully parenthesized, literals normalized —
// so two spellings of one predicate produce one subplan key. A nil
// predicate renders as the empty string.
func canonExpr(e Expr) string {
	switch n := e.(type) {
	case nil:
		return ""
	case *ColumnRef:
		return strings.ToLower(n.Name)
	case *LitExpr:
		return canonLit(n.Lit)
	case *NotExpr:
		return "(NOT " + canonExpr(n.E) + ")"
	case *IsNullExpr:
		if n.Not {
			return "(" + canonExpr(n.E) + " IS NOT NULL)"
		}
		return "(" + canonExpr(n.E) + " IS NULL)"
	case *BinaryExpr:
		return "(" + canonExpr(n.L) + " " + strings.ToUpper(n.Op) + " " + canonExpr(n.R) + ")"
	default:
		return fmt.Sprintf("<%T>", e)
	}
}

func canonLit(l Literal) string {
	switch {
	case l.IsNull:
		return "NULL"
	case l.Int != nil:
		return strconv.FormatInt(*l.Int, 10)
	case l.Float != nil:
		return strconv.FormatFloat(*l.Float, 'g', -1, 64)
	case l.Str != nil:
		return "'" + strings.ReplaceAll(*l.Str, "'", "''") + "'"
	case l.Bool != nil:
		if *l.Bool {
			return "TRUE"
		}
		return "FALSE"
	default:
		return "NULL"
	}
}
