package sql

import "errors"

// Error classes for the serving layer's status taxonomy. They are attached
// with classify, which preserves the underlying message and chain while
// making errors.Is(err, ErrParse) / errors.Is(err, ErrBind) report the
// class: parse errors are malformed query text, bind errors are well-formed
// queries naming unknown columns, functions or invalid clauses. Errors that
// carry neither class (and do not wrap catalog.ErrUnknownTable) are engine
// faults.
var (
	ErrParse = errors.New("sql: parse error")
	ErrBind  = errors.New("sql: bind error")
)

// classedError tags err with an error class without changing its message.
type classedError struct {
	class error
	err   error
}

func (e *classedError) Error() string        { return e.err.Error() }
func (e *classedError) Unwrap() error        { return e.err }
func (e *classedError) Is(target error) bool { return target == e.class }

// classify wraps err (nil-safe) so errors.Is(result, class) holds.
func classify(class, err error) error {
	if err == nil {
		return nil
	}
	return &classedError{class: class, err: err}
}
