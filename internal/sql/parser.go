package sql

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses one window query block. Errors carry the ErrParse class.
func Parse(src string) (*Query, error) {
	lx := &lexer{src: src}
	toks, err := lx.lex()
	if err != nil {
		return nil, classify(ErrParse, err)
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, classify(ErrParse, err)
	}
	if !p.at(tokEOF, "") {
		return nil, classify(ErrParse, p.errorf("trailing input %q", p.cur().text))
	}
	return q, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(kind tokenKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) accept(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind tokenKind, text string) (token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	return token{}, p.errorf("expected %s, found %q", describe(kind, text), p.cur().text)
}

func describe(kind tokenKind, text string) string {
	if text != "" {
		return fmt.Sprintf("%q", text)
	}
	switch kind {
	case tokIdent:
		return "identifier"
	case tokNumber:
		return "number"
	default:
		return "token"
	}
}

func (p *parser) errorf(format string, args ...interface{}) error {
	return fmt.Errorf("sql: near offset %d: %s", p.cur().pos, fmt.Sprintf(format, args...))
}

func (p *parser) parseQuery() (*Query, error) {
	if _, err := p.expect(tokKeyword, "SELECT"); err != nil {
		return nil, err
	}
	q := &Query{Limit: -1}
	if p.accept(tokKeyword, "DISTINCT") {
		q.Distinct = true
	}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		q.Items = append(q.Items, item)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	tbl, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	q.Table = tbl.text

	if p.accept(tokKeyword, "WHERE") {
		expr, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		q.Where = expr
	}
	if p.accept(tokKeyword, "ORDER") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		items, err := p.parseOrderList()
		if err != nil {
			return nil, err
		}
		q.OrderBy = items
	}
	if p.accept(tokKeyword, "LIMIT") {
		n, err := p.expect(tokNumber, "")
		if err != nil {
			return nil, err
		}
		v, err := strconv.ParseInt(n.text, 10, 64)
		if err != nil || v < 0 {
			return nil, p.errorf("bad LIMIT %q", n.text)
		}
		q.Limit = v
	}
	return q, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.accept(tokSymbol, "*") {
		return SelectItem{Star: true}, nil
	}
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{}
	if p.at(tokSymbol, "(") {
		call, err := p.parseWindowCall(name.text)
		if err != nil {
			return SelectItem{}, err
		}
		item.Window = call
	} else {
		item.Column = name.text
	}
	if p.accept(tokKeyword, "AS") {
		alias, err := p.expect(tokIdent, "")
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = alias.text
	} else if p.at(tokIdent, "") {
		// bare alias
		item.Alias = p.next().text
	}
	return item, nil
}

func (p *parser) parseWindowCall(fn string) (*WindowCall, error) {
	call := &WindowCall{Func: strings.ToLower(fn)}
	if _, err := p.expect(tokSymbol, "("); err != nil {
		return nil, err
	}
	if p.accept(tokSymbol, "*") {
		call.Star = true
	} else if !p.at(tokSymbol, ")") {
		for {
			arg, err := p.parseArg()
			if err != nil {
				return nil, err
			}
			call.Args = append(call.Args, arg)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	if _, err := p.expect(tokSymbol, ")"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "OVER"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSymbol, "("); err != nil {
		return nil, err
	}
	if p.accept(tokKeyword, "PARTITION") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			col, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			call.PartitionBy = append(call.PartitionBy, col.text)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	if p.accept(tokKeyword, "ORDER") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		items, err := p.parseOrderList()
		if err != nil {
			return nil, err
		}
		call.OrderBy = items
	}
	if p.at(tokKeyword, "ROWS") || p.at(tokKeyword, "RANGE") {
		frame, err := p.parseFrame()
		if err != nil {
			return nil, err
		}
		call.Frame = frame
	}
	if _, err := p.expect(tokSymbol, ")"); err != nil {
		return nil, err
	}
	return call, nil
}

func (p *parser) parseArg() (Arg, error) {
	if p.at(tokIdent, "") {
		return Arg{Column: p.next().text}, nil
	}
	lit, err := p.parseLiteral()
	if err != nil {
		return Arg{}, err
	}
	return Arg{Lit: &lit}, nil
}

func (p *parser) parseLiteral() (Literal, error) {
	t := p.cur()
	switch {
	case t.kind == tokNumber:
		p.next()
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return Literal{}, p.errorf("bad number %q", t.text)
			}
			return Literal{Float: &f}, nil
		}
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return Literal{}, p.errorf("bad number %q", t.text)
		}
		return Literal{Int: &v}, nil
	case t.kind == tokSymbol && (t.text == "-" || t.text == "+"):
		p.next()
		lit, err := p.parseLiteral()
		if err != nil {
			return Literal{}, err
		}
		if t.text == "-" {
			if lit.Int != nil {
				v := -*lit.Int
				lit.Int = &v
			} else if lit.Float != nil {
				v := -*lit.Float
				lit.Float = &v
			} else {
				return Literal{}, p.errorf("cannot negate literal")
			}
		}
		return lit, nil
	case t.kind == tokString:
		p.next()
		s := t.text
		return Literal{Str: &s}, nil
	case t.kind == tokKeyword && t.text == "NULL":
		p.next()
		return Literal{IsNull: true}, nil
	case t.kind == tokKeyword && (t.text == "TRUE" || t.text == "FALSE"):
		p.next()
		b := t.text == "TRUE"
		return Literal{Bool: &b}, nil
	}
	return Literal{}, p.errorf("expected literal, found %q", t.text)
}

func (p *parser) parseOrderList() ([]OrderItem, error) {
	var items []OrderItem
	for {
		col, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		item := OrderItem{Column: col.text}
		if p.accept(tokKeyword, "DESC") {
			item.Desc = true
		} else {
			p.accept(tokKeyword, "ASC")
		}
		if p.accept(tokKeyword, "NULLS") {
			switch {
			case p.accept(tokKeyword, "FIRST"):
				item.NullsFirst = true
			case p.accept(tokKeyword, "LAST"):
				item.NullsFirst = false
			default:
				return nil, p.errorf("expected FIRST or LAST after NULLS")
			}
			item.nullsSet = true
		}
		if !item.nullsSet {
			// PostgreSQL default: NULLS LAST for ASC, NULLS FIRST for DESC.
			item.NullsFirst = item.Desc
		}
		items = append(items, item)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	return items, nil
}

func (p *parser) parseFrame() (*FrameClause, error) {
	f := &FrameClause{}
	switch {
	case p.accept(tokKeyword, "ROWS"):
		f.Rows = true
	case p.accept(tokKeyword, "RANGE"):
	default:
		return nil, p.errorf("expected ROWS or RANGE")
	}
	if p.accept(tokKeyword, "BETWEEN") {
		start, err := p.parseBound()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "AND"); err != nil {
			return nil, err
		}
		end, err := p.parseBound()
		if err != nil {
			return nil, err
		}
		f.Start, f.End = start, end
		return f, nil
	}
	// Single-bound shorthand: frame start, end = CURRENT ROW.
	start, err := p.parseBound()
	if err != nil {
		return nil, err
	}
	f.Start = start
	f.End = FrameBound{Kind: "CURRENT ROW"}
	return f, nil
}

func (p *parser) parseBound() (FrameBound, error) {
	switch {
	case p.accept(tokKeyword, "UNBOUNDED"):
		switch {
		case p.accept(tokKeyword, "PRECEDING"):
			return FrameBound{Kind: "UNBOUNDED PRECEDING"}, nil
		case p.accept(tokKeyword, "FOLLOWING"):
			return FrameBound{Kind: "UNBOUNDED FOLLOWING"}, nil
		}
		return FrameBound{}, p.errorf("expected PRECEDING or FOLLOWING after UNBOUNDED")
	case p.accept(tokKeyword, "CURRENT"):
		if _, err := p.expect(tokKeyword, "ROW"); err != nil {
			return FrameBound{}, err
		}
		return FrameBound{Kind: "CURRENT ROW"}, nil
	case p.at(tokNumber, ""):
		n := p.next()
		v, err := strconv.ParseInt(n.text, 10, 64)
		if err != nil || v < 0 {
			return FrameBound{}, p.errorf("bad frame offset %q", n.text)
		}
		switch {
		case p.accept(tokKeyword, "PRECEDING"):
			return FrameBound{Kind: "PRECEDING", Offset: v}, nil
		case p.accept(tokKeyword, "FOLLOWING"):
			return FrameBound{Kind: "FOLLOWING", Offset: v}, nil
		}
		return FrameBound{}, p.errorf("expected PRECEDING or FOLLOWING")
	}
	return FrameBound{}, p.errorf("expected frame bound, found %q", p.cur().text)
}

// Predicate grammar: OR > AND > NOT > comparison/IS NULL/parenthesized.
func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "OR", L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "AND", L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.accept(tokKeyword, "NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &NotExpr{E: e}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	left, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	if p.accept(tokKeyword, "IS") {
		not := p.accept(tokKeyword, "NOT")
		if _, err := p.expect(tokKeyword, "NULL"); err != nil {
			return nil, err
		}
		return &IsNullExpr{E: left, Not: not}, nil
	}
	for _, op := range []string{"<>", "!=", "<=", ">=", "=", "<", ">"} {
		if p.accept(tokSymbol, op) {
			right, err := p.parseOperand()
			if err != nil {
				return nil, err
			}
			norm := op
			if norm == "!=" {
				norm = "<>"
			}
			return &BinaryExpr{Op: norm, L: left, R: right}, nil
		}
	}
	return left, nil
}

func (p *parser) parseOperand() (Expr, error) {
	if p.accept(tokSymbol, "(") {
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	if p.at(tokIdent, "") {
		return &ColumnRef{Name: p.next().text}, nil
	}
	lit, err := p.parseLiteral()
	if err != nil {
		return nil, err
	}
	return &LitExpr{Lit: lit}, nil
}
