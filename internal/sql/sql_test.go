package sql

import (
	"strings"
	"testing"

	"repro/internal/attrs"
	"repro/internal/catalog"
	"repro/internal/datagen"
	"repro/internal/exec"
	"repro/internal/storage"
	"repro/internal/window"
)

func testRunner(t *testing.T) *Runner {
	t.Helper()
	cat := catalog.New()
	cat.Register("emptab", datagen.Emptab())
	cat.Register("web_sales", datagen.WebSales(datagen.WebSalesConfig{Rows: 500, Seed: 1, PadBytes: 8}))
	return &Runner{Catalog: cat, Exec: exec.Config{MemoryBytes: 1 << 20, BlockSize: 4096}}
}

// TestExample1 runs the paper's introductory query verbatim and compares
// the full sample output table.
func TestExample1(t *testing.T) {
	r := testRunner(t)
	res, err := r.Query(`
		SELECT empnum, dept, salary,
		       rank() OVER (PARTITION BY dept ORDER BY salary DESC NULLS LAST) AS rank_in_dept,
		       rank() OVER (ORDER BY salary DESC NULLS LAST) AS globalrank
		FROM emptab
		ORDER BY dept NULLS LAST, rank_in_dept`)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int64{
		// empnum, dept(-1=null), salary(-1=null), rank_in_dept, globalrank
		{4, 1, 78000, 1, 3},
		{5, 1, 75000, 2, 4},
		{9, 1, 53000, 3, 7},
		{7, 2, 51000, 1, 8},
		{3, 2, -1, 2, 9},
		{6, 3, 79000, 1, 2},
		{10, 3, 75000, 2, 4},
		{8, 3, 55000, 3, 6},
		{2, -1, 84000, 1, 1},
		{1, -1, -1, 2, 9},
	}
	if res.Table.Len() != len(want) {
		t.Fatalf("got %d rows, want %d", res.Table.Len(), len(want))
	}
	get := func(v storage.Value) int64 {
		if v.IsNull() {
			return -1
		}
		return v.Int64()
	}
	for i, row := range res.Table.Rows {
		for c := 0; c < 5; c++ {
			if get(row[c]) != want[i][c] {
				t.Errorf("row %d col %d = %s, want %d\n%s", i, c, row[c], want[i][c],
					FormatTable(res.Table, 0))
			}
		}
	}
	if res.Plan == nil || res.Metrics == nil {
		t.Errorf("expected plan and metrics")
	}
}

func TestSchemesAgreeViaSQL(t *testing.T) {
	query := `
		SELECT ws_item_sk,
		       rank() OVER (PARTITION BY ws_item_sk ORDER BY ws_sold_date_sk) AS r1,
		       rank() OVER (PARTITION BY ws_item_sk ORDER BY ws_bill_customer_sk) AS r2
		FROM web_sales
		ORDER BY ws_item_sk, r1, r2`
	var outputs []string
	for _, scheme := range []Scheme{SchemeCSO, SchemeBFO, SchemeORCL, SchemePSQL} {
		r := testRunner(t)
		r.Scheme = scheme
		res, err := r.Query(query)
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		outputs = append(outputs, FormatTable(res.Table, 0))
	}
	for i := 1; i < len(outputs); i++ {
		if outputs[i] != outputs[0] {
			t.Fatalf("scheme %d output differs from CSO", i)
		}
	}
}

func TestWhereAndLimit(t *testing.T) {
	r := testRunner(t)
	res, err := r.Query(`
		SELECT empnum, salary, row_number() OVER (ORDER BY salary DESC) AS rn
		FROM emptab
		WHERE salary IS NOT NULL AND dept IS NOT NULL AND salary >= 55000
		ORDER BY rn
		LIMIT 3`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.Len() != 3 {
		t.Fatalf("LIMIT: got %d rows", res.Table.Len())
	}
	if res.Table.Rows[0][1].Int64() != 79000 {
		t.Errorf("top salary = %s", res.Table.Rows[0][1])
	}
}

func TestAggregatesAndFrames(t *testing.T) {
	r := testRunner(t)
	res, err := r.Query(`
		SELECT empnum, dept, salary,
		       sum(salary) OVER (PARTITION BY dept ORDER BY salary
		                         ROWS BETWEEN 1 PRECEDING AND CURRENT ROW) AS s2,
		       avg(salary) OVER (PARTITION BY dept) AS dept_avg,
		       count(*) OVER () AS total
		FROM emptab
		ORDER BY empnum`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.Len() != 10 {
		t.Fatalf("rows = %d", res.Table.Len())
	}
	// count(*) over () must be 10 everywhere.
	for _, row := range res.Table.Rows {
		if row[5].Int64() != 10 {
			t.Errorf("count(*) = %s", row[5])
		}
	}
}

func TestLeadLagNtile(t *testing.T) {
	r := testRunner(t)
	res, err := r.Query(`
		SELECT empnum,
		       lead(salary, 1, -1) OVER (ORDER BY empnum) AS next_sal,
		       lag(salary) OVER (ORDER BY empnum) AS prev_sal,
		       ntile(3) OVER (ORDER BY empnum) AS bucket
		FROM emptab
		ORDER BY empnum`)
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Table.Rows
	if rows[9][1].Int64() != -1 {
		t.Errorf("lead default at last row = %s", rows[9][1])
	}
	if !rows[0][2].IsNull() {
		t.Errorf("lag at first row = %s", rows[0][2])
	}
	if rows[0][3].Int64() != 1 || rows[9][3].Int64() != 3 {
		t.Errorf("ntile buckets wrong: %s %s", rows[0][3], rows[9][3])
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT * FROM",
		"SELECT rank() FROM emptab", // missing OVER
		"SELECT rank() OVER () FROM",
		"SELECT foo( FROM emptab",
		"SELECT * FROM emptab WHERE",
		"SELECT * FROM emptab ORDER",
		"SELECT * FROM emptab LIMIT -1",
		"SELECT sum(salary) OVER (ROWS BETWEEN 1 AND 2) FROM emptab",
		"SELECT * FROM emptab WHERE salary ~ 3",
		"SELECT * FROM emptab WHERE 'unterminated",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestBindErrors(t *testing.T) {
	r := testRunner(t)
	bad := []string{
		"SELECT rank() OVER (PARTITION BY nosuch) FROM emptab",
		"SELECT sum(nosuch) OVER () FROM emptab",
		"SELECT frobnicate() OVER () FROM emptab",
		"SELECT ntile(0) OVER () FROM emptab",
		"SELECT sum(salary, salary) OVER () FROM emptab",
		"SELECT nth_value(salary) OVER () FROM emptab",
		"SELECT * FROM nosuchtable",
		"SELECT nosuchcol FROM emptab",
		"SELECT * FROM emptab ORDER BY nosuch",
	}
	for _, src := range bad {
		if _, err := r.Query(src); err == nil {
			t.Errorf("Query(%q) should fail", src)
		}
	}
}

func TestPlanExposedMatchesScheme(t *testing.T) {
	r := testRunner(t)
	r.Scheme = SchemePSQL
	res, err := r.Query(`
		SELECT rank() OVER (PARTITION BY ws_item_sk ORDER BY ws_sold_date_sk) AS a,
		       rank() OVER (PARTITION BY ws_item_sk ORDER BY ws_bill_customer_sk) AS b
		FROM web_sales`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.Scheme != "PSQL" {
		t.Errorf("plan scheme = %s", res.Plan.Scheme)
	}
	fs, hs, ss := res.Plan.ReorderCounts()
	if fs != 2 || hs != 0 || ss != 0 {
		t.Errorf("PSQL plan should be two full sorts, got %s", res.Plan)
	}
}

func TestNoWindowFunctions(t *testing.T) {
	r := testRunner(t)
	res, err := r.Query("SELECT empnum, salary FROM emptab WHERE dept = 1 ORDER BY salary DESC")
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan != nil {
		t.Errorf("plain query should have no window plan")
	}
	if res.Table.Len() != 3 {
		t.Errorf("rows = %d, want 3", res.Table.Len())
	}
	if !strings.EqualFold(res.Table.Schema.Columns[0].Name, "empnum") {
		t.Errorf("schema = %v", res.Table.Schema.Names())
	}
}

// TestSQLAgainstReference cross-checks a framed aggregate through the whole
// SQL path against the reference evaluator.
func TestSQLAgainstReference(t *testing.T) {
	r := testRunner(t)
	res, err := r.Query(`
		SELECT ws_order_number,
		       sum(ws_quantity) OVER (PARTITION BY ws_warehouse_sk ORDER BY ws_order_number
		                              ROWS BETWEEN 2 PRECEDING AND 1 FOLLOWING) AS s
		FROM web_sales
		ORDER BY ws_order_number`)
	if err != nil {
		t.Fatal(err)
	}
	entry, _ := r.Catalog.Lookup("web_sales")
	table := entry.Table()
	spec := window.Spec{
		Kind: window.Sum,
		Arg:  datagen.ColQuantity,
		PK:   attrs.MakeSet(attrs.ID(datagen.ColWarehouse)),
		OK:   attrs.AscSeq(attrs.ID(datagen.ColOrderNumber)),
		Frame: &window.Frame{
			Mode:  window.Rows,
			Start: window.Bound{Type: window.Preceding, Offset: 2},
			End:   window.Bound{Type: window.Following, Offset: 1},
		},
	}
	want, err := window.Reference(table.Rows, spec)
	if err != nil {
		t.Fatal(err)
	}
	wantByTag := map[int64]storage.Value{}
	for i, v := range want {
		wantByTag[table.Rows[i][datagen.ColOrderNumber].Int64()] = v
	}
	if res.Table.Len() != table.Len() {
		t.Fatalf("row count mismatch")
	}
	for _, row := range res.Table.Rows {
		if !storage.Equal(row[1], wantByTag[row[0].Int64()]) {
			t.Fatalf("row %s: sum = %s, want %s", row[0], row[1], wantByTag[row[0].Int64()])
		}
	}
}

// TestSection5OrderIntegration — the CSO runner reshuffles its chain so a
// matching ORDER BY is avoided or partially satisfied, and the result is
// still correctly ordered.
func TestSection5OrderIntegration(t *testing.T) {
	r := testRunner(t)
	res, err := r.Query(`
		SELECT ws_item_sk, ws_sold_date_sk,
		       rank() OVER (PARTITION BY ws_item_sk ORDER BY ws_sold_date_sk) AS r1,
		       rank() OVER (PARTITION BY ws_warehouse_sk ORDER BY ws_sold_time_sk) AS r2
		FROM web_sales
		ORDER BY ws_item_sk, ws_sold_date_sk`)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalSort != "avoided" && res.FinalSort != "partial" {
		t.Errorf("FinalSort = %q (satisfied %d); chain %s", res.FinalSort, res.SatisfiedPrefix, res.Plan.PaperString())
	}
	// Ordering must hold regardless of how it was achieved.
	key := attrs.AscSeq(0, 1)
	if !storage.SortedOn(res.Table.Rows, key) {
		t.Fatalf("output not ordered despite FinalSort=%q", res.FinalSort)
	}
	// The same query under PSQL pays a full final sort but agrees on rows.
	rp := testRunner(t)
	rp.Scheme = SchemePSQL
	resP, err := rp.Query(`
		SELECT ws_item_sk, ws_sold_date_sk,
		       rank() OVER (PARTITION BY ws_item_sk ORDER BY ws_sold_date_sk) AS r1,
		       rank() OVER (PARTITION BY ws_warehouse_sk ORDER BY ws_sold_time_sk) AS r2
		FROM web_sales
		ORDER BY ws_item_sk, ws_sold_date_sk`)
	if err != nil {
		t.Fatal(err)
	}
	if resP.FinalSort != "full" {
		t.Errorf("PSQL FinalSort = %q, want full", resP.FinalSort)
	}
	if !storage.SortedOn(resP.Table.Rows, key) {
		t.Fatalf("PSQL output not ordered")
	}
}

// TestAliasShadowingOrderBy — an alias shadowing a base column must not
// fool the Section 5 alignment into skipping a needed sort.
func TestAliasShadowingOrderBy(t *testing.T) {
	r := testRunner(t)
	res, err := r.Query(`
		SELECT ws_sold_date_sk AS ws_item_sk,
		       rank() OVER (PARTITION BY ws_item_sk ORDER BY ws_sold_date_sk) AS rk
		FROM web_sales
		ORDER BY ws_item_sk`)
	if err != nil {
		t.Fatal(err)
	}
	// ORDER BY ws_item_sk refers to the ALIASED date column (output col 0).
	if !storage.SortedOn(res.Table.Rows, attrs.AscSeq(0)) {
		t.Fatalf("output not ordered on the aliased column (FinalSort=%q)", res.FinalSort)
	}
}

func TestSelectDistinct(t *testing.T) {
	r := testRunner(t)
	res, err := r.Query(`SELECT DISTINCT dept FROM emptab ORDER BY dept NULLS LAST`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.Len() != 4 { // depts 1, 2, 3 and NULL
		t.Fatalf("distinct depts = %d, want 4\n%s", res.Table.Len(), FormatTable(res.Table, 0))
	}
	// DISTINCT over a window result: each dept has 3 or 2 distinct ranks.
	res2, err := r.Query(`
		SELECT DISTINCT dept, count(*) OVER (PARTITION BY dept) AS sz
		FROM emptab ORDER BY dept NULLS LAST`)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Table.Len() != 4 {
		t.Fatalf("distinct (dept,size) rows = %d, want 4", res2.Table.Len())
	}
	if res2.Table.Rows[0][1].Int64() != 3 {
		t.Errorf("dept 1 size = %s", res2.Table.Rows[0][1])
	}
}

// TestRunnerParallelExecution — a Runner with Parallelism > 1 routes the
// chain through the parallel executor, agrees with the sequential runner
// row-for-row, and satisfies ORDER BY with an explicit full sort (the
// concatenated partition order never pre-satisfies it).
func TestRunnerParallelExecution(t *testing.T) {
	const query = `
		SELECT ws_order_number, ws_item_sk,
		       rank() OVER (PARTITION BY ws_item_sk ORDER BY ws_sold_date_sk) AS r1,
		       rank() OVER (PARTITION BY ws_item_sk ORDER BY ws_bill_customer_sk) AS r2
		FROM web_sales
		ORDER BY ws_item_sk, ws_order_number`
	seq := testRunner(t)
	seqRes, err := seq.Query(query)
	if err != nil {
		t.Fatal(err)
	}
	par := testRunner(t)
	par.Exec.Parallelism = 4
	parRes, err := par.Query(query)
	if err != nil {
		t.Fatal(err)
	}
	if parRes.Parallelism != 4 {
		t.Errorf("Result.Parallelism = %d, want 4", parRes.Parallelism)
	}
	if seqRes.Parallelism != 1 {
		t.Errorf("sequential Result.Parallelism = %d, want 1", seqRes.Parallelism)
	}
	if parRes.FinalSort != "full" {
		t.Errorf("parallel FinalSort = %q, want full", parRes.FinalSort)
	}
	if parRes.Table.Len() != seqRes.Table.Len() {
		t.Fatalf("parallel rows = %d, sequential %d", parRes.Table.Len(), seqRes.Table.Len())
	}
	// The ORDER BY key is unique per row, so both orders must agree exactly.
	for i := range seqRes.Table.Rows {
		a := string(storage.AppendTuple(nil, seqRes.Table.Rows[i]))
		b := string(storage.AppendTuple(nil, parRes.Table.Rows[i]))
		if a != b {
			t.Fatalf("row %d differs between sequential and parallel runner", i)
		}
	}
}

// TestRunnerParallelKeepsSortAvoidance — a chain the parallel executor runs
// sequentially end to end (its single function has an empty PARTITION BY, so
// no common partition key exists) must keep Section 5's sort avoidance: the
// output order really is the sequential plan's.
func TestRunnerParallelKeepsSortAvoidance(t *testing.T) {
	const query = `SELECT empnum, salary, rank() OVER (ORDER BY salary DESC NULLS LAST) AS r
		FROM emptab ORDER BY salary DESC NULLS LAST`
	seq := testRunner(t)
	seqRes, err := seq.Query(query)
	if err != nil {
		t.Fatal(err)
	}
	par := testRunner(t)
	par.Exec.Parallelism = 4
	parRes, err := par.Query(query)
	if err != nil {
		t.Fatal(err)
	}
	if parRes.Metrics.Concatenated {
		t.Fatalf("empty-WPK chain reported concatenated output")
	}
	if parRes.Parallelism != 1 {
		t.Errorf("sequential-fallback chain reports Parallelism = %d, want 1", parRes.Parallelism)
	}
	if seqRes.FinalSort != "avoided" {
		t.Fatalf("precondition: sequential FinalSort = %q, want avoided", seqRes.FinalSort)
	}
	if parRes.FinalSort != seqRes.FinalSort {
		t.Errorf("parallel FinalSort = %q, sequential %q", parRes.FinalSort, seqRes.FinalSort)
	}
	for i := range seqRes.Table.Rows {
		a := string(storage.AppendTuple(nil, seqRes.Table.Rows[i]))
		b := string(storage.AppendTuple(nil, parRes.Table.Rows[i]))
		if a != b {
			t.Fatalf("row %d differs between sequential and parallel runner", i)
		}
	}
}
