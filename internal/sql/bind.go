package sql

import (
	"fmt"

	"repro/internal/attrs"
	"repro/internal/storage"
	"repro/internal/window"
)

// BindWindowCall resolves a parsed window call against a schema, producing
// an executable window.Spec.
func BindWindowCall(call *WindowCall, schema *storage.Schema, defaultName string) (window.Spec, error) {
	spec := window.Spec{Name: defaultName, Arg: -1}

	col := func(name string) (attrs.ID, error) {
		i := schema.ColIndex(name)
		if i < 0 {
			return 0, fmt.Errorf("sql: unknown column %q", name)
		}
		return attrs.ID(i), nil
	}
	argCol := func(i int) (attrs.ID, error) {
		if i >= len(call.Args) || call.Args[i].Column == "" {
			return 0, fmt.Errorf("sql: %s argument %d must be a column", call.Func, i+1)
		}
		return col(call.Args[i].Column)
	}
	argInt := func(i int) (int64, error) {
		if i >= len(call.Args) || call.Args[i].Lit == nil || call.Args[i].Lit.Int == nil {
			return 0, fmt.Errorf("sql: %s argument %d must be an integer", call.Func, i+1)
		}
		return *call.Args[i].Lit.Int, nil
	}
	wantArgs := func(min, max int) error {
		if len(call.Args) < min || len(call.Args) > max {
			return fmt.Errorf("sql: %s takes %d..%d arguments, got %d", call.Func, min, max, len(call.Args))
		}
		return nil
	}

	switch call.Func {
	case "row_number", "rank", "dense_rank", "percent_rank", "cume_dist":
		if err := wantArgs(0, 0); err != nil {
			return spec, err
		}
		spec.Kind = map[string]window.Kind{
			"row_number": window.RowNumber, "rank": window.Rank,
			"dense_rank": window.DenseRank, "percent_rank": window.PercentRank,
			"cume_dist": window.CumeDist,
		}[call.Func]
	case "ntile":
		if err := wantArgs(1, 1); err != nil {
			return spec, err
		}
		n, err := argInt(0)
		if err != nil {
			return spec, err
		}
		spec.Kind, spec.N = window.Ntile, n
	case "lead", "lag":
		if err := wantArgs(1, 3); err != nil {
			return spec, err
		}
		a, err := argCol(0)
		if err != nil {
			return spec, err
		}
		spec.Arg = a
		spec.N = 1
		if len(call.Args) >= 2 {
			n, err := argInt(1)
			if err != nil {
				return spec, err
			}
			spec.N = n
		}
		if len(call.Args) == 3 {
			v, err := litValue(*call.Args[2].Lit)
			if err != nil {
				return spec, err
			}
			spec.Default = v
		}
		if call.Func == "lead" {
			spec.Kind = window.Lead
		} else {
			spec.Kind = window.Lag
		}
	case "first_value", "last_value":
		if err := wantArgs(1, 1); err != nil {
			return spec, err
		}
		a, err := argCol(0)
		if err != nil {
			return spec, err
		}
		spec.Arg = a
		if call.Func == "first_value" {
			spec.Kind = window.FirstValue
		} else {
			spec.Kind = window.LastValue
		}
	case "nth_value":
		if err := wantArgs(2, 2); err != nil {
			return spec, err
		}
		a, err := argCol(0)
		if err != nil {
			return spec, err
		}
		n, err := argInt(1)
		if err != nil {
			return spec, err
		}
		spec.Kind, spec.Arg, spec.N = window.NthValue, a, n
	case "count":
		spec.Kind = window.Count
		if call.Star {
			spec.Arg = -1
		} else {
			if err := wantArgs(1, 1); err != nil {
				return spec, err
			}
			a, err := argCol(0)
			if err != nil {
				return spec, err
			}
			spec.Arg = a
		}
	case "sum", "avg", "min", "max":
		if err := wantArgs(1, 1); err != nil {
			return spec, err
		}
		a, err := argCol(0)
		if err != nil {
			return spec, err
		}
		spec.Arg = a
		spec.Kind = map[string]window.Kind{
			"sum": window.Sum, "avg": window.Avg,
			"min": window.Min, "max": window.Max,
		}[call.Func]
	default:
		return spec, fmt.Errorf("sql: unknown window function %q", call.Func)
	}

	for _, name := range call.PartitionBy {
		id, err := col(name)
		if err != nil {
			return spec, err
		}
		if spec.PK.Contains(id) {
			return spec, fmt.Errorf("sql: duplicate PARTITION BY column %q", name)
		}
		spec.PK = spec.PK.Add(id)
		spec.PKOrder = append(spec.PKOrder, attrs.Asc(id))
	}
	for _, item := range call.OrderBy {
		id, err := col(item.Column)
		if err != nil {
			return spec, err
		}
		spec.OK = append(spec.OK, attrs.Elem{Attr: id, Desc: item.Desc, NullsFirst: item.NullsFirst})
	}
	if call.Frame != nil {
		f, err := bindFrame(call.Frame)
		if err != nil {
			return spec, err
		}
		spec.Frame = &f
	}
	return spec, nil
}

func bindFrame(fc *FrameClause) (window.Frame, error) {
	mode := window.Range
	if fc.Rows {
		mode = window.Rows
	}
	start, err := bindBound(fc.Start)
	if err != nil {
		return window.Frame{}, err
	}
	end, err := bindBound(fc.End)
	if err != nil {
		return window.Frame{}, err
	}
	return window.Frame{Mode: mode, Start: start, End: end}, nil
}

func bindBound(b FrameBound) (window.Bound, error) {
	switch b.Kind {
	case "UNBOUNDED PRECEDING":
		return window.Bound{Type: window.UnboundedPreceding}, nil
	case "UNBOUNDED FOLLOWING":
		return window.Bound{Type: window.UnboundedFollowing}, nil
	case "CURRENT ROW":
		return window.Bound{Type: window.CurrentRow}, nil
	case "PRECEDING":
		return window.Bound{Type: window.Preceding, Offset: b.Offset}, nil
	case "FOLLOWING":
		return window.Bound{Type: window.Following, Offset: b.Offset}, nil
	}
	return window.Bound{}, fmt.Errorf("sql: unknown frame bound %q", b.Kind)
}

func litValue(l Literal) (storage.Value, error) {
	switch {
	case l.IsNull:
		return storage.Null, nil
	case l.Int != nil:
		return storage.Int(*l.Int), nil
	case l.Float != nil:
		return storage.Float(*l.Float), nil
	case l.Str != nil:
		return storage.StringVal(*l.Str), nil
	case l.Bool != nil:
		if *l.Bool {
			return storage.Int(1), nil
		}
		return storage.Int(0), nil
	}
	return storage.Null, fmt.Errorf("sql: empty literal")
}

// truth is SQL three-valued logic.
type truth int8

const (
	tFalse truth = iota
	tTrue
	tUnknown
)

func (t truth) and(o truth) truth {
	if t == tFalse || o == tFalse {
		return tFalse
	}
	if t == tUnknown || o == tUnknown {
		return tUnknown
	}
	return tTrue
}

func (t truth) or(o truth) truth {
	if t == tTrue || o == tTrue {
		return tTrue
	}
	if t == tUnknown || o == tUnknown {
		return tUnknown
	}
	return tFalse
}

func (t truth) not() truth {
	switch t {
	case tTrue:
		return tFalse
	case tFalse:
		return tTrue
	default:
		return tUnknown
	}
}

// evalPredicate evaluates a WHERE predicate over a row with SQL
// three-valued logic; a row passes only when the result is TRUE.
func evalPredicate(e Expr, row storage.Tuple, schema *storage.Schema) (truth, error) {
	switch n := e.(type) {
	case *BinaryExpr:
		switch n.Op {
		case "AND", "OR":
			l, err := evalPredicate(n.L, row, schema)
			if err != nil {
				return tUnknown, err
			}
			r, err := evalPredicate(n.R, row, schema)
			if err != nil {
				return tUnknown, err
			}
			if n.Op == "AND" {
				return l.and(r), nil
			}
			return l.or(r), nil
		default:
			lv, err := evalValue(n.L, row, schema)
			if err != nil {
				return tUnknown, err
			}
			rv, err := evalValue(n.R, row, schema)
			if err != nil {
				return tUnknown, err
			}
			if lv.IsNull() || rv.IsNull() {
				return tUnknown, nil
			}
			c := storage.Compare(lv, rv)
			ok := false
			switch n.Op {
			case "=":
				ok = c == 0
			case "<>":
				ok = c != 0
			case "<":
				ok = c < 0
			case "<=":
				ok = c <= 0
			case ">":
				ok = c > 0
			case ">=":
				ok = c >= 0
			default:
				return tUnknown, fmt.Errorf("sql: unknown operator %q", n.Op)
			}
			if ok {
				return tTrue, nil
			}
			return tFalse, nil
		}
	case *NotExpr:
		v, err := evalPredicate(n.E, row, schema)
		if err != nil {
			return tUnknown, err
		}
		return v.not(), nil
	case *IsNullExpr:
		v, err := evalValue(n.E, row, schema)
		if err != nil {
			return tUnknown, err
		}
		isNull := v.IsNull()
		if n.Not {
			isNull = !isNull
		}
		if isNull {
			return tTrue, nil
		}
		return tFalse, nil
	case *ColumnRef, *LitExpr:
		v, err := evalValue(e, row, schema)
		if err != nil {
			return tUnknown, err
		}
		if v.IsNull() {
			return tUnknown, nil
		}
		if v.Kind() == storage.KindInt && v.Int64() != 0 {
			return tTrue, nil
		}
		return tFalse, nil
	}
	return tUnknown, fmt.Errorf("sql: unsupported predicate node %T", e)
}

func evalValue(e Expr, row storage.Tuple, schema *storage.Schema) (storage.Value, error) {
	switch n := e.(type) {
	case *ColumnRef:
		i := schema.ColIndex(n.Name)
		if i < 0 {
			return storage.Null, fmt.Errorf("sql: unknown column %q", n.Name)
		}
		return row[i], nil
	case *LitExpr:
		return litValue(n.Lit)
	}
	return storage.Null, fmt.Errorf("sql: expected value expression, got %T", e)
}
