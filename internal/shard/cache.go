package shard

import (
	"sync"

	"repro/internal/service"
	"repro/internal/sql"
)

// planCache is the coordinator's prepared-statement cache: normalized SQL
// (service.NormalizeSQL, the same key discipline as the shard nodes' own
// caches) maps to a *sql.Prepared carrying the parse/bind/plan and routing
// analysis. Entries are valid only under the coordinator catalog
// generation they were prepared against; a generation change (any cluster
// registration) flushes the cache wholesale — coordinators register
// rarely, so the simple flush beats per-entry bookkeeping. Past capacity
// the cache resets: shard nodes keep the heavyweight per-statement state
// (their plan caches are LRU-bounded); this one only saves coordinator
// CPU.
type planCache struct {
	mu      sync.Mutex
	cap     int
	gen     uint64
	entries map[string]*sql.Prepared
}

func newPlanCache(capacity int) *planCache {
	if capacity < 1 {
		capacity = 1
	}
	return &planCache{cap: capacity, entries: make(map[string]*sql.Prepared)}
}

func (c *planCache) get(key string, gen uint64) (*sql.Prepared, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if gen != c.gen {
		c.gen = gen
		c.entries = make(map[string]*sql.Prepared)
		return nil, false
	}
	p, ok := c.entries[key]
	return p, ok
}

func (c *planCache) put(key string, p *sql.Prepared) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if p.Generation() != c.gen {
		if p.Generation() < c.gen {
			return // prepared against a superseded catalog; don't cache
		}
		c.gen = p.Generation()
		c.entries = make(map[string]*sql.Prepared)
	}
	if len(c.entries) >= c.cap {
		c.entries = make(map[string]*sql.Prepared)
	}
	c.entries[key] = p
}

// normalizeSQL aliases the service's cache-key normalization.
func normalizeSQL(src string) string { return service.NormalizeSQL(src) }
