package shard

import (
	"strings"
	"sync"

	"repro/internal/service"
	"repro/internal/sql"
)

// planCache is the coordinator's prepared-statement cache: normalized SQL
// (service.NormalizeSQL, the same key discipline as the shard nodes' own
// caches) maps to a *sql.Prepared carrying the parse/bind/plan and routing
// analysis. Invalidation is per table: RegisterSharded and
// RegisterReplicated drop only the plans prepared against the table they
// replace (invalidateTable), so a catalog that gains or refreshes one
// table keeps every other table's plans hot — the first slice of the
// shard-aware plan cache (ROADMAP), replacing the earlier
// flush-everything-on-any-generation-change discipline.
//
// The generation guard remains only as a put-time race check: a prepare
// that raced a registration (its generation is no longer current) is not
// cached, because invalidateTable may already have swept the table it was
// built against. Past capacity the cache resets wholesale: shard nodes
// keep the heavyweight per-statement state (their plan caches are
// LRU-bounded); this one only saves coordinator CPU.
type planCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*coordEntry            // normalized SQL -> entry
	byTable map[string]map[string]*coordEntry // folded table -> keys of its plans

	hits, misses, invalidations uint64
}

type coordEntry struct {
	key   string
	table string // folded FROM-table name
	prep  *sql.Prepared
}

func newPlanCache(capacity int) *planCache {
	if capacity < 1 {
		capacity = 1
	}
	return &planCache{
		cap:     capacity,
		entries: make(map[string]*coordEntry),
		byTable: make(map[string]map[string]*coordEntry),
	}
}

func (c *planCache) get(key string) (*sql.Prepared, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	return e.prep, true
}

// put stores a freshly prepared statement. genNow reads the live
// coordinator catalog generation and is evaluated inside the cache lock:
// when the statement's generation differs from it, a registration ran
// concurrently and the plan may already be stale, so it is not cached
// (the next lookup re-prepares). Reading under the lock closes the race
// with invalidateTable — a registration's sweep takes this same lock
// strictly after its generation bump, so an insert either passes the
// check before the sweep (and is swept) or reads the bumped generation
// (and is rejected); a pre-read generation snapshot would leave a window
// where a stale plan outlives the sweep.
func (c *planCache) put(key string, p *sql.Prepared, genNow func() uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if p.Generation() != genNow() {
		return
	}
	if len(c.entries) >= c.cap {
		if _, ok := c.entries[key]; !ok {
			c.entries = make(map[string]*coordEntry)
			c.byTable = make(map[string]map[string]*coordEntry)
		}
	}
	table := strings.ToLower(p.Table())
	e := &coordEntry{key: key, table: table, prep: p}
	c.entries[key] = e
	keys := c.byTable[table]
	if keys == nil {
		keys = make(map[string]*coordEntry)
		c.byTable[table] = keys
	}
	keys[key] = e
}

// invalidateTable drops every plan prepared against table (folded name),
// leaving other tables' plans in place.
func (c *planCache) invalidateTable(table string) {
	table = strings.ToLower(table)
	c.mu.Lock()
	defer c.mu.Unlock()
	for key := range c.byTable[table] {
		delete(c.entries, key)
		c.invalidations++
	}
	delete(c.byTable, table)
}

// stats snapshots the coordinator cache counters.
func (c *planCache) stats() service.CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return service.CacheStats{
		Size:          len(c.entries),
		Capacity:      c.cap,
		Hits:          c.hits,
		Misses:        c.misses,
		Invalidations: c.invalidations,
	}
}

// normalizeSQL aliases the service's cache-key normalization.
func normalizeSQL(src string) string { return service.NormalizeSQL(src) }
