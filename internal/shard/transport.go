package shard

import (
	"context"
	"io"

	"repro"
	"repro/internal/attrs"
	"repro/internal/service"
	"repro/internal/storage"
	"repro/internal/trace"
)

// Mode selects how much of a statement a shard node executes.
type Mode string

const (
	// ModeLocal executes the shard-local part: WHERE, chain, projection —
	// no DISTINCT/ORDER BY/LIMIT, which the coordinator applies over the
	// concatenation of every shard's output.
	ModeLocal Mode = "local"
	// ModeFull executes the entire statement; used for replicated tables
	// where a single node serves the whole query.
	ModeFull Mode = "full"
)

// QueryOutcome is one shard node's execution result plus the observations
// the coordinator aggregates.
type QueryOutcome struct {
	Table         *storage.Table
	CacheHit      bool
	FinalSort     string
	BlocksRead    int64
	BlocksWritten int64
	Comparisons   int64
	// Trace is the node's span subtree for this execution, when the node
	// recorded one; the coordinator grafts it under its own per-node span.
	Trace *trace.Span
}

// RowStream is one shard node's incremental query response: rows pulled
// one at a time, io.EOF at end of stream, and the node's execution
// observations (Outcome) available once the stream has ended. Closing a
// half-drained stream tells the node to stop — over HTTP by closing the
// response body, in-process by closing the node's cursor — which releases
// the node's admission slot.
type RowStream interface {
	// Columns returns the streamed output schema.
	Columns() []storage.Column
	// Next returns the next row, io.EOF at end of stream, or the error
	// that cut the stream.
	Next() (storage.Tuple, error)
	// Outcome returns the node's execution observations; nil until the
	// stream ended cleanly.
	Outcome() *QueryOutcome
	// Close releases the stream.
	Close() error
}

// Transport reaches one shard node. Two implementations exist: Local wraps
// an in-process service.Service (tests, benches and single-binary
// scale-up), HTTP rides the /shard/* routes of a remote windserve so
// multiple processes form a real cluster. All methods must be safe for
// concurrent use — the coordinator scatters to every shard at once.
type Transport interface {
	// Query executes a statement on the node (see Mode).
	Query(ctx context.Context, sql string, mode Mode) (*QueryOutcome, error)
	// QueryStream executes a statement and streams its rows: the scatter
	// path's transport primitive, bounding coordinator memory by what is
	// in flight instead of the node's whole response. The request carries
	// the SQL, the Mode, and optionally the coordinator's plan Fingerprint
	// so the node resolves its plan cache without re-normalizing the text.
	QueryStream(ctx context.Context, req service.ShardQueryRequest) (RowStream, error)
	// TableStream streams the node's rows of a table — the gather path of
	// chains with no usable shuffle key. Incremental on the wire: the
	// coordinator appends rows as they arrive instead of decoding a whole
	// response body.
	TableStream(ctx context.Context, name string) (RowStream, error)
	// ShuffleRun executes one non-final stage of a per-segment distributed
	// chain on the node (service.RunShuffleStep): run the segment, then
	// re-shuffle the output directly to the peer nodes. Returns once every
	// peer has ingested — the coordinator's round barrier.
	ShuffleRun(ctx context.Context, req service.ShuffleRunRequest) (*service.ShuffleRunResult, error)
	// SegmentStream opens the final shuffle segment's row stream over the
	// node's buffered shuffle input (service.StreamSegment); the
	// coordinator merge-concatenates these exactly like scatter streams.
	SegmentStream(ctx context.Context, req service.ShardQueryRequest) (RowStream, error)
	// AcceptShuffle delivers one re-shuffled row batch into the node's
	// shuffle inbox. Nodes address each other directly over their own data
	// plane; this entry point exists so in-process clusters (and tests
	// wrapping transports) can route peer deliveries without sockets.
	AcceptShuffle(ctx context.Context, b *service.ShuffleBatch) error
	// ShuffleDrop discards the node's buffered shuffle state for id — the
	// coordinator's cleanup when a stage fails mid-shuffle.
	ShuffleDrop(ctx context.Context, id string) error
	// Register installs a table (partition or replica) on the node.
	Register(ctx context.Context, name string, t *storage.Table) error
	// Append applies one batch of rows to the node's partition (or
	// replica) of a table. watermark is the coordinator-assigned data
	// generation for the logical append — the node's generation converges
	// on max(own+1, watermark), so every owning node reports the same
	// watermark to its subscribers.
	Append(ctx context.Context, table string, rows []storage.Tuple, watermark uint64) (service.AppendResponse, error)
	// Subscribe opens a live maintained cursor on the node: the SUBSCRIBE
	// statement's initial result streams first, then the stream blocks and
	// delta rows arrive as appends land. src carries the SUBSCRIBE prefix.
	// The stream ends only when closed, the context is canceled, or the
	// node kills the query.
	Subscribe(ctx context.Context, src string) (RowStream, error)
	// Distinct returns the node-local distinct count of the attribute set,
	// feeding the coordinator's statistics stubs.
	Distinct(ctx context.Context, table string, set attrs.Set) (int64, error)
	// Stats snapshots the node's service counters.
	Stats(ctx context.Context) (service.Snapshot, error)
	// Health reports nil when the node is serving.
	Health(ctx context.Context) error
	// LiveQueries snapshots the node's in-flight query registry, newest
	// first; the coordinator's /debug/queries merges each node's entries
	// under the owning query by trace ID.
	LiveQueries(ctx context.Context) ([]trace.QueryInfo, error)
	// KillQuery cancels the node's in-flight query with the given registry
	// ID; false (with nil error) when the node holds no such query.
	KillQuery(ctx context.Context, id string) (bool, error)
}

// Local is the in-process transport: a shard node living in this process
// as a service.Service over its own engine (private catalog, spill store,
// unit memory M). Used by tests, benches, and single-binary scale-up.
type Local struct {
	svc *service.Service
}

// NewLocal wraps an in-process service as a shard node.
func NewLocal(svc *service.Service) *Local { return &Local{svc: svc} }

// Service returns the wrapped service (tests inspect its counters).
func (l *Local) Service() *service.Service { return l.svc }

// Query implements Transport.
func (l *Local) Query(ctx context.Context, sql string, mode Mode) (*QueryOutcome, error) {
	var (
		res *service.QueryResult
		err error
	)
	if mode == ModeLocal {
		res, err = l.svc.QueryShardLocal(ctx, sql, "")
	} else {
		res, err = l.svc.Query(ctx, sql)
	}
	if err != nil {
		return nil, err
	}
	out := &QueryOutcome{Table: res.Table, CacheHit: res.CacheHit, FinalSort: res.FinalSort}
	if res.Metrics != nil {
		out.BlocksRead = res.Metrics.BlocksRead
		out.BlocksWritten = res.Metrics.BlocksWritten
		out.Comparisons = res.Metrics.Comparisons
	}
	return out, nil
}

// QueryStream implements Transport: the node's service cursor, adapted.
// The node-side admission slot is held until the stream is drained or
// closed, exactly as for a remote node.
func (l *Local) QueryStream(ctx context.Context, req service.ShardQueryRequest) (RowStream, error) {
	var (
		rows *windowdb.Rows
		err  error
	)
	if Mode(req.Mode) == ModeLocal {
		rows, err = l.svc.StreamShardLocal(ctx, req.SQL, req.Fingerprint, req.SubplanFP)
	} else {
		rows, err = l.svc.QueryContext(ctx, req.SQL)
	}
	if err != nil {
		return nil, err
	}
	return &rowsStream{rows: rows}, nil
}

// rowsStream adapts a windowdb.Rows to the transport's RowStream shape.
type rowsStream struct {
	rows    *windowdb.Rows
	outcome *QueryOutcome
}

func (rs *rowsStream) Columns() []storage.Column { return rs.rows.ColumnTypes() }

func (rs *rowsStream) Next() (storage.Tuple, error) {
	if rs.rows.Next() {
		return rs.rows.Row(), nil
	}
	if err := rs.rows.Err(); err != nil {
		return nil, err
	}
	rs.finish()
	return nil, io.EOF
}

func (rs *rowsStream) finish() {
	if rs.outcome != nil {
		return
	}
	m := rs.rows.Metrics()
	if m == nil {
		return
	}
	rs.outcome = &QueryOutcome{
		CacheHit:      m.CacheHit,
		FinalSort:     m.FinalSort,
		BlocksRead:    m.BlocksRead,
		BlocksWritten: m.BlocksWritten,
		Comparisons:   m.Comparisons,
		Trace:         m.Trace,
	}
}

func (rs *rowsStream) Outcome() *QueryOutcome { return rs.outcome }

func (rs *rowsStream) Close() error { return rs.rows.Close() }

// TableStream implements Transport: an in-process stream over the node's
// registered (immutable) table — no rows are copied; consumers must not
// mutate the yielded tuples.
func (l *Local) TableStream(ctx context.Context, name string) (RowStream, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	t, err := l.svc.Engine().Table(name)
	if err != nil {
		return nil, err
	}
	return &tableStream{ctx: ctx, cols: t.Schema.Columns, rows: t.Rows}, nil
}

// tableStream yields a materialized table's rows as a RowStream.
type tableStream struct {
	ctx     context.Context
	cols    []storage.Column
	rows    []storage.Tuple
	pos     int
	outcome *QueryOutcome
}

func (ts *tableStream) Columns() []storage.Column { return ts.cols }

func (ts *tableStream) Next() (storage.Tuple, error) {
	if ts.pos >= len(ts.rows) {
		if ts.outcome == nil {
			ts.outcome = &QueryOutcome{}
		}
		return nil, io.EOF
	}
	if ts.pos%1024 == 0 {
		if err := ts.ctx.Err(); err != nil {
			return nil, err
		}
	}
	t := ts.rows[ts.pos]
	ts.pos++
	return t, nil
}

func (ts *tableStream) Outcome() *QueryOutcome { return ts.outcome }

func (ts *tableStream) Close() error {
	ts.rows = nil
	return nil
}

// ShuffleRun implements Transport: the node executes the stage in-process,
// delivering re-shuffled partitions through the request's Deliver hook
// (the cluster wires it to the peer transports' AcceptShuffle).
func (l *Local) ShuffleRun(ctx context.Context, req service.ShuffleRunRequest) (*service.ShuffleRunResult, error) {
	return l.svc.RunShuffleStep(ctx, req, nil)
}

// SegmentStream implements Transport: the node's final-segment cursor,
// adapted; the admission slot is held until the stream is drained or
// closed, exactly as for QueryStream.
func (l *Local) SegmentStream(ctx context.Context, req service.ShardQueryRequest) (RowStream, error) {
	rows, err := l.svc.StreamSegment(ctx, req)
	if err != nil {
		return nil, err
	}
	return &rowsStream{rows: rows}, nil
}

// AcceptShuffle implements Transport: straight into the node's inbox.
func (l *Local) AcceptShuffle(ctx context.Context, b *service.ShuffleBatch) error {
	return l.svc.ShuffleAccept(ctx, b)
}

// ShuffleDrop implements Transport.
func (l *Local) ShuffleDrop(ctx context.Context, id string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	l.svc.ShuffleDrop(id)
	return nil
}

// Register implements Transport.
func (l *Local) Register(ctx context.Context, name string, t *storage.Table) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	l.svc.Engine().Register(name, t)
	return nil
}

// Append implements Transport: the node-side service append — validation,
// data-generation bump, subscription wake, metering.
func (l *Local) Append(ctx context.Context, table string, rows []storage.Tuple, watermark uint64) (service.AppendResponse, error) {
	start, wm, err := l.svc.Append(ctx, table, rows, watermark)
	if err != nil {
		return service.AppendResponse{}, err
	}
	return service.AppendResponse{Table: table, StartRid: start, RowsAppended: len(rows), Watermark: wm}, nil
}

// Subscribe implements Transport: the node's live subscription cursor,
// adapted. The node-side admission slot and registry entry are held for
// the subscription's lifetime, exactly as for a remote node.
func (l *Local) Subscribe(ctx context.Context, src string) (RowStream, error) {
	rows, err := l.svc.QueryContext(ctx, src)
	if err != nil {
		return nil, err
	}
	return &rowsStream{rows: rows}, nil
}

// Distinct implements Transport.
func (l *Local) Distinct(ctx context.Context, table string, set attrs.Set) (int64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	entry, err := l.svc.Engine().Stats(table)
	if err != nil {
		return 0, err
	}
	return entry.Distinct(set), nil
}

// Stats implements Transport.
func (l *Local) Stats(ctx context.Context) (service.Snapshot, error) {
	if err := ctx.Err(); err != nil {
		return service.Snapshot{}, err
	}
	return l.svc.Stats(), nil
}

// Health implements Transport.
func (l *Local) Health(ctx context.Context) error { return ctx.Err() }

// LiveQueries implements Transport.
func (l *Local) LiveQueries(ctx context.Context) ([]trace.QueryInfo, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return l.svc.Registry().Snapshot(), nil
}

// KillQuery implements Transport.
func (l *Local) KillQuery(ctx context.Context, id string) (bool, error) {
	if err := ctx.Err(); err != nil {
		return false, err
	}
	return l.svc.Registry().Kill(id), nil
}
