package shard

import (
	"context"
	"errors"
	"hash/fnv"
	"io"
	"sync"
	"testing"
	"time"

	windowdb "repro"
	"repro/internal/datagen"
	"repro/internal/service"
	"repro/internal/storage"
)

// residencyGauge counts rows resident in coordinator-owned buffers: a
// counting codec charged on batch arrival and credited as the consumer
// takes rows.
type residencyGauge struct {
	mu       sync.Mutex
	resident int
	peak     int
}

func (g *residencyGauge) add(n int) {
	g.mu.Lock()
	g.resident += n
	if g.resident > g.peak {
		g.peak = g.resident
	}
	g.mu.Unlock()
}

func (g *residencyGauge) sub(n int) {
	g.mu.Lock()
	g.resident -= n
	g.mu.Unlock()
}

func (g *residencyGauge) Peak() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.peak
}

func (g *residencyGauge) Resident() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.resident
}

// countingTransport wraps a Transport and delivers QueryStream rows
// through fixed-size batches — the wire-batch model — while accounting
// every row resident at the coordinator against a shared gauge. It is the
// measuring instrument for the bounded-memory scatter assertion.
type countingTransport struct {
	Transport
	batch int
	gauge *residencyGauge
}

func (ct *countingTransport) QueryStream(ctx context.Context, req service.ShardQueryRequest) (RowStream, error) {
	inner, err := ct.Transport.QueryStream(ctx, req)
	if err != nil {
		return nil, err
	}
	return &countingStream{inner: inner, batch: ct.batch, gauge: ct.gauge}, nil
}

// SegmentStream is counted too: the shuffle route's final merge is the
// only point where its rows touch coordinator-owned buffers (the
// re-shuffled intermediates move node-to-node and are never charged).
func (ct *countingTransport) SegmentStream(ctx context.Context, req service.ShardQueryRequest) (RowStream, error) {
	inner, err := ct.Transport.SegmentStream(ctx, req)
	if err != nil {
		return nil, err
	}
	return &countingStream{inner: inner, batch: ct.batch, gauge: ct.gauge}, nil
}

type countingStream struct {
	inner RowStream
	batch int
	gauge *residencyGauge
	buf   []storage.Tuple
	done  bool
}

func (cs *countingStream) Columns() []storage.Column { return cs.inner.Columns() }

func (cs *countingStream) Next() (storage.Tuple, error) {
	if len(cs.buf) == 0 && !cs.done {
		for len(cs.buf) < cs.batch {
			t, err := cs.inner.Next()
			if err == io.EOF {
				cs.done = true
				break
			}
			if err != nil {
				cs.gauge.sub(len(cs.buf))
				cs.buf = nil
				return nil, err
			}
			cs.buf = append(cs.buf, t)
			cs.gauge.add(1)
		}
	}
	if len(cs.buf) == 0 {
		return nil, io.EOF
	}
	t := cs.buf[0]
	cs.buf = cs.buf[1:]
	cs.gauge.sub(1)
	return t, nil
}

func (cs *countingStream) Outcome() *QueryOutcome { return cs.inner.Outcome() }

func (cs *countingStream) Close() error {
	cs.gauge.sub(len(cs.buf))
	cs.buf = nil
	return cs.inner.Close()
}

// tupleChecksum is an order-insensitive multiset fingerprint: the sum of
// per-tuple FNV-64 hashes. It lets the residency test verify
// value-identity on 120k rows without holding either result set.
func tupleChecksum(sum uint64, row storage.Tuple) uint64 {
	h := fnv.New64a()
	_, _ = h.Write(storage.AppendTuple(nil, row))
	return sum + h.Sum64()
}

// TestScatterStreamBoundedResidency is the acceptance test for the
// streaming scatter path: a 4-shard scatter of the 120k-row Q6 chain
// flows through the coordinator with peak resident rows bounded by the
// wire batch size × shard count, not |R| — while producing exactly the
// single-engine multiset. Node-side memory is the nodes' own (they hold
// their partitions); what this bounds is the coordinator, the process the
// ROADMAP item called out for materializing whole scatter responses.
func TestScatterStreamBoundedResidency(t *testing.T) {
	const (
		rows   = 120_000
		nShard = 4
		batch  = 256
	)
	engCfg := windowdb.Config{SortMemBytes: 32 << 20, Parallelism: 1}
	gauge := &residencyGauge{}
	shards := make([]Transport, nShard)
	for i := range shards {
		eng := windowdb.New(engCfg)
		shards[i] = &countingTransport{
			Transport: NewLocal(service.New(eng, service.Config{})),
			batch:     batch,
			gauge:     gauge,
		}
	}
	c, err := New(Config{Engine: engCfg}, shards)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	ws := datagen.WebSales(datagen.WebSalesConfig{Rows: rows, Seed: 7})
	if err := c.RegisterSharded(ctx, "web_sales", ws, "ws_item_sk"); err != nil {
		t.Fatal(err)
	}

	// Single-engine reference checksum.
	eng := windowdb.New(engCfg)
	eng.Register("web_sales", ws)
	ref, err := eng.Query(q6SQL)
	if err != nil {
		t.Fatal(err)
	}
	var wantSum uint64
	for _, row := range ref.Table.Rows {
		wantSum = tupleChecksum(wantSum, row)
	}

	rc, err := c.QueryContext(ctx, q6SQL)
	if err != nil {
		t.Fatal(err)
	}
	var n int
	var gotSum uint64
	for rc.Next() {
		gotSum = tupleChecksum(gotSum, rc.Row())
		n++
	}
	if err := rc.Err(); err != nil {
		t.Fatal(err)
	}
	if n != rows {
		t.Fatalf("streamed %d rows, want %d", n, rows)
	}
	if gotSum != wantSum {
		t.Fatal("streamed multiset differs from the single-engine result")
	}
	m := rc.Metrics()
	if m == nil || m.Route != "scatter" {
		t.Fatalf("metrics = %+v, want scatter route", m)
	}

	// The bound: every node may have one full batch parked at the
	// coordinator, nothing more. |R| would be 120 000.
	if peak := gauge.Peak(); peak > batch*nShard {
		t.Fatalf("peak resident rows %d exceeds batch*shards = %d", peak, batch*nShard)
	}
	if res := gauge.Resident(); res != 0 {
		t.Fatalf("resident rows %d after drain, want 0", res)
	}
}

// streamCluster builds an n-shard cluster keeping handles to the node
// services, for slot-gauge assertions.
func streamCluster(t *testing.T, n, rows int, cfg Config) (*Cluster, []*service.Service) {
	t.Helper()
	svcs := make([]*service.Service, n)
	shards := make([]Transport, n)
	for i := range shards {
		eng := windowdb.New(testEngineConfig())
		svcs[i] = service.New(eng, service.Config{Slots: 1, MaxQueue: -1})
		shards[i] = NewLocal(svcs[i])
	}
	if cfg.Engine.SortMemBytes == 0 {
		cfg.Engine = testEngineConfig()
	}
	c, err := New(cfg, shards)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	ws := datagen.WebSales(datagen.WebSalesConfig{Rows: rows, Seed: 7})
	if err := c.RegisterSharded(ctx, "web_sales", ws, "ws_item_sk"); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterReplicated(ctx, "emptab", datagen.Emptab()); err != nil {
		t.Fatal(err)
	}
	return c, svcs
}

// waitNodeSlotsFree polls every node's in-flight gauge back to zero.
func waitNodeSlotsFree(t *testing.T, svcs []*service.Service) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		busy := false
		for _, s := range svcs {
			if s.Stats().InFlight != 0 {
				busy = true
			}
		}
		if !busy {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	for i, s := range svcs {
		if got := s.Stats().InFlight; got != 0 {
			t.Fatalf("node %d in-flight gauge stuck at %d", i, got)
		}
	}
}

// TestScatterCloseReleasesNodeSlots: closing a half-drained scatter
// stream closes the per-node streams, releasing every node's admission
// slot.
func TestScatterCloseReleasesNodeSlots(t *testing.T) {
	c, svcs := streamCluster(t, 2, 4000, Config{})
	rows, err := c.QueryContext(context.Background(), q6SQL)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if !rows.Next() {
			t.Fatalf("stream ended early: %v", rows.Err())
		}
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	waitNodeSlotsFree(t, svcs)
	if got := c.aborted.Load(); got != 1 {
		t.Fatalf("cluster aborted = %d, want 1 (early close is neither success nor failure)", got)
	}
	// Nodes admit again: a fresh scatter completes.
	if _, err := c.Query(context.Background(), q6SQL); err != nil {
		t.Fatalf("scatter after close: %v", err)
	}
}

// TestScatterCancelMidDrain: a context cancelled while the scatter
// stream is half-drained surfaces context.Canceled and releases the node
// slots.
func TestScatterCancelMidDrain(t *testing.T) {
	c, svcs := streamCluster(t, 2, 4000, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rows, err := c.QueryContext(ctx, q6SQL)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if !rows.Next() {
			t.Fatalf("stream ended early: %v", rows.Err())
		}
	}
	cancel()
	for rows.Next() {
	}
	if err := rows.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	waitNodeSlotsFree(t, svcs)
}

// TestGatherSlotReleasedOnCancel: the coordinator's gather execution slot
// is released when a half-drained gather cursor is cancelled — the
// in-flight gauge returns to zero and the single slot admits the next
// gather.
func TestGatherSlotReleasedOnCancel(t *testing.T) {
	c, svcs := streamCluster(t, 2, 4000, Config{GatherSlots: -1}) // 1 slot
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rows, err := c.QueryContext(ctx, gatherSQL)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.GatherInFlight(); got != 1 {
		t.Fatalf("gather in-flight = %d with an open cursor, want 1", got)
	}
	for i := 0; i < 10; i++ {
		if !rows.Next() {
			t.Fatalf("stream ended early: %v", rows.Err())
		}
	}
	cancel()
	for rows.Next() {
	}
	if err := rows.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := c.GatherInFlight(); got != 0 {
		t.Fatalf("gather in-flight = %d after cancel, want 0", got)
	}
	waitNodeSlotsFree(t, svcs)
	// The released slot admits the next gather immediately.
	res, err := c.Query(context.Background(), gatherSQL)
	if err != nil {
		t.Fatalf("gather after cancel: %v", err)
	}
	if res.Route != "gather" {
		t.Fatalf("route = %q, want gather", res.Route)
	}
}

// TestGatherSlotReleasedOnClose: early Close releases the gather slot
// too.
func TestGatherSlotReleasedOnClose(t *testing.T) {
	c, _ := streamCluster(t, 2, 2000, Config{GatherSlots: -1})
	rows, err := c.QueryContext(context.Background(), gatherSQL)
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatalf("no rows: %v", rows.Err())
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	if got := c.GatherInFlight(); got != 0 {
		t.Fatalf("gather in-flight = %d after Close, want 0", got)
	}
}

// TestScatterStreamLimitStopsEarly: LIMIT on a streamable scatter
// terminates the merge early and still releases every stream.
func TestScatterStreamLimitStopsEarly(t *testing.T) {
	c, svcs := streamCluster(t, 2, 4000, Config{})
	rows, err := c.QueryContext(context.Background(), q6SQL+` LIMIT 5`)
	if err != nil {
		t.Fatal(err)
	}
	var n int
	for rows.Next() {
		n++
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("got %d rows, want 5", n)
	}
	waitNodeSlotsFree(t, svcs)
}

// TestShuffleStreamBoundedResidency is the acceptance test for the
// shuffle route's coordinator memory: a 4-shard key-divergent two-segment
// chain over 120k rows executes with route "shuffle", produces exactly
// the single-engine multiset, and flows through the coordinator with peak
// resident rows bounded by the wire batch size × shard count — the
// re-shuffled intermediate rows move node-to-node and never appear in a
// coordinator-owned buffer at all.
func TestShuffleStreamBoundedResidency(t *testing.T) {
	const (
		rows   = 120_000
		nShard = 4
		batch  = 256
	)
	engCfg := windowdb.Config{SortMemBytes: 32 << 20, Parallelism: 1}
	gauge := &residencyGauge{}
	svcs := make([]*service.Service, nShard)
	shards := make([]Transport, nShard)
	for i := range shards {
		svcs[i] = service.New(windowdb.New(engCfg), service.Config{})
		shards[i] = &countingTransport{
			Transport: NewLocal(svcs[i]),
			batch:     batch,
			gauge:     gauge,
		}
	}
	c, err := New(Config{Engine: engCfg}, shards)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	ws := datagen.WebSales(datagen.WebSalesConfig{Rows: rows, Seed: 7})
	if err := c.RegisterSharded(ctx, "web_sales", ws, "ws_item_sk"); err != nil {
		t.Fatal(err)
	}

	eng := windowdb.New(engCfg)
	eng.Register("web_sales", ws)
	ref, err := eng.Query(divergeSQL)
	if err != nil {
		t.Fatal(err)
	}
	var wantSum uint64
	for _, row := range ref.Table.Rows {
		wantSum = tupleChecksum(wantSum, row)
	}

	rc, err := c.QueryContext(ctx, divergeSQL)
	if err != nil {
		t.Fatal(err)
	}
	var n int
	var gotSum uint64
	for rc.Next() {
		gotSum = tupleChecksum(gotSum, rc.Row())
		n++
	}
	if err := rc.Err(); err != nil {
		t.Fatal(err)
	}
	if n != rows {
		t.Fatalf("streamed %d rows, want %d", n, rows)
	}
	if gotSum != wantSum {
		t.Fatal("shuffled multiset differs from the single-engine result")
	}
	m := rc.Metrics()
	if m == nil || m.Route != "shuffle" {
		t.Fatalf("metrics = %+v, want shuffle route", m)
	}

	// The bound: every node may have one full batch parked at the
	// coordinator during the final merge, nothing more. |R| would be
	// 120 000 — and the gather route this replaces would hold all of it.
	if peak := gauge.Peak(); peak > batch*nShard {
		t.Fatalf("peak resident rows %d exceeds batch*shards = %d", peak, batch*nShard)
	}
	if res := gauge.Resident(); res != 0 {
		t.Fatalf("resident rows %d after drain, want 0", res)
	}
	for i, svc := range svcs {
		if got := svc.ShuffleBuffered(); got != 0 {
			t.Fatalf("node %d still buffers %d shuffle rounds", i, got)
		}
	}
}

// failingShuffleTransport injects a delivery failure: every re-shuffled
// batch aimed at this node is refused, dooming any shuffle round that
// includes it.
type failingShuffleTransport struct {
	Transport
}

func (f *failingShuffleTransport) AcceptShuffle(ctx context.Context, b *service.ShuffleBatch) error {
	return errors.New("injected shuffle delivery failure")
}

// TestShuffleFailureReleasesSlots: a shuffle that fails on one node
// cancels the peer stages, drops every node's buffered shuffle state,
// releases every node's admission slot, and leaves the coordinator's
// gather gauge untouched — and the cluster still serves afterwards.
func TestShuffleFailureReleasesSlots(t *testing.T) {
	const n = 3
	svcs := make([]*service.Service, n)
	shards := make([]Transport, n)
	for i := range shards {
		svcs[i] = service.New(windowdb.New(testEngineConfig()), service.Config{Slots: 1})
		shards[i] = NewLocal(svcs[i])
	}
	shards[1] = &failingShuffleTransport{Transport: shards[1]}
	c, err := New(Config{Engine: testEngineConfig()}, shards)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	ws := datagen.WebSales(datagen.WebSalesConfig{Rows: 2000, Seed: 7})
	if err := c.RegisterSharded(ctx, "web_sales", ws, "ws_item_sk"); err != nil {
		t.Fatal(err)
	}

	if _, err := c.Query(ctx, divergeSQL); err == nil {
		t.Fatal("shuffle with a failing node must error")
	}
	waitNodeSlotsFree(t, svcs)
	if got := c.GatherInFlight(); got != 0 {
		t.Fatalf("gather in-flight = %d after shuffle failure, want 0", got)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		buffered := 0
		for _, svc := range svcs {
			buffered += svc.ShuffleBuffered()
		}
		if buffered == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d shuffle rounds still buffered after failure cleanup", buffered)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := c.failures.Load(); got == 0 {
		t.Fatal("failed shuffle not counted")
	}
	// The cluster still serves routes that avoid the broken data plane.
	res, err := c.Query(ctx, q6SQL)
	if err != nil {
		t.Fatalf("scatter after shuffle failure: %v", err)
	}
	if res.Route != "scatter" {
		t.Fatalf("route %q, want scatter", res.Route)
	}
}

// TestShuffleCloseReleasesNodeSlots: closing a half-drained shuffle
// stream closes the per-node final-segment streams, releasing every
// node's admission slot and leaving no buffered state.
func TestShuffleCloseReleasesNodeSlots(t *testing.T) {
	c, svcs := streamCluster(t, 2, 4000, Config{})
	rows, err := c.QueryContext(context.Background(), divergeSQL)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if !rows.Next() {
			t.Fatalf("stream ended early: %v", rows.Err())
		}
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	waitNodeSlotsFree(t, svcs)
	if got := c.aborted.Load(); got != 1 {
		t.Fatalf("cluster aborted = %d, want 1", got)
	}
	for i, svc := range svcs {
		if got := svc.ShuffleBuffered(); got != 0 {
			t.Fatalf("node %d still buffers %d shuffle rounds after close", i, got)
		}
	}
	if _, err := c.Query(context.Background(), divergeSQL); err != nil {
		t.Fatalf("shuffle after close: %v", err)
	}
}

// TestShuffleCancelMidDrain: a context cancelled while the final merge is
// half-drained surfaces context.Canceled and releases the node slots.
func TestShuffleCancelMidDrain(t *testing.T) {
	c, svcs := streamCluster(t, 2, 4000, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rows, err := c.QueryContext(ctx, divergeSQL)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if !rows.Next() {
			t.Fatalf("stream ended early: %v", rows.Err())
		}
	}
	cancel()
	for rows.Next() {
	}
	if err := rows.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	waitNodeSlotsFree(t, svcs)
	for i, svc := range svcs {
		if got := svc.ShuffleBuffered(); got != 0 {
			t.Fatalf("node %d still buffers %d shuffle rounds after cancel", i, got)
		}
	}
}

// TestCoordCachePerTableInvalidation is the shard-aware plan cache
// slice: registering one table invalidates only that table's plans.
func TestCoordCachePerTableInvalidation(t *testing.T) {
	c, _ := streamCluster(t, 2, 1000, Config{})
	ctx := context.Background()

	// Prime both tables' plans.
	if _, err := c.Query(ctx, q6SQL); err != nil {
		t.Fatal(err)
	}
	empQ := `SELECT empnum, rank() OVER (ORDER BY salary DESC NULLS LAST) AS r FROM emptab`
	if _, err := c.Query(ctx, empQ); err != nil {
		t.Fatal(err)
	}
	res, err := c.Query(ctx, q6SQL)
	if err != nil {
		t.Fatal(err)
	}
	if !res.CacheHit {
		t.Fatal("second q6 run missed the coordinator cache")
	}

	// Re-registering emptab must not evict web_sales plans...
	if err := c.RegisterReplicated(ctx, "emptab", datagen.Emptab()); err != nil {
		t.Fatal(err)
	}
	res, err = c.Query(ctx, q6SQL)
	if err != nil {
		t.Fatal(err)
	}
	if !res.CacheHit {
		t.Fatal("re-registering emptab invalidated web_sales plans")
	}
	// ...but it does evict emptab's.
	res, err = c.Query(ctx, empQ)
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHit {
		t.Fatal("re-registering emptab kept its stale plan")
	}

	// And re-registering web_sales evicts the q6 plan.
	before := c.cache.stats().Invalidations
	ws := datagen.WebSales(datagen.WebSalesConfig{Rows: 1000, Seed: 8})
	if err := c.RegisterSharded(ctx, "web_sales", ws, "ws_item_sk"); err != nil {
		t.Fatal(err)
	}
	if got := c.cache.stats().Invalidations; got <= before {
		t.Fatalf("invalidations %d not advanced past %d", got, before)
	}
	res, err = c.Query(ctx, q6SQL)
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHit {
		t.Fatal("re-registering web_sales kept its stale plan")
	}
}
