package shard

import (
	"context"
	"errors"
	"slices"
	"strings"
	"testing"
	"time"

	"repro"
	"repro/internal/catalog"
	"repro/internal/datagen"
	"repro/internal/service"
	"repro/internal/sql"
	"repro/internal/storage"
)

// subSQL is a shard-local maintainable chain (one rank partitioned on the
// shard key, no ORDER BY/DISTINCT/LIMIT).
const subSQL = `SELECT ws_item_sk, rank() OVER (PARTITION BY ws_item_sk ORDER BY ws_sold_date_sk) AS r FROM web_sales`

// newLocalClusterNodes is newLocalCluster keeping the node services for
// inspection.
func newLocalClusterNodes(t *testing.T, n, rows int) (*Cluster, []*service.Service) {
	t.Helper()
	shards := make([]Transport, n)
	svcs := make([]*service.Service, n)
	for i := range shards {
		svcs[i] = service.New(windowdb.New(testEngineConfig()), service.Config{})
		shards[i] = NewLocal(svcs[i])
	}
	c, err := New(Config{Engine: testEngineConfig()}, shards)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	ws := datagen.WebSales(datagen.WebSalesConfig{Rows: rows, Seed: 7})
	if err := c.RegisterSharded(ctx, "web_sales", ws, "ws_item_sk"); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterReplicated(ctx, "emptab", datagen.Emptab()); err != nil {
		t.Fatal(err)
	}
	return c, svcs
}

// TestClusterAppendSharded routes an append through the coordinator and
// asserts row conservation across the nodes, plan-cache survival, and
// value identity with a fresh single engine over the concatenated data.
func TestClusterAppendSharded(t *testing.T) {
	const base, extra = 400, 25
	ctx := context.Background()
	c, svcs := newLocalClusterNodes(t, 3, base)

	// Warm the coordinator plan cache before the append.
	if _, err := c.Query(ctx, q6SQL); err != nil {
		t.Fatal(err)
	}

	batch := datagen.NewAppendStream(datagen.AppendStreamConfig{
		Base: datagen.WebSalesConfig{Rows: base, Seed: 7}, Seed: 99,
	}).Next(extra)
	resp, err := c.Append(ctx, "web_sales", batch)
	if err != nil {
		t.Fatal(err)
	}
	if resp.RowsAppended != extra || resp.StartRid != base || resp.Watermark != 2 {
		t.Fatalf("append response = %+v", resp)
	}

	// Every row landed on exactly one node.
	total := 0
	for _, svc := range svcs {
		nt, err := svc.Engine().Table("web_sales")
		if err != nil {
			t.Fatal(err)
		}
		total += nt.Len()
	}
	if total != base+extra {
		t.Fatalf("rows across nodes = %d, want %d", total, base+extra)
	}

	// The coordinator stub's statistics moved with the append.
	entry, err := c.Coordinator().Stats("web_sales")
	if err != nil {
		t.Fatal(err)
	}
	if entry.Rows() != base+extra {
		t.Fatalf("coordinator stub rows = %d, want %d", entry.Rows(), base+extra)
	}

	// The prepared plan survived (appends bump only the data generation)
	// and the re-evaluated result matches a fresh engine over base+batch.
	res, err := c.Query(ctx, q6SQL)
	if err != nil {
		t.Fatal(err)
	}
	if !res.CacheHit {
		t.Error("plan cache flushed by append")
	}
	if res.Table.Len() != base+extra {
		t.Fatalf("post-append result rows = %d, want %d", res.Table.Len(), base+extra)
	}
	ws := datagen.WebSales(datagen.WebSalesConfig{Rows: base, Seed: 7})
	ws.Rows = append(ws.Rows, batch...)
	ref := windowdb.New(testEngineConfig())
	ref.Register("web_sales", ws)
	want, err := ref.Query(q6SQL)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(canonical(res.Table), canonical(want.Table)) {
		t.Fatal("post-append cluster result differs from fresh single engine")
	}

	// Error taxonomy: unknown table and arity mismatch surface at the
	// coordinator before any node sees the batch.
	if _, err := c.Append(ctx, "nosuch", batch); !errors.Is(err, catalog.ErrUnknownTable) {
		t.Errorf("unknown-table append error = %v", err)
	}
	if _, err := c.Append(ctx, "web_sales", []storage.Tuple{{storage.Int(1)}}); err == nil {
		t.Error("arity-mismatch append succeeded")
	}
	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Appends != 1 || stats.RowsAppended != uint64(extra) {
		t.Errorf("append counters = %d/%d, want 1/%d", stats.Appends, stats.RowsAppended, extra)
	}
}

// TestClusterInsertReplicated sends an INSERT through the coordinator's
// SQL surface and asserts every replica received the rows.
func TestClusterInsertReplicated(t *testing.T) {
	ctx := context.Background()
	c, svcs := newLocalClusterNodes(t, 2, 100)

	res, err := c.Query(ctx, `INSERT INTO emptab VALUES (11, 20, 4000), (12, 20, NULL)`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.Len() != 1 || res.Table.Rows[0][1].Int64() != 2 {
		t.Fatalf("INSERT summary = %v", res.Table.Rows)
	}
	for i, svc := range svcs {
		nt, err := svc.Engine().Table("emptab")
		if err != nil {
			t.Fatal(err)
		}
		if nt.Len() != 12 {
			t.Fatalf("node %d emptab rows = %d, want 12", i, nt.Len())
		}
	}
	// The coordinator keeps a replica too; replica-routed reads see the rows.
	qres, err := c.Query(ctx, `SELECT empnum FROM emptab WHERE empnum >= 11`)
	if err != nil {
		t.Fatal(err)
	}
	if qres.Table.Len() != 2 || qres.Route != "replica" {
		t.Fatalf("post-insert read = %d rows via %q", qres.Table.Len(), qres.Route)
	}
}

// TestClusterSubscribe drives the cluster's live loop end to end over
// in-process transports: scatter fan-in of per-node subscriptions,
// cluster-unique rid rewriting, a routed append waking the cursor with a
// converged watermark, and a registry kill draining every node.
func TestClusterSubscribe(t *testing.T) {
	const base = 300
	ctx := context.Background()
	c, svcs := newLocalClusterNodes(t, 2, base)

	rows, err := c.QueryContext(ctx, "SUBSCRIBE "+subSQL)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	cols := rows.Columns()
	if len(cols) != 5 || cols[2] != "_rid" || cols[3] != "_op" || cols[4] != "_watermark" {
		t.Fatalf("columns = %v", cols)
	}
	rids := make(map[int64]bool, base)
	for i := 0; i < base; i++ {
		if !rows.Next() {
			t.Fatalf("initial stream ended early at %d: %v", i, rows.Err())
		}
		r := rows.Row()
		if op := r[3].Str(); op != "init" {
			t.Fatalf("initial row op = %q", op)
		}
		if rid := r[2].Int64(); rids[rid] {
			t.Fatalf("duplicate cluster rid %d", rid)
		} else {
			rids[rid] = true
		}
	}

	// The subscription is registered and killable at the coordinator.
	var id string
	deadline := time.Now().Add(2 * time.Second)
	for id == "" {
		if infos := c.Registry().Snapshot(); len(infos) == 1 && strings.HasPrefix(infos[0].SQL, "SUBSCRIBE") {
			id = infos[0].ID
		} else if time.Now().After(deadline) {
			t.Fatalf("subscription not registered: %+v", infos)
		} else {
			time.Sleep(time.Millisecond)
		}
	}

	// A routed append wakes the cursor; the delta carries the
	// coordinator-assigned watermark and a fresh cluster-unique rid.
	batch := datagen.NewAppendStream(datagen.AppendStreamConfig{
		Base: datagen.WebSalesConfig{Rows: base, Seed: 7}, Seed: 4, HotItems: 2,
	}).Next(8)
	resp, err := c.Append(ctx, "web_sales", batch)
	if err != nil {
		t.Fatal(err)
	}
	sawAppend := false
	for !sawAppend {
		if !rows.Next() {
			t.Fatalf("stream ended before delta: %v", rows.Err())
		}
		r := rows.Row()
		switch op := r[3].Str(); op {
		case "append":
			sawAppend = true
			if wm := uint64(r[4].Int64()); wm != resp.Watermark {
				t.Fatalf("delta watermark = %d, append watermark = %d", wm, resp.Watermark)
			}
			if rid := r[2].Int64(); rids[rid] {
				t.Fatalf("appended row reused rid %d", rid)
			}
		case "upsert", "init":
		default:
			t.Fatalf("unexpected delta op %q", op)
		}
	}

	// Kill through the registry (what DELETE /debug/queries/{id} fires):
	// the cursor ends and every node drains its slot and subscription.
	if !c.Registry().Kill(id) {
		t.Fatalf("kill %s failed", id)
	}
	done := make(chan struct{})
	go func() {
		for rows.Next() {
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("cluster stream did not end after kill")
	}
	waitClusterDrained(t, c, svcs)
}

// TestClusterSubscribeRejects covers the statements a cluster cannot
// maintain: non-shard-local chains, non-maintainable shapes, and buffered
// drains.
func TestClusterSubscribeRejects(t *testing.T) {
	ctx := context.Background()
	c, _ := newLocalClusterNodes(t, 2, 50)

	// gatherSQL's chain is not shard-local: its maintenance state would
	// span nodes.
	if _, err := c.QueryContext(ctx, "SUBSCRIBE "+gatherSQL); !errors.Is(err, sql.ErrBind) {
		t.Errorf("non-shard-local SUBSCRIBE error = %v", err)
	}
	if _, err := c.QueryContext(ctx, "SUBSCRIBE "+subSQL+" ORDER BY ws_item_sk"); !errors.Is(err, sql.ErrBind) {
		t.Errorf("ORDER BY SUBSCRIBE error = %v", err)
	}
	if _, err := c.Query(ctx, "SUBSCRIBE "+subSQL); !errors.Is(err, sql.ErrBind) {
		t.Errorf("buffered SUBSCRIBE error = %v", err)
	}
	if _, err := c.QueryContext(ctx, `SUBSCRIBE SELECT empnum FROM nosuch`); !errors.Is(err, catalog.ErrUnknownTable) {
		t.Errorf("unknown-table SUBSCRIBE error = %v", err)
	}
}

// TestClusterSubscribeReplica subscribes to a replicated table: the whole
// subscription serves from one node, whose replica sees every cluster
// append.
func TestClusterSubscribeReplica(t *testing.T) {
	ctx := context.Background()
	c, svcs := newLocalClusterNodes(t, 2, 50)

	rows, err := c.QueryContext(ctx, `SUBSCRIBE SELECT empnum, rank() OVER (PARTITION BY dept ORDER BY salary DESC NULLS LAST) AS r FROM emptab`)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	for i := 0; i < 10; i++ {
		if !rows.Next() {
			t.Fatalf("initial stream ended early: %v", rows.Err())
		}
	}
	resp, err := c.Append(ctx, "emptab", []storage.Tuple{{storage.Int(20), storage.Int(10), storage.Int(1000000)}})
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatalf("no delta after replicated append: %v", rows.Err())
	}
	r := rows.Row()
	if op := r[3].Str(); op != "append" && op != "upsert" {
		t.Fatalf("delta op = %q", op)
	}
	if wm := uint64(r[4].Int64()); wm != resp.Watermark {
		t.Fatalf("delta watermark = %d, append watermark = %d", wm, resp.Watermark)
	}
	rows.Close()
	waitClusterDrained(t, c, svcs)
}

// waitClusterDrained asserts the coordinator registry and every node's
// serving resources return to idle.
func waitClusterDrained(t *testing.T, c *Cluster, svcs []*service.Service) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		idle := len(c.Registry().Snapshot()) == 0
		for _, svc := range svcs {
			stats := svc.Stats()
			subs := svc.Engine().Subscriptions("web_sales") + svc.Engine().Subscriptions("emptab")
			if stats.LiveQueries != 0 || stats.InFlight != 0 || subs != 0 {
				idle = false
			}
		}
		if idle {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("cluster did not drain after close/kill")
		}
		time.Sleep(2 * time.Millisecond)
	}
}
